// Package stats provides small helpers for accumulating and rendering the
// simulation statistics reported by the benchmark harness: ratios, percent
// deltas, and fixed-width text tables matching the rows of the paper's
// figures.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Ratio returns num/den, or 0 when den is 0.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// PctLoss returns the percentage by which got falls short of base:
// 100 * (base - got) / base. It is the "% IPC loss with respect to SIE"
// metric of the paper's Figure 2. A negative value means got exceeds base.
func PctLoss(base, got float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - got) / base
}

// Recovered returns the fraction (in percent) of the gap between lo and hi
// that x covers: 100 * (x - lo) / (hi - lo). It implements the paper's
// "gained back K% of the IPC loss" metric, where lo is DIE's IPC and hi is
// the reference (SIE or DIE-2xALU) IPC.
func Recovered(lo, hi, x float64) float64 {
	if hi == lo {
		return 0
	}
	return 100 * (x - lo) / (hi - lo)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table accumulates rows of a fixed set of columns and renders them with
// aligned columns, in the spirit of a paper table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells render with %v, floats with two decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// JSON renders the table as an indented JSON object with "title",
// "headers" and "rows" fields, for machine consumption by tooling that
// wants structure rather than CSV's positional columns.
func (t *Table) JSON() string {
	obj := struct {
		Title   string     `json:"title,omitempty"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.title, t.headers, t.rows}
	if obj.Headers == nil {
		obj.Headers = []string{}
	}
	if obj.Rows == nil {
		obj.Rows = [][]string{}
	}
	b, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		// Unreachable: the value is built from plain strings.
		return fmt.Sprintf("{%q: %q}", "error", err.Error())
	}
	return string(b) + "\n"
}

// CSV renders the table as comma-separated values (headers first) for
// machine consumption by plotting scripts.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Spearman returns the Spearman rank correlation coefficient between xs
// and ys (tied values get their average rank). It returns 0 when the
// slices differ in length, have fewer than two points, or either side is
// constant — the coefficient is undefined there, and 0 is the conservative
// "no demonstrated correlation" answer for threshold checks.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	rx, ry := ranks(xs), ranks(ys)
	mx, my := Mean(rx), Mean(ry)
	var num, dx, dy float64
	for i := range rx {
		a, b := rx[i]-mx, ry[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// ranks returns the 1-based ranks of xs, averaging ties.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j+2) / 2 // mean of 1-based ranks i+1..j+1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
