GO ?= go

.PHONY: all build test test-short race vet lint bench fuzz serve sweep examples clean

all: vet lint test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full suite under the race detector; the parallel sweep runner and the
# experiment grids must stay race-clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# go vet, then the repository invariant suite (internal/lint/...: nopanic,
# determinism, modedispatch, hotalloc, errcontract) and the static workload
# analyzer over every benchmark and kernel; each exits nonzero on findings.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/repolint
	$(GO) run ./cmd/irblint

# One testing.B benchmark per paper figure/table plus simulator
# micro-benchmarks, then the engineering-performance record
# (BENCH_<date>.json: insns/s per mode with and without trace replay,
# grid wall-clock serial vs parallel, allocs/op).
bench:
	$(GO) test -bench=. -benchmem . | tee bench_output.txt
	$(GO) run ./cmd/bench

# Native fuzz targets with a CI-length budget each; the committed seed
# corpus under testdata/fuzz/ replays as plain tests in `make test`.
fuzz:
	$(GO) test -fuzz=FuzzProgramDecode -fuzztime=20s -run '^$$' ./internal/program
	$(GO) test -fuzz=FuzzIRBLookup -fuzztime=20s -run '^$$' ./internal/irb
	$(GO) test -fuzz=FuzzTRBLookup -fuzztime=20s -run '^$$' ./internal/trb
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=20s -run '^$$' ./internal/fabric

# Run the serving daemon (README "Serving" section for the API).
serve:
	$(GO) run ./cmd/simserved

# Regenerate every experiment at full scale (~20 min on one core).
sweep:
	$(GO) run ./cmd/sweep -exp all -insns 300000 | tee sweep_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/alusweep
	$(GO) run ./examples/faultinjection
	$(GO) run ./examples/customworkload
	$(GO) run ./examples/pipetrace

clean:
	$(GO) clean ./...
