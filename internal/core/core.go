package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/fsim"
	"repro/internal/irb"
	"repro/internal/isa"
	"repro/internal/program"
)

// ErrStopped is returned by Run when RequestStop ended the simulation
// before the program completed. Callers that stop a core in response to
// context cancellation should translate it back into the context's error.
var ErrStopped = errors.New("core: stopped")

// FaultInjector lets the fault-injection harness corrupt values at the
// three points the paper's Section 3.4 analyzes: functional unit outputs,
// operand forwarding, and the IRB array. All methods must be deterministic
// for a given (seq, pc) so runs are reproducible. seq is the architected
// sequence number of the instruction — shared by the two copies of a DIE
// pair — so an injector can model the standard single-fault-at-a-time
// assumption by striking each dynamic instruction at most once. A nil
// injector means a fault-free run.
type FaultInjector interface {
	// FUResult may corrupt the outcome signature produced when the given
	// instruction copy executes on a functional unit.
	FUResult(seq uint64, pc uint64, dup bool, sig uint64) uint64
	// Operand may corrupt source operand `which` (1 or 2) of the given
	// copy as it is captured into the issue window, modeling a fault on
	// a forwarding path.
	Operand(seq uint64, pc uint64, dup bool, which int, val uint64) uint64
	// AfterIRBInsert runs after pc's reuse-buffer entry is written,
	// allowing the injector to strike the stored entry.
	AfterIRBInsert(pc uint64, b *irb.IRB)
}

// fetchEntry is one instruction in the fetch-to-dispatch queue.
type fetchEntry struct {
	pc       uint64
	in       isa.Instr
	predNext uint64
	cycle    uint64
}

// uopChunk is how many uops the arena grows by when the free list runs
// dry. The steady-state population is bounded by the RUU size, so a
// handful of chunks serve an entire run.
const uopChunk = 128

// scratch is the recyclable allocation-heavy state of a core: the uop
// arena's free list and the event-heap and waiting-list backing arrays.
// Cores draw one from a package pool at construction and Release returns
// it when the run ends, so a grid's many sequential cells reuse the same
// uop slots and consumers arrays instead of re-warming fresh ones.
type scratch struct {
	events  eventQueue
	waiting []waitRef
	free    []*uop
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Core is one simulated processor executing one program.
type Core struct {
	cfg     Config
	caps    Capabilities // the mode's registered capability flags, cached
	streams int          // copies dispatched per architected instruction
	prog    *program.Program
	front   *fsim.Front
	pred    *bpred.Predictor
	mem     *cache.Hierarchy
	reuse   *irb.IRB  // nil unless the mode uses the IRB
	trb     *trbState // nil unless the mode uses the TRB (see trb.go)
	inj     FaultInjector
	tracer  Tracer

	Stats Stats

	// OnCommit, when set, observes every architected instruction in
	// retirement order; the simulation driver uses it to verify the
	// timing core against an independent functional run.
	OnCommit func(rec *fsim.Retired)

	cycle    uint64
	seq      uint64
	done     bool
	abortErr error
	stopReq  atomic.Bool

	// Fetch state.
	fetchPC         uint64
	fq              *fetchQueue
	fetchStallUntil uint64
	curFetchBlock   uint64
	fetchStopped    bool // halt fetched; wait for redirect or commit

	ruu    *ring
	lsq    *ring
	fus    *fuPool // single pool, or cluster 0 when Clustered
	fusDup *fuPool // cluster 1 (duplicate stream) when Clustered

	// events, waiting and freeUops live in sc but are mirrored here as
	// direct fields for the hot loop; Release writes them back.
	sc       *scratch
	events   eventQueue
	freeUops []*uop
	freeFn   func(*uop) // c.freeUop, bound once (method values allocate)

	// waiting is the age-ordered list of dispatched-but-unissued uops
	// that selectIssue scans — the issue window's candidates — replacing
	// a full sweep of the RUU every cycle.
	waiting []waitRef

	// regVer counts architected-register writes entering the pipeline,
	// for the name-based reuse test. Wrong-path bumps are never undone:
	// that only costs reuse opportunities, never correctness.
	regVer [isa.NumRegs]uint32

	// Rename tables: latest producer per register, per stream. In
	// DIE-IRB the duplicate stream reads prodP — duplicates are woken by
	// primary results (the paper's forwarding property) — so prodD is
	// maintained only in plain DIE mode.
	prodP [isa.NumRegs]prodRef
	prodD [isa.NumRegs]prodRef

	lastCommitCycle uint64

	// dupBuf holds the shadow copies of the instruction being dispatched
	// (streams-1 entries), reused every dispatch to keep the hot loop
	// allocation-free.
	dupBuf []*uop

	// REPLAY-mode state (see replay.go): nil in every other mode. While
	// cycle <= stallUntil the whole pipeline is frozen, modeling the
	// replay engine's claim on the datapath.
	replay     *replayState
	stallUntil uint64

	// Fault-recovery state (see recovery.go). faultRetries counts
	// consecutive commit-check failures per static PC, cleared when the
	// PC commits successfully; the repair window tracks mean time to
	// repair from first detection to the repaired commit.
	faultRetries map[uint64]uint32
	repairOpen   bool
	repairSeq    uint64
	repairDetect uint64
}

// deadlockWindow is how many cycles without a commit make Run fail with a
// diagnostic; real stalls (cache misses, div chains) are far shorter.
const deadlockWindow = 1_000_000

// New builds a core for prog. The program is loaded into a fresh
// functional machine; no instructions have executed yet.
func New(cfg Config, prog *program.Program) (*Core, error) {
	return NewAt(cfg, fsim.New(prog))
}

// NewAt builds a core that starts timing simulation from the given
// functional machine's current state — the machinery behind fast-forward:
// the caller runs the machine (cheaply, in the functional simulator) past
// initialization or warmup phases, then attaches the timing core. The
// caches and predictors start cold, as with SimpleScalar's -fastfwd. The
// machine must not be halted and must not be stepped by the caller
// afterwards.
func NewAt(cfg Config, m *fsim.Machine) (*Core, error) {
	prog := m.Prog
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if m.Halted {
		return nil, fmt.Errorf("core: cannot attach to a halted machine")
	}
	pred, err := bpred.New(cfg.Bpred)
	if err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(cfg.Cache)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:           cfg,
		caps:          cfg.Mode.Caps(),
		streams:       cfg.Streams(),
		prog:          prog,
		front:         fsim.NewFront(m),
		pred:          pred,
		mem:           mem,
		fetchPC:       m.PC,
		curFetchBlock: ^uint64(0),
		ruu:           newRing(cfg.RUUSize),
		lsq:           newRing(cfg.LSQSize),
		fq:            newFetchQueue(cfg.FetchQueue),
	}
	c.dupBuf = make([]*uop, c.streams-1)
	if c.caps.Compare == CompareEpoch {
		c.replay = newReplayState(cfg)
	}
	c.sc = scratchPool.Get().(*scratch)
	c.events = c.sc.events
	c.waiting = c.sc.waiting
	c.freeUops = c.sc.free
	c.freeFn = c.freeUop
	c.fus = newFUPool(cfg.FUs)
	if cfg.Clustered {
		// Each cluster owns a full copy of the functional unit mix —
		// the replication that makes the paper call this alternative
		// "almost a spatial redundancy approach".
		c.fusDup = newFUPool(cfg.FUs)
	}
	if c.caps.UsesIRB {
		if c.reuse, err = irb.New(cfg.IRB); err != nil {
			return nil, err
		}
	}
	if c.caps.UsesTRB {
		if c.trb, err = newTRBState(cfg, prog); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Release returns the core's recyclable buffers (the uop arena, event
// heap and waiting list) to the package pool for the next run. The sim
// driver calls it when a run's statistics have been extracted; the core
// must not be ticked afterwards. Release is idempotent and optional —
// a core that is never released just leaves its buffers to the GC.
func (c *Core) Release() {
	sc := c.sc
	if sc == nil {
		return
	}
	c.sc = nil
	// Drop uop references held beyond the slices' logical lengths so the
	// pooled backing arrays do not pin a finished run's pipeline state.
	clear(c.events)
	clear(c.waiting)
	sc.events = c.events[:0]
	sc.waiting = c.waiting[:0]
	sc.free = c.freeUops
	c.events, c.waiting, c.freeUops = nil, nil, nil
	scratchPool.Put(sc)
}

// allocUop returns a reset uop from the free list, growing the arena by a
// chunk when it runs dry. A recycled uop keeps its generation counter
// (bumped at free) and its consumers backing array, so the steady-state
// dispatch path allocates nothing.
//
//lint:hotpath
func (c *Core) allocUop() *uop {
	if n := len(c.freeUops); n > 0 {
		u := c.freeUops[n-1]
		c.freeUops = c.freeUops[:n-1]
		gen, cons := u.gen, u.consumers[:0]
		*u = uop{gen: gen, consumers: cons}
		return u
	}
	//hotalloc:exempt amortized arena growth: one chunk allocation serves uopChunk dispatches
	chunk := make([]uop, uopChunk)
	for i := range chunk[1:] {
		c.freeUops = append(c.freeUops, &chunk[1+i])
	}
	return &chunk[0]
}

// freeUop recycles u at commit or squash. Bumping the generation
// invalidates every stale reference still held by the event heap,
// consumer links, rename tables and the waiting list.
//
//lint:hotpath
func (c *Core) freeUop(u *uop) {
	u.gen++
	u.pair = nil
	c.freeUops = append(c.freeUops, u)
}

// SetInjector installs a fault injector; call before Run.
func (c *Core) SetInjector(inj FaultInjector) { c.inj = inj }

// IRB returns the reuse buffer, or nil when the mode has none.
func (c *Core) IRB() *irb.IRB { return c.reuse }

// Bpred returns the branch predictor (for statistics).
func (c *Core) Bpred() *bpred.Predictor { return c.pred }

// Mem returns the cache hierarchy (for statistics).
func (c *Core) Mem() *cache.Hierarchy { return c.mem }

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// RequestStop asks a running simulation to stop at the next cycle
// boundary, after which Run returns ErrStopped. It is the only Core
// method safe to call from another goroutine; the simulation driver uses
// it to implement context cancellation.
func (c *Core) RequestStop() { c.stopReq.Store(true) }

// Abort stops the simulation from inside a callback (such as OnCommit)
// and makes Run return err. The current cycle still completes.
func (c *Core) Abort(err error) {
	c.abortErr = err
	c.done = true
}

// Run simulates until the program halts, MaxInsns commit, an internal
// limit trips, or the run is stopped via RequestStop or Abort. The final
// statistics are in c.Stats.
func (c *Core) Run() error {
	for !c.done {
		if c.stopReq.Load() {
			c.Stats.Cycles = c.cycle
			return ErrStopped
		}
		c.Tick()
		if c.cfg.MaxCycles > 0 && c.cycle > c.cfg.MaxCycles {
			return fmt.Errorf("core: %q exceeded %d cycles", c.prog.Name, c.cfg.MaxCycles)
		}
		if c.cycle > c.lastCommitCycle && c.cycle-c.lastCommitCycle > deadlockWindow {
			return fmt.Errorf("core: %q deadlocked at cycle %d (ruu=%d lsq=%d fq=%d committed=%d)",
				c.prog.Name, c.cycle, c.ruu.len(), c.lsq.len(), c.fq.len(), c.Stats.Committed)
		}
	}
	c.Stats.Cycles = c.cycle
	return c.abortErr
}

// Tick advances the machine one cycle. Stages run commit-first so a result
// produced in cycle t is consumable in cycle t (wakeup before select) and
// an instruction dispatched in cycle t issues no earlier than t+1.
//
//lint:hotpath
func (c *Core) Tick() {
	c.cycle++
	if c.cycle <= c.stallUntil {
		// REPLAY epoch check in progress: the replay engine owns the
		// datapath, nothing else advances (see replayEpochCheck).
		return
	}
	c.commit()
	c.writeback()
	c.memIssue()
	c.selectIssue()
	c.dispatch()
	c.fetch()
}

// ---------------------------------------------------------------- fetch

//lint:hotpath
func (c *Core) fetch() {
	if c.done || c.fetchStopped || c.cycle < c.fetchStallUntil {
		return
	}
	for budget := c.cfg.FetchWidth; budget > 0 && !c.fq.full(); budget-- {
		addr := c.fetchPC * isa.InstrBytes
		block := addr / uint64(c.cfg.Cache.L1I.BlockBytes)
		if block != c.curFetchBlock {
			lat := c.mem.AccessI(addr)
			c.curFetchBlock = block
			if lat > c.cfg.Cache.L1I.HitLat {
				// Miss: the block arrives after the stall; the
				// instruction is fetched then.
				c.fetchStallUntil = c.cycle + uint64(lat)
				return
			}
		}
		in := c.prog.Fetch(c.fetchPC)
		predNext := c.pred.Predict(c.fetchPC, in)
		c.fq.push(fetchEntry{pc: c.fetchPC, in: in, predNext: predNext, cycle: c.cycle})
		c.Stats.Fetched++
		if in.Op == isa.OpHalt {
			c.fetchStopped = true
			return
		}
		taken := predNext != c.fetchPC+1
		c.fetchPC = predNext
		if taken {
			// One taken control transfer per fetch cycle.
			return
		}
	}
}

// ---------------------------------------------------------------- dispatch

//lint:hotpath
func (c *Core) dispatch() {
	need := c.streams
	slots := c.cfg.DecodeWidth
	if c.fq.len() == 0 {
		c.Stats.FetchQEmpty++
	}
	for slots >= need && c.fq.len() > 0 {
		fe := *c.fq.front()
		if c.ruu.free() < need {
			c.Stats.RUUFullStalls++
			return
		}
		isMem := fe.in.Op.Info().IsMem()
		if isMem && c.lsq.free() == 0 {
			c.Stats.LSQFullStalls++
			return
		}

		// Execute functionally at the dispatch front, exactly like
		// sim-outorder: correct-path instructions advance the
		// architectural machine, wrong-path ones run in the overlay.
		var rec fsim.Retired
		wrong := false
		if !c.front.Spec() {
			if c.front.Halted() {
				// Nothing after a correct-path halt is
				// dispatchable; the queue can only hold stale
				// entries if fetch raced a redirect.
				c.fq.clear()
				return
			}
			if fe.pc != c.front.PC() {
				//nopanic:invariant fetch and the functional front advance in lockstep by construction
				panic(fmt.Sprintf("core: dispatch pc %d != front pc %d", fe.pc, c.front.PC()))
			}
			if c.trb != nil {
				// Window walk and lookup run against the pre-step
				// architected state, before the front advances.
				c.trbBefore(fe.pc)
			}
			r, err := c.front.StepCorrect()
			if err != nil {
				//nopanic:invariant the oracle already executed this instruction without error
				panic(err)
			}
			rec = r
		} else {
			rec = c.front.StepSpecAt(fe.pc)
			wrong = true
		}
		c.fq.popFront()
		slots -= need

		// One copy group: the primary plus streams-1 shadow copies,
		// linked into a circular pair ring (primary -> dup1 -> ... ->
		// primary) so recovery can reach every member from any one.
		primary := c.newUop(&fe, rec, wrong, false)
		dups := c.dupBuf[:0]
		prev := primary
		for s := 1; s < need; s++ {
			dupU := c.newUop(&fe, rec, wrong, true)
			prev.pair = dupU
			prev = dupU
			dups = append(dups, dupU)
		}
		if prev != primary {
			prev.pair = primary
		}

		c.ruu.push(primary)
		if isMem {
			primary.memAccess = true
			c.lsq.push(primary)
		}
		if primary.state == uWaiting {
			c.waiting = append(c.waiting, waitRef{primary, primary.gen})
		}
		for _, dupU := range dups {
			c.ruu.push(dupU)
			if dupU.state == uWaiting {
				c.waiting = append(c.waiting, waitRef{dupU, dupU.gen})
			}
		}

		c.wireAndRename(primary, dups)
		if c.tracer != nil {
			c.tracer.Dispatch(c.cycle, primary.seq, false, wrong, &primary.rec)
			for _, dupU := range dups {
				c.tracer.Dispatch(c.cycle, dupU.seq, true, wrong, &dupU.rec)
			}
		}
		if c.trb != nil && !wrong {
			c.trbAfter(&primary.rec)
		}

		// A correct-path control transfer whose prediction was wrong
		// switches the front to wrong-path execution; recovery happens
		// when the first copy of the group resolves.
		if !wrong && fe.predNext != rec.NextPC {
			if !fe.in.Op.Info().IsCtrl() {
				//nopanic:invariant only control ops can be flagged mispredicted at fetch
				panic(fmt.Sprintf("core: non-control mispredict at pc %d", fe.pc))
			}
			primary.mispred = true
			for _, dupU := range dups {
				dupU.mispred = true
			}
			c.front.EnterSpec()
		}
	}
}

// newUop builds one instruction copy at dispatch, applying operand fault
// injection and starting the IRB lookup where the mode calls for it.
//
//lint:hotpath
func (c *Core) newUop(fe *fetchEntry, rec fsim.Retired, wrong, dup bool) *uop {
	c.seq++
	u := c.allocUop()
	u.seq = c.seq
	u.rec = rec
	u.dup = dup
	u.wrongPath = wrong
	u.dispatchCycle = c.cycle
	u.fetchCycle = fe.cycle
	u.predNext = fe.predNext
	u.readyAt = c.cycle + 1
	u.src1c = rec.Src1
	u.src2c = rec.Src2
	c.Stats.Dispatched++
	if wrong {
		c.Stats.WrongPath++
	}
	if oi := rec.Instr.Op.Info(); oi.UsesSrc1 {
		u.ver1 = c.regVer[rec.Instr.Src1]
	}
	if oi := rec.Instr.Op.Info(); oi.UsesSrc2 {
		u.ver2 = c.regVer[rec.Instr.Src2]
	}
	// A TRB-served duplicate never executes: the recorded window
	// signature stands in for the whole copy, delivered once the lookup
	// latency has elapsed. It bypasses operand injection, the IRB, and
	// the functional units — the duplicate work does not exist, so
	// injection opportunities are accounted against the leader only.
	if c.trb != nil && dup && !wrong && c.trb.serving {
		u.trbServed = true
		u.trbEntry = c.trb.skipEntry
		u.outSig = c.trb.serveSig
		u.state = uIssued
		c.Stats.TRBInstrSkipped++
		at := c.cycle + 1
		if c.trb.skipReady > at {
			at = c.trb.skipReady
		}
		c.events.schedule(at, evTRBDone, u)
		return u
	}

	if c.inj != nil {
		oi := rec.Instr.Op.Info()
		if oi.UsesSrc1 {
			u.src1c = c.inj.Operand(rec.Seq, rec.PC, dup, 1, u.src1c)
		}
		if oi.UsesSrc2 {
			u.src2c = c.inj.Operand(rec.Seq, rec.PC, dup, 2, u.src2c)
		}
		u.corrupted = u.src1c != rec.Src1 || u.src2c != rec.Src2
	}

	// The IRB is looked up in parallel with fetch; port arbitration
	// happens now and the data becomes usable for the reuse test
	// LookupLat cycles after fetch.
	if c.reuse != nil && c.streamUsesIRB(dup) && irbReusable(rec.Instr) {
		if e, hit := c.reuse.Lookup(c.cycle, rec.PC); hit {
			u.irbPCHit = true
			u.irbEntry = e
			u.irbReady = fe.cycle + uint64(c.cfg.IRB.LookupLat)
			if u.irbReady <= c.cycle {
				u.irbReady = c.cycle + 1
			}
		}
	}

	// Operations needing no functional unit complete by themselves.
	if rec.Instr.Op.Info().Class == isa.FUNone {
		u.state = uIssued
		c.events.schedule(c.cycle+1, evExecDone, u)
	}
	return u
}

// streamUsesIRB reports whether the given stream consults the IRB: every
// stream when the mode's single stream is the IRB consumer (SIE-IRB),
// otherwise the duplicate stream (plus the primary under IRBBothStreams).
func (c *Core) streamUsesIRB(dup bool) bool {
	if !c.caps.UsesIRB {
		return false
	}
	if c.caps.IRBAllStreams {
		return true
	}
	return dup || c.cfg.IRBBothStreams
}

// wireAndRename links the new copy group's source operands to their
// producers and installs the group as the latest producers of its
// destination. All shadow copies are wired before the destination is
// installed, so no copy can consume its own group's result.
//
//lint:hotpath
func (c *Core) wireAndRename(primary *uop, dups []*uop) {
	c.wireSources(primary, &c.prodP)
	for _, dupU := range dups {
		if dupU.trbServed {
			// A served copy waits on no producers — that is the whole
			// ALU-bandwidth win — and is never a producer itself
			// (DIE-TRB forwards primary results like DIE-IRB).
			continue
		}
		if c.caps.IndependentDataflow {
			// Independent dataflow per stream (DIE).
			c.wireSources(dupU, &c.prodD)
		} else {
			// Shadow copies are woken by primary results (DIE-IRB's
			// forwarding property; TMR shares the same wiring).
			c.wireSources(dupU, &c.prodP)
		}
	}
	in := primary.rec.Instr
	if in.Op.Info().HasDest && in.Dest != isa.ZeroReg {
		c.regVer[in.Dest]++
		c.prodP[in.Dest] = prodRef{primary, primary.gen}
		if len(dups) > 0 && c.caps.IndependentDataflow {
			dupU := dups[0]
			if in.Op.Info().IsLoad {
				// The memory access happens once, by the primary;
				// the duplicate only recomputes the address. Both
				// streams' consumers therefore receive the loaded
				// value when that single access completes.
				c.prodD[in.Dest] = prodRef{primary, primary.gen}
			} else {
				c.prodD[in.Dest] = prodRef{dupU, dupU.gen}
			}
		}
	}
}

// wireSources registers u as a consumer of the pending producers of its
// source registers. A rename slot whose generation is stale refers to a
// producer that already left the pipeline (committed and recycled), which
// the old pointer-table code read as the uDone state.
//
//lint:hotpath
func (c *Core) wireSources(u *uop, table *[isa.NumRegs]prodRef) {
	oi := u.rec.Instr.Op.Info()
	add := func(r isa.Reg) {
		if r == isa.ZeroReg {
			return
		}
		p := table[r]
		if !p.live() || p.u.state == uDone || p.u.state == uSquashed {
			return
		}
		p.u.consumers = append(p.u.consumers, consumerLink{u, u.gen})
		u.waitCount++
	}
	if oi.UsesSrc1 {
		add(u.rec.Instr.Src1)
	}
	if oi.UsesSrc2 {
		add(u.rec.Instr.Src2)
	}
}

// ---------------------------------------------------------------- issue

//lint:hotpath
func (c *Core) selectIssue() {
	slots := c.cfg.IssueWidth
	if c.cfg.Clustered {
		// Each cluster has its own issue unit of half the width; the
		// two-pass structure maps passes onto clusters.
		slots = c.cfg.IssueWidth / 2
	}
	if c.cfg.IRBAsFU && c.reuse != nil {
		// Ablation B: charge the wakeup/bypass growth of IRB-as-FU by
		// treating each IRB read port as a consumed broadcast slot.
		slots -= c.cfg.IRB.ReadPorts
		if slots < 1 {
			slots = 1
		}
	}
	// The decoupled (non-data-capture) scheduler pipelines wakeup and
	// selection: an instruction woken in cycle t is selectable in t+1,
	// after its register file read (Section 3.3).
	var selDelay uint64
	if c.cfg.Scheduler == Decoupled {
		selDelay = 1
	}
	// Selection runs in two passes, primaries before duplicates (each
	// oldest-first): the paper's design keeps the primary stream
	// "executed by the functional units as in SIE", so ready duplicates
	// never displace ready primary work. The reuse test itself runs in
	// the first pass regardless — it is overlapped with wakeup and
	// consumes neither an issue slot nor a functional unit.
	//
	// Each pass scans the age-ordered waiting list — only the uops still
	// in uWaiting, not the whole RUU — compacting it in place: entries
	// that issued, completed by reuse, or went stale (squashed and
	// recycled, detectable by the generation tag) are dropped.
	for pass := 0; pass < 2; pass++ {
		w := c.waiting[:0]
		for k := 0; k < len(c.waiting); k++ {
			ref := c.waiting[k]
			u := ref.u
			if u.gen != ref.gen || u.state != uWaiting {
				continue
			}
			recovered := c.trySelect(u, pass, &slots, selDelay)
			if u.state == uWaiting {
				w = append(w, ref)
			}
			if recovered {
				// Recovery already rebuilt c.waiting from the
				// surviving window; the compaction in flight here
				// is stale and must not be written back.
				return
			}
		}
		c.waiting = w
		if c.streams == 1 {
			break
		}
		if c.cfg.Clustered {
			// The duplicate cluster's issue unit has its own slots.
			slots = c.cfg.IssueWidth / 2
		}
	}
}

// trySelect runs the per-candidate body of the issue loop: the overlapped
// IRB reuse test on the first pass, then the pass's slot and functional
// unit arbitration. It reports whether a reuse completion resolved a
// mispredicted branch and triggered recovery, in which case the caller's
// scan state is invalid and it must return immediately.
//
//lint:hotpath
func (c *Core) trySelect(u *uop, pass int, slots *int, selDelay uint64) bool {
	if u.waitCount > 0 || u.readyAt+selDelay > c.cycle {
		return false
	}

	if pass == 0 && u.irbPCHit && !u.irbTested && c.cycle >= u.irbReady {
		u.irbTested = true
		if c.reuseTest(u) {
			u.reuseHit = true
			c.Stats.IRBReuseHits++
			if c.tracer != nil {
				c.tracer.ReuseHit(c.cycle, u.seq, &u.rec)
			}
			u.outSig = irbOutSig(&u.rec, u.irbEntry)
			return c.completeUop(u)
		}
		c.Stats.IRBReuseMiss++
	}
	if u.dup != (pass == 1) {
		return false
	}

	if *slots == 0 {
		c.Stats.ReadyNotIssued++
		return false
	}
	op := u.rec.Instr.Op
	if !c.allocFU(u, op) {
		c.Stats.ReadyNotIssued++
		return false
	}
	(*slots)--
	c.Stats.IssueSlotsUsed++
	c.Stats.Issued[fuBucket(op)]++
	if u.dup {
		c.Stats.DupFUExec++
	}
	if u.irbPCHit && !u.irbTested {
		c.Stats.IRBNotReady++
	}
	if c.tracer != nil {
		c.tracer.Issue(c.cycle, u.seq, u.dup, &u.rec)
	}
	u.state = uIssued
	if op.Info().IsMem() {
		// Address generation: one IntALU cycle; the memory access
		// (primary copy only) follows via the LSQ.
		c.events.schedule(c.cycle+1, evAddrDone, u)
	} else {
		c.events.schedule(c.cycle+uint64(op.Info().Latency), evExecDone, u)
	}
	return false
}

// reuseTest runs the configured reuse test for a PC-hitting duplicate:
// operand-value comparison (the paper's default) or the name-based version
// check of Section 3.3.
//
//lint:hotpath
func (c *Core) reuseTest(u *uop) bool {
	if c.cfg.IRBNameBased {
		return u.irbEntry.MatchesVersions(u.ver1, u.ver2)
	}
	return u.irbEntry.Matches(u.src1c, u.src2c)
}

// allocFU reserves a functional unit for u, honouring the cluster split:
// with Clustered, primaries draw from cluster 0 and duplicates from
// cluster 1, falling back to the shared pool for singleton units.
//
//lint:hotpath
func (c *Core) allocFU(u *uop, op isa.Op) bool {
	cl, occ := op.Info().Class, occupancy(op)
	pool := c.fus
	if c.cfg.Clustered && u.dup {
		pool = c.fusDup
	}
	return pool.alloc(cl, c.cycle, occ)
}

func fuBucket(op isa.Op) int {
	switch op.Info().Class {
	case isa.FUIntMult:
		return bucketIntMult
	case isa.FUFPAdd:
		return bucketFPAdd
	case isa.FUFPMult:
		return bucketFPMult
	default:
		if op.Info().IsMem() {
			return bucketMem
		}
		return bucketIntALU
	}
}

// ---------------------------------------------------------------- memory

// memIssue starts data cache accesses for loads whose address is known,
// enforcing conservative disambiguation (a load waits until every older
// store in the LSQ has computed its address) and store-to-load forwarding.
//
//lint:hotpath
func (c *Core) memIssue() {
	ports := c.cfg.FUs[isa.FUMemPort]
	olderStoresReady := true
	for i := 0; i < c.lsq.len(); i++ {
		u := c.lsq.at(i)
		if u.rec.Instr.Op.Info().IsStore {
			if !u.addrReady {
				olderStoresReady = false
			}
			continue
		}
		if u.memStarted || !u.addrReady || !olderStoresReady {
			continue
		}
		if fwd := c.forwardingStore(i, u.rec.Addr); fwd {
			u.memStarted = true
			c.Stats.LoadForwarded++
			c.events.schedule(c.cycle+1, evLoadDone, u)
			continue
		}
		if ports == 0 {
			continue
		}
		ports--
		lat := c.mem.AccessD(u.rec.Addr, false)
		u.memStarted = true
		c.events.schedule(c.cycle+uint64(lat), evLoadDone, u)
	}
}

// forwardingStore reports whether an older store in the LSQ matches addr
// and can forward its data to the load at LSQ position loadIdx.
//
//lint:hotpath
func (c *Core) forwardingStore(loadIdx int, addr uint64) bool {
	for j := loadIdx - 1; j >= 0; j-- {
		s := c.lsq.at(j)
		if s.rec.Instr.Op.Info().IsStore && s.rec.Addr == addr {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------- writeback

// writeback drains all completion events due this cycle: functional unit
// results, address calculations and load returns. Completions wake
// consumers and may trigger branch-misprediction recovery.
//
//lint:hotpath
func (c *Core) writeback() {
	for len(c.events) > 0 && c.events[0].cycle <= c.cycle {
		e := c.events.pop()
		u := e.u
		if u.gen != e.gen || u.state == uSquashed {
			// The uop was squashed (and possibly recycled into a new
			// instruction) after this event was scheduled.
			continue
		}
		switch e.kind {
		case evExecDone:
			u.outSig = outSignature(&u.rec, u.src1c, u.src2c)
			if c.inj != nil && u.rec.Instr.Op.Info().Class != isa.FUNone {
				sig := c.inj.FUResult(u.rec.Seq, u.rec.PC, u.dup, u.outSig)
				if sig != u.outSig {
					u.outSig = sig
					u.corrupted = true
				}
			}
			if c.completeUop(u) {
				continue
			}
		case evAddrDone:
			u.addrReady = true
			u.outSig = outSignature(&u.rec, u.src1c, u.src2c)
			if c.inj != nil {
				sig := c.inj.FUResult(u.rec.Seq, u.rec.PC, u.dup, u.outSig)
				if sig != u.outSig {
					u.outSig = sig
					u.corrupted = true
				}
			}
			// Stores and address-calculation-only copies are done;
			// primary loads proceed to the cache via memIssue.
			if !u.memAccess || u.rec.Instr.Op.Info().IsStore {
				c.completeUop(u)
			}
		case evLoadDone:
			c.completeUop(u)
		case evTRBDone:
			// Signature set at dispatch from the recorded window; there
			// is no execution and hence no FU-result injection point.
			if c.completeUop(u) {
				continue
			}
		}
	}
}

// completeUop marks u done, wakes its consumers and handles control-flow
// resolution. It reports whether a misprediction recovery squashed the
// pipeline (callers iterating structures must then stop).
//
//lint:hotpath
func (c *Core) completeUop(u *uop) bool {
	if u.state == uDone {
		//nopanic:invariant a uop completes exactly once by the scheduler's bookkeeping
		panic("core: double completion")
	}
	u.state = uDone
	u.completeCycle = c.cycle
	if c.tracer != nil {
		c.tracer.Complete(c.cycle, u.seq, u.dup, &u.rec)
	}
	wake := c.cycle
	if u.reuseHit && !c.cfg.IRBChaining {
		// A reuse hit's value reaches consumers' operand lines a cycle
		// later, like any other broadcast; only Sn+d-style chaining
		// hardware lets dependent reuse tests cascade within a cycle.
		wake++
	}
	for _, link := range u.consumers {
		consumer := link.u
		if consumer.gen != link.gen || consumer.state == uSquashed {
			continue
		}
		consumer.waitCount--
		at := wake
		if c.cfg.Clustered && consumer.dup != u.dup {
			// Inter-cluster forwarding costs an extra cycle.
			at++
		}
		if consumer.readyAt < at {
			consumer.readyAt = at
		}
	}
	u.consumers = u.consumers[:0]

	// Branch resolution: the first copy of a mispredicted correct-path
	// control transfer to resolve triggers recovery (the paper exploits
	// exactly this "earliest of the two streams" property).
	if u.mispred && !u.wrongPath {
		c.recover(u)
		return true
	}
	return false
}

// recover squashes everything younger than u's pair and redirects fetch to
// the architecturally correct path.
func (c *Core) recover(u *uop) {
	c.Stats.Mispredicts++
	c.Stats.RecoveryCycles += c.cycle - u.dispatchCycle
	// Walk the copy group's pair ring: every member's mispred flag is
	// cleared (the first resolver recovers for the whole group) and the
	// squash point is the group's youngest member.
	maxSeq := u.seq
	u.mispred = false
	for p := u.pair; p != nil && p != u; p = p.pair {
		p.mispred = false
		if p.seq > maxSeq {
			maxSeq = p.seq
		}
	}
	if c.cfg.IRBSquashReuse && c.reuse != nil {
		c.harvestSquashed(maxSeq)
	}
	// The LSQ only marks (its entries alias RUU entries); the RUU squash
	// recycles each killed uop into the free list.
	c.lsq.squashYoungerThan(maxSeq, nil)
	killed := c.ruu.squashYoungerThan(maxSeq, c.freeFn)
	c.Stats.Squashed += uint64(killed)
	if c.tracer != nil {
		c.tracer.Squash(c.cycle, killed)
	}
	c.rebuildRename()
	// Rebuild the waiting list from the surviving window: the squashed
	// suffix is gone, and when recovery fired from inside selectIssue a
	// compaction was in flight over the old list.
	c.waiting = c.waiting[:0]
	for i := 0; i < c.ruu.len(); i++ {
		if s := c.ruu.at(i); s.state == uWaiting {
			c.waiting = append(c.waiting, waitRef{s, s.gen})
		}
	}
	if c.trb != nil {
		// Defensive: windows end at the block's control transfer, so
		// EnterSpec can only fire at a window's final instruction —
		// recording and serving are both past their last step by the
		// time recovery runs. Reset anyway so a future window shape
		// cannot leave a half-recorded or half-served walk behind.
		c.trbReset()
	}
	c.front.Squash()
	c.fetchPC = c.front.PC()
	c.fq.clear()
	c.fetchStopped = false
	c.curFetchBlock = ^uint64(0)
	if c.fetchStallUntil > c.cycle {
		// Abandon the in-flight wrong-path instruction fetch.
		c.fetchStallUntil = c.cycle
	}
}

// harvestSquashed implements squash reuse: completed wrong-path
// instructions about to be squashed are inserted into the IRB — their
// results are valid memoizations for their operand values regardless of
// path — so post-recovery re-execution can reuse them. Inserts go through
// normal write-port arbitration.
func (c *Core) harvestSquashed(maxSeq uint64) {
	for i := c.ruu.len() - 1; i >= 0; i-- {
		u := c.ruu.at(i)
		if u.seq <= maxSeq {
			return
		}
		if u.dup || u.state != uDone || u.reuseHit || !irbReusable(u.rec.Instr) {
			continue
		}
		e := irbEntryFor(&u.rec)
		e.Ver1, e.Ver2 = u.ver1, u.ver2
		c.reuse.Insert(c.cycle, u.rec.PC, e)
	}
}

// rebuildRename reconstructs the rename tables from the surviving RUU
// contents after a squash, restoring the producer mapping that existed
// when the recovering branch dispatched.
func (c *Core) rebuildRename() {
	clear(c.prodP[:])
	clear(c.prodD[:])
	for i := 0; i < c.ruu.len(); i++ {
		u := c.ruu.at(i)
		in := u.rec.Instr
		if !in.Op.Info().HasDest || in.Dest == isa.ZeroReg {
			continue
		}
		if !u.dup {
			c.prodP[in.Dest] = prodRef{u, u.gen}
		} else if c.caps.IndependentDataflow {
			if in.Op.Info().IsLoad {
				c.prodD[in.Dest] = prodRef{u.pair, u.pair.gen}
			} else {
				c.prodD[in.Dest] = prodRef{u, u.gen}
			}
		}
	}
}

// ---------------------------------------------------------------- commit

//lint:hotpath
func (c *Core) commit() {
	need := c.streams
	for slots := c.cfg.CommitWidth; slots >= need && c.ruu.len() >= need; slots -= need {
		head := c.ruu.at(0)
		if head.state != uDone {
			return
		}
		if head.wrongPath {
			//nopanic:invariant squash removes wrong-path uops before they reach commit
			panic("core: wrong-path uop at commit")
		}
		// The whole copy group must be done; dispatch allocates groups
		// atomically and squashes kill whole groups, so the members sit
		// at consecutive sequence numbers behind the head.
		var dupU *uop // first shadow copy, for pair modes and recoverFault
		for s := 1; s < need; s++ {
			u := c.ruu.at(s)
			if u.state != uDone {
				return
			}
			if u.seq != head.seq+uint64(s) {
				//nopanic:invariant dispatch allocates copy groups atomically
				panic("core: unpaired uops at commit")
			}
			if s == 1 {
				dupU = u
			}
		}
		switch {
		case c.caps.Compare == CompareVote:
			// Majority vote: a lone dissenter is outvoted and the
			// group retires without any rewind; only a split with no
			// majority falls back to flush-and-re-execute.
			if !c.voteCheck(head, need) {
				return
			}
		case need == 2:
			// Check & retire: compare the two copies' outcome
			// signatures. A mismatch means a transient fault was
			// caught; recovery flushes the pair and everything
			// younger and re-executes from the faulting PC — no
			// stream is trusted over the other, and nothing retires
			// until a re-execution passes the check.
			if head.outSig != dupU.outSig {
				c.Stats.FaultsDetected++
				c.recoverFault(head, dupU)
				return
			}
			c.accountFaultOutcome(head, dupU)
		case c.replay != nil:
			// REPLAY commits unchecked at SIE speed; the epoch's
			// replay comparison below is the (deferred) check.
			c.replayObserve(head)
		case c.inj != nil:
			// SIE has no check: classify what an injected fault did
			// to the single stream so campaigns can count escapes.
			c.accountFaultOutcome(head, nil)
		}
		c.retire(head, dupU)
		// Retired copies return to the free list; any rename-table slot
		// still naming them goes stale via the generation bump.
		for s := 0; s < need; s++ {
			c.freeUop(c.ruu.popHead())
		}
		if c.done {
			c.replayFinalCheck()
			return
		}
		if c.replayCheckDue() {
			c.replayEpochCheck()
			return
		}
	}
}

// voteCheck runs TMR's commit-time majority vote over the copy group's
// outcome signatures. It returns false when no majority exists — the group
// was flushed for re-execution — and true when the group may retire,
// having classified any disagreement against the architected record:
// a majority equal to the true signature outvoted (corrected) the faulty
// copies; a majority differing from it means corruption won the vote and
// escaped. The latter needs a common-mode multi-copy strike, which the
// paper's single-fault model excludes, but the oracle classification keeps
// custom injectors honest.
func (c *Core) voteCheck(head *uop, n int) bool {
	var sigs [maxVoteWidth]uint64
	corrupted := false
	for s := 0; s < n; s++ {
		u := c.ruu.at(s)
		sigs[s] = u.outSig
		corrupted = corrupted || u.corrupted
	}
	best, bestCnt := sigs[0], 0
	for i := 0; i < n; i++ {
		cnt := 0
		for j := 0; j < n; j++ {
			if sigs[j] == sigs[i] {
				cnt++
			}
		}
		if cnt > bestCnt {
			best, bestCnt = sigs[i], cnt
		}
	}
	switch {
	case bestCnt == n:
		// Unanimous: either clean, or every copy corrupted identically.
		if corrupted {
			if best == outSignature(&head.rec, head.rec.Src1, head.rec.Src2) {
				c.Stats.FaultsMasked++
			} else {
				c.Stats.FaultsSilent++
			}
		}
	case bestCnt > n/2:
		c.Stats.FaultsDetected++
		if best == outSignature(&head.rec, head.rec.Src1, head.rec.Src2) {
			c.Stats.FaultsCorrected++
		} else {
			c.Stats.FaultsSilent++
		}
	default:
		c.Stats.FaultsDetected++
		c.recoverFault(head, c.ruu.at(1))
		return false
	}
	return true
}

// retire performs the architected side effects of one instruction: branch
// predictor training, the single memory access of a store, IRB update, and
// program completion.
func (c *Core) retire(u, dupU *uop) {
	rec := &u.rec
	oi := rec.Instr.Op.Info()
	c.Stats.Committed++
	c.Stats.CopiesCommitted += uint64(c.streams)
	c.lastCommitCycle = c.cycle

	// A successful commit ends any fault-recovery bookkeeping for this
	// instruction: the repair window closes (commits are in order, so the
	// first commit at or past the faulting Seq is the repaired one) and
	// the PC's consecutive-retry count resets.
	if c.repairOpen && rec.Seq >= c.repairSeq {
		c.repairOpen = false
		c.Stats.FaultRepairs++
		c.Stats.FaultRecoveryCycles += c.cycle - c.repairDetect
	}
	if len(c.faultRetries) > 0 {
		delete(c.faultRetries, rec.PC)
	}

	if u.memAccess {
		if c.lsq.len() == 0 || c.lsq.at(0) != u {
			//nopanic:invariant LSQ entries retire in the same order the RUU allocated them
			panic("core: LSQ head mismatch at commit")
		}
		c.lsq.popHead()
	}
	switch {
	case oi.IsStore:
		c.Stats.Stores++
		c.mem.AccessD(rec.Addr, true)
	case oi.IsLoad:
		c.Stats.Loads++
	case oi.IsCtrl():
		c.pred.Update(rec.PC, rec.Instr, rec.Taken, rec.NextPC, u.predNext)
	}

	// IRB update at commit, off the critical path: pairs that did not
	// reuse refresh the buffer so the next occurrence can.
	if c.reuse != nil && irbReusable(rec.Instr) {
		reused := u.reuseHit || (dupU != nil && dupU.reuseHit)
		if !reused {
			e := irbEntryFor(rec)
			e.Ver1, e.Ver2 = u.ver1, u.ver2
			if c.reuse.Insert(c.cycle, rec.PC, e) && c.inj != nil {
				c.inj.AfterIRBInsert(rec.PC, c.reuse)
			}
		}
	}

	if c.tracer != nil {
		c.tracer.Commit(c.cycle, u.seq, rec)
	}
	if c.OnCommit != nil {
		c.OnCommit(rec)
	}
	if rec.Halt || (c.cfg.MaxInsns > 0 && c.Stats.Committed >= c.cfg.MaxInsns) {
		c.done = true
		c.Stats.Cycles = c.cycle
	}
}
