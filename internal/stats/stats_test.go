package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator != 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Errorf("Ratio(3,4) = %v", Ratio(3, 4))
	}
}

func TestPctLoss(t *testing.T) {
	if got := PctLoss(2.0, 1.0); got != 50 {
		t.Errorf("PctLoss(2,1) = %v, want 50", got)
	}
	if got := PctLoss(1.0, 1.5); got != -50 {
		t.Errorf("PctLoss(1,1.5) = %v, want -50", got)
	}
	if PctLoss(0, 1) != 0 {
		t.Error("PctLoss with zero base != 0")
	}
}

func TestRecovered(t *testing.T) {
	// DIE=1.0, 2xALU=2.0, IRB=1.5 recovers half the gap.
	if got := Recovered(1, 2, 1.5); got != 50 {
		t.Errorf("Recovered = %v, want 50", got)
	}
	if Recovered(1, 1, 5) != 0 {
		t.Error("degenerate gap should give 0")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "ipc")
	tb.AddRow("gzip", 1.5)
	tb.AddRow("verylongbenchmarkname", 0.25)
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "gzip") {
		t.Errorf("table missing content:\n%s", out)
	}
	if !strings.Contains(out, "1.50") || !strings.Contains(out, "0.25") {
		t.Errorf("floats not rendered with 2 decimals:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, two rows.
	if len(lines) != 5 {
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// All data lines padded to equal field starts: the rule line is as
	// wide as the widest row.
	if len(lines[2]) < len("verylongbenchmarkname") {
		t.Errorf("rule not sized to widest cell:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x", 1.0)
	csv := tb.CSV()
	if csv != "a,b\nx,1.00\n" {
		t.Errorf("CSV = %q", csv)
	}
}

// Property: Recovered(lo, hi, lo) = 0 and Recovered(lo, hi, hi) = 100 for
// any distinct lo, hi.
func TestRecoveredEndpointsProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if a == b || a != a || b != b || a > 1e100 || a < -1e100 || b > 1e100 || b < -1e100 {
			return true
		}
		return Recovered(a, b, a) == 0 && Recovered(a, b, b) == 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearman(t *testing.T) {
	perfect := []float64{1, 2, 3, 4, 5}
	mono := []float64{10, 20, 35, 70, 1000} // monotone, nonlinear
	if got := Spearman(perfect, mono); got != 1 {
		t.Errorf("Spearman(monotone) = %v, want 1", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := Spearman(perfect, rev); got != -1 {
		t.Errorf("Spearman(reversed) = %v, want -1", got)
	}
	if got := Spearman(perfect, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Errorf("Spearman(constant) = %v, want 0", got)
	}
	if got := Spearman(perfect, perfect[:3]); got != 0 {
		t.Errorf("Spearman(length mismatch) = %v, want 0", got)
	}
	// Ties get average ranks: still a strong but imperfect correlation.
	tied := []float64{1, 2, 2, 3, 4}
	if got := Spearman(perfect, tied); got < 0.9 || got > 1 {
		t.Errorf("Spearman(ties) = %v, want in (0.9, 1]", got)
	}
}
