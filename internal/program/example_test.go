package program_test

import (
	"fmt"

	"repro/internal/fsim"
	"repro/internal/isa"
	"repro/internal/program"
)

// ExampleBuilder assembles and functionally executes a small
// sum-of-squares loop.
func ExampleBuilder() {
	b := program.NewBuilder("sum-of-squares")
	b.LoadConst(1, 5) // r1 = n
	b.Label("loop")
	b.EmitOp(isa.OpMul, 2, 1, 1)    // r2 = r1*r1
	b.EmitOp(isa.OpAdd, 3, 3, 2)    // r3 += r2
	b.EmitImm(isa.OpAddi, 1, 1, -1) // r1--
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})

	m := fsim.New(b.MustBuild())
	if _, err := m.Run(1000); err != nil {
		panic(err)
	}
	fmt.Printf("1²+2²+3²+4²+5² = %d\n", m.Regs[3])
	// Output: 1²+2²+3²+4²+5² = 55
}
