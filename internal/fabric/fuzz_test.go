package fabric

import (
	"testing"

	"repro/internal/sim"
)

// FuzzJournalReplay throws arbitrary WAL images at the replay decoder.
// Replay must never panic, must account for every input byte as either
// replayed prefix or discarded tail, and must be idempotent: replaying
// the prefix it declared valid reproduces exactly the same records with
// no tail error. Truncated and corrupt tails are detected and skipped,
// never trusted.
func FuzzJournalReplay(f *testing.F) {
	// Seed from real frames alongside the committed corpus files, so the
	// fuzzer starts from deep inside the valid-WAL space.
	res := sim.Result{Bench: "gzip", Config: "SIE"}
	res.Core.Committed = 4096
	var clean []byte
	for _, rec := range []Record{
		{Type: RecRun, RunID: "run-0001", Cells: 2},
		{Type: RecCache, Key: "sha256:seed", Result: &res},
		{Type: RecCell, RunID: "run-0001", Index: 0, Key: "sha256:seed", CacheHit: true},
		{Type: RecFinish, RunID: "run-0001", Status: "done"},
	} {
		frame, err := encodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		clean = append(clean, frame...)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // torn final payload
	f.Add(clean[:5])            // torn header
	f.Add([]byte{})
	corrupt := append([]byte(nil), clean...)
	corrupt[len(corrupt)-1] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, stats := decodeRecords(data)
		if stats.Records != len(recs) {
			t.Fatalf("stats count %d records, replay returned %d", stats.Records, len(recs))
		}
		if stats.ValidBytes+stats.TruncatedBytes != int64(len(data)) {
			t.Fatalf("byte accounting broken: valid %d + truncated %d != input %d",
				stats.ValidBytes, stats.TruncatedBytes, len(data))
		}
		if stats.TruncatedBytes > 0 && stats.TailError == "" {
			t.Fatal("bytes discarded without a tail error")
		}
		if stats.TruncatedBytes == 0 && stats.TailError != "" {
			t.Fatalf("tail error %q on a fully-replayed log", stats.TailError)
		}
		// Idempotence: the declared-valid prefix must replay cleanly to
		// the same record count (crash recovery truncates to exactly it).
		again, againStats := decodeRecords(data[:stats.ValidBytes])
		if len(again) != len(recs) || againStats.TailError != "" || againStats.TruncatedBytes != 0 {
			t.Fatalf("valid prefix did not replay cleanly: %d vs %d records, %+v",
				len(again), len(recs), againStats)
		}
	})
}
