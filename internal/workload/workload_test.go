package workload

import (
	"testing"

	"repro/internal/fsim"
	"repro/internal/isa"
	"repro/internal/program"
)

func testProfile() Profile {
	p, ok := ByName("gzip")
	if !ok {
		panic("gzip profile missing")
	}
	return p.WithIters(20_000)
}

func TestAllProfilesGenerateAndRun(t *testing.T) {
	for _, p := range SPEC2000() {
		p := p.WithIters(30_000)
		t.Run(p.Name, func(t *testing.T) {
			prog, err := Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			m := fsim.New(prog)
			n, err := m.Run(5_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Halted {
				t.Fatalf("%s did not halt within 5M instructions", p.Name)
			}
			// WithIters targets ~30k dynamic instructions; allow a
			// generous band since branches skip work.
			if n < 10_000 || n > 200_000 {
				t.Errorf("%s ran %d instructions, want ~30k", p.Name, n)
			}
		})
	}
}

func TestProfilesAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range SPEC2000() {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
	if len(seen) != 12 {
		t.Errorf("got %d profiles, want 12", len(seen))
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("art"); !ok {
		t.Error("art missing")
	}
	if _, ok := ByName("doom"); ok {
		t.Error("found nonexistent profile")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := testProfile()
	a := mustGenerate(p)
	b := mustGenerate(p)
	if len(a.Code) != len(b.Code) {
		t.Fatalf("code lengths differ: %d vs %d", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, a.Code[i], b.Code[i])
		}
	}
	ma, mb := fsim.New(a), fsim.New(b)
	ma.Run(1_000_000)
	mb.Run(1_000_000)
	if ma.Count != mb.Count || ma.Regs != mb.Regs {
		t.Error("two generations of the same profile executed differently")
	}
}

func TestSeedChangesProgram(t *testing.T) {
	p := testProfile()
	a := mustGenerate(p)
	p.Seed++
	b := mustGenerate(p)
	same := len(a.Code) == len(b.Code)
	if same {
		identical := true
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical programs")
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := testProfile()
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Iters = 0 },
		func(p *Profile) { p.Unroll = 0 },
		func(p *Profile) { p.ArrayWords = 100 },
		func(p *Profile) { p.ArrayWords = 8 },
		func(p *Profile) { p.ValueRange = 0 },
		func(p *Profile) { p.ChainDepth = 0 },
		func(p *Profile) { p.Stride = -2 },
		func(p *Profile) { p.Loads = 0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

// TestInstructionMixTracksProfile checks that FP profiles emit FP work and
// pointer-chase profiles emit dependent loads.
func TestInstructionMixTracksProfile(t *testing.T) {
	counts := func(name string) map[isa.FUClass]int {
		p, _ := ByName(name)
		prog := mustGenerate(p.WithIters(1000))
		m := map[isa.FUClass]int{}
		for _, in := range prog.Code {
			m[in.Op.Info().Class]++
		}
		return m
	}
	if counts("ammp")[isa.FUFPMult] == 0 {
		t.Error("ammp has no FP mult/div/sqrt instructions")
	}
	if counts("gzip")[isa.FUFPMult] != 0 {
		t.Error("gzip (integer benchmark) emits FP mult work")
	}
}

// TestValueLocalityDrivesOperandRepetition verifies the central premise:
// programs with a small ValueRange re-execute the same (pc, operands)
// tuples far more often than programs with a large one.
func TestValueLocalityDrivesOperandRepetition(t *testing.T) {
	repRate := func(valueRange uint64) float64 {
		p := testProfile()
		p.ValueRange = valueRange
		prog := mustGenerate(p.WithIters(40_000))
		m := fsim.New(prog)
		seen := map[[3]uint64]bool{}
		var repeats, total int
		for !m.Halted {
			r, err := m.Step()
			if err != nil {
				t.Fatal(err)
			}
			oi := r.Instr.Op.Info()
			if !oi.HasDest || oi.IsMem() {
				continue
			}
			key := [3]uint64{r.PC, r.Src1, r.Src2}
			if seen[key] {
				repeats++
			}
			seen[key] = true
			total++
			if total > 3_000_000 {
				t.Fatal("runaway execution")
			}
		}
		return float64(repeats) / float64(total)
	}
	local := repRate(16)
	diffuse := repRate(1 << 30)
	if local <= diffuse {
		t.Errorf("value locality has no effect: local=%.3f diffuse=%.3f", local, diffuse)
	}
	if local < 0.3 {
		t.Errorf("small-alphabet repetition rate %.3f unexpectedly low", local)
	}
}

func TestWithIters(t *testing.T) {
	p := testProfile()
	prog := mustGenerate(p)
	m := fsim.New(prog)
	n, err := m.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if n < 5_000 || n > 100_000 {
		t.Errorf("WithIters(20k) ran %d instructions", n)
	}
}

func TestWorkingSetTracksArrayWords(t *testing.T) {
	small := testProfile()
	small.ArrayWords = 1 << 8
	large := testProfile()
	large.ArrayWords = 1 << 14
	// The data segment footprint should scale with ArrayWords.
	ps := mustGenerate(small)
	pl := mustGenerate(large)
	if len(pl.Data) <= len(ps.Data) {
		t.Errorf("working set did not grow: %d vs %d words", len(ps.Data), len(pl.Data))
	}
}

func TestSPEC95Suite(t *testing.T) {
	profiles := SPEC95()
	if len(profiles) != 8 {
		t.Fatalf("SPEC95 has %d profiles, want 8", len(profiles))
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		prog, err := Generate(p.WithIters(20_000))
		if err != nil {
			t.Fatal(err)
		}
		m := fsim.New(prog)
		if _, err := m.Run(3_000_000); err != nil {
			t.Fatal(err)
		}
		if !m.Halted {
			t.Errorf("%s did not halt", p.Name)
		}
	}
	if _, ok := ByName95("swim"); !ok {
		t.Error("ByName95 missed swim")
	}
	if _, ok := ByName95("gzip"); ok {
		t.Error("ByName95 found a SPEC2000 profile")
	}
}

// mustGenerate is the test-side Generate that panics on error.
func mustGenerate(p Profile) *program.Program {
	prog, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return prog
}
