package core

import (
	"testing"

	"repro/internal/fsim"
	"repro/internal/isa"
	"repro/internal/program"
)

// loopProgram builds a program that runs a simple dependent-add loop n
// times: lots of single-cycle ALU work with perfect value reuse across
// iterations of the invariant instructions.
func loopProgram(n int64) *program.Program {
	b := program.NewBuilder("loop")
	b.LoadConst(1, n)
	b.LoadConst(5, 3)
	b.Label("loop")
	b.EmitOp(isa.OpAdd, 2, 2, 5)    // r2 += 3
	b.EmitOp(isa.OpXor, 3, 5, 5)    // invariant: always 0
	b.EmitOp(isa.OpAnd, 4, 5, 5)    // invariant: always 3
	b.EmitImm(isa.OpAddi, 1, 1, -1) // r1--
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild()
}

// memProgram exercises loads, stores and store-to-load forwarding.
func memProgram(n int) *program.Program {
	b := program.NewBuilder("mem")
	base := b.Array(64, func(i int) uint64 { return uint64(i) })
	b.LoadConst(1, int64(base)) // r1 = base
	b.LoadConst(2, int64(n))    // r2 = trip count
	b.Label("loop")
	b.EmitImm(isa.OpLoad, 3, 1, 0)                       // r3 = a[i]
	b.EmitImm(isa.OpAddi, 3, 3, 7)                       //
	b.Emit(isa.Instr{Op: isa.OpStore, Src1: 1, Src2: 3}) // a[i] = r3
	b.EmitImm(isa.OpLoad, 4, 1, 0)                       // forwarded load
	b.EmitOp(isa.OpAdd, 5, 5, 4)
	b.EmitImm(isa.OpAddi, 1, 1, 8)
	b.EmitImm(isa.OpAddi, 2, 2, -1)
	b.Branch(isa.OpBne, 2, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild()
}

// branchyProgram has a data-dependent branch pattern that defeats the
// predictor part of the time plus calls and returns.
func branchyProgram(n int64) *program.Program {
	b := program.NewBuilder("branchy")
	b.LoadConst(1, n)
	b.LoadConst(6, 2654435761)
	b.Label("loop")
	b.EmitOp(isa.OpMul, 2, 1, 6) // pseudo-random
	b.EmitImm(isa.OpAddi, 7, 0, 13)
	b.EmitOp(isa.OpRem, 3, 2, 7)
	b.EmitImm(isa.OpAddi, 8, 0, 7)
	b.Branch(isa.OpBlt, 3, 8, "low")
	b.EmitOp(isa.OpAdd, 4, 4, 3)
	b.Jump("join")
	b.Label("low")
	b.Call("bump")
	b.Label("join")
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	b.Label("bump")
	b.EmitImm(isa.OpAddi, 4, 4, 1)
	b.Ret()
	return b.MustBuild()
}

// fpProgram mixes FP pipelines including long-latency divide/sqrt.
func fpProgram(n int64) *program.Program {
	b := program.NewBuilder("fp")
	b.LoadConst(1, n)
	b.EmitImm(isa.OpAddi, 2, 0, 3)
	b.EmitOp(isa.OpCvtIF, isa.FP0+1, 2, 0) // f1 = 3.0
	b.Label("loop")
	b.EmitOp(isa.OpFAdd, isa.FP0+2, isa.FP0+2, isa.FP0+1)
	b.EmitOp(isa.OpFMul, isa.FP0+3, isa.FP0+1, isa.FP0+1)
	b.EmitOp(isa.OpFDiv, isa.FP0+4, isa.FP0+3, isa.FP0+1)
	b.EmitOp(isa.OpFSqrt, isa.FP0+5, isa.FP0+3, 0)
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild()
}

// runVerified runs prog on a core with cfg and verifies the committed
// stream against an independent functional simulation, returning the core
// for stats inspection.
func runVerified(t *testing.T, cfg Config, prog *program.Program) *Core {
	t.Helper()
	c, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	oracle := fsim.New(prog)
	c.OnCommit = func(rec *fsim.Retired) {
		want, err := oracle.Step()
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if rec.Seq != want.Seq || rec.PC != want.PC || rec.Result != want.Result ||
			rec.NextPC != want.NextPC || rec.Addr != want.Addr {
			t.Fatalf("commit diverged from oracle:\n got %+v\nwant %+v", rec, want)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !oracle.Halted && cfg.MaxInsns == 0 {
		t.Fatal("core halted before oracle")
	}
	return c
}

// quicken shrinks the simulation bounds for unit tests.
func quicken(cfg Config) Config {
	cfg.MaxCycles = 5_000_000
	return cfg
}

func allPrograms() []*program.Program {
	return []*program.Program{
		loopProgram(300),
		memProgram(100),
		branchyProgram(300),
		fpProgram(100),
	}
}

func allModes() []Config {
	out := make([]Config, 0, len(Modes()))
	for _, mi := range Modes() {
		out = append(out, quicken(mi.Base()))
	}
	return out
}

// TestAllModesMatchOracle is the master architectural-correctness test:
// every mode must retire exactly the functional execution of every test
// program.
func TestAllModesMatchOracle(t *testing.T) {
	for _, prog := range allPrograms() {
		for _, cfg := range allModes() {
			t.Run(prog.Name+"/"+string(cfg.Mode), func(t *testing.T) {
				c := runVerified(t, cfg, prog)
				if c.Stats.Committed == 0 {
					t.Fatal("nothing committed")
				}
			})
		}
	}
}

func TestSIEFasterThanDIE(t *testing.T) {
	for _, prog := range allPrograms() {
		sie := runVerified(t, quicken(BaseSIE()), prog)
		die := runVerified(t, quicken(BaseDIE()), prog)
		if die.Stats.IPC() > sie.Stats.IPC()*1.01 {
			t.Errorf("%s: DIE IPC %.3f exceeds SIE IPC %.3f", prog.Name, die.Stats.IPC(), sie.Stats.IPC())
		}
		if die.Stats.Cycles < sie.Stats.Cycles {
			t.Errorf("%s: DIE finished in fewer cycles (%d) than SIE (%d)",
				prog.Name, die.Stats.Cycles, sie.Stats.Cycles)
		}
	}
}

// TestDIEIRBRecoversIPC is the headline behaviour: on reuse-friendly code,
// DIE-IRB must land between DIE and SIE.
func TestDIEIRBRecoversIPC(t *testing.T) {
	prog := loopProgram(2000)
	sie := runVerified(t, quicken(BaseSIE()), prog).Stats.IPC()
	die := runVerified(t, quicken(BaseDIE()), prog).Stats.IPC()
	irbC := runVerified(t, quicken(BaseDIEIRB()), prog)
	irbIPC := irbC.Stats.IPC()
	if die >= sie {
		t.Fatalf("expected DIE (%.3f) < SIE (%.3f) on ALU-bound loop", die, sie)
	}
	if irbIPC <= die {
		t.Errorf("DIE-IRB IPC %.3f did not beat DIE %.3f", irbIPC, die)
	}
	if irbC.Stats.IRBReuseHits == 0 {
		t.Error("no reuse hits on a reuse-friendly loop")
	}
}

func TestDupStreamSkipsFUsOnReuse(t *testing.T) {
	c := runVerified(t, quicken(BaseDIEIRB()), loopProgram(2000))
	total := c.Stats.IRBReuseHits + c.Stats.DupFUExec
	if total == 0 {
		t.Fatal("no duplicate executions recorded")
	}
	// Two of the five loop-body instructions (the xor and and on the
	// invariant r5) repeat with identical operands every iteration, so
	// the steady-state reuse fraction is 2/5.
	frac := float64(c.Stats.IRBReuseHits) / float64(total)
	if frac < 0.35 || frac > 0.45 {
		t.Errorf("reuse fraction %.2f outside the expected 0.40 band", frac)
	}
}

func TestDIEDoublesDynamicInstructions(t *testing.T) {
	prog := loopProgram(200)
	die := runVerified(t, quicken(BaseDIE()), prog)
	if die.Stats.CopiesCommitted != 2*die.Stats.Committed {
		t.Errorf("copies %d != 2x architected %d", die.Stats.CopiesCommitted, die.Stats.Committed)
	}
	sie := runVerified(t, quicken(BaseSIE()), prog)
	if sie.Stats.CopiesCommitted != sie.Stats.Committed {
		t.Errorf("SIE copies %d != architected %d", sie.Stats.CopiesCommitted, sie.Stats.Committed)
	}
	if sie.Stats.Committed != die.Stats.Committed {
		t.Errorf("architected instruction counts differ: %d vs %d", sie.Stats.Committed, die.Stats.Committed)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	c := runVerified(t, quicken(BaseSIE()), memProgram(200))
	if c.Stats.LoadForwarded == 0 {
		t.Error("no forwarded loads in a store/reload loop")
	}
	if c.Stats.Loads == 0 || c.Stats.Stores == 0 {
		t.Errorf("memory ops missing: %d loads, %d stores", c.Stats.Loads, c.Stats.Stores)
	}
}

func TestBranchRecovery(t *testing.T) {
	c := runVerified(t, quicken(BaseSIE()), branchyProgram(500))
	if c.Stats.Mispredicts == 0 {
		t.Error("pseudo-random branches never mispredicted")
	}
	if c.Stats.WrongPath == 0 {
		t.Error("no wrong-path instructions dispatched")
	}
	if c.Stats.Squashed == 0 {
		t.Error("no squashes recorded")
	}
}

func TestMoreALUsHelpDIE(t *testing.T) {
	prog := loopProgram(2000)
	die := runVerified(t, quicken(BaseDIE()), prog).Stats.IPC()
	die2x := runVerified(t, quicken(BaseDIE().WithDoubledALUs()), prog).Stats.IPC()
	if die2x <= die {
		t.Errorf("2xALU DIE IPC %.3f not above DIE %.3f on ALU-bound loop", die2x, die)
	}
}

func TestMaxInsnsStopsEarly(t *testing.T) {
	cfg := quicken(BaseSIE())
	cfg.MaxInsns = 50
	c, err := New(cfg, loopProgram(10000))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Committed != 50 {
		t.Errorf("committed %d, want 50", c.Stats.Committed)
	}
}

func TestConfigValidationErrors(t *testing.T) {
	bad := BaseSIE()
	bad.RUUSize = 0
	if _, err := New(bad, loopProgram(1)); err == nil {
		t.Error("accepted zero RUU")
	}
	bad2 := BaseSIE()
	bad2.Mode = "NMR-9" // not a registered mode
	if _, err := New(bad2, loopProgram(1)); err == nil {
		t.Error("accepted unknown mode")
	}
	bad4 := baseConfig(TMR)
	bad4.VoteWidth = 4 // even vote widths cannot break ties
	if _, err := New(bad4, loopProgram(1)); err == nil {
		t.Error("accepted even vote width")
	}
	bad5 := BaseDIE()
	bad5.ReplayEpoch = 128 // knob only meaningful in REPLAY mode
	if _, err := New(bad5, loopProgram(1)); err == nil {
		t.Error("accepted ReplayEpoch on a non-replay mode")
	}
	bad3 := BaseDIEIRB()
	bad3.IRB.Entries = 3
	if _, err := New(bad3, loopProgram(1)); err == nil {
		t.Error("accepted invalid IRB config")
	}
}

func TestDeterminism(t *testing.T) {
	prog := branchyProgram(300)
	run := func() Stats {
		c, err := New(quicken(BaseDIEIRB()), prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestIRBInsertsHappenAtCommit(t *testing.T) {
	c := runVerified(t, quicken(BaseDIEIRB()), loopProgram(500))
	st := c.IRB().Stats
	if st.Inserts == 0 {
		t.Fatal("no IRB inserts")
	}
	if st.Lookups == 0 || st.PCHits == 0 {
		t.Errorf("IRB traffic missing: %+v", st)
	}
}

func TestSIEIRBReusesToo(t *testing.T) {
	cfg := quicken(BaseSIE())
	cfg.Mode = SIEIRB
	c := runVerified(t, cfg, loopProgram(1000))
	if c.Stats.IRBReuseHits == 0 {
		t.Error("SIE-IRB made no reuse hits")
	}
}

func TestRingSquash(t *testing.T) {
	r := newRing(8)
	if r.cap() != 8 || r.len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d", r.cap(), r.len())
	}
	mk := func(seq uint64) *uop { return &uop{seq: seq} }
	for i := uint64(1); i <= 5; i++ {
		r.push(mk(i))
	}
	var freed int
	if n := r.squashYoungerThan(3, func(*uop) { freed++ }); n != 2 {
		t.Errorf("squashed %d, want 2", n)
	}
	if r.len() != 3 {
		t.Errorf("len = %d, want 3", r.len())
	}
	if freed != 2 {
		t.Errorf("free callback ran %d times, want 2", freed)
	}
	u := r.popHead()
	if u.seq != 1 {
		t.Errorf("head seq = %d, want 1", u.seq)
	}
	// Push after squash reuses the freed space.
	for i := uint64(10); i < 16; i++ {
		r.push(mk(i))
	}
	if r.free() != 0 {
		t.Errorf("free = %d, want 0", r.free())
	}
}

func TestOutSignature(t *testing.T) {
	// ALU
	rec := fsim.Retired{PC: 10, Instr: isa.Instr{Op: isa.OpAdd, Dest: 1, Src1: 2, Src2: 3}}
	if got := outSignature(&rec, 4, 5); got != 9 {
		t.Errorf("add sig = %d, want 9", got)
	}
	// Store folds the data value into the signature.
	st := fsim.Retired{PC: 10, Instr: isa.Instr{Op: isa.OpStore, Src1: 1, Src2: 2}}
	a := outSignature(&st, 100, 7)
	bSig := outSignature(&st, 100, 8)
	if a == bSig {
		t.Error("store signature ignores data value")
	}
	// Branch encodes direction and target.
	br := fsim.Retired{PC: 10, Instr: isa.Instr{Op: isa.OpBeq, Src1: 1, Src2: 2, Imm: 5}}
	taken := outSignature(&br, 3, 3)
	notTaken := outSignature(&br, 3, 4)
	if taken == notTaken {
		t.Error("branch signature ignores direction")
	}
	if taken != 15*2+1 {
		t.Errorf("taken sig = %d, want %d", taken, 15*2+1)
	}
	// Memory ops: effective address.
	ld := fsim.Retired{PC: 10, Instr: isa.Instr{Op: isa.OpLoad, Dest: 1, Src1: 2, Imm: 8}}
	if got := outSignature(&ld, 96, 0); got != 104 {
		t.Errorf("load sig = %d, want 104", got)
	}
}

func TestFUPoolOccupancy(t *testing.T) {
	var counts [isa.NumFUClasses]int
	counts[isa.FUIntMult] = 1
	p := newFUPool(counts)
	if !p.alloc(isa.FUIntMult, 10, occupancy(isa.OpDiv)) {
		t.Fatal("first div denied")
	}
	// Divider busy for 20 cycles.
	if p.alloc(isa.FUIntMult, 11, 1) {
		t.Error("divider double-booked")
	}
	if !p.alloc(isa.FUIntMult, 30, 1) {
		t.Error("divider not released")
	}
}

func TestOccupancy(t *testing.T) {
	if occupancy(isa.OpAdd) != 1 || occupancy(isa.OpMul) != 1 {
		t.Error("pipelined op occupancy != 1")
	}
	if occupancy(isa.OpDiv) != 20 || occupancy(isa.OpFSqrt) != 24 {
		t.Error("non-pipelined occupancy wrong")
	}
}

func TestNewAtRejectsHaltedMachine(t *testing.T) {
	prog := loopProgram(5)
	m := fsim.New(prog)
	if _, err := m.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAt(quicken(BaseSIE()), m); err == nil {
		t.Error("NewAt accepted a halted machine")
	}
}

func TestNewAtResumesMidProgram(t *testing.T) {
	prog := loopProgram(500)
	m := fsim.New(prog)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	c, err := NewAt(quicken(BaseSIE()), m)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle must also start from instruction 101.
	oracle := fsim.New(prog)
	oracle.Run(100)
	c.OnCommit = func(rec *fsim.Retired) {
		want, oerr := oracle.Step()
		if oerr != nil || rec.Seq != want.Seq || rec.Result != want.Result {
			t.Fatalf("mid-program resume diverged at seq %d", rec.Seq)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Committed == 0 {
		t.Fatal("nothing committed after resume")
	}
}
