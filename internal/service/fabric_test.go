package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/service/api"
)

// readEvents consumes an SSE response body, decoding each data frame
// into a CellEvent and sending it on the returned channel, which closes
// when the stream ends (terminal event or disconnect).
func readEvents(t *testing.T, resp *http.Response) <-chan api.CellEvent {
	t.Helper()
	out := make(chan api.CellEvent, 64)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev api.CellEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Errorf("decoding event %q: %v", line, err)
				return
			}
			out <- ev
		}
	}()
	return out
}

// subscribe opens the SSE stream for a run.
func subscribe(t *testing.T, base, runID string) *http.Response {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + runID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET events: status %d", resp.StatusCode)
	}
	return resp
}

// TestRunEventsLiveStream exercises the live SSE path directly: a
// subscriber attached before any events sees every published cell in
// order plus the terminal frame, and a subscriber that disconnects
// mid-stream tears down only its own stream — later events still reach
// the survivor and the stream table is cleaned up by the terminal event.
func TestRunEventsLiveStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.openStream("run-live")

	early := subscribe(t, ts.URL, "run-live")
	earlyEvents := readEvents(t, early)

	cr := CellResult{Bench: "gzip", Config: "SIE"}
	s.publishEvent("run-live", api.CellEvent{Index: 0, Cell: &cr})
	s.publishEvent("run-live", api.CellEvent{Index: 1, Cell: &cr})

	// A second subscriber joins mid-run, reads the history, then drops.
	quitter := subscribe(t, ts.URL, "run-live")
	quitterEvents := readEvents(t, quitter)
	if ev := <-quitterEvents; ev.Seq != 0 || ev.Index != 0 {
		t.Fatalf("mid-run subscriber missed history: %+v", ev)
	}
	quitter.Body.Close() // disconnect; the run must not care

	s.publishEvent("run-live", api.CellEvent{Index: 2, Cell: &cr})
	s.publishEvent("run-live", api.CellEvent{Index: -1, Done: true, Status: StatusDone})

	var got []api.CellEvent
	for ev := range earlyEvents {
		got = append(got, ev)
	}
	if len(got) != 4 {
		t.Fatalf("survivor saw %d events, want 4: %+v", len(got), got)
	}
	for i, ev := range got[:3] {
		if ev.Seq != i || ev.Index != i || ev.Cell == nil || ev.RunID != "run-live" {
			t.Errorf("event %d malformed: %+v", i, ev)
		}
	}
	last := got[3]
	if !last.Done || last.Status != StatusDone || last.Index != -1 {
		t.Errorf("terminal event malformed: %+v", last)
	}

	s.streamMu.Lock()
	live := len(s.streams)
	s.streamMu.Unlock()
	if live != 0 {
		t.Errorf("%d streams left in the table after the terminal event", live)
	}
}

// TestRunEventsReplayAndErrors: a finished run replays its recorded
// cells over SSE; an unknown run is 404.
func TestRunEventsReplayAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, run, _ := postRun(t, ts.URL, smallRun)
	if code != http.StatusOK || run.Status != StatusDone {
		t.Fatalf("seed run: code %d status %s", code, run.Status)
	}

	resp := subscribe(t, ts.URL, run.ID)
	var got []api.CellEvent
	for ev := range readEvents(t, resp) {
		got = append(got, ev)
	}
	if len(got) != 2 {
		t.Fatalf("replay produced %d events, want cell+done: %+v", len(got), got)
	}
	if got[0].Cell == nil || got[0].Cell.Result == nil || got[0].Cell.Bench != "gzip" {
		t.Errorf("replayed cell malformed: %+v", got[0])
	}
	if !got[1].Done || got[1].Status != StatusDone {
		t.Errorf("replayed terminal malformed: %+v", got[1])
	}

	r, err := http.Get(ts.URL + "/v1/runs/run-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run events: status %d, want 404", r.StatusCode)
	}
}

// TestSSEDisconnectLeavesRunAndJournalIntact is the client-disconnect
// drill: an SSE subscriber watching a live run drops mid-stream; the run
// (owned by the submitting request, not the watcher) still completes,
// and the journal holds its full accepted→finished record.
func TestSSEDisconnectLeavesRunAndJournalIntact(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := fabric.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	ctl := stubRunner(t)
	_, ts := newTestServer(t, Config{Workers: 1, Journal: j})

	runDone := make(chan Run, 1)
	go func() {
		_, run, _ := postRun(t, ts.URL, smallRun)
		runDone <- run
	}()
	<-ctl.started // the run is in flight, holding on the stub

	// Find the in-flight run and watch it.
	var runID string
	waitForCond(t, func() bool {
		code, body := get(t, ts.URL+"/v1/runs")
		var list struct {
			Runs []Run `json:"runs"`
		}
		if code != http.StatusOK || json.Unmarshal([]byte(body), &list) != nil {
			return false
		}
		for _, r := range list.Runs {
			if r.Finished == nil {
				runID = r.ID
				return true
			}
		}
		return false
	})
	watcher := subscribe(t, ts.URL, runID)
	watcher.Body.Close() // disconnect mid-run

	close(ctl.release)
	run := <-runDone
	if run.Status != StatusDone {
		t.Fatalf("run finished %s after watcher disconnect, want done", run.Status)
	}

	// The journal must hold the run's complete lifecycle.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs, stats, err := fabric.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if stats.TruncatedBytes != 0 {
		t.Errorf("journal has a torn tail after a clean run: %+v", stats)
	}
	var sawRun, sawFinish bool
	for _, rec := range recs {
		switch {
		case rec.Type == fabric.RecRun && rec.RunID == runID:
			sawRun = true
		case rec.Type == fabric.RecFinish && rec.RunID == runID:
			sawFinish = true
			if rec.Status != StatusDone {
				t.Errorf("journaled finish status %q, want done", rec.Status)
			}
		}
	}
	if !sawRun || !sawFinish {
		t.Errorf("journal incomplete: run=%v finish=%v over %d records", sawRun, sawFinish, len(recs))
	}
}

// twoCellRun expands to two cells on distinct benchmarks, so resume
// behavior is visible per cell.
const twoCellRun = `{"configs":["DIE-IRB"],"benchmarks":["gzip","bzip2"],"insns":2000}`

// TestJournalResumeSkipsCompletedCells is the coordinator-restart drill:
// a run crashes after completing its cells but before its finish record.
// The restarted server must resume it from the journal — every completed
// cell served from the replayed cache, bit-identical, not re-simulated —
// and new run IDs must not collide with the recovered one.
func TestJournalResumeSkipsCompletedCells(t *testing.T) {
	dirA := t.TempDir()
	jA, _, _, err := fabric.OpenJournal(dirA)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Journal: jA})
	code, first, _ := postRun(t, ts.URL, twoCellRun)
	if code != http.StatusOK || first.Status != StatusDone || first.Cells != 2 {
		t.Fatalf("seed run: code %d %+v", code, first)
	}
	if err := jA.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window by rebuilding the WAL without the finish
	// record: the run was accepted and every cell landed, but the server
	// died before marking it done.
	_, recs, _, err := fabric.OpenJournal(dirA)
	if err != nil {
		t.Fatal(err)
	}
	dirB := t.TempDir()
	jB, _, _, err := fabric.OpenJournal(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if err := jB.Close(); err != nil { // reopen below, as a restart would
		t.Fatal(err)
	}
	jB, _, _, err = fabric.OpenJournal(dirB)
	if err != nil {
		t.Fatal(err)
	}
	defer jB.Close()
	for _, rec := range recs {
		if rec.Type == fabric.RecFinish {
			continue
		}
		if err := jB.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jB.Close(); err != nil {
		t.Fatal(err)
	}

	jB2, recsB, statsB, err := fabric.OpenJournal(dirB)
	if err != nil {
		t.Fatal(err)
	}
	defer jB2.Close()
	s2 := New(Config{Workers: 1, Journal: jB2})
	resumed, err := s2.RecoverJournal(context.Background(), recsB, statsB)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d runs, want 1", resumed)
	}

	snap, ok := s2.snapshotRun(first.ID)
	if !ok {
		t.Fatalf("recovered run %s has no record", first.ID)
	}
	if snap.Status != StatusDone {
		t.Fatalf("resumed run status %s, want done", snap.Status)
	}
	// Both cells must come from the replayed cache — a resume that
	// re-simulates completed cells defeats the journal.
	if snap.CacheHits != 2 {
		t.Errorf("resume simulated cells: %d cache hits, want 2", snap.CacheHits)
	}
	if len(snap.Results) != len(first.Results) {
		t.Fatalf("resumed run has %d results, want %d", len(snap.Results), len(first.Results))
	}
	for i := range snap.Results {
		if !snap.Results[i].CacheHit {
			t.Errorf("cell %d re-simulated on resume", i)
		}
		if !reflect.DeepEqual(snap.Results[i].Result, first.Results[i].Result) {
			t.Errorf("cell %d result differs from the pre-crash run", i)
		}
	}

	// Replay metrics surface the recovery, and fresh IDs advance past the
	// recovered run instead of colliding.
	info := s2.replay.Load()
	if info == nil || info.runs != 1 || info.resumed != 1 {
		t.Errorf("replay info wrong: %+v", info)
	}
	if next := s2.newRun(1); next.ID == first.ID {
		t.Errorf("new run ID %s collides with the recovered run", next.ID)
	}
}

// TestJournalRestoreFinishedRun: a cleanly finished run replays into a
// queryable record without re-executing anything.
func TestJournalRestoreFinishedRun(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := fabric.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Journal: j})
	code, first, _ := postRun(t, ts.URL, smallRun)
	if code != http.StatusOK || first.Status != StatusDone {
		t.Fatalf("seed run: code %d %+v", code, first)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, stats, err := fabric.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := New(Config{Workers: 1, Journal: j2})
	resumed, err := s2.RecoverJournal(context.Background(), recs, stats)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if resumed != 0 {
		t.Errorf("finished run was resumed (%d), want pure restore", resumed)
	}
	snap, ok := s2.snapshotRun(first.ID)
	if !ok || snap.Status != StatusDone || len(snap.Results) != 1 {
		t.Fatalf("restored run malformed: ok=%v %+v", ok, snap)
	}
	if !reflect.DeepEqual(snap.Results[0].Result, first.Results[0].Result) {
		t.Error("restored result differs from the original")
	}
}

// TestRetryAfterIsJittered: admission rejections carry a Retry-After
// whose value comes from the shared jittered backoff helper — sane
// bounds, and not the same constant for every rejected client.
func TestRetryAfterIsJittered(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.BeginDrain()
	values := map[string]bool{}
	for i := 0; i < 16; i++ {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(smallRun))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining POST: status %d, want 503", resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 || secs > 10 {
			t.Fatalf("Retry-After %q out of contract [1s,10s]", ra)
		}
		values[ra] = true
	}
	if len(values) < 2 {
		t.Errorf("16 rejections all got Retry-After %v — jitter is not applied", values)
	}
}

// TestLeaseEndpointsOverHTTP drives the coordinator's wire surface
// through the real mux with the fabric's own client: register and lease,
// heartbeat, and the draining refusal with its Retry-After.
func TestLeaseEndpointsOverHTTP(t *testing.T) {
	coord := fabric.NewCoordinator(fabric.CoordinatorConfig{})
	s, ts := newTestServer(t, Config{Coordinator: coord})
	cl := &fabric.Client{BaseURL: ts.URL}
	ctx := context.Background()

	resp, err := cl.Lease(ctx, api.LeaseRequest{Worker: "w1"})
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if resp.TTLMillis <= 0 || resp.HeartbeatMillis <= 0 {
		t.Errorf("lease response missing protocol timings: %+v", resp)
	}
	if _, err := cl.Heartbeat(ctx, api.HeartbeatRequest{Worker: "w1"}); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}

	// Missing identity is a 400, not a grant.
	if _, err := cl.Lease(ctx, api.LeaseRequest{}); err == nil {
		t.Error("anonymous lease was granted")
	}

	s.BeginDrain()
	_, err = cl.Lease(ctx, api.LeaseRequest{Worker: "w1"})
	var ra *fabric.RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("draining lease surfaced as %v, want *fabric.RetryAfterError", err)
	}
	if ra.Delay < time.Second || ra.Delay > 10*time.Second {
		t.Errorf("draining Retry-After %v out of contract", ra.Delay)
	}
	// Heartbeats keep working through the drain, so in-flight cells land.
	if _, err := cl.Heartbeat(ctx, api.HeartbeatRequest{Worker: "w1"}); err != nil {
		t.Errorf("heartbeat refused during drain: %v", err)
	}
}

// TestCoordinatorModeEndToEnd is the service-level fabric spine: a run
// posted to a coordinator-mode daemon executes on a pulled worker over
// the real HTTP lease protocol, and the /metrics fabric section reflects
// it.
func TestCoordinatorModeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord := fabric.NewCoordinator(fabric.CoordinatorConfig{
		LeaseTTL:   2 * time.Second,
		SweepEvery: 50 * time.Millisecond,
	})
	coord.Start(ctx)
	_, ts := newTestServer(t, Config{Workers: 1, Coordinator: coord})

	// The worker is a plain standalone server executing leased cells.
	wsrv := New(Config{Workers: 1})
	worker := &fabric.Worker{
		Client: &fabric.Client{BaseURL: ts.URL},
		ID:     "w1",
		Exec:   wsrv.RunJobs,
	}
	go worker.Run(ctx)
	waitForCond(t, func() bool { return coord.Metrics().WorkersLive >= 1 })

	code, run, _ := postRun(t, ts.URL, smallRun)
	if code != http.StatusOK {
		t.Fatalf("POST via coordinator: code %d", code)
	}
	if run.Status != StatusDone || len(run.Results) != 1 || run.Results[0].Result == nil {
		t.Fatalf("coordinator run malformed: %+v", run)
	}
	if run.Results[0].Result.IPC <= 0 {
		t.Errorf("worker-executed cell has IPC %v", run.Results[0].Result.IPC)
	}

	m := coord.Metrics()
	if m.CellsCompleted != 1 || m.CellsLocal != 0 {
		t.Errorf("cell did not execute on the worker: %+v", m)
	}
	code, metrics := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: code %d", code)
	}
	for _, want := range []string{
		`simserved_fabric_workers{state="live"} 1`,
		`simserved_fabric_cells_total{source="worker"} 1`,
		`simserved_fabric_retry_mismatches_total 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// waitForCond polls cond for up to 5s.
func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
