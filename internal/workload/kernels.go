package workload

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// This file provides hand-written classic kernels built directly on the
// program.Builder. Unlike the profile generator they compute verifiable
// results (tests check them against native Go computations), making them
// useful both as simulator acceptance tests and as realistic small
// workloads for the examples.

// Kernels returns every built-in kernel at a small representative size, in
// a stable order — the set that analysis sweeps and cmd/irblint iterate.
func Kernels() []*program.Program {
	mm, _ := KernelMatMul(8)
	bs, _ := KernelBubbleSort(64)
	mc, _ := KernelMemcpy(256)
	hg, _ := KernelHistogram(512)
	return []*program.Program{mm, bs, KernelFib(90), mc, hg, KernelCRC(512)}
}

// KernelMatMul builds an n x n integer matrix multiply C = A*B with
// A[i][j] = i+j and B[i][j] = i*2+j. The result matrix starts at the
// returned address, row-major.
func KernelMatMul(n int) (*program.Program, uint64) {
	b := program.NewBuilder("matmul")
	a := b.Array(n*n, func(i int) uint64 { return uint64(i/n + i%n) })
	bb := b.Array(n*n, func(i int) uint64 { return uint64((i/n)*2 + i%n) })
	cc := b.Array(n*n, func(i int) uint64 { return 0 })

	const (
		rI, rJ, rK   = 1, 2, 3
		rA, rB, rC   = 4, 5, 6
		rN           = 7
		rAcc         = 8
		rTmp, rTmp2  = 9, 10
		rVa, rVb     = 11, 12
		rRowA, rAddr = 13, 14
	)
	b.LoadConst(rA, int64(a))
	b.LoadConst(rB, int64(bb))
	b.LoadConst(rC, int64(cc))
	b.LoadConst(rN, int64(n))

	b.LoadConst(rI, 0)
	b.Label("i_loop")
	b.LoadConst(rJ, 0)
	b.Label("j_loop")
	b.LoadConst(rAcc, 0)
	b.LoadConst(rK, 0)
	// rRowA = &A[i][0]
	b.EmitOp(isa.OpMul, rRowA, rI, rN)
	b.EmitOp(isa.OpShl, rRowA, rRowA, regConst(b, 3))
	b.EmitOp(isa.OpAdd, rRowA, rRowA, rA)
	b.Label("k_loop")
	// rVa = A[i][k]
	b.EmitOp(isa.OpShl, rTmp, rK, regConst(b, 3))
	b.EmitOp(isa.OpAdd, rTmp, rTmp, rRowA)
	b.EmitImm(isa.OpLoad, rVa, rTmp, 0)
	// rVb = B[k][j]
	b.EmitOp(isa.OpMul, rTmp2, rK, rN)
	b.EmitOp(isa.OpAdd, rTmp2, rTmp2, rJ)
	b.EmitOp(isa.OpShl, rTmp2, rTmp2, regConst(b, 3))
	b.EmitOp(isa.OpAdd, rTmp2, rTmp2, rB)
	b.EmitImm(isa.OpLoad, rVb, rTmp2, 0)
	// acc += va*vb
	b.EmitOp(isa.OpMul, rVa, rVa, rVb)
	b.EmitOp(isa.OpAdd, rAcc, rAcc, rVa)
	b.EmitImm(isa.OpAddi, rK, rK, 1)
	b.Branch(isa.OpBlt, rK, rN, "k_loop")
	// C[i][j] = acc
	b.EmitOp(isa.OpMul, rAddr, rI, rN)
	b.EmitOp(isa.OpAdd, rAddr, rAddr, rJ)
	b.EmitOp(isa.OpShl, rAddr, rAddr, regConst(b, 3))
	b.EmitOp(isa.OpAdd, rAddr, rAddr, rC)
	b.Emit(isa.Instr{Op: isa.OpStore, Src1: rAddr, Src2: rAcc})
	b.EmitImm(isa.OpAddi, rJ, rJ, 1)
	b.Branch(isa.OpBlt, rJ, rN, "j_loop")
	b.EmitImm(isa.OpAddi, rI, rI, 1)
	b.Branch(isa.OpBlt, rI, rN, "i_loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild(), cc
}

// regConst materializes a small constant into the scratch register r15 and
// returns it; usable as a second source operand.
func regConst(b *program.Builder, v int64) isa.Reg {
	const r = 15
	b.LoadConst(r, v)
	return r
}

// KernelBubbleSort builds an in-place bubble sort of n words initialized
// in descending order; the sorted array starts at the returned address.
func KernelBubbleSort(n int) (*program.Program, uint64) {
	b := program.NewBuilder("bubblesort")
	arr := b.Array(n, func(i int) uint64 { return uint64(n - i) })
	const (
		rI, rJ, rN, rBase   = 1, 2, 3, 4
		rAddr, rVa, rVb, rT = 5, 6, 7, 8
	)
	b.LoadConst(rBase, int64(arr))
	b.LoadConst(rN, int64(n))
	b.LoadConst(rI, 0)
	b.Label("outer")
	b.LoadConst(rJ, 0)
	// inner bound: n-1-i
	b.EmitOp(isa.OpSub, rT, rN, rI)
	b.EmitImm(isa.OpAddi, rT, rT, -1)
	b.Label("inner")
	b.EmitOp(isa.OpShl, rAddr, rJ, regConst(b, 3))
	b.EmitOp(isa.OpAdd, rAddr, rAddr, rBase)
	b.EmitImm(isa.OpLoad, rVa, rAddr, 0)
	b.EmitImm(isa.OpLoad, rVb, rAddr, 8)
	b.Branch(isa.OpBge, rVb, rVa, "noswap")
	b.Emit(isa.Instr{Op: isa.OpStore, Src1: rAddr, Src2: rVb})
	b.Emit(isa.Instr{Op: isa.OpStore, Src1: rAddr, Src2: rVa, Imm: 8})
	b.Label("noswap")
	b.EmitImm(isa.OpAddi, rJ, rJ, 1)
	b.Branch(isa.OpBlt, rJ, rT, "inner")
	b.EmitImm(isa.OpAddi, rI, rI, 1)
	b.EmitImm(isa.OpAddi, rT, rN, -1)
	b.Branch(isa.OpBlt, rI, rT, "outer")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild(), arr
}

// KernelFib builds an iterative Fibonacci computation; fib(n) ends in r3.
func KernelFib(n int) *program.Program {
	b := program.NewBuilder("fib")
	const (
		rN, rA, rB2, rT = 1, 2, 3, 4
	)
	b.LoadConst(rN, int64(n))
	b.LoadConst(rA, 0)  // fib(0)
	b.LoadConst(rB2, 1) // fib(1)
	b.Label("loop")
	b.EmitOp(isa.OpAdd, rT, rA, rB2)
	b.EmitOp(isa.OpAdd, rA, rB2, isa.ZeroReg)
	b.EmitOp(isa.OpAdd, rB2, rT, isa.ZeroReg)
	b.EmitImm(isa.OpAddi, rN, rN, -1)
	b.Branch(isa.OpBne, rN, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild()
}

// KernelMemcpy builds a word-granular copy of n words from a source
// pattern array; returns the destination base address.
func KernelMemcpy(n int) (*program.Program, uint64) {
	b := program.NewBuilder("memcpy")
	src := b.Array(n, func(i int) uint64 { return uint64(i)*2654435761 + 17 })
	dst := b.Array(n, func(i int) uint64 { return 0 })
	const (
		rSrc, rDst, rN, rV = 1, 2, 3, 4
	)
	b.LoadConst(rSrc, int64(src))
	b.LoadConst(rDst, int64(dst))
	b.LoadConst(rN, int64(n))
	b.Label("loop")
	b.EmitImm(isa.OpLoad, rV, rSrc, 0)
	b.Emit(isa.Instr{Op: isa.OpStore, Src1: rDst, Src2: rV})
	b.EmitImm(isa.OpAddi, rSrc, rSrc, 8)
	b.EmitImm(isa.OpAddi, rDst, rDst, 8)
	b.EmitImm(isa.OpAddi, rN, rN, -1)
	b.Branch(isa.OpBne, rN, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild(), dst
}

// KernelHistogram builds a histogram of n values over 16 buckets; the
// bucket counts start at the returned address.
func KernelHistogram(n int) (*program.Program, uint64) {
	b := program.NewBuilder("histogram")
	data := b.Array(n, func(i int) uint64 { return uint64(i*i*31+7) & 15 })
	hist := b.Array(16, func(i int) uint64 { return 0 })
	const (
		rData, rHist, rN, rV, rAddr, rC = 1, 2, 3, 4, 5, 6
	)
	b.LoadConst(rData, int64(data))
	b.LoadConst(rHist, int64(hist))
	b.LoadConst(rN, int64(n))
	b.Label("loop")
	b.EmitImm(isa.OpLoad, rV, rData, 0)
	b.EmitOp(isa.OpShl, rV, rV, regConst(b, 3))
	b.EmitOp(isa.OpAdd, rAddr, rHist, rV)
	b.EmitImm(isa.OpLoad, rC, rAddr, 0)
	b.EmitImm(isa.OpAddi, rC, rC, 1)
	b.Emit(isa.Instr{Op: isa.OpStore, Src1: rAddr, Src2: rC})
	b.EmitImm(isa.OpAddi, rData, rData, 8)
	b.EmitImm(isa.OpAddi, rN, rN, -1)
	b.Branch(isa.OpBne, rN, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild(), hist
}

// KernelCRC builds a bytewise CRC-style rolling checksum (x*33 + byte)
// over n words; the checksum ends in r5.
func KernelCRC(n int) *program.Program {
	b := program.NewBuilder("crc")
	data := b.Array(n, func(i int) uint64 { return uint64(i*131 + 7) })
	const (
		rData, rN, rV, rT, rSum = 1, 2, 3, 4, 5
	)
	b.LoadConst(rData, int64(data))
	b.LoadConst(rN, int64(n))
	b.LoadConst(rSum, 5381)
	b.Label("loop")
	b.EmitImm(isa.OpLoad, rV, rData, 0)
	b.EmitOp(isa.OpShl, rT, rSum, regConst(b, 5))
	b.EmitOp(isa.OpAdd, rSum, rSum, rT) // sum *= 33
	b.EmitOp(isa.OpXor, rSum, rSum, rV)
	b.EmitImm(isa.OpAddi, rData, rData, 8)
	b.EmitImm(isa.OpAddi, rN, rN, -1)
	b.Branch(isa.OpBne, rN, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild()
}
