// Package errcontract is the lint pass that enforces the structured-error
// contract on the repository's API-boundary packages. The runner, the sim
// entry points and the HTTP service promise callers errors they can
// program against — errors.Is/As over sentinel values and named error
// types (DivergenceError, CellTimeoutError, unknownModeError, ...), not
// string matching. A bare
//
//	fmt.Errorf("something went wrong: %v", err)
//
// severs the chain: the cause is flattened into text and the caller is
// back to substring tests. In the boundary packages every fmt.Errorf must
// therefore wrap with %w (an underlying error or a package sentinel);
// messages with no error to wrap belong in errors.New sentinels or named
// structured error types instead. The escape hatch, for the rare message
// that genuinely must flatten its cause, is
//
//	//errcontract:exempt <reason>
//
// on the call's line or the line above. Test files are not checked.
package errcontract

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// Marker is the annotation that allows a non-wrapping fmt.Errorf, with a
// mandatory reason.
const Marker = "//errcontract:exempt"

// DefaultPackages are the API boundaries: the layers whose errors cross
// into CLIs, HTTP clients and embedders.
var DefaultPackages = []string{
	"internal/service",
	"internal/service/api",
	"internal/runner",
	"internal/sim",
	"internal/trb",
	"internal/fabric",
	"internal/backoff",
}

// Pass is the errcontract pass, ready for the repolint driver.
type Pass struct{}

func (Pass) Name() string { return "errcontract" }
func (Pass) Doc() string {
	return "API-boundary packages must wrap errors with %w or construct named structured error types"
}

// Check runs the pass over DefaultPackages relative to root, skipping
// directories missing from the tree.
func (Pass) Check(root string) ([]lint.Finding, error) {
	var out []lint.Finding
	for _, rel := range DefaultPackages {
		files, err := lint.PackageFiles(filepath.Join(root, rel))
		if err != nil {
			return nil, fmt.Errorf("errcontract: %s: %w", rel, err)
		}
		for _, path := range files {
			fs, err := CheckFile(path)
			if err != nil {
				return nil, err
			}
			out = append(out, fs...)
		}
	}
	lint.SortFindings(out)
	return out, nil
}

// CheckFile parses one Go source file and returns its non-wrapping
// fmt.Errorf calls.
func CheckFile(path string) ([]lint.Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("errcontract: %w", err)
	}
	marked := lint.MarkedLines(fset, f, Marker)

	// fmtName is what the fmt package is imported as (skip the file if
	// it does not import fmt at all).
	fmtName := ""
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != "fmt" {
			continue
		}
		fmtName = "fmt"
		if imp.Name != nil {
			fmtName = imp.Name.Name
		}
	}
	if fmtName == "" || fmtName == "_" {
		return nil, nil
	}

	var out []lint.Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Errorf" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != fmtName {
			return true
		}
		pos := fset.Position(call.Pos())
		if reason, ok := lint.Exempt(marked, pos.Line); ok && reason != "" {
			return true
		}
		format, ok := formatLiteral(call)
		switch {
		case !ok:
			out = append(out, lint.NewFinding("errcontract", pos,
				"fmt.Errorf with a non-literal format string cannot be checked for %w; use a named error type or a constant format"))
		case !strings.Contains(format, "%w"):
			out = append(out, lint.NewFinding("errcontract", pos,
				"fmt.Errorf without %w at an API boundary: wrap the cause (or a package sentinel), or construct a named error type"))
		}
		return true
	})
	return out, nil
}

// formatLiteral extracts the call's format string when it is a plain
// string literal (possibly a parenthesized one).
func formatLiteral(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	e := call.Args[0]
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
