package fabric

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/service/api"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fakeClock freezes the fabric's clock seam for a test and restores it
// afterwards. Tests that swap the clock must not run in parallel.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func freezeClock(t *testing.T) *fakeClock {
	t.Helper()
	fc := &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
	prev := now
	now = fc.now
	t.Cleanup(func() { now = prev })
	return fc
}

func (fc *fakeClock) now() time.Time {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.t
}

func (fc *fakeClock) advance(d time.Duration) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.t = fc.t.Add(d)
}

// testJob builds one shippable grid cell.
func testJob(t *testing.T, name string, insns uint64) runner.Job {
	t.Helper()
	p, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	return runner.Job{Name: name, Config: core.BaseSIE(), Profile: p,
		Opts: sim.Options{Insns: insns}}
}

// testConfig is a fast deterministic coordinator config: no jitter, tiny
// backoff, Local fails loudly so an unexpected degrade is visible.
func testConfig(t *testing.T) CoordinatorConfig {
	t.Helper()
	return CoordinatorConfig{
		LeaseTTL: 10 * time.Second,
		Backoff:  backoff.Policy{Base: time.Second, Cap: 8 * time.Second, Factor: 2},
		Local: func(context.Context, runner.Job) (sim.Result, error) {
			err := errors.New("unexpected local execution")
			t.Error(err)
			return sim.Result{}, err
		},
	}
}

// startExecute runs Execute in a goroutine and returns the channel its
// settlement lands on.
func startExecute(c *Coordinator, j runner.Job) <-chan runner.Outcome {
	ch := make(chan runner.Outcome, 1)
	go func() {
		res, err := c.Execute(context.Background(), j)
		ch <- runner.Outcome{Result: res, Err: err}
	}()
	return ch
}

// leaseAll polls Lease until the worker holds n cells (Execute enqueues
// asynchronously, so the first poll may race the enqueue).
func leaseAll(t *testing.T, c *Coordinator, worker string, n int) []api.Lease {
	t.Helper()
	var got []api.Lease
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("worker %s leased %d cells, want %d", worker, len(got), n)
		}
		resp := c.Lease(api.LeaseRequest{Worker: worker, Max: n - len(got)})
		got = append(got, resp.Leases...)
		if len(resp.Leases) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	return got
}

// TestExecuteCompletesThroughWorker is the happy path: a cell flows
// coordinator → lease → completion → Execute return, with the display
// name rewritten the way the in-process cache path does.
func TestExecuteCompletesThroughWorker(t *testing.T) {
	freezeClock(t)
	c := NewCoordinator(testConfig(t))
	c.Lease(api.LeaseRequest{Worker: "w1"}) // register

	done := startExecute(c, testJob(t, "SIE", 5000))
	leases := leaseAll(t, c, "w1", 1)
	if leases[0].Cell.Name != "SIE" || leases[0].Cell.Insns != 5000 {
		t.Fatalf("leased cell %+v does not match the job", leases[0].Cell)
	}

	res := sim.Result{Bench: "gzip", Config: "wire-name"}
	res.Core.Committed = 5000
	resp := c.Complete(api.CompleteRequest{Worker: "w1", Cells: []api.CellCompletion{
		{LeaseID: leases[0].ID, CellID: leases[0].Cell.ID, Result: &res},
	}})
	if resp.Accepted != 1 || resp.Duplicates != 0 {
		t.Fatalf("completion response %+v, want 1 accepted", resp)
	}

	out := <-done
	if out.Err != nil {
		t.Fatalf("Execute returned error: %v", out.Err)
	}
	if out.Result.Config != "SIE" {
		t.Errorf("result config %q, want display name SIE", out.Result.Config)
	}
	if out.Result.Core.Committed != 5000 {
		t.Errorf("result lost its payload: %+v", out.Result.Core)
	}
	m := c.Metrics()
	if m.CellsCompleted != 1 || m.CellsLocal != 0 || m.LeasesActive != 0 {
		t.Errorf("metrics %+v, want one completed remote cell", m)
	}
}

// TestExecuteLocalWhenNoWorkers degrades to in-process execution when the
// fleet is empty.
func TestExecuteLocalWhenNoWorkers(t *testing.T) {
	cfg := testConfig(t)
	ran := false
	cfg.Local = func(_ context.Context, j runner.Job) (sim.Result, error) {
		ran = true
		return sim.Result{Config: j.Name}, nil
	}
	c := NewCoordinator(cfg)
	res, err := c.Execute(context.Background(), testJob(t, "SIE", 1000))
	if err != nil || !ran {
		t.Fatalf("local fallback did not run: res=%+v err=%v ran=%v", res, err, ran)
	}
	if m := c.Metrics(); m.CellsLocal != 1 {
		t.Errorf("CellsLocal = %d, want 1", m.CellsLocal)
	}
}

// TestExecuteLocalForUnshippableJob: a job pinned to an in-memory program
// cannot cross the wire and must run in-process even with workers live.
func TestExecuteLocalForUnshippableJob(t *testing.T) {
	cfg := testConfig(t)
	ran := false
	cfg.Local = func(_ context.Context, j runner.Job) (sim.Result, error) {
		ran = true
		return sim.Result{}, nil
	}
	c := NewCoordinator(cfg)
	c.Lease(api.LeaseRequest{Worker: "w1"})
	j := testJob(t, "SIE", 1000)
	j.Opts.Program = &program.Program{} // pinned programs cannot cross the wire
	if _, ok := cellFromJob(j); ok {
		t.Fatal("program-pinned job reported shippable")
	}
	if _, err := c.Execute(context.Background(), j); err != nil || !ran {
		t.Fatalf("unshippable job did not run locally (ran=%v err=%v)", ran, err)
	}
}

// TestLeaseExpiryRetriesOnSurvivor is the crash-recovery spine: worker w1
// leases a cell and goes silent; the sweep marks it dead and re-queues
// the cell with backoff; survivor w2 picks it up after the backoff gate
// and completes it; Execute returns the result. The expiry and the retry
// are both visible in the metrics.
func TestLeaseExpiryRetriesOnSurvivor(t *testing.T) {
	fc := freezeClock(t)
	cfg := testConfig(t)
	c := NewCoordinator(cfg)
	c.Lease(api.LeaseRequest{Worker: "w1"})
	c.Lease(api.LeaseRequest{Worker: "w2"})

	done := startExecute(c, testJob(t, "SIE", 5000))
	leases := leaseAll(t, c, "w1", 1)

	// w2 heartbeats through w1's silence; the sweep kills w1 and expires
	// its lease (dead worker ⇒ immediate expiry, before the TTL).
	fc.advance(8 * time.Second) // past DeadAfter(3) × HeartbeatEvery(2.5s)
	c.Heartbeat(api.HeartbeatRequest{Worker: "w2"})
	c.Tick()
	m := c.Metrics()
	if m.DeadWorkers != 1 || m.LeaseExpiries != 1 || m.CellsRetried != 1 {
		t.Fatalf("after silence: metrics %+v, want 1 dead / 1 expiry / 1 retry", m)
	}

	// The re-queued cell sits behind its backoff gate.
	if resp := c.Lease(api.LeaseRequest{Worker: "w2"}); len(resp.Leases) != 0 {
		t.Fatalf("cell leased before its backoff gate: %+v", resp.Leases)
	}
	fc.advance(2 * time.Second) // Base 1s, no jitter ⇒ gate passed
	release := leaseAll(t, c, "w2", 1)
	if release[0].Cell.ID != leases[0].Cell.ID {
		t.Fatalf("retry leased cell %d, want %d", release[0].Cell.ID, leases[0].Cell.ID)
	}

	res := sim.Result{Bench: "gzip"}
	res.Core.Committed = 5000
	c.Complete(api.CompleteRequest{Worker: "w2", Cells: []api.CellCompletion{
		{LeaseID: release[0].ID, CellID: release[0].Cell.ID, Result: &res},
	}})
	out := <-done
	if out.Err != nil || out.Result.Core.Committed != 5000 {
		t.Fatalf("retried cell settled wrong: %+v / %v", out.Result, out.Err)
	}

	// A heartbeat from the dead worker is told it is unknown.
	if hb := c.Heartbeat(api.HeartbeatRequest{Worker: "w1"}); hb.Known {
		t.Error("dead worker's heartbeat was acknowledged as known")
	}
}

// TestDuplicateCompletionBitIdentity: a late duplicate completion for a
// settled cell is discarded, and the fabric asserts it bit-identical to
// the accepted result — a mismatch is the determinism bug the paper's
// whole discipline exists to catch, and it is counted.
func TestDuplicateCompletionBitIdentity(t *testing.T) {
	freezeClock(t)
	c := NewCoordinator(testConfig(t))
	c.Lease(api.LeaseRequest{Worker: "w1"})
	done := startExecute(c, testJob(t, "SIE", 5000))
	leases := leaseAll(t, c, "w1", 1)

	res := sim.Result{Bench: "gzip"}
	res.Core.Committed = 5000
	comp := api.CellCompletion{LeaseID: leases[0].ID, CellID: leases[0].Cell.ID, Result: &res}
	c.Complete(api.CompleteRequest{Worker: "w1", Cells: []api.CellCompletion{comp}})
	<-done

	// Identical duplicate: deduplicated, no mismatch.
	resp := c.Complete(api.CompleteRequest{Worker: "w2", Cells: []api.CellCompletion{comp}})
	if resp.Duplicates != 1 || resp.Accepted != 0 {
		t.Fatalf("duplicate response %+v, want 1 duplicate", resp)
	}
	if m := c.Metrics(); m.DuplicateCompletions != 1 || m.RetryMismatches != 0 {
		t.Fatalf("identical duplicate miscounted: %+v", m)
	}

	// Divergent duplicate: the bit-identity assertion must trip.
	diverged := res
	diverged.Core.Committed = 5001
	comp.Result = &diverged
	c.Complete(api.CompleteRequest{Worker: "w3", Cells: []api.CellCompletion{comp}})
	if m := c.Metrics(); m.DuplicateCompletions != 2 || m.RetryMismatches != 1 {
		t.Fatalf("divergent duplicate miscounted: %+v", m)
	}
}

// TestRetryBudgetDegradesToLocal: a cell that keeps losing its lease
// falls back to in-process execution once MaxAttempts is spent, instead
// of queueing forever on a fleet that keeps eating it.
func TestRetryBudgetDegradesToLocal(t *testing.T) {
	fc := freezeClock(t)
	cfg := testConfig(t)
	cfg.MaxAttempts = 1
	ran := false
	cfg.Local = func(_ context.Context, j runner.Job) (sim.Result, error) {
		ran = true
		return sim.Result{Config: "local"}, nil
	}
	c := NewCoordinator(cfg)
	// Register both while the queue is empty; from here on "keeper" only
	// heartbeats, so retries queue remotely (live > 0) but land on w1.
	c.Lease(api.LeaseRequest{Worker: "w1"})
	c.Lease(api.LeaseRequest{Worker: "keeper"})
	done := startExecute(c, testJob(t, "SIE", 5000))

	leaseAll(t, c, "w1", 1) // attempt 1: w1 takes the cell and goes silent
	fc.advance(8 * time.Second)
	c.Heartbeat(api.HeartbeatRequest{Worker: "keeper"})
	c.Tick() // w1 dead, cell retried (attempts=1 ≤ MaxAttempts)

	fc.advance(2 * time.Second) // past the 1s backoff gate
	c.Heartbeat(api.HeartbeatRequest{Worker: "keeper"})
	leaseAll(t, c, "w1", 1) // attempt 2: w1 revives, takes it again, goes silent
	fc.advance(8 * time.Second)
	c.Heartbeat(api.HeartbeatRequest{Worker: "keeper"})
	c.Tick() // attempts=2 > MaxAttempts ⇒ degrade

	out := <-done
	if out.Err != nil || !ran || out.Result.Config != "local" {
		t.Fatalf("exhausted cell did not degrade to local: %+v / %v (ran=%v)",
			out.Result, out.Err, ran)
	}
	m := c.Metrics()
	if m.LeaseExpiries != 2 || m.CellsRetried != 1 || m.CellsLocal != 1 {
		t.Errorf("metrics %+v, want 2 expiries / 1 retry / 1 local", m)
	}
}

// TestFleetDeathDegradesToLocal: when the last worker dies, leased cells
// route straight back to their waiting Execute calls.
func TestFleetDeathDegradesToLocal(t *testing.T) {
	fc := freezeClock(t)
	cfg := testConfig(t)
	ran := false
	cfg.Local = func(_ context.Context, j runner.Job) (sim.Result, error) {
		ran = true
		return sim.Result{}, nil
	}
	c := NewCoordinator(cfg)
	c.Lease(api.LeaseRequest{Worker: "w1"})
	done := startExecute(c, testJob(t, "SIE", 5000))
	leaseAll(t, c, "w1", 1)

	fc.advance(8 * time.Second)
	c.Tick()
	if out := <-done; out.Err != nil || !ran {
		t.Fatalf("orphaned cell did not run locally: %v (ran=%v)", out.Err, ran)
	}
}

// TestExecuteCancellation: a cancelled run abandons its cells; a late
// completion for one is counted as ignored, not crashed on.
func TestExecuteCancellation(t *testing.T) {
	freezeClock(t)
	c := NewCoordinator(testConfig(t))
	c.Lease(api.LeaseRequest{Worker: "w1"})

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Execute(ctx, testJob(t, "SIE", 5000))
		errCh <- err
	}()
	leases := leaseAll(t, c, "w1", 1)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Execute returned %v", err)
	}
	resp := c.Complete(api.CompleteRequest{Worker: "w1", Cells: []api.CellCompletion{
		{LeaseID: leases[0].ID, CellID: leases[0].Cell.ID, Result: &sim.Result{}},
	}})
	if resp.Accepted != 0 {
		t.Fatalf("completion for an abandoned cell was accepted: %+v", resp)
	}
	if m := c.Metrics(); m.IgnoredCompletions != 1 {
		t.Errorf("IgnoredCompletions = %d, want 1", m.IgnoredCompletions)
	}
}

// TestWorkerErrorBecomesRemoteCellError: a worker-reported simulation
// failure surfaces to Execute as a structured *RemoteCellError.
func TestWorkerErrorBecomesRemoteCellError(t *testing.T) {
	freezeClock(t)
	c := NewCoordinator(testConfig(t))
	c.Lease(api.LeaseRequest{Worker: "w1"})
	done := startExecute(c, testJob(t, "SIE", 5000))
	leases := leaseAll(t, c, "w1", 1)
	c.Complete(api.CompleteRequest{Worker: "w1", Cells: []api.CellCompletion{
		{LeaseID: leases[0].ID, CellID: leases[0].Cell.ID, Error: "verification divergence"},
	}})
	out := <-done
	var rce *RemoteCellError
	if !errors.As(out.Err, &rce) || rce.Worker != "w1" {
		t.Fatalf("worker failure surfaced as %v, want *RemoteCellError from w1", out.Err)
	}
}

// TestCellRoundTripPreservesFingerprint: the wire projection and its
// worker-side inverse agree on the content-addressed fingerprint, for
// plain and fault-injected cells alike — the property that makes the
// fleet's caches one shared tier.
func TestCellRoundTripPreservesFingerprint(t *testing.T) {
	inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-4, Seed: 7, MaxFaults: 3})
	if err != nil {
		t.Fatal(err)
	}
	plain := testJob(t, "SIE", 5000)
	faulty := testJob(t, "SIE-faulty", 5000)
	faulty.Opts.Injector = inj

	for _, j := range []runner.Job{plain, faulty} {
		wire, ok := cellFromJob(j)
		if !ok {
			t.Fatalf("job %s not shippable", j.Name)
		}
		back, err := JobFromCell(wire)
		if err != nil {
			t.Fatalf("rebuilding %s: %v", j.Name, err)
		}
		want, err := j.Fingerprint()
		if err != nil {
			t.Fatalf("fingerprinting %s: %v", j.Name, err)
		}
		got, err := back.Fingerprint()
		if err != nil {
			t.Fatalf("fingerprinting rebuilt %s: %v", j.Name, err)
		}
		if got != want || wire.Fingerprint != want {
			t.Errorf("%s: fingerprints diverged across the wire: %s vs %s (wire %s)",
				j.Name, want, got, wire.Fingerprint)
		}
		if !reflect.DeepEqual(back.Config, j.Config) {
			t.Errorf("%s: config did not survive the wire", j.Name)
		}
	}
}

// TestRingAffinity: cells lease preferentially to their ring owner, and
// a worker with no owned cells still steals others'.
func TestRingAffinity(t *testing.T) {
	r := newRing([]string{"w1", "w2", "w3"})
	// Ownership is deterministic.
	for _, key := range []string{"a", "b", "c", "sha256:xyz"} {
		if r.owner(key) != r.owner(key) {
			t.Fatalf("owner(%q) unstable", key)
		}
	}
	// Every worker owns a reasonable share of a keyspace.
	counts := map[string]int{}
	for i := 0; i < 999; i++ {
		counts[r.owner(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)))]++
	}
	for _, w := range []string{"w1", "w2", "w3"} {
		if counts[w] < 100 {
			t.Errorf("worker %s owns only %d/999 keys — ring badly unbalanced", w, counts[w])
		}
	}
	if newRing(nil).owner("anything") != "" {
		t.Error("empty ring returned an owner")
	}
}
