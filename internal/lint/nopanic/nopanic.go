// Package nopanic is a repository lint pass that forbids panic calls in
// library code. The simulator's packages are APIs: configuration and input
// errors must surface as returned errors so callers (the CLIs, the
// experiments grid, external embedders) can handle them, not as process
// aborts. A panic is allowed only when it asserts an internal invariant
// that no caller input can trigger, and the author says so explicitly by
// annotating the statement with a
//
//	//nopanic:invariant <reason>
//
// comment on the panic's own line or the line directly above it. Test
// files are exempt: a panic in a test is just a failed test.
//
// The pass is stdlib-only (go/ast + go/parser), so it runs offline inside
// cmd/repolint and `make lint` without the x/tools analysis framework.
package nopanic

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"

	"repro/internal/lint"
)

// Marker is the comment directive that allowlists a panic.
const Marker = "//nopanic:invariant"

// Pass is the nopanic pass, ready for the repolint driver.
type Pass struct{}

func (Pass) Name() string { return "nopanic" }
func (Pass) Doc() string {
	return "library code must return errors; a panic needs a " + Marker + " annotation"
}

// Check walks every non-test .go file under root (skipping testdata
// trees) and returns the disallowed panic calls, ordered by position.
func (Pass) Check(root string) ([]lint.Finding, error) {
	return CheckDir(root)
}

// CheckDir is Check as a free function, for tests and callers that do not
// need the Pass indirection.
func CheckDir(root string) ([]lint.Finding, error) {
	files, err := lint.GoFiles(root)
	if err != nil {
		return nil, err
	}
	var out []lint.Finding
	for _, path := range files {
		fs, err := CheckFile(path)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	return out, nil
}

// CheckFile parses one Go source file and returns its disallowed panics.
func CheckFile(path string) ([]lint.Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("nopanic: %w", err)
	}

	// Lines carrying the allowlist marker; a panic on line L is allowed
	// when L or L-1 is marked.
	marked := lint.MarkedLines(fset, f, Marker)

	var out []lint.Finding
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Body != nil {
			out = append(out, checkFunc(fset, fd, marked)...)
		}
	}
	return out, nil
}

// checkFunc reports the unannotated panic calls in one function body,
// honouring local shadowing of the panic builtin.
func checkFunc(fset *token.FileSet, fd *ast.FuncDecl, marked map[int]string) []lint.Finding {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		name = recvType(fd.Recv.List[0].Type) + "." + name
	}
	shadowed := paramsShadowPanic(fd)

	var out []lint.Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if shadowed {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			// A local `panic := ...` shadows the builtin for the rest
			// of the function; stop flagging rather than chase scopes.
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "panic" {
					shadowed = true
				}
			}
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			pos := fset.Position(n.Pos())
			if _, ok := lint.Exempt(marked, pos.Line); ok {
				return true
			}
			out = append(out, lint.NewFinding("nopanic", pos,
				fmt.Sprintf("panic in %s (return an error, or annotate with %s)", name, Marker)))
		}
		return true
	})
	return out
}

// paramsShadowPanic reports whether a parameter or named result rebinds
// the panic identifier.
func paramsShadowPanic(fd *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if n.Name == "panic" {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Type.Results) || check(fd.Recv)
}

// recvType renders a receiver type expression as a short name.
func recvType(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvType(t.X)
	case *ast.IndexExpr:
		return recvType(t.X)
	}
	return "?"
}
