// Package fault implements transient-fault injection for validating the
// redundancy claims of the DIE-IRB paper's Section 3.4. It provides a
// deterministic injector that strikes single-bit faults at the three
// locations the paper analyzes:
//
//   - functional unit outputs (a particle strike in combinational logic),
//   - operand forwarding paths (a corrupted bypass value), and
//   - the IRB storage array (a strike after an entry was inserted).
//
// The experiments measure detection coverage: a fault is *detected* when
// the commit-time check of the primary/duplicate pair sees differing
// outcome signatures, and *masked* when the corruption never produces an
// architecturally visible difference (for example, a corrupted IRB operand
// field merely fails the reuse test, which is harmless — the duplicate
// executes on a functional unit instead).
package fault

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/irb"
)

// Site selects where faults strike.
type Site string

const (
	// FU corrupts the outcome of a randomly chosen functional unit
	// execution (primary or duplicate copy with equal probability).
	FU Site = "fu"
	// Forward corrupts a source operand of a randomly chosen
	// instruction copy as it is captured into the issue window.
	Forward Site = "forward"
	// IRBResult flips a bit of a just-inserted reuse-buffer entry's
	// result field.
	IRBResult Site = "irb-result"
	// IRBOperand flips a bit of a just-inserted entry's stored operand,
	// which should fail the reuse test (a harmless outcome).
	IRBOperand Site = "irb-operand"
)

// Sites lists all injection sites.
func Sites() []Site { return []Site{FU, Forward, IRBResult, IRBOperand} }

// Config parameterizes an injection campaign.
type Config struct {
	Site Site
	// Rate is the per-opportunity injection probability. Keep it small
	// (1e-4 .. 1e-3) so at most a few faults are in flight at once.
	Rate float64
	// Seed makes the campaign reproducible.
	Seed uint64
	// MaxFaults caps the campaign (0 = unlimited).
	MaxFaults uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Site {
	case FU, Forward, IRBResult, IRBOperand:
	default:
		return fmt.Errorf("fault: unknown site %q", c.Site)
	}
	if c.Rate <= 0 || c.Rate > 1 {
		return fmt.Errorf("fault: rate %g out of (0,1]", c.Rate)
	}
	return nil
}

// Injector implements core.FaultInjector. It decides injection points with
// a seeded PRNG, so identical runs inject identical faults. It models the
// single-fault-at-a-time assumption of the paper's Section 3.4: each
// architected instruction is struck at most once, so the two copies of a
// DIE pair (or a pair and its post-recovery re-execution) are never both
// corrupted. A simultaneous identical strike on both copies is a
// common-mode fault outside any temporal-redundancy scheme's coverage —
// admitting it would only manufacture silent escapes the paper's fault
// model excludes. Wrong-path copies carry sequence number 0 and are exempt
// from the bookkeeping: they are squashed before the check regardless.
type Injector struct {
	cfg    Config
	rng    *rand.Rand
	struck map[uint64]struct{} // architected seqs already hit

	// Injected counts faults actually applied.
	Injected uint64
}

// New builds an injector.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		cfg:    cfg,
		rng:    newRNG(cfg.Seed),
		struck: make(map[uint64]struct{}),
	}, nil
}

// newRNG builds the injector's seeded PRNG; Reset rebuilds the identical
// stream from the same seed.
func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xdeadbeefcafef00d))
}

// InjectedCount implements core.BatchableInjector.
func (i *Injector) InjectedCount() uint64 { return i.Injected }

// Reset implements core.BatchableInjector: it restores the injector to its
// freshly-constructed state — reseeded PRNG, cleared strike bookkeeping,
// zero fault count — so the next run it steers is bit-identical to one
// steered by a fresh New(cfg) injector.
func (i *Injector) Reset() {
	i.rng = newRNG(i.cfg.Seed)
	clear(i.struck)
	i.Injected = 0
}

// suppressed reports whether the instruction with the given architected
// sequence number was already struck; record marks it after an applied
// strike. Kept separate so a declined PRNG draw does not burn the
// instruction's eligibility.
func (i *Injector) suppressed(seq uint64) bool {
	if seq == 0 {
		return false // wrong-path: no pair check to evade
	}
	_, hit := i.struck[seq]
	return hit
}

func (i *Injector) record(seq uint64) {
	if seq != 0 {
		i.struck[seq] = struct{}{}
	}
}

func (i *Injector) fire() bool {
	if i.cfg.MaxFaults > 0 && i.Injected >= i.cfg.MaxFaults {
		return false
	}
	if i.rng.Float64() >= i.cfg.Rate {
		return false
	}
	i.Injected++
	return true
}

// FUResult implements core.FaultInjector.
func (i *Injector) FUResult(seq, pc uint64, dup bool, sig uint64) uint64 {
	if i.cfg.Site != FU || i.suppressed(seq) || !i.fire() {
		return sig
	}
	i.record(seq)
	return sig ^ 1<<i.rng.UintN(64)
}

// Operand implements core.FaultInjector.
func (i *Injector) Operand(seq, pc uint64, dup bool, which int, val uint64) uint64 {
	if i.cfg.Site != Forward || i.suppressed(seq) || !i.fire() {
		return val
	}
	i.record(seq)
	return val ^ 1<<i.rng.UintN(64)
}

// AfterIRBInsert implements core.FaultInjector.
func (i *Injector) AfterIRBInsert(pc uint64, b *irb.IRB) {
	switch i.cfg.Site {
	case IRBResult:
		if i.fire() {
			b.CorruptResult(pc, uint(i.rng.UintN(64)))
		}
	case IRBOperand:
		if i.fire() {
			b.CorruptOperand(pc, i.rng.UintN(2) == 0, uint(i.rng.UintN(64)))
		}
	}
}

// Spec returns the campaign configuration the injector was built from.
// The fabric uses it to ship a cell's fault campaign over the wire: a
// worker rebuilds an equivalent fresh injector with New(Spec()), which
// steers an identical run because injection decisions are drawn from the
// seeded PRNG only.
func (i *Injector) Spec() Config { return i.cfg }

// Fingerprint identifies the campaign spec for result caching (it
// satisfies the runner's Fingerprinter interface): two freshly built
// injectors with equal fingerprints corrupt identical runs identically,
// because injection decisions are drawn from the seeded PRNG only. The
// fingerprint does not capture consumed PRNG or strike state, so reusing
// one injector across runs breaks the equivalence — build a fresh injector
// per run, as the fault experiments and the serving layer do.
func (i *Injector) Fingerprint() string {
	return fmt.Sprintf("fault.Injector{site=%s rate=%g seed=%d max=%d}",
		i.cfg.Site, i.cfg.Rate, i.cfg.Seed, i.cfg.MaxFaults)
}

// Persistent is a rate-1 injector pinned to one static PC: every
// opportunity at that PC is struck with the same bit flip, modeling a
// stuck-at (hard) fault rather than a transient. Recovery re-executes the
// instruction into the same broken path each time, so the core's bounded
// retry budget must trip and escalate — the escalation and IRB-scrubbing
// tests are its main users. MaxFaults bounds the campaign (0 = unlimited):
// MaxFaults=1 turns it into a deterministic single-shot transient.
type Persistent struct {
	Site  Site
	PC    uint64
	Dup   bool // strike the duplicate copy instead of the primary (FU/Forward)
	Which int  // operand to corrupt for Forward: 1 or 2
	Bit   uint // bit to flip (0..63)

	MaxFaults uint64 // 0 = unlimited
	// Injected counts faults actually applied.
	Injected uint64
}

// InjectedCount implements core.BatchableInjector.
func (p *Persistent) InjectedCount() uint64 { return p.Injected }

// Reset implements core.BatchableInjector. A stuck-at fault has no PRNG or
// per-instruction bookkeeping; only the applied-fault count is consumed
// state.
func (p *Persistent) Reset() { p.Injected = 0 }

func (p *Persistent) fire() bool {
	if p.MaxFaults > 0 && p.Injected >= p.MaxFaults {
		return false
	}
	p.Injected++
	return true
}

// FUResult implements core.FaultInjector.
func (p *Persistent) FUResult(seq, pc uint64, dup bool, sig uint64) uint64 {
	if p.Site != FU || pc != p.PC || dup != p.Dup || !p.fire() {
		return sig
	}
	return sig ^ 1<<(p.Bit&63)
}

// Operand implements core.FaultInjector.
func (p *Persistent) Operand(seq, pc uint64, dup bool, which int, val uint64) uint64 {
	if p.Site != Forward || pc != p.PC || dup != p.Dup || which != p.Which || !p.fire() {
		return val
	}
	return val ^ 1<<(p.Bit&63)
}

// AfterIRBInsert implements core.FaultInjector.
func (p *Persistent) AfterIRBInsert(pc uint64, b *irb.IRB) {
	if pc != p.PC {
		return
	}
	switch p.Site {
	case IRBResult:
		if p.fire() {
			b.CorruptResult(pc, p.Bit)
		}
	case IRBOperand:
		if p.fire() {
			b.CorruptOperand(pc, p.Which != 2, p.Bit)
		}
	}
}

// Fingerprint identifies the stuck-at fault's spec for result caching; the
// same fresh-per-run caveat as (*Injector).Fingerprint applies, since
// Injected is consumed state.
func (p *Persistent) Fingerprint() string {
	return fmt.Sprintf("fault.Persistent{site=%s pc=%d dup=%t which=%d bit=%d max=%d}",
		p.Site, p.PC, p.Dup, p.Which, p.Bit, p.MaxFaults)
}
