package sim

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/program"
)

// TestFaultRunCompletesVerified: a sustained-rate campaign cell runs to
// completion under the verification oracle — the post-recovery acceptance
// bar, replacing the old behaviour where detections merely stalled commit
// and forged agreement.
func TestFaultRunCompletesVerified(t *testing.T) {
	p := gzipProfile(t)
	inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run("DIE", core.BaseDIE(), p, Options{Insns: 50_000, Verify: true, Injector: inj})
	if err != nil {
		t.Fatalf("verified faulty run failed: %v", err)
	}
	if inj.Injected == 0 {
		t.Fatal("injector never fired")
	}
	if r.Core.FaultsDetected == 0 || r.Core.FaultRecoveries == 0 {
		t.Errorf("detected %d, recovered %d: recovery never exercised",
			r.Core.FaultsDetected, r.Core.FaultRecoveries)
	}
	if r.Core.FaultsSilent != 0 {
		t.Errorf("%d silent corruptions under the oracle", r.Core.FaultsSilent)
	}
	if r.Core.Committed != 50_000 {
		t.Errorf("committed %d instructions, want the full 50000 budget", r.Core.Committed)
	}
}

// TestUnrecoverableFaultSurfaced: a stuck fault escalates through
// RunContext as a *core.UnrecoverableFaultError labelled with the cell's
// benchmark and configuration names.
func TestUnrecoverableFaultSurfaced(t *testing.T) {
	b := program.NewBuilder("stuck")
	b.LoadConst(1, 1_000_000)
	b.LoadConst(2, 0)
	b.Label("loop")
	b.EmitOp(isa.OpAdd, 2, 2, 1)
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	prog := b.MustBuild()

	var pc uint64
	for i, in := range prog.Code {
		if in.Op == isa.OpAdd && in.Dest == 2 {
			pc = uint64(i)
			break
		}
	}

	inj := &fault.Persistent{Site: fault.FU, PC: pc, Bit: 7}
	_, err := Run("DIE", core.BaseDIE(), gzipProfile(t), Options{
		Insns:    50_000,
		Program:  prog,
		Injector: inj,
	})
	var uf *core.UnrecoverableFaultError
	if !errors.As(err, &uf) {
		t.Fatalf("Run() error = %v, want *core.UnrecoverableFaultError", err)
	}
	if uf.Bench != "stuck" || uf.Config != "DIE" {
		t.Errorf("escalation labelled %q/%q, want stuck/DIE", uf.Bench, uf.Config)
	}
	if uf.PC != pc {
		t.Errorf("escalated PC = %d, want %d", uf.PC, pc)
	}
	if uf.Retries == 0 {
		t.Error("escalation records no retries")
	}
}
