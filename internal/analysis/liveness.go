package analysis

import (
	"math/bits"

	"repro/internal/isa"
)

// regSet is a bitset over the unified 64-register namespace, which fits
// exactly in one machine word (isa.NumRegs == 64).
type regSet uint64

func (s regSet) has(r isa.Reg) bool  { return s&(1<<r) != 0 }
func (s *regSet) add(r isa.Reg)      { *s |= 1 << r }
func (s regSet) count() int          { return bits.OnesCount64(uint64(s)) }
func (s regSet) without(r isa.Reg) regSet { return s &^ (1 << r) }

// regs returns the members of the set in ascending order.
func (s regSet) regs() []isa.Reg {
	out := make([]isa.Reg, 0, s.count())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, isa.Reg(bits.TrailingZeros64(v)))
	}
	return out
}

// uses returns the set of registers the instruction reads, excluding
// ZeroReg (hardwired zero: reading it never depends on a prior write).
func uses(in isa.Instr) regSet {
	var s regSet
	srcs, n := in.SrcRegs()
	for i := 0; i < n; i++ {
		if srcs[i] != isa.ZeroReg {
			s.add(srcs[i])
		}
	}
	return s
}

// defs returns the set of registers the instruction writes. Writes to
// ZeroReg are architecturally discarded and therefore excluded — they do
// not satisfy a later read. A CALL's link write is its ordinary Dest.
func defs(in isa.Instr) regSet {
	if d, ok := in.DestReg(); ok && d != isa.ZeroReg {
		var s regSet
		s.add(d)
		return s
	}
	return 0
}

// Liveness holds the per-block dataflow solution.
type Liveness struct {
	cfg *CFG

	// LiveIn and LiveOut are indexed by block ID.
	LiveIn, LiveOut []regSet

	// gen is the upward-exposed use set (read before any write in the
	// block); kill is the block's def set.
	gen, kill []regSet
}

// ComputeLiveness solves backward liveness over the CFG's reachable
// blocks with the standard iterative fixpoint.
func ComputeLiveness(g *CFG) *Liveness {
	lv := &Liveness{
		cfg:     g,
		LiveIn:  make([]regSet, len(g.Blocks)),
		LiveOut: make([]regSet, len(g.Blocks)),
		gen:     make([]regSet, len(g.Blocks)),
		kill:    make([]regSet, len(g.Blocks)),
	}
	for _, b := range g.Blocks {
		var written regSet
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Prog.Code[pc]
			lv.gen[b.ID] |= uses(in) &^ written
			written |= defs(in)
		}
		lv.kill[b.ID] = written
	}
	for changed := true; changed; {
		changed = false
		// Iterate in reverse block order: backward problems converge
		// faster against the dominant fallthrough edges.
		for i := len(g.Blocks) - 1; i >= 0; i-- {
			b := g.Blocks[i]
			if !b.Reachable {
				continue
			}
			var out regSet
			for _, s := range b.Succs {
				out |= lv.LiveIn[s]
			}
			in := lv.gen[b.ID] | (out &^ lv.kill[b.ID])
			if out != lv.LiveOut[b.ID] || in != lv.LiveIn[b.ID] {
				lv.LiveOut[b.ID], lv.LiveIn[b.ID] = out, in
				changed = true
			}
		}
	}
	return lv
}

// EntryLive returns the registers that can be read before any write on
// some path from the program entry — the "reads of never-written
// register" candidates. ZeroReg is excluded by construction.
func (lv *Liveness) EntryLive() regSet {
	return lv.LiveIn[lv.cfg.entry]
}

// firstExposedUse returns the lowest reachable pc at which r is read
// before any prior write of r along that block's prefix, with r live-in —
// the pc a diagnostic should point at.
func (lv *Liveness) firstExposedUse(r isa.Reg) (uint64, bool) {
	for _, b := range lv.cfg.Blocks {
		if !b.Reachable || !lv.LiveIn[b.ID].has(r) {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := lv.cfg.Prog.Code[pc]
			if uses(in).has(r) {
				return pc, true
			}
			if defs(in).has(r) {
				break
			}
		}
	}
	return 0, false
}

// DefUse is the whole-program def-use index: for every register, the
// instruction indices that write it and those that read it, in reachable
// code.
type DefUse struct {
	Defs [isa.NumRegs][]uint64
	Uses [isa.NumRegs][]uint64
}

// ComputeDefUse builds the def-use index over the CFG's reachable blocks.
func ComputeDefUse(g *CFG) *DefUse {
	du := &DefUse{}
	for _, b := range g.Blocks {
		if !b.Reachable {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Prog.Code[pc]
			for _, r := range uses(in).regs() {
				du.Uses[r] = append(du.Uses[r], pc)
			}
			for _, r := range defs(in).regs() {
				du.Defs[r] = append(du.Defs[r], pc)
			}
		}
	}
	return du
}
