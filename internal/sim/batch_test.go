package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/irb"
)

// The batch machinery's contract rests on the stock injectors being
// batchable; assert it at compile time where the dependency direction
// allows (fault deliberately does not import core outside its tests).
var (
	_ core.BatchableInjector = (*fault.Injector)(nil)
	_ core.BatchableInjector = (*fault.Persistent)(nil)
)

// rawInjector implements core.FaultInjector but not BatchableInjector.
type rawInjector struct{}

func (rawInjector) FUResult(seq, pc uint64, dup bool, sig uint64) uint64           { return sig }
func (rawInjector) Operand(seq, pc uint64, dup bool, which int, val uint64) uint64 { return val }
func (rawInjector) AfterIRBInsert(pc uint64, b *irb.IRB)                           {}

// TestBatchFaultFreeLaneMatchesScalar: a batch whose only lane carries no
// injector is exactly a scalar run — the leader's probing layer must be
// invisible in every statistic.
func TestBatchFaultFreeLaneMatchesScalar(t *testing.T) {
	p := gzipProfile(t)
	opts := Options{Insns: 12_000, Verify: true}
	want, err := Run("DIE-IRB", core.BaseDIEIRB(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RunBatchContext(nil, "DIE-IRB", core.BaseDIEIRB(), p, opts, []BatchLane{{Name: "DIE-IRB"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Diverged {
		t.Fatalf("outcomes = %+v, want one convergent lane", outs)
	}
	if !reflect.DeepEqual(outs[0].Result, want) {
		t.Errorf("batched fault-free lane differs from scalar run:\nbatch:  %+v\nscalar: %+v",
			outs[0].Result, want)
	}
}

// laneSpec is one injector lane of the differential test grid: rates are
// chosen so the grid exercises both convergent lanes (which the batch
// serves directly) and diverged lanes (which re-run scalar after Reset).
type laneSpec struct {
	site fault.Site
	rate float64
	seed uint64
}

// TestBatchLaneBitIdentityAllModes is the tentpole's acceptance
// differential, driven from the mode registry so a newly registered mode
// is covered without touching this test: for every mode, every batch
// lane's terminal state — Result and injector fault count — must be
// bit-identical to the lane's own scalar run with a fresh injector.
// Diverged lanes take the production fallback path (Reset, then a scalar
// run with the same injector object), so the test also proves Reset
// restores fresh-injector equivalence.
func TestBatchLaneBitIdentityAllModes(t *testing.T) {
	p := gzipProfile(t)
	specs := []laneSpec{
		{fault.FU, 1e-6, 11}, // almost surely convergent
		{fault.FU, 2e-3, 12}, // almost surely diverged
		{fault.Forward, 1e-3, 13},
		{fault.IRBResult, 1e-3, 14}, // exercises the scratch-IRB probe on IRB modes
	}
	opts := Options{Insns: 6_000, Verify: true}
	var convergent, diverged int
	for _, mi := range core.Modes() {
		cfg := mi.Base()
		lanes := []BatchLane{{Name: fmt.Sprintf("%s/clean", mi.Mode)}}
		injs := []*fault.Injector{nil}
		for _, s := range specs {
			inj, err := fault.New(fault.Config{Site: s.site, Rate: s.rate, Seed: s.seed})
			if err != nil {
				t.Fatal(err)
			}
			lanes = append(lanes, BatchLane{
				Name:     fmt.Sprintf("%s/%s-%d", mi.Mode, s.site, s.seed),
				Injector: inj,
			})
			injs = append(injs, inj)
		}
		outs, err := RunBatchContext(nil, "lead", cfg, p, opts, lanes)
		if err != nil {
			t.Fatalf("%s: batch run failed: %v", mi.Mode, err)
		}
		for i, out := range outs {
			// The scalar reference uses a fresh injector with the identical
			// campaign spec; the batch lane must be indistinguishable from it.
			var ref *fault.Injector
			refOpts := opts
			if injs[i] != nil {
				ref, err = fault.New(fault.Config{
					Site: specs[i-1].site, Rate: specs[i-1].rate, Seed: specs[i-1].seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				refOpts.Injector = ref
			}
			want, err := Run(lanes[i].Name, cfg, p, refOpts)
			if err != nil {
				t.Fatalf("%s lane %d: scalar reference failed: %v", mi.Mode, i, err)
			}
			got := out.Result
			if out.Diverged {
				diverged++
				// Production fallback: Reset and re-run scalar with the same
				// injector object the batch consumed.
				laneOpts := opts
				injs[i].Reset()
				laneOpts.Injector = injs[i]
				got, err = Run(lanes[i].Name, cfg, p, laneOpts)
				if err != nil {
					t.Fatalf("%s lane %d: scalar re-run failed: %v", mi.Mode, i, err)
				}
			} else {
				convergent++
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s lane %q: batched result differs from scalar:\nbatch:  %+v\nscalar: %+v",
					mi.Mode, lanes[i].Name, got, want)
			}
			if injs[i] != nil && injs[i].Injected != ref.Injected {
				t.Errorf("%s lane %q: injector fired %d faults, scalar reference %d",
					mi.Mode, lanes[i].Name, injs[i].Injected, ref.Injected)
			}
		}
	}
	if convergent == 0 || diverged == 0 {
		t.Errorf("grid exercised %d convergent / %d diverged lanes; want both paths covered",
			convergent, diverged)
	}
}

// TestBatchDrainedAllLanesDiverge: when every lane's injector fires and no
// fault-free lane keeps the leader useful, the run ends early with every
// outcome flagged diverged — not an error, since each lane re-runs scalar.
func TestBatchDrainedAllLanesDiverge(t *testing.T) {
	p := gzipProfile(t)
	var lanes []BatchLane
	for seed := uint64(1); seed <= 3; seed++ {
		inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 0.05, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lanes = append(lanes, BatchLane{Name: fmt.Sprintf("s%d", seed), Injector: inj})
	}
	outs, err := RunBatchContext(nil, "DIE", core.BaseDIE(), p, Options{Insns: 30_000}, lanes)
	if err != nil {
		t.Fatalf("drained batch returned an error: %v", err)
	}
	for i, out := range outs {
		if !out.Diverged {
			t.Errorf("lane %d did not diverge at rate 0.05 over 30k instructions", i)
		}
	}
}

// TestRunBatchMisuse: the batch entry point rejects malformed lane sets
// with ErrBatchMisuse rather than producing a half-configured run.
func TestRunBatchMisuse(t *testing.T) {
	p := gzipProfile(t)
	inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunBatchContext(nil, "DIE", core.BaseDIE(), p,
		Options{Insns: 1_000, Injector: inj}, []BatchLane{{Name: "x"}})
	if !errors.Is(err, ErrBatchMisuse) {
		t.Errorf("Options.Injector on a batch run: err = %v, want ErrBatchMisuse", err)
	}
	_, err = RunBatchContext(nil, "DIE", core.BaseDIE(), p, Options{Insns: 1_000}, nil)
	if !errors.Is(err, ErrBatchMisuse) {
		t.Errorf("zero lanes: err = %v, want ErrBatchMisuse", err)
	}
	_, err = RunBatchContext(nil, "DIE", core.BaseDIE(), p, Options{Insns: 1_000},
		[]BatchLane{{Name: "raw", Injector: rawInjector{}}})
	if err == nil {
		t.Error("non-batchable injector lane accepted")
	}
}
