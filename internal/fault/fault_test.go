package fault

import (
	"testing"

	"repro/internal/irb"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Site: FU, Rate: 0.001, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Site: "cosmic", Rate: 0.1},
		{Site: FU, Rate: 0},
		{Site: FU, Rate: 1.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestSitesComplete(t *testing.T) {
	if len(Sites()) != 4 {
		t.Errorf("Sites() = %v", Sites())
	}
}

func TestFUInjectionFlipsExactlyOneBit(t *testing.T) {
	inj := mustNew(Config{Site: FU, Rate: 1, Seed: 7})
	sig := uint64(0x1234)
	got := inj.FUResult(1, 10, false, sig)
	if got == sig {
		t.Fatal("rate-1 injector did not fire")
	}
	diff := got ^ sig
	if diff&(diff-1) != 0 {
		t.Errorf("flipped more than one bit: %#x", diff)
	}
	if inj.Injected != 1 {
		t.Errorf("Injected = %d", inj.Injected)
	}
}

func TestSiteScoping(t *testing.T) {
	inj := mustNew(Config{Site: Forward, Rate: 1, Seed: 7})
	if got := inj.FUResult(1, 10, false, 42); got != 42 {
		t.Error("forward-site injector corrupted an FU result")
	}
	if got := inj.Operand(1, 10, true, 1, 42); got == 42 {
		t.Error("forward-site injector did not corrupt an operand")
	}
}

func TestMaxFaultsCap(t *testing.T) {
	inj := mustNew(Config{Site: FU, Rate: 1, Seed: 7, MaxFaults: 3})
	for i := 0; i < 10; i++ {
		inj.FUResult(uint64(i), 10, false, 0)
	}
	if inj.Injected != 3 {
		t.Errorf("Injected = %d, want 3", inj.Injected)
	}
}

func TestDeterministicCampaign(t *testing.T) {
	run := func() []uint64 {
		inj := mustNew(Config{Site: FU, Rate: 0.5, Seed: 99})
		out := make([]uint64, 20)
		for i := range out {
			out[i] = inj.FUResult(uint64(i), 5, false, 1000)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("campaigns diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestIRBInjection(t *testing.T) {
	buf, err := irb.New(irb.Config{Entries: 64, Assoc: 1, ReadPorts: 4, WritePorts: 2, LookupLat: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf.Insert(1, 7, irb.Entry{Src1: 1, Src2: 2, Result: 3})

	res := mustNew(Config{Site: IRBResult, Rate: 1, Seed: 3})
	res.AfterIRBInsert(7, buf)
	if e, _ := buf.Probe(7); e.Result == 3 {
		t.Error("IRBResult injector left result intact")
	}
	if e, _ := buf.Probe(7); e.Src1 != 1 || e.Src2 != 2 {
		t.Error("IRBResult injector touched operands")
	}

	buf.Insert(2, 7, irb.Entry{Src1: 1, Src2: 2, Result: 3})
	op := mustNew(Config{Site: IRBOperand, Rate: 1, Seed: 3})
	op.AfterIRBInsert(7, buf)
	e, _ := buf.Probe(7)
	if e.Src1 == 1 && e.Src2 == 2 {
		t.Error("IRBOperand injector left operands intact")
	}
	if e.Result != 3 {
		t.Error("IRBOperand injector touched the result")
	}
}

// mustNew is the test-side New that panics on configuration errors.
func mustNew(cfg Config) *Injector {
	i, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return i
}
