package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanTreeExitsZero is the suite's own regression: the repository
// must lint clean with every pass enabled, through the real driver.
func TestCleanTreeExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite (type checking + escape analysis); skipped in -short")
	}
	root := filepath.Join("..", "..")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-allow", filepath.Join(root, ".repolint.allow"), root}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d on the repository tree\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run produced output:\n%s", &stdout)
	}
}

// seedViolation materializes a tree with an unannotated panic, which the
// nopanic pass must catch.
func seedViolation(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	src := "package p\n\nfunc F(ok bool) {\n\tif !ok {\n\t\tpanic(\"boom\")\n\t}\n}\n"
	if err := os.WriteFile(filepath.Join(root, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestSeededViolationExitsNonZero(t *testing.T) {
	root := seedViolation(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-pass", "nopanic", "-allow", filepath.Join(root, "none"), root}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1, got %d\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "nopanic") {
		t.Fatalf("finding does not name its pass:\n%s", &stdout)
	}
}

func TestAllowlistSilencesAndGoesStale(t *testing.T) {
	root := seedViolation(t)
	allow := filepath.Join(root, "allow")

	// An entry matching the finding silences it: exit 0.
	if err := os.WriteFile(allow, []byte("nopanic p.go # seeded\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-pass", "nopanic", "-allow", allow, root}, &stdout, &stderr); code != 0 {
		t.Fatalf("allowlisted finding still fails: exit %d\n%s%s", code, &stdout, &stderr)
	}

	// Fix the violation without touching the allowlist: the stale entry
	// itself must now fail the run.
	if err := os.WriteFile(filepath.Join(root, "p.go"), []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-pass", "nopanic", "-allow", allow, root}, &stdout, &stderr); code != 1 {
		t.Fatalf("stale allowlist entry did not fail: exit %d\n%s%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "stale entry") {
		t.Fatalf("missing stale-entry finding:\n%s", &stdout)
	}
}

func TestJSONAndSARIFOutputs(t *testing.T) {
	root := seedViolation(t)
	for _, format := range []string{"json", "sarif"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-pass", "nopanic", "-format", format, "-allow", filepath.Join(root, "none"), root}, &stdout, &stderr)
		if code != 1 {
			t.Fatalf("%s: want exit 1, got %d\n%s%s", format, code, &stdout, &stderr)
		}
		var v any
		if err := json.Unmarshal(stdout.Bytes(), &v); err != nil {
			t.Fatalf("%s output is not valid JSON: %v\n%s", format, err, &stdout)
		}
		if format == "sarif" && !strings.Contains(stdout.String(), `"2.1.0"`) {
			t.Fatalf("sarif output lacks version:\n%s", &stdout)
		}
	}
}

func TestBadUsageExitsTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-pass", "nosuchpass", "."},
		{"-format", "xml", "."},
		{"a", "b"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Fatalf("args %v: want exit 2, got %d\n%s%s", args, code, &stdout, &stderr)
		}
	}
}
