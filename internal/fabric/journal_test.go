package fabric

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/service/api"
	"repro/internal/sim"
)

// reopen closes j and replays the WAL from disk again.
func reopen(t *testing.T, j *Journal, dir string) (*Journal, []Record, ReplayStats) {
	t.Helper()
	if err := j.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}
	j2, recs, stats, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopening journal: %v", err)
	}
	return j2, recs, stats
}

// TestJournalRoundTrip appends a run's worth of records, reopens the WAL,
// and expects every record back in order with its payload intact.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs, stats, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || stats.Records != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}

	res := sim.Result{Bench: "gzip", Config: "SIE"}
	res.Core.Committed = 1234
	want := []Record{
		{Type: RecRun, RunID: "run-0001", Req: &api.RunRequest{Benchmarks: []string{"gzip"}},
			Cells: 2, Created: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)},
		{Type: RecCache, Key: "sha256:abc", Result: &res},
		{Type: RecCell, RunID: "run-0001", Index: 0, Key: "sha256:abc", CacheHit: true},
		{Type: RecCell, RunID: "run-0001", Index: 1, Err: "fault escaped"},
		{Type: RecFinish, RunID: "run-0001", Status: "done"},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatalf("append %q: %v", rec.Type, err)
		}
	}

	j2, got, stats := reopen(t, j, dir)
	defer j2.Close()
	if stats.TruncatedBytes != 0 || stats.TailError != "" {
		t.Fatalf("clean log reported truncation: %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].RunID != want[i].RunID ||
			got[i].Index != want[i].Index || got[i].Key != want[i].Key ||
			got[i].Err != want[i].Err || got[i].CacheHit != want[i].CacheHit ||
			got[i].Status != want[i].Status {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[1].Result == nil || got[1].Result.Core.Committed != 1234 {
		t.Error("cache record lost its result payload")
	}
	if got[0].Req == nil || len(got[0].Req.Benchmarks) != 1 {
		t.Error("run record lost its request payload")
	}

	// The reopened journal must still accept appends (resume-and-continue).
	if err := j2.Append(Record{Type: RecFinish, RunID: "run-0002", Status: "done"}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	j3, got, _ := reopen(t, j2, dir)
	defer j3.Close()
	if len(got) != len(want)+1 {
		t.Fatalf("after reopen append: replayed %d records, want %d", len(got), len(want)+1)
	}
}

// TestJournalTornTail crash-truncates the WAL at every byte offset inside
// the final record: replay must recover exactly the intact prefix,
// report the tail, and position the journal so the next append produces
// a clean log again.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := []Record{
		{Type: RecRun, RunID: "run-0001", Cells: 1},
		{Type: RecCell, RunID: "run-0001", Index: 0, Key: "k"},
	}
	for _, rec := range keep {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	cleanLen := fileSize(t, j.Path())
	if err := j.Append(Record{Type: RecFinish, RunID: "run-0001", Status: "done"}); err != nil {
		t.Fatal(err)
	}
	fullLen := fileSize(t, j.Path())
	full, err := os.ReadFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	for cut := cleanLen + 1; cut < fullLen; cut++ {
		path := filepath.Join(t.TempDir(), journalName)
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, stats, err := OpenJournal(filepath.Dir(path))
		if err != nil {
			t.Fatalf("cut at %d: open: %v", cut, err)
		}
		if len(recs) != len(keep) {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(recs), len(keep))
		}
		if stats.ValidBytes != cleanLen || stats.TruncatedBytes != cut-cleanLen {
			t.Fatalf("cut at %d: stats %+v, want valid=%d truncated=%d",
				cut, stats, cleanLen, cut-cleanLen)
		}
		if stats.TailError == "" {
			t.Fatalf("cut at %d: truncation reported no tail error", cut)
		}
		// Appending after recovery must leave a clean, fully-replayable log.
		if err := j2.Append(Record{Type: RecFinish, RunID: "run-0001", Status: "failed"}); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		j3, recs, stats := reopen(t, j2, filepath.Dir(path))
		j3.Close()
		if len(recs) != len(keep)+1 || stats.TailError != "" {
			t.Fatalf("cut at %d: post-recovery log not clean: %d records, %+v", cut, len(recs), stats)
		}
	}
}

// TestJournalCorruptFrame flips one payload byte mid-log: everything
// before the damaged frame replays, everything from it on is discarded.
func TestJournalCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: RecRun, RunID: "run-0001"}); err != nil {
		t.Fatal(err)
	}
	firstLen := fileSize(t, j.Path())
	for i := 0; i < 3; i++ {
		if err := j.Append(Record{Type: RecCell, RunID: "run-0001", Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	data[firstLen+frameHeader] ^= 0xff // corrupt the second record's payload
	if err := os.WriteFile(filepath.Join(dir, journalName), data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, stats, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 1 || recs[0].Type != RecRun {
		t.Fatalf("replayed %d records past corruption, want 1", len(recs))
	}
	if stats.ValidBytes != firstLen || stats.TailError == "" {
		t.Fatalf("corruption stats %+v, want valid=%d with tail error", stats, firstLen)
	}
}

// TestJournalLengthBomb hand-writes a frame header claiming a
// multi-gigabyte payload: replay must refuse it as corruption instead of
// attempting the allocation.
func TestJournalLengthBomb(t *testing.T) {
	frame := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(frame[0:4], 1<<31)
	recs, stats := decodeRecords(frame)
	if len(recs) != 0 || stats.TailError == "" {
		t.Fatalf("length bomb replayed: %d records, %+v", len(recs), stats)
	}
}

// TestJournalClosedAppend verifies the closed-journal contract.
func TestJournalClosedAppend(t *testing.T) {
	j, _, _, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(Record{Type: RecRun}); err != ErrJournalClosed {
		t.Fatalf("append after close: %v, want ErrJournalClosed", err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
