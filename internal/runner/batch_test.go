package runner_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// campaignJobs builds one fault-campaign batch group per registered mode:
// the mode's baseline config on gzip with a fault-free lane plus one lane
// per seed. Injectors are consumed state, so every Run gets its own slice
// from a fresh call. The returned injectors parallel the jobs (nil for
// fault-free lanes).
func campaignJobs(t *testing.T, insns uint64, seeds []uint64) ([]runner.Job, []*fault.Injector) {
	t.Helper()
	p, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	var jobs []runner.Job
	var injs []*fault.Injector
	for _, mi := range core.Modes() {
		jobs = append(jobs, runner.Job{
			Name: fmt.Sprintf("%s/clean", mi.Mode), Config: mi.Base(), Profile: p,
			Opts: sim.Options{Insns: insns, Verify: true},
		})
		injs = append(injs, nil)
		for _, seed := range seeds {
			inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-3, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, runner.Job{
				Name: fmt.Sprintf("%s/fu-s%d", mi.Mode, seed), Config: mi.Base(), Profile: p,
				Opts: sim.Options{Insns: insns, Verify: true, Injector: inj},
			})
			injs = append(injs, inj)
		}
	}
	if err := runner.AttachTraces(jobs); err != nil {
		t.Fatal(err)
	}
	return jobs, injs
}

// TestBatchedMatchesScalarGoldenGrid is the runner-level golden-grid
// differential (the CI batch-smoke gate): a campaign grid over every
// registered mode, run once through the batch planner and once with
// NoBatch, must agree outcome for outcome — results, errors, and each
// lane's injector fault count.
func TestBatchedMatchesScalarGoldenGrid(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	bJobs, bInjs := campaignJobs(t, 8_000, seeds)
	sJobs, sInjs := campaignJobs(t, 8_000, seeds)

	batched, err := runner.Run(context.Background(), bJobs, runner.Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("batched sweep failed: %v", err)
	}
	scalar, err := runner.Run(context.Background(), sJobs, runner.Options{Parallelism: 1, NoBatch: true})
	if err != nil {
		t.Fatalf("scalar sweep failed: %v", err)
	}
	if len(batched) != len(bJobs) || len(scalar) != len(sJobs) {
		t.Fatalf("outcome counts %d/%d, want %d", len(batched), len(scalar), len(bJobs))
	}
	for i := range bJobs {
		if batched[i].Err != nil || scalar[i].Err != nil {
			t.Errorf("cell %s: errors batched=%v scalar=%v", bJobs[i].Name, batched[i].Err, scalar[i].Err)
			continue
		}
		if !reflect.DeepEqual(batched[i].Result, scalar[i].Result) {
			t.Errorf("cell %s: batched and scalar results differ:\nbatched: %+v\nscalar:  %+v",
				bJobs[i].Name, batched[i].Result, scalar[i].Result)
		}
		if bInjs[i] != nil && bInjs[i].Injected != sInjs[i].Injected {
			t.Errorf("cell %s: injector fired %d faults batched, %d scalar",
				bJobs[i].Name, bInjs[i].Injected, sInjs[i].Injected)
		}
	}
}

// TestBatchedSerialParallelEquivalence extends the runner's
// parallel-correctness anchor to batch groups: a campaign grid run by one
// worker and by eight must produce identical outcomes cell by cell.
func TestBatchedSerialParallelEquivalence(t *testing.T) {
	seeds := []uint64{4, 5, 6, 7}
	serialJobs, _ := campaignJobs(t, 6_000, seeds)
	parallelJobs, _ := campaignJobs(t, 6_000, seeds)

	serial, err := runner.Run(context.Background(), serialJobs, runner.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.Run(context.Background(), parallelJobs, runner.Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serialJobs {
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Errorf("cell %d (%s): -j1 and -j8 batched results differ", i, serialJobs[i].Name)
		}
	}
}

// stuckProgram builds the bounded loop whose add instruction a Persistent
// injector pins, and returns the program plus that instruction's PC.
func stuckProgram(t *testing.T) (*program.Program, uint64) {
	t.Helper()
	b := program.NewBuilder("stuck")
	b.LoadConst(1, 1_000_000)
	b.LoadConst(2, 0)
	b.Label("loop")
	b.EmitOp(isa.OpAdd, 2, 2, 1)
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	prog := b.MustBuild()
	for i, in := range prog.Code {
		if in.Op == isa.OpAdd && in.Dest == 2 {
			return prog, uint64(i)
		}
	}
	t.Fatal("stuck program has no add instruction")
	return nil, 0
}

// TestBatchLaneEarlyExit: one lane of a batch group carries a stuck-at
// fault that escalates to an unrecoverable error on its scalar re-run. The
// failure must stay confined to that lane — every sibling's outcome must
// be bit-identical to a solo scalar run of the same cell.
func TestBatchLaneEarlyExit(t *testing.T) {
	p, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	prog, pc := stuckProgram(t)
	mk := func() []runner.Job {
		opts := sim.Options{Insns: 20_000, Program: prog}
		jobs := []runner.Job{
			{Name: "stuck-lane", Config: core.BaseDIE(), Profile: p, Opts: opts},
			{Name: "clean-lane", Config: core.BaseDIE(), Profile: p, Opts: opts},
		}
		jobs[0].Opts.Injector = &fault.Persistent{Site: fault.FU, PC: pc, Bit: 7}
		for _, seed := range []uint64{8, 9} {
			inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-3, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			j := runner.Job{Name: fmt.Sprintf("fu-s%d", seed), Config: core.BaseDIE(), Profile: p, Opts: opts}
			j.Opts.Injector = inj
			jobs = append(jobs, j)
		}
		return jobs
	}

	jobs := mk()
	outs, err := runner.Run(context.Background(), jobs, runner.Options{Parallelism: 1})
	if err == nil {
		t.Fatal("stuck lane's escalation did not surface in the sweep error")
	}
	var uf *core.UnrecoverableFaultError
	if !errors.As(outs[0].Err, &uf) {
		t.Fatalf("stuck lane error = %v, want *core.UnrecoverableFaultError", outs[0].Err)
	}
	if uf.PC != pc {
		t.Errorf("escalated PC = %d, want %d", uf.PC, pc)
	}

	solo := mk()
	for i := 1; i < len(solo); i++ {
		ref, rerr := runner.Run(context.Background(),
			[]runner.Job{solo[i]}, runner.Options{Parallelism: 1, NoBatch: true})
		if rerr != nil {
			t.Fatalf("solo run of %s failed: %v", solo[i].Name, rerr)
		}
		if outs[i].Err != nil {
			t.Errorf("sibling %s failed alongside the stuck lane: %v", jobs[i].Name, outs[i].Err)
			continue
		}
		if !reflect.DeepEqual(outs[i].Result, ref[0].Result) {
			t.Errorf("sibling %s: batched-with-stuck-lane result differs from its solo run", jobs[i].Name)
		}
	}
}
