// Command irbstat characterizes the instruction-reuse behaviour of the
// workloads independently of the pipeline: it runs each program through
// the functional simulator against a standalone IRB model and reports, per
// instruction class, how often a dynamic instruction would hit the buffer
// with matching operands. This is the workload-side view of the reuse the
// DIE-IRB core exploits, useful when tuning profiles or sizing the buffer.
//
// Usage:
//
//	irbstat                      # all benchmarks, 1024-entry DM buffer
//	irbstat -entries 4096 -assoc 4
//	irbstat -bench gcc -insns 1000000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/fsim"
	"repro/internal/irb"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	entries := flag.Int("entries", 1024, "IRB entries")
	assoc := flag.Int("assoc", 1, "IRB associativity")
	victim := flag.Int("victim", 0, "victim buffer entries")
	insns := cliutil.Insns(flag.CommandLine, sim.DefaultInsns)
	bench := cliutil.Bench(flag.CommandLine, "", "comma-separated benchmark subset")
	flag.Parse()

	if err := run(*entries, *assoc, *victim, *insns, *bench); err != nil {
		fmt.Fprintln(os.Stderr, "irbstat:", err)
		os.Exit(1)
	}
}

func run(entries, assoc, victim int, insns uint64, bench string) error {
	profiles, err := cliutil.Profiles(bench)
	if err != nil {
		return err
	}
	t := stats.NewTable(
		fmt.Sprintf("Standalone reuse characterization (%d-entry %d-way IRB, %d victim)",
			entries, assoc, victim),
		"bench", "eligible", "pc-hit", "reuse", "int-alu", "mult/div", "fp", "mem-addr", "ctrl")
	for _, p := range profiles {
		row, err := characterize(p, entries, assoc, victim, insns)
		if err != nil {
			return err
		}
		t.AddRow(p.Name, row.eligible, row.rate(row.pcHits), row.rate(row.reuseHits),
			row.classRate(0), row.classRate(1), row.classRate(2), row.classRate(3), row.classRate(4))
	}
	fmt.Print(t)
	return nil
}

type counts struct {
	eligible  uint64
	pcHits    uint64
	reuseHits uint64
	// per-class eligible/reuse: int-alu, mult/div, fp, mem-addr, ctrl
	classElig  [5]uint64
	classReuse [5]uint64
}

func (c counts) rate(n uint64) float64 { return stats.Ratio(n, c.eligible) }

func (c counts) classRate(i int) float64 { return stats.Ratio(c.classReuse[i], c.classElig[i]) }

func classOf(in isa.Instr) int {
	oi := in.Op.Info()
	switch {
	case oi.IsMem():
		return 3
	case oi.IsCtrl():
		return 4
	case oi.Class == isa.FUIntMult:
		return 1
	case oi.Class == isa.FUFPAdd || oi.Class == isa.FUFPMult:
		return 2
	default:
		return 0
	}
}

// characterize replays p's dynamic stream against an IRB updated at every
// retired instruction (the single-stream equivalent of the core's
// commit-time updates).
func characterize(p workload.Profile, entries, assoc, victim int, insns uint64) (counts, error) {
	prog, err := workload.Generate(p.WithIters(insns + insns/3))
	if err != nil {
		return counts{}, err
	}
	buf, err := irb.New(irb.Config{
		Entries: entries, Assoc: assoc, VictimEntries: victim,
		// Unconstrained ports: this tool measures the workload, not
		// the port arbitration.
		ReadPorts: 1 << 20, WritePorts: 1 << 20, LookupLat: 1,
	})
	if err != nil {
		return counts{}, err
	}
	m := fsim.New(prog)
	var c counts
	for i := uint64(0); i < insns && !m.Halted; i++ {
		r, err := m.Step()
		if err != nil {
			return counts{}, err
		}
		oi := r.Instr.Op.Info()
		if r.Instr.Op == isa.OpNop || r.Instr.Op == isa.OpHalt ||
			(!oi.HasDest && !oi.IsMem() && !oi.IsCtrl()) {
			continue
		}
		cl := classOf(r.Instr)
		c.eligible++
		c.classElig[cl]++
		e, hit := buf.Lookup(i, r.PC)
		reused := false
		if hit {
			c.pcHits++
			if e.Matches(r.Src1, r.Src2) {
				c.reuseHits++
				c.classReuse[cl]++
				reused = true
			}
		}
		if !reused {
			entry := irb.Entry{Src1: r.Src1, Src2: r.Src2, Result: r.Result, Taken: r.Taken}
			if oi.IsMem() {
				entry.Result = r.Addr
			} else if oi.IsCtrl() {
				entry.Result = r.NextPC
			}
			buf.Insert(i, r.PC, entry)
		}
	}
	return c, nil
}
