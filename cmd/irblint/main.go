// Command irblint statically analyzes the workload programs without
// running a cycle of simulation: it builds the CFG, runs the
// well-formedness diagnostics, and reports the static IRB reuse and port
// pressure prediction for each program. It lints exactly what the
// simulator would execute — generated profiles go through sim.ProgramFor,
// so the sizing and seeding match a real run — plus the built-in kernels.
//
// The exit status is 0 when every program is clean and 1 when any
// diagnostic fires, so CI can gate on it. The -format json output is
// machine-readable for artifact upload.
//
// Usage:
//
//	irblint                       # all benchmarks + kernels
//	irblint -bench gcc,parser     # benchmark subset, no kernels
//	irblint -format json          # machine-readable report
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cliutil"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	insns := cliutil.Insns(flag.CommandLine, sim.DefaultInsns)
	bench := cliutil.Bench(flag.CommandLine, "", "comma-separated benchmark subset (default: all + kernels)")
	kernels := flag.Bool("kernels", true, "also lint the built-in kernels")
	format := cliutil.Format(flag.CommandLine)
	flag.Parse()

	clean, err := run(os.Stdout, *insns, *bench, *kernels, *format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "irblint:", err)
		os.Exit(2)
	}
	if !clean {
		os.Exit(1)
	}
}

// run lints every selected program, writes the report to w, and reports
// whether all programs were diagnostic-free.
func run(w *os.File, insns uint64, bench string, kernels bool, format string) (bool, error) {
	progs, err := targets(insns, bench, kernels)
	if err != nil {
		return false, err
	}

	sum := stats.NewTable("Static analysis (irblint)",
		"program", "instrs", "blocks", "loops", "diags", "pred-reuse", "hot-instrs", "conflict", "locality")
	diags := stats.NewTable("Diagnostics", "program", "kind", "pc", "detail")
	nDiags := 0
	for _, p := range progs {
		r := analysis.Analyze(p)
		sum.AddRow(p.Name, len(p.Code), len(r.CFG.Blocks), len(r.CFG.Loops),
			len(r.Diags), r.Prediction.ReuseRate, r.Prediction.HotInstrs,
			r.Prediction.ConflictRatio, r.Prediction.ValueLocality)
		for i := range r.Diags {
			d := &r.Diags[i]
			diags.AddRow(p.Name, string(d.Kind), d.PC, d.Detail)
			nDiags++
		}
	}

	out, err := cliutil.Render(sum, format)
	if err != nil {
		return false, err
	}
	fmt.Fprint(w, out)
	if nDiags > 0 || format == "json" || format == "csv" {
		dout, err := cliutil.Render(diags, format)
		if err != nil {
			return false, err
		}
		fmt.Fprint(w, dout)
	}
	if format == "" || format == "table" {
		fmt.Fprintf(w, "%d programs, %d diagnostics\n", len(progs), nDiags)
	}
	return nDiags == 0, nil
}

// targets resolves the programs to lint: the selected benchmark profiles
// generated exactly as a simulation run would, plus the built-in kernels.
func targets(insns uint64, bench string, kernels bool) ([]*program.Program, error) {
	profiles, err := cliutil.Profiles(bench)
	if err != nil {
		return nil, err
	}
	var progs []*program.Program
	for _, p := range profiles {
		prog, err := sim.ProgramFor(p, sim.Options{Insns: insns})
		if err != nil {
			return nil, fmt.Errorf("generate %s: %w", p.Name, err)
		}
		progs = append(progs, prog)
	}
	// An explicit -bench selection lints only those benchmarks.
	if kernels && strings.TrimSpace(bench) == "" {
		progs = append(progs, workload.Kernels()...)
	}
	return progs, nil
}
