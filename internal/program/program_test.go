package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("labels")
	b.LoadConst(1, 3) // r1 = 3 (counter)
	b.Label("loop")
	b.EmitImm(isa.OpAddi, 2, 2, 1)              // r2++
	b.EmitImm(isa.OpAddi, 1, 1, -1)             // r1--
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop") // backward
	b.Branch(isa.OpBeq, 0, 0, "done")           // forward
	b.EmitImm(isa.OpAddi, 3, 3, 99)             // skipped
	b.Label("done")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The backward branch at pc=3 must target pc=1: imm = -2.
	if p.Code[3].Imm != -2 {
		t.Errorf("backward branch imm = %d, want -2", p.Code[3].Imm)
	}
	// The forward branch at pc=4 must target pc=6: imm = +2.
	if p.Code[4].Imm != 2 {
		t.Errorf("forward branch imm = %d, want 2", p.Code[4].Imm)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jump("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("Build error = %v, want undefined label", err)
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	b := NewBuilder("dup")
	b.Label("x")
	b.Label("x")
}

func TestValidateRejectsOutOfRangeTarget(t *testing.T) {
	p := &Program{Name: "bad", Code: []isa.Instr{
		{Op: isa.OpJump, Imm: 100},
		{Op: isa.OpHalt},
	}}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted out-of-range jump target")
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	p := &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted empty program")
	}
}

func TestFetchOutsideCodeReturnsNop(t *testing.T) {
	p := &Program{Name: "p", Code: []isa.Instr{{Op: isa.OpHalt}}}
	if got := p.Fetch(999); got.Op != isa.OpNop {
		t.Errorf("Fetch(999) = %v, want nop", got)
	}
}

func TestDataSegment(t *testing.T) {
	b := NewBuilder("data")
	a0 := b.Word(42)
	base := b.Array(4, func(i int) uint64 { return uint64(i * i) })
	if a0 == 0 {
		t.Error("Word allocated at reserved address 0")
	}
	if base != a0+8 {
		t.Errorf("Array base = %d, want %d", base, a0+8)
	}
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p := b.MustBuild()
	if p.Data[a0] != 42 {
		t.Errorf("Data[%d] = %d, want 42", a0, p.Data[a0])
	}
	if p.Data[base+24] != 9 {
		t.Errorf("Array[3] = %d, want 9", p.Data[base+24])
	}
	if b.DataSize() != base+32 {
		t.Errorf("DataSize = %d, want %d", b.DataSize(), base+32)
	}
}

func TestLoadConstWide(t *testing.T) {
	b := NewBuilder("const")
	b.LoadConst(1, 7)            // one addi
	b.LoadConst(2, -9)           // one addi
	b.LoadConst(3, 1<<33|0x1234) // lui + addi
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p := b.MustBuild()
	if len(p.Code) != 5 {
		t.Fatalf("code len = %d, want 5", len(p.Code))
	}
	if p.Code[0].Op != isa.OpAddi || p.Code[2].Op != isa.OpLui || p.Code[3].Op != isa.OpAddi {
		t.Errorf("unexpected sequence: %v %v %v %v", p.Code[0], p.Code[1], p.Code[2], p.Code[3])
	}
}

func TestImageRoundTrip(t *testing.T) {
	b := NewBuilder("img")
	b.EmitOp(isa.OpAdd, 1, 2, 3)
	b.EmitImm(isa.OpLoad, 4, 5, 16)
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p := b.MustBuild()
	img := p.Image()
	for i, w := range img {
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("image word %d: %v", i, err)
		}
		if in != p.Code[i] {
			t.Errorf("image word %d: %v != %v", i, in, p.Code[i])
		}
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder("callret")
	b.Call("fn")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	b.Label("fn")
	b.EmitImm(isa.OpAddi, 1, 1, 5)
	b.Ret()
	p := b.MustBuild()
	if p.Code[0].Op != isa.OpCall || p.Code[0].Imm != 2 {
		t.Errorf("call = %v, want imm 2", p.Code[0])
	}
	if p.Code[3].Op != isa.OpJalr || p.Code[3].Src1 != isa.LinkReg {
		t.Errorf("ret = %v", p.Code[3])
	}
}
