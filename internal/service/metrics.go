package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// metrics aggregates the daemon's counters and the run-latency histogram
// behind one mutex, and renders them in the Prometheus text exposition
// format on /metrics. The stats.Histogram is not thread-safe on its own,
// so every observation and the render path go through the same lock.
type metrics struct {
	mu       sync.Mutex
	start    time.Time
	requests map[routeCode]uint64 // HTTP responses by route and status code
	runs     map[string]uint64    // finished runs by terminal status
	cellsSim uint64               // cells actually simulated
	cellsHit uint64               // cells served from the result cache
	latency  stats.Histogram      // per-run wall-clock seconds
}

type routeCode struct {
	route string
	code  int
}

// now is the daemon's single sanctioned wall-clock read. Every timestamp
// the service layer produces — run records, latency observations, the
// uptime gauge — flows through this seam, so tests can freeze time and
// the determinism lint can verify no other clock sneaks in.
//
//determinism:exempt sole injected clock seam; operational timestamps and metrics only, tests substitute it
var now = time.Now

func newMetrics() *metrics {
	return &metrics{
		start:    now(),
		requests: make(map[routeCode]uint64),
		runs:     make(map[string]uint64),
	}
}

// incRequest counts one HTTP response on a route.
func (m *metrics) incRequest(route string, code int) {
	m.mu.Lock()
	m.requests[routeCode{route, code}]++
	m.mu.Unlock()
}

// observeRun records one finished run: its terminal status, how many of
// its cells were simulated versus served from cache, and its wall-clock
// duration (fed to the latency histogram that backs the p50/p99 lines).
func (m *metrics) observeRun(status string, simCells, hitCells int, d time.Duration) {
	m.mu.Lock()
	m.runs[status]++
	m.cellsSim += uint64(simCells)
	m.cellsHit += uint64(hitCells)
	m.latency.Observe(d.Seconds())
	m.mu.Unlock()
}

// render writes the Prometheus text format. Gauges the metrics struct
// does not own — queue depth and the cache counters — are passed in as a
// snapshot so one render is internally consistent. Label sets are sorted,
// so the output is deterministic and diff-friendly.
func (m *metrics) render(w io.Writer, queueDepth int, cache cacheStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP simserved_requests_total HTTP responses by route and status code.")
	fmt.Fprintln(w, "# TYPE simserved_requests_total counter")
	rcs := make([]routeCode, 0, len(m.requests))
	for rc := range m.requests {
		rcs = append(rcs, rc)
	}
	sort.Slice(rcs, func(a, b int) bool {
		if rcs[a].route != rcs[b].route {
			return rcs[a].route < rcs[b].route
		}
		return rcs[a].code < rcs[b].code
	})
	for _, rc := range rcs {
		fmt.Fprintf(w, "simserved_requests_total{route=%q,code=\"%d\"} %d\n", rc.route, rc.code, m.requests[rc])
	}

	fmt.Fprintln(w, "# HELP simserved_runs_total Finished runs by terminal status.")
	fmt.Fprintln(w, "# TYPE simserved_runs_total counter")
	statuses := make([]string, 0, len(m.runs))
	for s := range m.runs {
		statuses = append(statuses, s)
	}
	sort.Strings(statuses)
	for _, s := range statuses {
		fmt.Fprintf(w, "simserved_runs_total{status=%q} %d\n", s, m.runs[s])
	}

	fmt.Fprintln(w, "# HELP simserved_queue_depth Run requests admitted and not yet finished.")
	fmt.Fprintln(w, "# TYPE simserved_queue_depth gauge")
	fmt.Fprintf(w, "simserved_queue_depth %d\n", queueDepth)

	fmt.Fprintln(w, "# HELP simserved_cells_total Grid cells completed, by source.")
	fmt.Fprintln(w, "# TYPE simserved_cells_total counter")
	fmt.Fprintf(w, "simserved_cells_total{source=\"simulated\"} %d\n", m.cellsSim)
	fmt.Fprintf(w, "simserved_cells_total{source=\"cache\"} %d\n", m.cellsHit)

	uptime := now().Sub(m.start).Seconds()
	fmt.Fprintln(w, "# HELP simserved_cells_per_second Lifetime average simulated cells per second.")
	fmt.Fprintln(w, "# TYPE simserved_cells_per_second gauge")
	rate := 0.0
	if uptime > 0 {
		rate = float64(m.cellsSim) / uptime
	}
	fmt.Fprintf(w, "simserved_cells_per_second %g\n", rate)

	fmt.Fprintln(w, "# HELP simserved_cache_hits_total Result-cache lookups that hit.")
	fmt.Fprintln(w, "# TYPE simserved_cache_hits_total counter")
	fmt.Fprintf(w, "simserved_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintln(w, "# HELP simserved_cache_misses_total Result-cache lookups that missed.")
	fmt.Fprintln(w, "# TYPE simserved_cache_misses_total counter")
	fmt.Fprintf(w, "simserved_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintln(w, "# HELP simserved_cache_evictions_total Result-cache LRU evictions.")
	fmt.Fprintln(w, "# TYPE simserved_cache_evictions_total counter")
	fmt.Fprintf(w, "simserved_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintln(w, "# HELP simserved_cache_entries Result-cache resident entries.")
	fmt.Fprintln(w, "# TYPE simserved_cache_entries gauge")
	fmt.Fprintf(w, "simserved_cache_entries %d\n", cache.Entries)

	fmt.Fprintln(w, "# HELP simserved_run_latency_seconds Wall-clock time per finished run.")
	fmt.Fprintln(w, "# TYPE simserved_run_latency_seconds summary")
	fmt.Fprintf(w, "simserved_run_latency_seconds{quantile=\"0.5\"} %g\n", m.latency.Quantile(0.5))
	fmt.Fprintf(w, "simserved_run_latency_seconds{quantile=\"0.99\"} %g\n", m.latency.Quantile(0.99))
	fmt.Fprintf(w, "simserved_run_latency_seconds_sum %g\n", m.latency.Sum())
	fmt.Fprintf(w, "simserved_run_latency_seconds_count %d\n", m.latency.Count())

	fmt.Fprintln(w, "# HELP simserved_uptime_seconds Seconds since the daemon started.")
	fmt.Fprintln(w, "# TYPE simserved_uptime_seconds gauge")
	fmt.Fprintf(w, "simserved_uptime_seconds %g\n", uptime)
}
