// Package runner is the parallel sweep engine: it executes a batch of
// independent (benchmark × configuration) simulation jobs across a pool
// of workers. Every cell of an experiment grid is a deterministic,
// self-contained sim.RunContext call (seeded PCG, no shared mutable
// state), so the grid is embarrassingly parallel; the runner adds the
// machinery the serial double loop lacked — context cancellation,
// per-job error capture, deterministic result ordering regardless of
// completion order, live progress reporting, and cost-aware dispatch so
// the widest machine configurations do not all land on one worker at
// the tail of the sweep.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Job is one simulation cell: a workload profile on a named machine
// configuration with per-run options.
type Job struct {
	Name    string // configuration display name (sim.Result.Config)
	Config  core.Config
	Profile workload.Profile
	Opts    sim.Options
}

// Cost estimates the relative wall-clock weight of the job for
// longest-processing-time dispatch. The model is deliberately coarse: it
// only has to rank a doubled-width verified DIE cell above a narrow SIE
// cell so stragglers start early, not predict runtimes.
func (j Job) Cost() float64 {
	insns := j.Opts.Insns
	if insns == 0 {
		insns = sim.DefaultInsns
	}
	w := float64(insns) + float64(j.Opts.FastForward)/4
	// Mode weight from capabilities, not identity: each extra copy stream
	// costs most of a full pipeline's work, the IRB adds lookup/update
	// traffic, and epoch replay adds the checker passes.
	caps := j.Config.Mode.Caps()
	m := 1 + 0.9*float64(j.Config.Streams()-1)
	if caps.UsesIRB {
		m += 0.2
	}
	if caps.Compare == core.CompareEpoch {
		m += 0.1
	}
	w *= m
	// Wider machines and windows do more per-cycle bookkeeping.
	w *= 1 + float64(j.Config.IssueWidth)/32
	w *= 1 + float64(j.Config.RUUSize)/512
	if j.Opts.Verify {
		w *= 1.15 // the oracle re-executes every committed instruction
	}
	return w
}

// traceKey identifies the exact functional execution a job performs: the
// workload (profile plus the options that shape program generation) and
// the measurement window. Jobs with equal keys retire identical
// instruction streams and can share one captured trace.
type traceKey struct {
	profile     workload.Profile
	insns       uint64
	fastForward uint64
	seed        uint64
	program     *program.Program
}

// AttachTraces captures one functional-execution trace per distinct
// workload among jobs and installs it as Options.Trace on every cell that
// runs that workload. A grid of B benchmarks × C configurations then
// generates and interprets each program once instead of C times; the
// traces are immutable and shared read-only across workers. Jobs that
// already carry a trace are left untouched, so callers can pre-seed
// specific cells. On error the jobs already processed keep their traces —
// attaching is idempotent and safe to retry.
func AttachTraces(jobs []Job) error {
	traces := make(map[traceKey]*fsim.Trace)
	for i := range jobs {
		j := &jobs[i]
		if j.Opts.Trace != nil {
			continue
		}
		insns := j.Opts.Insns
		if insns == 0 {
			insns = sim.DefaultInsns
		}
		k := traceKey{j.Profile, insns, j.Opts.FastForward, j.Opts.Seed, j.Opts.Program}
		tr, ok := traces[k]
		if !ok {
			var err error
			tr, err = sim.CaptureTrace(j.Profile, j.Opts)
			if err != nil {
				return fmt.Errorf("runner: capturing trace for %s: %w", j.Profile.Name, err)
			}
			traces[k] = tr
		}
		j.Opts.Trace = tr
	}
	return nil
}

// Outcome is the terminal state of one job: its Result on success, or
// the error that failed the cell. A cancelled sweep leaves the jobs that
// never ran with Err set to the context's error.
type Outcome struct {
	Job    Job
	Result sim.Result
	Err    error
	// CacheHit reports that the Result was served from Options.Cache
	// instead of being simulated.
	CacheHit bool
}

// Cache is the result-reuse hook consulted by Run when Options.Cache is
// set: a content-addressed store from Job.Fingerprint keys to results.
// Get and Put may be called from multiple goroutines. The runner only
// stores results of successful cells, and only for cacheable jobs.
type Cache interface {
	Get(key string) (sim.Result, bool)
	Put(key string, res sim.Result)
}

// Progress is a snapshot delivered after each completed cell.
type Progress struct {
	Done, Total int
	// Bench and Config identify the cell that just finished.
	Bench, Config string
	Elapsed       time.Duration
	// ETA linearly extrapolates the remaining wall-clock time from the
	// average per-cell time so far (zero once the sweep is done).
	ETA time.Duration
	// Index is the finished cell's position in the jobs slice, so
	// per-cell consumers (the serving layer's journal and event streams)
	// can attribute the outcome without re-deriving order.
	Index int
	// CacheHit reports the cell was served from Options.Cache.
	CacheHit bool
	// Result is a copy of the cell's result (nil when the cell failed).
	Result *sim.Result
	// Err is the cell's terminal error (nil on success).
	Err error
}

// Options configure a batch run.
type Options struct {
	// Parallelism is the worker count; <= 0 selects
	// runtime.GOMAXPROCS(0). 1 runs the tasks serially — in input order
	// when nothing batches (reproducing the pre-runner serial sweep
	// bit-for-bit), batch groups first otherwise; either way every cell's
	// Result is bit-identical to its serial scalar run's.
	Parallelism int
	// Progress, when non-nil, is invoked after every completed cell.
	// Calls are serialized by the runner, so the callback needs no
	// locking of its own.
	Progress func(Progress)
	// CellTimeout bounds each cell's wall-clock time (0 = unbounded). A
	// cell that exceeds it is stopped and retried once — a hung cell on a
	// loaded machine may just have been starved — and a second timeout
	// fails the cell with a *CellTimeoutError while the rest of the sweep
	// proceeds.
	CellTimeout time.Duration
	// Cache, when non-nil, serves cells whose fingerprint it already
	// holds without simulating them (Outcome.CacheHit marks those) and
	// stores every successfully simulated cacheable cell. Simulation is
	// deterministic in a job's fingerprinted inputs, so a hit is
	// bit-identical to a fresh run.
	Cache Cache
	// NoBatch disables the batch planner: every cell runs scalar, as
	// before the batched core existed. Batching is on by default because
	// it changes nothing observable — cells that are identical up to
	// their fault injector (a campaign's seeds and sites over one
	// config×workload cell) share one lockstep leader run, and each
	// lane's result, error, progress report and cache entry is
	// bit-identical to its scalar run's.
	NoBatch bool
	// Execute, when non-nil, is the pluggable dispatch seam: each cell
	// the cache cannot serve is executed by this function instead of the
	// in-process simulation. The fabric coordinator plugs in here to
	// ship cells to remote workers while reusing everything above the
	// seam — cache-before-dispatch, LPT ordering, per-cell error
	// capture, progress reporting and deterministic outcome order.
	// Batching and CellTimeout are the dispatcher's concern in this mode
	// (the local batch planner and per-cell deadline are bypassed); a
	// panic inside Execute is still captured as a *CellPanicError.
	Execute func(ctx context.Context, j Job) (sim.Result, error)
}

// CellPanicError reports that one sweep cell's simulation panicked. The
// runner recovers the panic in the worker and records it as the cell's
// error, so one poisoned cell no longer takes down the whole batch.
type CellPanicError struct {
	Bench, Config string
	Value         any    // the recovered panic value
	Stack         []byte // stack of the panicking goroutine
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("runner: %s on %s panicked: %v\n%s", e.Bench, e.Config, e.Value, e.Stack)
}

// CellTimeoutError reports that one cell exceeded Options.CellTimeout on
// every attempt. It deliberately does not unwrap to
// context.DeadlineExceeded: the per-cell deadline is a failure of that
// cell, not a sweep-level cancellation, and must survive Run's error
// filtering.
type CellTimeoutError struct {
	Bench, Config string
	Timeout       time.Duration
	Attempts      int
}

func (e *CellTimeoutError) Error() string {
	return fmt.Sprintf("runner: %s on %s timed out after %v (%d attempts)",
		e.Bench, e.Config, e.Timeout, e.Attempts)
}

// now is the sweep's single sanctioned wall-clock read, feeding only the
// Progress callback's Elapsed/ETA fields — never a simulation result. It
// is a variable for the same reason simRun is: harness tests substitute a
// fake clock.
//
//determinism:exempt sole injected clock seam; feeds progress reporting only, tests substitute it
var now = time.Now

// simRun is sim.RunContext, indirected so the harness tests can substitute
// panicking or hanging simulations without involving a real core.
var simRun = sim.RunContext

// runCellOnce executes one cell, converting a panic anywhere under the
// simulation into a *CellPanicError.
func runCellOnce(ctx context.Context, j Job) (res sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &CellPanicError{
				Bench:  j.Profile.Name,
				Config: j.Name,
				Value:  v,
				Stack:  debug.Stack(),
			}
		}
	}()
	return simRun(ctx, j.Name, j.Config, j.Profile, j.Opts)
}

// resetInjector restores a batchable injector to its freshly-constructed
// state, so a cell re-dispatched after a timeout or a batch divergence
// replays the exact campaign a fresh run would instead of resuming a
// partially consumed PRNG. Injectors without the capability are left
// alone (their single-attempt semantics are unchanged).
func resetInjector(j Job) {
	if bi, ok := j.Opts.Injector.(core.BatchableInjector); ok {
		bi.Reset()
	}
}

// runCell executes one cell under the per-cell timeout with one retry.
func runCell(ctx context.Context, j Job, timeout time.Duration) (sim.Result, error) {
	if timeout <= 0 {
		resetInjector(j)
		return runCellOnce(ctx, j)
	}
	const attempts = 2
	for a := 0; a < attempts; a++ {
		resetInjector(j)
		cellCtx, cancel := context.WithTimeout(ctx, timeout)
		res, err := runCellOnce(cellCtx, j)
		cancel()
		if !isCellTimeout(ctx, err) {
			return res, err
		}
	}
	return sim.Result{}, &CellTimeoutError{
		Bench:    j.Profile.Name,
		Config:   j.Name,
		Timeout:  timeout,
		Attempts: attempts,
	}
}

// runDispatch executes one cell through the pluggable dispatch seam,
// converting a panic inside the dispatcher into a *CellPanicError so a
// buggy Execute hook degrades exactly like a buggy simulation: one
// failed cell, not a dead sweep.
func runDispatch(ctx context.Context, j Job, exec func(context.Context, Job) (sim.Result, error)) (res sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &CellPanicError{
				Bench:  j.Profile.Name,
				Config: j.Name,
				Value:  v,
				Stack:  debug.Stack(),
			}
		}
	}()
	return exec(ctx, j)
}

// isCellTimeout reports whether err came from the per-cell deadline rather
// than a sweep-level cancellation: the cell's context expired while the
// parent is still live.
func isCellTimeout(parent context.Context, err error) bool {
	return errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil
}

// errNotRun marks outcomes whose job was never dispatched (the sweep was
// cancelled first); Run rewrites it to the context's error.
var errNotRun = errors.New("runner: job not run")

// Run executes every job and returns one Outcome per job, in job order
// regardless of completion order. A failed cell never aborts the batch:
// its error is recorded in its Outcome and the returned error joins all
// per-cell failures (nil when every cell succeeded). When ctx is
// cancelled the in-flight simulations stop within a cycle, the remaining
// jobs are skipped, and Run returns the completed prefix of outcomes
// alongside the context's error.
func Run(ctx context.Context, jobs []Job, opts Options) ([]Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	outs := make([]Outcome, len(jobs))
	for i := range jobs {
		outs[i] = Outcome{Job: jobs[i], Err: errNotRun}
	}
	if len(jobs) == 0 {
		return outs, ctx.Err()
	}

	// Resolve cache hits before dispatching anything: a hit costs a hash
	// and a map probe, so serving it from a worker slot would only add
	// queueing latency. Uncacheable jobs (fingerprint error) run normally
	// and are never stored.
	var keys []string
	if opts.Cache != nil {
		keys = make([]string, len(jobs))
		for i := range jobs {
			k, err := jobs[i].Fingerprint()
			if err != nil {
				continue
			}
			keys[i] = k
			if res, ok := opts.Cache.Get(k); ok {
				if res.IRB != nil {
					st := *res.IRB
					res.IRB = &st // hits must not share mutable state
				}
				res.Config = jobs[i].Name // display name is not part of the key
				outs[i] = Outcome{Job: jobs[i], Result: res, CacheHit: true}
			}
		}
	}

	// The batch planner groups cells that are identical up to their fault
	// injector; each group runs as one lockstep leader (phase one), and
	// lanes whose injector fires fall back to scalar cells (phase two).
	// Everything else — singleton cells, non-batchable injectors — is a
	// phase-one scalar task.
	var groups [][]int
	batched := make([]bool, len(jobs))
	if !opts.NoBatch && opts.Execute == nil {
		groups = planBatches(jobs, func(i int) bool { return !outs[i].CacheHit })
		for _, g := range groups {
			for _, i := range g {
				batched[i] = true
			}
		}
	}

	// Dispatch order: heaviest tasks first (LPT) so the widest configs
	// and the biggest batches never start last and stretch the tail. One
	// worker keeps the input order — with no concurrency there is no tail
	// to balance.
	tasks := make([]task, 0, len(jobs))
	for _, g := range groups {
		tasks = append(tasks, task{lanes: g, batch: true})
	}
	for i := range jobs {
		if !outs[i].CacheHit && !batched[i] {
			tasks = append(tasks, task{lanes: []int{i}})
		}
	}
	if workers > 1 {
		sort.SliceStable(tasks, func(a, b int) bool {
			return tasks[a].cost(jobs) > tasks[b].cost(jobs)
		})
	}
	if workers > len(tasks) && len(tasks) > 0 {
		workers = len(tasks)
	}

	var (
		start   = now()
		mu      sync.Mutex
		done    int
		pending []int // batch lanes awaiting a scalar re-run
	)
	report := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if opts.Progress == nil {
			return
		}
		p := Progress{
			Done:     done,
			Total:    len(jobs),
			Bench:    jobs[i].Profile.Name,
			Config:   jobs[i].Name,
			Elapsed:  now().Sub(start),
			Index:    i,
			CacheHit: outs[i].CacheHit,
			Err:      outs[i].Err,
		}
		if outs[i].Err == nil {
			res := outs[i].Result // copy; the callback must not reach into outs
			p.Result = &res
		}
		if left := len(jobs) - done; left > 0 {
			p.ETA = p.Elapsed / time.Duration(done) * time.Duration(left)
		}
		opts.Progress(p)
	}

	// finish commits one cell's terminal state; store stores a successful
	// result in the cache. Both are called from worker goroutines, each
	// cell exactly once.
	finish := func(i int, r sim.Result, err error) {
		outs[i].Result, outs[i].Err = r, err
		if err == nil && keys != nil && keys[i] != "" {
			opts.Cache.Put(keys[i], r)
		}
		report(i)
	}
	exec := func(t task) {
		if !t.batch {
			i := t.lanes[0]
			var (
				r   sim.Result
				err error
			)
			if opts.Execute != nil {
				r, err = runDispatch(ctx, jobs[i], opts.Execute)
			} else {
				r, err = runCell(ctx, jobs[i], opts.CellTimeout)
			}
			finish(i, r, err)
			return
		}
		bouts, err := runBatchGroup(ctx, jobs, t.lanes, opts.CellTimeout)
		if err != nil {
			// The leader could not complete — a timeout, a cancel, a
			// config error, a panic. Every lane falls back to a scalar
			// cell, which reproduces real errors with per-cell identity
			// and per-cell timeout/retry semantics.
			mu.Lock()
			pending = append(pending, t.lanes...)
			mu.Unlock()
			return
		}
		for k, i := range t.lanes {
			if bouts[k].Diverged {
				mu.Lock()
				pending = append(pending, i)
				mu.Unlock()
				continue
			}
			finish(i, bouts[k].Result, nil)
		}
	}
	// runPhase drains one task list through a worker pool, stopping the
	// dispatch when the sweep's context ends.
	runPhase := func(ts []task) {
		n := workers
		if n > len(ts) {
			n = len(ts)
		}
		if n < 1 {
			return
		}
		feed := make(chan task)
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range feed {
					exec(t)
				}
			}()
		}
	dispatch:
		for _, t := range ts {
			select {
			case feed <- t:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(feed)
		wg.Wait()
	}

	// Cache hits count as completed cells for progress purposes; they are
	// reported up front so Done still reaches Total.
	for i := range outs {
		if outs[i].CacheHit {
			report(i)
		}
	}
	runPhase(tasks)
	if len(pending) > 0 {
		// Phase two: scalar re-runs of diverged and fallen-back batch
		// lanes, in job order for determinism. runCell resets each lane's
		// injector first, so the re-run replays the lane's campaign from
		// scratch — bit-identical to a sweep that never batched it.
		sort.Ints(pending)
		rerun := make([]task, len(pending))
		for k, i := range pending {
			rerun[k] = task{lanes: []int{i}}
		}
		runPhase(rerun)
	}

	var errs []error
	if cerr := ctx.Err(); cerr != nil {
		errs = append(errs, cerr)
	}
	for i := range outs {
		if errors.Is(outs[i].Err, errNotRun) {
			outs[i].Err = ctx.Err()
			continue
		}
		// Cells that stopped because the sweep was cancelled are not
		// failures of their own; the context error above covers them.
		if err := outs[i].Err; err != nil && !errors.Is(err, context.Canceled) &&
			!errors.Is(err, context.DeadlineExceeded) {
			errs = append(errs, fmt.Errorf("%s on %s: %w", jobs[i].Profile.Name, jobs[i].Name, err))
		}
	}
	return outs, errors.Join(errs...)
}
