package experiments

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FrontierRow is one redundancy mode's position on the coverage frontier:
// its fault-free performance next to the aggregate outcome of its fault
// campaigns. Together the rows answer the question the mode registry
// exists to ask — what does each detection/correction strategy pay in
// IPC, and what does it buy in coverage and repair latency?
type FrontierRow struct {
	Mode    core.Mode
	Streams int     // execution copies per architected instruction
	IPC     float64 // suite-mean fault-free IPC (oracle-verified)
	LossPct float64 // % IPC loss vs the single-stream baseline

	// Inj aggregates the mode's injection campaigns (zero-valued for the
	// non-detecting baseline, which runs no campaign).
	Inj FaultRow
}

// frontierCampaign is one (mode × site) injection cell of the frontier.
type frontierCampaign struct {
	mode core.Mode
	cfg  core.Config
	site fault.Site
}

// frontierCampaigns derives the injection matrix from the mode registry:
// every detecting mode faces single-bit strikes at the FU output and the
// forwarding path, and modes that integrate a reuse buffer additionally
// face strikes in the IRB result array and its operand fields. With the
// seed registry this is the classic six-campaign matrix plus REPLAY and
// TMR at the two universal sites.
func frontierCampaigns() []frontierCampaign {
	var out []frontierCampaign
	for _, mi := range core.Modes() {
		if !mi.Caps.Detects {
			continue
		}
		sites := []fault.Site{fault.FU, fault.Forward}
		if mi.Caps.UsesIRB {
			sites = append(sites, fault.IRBResult, fault.IRBOperand)
		}
		for _, s := range sites {
			out = append(out, frontierCampaign{mi.Mode, mi.Base(), s})
		}
	}
	return out
}

// Frontier runs the six-way redundancy comparison the mode registry was
// built for: every registered detecting mode plus the single-stream
// baseline on one table of fault-free IPC, IPC loss, detection coverage
// and MTTR. Phase one is the oracle-verified fault-free grid; phase two
// sweeps the registry-derived injection matrix (rate 3e-4 per site, the
// same operating point as the Faults experiment) and aggregates each
// mode's campaigns into a single row. Verification is forced on for both
// phases, so a silent corruption in any mode fails the run rather than
// skewing a number.
func Frontier(opts Options) ([]FrontierRow, *stats.Table, error) {
	opts.Verify = true
	cfgs := sim.FrontierConfigs()
	g, err := runGrid(cfgs, opts)
	if err != nil {
		return nil, nil, err
	}

	profiles, err := opts.profiles()
	if err != nil {
		return nil, nil, err
	}
	campaigns := frontierCampaigns()
	var (
		jobs []runner.Job
		injs []*fault.Injector
	)
	for _, c := range campaigns {
		for _, p := range profiles {
			inj, err := fault.New(fault.Config{Site: c.site, Rate: 3e-4, Seed: p.Seed})
			if err != nil {
				return nil, nil, err
			}
			o := opts.simOpts()
			o.Injector = inj
			jobs = append(jobs, runner.Job{
				Name:    string(c.mode) + "@" + string(c.site),
				Config:  c.cfg,
				Profile: p,
				Opts:    o,
			})
			injs = append(injs, inj)
		}
	}
	if !opts.DisableReplay {
		if err := runner.AttachTraces(jobs); err != nil {
			return nil, nil, err
		}
	}
	outs, err := runner.Run(opts.ctx(), jobs, opts.runnerOpts())
	if err != nil {
		return nil, nil, err
	}
	agg := map[core.Mode]*FaultRow{}
	for ci, c := range campaigns {
		row, ok := agg[c.mode]
		if !ok {
			row = &FaultRow{Mode: c.mode}
			agg[c.mode] = row
		}
		for pi := range profiles {
			i := ci*len(profiles) + pi
			row.accumulate(injs[i].Injected, &outs[i].Result.Core)
		}
	}
	for _, row := range agg {
		row.Vanished = int64(row.Injected) - int64(row.Detected) -
			int64(row.Masked) - int64(row.Silent)
	}

	// The baseline column for the loss figures is the grid's (unique)
	// non-detecting machine.
	baseIPC := 0.0
	for c, name := range g.Configs {
		if !core.Mode(name).Caps().Detects {
			baseIPC = stats.Mean(g.ConfigIPCs(c))
		}
	}

	t := stats.NewTable("Redundancy frontier: fault-free IPC vs detection coverage vs MTTR",
		"mode", "streams", "ipc", "loss_pct", "injected", "detected",
		"corrected", "silent", "coverage", "mttr")
	var rows []FrontierRow
	for c, name := range g.Configs {
		mode := core.Mode(name)
		caps := mode.Caps()
		row := FrontierRow{
			Mode:    mode,
			Streams: cfgs[c].Cfg.Streams(),
			IPC:     stats.Mean(g.ConfigIPCs(c)),
		}
		row.LossPct = stats.PctLoss(baseIPC, row.IPC)
		coverage, mttr := 0.0, 0.0
		if caps.Detects {
			row.Inj = *agg[mode]
			coverage, mttr = row.Inj.Coverage(), row.Inj.MTTR()
		}
		rows = append(rows, row)
		t.AddRow(string(mode), row.Streams, row.IPC, row.LossPct,
			row.Inj.Injected, row.Inj.Detected, row.Inj.Corrected,
			row.Inj.Silent, coverage, mttr)
	}
	return rows, t, nil
}
