// Package service is the simulation-as-a-service layer: an HTTP daemon
// that accepts sweep jobs (POST /v1/runs), executes them on a bounded
// worker pool over the parallel grid runner, and serves results, named
// experiments, and operational metrics. The daemon exists because grid
// sweeps over the paper's configuration space repeat the same cells
// constantly — the content-addressed result cache turns those repeats
// into map probes, applying the IRB's memoization idea one level up.
//
// Concurrency model: a request is first admitted against a queue-depth
// bound (full queue → 429 with Retry-After), then waits for one of the
// run slots (client disconnect while waiting cancels the run). Within a
// slot the grid runner fans the cells out over its own worker pool. A
// draining server (BeginDrain, typically on SIGTERM) rejects new work
// with 503 and fails /readyz while in-flight runs finish — pairing with
// http.Server.Shutdown, which waits for active requests but does not
// cancel their contexts.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/runner"
	"repro/internal/service/api"
	"repro/internal/sim"
)

// Config sizes the daemon. The zero value selects the documented
// defaults; New normalizes it.
type Config struct {
	// Workers is the number of runs executing concurrently (default 2).
	// Each run additionally fans its cells out over Parallelism workers.
	Workers int
	// QueueDepth bounds the requests admitted at once, running plus
	// waiting (default Workers+8). Beyond it POST /v1/runs answers 429
	// with a Retry-After header instead of queueing unboundedly.
	QueueDepth int
	// MaxCells is the per-request grid budget: a request expanding to
	// more (configs × benchmarks) cells is rejected with 413
	// (default 4096).
	MaxCells int
	// CacheEntries bounds the content-addressed result cache
	// (default 1024 cells, LRU-evicted).
	CacheEntries int
	// Parallelism is the grid runner's per-run worker count
	// (default GOMAXPROCS).
	Parallelism int
	// DefaultInsns is the per-cell instruction budget applied when a
	// request leaves insns at 0 (default sim.DefaultInsns).
	DefaultInsns uint64
	// Verify forces oracle verification on every cell regardless of the
	// request.
	Verify bool
	// CellTimeout bounds each cell's wall clock (0 = unbounded); see
	// runner.Options.CellTimeout.
	CellTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Coordinator, when non-nil, turns the daemon into the fabric
	// coordinator: grid cells dispatch to the worker fleet through the
	// runner's Execute seam, and the lease protocol endpoints
	// (POST /v1/lease, /v1/heartbeat, /v1/complete) are mounted.
	Coordinator *fabric.Coordinator
	// Journal, when non-nil, is the crash-safe run WAL: accepted runs,
	// completed cells and cache inserts are journaled as they happen, and
	// RecoverJournal resumes from them at boot.
	Journal *fabric.Journal
	// Seed seeds the daemon's jitter PRNG (Retry-After spreading); 0
	// selects 1. Operational only — simulation results never see it.
	Seed uint64
}

// runRetention bounds the run records kept for GET /v1/runs/{id}; the
// oldest finished runs are dropped beyond it.
const runRetention = 1024

// Server is the daemon state: the result cache, the admission and run
// slots, the metrics aggregate, and the run records.
type Server struct {
	cfg   Config
	cache *resultCache
	met   *metrics

	admit chan struct{} // queue-depth tokens (held request-long)
	slots chan struct{} // run slots (held while simulating)

	draining atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand // jitter for Retry-After values

	streamMu sync.Mutex
	streams  map[string]*stream // live run event streams by run ID

	journalErrs atomic.Uint64
	replay      atomic.Pointer[replayInfo]

	mu     sync.Mutex
	runs   map[string]*Run
	order  []string // run IDs, oldest first, for bounded retention
	nextID uint64
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = cfg.Workers + 8
	}
	if cfg.QueueDepth < cfg.Workers {
		cfg.QueueDepth = cfg.Workers
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = 4096
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.DefaultInsns == 0 {
		cfg.DefaultInsns = sim.DefaultInsns
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheEntries),
		met:     newMetrics(),
		admit:   make(chan struct{}, cfg.QueueDepth),
		slots:   make(chan struct{}, cfg.Workers),
		runs:    make(map[string]*Run),
		rng:     rand.New(rand.NewPCG(seed, 0x5e21ed)),
		streams: make(map[string]*stream),
	}
}

// BeginDrain switches the server to draining: new runs are refused with
// 503 and /readyz fails, while already-admitted work runs to completion.
// Pair with http.Server.Shutdown, which waits for in-flight requests
// without cancelling their contexts.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/runs", s.instrument("POST /v1/runs", s.handlePostRuns))
	mux.Handle("GET /v1/runs", s.instrument("GET /v1/runs", s.handleListRuns))
	mux.Handle("GET /v1/runs/{id}", s.instrument("GET /v1/runs/{id}", s.handleGetRun))
	mux.Handle("GET /v1/runs/{id}/events", s.instrument("GET /v1/runs/{id}/events", s.handleRunEvents))
	if s.cfg.Coordinator != nil {
		mux.Handle("POST /v1/lease", s.instrument("POST /v1/lease", s.handleLease))
		mux.Handle("POST /v1/heartbeat", s.instrument("POST /v1/heartbeat", s.handleHeartbeat))
		mux.Handle("POST /v1/complete", s.instrument("POST /v1/complete", s.handleComplete))
	}
	mux.Handle("GET /v1/experiments", s.instrument("GET /v1/experiments", s.handleListExperiments))
	mux.Handle("GET /v1/experiments/{name}", s.instrument("GET /v1/experiments/{name}", s.handleExperiment))
	mux.Handle("GET /v1/configs", s.instrument("GET /v1/configs", s.handleConfigs))
	mux.Handle("GET /v1/modes", s.instrument("GET /v1/modes", s.handleModes))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Test seams: the integration tests substitute deterministic stand-ins
// for the grid runner to exercise backpressure, cancellation and drain
// without real simulations.
var (
	runnerRun    = runner.Run
	attachTraces = runner.AttachTraces
)

// handlePostRuns is the job intake: validate, admit, wait for a run
// slot, execute, record, respond.
func (s *Server) handlePostRuns(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter(5*time.Second))
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting new runs")
		return
	}
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	jobs, err := s.buildJobs(&req)
	if err != nil {
		var me *unknownModeError
		if errors.As(err, &me) {
			writeJSON(w, http.StatusBadRequest, api.Error{Error: me.Error(), ValidModes: me.valid})
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(jobs) > s.cfg.MaxCells {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request expands to %d cells, limit %d", len(jobs), s.cfg.MaxCells))
		return
	}

	// Admission: the queue-depth token is non-blocking — a full queue
	// answers 429 immediately so clients back off instead of piling up.
	// The Retry-After is jittered by the shared backoff helper so a burst
	// of rejected clients does not come back in the same second.
	select {
	case s.admit <- struct{}{}:
	default:
		w.Header().Set("Retry-After", s.retryAfter(time.Second))
		writeError(w, http.StatusTooManyRequests, "run queue is full; retry later")
		return
	}
	defer func() { <-s.admit }()

	run := s.newRun(len(jobs))
	s.openStream(run.ID)
	s.journalAppend(fabric.Record{
		Type: fabric.RecRun, RunID: run.ID, Req: &req,
		Cells: len(jobs), Created: run.Created,
	})
	// Wait for a run slot, racing the client: a disconnect while queued
	// cancels the run before it consumes any simulation time.
	select {
	case s.slots <- struct{}{}:
	case <-r.Context().Done():
		s.finishRun(run.ID, StatusCancelled, nil, 0, "client disconnected while queued")
		s.met.observeRun(StatusCancelled, 0, 0, 0)
		s.journalAppend(fabric.Record{Type: fabric.RecFinish, RunID: run.ID,
			Status: StatusCancelled, Err: "client disconnected while queued"})
		s.dropStream(run.ID)
		return
	}
	defer func() { <-s.slots }()

	status := s.performRun(r.Context(), run.ID, jobs)
	if status == StatusCancelled {
		return // the client is gone; nothing to write
	}
	snap, _ := s.snapshotRun(run.ID)
	writeJSON(w, http.StatusOK, snap)
}

// performRun drives one admitted run to its terminal state: mark
// running, execute the grid (journaling and streaming each cell as it
// lands), record the results, and publish the terminal event. Both the
// HTTP intake and boot-time journal recovery funnel through it.
func (s *Server) performRun(ctx context.Context, runID string, jobs []runner.Job) string {
	s.markRunning(runID)
	start := now()
	keys := make([]string, len(jobs))
	for i := range jobs {
		keys[i], _ = jobs[i].Fingerprint() // uncacheable cells journal an empty key
	}
	outs, runErr := s.executeGrid(ctx, jobs, runID, keys)

	results := make([]CellResult, len(outs))
	simCells, hitCells := 0, 0
	for i, o := range outs {
		cr := CellResult{
			Bench:    o.Job.Profile.Name,
			Config:   o.Job.Name,
			CacheHit: o.CacheHit,
		}
		if o.Err != nil {
			cr.Error = o.Err.Error()
		} else {
			res := o.Result
			cr.Result = &res
			if o.CacheHit {
				hitCells++
			} else {
				simCells++
			}
		}
		results[i] = cr
	}

	status := StatusDone
	errMsg := ""
	switch {
	case ctx.Err() != nil:
		status, errMsg = StatusCancelled, "client disconnected mid-run"
	case runErr != nil:
		status, errMsg = StatusFailed, runErr.Error()
	}
	s.finishRun(runID, status, results, hitCells, errMsg)
	s.met.observeRun(status, simCells, hitCells, now().Sub(start))
	s.journalAppend(fabric.Record{Type: fabric.RecFinish, RunID: runID, Status: status, Err: errMsg})
	s.publishEvent(runID, api.CellEvent{Index: -1, Done: true, Status: status})
	return status
}

// executeGrid attaches shared traces to the cells the cache cannot
// already serve — a cache hit never needs a functional trace, so
// capturing one for it would waste exactly the work the cache exists to
// skip — then hands the grid to the runner with the server's cache
// attached. With a coordinator configured the cells dispatch to the
// worker fleet through the runner's Execute seam instead (workers
// capture their own traces), with one waiter per cell so the whole grid
// can be in flight at once. runID/keys attach the journal and event
// stream hooks; a caller with no run record passes "" and nil.
func (s *Server) executeGrid(ctx context.Context, jobs []runner.Job, runID string, keys []string) ([]runner.Outcome, error) {
	opts := runner.Options{
		Parallelism: s.cfg.Parallelism,
		CellTimeout: s.cfg.CellTimeout,
		Cache:       s.runnerCache(),
	}
	if runID != "" {
		opts.Progress = s.cellProgress(runID, keys)
	}
	if s.cfg.Coordinator != nil {
		opts.Execute = s.cfg.Coordinator.Execute
		opts.Parallelism = len(jobs)
		return runnerRun(ctx, jobs, opts)
	}
	missing := make([]int, 0, len(jobs))
	for i := range jobs {
		key, err := jobs[i].Fingerprint()
		if err != nil || !s.cache.Contains(key) {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		tmp := make([]runner.Job, len(missing))
		for k, i := range missing {
			tmp[k] = jobs[i]
		}
		if err := attachTraces(tmp); err != nil {
			return nil, err
		}
		for k, i := range missing {
			jobs[i] = tmp[k]
		}
	}
	return runnerRun(ctx, jobs, opts)
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshotRun(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run ID")
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleListRuns returns run summaries (no per-cell results), newest
// last, for discovery and dashboards.
func (s *Server) handleListRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]Run, 0, len(s.order))
	for _, id := range s.order {
		if run, ok := s.runs[id]; ok {
			summary := *run
			summary.Results = nil
			list = append(list, summary)
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"runs": list})
}

func (s *Server) handleListExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": experiments.Names()})
}

func (s *Server) handleConfigs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"configs": ConfigNames()})
}

// handleModes lists the registered redundancy modes — name, description,
// capability summary and knobs — straight from the core mode registry, so
// a newly registered mode is discoverable with no service change.
func (s *Server) handleModes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.ModesResponse{Modes: DescribeModes()})
}

// handleExperiment runs a named paper experiment under the same
// admission control as ad-hoc runs, sharing the daemon's result cache so
// an experiment re-requested with the same knobs replays from memory.
// Query parameters: insns, bench (comma-separated), verify, format
// (table, csv or json).
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	named, ok := experiments.ByName(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment; see GET /v1/experiments")
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter(5*time.Second))
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting new runs")
		return
	}
	q := r.URL.Query()
	format := q.Get("format")
	if format == "" {
		format = "table"
	}
	opts := experiments.Options{
		Context:     r.Context(),
		Insns:       s.cfg.DefaultInsns,
		Verify:      s.cfg.Verify || q.Get("verify") == "true",
		Benchmarks:  cliutil.SplitBenchmarks(q.Get("bench")),
		Parallelism: s.cfg.Parallelism,
		CellTimeout: s.cfg.CellTimeout,
		Cache:       s.cache,
	}
	if v := q.Get("insns"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "insns: "+err.Error())
			return
		}
		opts.Insns = n
	}
	// Validate the output format before burning simulation time on it.
	switch format {
	case "table", "csv", "json":
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown format %q (want table, csv or json)", format))
		return
	}

	select {
	case s.admit <- struct{}{}:
	default:
		w.Header().Set("Retry-After", s.retryAfter(time.Second))
		writeError(w, http.StatusTooManyRequests, "run queue is full; retry later")
		return
	}
	defer func() { <-s.admit }()
	select {
	case s.slots <- struct{}{}:
	case <-r.Context().Done():
		return
	}
	defer func() { <-s.slots }()

	start := now()
	tbl, err := named.Run(opts)
	switch {
	case r.Context().Err() != nil:
		s.met.observeRun(StatusCancelled, 0, 0, now().Sub(start))
		return
	case err != nil:
		s.met.observeRun(StatusFailed, 0, 0, now().Sub(start))
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.met.observeRun(StatusDone, 0, 0, now().Sub(start))
	out, err := cliutil.Render(tbl, format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if format == "json" {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	fmt.Fprintln(w, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// len(admit) is the queue-depth gauge: tokens currently held by
	// admitted, unfinished requests.
	s.met.render(w, len(s.admit), s.cache.stats())
	if c := s.cfg.Coordinator; c != nil {
		renderFabricMetrics(w, c.Metrics())
	}
	if s.cfg.Journal != nil {
		renderJournalMetrics(w, s.replay.Load(), s.journalErrs.Load())
	}
}

// --- run records -----------------------------------------------------

func (s *Server) newRun(cells int) Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("run-%06d", s.nextID)
	run := &Run{ID: id, Status: StatusQueued, Created: now(), Cells: cells}
	s.runs[id] = run
	s.order = append(s.order, id)
	s.evictRunsLocked()
	return *run
}

// evictRunsLocked drops the oldest finished runs beyond the retention
// bound; records of queued or running runs are never dropped.
func (s *Server) evictRunsLocked() {
	for len(s.order) > runRetention {
		dropped := false
		for i, id := range s.order {
			run := s.runs[id]
			if run == nil || run.Finished != nil {
				delete(s.runs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return // everything is still in flight; retention waits
		}
	}
}

func (s *Server) markRunning(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if run, ok := s.runs[id]; ok {
		t := now()
		run.Status, run.Started = StatusRunning, &t
	}
}

func (s *Server) finishRun(id, status string, results []CellResult, cacheHits int, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.runs[id]
	if !ok {
		return
	}
	t := now()
	run.Status, run.Finished = status, &t
	run.Results, run.CacheHits, run.Error = results, cacheHits, errMsg
}

// snapshotRun copies a run record for serialization outside the lock.
// The copy shares the Results backing array, which is never mutated
// after finishRun installs it.
func (s *Server) snapshotRun(id string) (Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.runs[id]
	if !ok {
		return Run{}, false
	}
	return *run, true
}

// --- HTTP plumbing ---------------------------------------------------

// instrument wraps a handler to count its responses by route and status
// code on /metrics.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.met.incRequest(route, sw.code)
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so instrumented handlers can
// stream (the SSE endpoint requires an http.Flusher).
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client went away; nothing else to do
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
