// Command bench measures the simulator's engineering performance — wall
// clock and allocation behaviour, not model fidelity — and writes a
// machine-readable JSON record for longitudinal tracking. Each run emits
// BENCH_<date>.json (override with -out) containing simulated
// instructions per second for every headline configuration with and
// without trace replay, the headline grid's serial and parallel
// wall-clock, the functional interpreter's and replay fast path's
// throughput, and allocations per operation for each measurement.
//
// Usage:
//
//	go run ./cmd/bench                       # full measurement, BENCH_<date>.json
//	go run ./cmd/bench -short -out ci.json   # reduced sizes for CI smoke
//	go run ./cmd/bench -notes "post-refactor"
//	go run ./cmd/bench -insns 100000 -bench gzip,mesa  # custom grid
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/fsim"
	"repro/internal/irb"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the file-level envelope.
type Record struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Short     bool     `json:"short,omitempty"`
	Notes     string   `json:"notes,omitempty"`
	Results   []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	short := flag.Bool("short", false, "reduced instruction budgets for CI smoke runs")
	notes := flag.String("notes", "", "free-form note embedded in the record")
	fl := cliutil.RegisterExperimentFlags(flag.CommandLine, 50_000, "bzip2,mesa,ammp")
	flag.Parse()

	rec := Record{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Short:     *short,
		Notes:     *notes,
	}
	path := *out
	if path == "" {
		path = "BENCH_" + rec.Date + ".json"
	}

	gridOpts := fl.Options()
	insns := gridOpts.Insns
	fsimSteps := uint64(200_000)
	if *short {
		insns, fsimSteps = 10_000, 50_000
		gridOpts.Insns, gridOpts.Benchmarks = insns, []string{"bzip2"}
	}

	measure := func(name string, metric string, denom float64, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		res := Result{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if metric != "" && r.NsPerOp() > 0 {
			// Rate metric: work units per second of one operation.
			res.Metrics = map[string]float64{metric: denom / (float64(r.NsPerOp()) / 1e9)}
		}
		rec.Results = append(rec.Results, res)
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op %10d allocs/op\n", name, res.NsPerOp, res.AllocsPerOp)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	gzip, ok := workload.ByName("gzip")
	if !ok {
		fail(fmt.Errorf("gzip profile missing"))
	}
	tr, err := sim.CaptureTrace(gzip, sim.Options{Insns: insns})
	if err != nil {
		fail(err)
	}
	for _, nc := range sim.HeadlineConfigs() {
		nc := nc
		measure("SimulatorThroughput/"+nc.Name, "insns_per_s", float64(insns), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(nc.Name, nc.Cfg, gzip, sim.Options{Insns: insns, Trace: tr}); err != nil {
					b.Fatal(err)
				}
			}
		})
		measure("SimulatorThroughputDirect/"+nc.Name, "insns_per_s", float64(insns), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(nc.Name, nc.Cfg, gzip, sim.Options{Insns: insns}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	grid := func(name string, opts experiments.Options) {
		measure(name, "", 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := experiments.Headline(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	serial := gridOpts
	serial.Parallelism = 1
	grid("GridSerial", serial)
	grid("GridParallel", gridOpts)
	noReplay := gridOpts
	noReplay.DisableReplay = true
	grid("GridParallelNoReplay", noReplay)

	prog, err := workload.Generate(gzip.WithIters(1_000_000))
	if err != nil {
		fail(err)
	}
	measure("FunctionalSim/interpret", "insns_per_s", float64(fsimSteps), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fsim.New(prog).Run(fsimSteps); err != nil {
				b.Fatal(err)
			}
		}
	})
	ftr, err := fsim.Capture(prog, fsimSteps)
	if err != nil {
		fail(err)
	}
	measure("FunctionalSim/replay", "insns_per_s", float64(fsimSteps), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fsim.NewReplay(ftr).Run(fsimSteps); err != nil {
				b.Fatal(err)
			}
		}
	})

	buf, err := irb.New(irb.Default())
	if err != nil {
		fail(err)
	}
	for pc := uint64(0); pc < 2048; pc++ {
		buf.Insert(pc, pc, irb.Entry{Src1: pc, Src2: pc, Result: pc * 2})
	}
	measure("IRBLookup", "", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Lookup(uint64(i), uint64(i)%2048)
		}
	})

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Println(path)
}
