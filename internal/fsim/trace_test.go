package fsim

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// traceTestProgram builds a small loop with loads, stores, branches and
// ALU work so a trace exercises every record field, halting after the
// loop drains. It returns the program and its array's base address.
func traceTestProgram(t *testing.T, iters int64) (*program.Program, uint64) {
	t.Helper()
	b := program.NewBuilder("trace-test")
	base := b.Array(64, func(i int) uint64 { return uint64(i * 3) })
	b.LoadConst(1, iters)       // counter
	b.LoadConst(2, int64(base)) // pointer
	b.LoadConst(3, 7)           // increment
	b.Label("loop")
	b.EmitImm(isa.OpLoad, 4, 2, 0)
	b.EmitOp(isa.OpAdd, 4, 4, 3)
	b.Emit(isa.Instr{Op: isa.OpStore, Src1: 2, Src2: 4})
	b.EmitImm(isa.OpAddi, 2, 2, 8)
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog, base
}

func TestCaptureMatchesDirectExecution(t *testing.T) {
	prog, _ := traceTestProgram(t, 40)
	tr, err := Capture(prog, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Halts() {
		t.Fatal("trace of a halting program should record the halt")
	}
	if !tr.Covers(tr.Len()) || !tr.Covers(1_000_000) {
		t.Error("a halting trace covers any budget")
	}
	m := New(prog)
	cur := tr.Replay()
	for i := uint64(0); i < tr.Len(); i++ {
		want, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := cur.Next()
		if !ok {
			t.Fatalf("cursor exhausted at %d/%d", i, tr.Len())
		}
		if *got != want {
			t.Fatalf("record %d:\nreplay %+v\ndirect %+v", i, *got, want)
		}
	}
	if _, ok := cur.Next(); ok {
		t.Error("cursor yielded past the recorded stream")
	}
}

func TestReplayMachineStateMatchesDirect(t *testing.T) {
	prog, _ := traceTestProgram(t, 40)
	tr, err := Capture(prog, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	direct, replay := New(prog), NewReplay(tr)
	for !direct.Halted {
		dr, derr := direct.Step()
		rr, rerr := replay.Step()
		if derr != nil || rerr != nil {
			t.Fatalf("step errors: direct=%v replay=%v", derr, rerr)
		}
		if dr != rr {
			t.Fatalf("records diverge at seq %d:\ndirect %+v\nreplay %+v", dr.Seq, dr, rr)
		}
		if direct.PC != replay.PC || direct.Regs != replay.Regs {
			t.Fatalf("state diverges at seq %d", dr.Seq)
		}
	}
	if !replay.Halted || replay.Count != direct.Count {
		t.Errorf("replay end state: halted=%v count=%d, want halted count=%d",
			replay.Halted, replay.Count, direct.Count)
	}
}

func TestReplayFallsBackToInterpretation(t *testing.T) {
	prog, base := traceTestProgram(t, 40)
	const prefix = 17
	tr, err := Capture(prog, prefix)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != prefix || tr.Halts() {
		t.Fatalf("want a %d-record truncated trace, got len=%d halts=%v", prefix, tr.Len(), tr.Halts())
	}
	if tr.Covers(prefix + 1) {
		t.Error("a truncated trace must not claim to cover a larger budget")
	}
	direct, replay := New(prog), NewReplay(tr)
	for !direct.Halted {
		dr, _ := direct.Step()
		rr, rerr := replay.Step()
		if rerr != nil {
			t.Fatal(rerr)
		}
		if dr != rr {
			t.Fatalf("records diverge at seq %d (past trace end at %d)", dr.Seq, prefix)
		}
	}
	// Memory written past the trace end must match a direct run's.
	for i := uint64(0); i < 40; i++ {
		addr := base + 8*i
		if got, want := replay.Mem.Read(addr), direct.Mem.Read(addr); got != want {
			t.Errorf("memory diverged after fallback at %d: %d != %d", addr, got, want)
		}
	}
}

func TestReplayFromSkipsPrefix(t *testing.T) {
	prog, _ := traceTestProgram(t, 40)
	tr, err := Capture(prog, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	cur := tr.ReplayFrom(5)
	r, ok := cur.Next()
	if !ok || r.Seq != 6 {
		t.Fatalf("ReplayFrom(5) first record seq = %d, want 6", r.Seq)
	}
	if want := tr.Len() - 6; cur.Remaining() != want {
		t.Errorf("remaining = %d, want %d", cur.Remaining(), want)
	}
	if c := tr.ReplayFrom(tr.Len() + 99); c.Remaining() != 0 {
		t.Error("ReplayFrom past the end should yield nothing")
	}
}

func TestPreflightMemoized(t *testing.T) {
	prog, _ := traceTestProgram(t, 4)
	tr, err := Capture(prog, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	sentinel := errors.New("sentinel")
	check := func(p *program.Program) error {
		calls++
		if p != prog {
			t.Error("preflight got a different program")
		}
		return sentinel
	}
	for i := 0; i < 3; i++ {
		if err := tr.Preflight(check); !errors.Is(err, sentinel) {
			t.Fatalf("preflight err = %v", err)
		}
	}
	if calls != 1 {
		t.Errorf("check ran %d times, want 1", calls)
	}
}
