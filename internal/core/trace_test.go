package core

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/fsim"
)

// countingTracer tallies events per kind.
type countingTracer struct {
	dispatch, issue, reuse, complete, squash, commit int
	wrongPath                                        int
}

func (c *countingTracer) Dispatch(_, _ uint64, _, wrong bool, _ *fsim.Retired) {
	c.dispatch++
	if wrong {
		c.wrongPath++
	}
}
func (c *countingTracer) Issue(_, _ uint64, _ bool, _ *fsim.Retired)    { c.issue++ }
func (c *countingTracer) ReuseHit(_, _ uint64, _ *fsim.Retired)         { c.reuse++ }
func (c *countingTracer) Complete(_, _ uint64, _ bool, _ *fsim.Retired) { c.complete++ }
func (c *countingTracer) Squash(_ uint64, _ int)                        { c.squash++ }
func (c *countingTracer) Commit(_, _ uint64, _ *fsim.Retired)           { c.commit++ }

func TestTracerEventCountsMatchStats(t *testing.T) {
	prog := branchyProgram(200)
	c, err := New(quicken(BaseDIEIRB()), prog)
	if err != nil {
		t.Fatal(err)
	}
	tr := &countingTracer{}
	c.SetTracer(tr)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats
	if uint64(tr.dispatch) != s.Dispatched {
		t.Errorf("dispatch events %d != stat %d", tr.dispatch, s.Dispatched)
	}
	if uint64(tr.wrongPath) != s.WrongPath {
		t.Errorf("wrong-path events %d != stat %d", tr.wrongPath, s.WrongPath)
	}
	if uint64(tr.reuse) != s.IRBReuseHits {
		t.Errorf("reuse events %d != stat %d", tr.reuse, s.IRBReuseHits)
	}
	if uint64(tr.commit) != s.Committed {
		t.Errorf("commit events %d != stat %d", tr.commit, s.Committed)
	}
	if uint64(tr.squash) != s.Mispredicts {
		t.Errorf("squash events %d != mispredicts %d", tr.squash, s.Mispredicts)
	}
	if uint64(tr.issue) != s.IssueSlotsUsed {
		t.Errorf("issue events %d != stat %d", tr.issue, s.IssueSlotsUsed)
	}
	if tr.complete < tr.commit {
		t.Errorf("completions %d below commits %d", tr.complete, tr.commit)
	}
}

func TestTextTracerOutput(t *testing.T) {
	var sb strings.Builder
	prog := loopProgram(5)
	c, err := New(quicken(BaseDIEIRB()), prog)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTracer(&TextTracer{W: &sb})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dispatch", "issue", "complete", "commit"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q events:\n%s", want, out[:min(len(out), 500)])
		}
	}
	// Duplicates are marked with the D stream tag.
	if !strings.Contains(out, " D pc=") {
		t.Error("trace never shows duplicate-stream events")
	}
}

func TestTextTracerWindow(t *testing.T) {
	var sb strings.Builder
	prog := loopProgram(200)
	c, err := New(quicken(BaseSIE()), prog)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTracer(&TextTracer{W: &sb, MaxCycles: 10})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		cyc, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			t.Fatalf("unparseable trace line %q", line)
		}
		if cyc > 10 {
			t.Fatalf("event beyond the traced window: %q", line)
		}
	}
}
