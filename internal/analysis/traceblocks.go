package analysis

import "repro/internal/isa"

// Trace-reuse window extraction. The trace reuse buffer (internal/trb)
// memoizes a straight-line run of instructions keyed by entry PC plus the
// values of its live-in registers: when the leader stream re-enters the
// window with the same live-in values, every duplicate in the window is
// served its recorded output signature without executing. That is sound
// only when the signatures are a pure function of (entry PC, live-in
// values), which this pass guarantees statically:
//
//   - Windows are intra-block, so control cannot enter mid-window and the
//     leader dispatches the window's instructions consecutively.
//   - Signatures are register-only (a load's signature is its effective
//     address, a store's the address/value mix, a branch's the decision):
//     no signature reads memory directly. What could smuggle memory in is
//     a register written by an in-window load and read by a later
//     in-window instruction — such readers terminate the window (the
//     load itself is fine).
//   - Every live-in register must carry the same value each time the
//     leader re-enters the window, or the buffer would serve stale
//     signatures to matching live-ins. Windows are only emitted inside
//     loops, and a live-in is accepted only when no instruction anywhere
//     in the innermost loop writes it — loop-invariant by construction.
//     (A buffer hit additionally re-checks the recorded live-in values,
//     so even a scrubbed/retrained entry can never produce a false hit.)
//
// One (longest) window per loop block keeps the index dense and the
// buffer conflict-free for the common loop shapes the workload generator
// emits, where the profitable run is the loop-invariant recomputation
// chain in the middle of each unrolled body.

// TraceBlock is one memoizable window: Len instructions starting at
// Entry, whose output signatures depend only on the LiveIn registers.
type TraceBlock struct {
	// Entry is the instruction index of the window's first instruction.
	Entry uint64
	// Len is the window length in instructions (always >= 2).
	Len int
	// LiveIn lists the registers read before any in-window write, in
	// ascending order. Their values key the memoization.
	LiveIn []isa.Reg
}

// TraceBlocks extracts, for every reachable in-loop basic block, the
// longest valid memoization window of at most maxLen instructions with at
// most maxLiveIn live-in registers. Windows shorter than two instructions
// are not worth a lookup and are dropped.
func TraceBlocks(g *CFG, maxLen, maxLiveIn int) []TraceBlock {
	var out []TraceBlock
	for _, b := range g.Blocks {
		if !b.Reachable || b.LoopDepth == 0 {
			continue
		}
		loop := g.InnermostLoop(b)
		if loop == nil {
			continue
		}
		// Registers defined anywhere in the innermost loop: a window
		// live-in drawn from this set would change across iterations.
		var loopDefs regSet
		for _, id := range loop.Blocks {
			lb := g.Blocks[id]
			for pc := lb.Start; pc < lb.End; pc++ {
				loopDefs |= defs(g.Prog.Code[pc])
			}
		}
		if w, ok := bestWindow(g, b, loopDefs, maxLen, maxLiveIn); ok {
			out = append(out, w)
		}
	}
	return out
}

// bestWindow scans the block for its longest valid window.
func bestWindow(g *CFG, b *Block, loopDefs regSet, maxLen, maxLiveIn int) (TraceBlock, bool) {
	best := TraceBlock{}
	for s := b.Start; s < b.End; s++ {
		var (
			liveIn  regSet
			written regSet
			taint   regSet // registers holding in-window loaded values
		)
		length := 0
		for pc := s; pc < b.End && length < maxLen; pc++ {
			in := g.Prog.Code[pc]
			if in.Op == isa.OpHalt {
				break
			}
			u := uses(in)
			// A register written by an in-window load carries a memory
			// value: any reader's signature would depend on memory
			// contents, which the live-in key cannot capture.
			if u&taint != 0 {
				break
			}
			newLive := u &^ written
			if newLive&loopDefs != 0 {
				// The value changes across iterations of the very loop
				// that makes the window hot: it would never re-match.
				break
			}
			if (liveIn | newLive).count() > maxLiveIn {
				break
			}
			liveIn |= newLive
			d := defs(in)
			if in.Op.Info().IsLoad {
				taint |= d
			} else {
				taint &^= d
			}
			written |= d
			length++
		}
		if length >= 2 && length > best.Len {
			best = TraceBlock{Entry: s, Len: length, LiveIn: liveIn.regs()}
		}
	}
	return best, best.Len >= 2
}
