package cliutil

import (
	"encoding/json"
	"flag"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSplitBenchmarks(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{" , ,", nil},
		{"gzip", []string{"gzip"}},
		{"gzip,mesa", []string{"gzip", "mesa"}},
		{" gzip , mesa ,", []string{"gzip", "mesa"}},
	}
	for _, c := range cases {
		if got := SplitBenchmarks(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitBenchmarks(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestProfiles(t *testing.T) {
	all, err := Profiles("")
	if err != nil || len(all) != 12 {
		t.Fatalf("empty -bench: %d profiles, %v; want the 12-benchmark suite", len(all), err)
	}
	two, err := Profiles("gzip,mesa")
	if err != nil || len(two) != 2 || two[0].Name != "gzip" || two[1].Name != "mesa" {
		t.Fatalf("Profiles(gzip,mesa) = %v, %v", two, err)
	}
	if _, err := Profiles("gzip,nonesuch"); err == nil ||
		!strings.Contains(err.Error(), "nonesuch") {
		t.Errorf("unknown benchmark error = %v", err)
	}
}

func TestFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	insns := Insns(fs, 1234)
	verify := Verify(fs)
	bench := Bench(fs, "gzip", "usage")
	jobs := Jobs(fs)
	format := Format(fs)
	if err := fs.Parse([]string{"-insns", "99", "-verify", "-bench", "mesa", "-j", "3", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if *insns != 99 || !*verify || *bench != "mesa" || *jobs != 3 || *format != "csv" {
		t.Errorf("parsed %d/%v/%q/%d/%q", *insns, *verify, *bench, *jobs, *format)
	}

	fs = flag.NewFlagSet("defaults", flag.ContinueOnError)
	jobs = Jobs(fs)
	format = Format(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *jobs < 1 {
		t.Errorf("default -j = %d, want >= 1", *jobs)
	}
	if *format != "table" {
		t.Errorf("default -format = %q", *format)
	}
}

func TestRenderFormats(t *testing.T) {
	tbl := stats.NewTable("demo", "a", "b")
	tbl.AddRow("x", 1)

	plain, err := Render(tbl, "table")
	if err != nil || !strings.Contains(plain, "demo") {
		t.Errorf("table render: %q, %v", plain, err)
	}
	if def, err := Render(tbl, ""); err != nil || def != plain {
		t.Errorf("empty format should render as table")
	}
	csv, err := Render(tbl, "csv")
	if err != nil || !strings.Contains(csv, "a,b") {
		t.Errorf("csv render: %q, %v", csv, err)
	}
	out, err := Render(tbl, "json")
	if err != nil {
		t.Fatalf("json render: %v", err)
	}
	var decoded struct {
		Title   string
		Headers []string
		Rows    [][]string
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, out)
	}
	if decoded.Title != "demo" || len(decoded.Headers) != 2 || len(decoded.Rows) != 1 {
		t.Errorf("json content: %+v", decoded)
	}

	if _, err := Render(tbl, "yaml"); err == nil ||
		!strings.Contains(err.Error(), "yaml") {
		t.Errorf("unknown format error = %v", err)
	}
}

func TestExperimentFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fl := RegisterExperimentFlags(fs, 12345, "")
	err := fs.Parse([]string{
		"-insns", "777", "-bench", "gzip, mesa", "-verify",
		"-j", "3", "-cell-timeout", "90s",
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := fl.Options()
	if opts.Insns != 777 || !opts.Verify || opts.Parallelism != 3 {
		t.Fatalf("opts = %+v", opts)
	}
	if opts.CellTimeout.Seconds() != 90 {
		t.Fatalf("cell timeout = %v, want 90s", opts.CellTimeout)
	}
	if !reflect.DeepEqual(opts.Benchmarks, []string{"gzip", "mesa"}) {
		t.Fatalf("benchmarks = %v", opts.Benchmarks)
	}
}

func TestExperimentFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fl := RegisterExperimentFlags(fs, 12345, "bzip2")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	opts := fl.Options()
	if opts.Insns != 12345 || opts.Verify || opts.CellTimeout != 0 {
		t.Fatalf("opts = %+v", opts)
	}
	if !reflect.DeepEqual(opts.Benchmarks, []string{"bzip2"}) {
		t.Fatalf("benchmarks = %v", opts.Benchmarks)
	}
}
