package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableJSON(t *testing.T) {
	tbl := NewTable("speedup", "bench", "ipc")
	tbl.AddRow("gzip", 1.25)
	tbl.AddRow("mesa", 0.5)

	out := tbl.JSON()
	if !strings.HasSuffix(out, "\n") {
		t.Error("JSON output lacks a trailing newline")
	}
	var decoded struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("output does not parse: %v\n%s", err, out)
	}
	if decoded.Title != "speedup" {
		t.Errorf("title = %q", decoded.Title)
	}
	if len(decoded.Headers) != 2 || decoded.Headers[0] != "bench" {
		t.Errorf("headers = %v", decoded.Headers)
	}
	if len(decoded.Rows) != 2 || decoded.Rows[0][0] != "gzip" {
		t.Errorf("rows = %v", decoded.Rows)
	}
	// Cells must be the same formatted strings the text renderers use.
	if decoded.Rows[1][1] != tbl.rows[1][1] {
		t.Errorf("json cell %q != table cell %q", decoded.Rows[1][1], tbl.rows[1][1])
	}
}

func TestTableJSONEmpty(t *testing.T) {
	out := NewTable("").JSON()
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("empty table JSON does not parse: %v\n%s", err, out)
	}
	if _, ok := decoded["title"]; ok {
		t.Error("empty title should be omitted")
	}
}
