package analysis

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workload"
)

// nestedLoopProgram builds
//
//	addi r1, r0, 3        ; outer counter
//	addi r3, r0, 0        ; accumulator init
//	OUTER: addi r2, r0, 4 ; inner counter
//	INNER: addi r3, r3, 1
//	addi r2, r2, -1
//	bne  r2, r0, INNER
//	addi r1, r1, -1
//	bne  r1, r0, OUTER
//	halt
func nestedLoopProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("nested")
	b.EmitImm(isa.OpAddi, 1, isa.ZeroReg, 3)
	b.EmitImm(isa.OpAddi, 3, isa.ZeroReg, 0)
	b.Label("outer")
	b.EmitImm(isa.OpAddi, 2, isa.ZeroReg, 4)
	b.Label("inner")
	b.EmitImm(isa.OpAddi, 3, 3, 1)
	b.EmitImm(isa.OpAddi, 2, 2, -1)
	b.Branch(isa.OpBne, 2, isa.ZeroReg, "inner")
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "outer")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCFGNestedLoops(t *testing.T) {
	p := nestedLoopProgram(t)
	g := BuildCFG(p)

	if got := len(g.Loops); got != 2 {
		t.Fatalf("loops = %d, want 2", got)
	}
	for _, b := range g.Blocks {
		if !b.Reachable {
			t.Errorf("block %d [%d,%d) unreachable, want all reachable", b.ID, b.Start, b.End)
		}
	}
	if g.Entry().Start != 0 {
		t.Errorf("entry block starts at %d, want 0", g.Entry().Start)
	}
	// The inner-loop body block (containing pc of "addi r3, r3, 1" at
	// index 3) is at depth 2; the outer-only block (inner counter reset,
	// index 2) at depth 1; the entry at depth 0.
	if d := g.BlockAt(3).LoopDepth; d != 2 {
		t.Errorf("inner body depth = %d, want 2", d)
	}
	if d := g.BlockAt(2).LoopDepth; d != 1 {
		t.Errorf("outer prep depth = %d, want 1", d)
	}
	if d := g.BlockAt(0).LoopDepth; d != 0 {
		t.Errorf("entry depth = %d, want 0", d)
	}
	if !g.BlockAt(3).LoopHead || !g.BlockAt(2).LoopHead {
		t.Error("loop header blocks not flagged LoopHead")
	}
	inner := g.InnermostLoop(g.BlockAt(3))
	if inner == nil || inner.Depth != 2 {
		t.Fatalf("innermost loop of body = %+v, want depth 2", inner)
	}
	outer := g.InnermostLoop(g.BlockAt(2))
	if outer == nil || outer.Depth != 1 {
		t.Fatalf("innermost loop of outer prep = %+v, want depth 1", outer)
	}

	if tr := loopTrip(g, inner); tr != 4 {
		t.Errorf("inner loopTrip = %v, want 4", tr)
	}
	if tr := loopTrip(g, outer); tr != 3 {
		t.Errorf("outer loopTrip = %v, want 3", tr)
	}
}

func TestCFGCallReturnEdges(t *testing.T) {
	b := program.NewBuilder("callret")
	b.Call("leaf")
	b.EmitImm(isa.OpAddi, 1, 1, 1) // return point
	b.Emit(isa.Instr{Op: isa.OpHalt})
	b.Label("leaf")
	b.EmitImm(isa.OpAddi, 1, isa.ZeroReg, 7)
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(p)
	for _, blk := range g.Blocks {
		if !blk.Reachable {
			t.Errorf("block %d [%d,%d) unreachable; call/return edges missing",
				blk.ID, blk.Start, blk.End)
		}
	}
	if len(g.Loops) != 0 {
		t.Errorf("loops = %d, want 0", len(g.Loops))
	}
	// The leaf's return must flow to the return point, so r1's def in the
	// leaf reaches the increment: no read-before-write diagnostic.
	r := Analyze(p)
	if len(r.Diags) != 0 {
		t.Errorf("diagnostics on clean call/ret program: %v", r.Diags)
	}
}

func TestLivenessAndDefUse(t *testing.T) {
	p := nestedLoopProgram(t)
	g := BuildCFG(p)
	lv := ComputeLiveness(g)
	if el := lv.EntryLive(); el != 0 {
		t.Errorf("entry-live = %v, want empty", el.regs())
	}
	du := ComputeDefUse(g)
	// r3: defined at 1 (init) and 3 (increment), used at 3.
	if got := du.Defs[3]; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("defs[r3] = %v, want [1 3]", got)
	}
	if got := du.Uses[3]; len(got) != 1 || got[0] != 3 {
		t.Errorf("uses[r3] = %v, want [3]", got)
	}
	if got := du.Uses[0]; len(got) != 0 {
		t.Errorf("uses[r0] = %v, want none (hardwired zero excluded)", got)
	}
}

// diagKinds returns the multiset of diagnostic kinds reported for p.
func diagKinds(t *testing.T, p *program.Program) []Kind {
	t.Helper()
	r := Analyze(p)
	kinds := make([]Kind, len(r.Diags))
	for i, d := range r.Diags {
		kinds[i] = d.Kind
	}
	return kinds
}

func wantOnly(t *testing.T, p *program.Program, want Kind) {
	t.Helper()
	kinds := diagKinds(t, p)
	if len(kinds) != 1 || kinds[0] != want {
		t.Fatalf("diagnostics = %v, want exactly [%s]", kinds, want)
	}
}

func TestDiagReadBeforeWrite(t *testing.T) {
	b := program.NewBuilder("rbw")
	b.EmitOp(isa.OpAdd, 1, 2, isa.ZeroReg) // r2 never written
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOnly(t, p, KindReadBeforeWrite)

	r := Analyze(p)
	if r.Diags[0].PC != 0 {
		t.Errorf("diag pc = %d, want 0", r.Diags[0].PC)
	}
}

func TestDiagUnreachable(t *testing.T) {
	b := program.NewBuilder("unreachable")
	b.Jump("end")
	b.EmitOp(isa.OpAdd, 1, isa.ZeroReg, isa.ZeroReg) // skipped forever
	b.Label("end")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOnly(t, p, KindUnreachable)
}

func TestDiagUnreachableNopPaddingExempt(t *testing.T) {
	b := program.NewBuilder("padding")
	b.Jump("end")
	b.Emit(isa.Instr{Op: isa.OpNop})
	b.Emit(isa.Instr{Op: isa.OpNop})
	b.Label("end")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if kinds := diagKinds(t, p); len(kinds) != 0 {
		t.Fatalf("diagnostics = %v, want none (NOP padding is exempt)", kinds)
	}
}

func TestDiagZeroRegWrite(t *testing.T) {
	b := program.NewBuilder("zerowrite")
	b.EmitOp(isa.OpAdd, isa.ZeroReg, isa.ZeroReg, isa.ZeroReg)
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOnly(t, p, KindZeroRegWrite)
}

func TestDiagZeroRegWriteReturnIdiomExempt(t *testing.T) {
	b := program.NewBuilder("retidiom")
	b.Call("leaf")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	b.Label("leaf")
	b.Ret() // jalr r0, r31: link discarded by design
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if kinds := diagKinds(t, p); len(kinds) != 0 {
		t.Fatalf("diagnostics = %v, want none (return idiom is exempt)", kinds)
	}
}

func TestDiagMisalignedData(t *testing.T) {
	b := program.NewBuilder("misaligned")
	b.Word(1)
	b.Word(2)
	b.LoadConst(1, 68) // inside the segment but not 8-byte aligned
	b.EmitImm(isa.OpLoad, 2, 1, 0)
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOnly(t, p, KindMisalignedData)
}

func TestDiagOutOfSegment(t *testing.T) {
	b := program.NewBuilder("oos")
	b.Word(1)
	b.LoadConst(1, 1<<20) // aligned, far past the data extent
	b.Emit(isa.Instr{Op: isa.OpStore, Src1: 1, Src2: isa.ZeroReg})
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOnly(t, p, KindOutOfSegment)
}

func TestDiagFallthroughOffCode(t *testing.T) {
	b := program.NewBuilder("fallthrough")
	b.EmitImm(isa.OpAddi, 1, isa.ZeroReg, 1) // no halt after this
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOnly(t, p, KindFallthrough)
}

func TestCheckReturnsStructuredDiagnostic(t *testing.T) {
	b := program.NewBuilder("broken")
	b.EmitOp(isa.OpAdd, 1, 2, isa.ZeroReg)
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cerr := Check(p)
	if cerr == nil {
		t.Fatal("Check = nil, want diagnostic error")
	}
	var d *Diagnostic
	if !errors.As(cerr, &d) {
		t.Fatalf("Check error %v does not unwrap to *Diagnostic", cerr)
	}
	if d.Kind != KindReadBeforeWrite {
		t.Errorf("kind = %s, want %s", d.Kind, KindReadBeforeWrite)
	}
	if d.Program != "broken" {
		t.Errorf("program = %q, want broken", d.Program)
	}
}

// Every profile the workload package ships must generate programs that
// analyze clean at any seed — the generator's well-formedness contract.
func TestGeneratedWorkloadsAnalyzeClean(t *testing.T) {
	profiles := append(workload.SPEC2000(), workload.SPEC95()...)
	for _, prof := range profiles {
		for _, seed := range []uint64{prof.Seed, 1, 0xdecafbad} {
			prof := prof.WithIters(50_000)
			prof.Seed = seed
			p, err := workload.Generate(prof)
			if err != nil {
				t.Fatalf("%s seed=%d: generate: %v", prof.Name, seed, err)
			}
			if err := Check(p); err != nil {
				t.Errorf("%s seed=%d: %v", prof.Name, seed, err)
			}
		}
	}
}

func TestKernelsAnalyzeClean(t *testing.T) {
	for _, p := range workload.Kernels() {
		if err := Check(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPredictionBasics(t *testing.T) {
	prof, ok := workload.ByName("mesa")
	if !ok {
		t.Fatal("mesa profile missing")
	}
	p, err := workload.Generate(prof.WithIters(50_000))
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(p)
	pred := r.Prediction
	if pred.ReuseRate <= 0 || pred.ReuseRate >= 1 {
		t.Errorf("ReuseRate = %v, want in (0,1)", pred.ReuseRate)
	}
	if pred.HotInstrs <= 0 {
		t.Errorf("HotInstrs = %d, want > 0", pred.HotInstrs)
	}
	if pred.ConflictRatio < 1 {
		t.Errorf("ConflictRatio = %v, want >= 1", pred.ConflictRatio)
	}
	var sum float64
	for _, d := range pred.ClassDemand {
		if d < 0 || d > 1 {
			t.Fatalf("class demand %v out of [0,1]", d)
		}
		sum += d
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("class demand sums to %v, want 1", sum)
	}
	if pred.ClassDemand[isa.FUIntALU] == 0 {
		t.Error("IntALU demand = 0, want > 0")
	}
}

// The predictor must separate the structurally reuse-heavy programs from
// the reuse-free ones: an invariant-dominated high-locality profile (mesa)
// predicts far more reuse than a pure streaming kernel (memcpy) or a
// loop-carried recurrence (fib).
func TestPredictionSeparatesReuseRegimes(t *testing.T) {
	prof, _ := workload.ByName("mesa")
	mesaProg, err := workload.Generate(prof.WithIters(50_000))
	if err != nil {
		t.Fatal(err)
	}
	mesa := Analyze(mesaProg).Prediction.ReuseRate
	mc, _ := workload.KernelMemcpy(256)
	memcpy := Analyze(mc).Prediction.ReuseRate
	fib := Analyze(workload.KernelFib(90)).Prediction.ReuseRate
	if !(mesa > memcpy+0.2 && mesa > fib+0.2) {
		t.Errorf("predicted reuse mesa=%.3f memcpy=%.3f fib=%.3f; want mesa to dominate",
			mesa, memcpy, fib)
	}
}

// Analysis must be deterministic: identical input programs yield identical
// reports.
func TestAnalyzeDeterministic(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	p, err := workload.Generate(prof.WithIters(50_000))
	if err != nil {
		t.Fatal(err)
	}
	a, b := Analyze(p), Analyze(p)
	if fmt.Sprintf("%+v", a.Prediction) != fmt.Sprintf("%+v", b.Prediction) {
		t.Errorf("prediction not deterministic:\n%+v\n%+v", a.Prediction, b.Prediction)
	}
	if len(a.Diags) != len(b.Diags) {
		t.Errorf("diag count differs: %d vs %d", len(a.Diags), len(b.Diags))
	}
}
