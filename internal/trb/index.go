package trb

import (
	"fmt"

	"repro/internal/analysis"
)

// Index is the static side of the TRB: the per-program table of
// memoizable windows that analysis.TraceBlocks extracted, made
// O(1)-addressable by entry PC so the dispatch stage can ask "does a
// window start here?" every cycle without a map probe. It is immutable
// after construction and shared read-only by every core simulating the
// same program.
type Index struct {
	at      []int32 // per-PC index into windows; -1 = no window starts here
	windows []analysis.TraceBlock
}

// NewIndex builds the entry-PC index over the extracted windows for a
// program of codeLen instructions. Windows must lie inside the code and
// start at distinct PCs (analysis.TraceBlocks emits at most one per
// basic block, which guarantees both).
func NewIndex(codeLen int, windows []analysis.TraceBlock) (*Index, error) {
	ix := &Index{
		at:      make([]int32, codeLen),
		windows: windows,
	}
	for i := range ix.at {
		ix.at[i] = -1
	}
	for i := range windows {
		w := &windows[i]
		if w.Entry >= uint64(codeLen) || w.Entry+uint64(w.Len) > uint64(codeLen) {
			return nil, fmt.Errorf("%w: window [%d, %d) outside code of %d instructions",
				ErrConfig, w.Entry, w.Entry+uint64(w.Len), codeLen)
		}
		if ix.at[w.Entry] != -1 {
			return nil, fmt.Errorf("%w: two windows share entry pc %d", ErrConfig, w.Entry)
		}
		ix.at[w.Entry] = int32(i)
	}
	return ix, nil
}

// Windows returns the number of indexed windows.
func (ix *Index) Windows() int { return len(ix.windows) }

// WindowAt returns the window whose first instruction is pc, or nil if no
// window starts there (including pc beyond the indexed code).
//
//lint:hotpath
func (ix *Index) WindowAt(pc uint64) *analysis.TraceBlock {
	if pc >= uint64(len(ix.at)) {
		return nil
	}
	i := ix.at[pc]
	if i < 0 {
		return nil
	}
	return &ix.windows[i]
}
