// Command bench measures the simulator's engineering performance — wall
// clock and allocation behaviour, not model fidelity — and writes a
// machine-readable JSON record for longitudinal tracking. Each run emits
// BENCH_<date>.json (override with -out) containing simulated
// instructions per second for every headline configuration with and
// without trace replay, the headline grid's serial and parallel
// wall-clock, the functional interpreter's and replay fast path's
// throughput, and allocations per operation for each measurement.
//
// Usage:
//
//	go run ./cmd/bench                       # full measurement, BENCH_<date>.json
//	go run ./cmd/bench -short -out ci.json   # reduced sizes for CI smoke
//	go run ./cmd/bench -notes "post-refactor"
//	go run ./cmd/bench -insns 100000 -bench gzip,mesa  # custom grid
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/irb"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the file-level envelope.
type Record struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GoMaxProcs is the effective worker ceiling (GOMAXPROCS at startup);
	// on cgroup-limited machines it can be far below CPUs, and it — not
	// CPUs — is what the parallel grid numbers scale with.
	GoMaxProcs int      `json:"gomaxprocs"`
	Commit     string   `json:"commit,omitempty"`
	Short      bool     `json:"short,omitempty"`
	Notes      string   `json:"notes,omitempty"`
	Results    []Result `json:"results"`
}

// gitCommit resolves the commit the benchmark binary was built from: the
// embedded VCS stamp when the toolchain recorded one (go build), else a
// direct git query (go run strips the stamp).
func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	short := flag.Bool("short", false, "reduced instruction budgets for CI smoke runs")
	notes := flag.String("notes", "", "free-form note embedded in the record")
	fl := cliutil.RegisterExperimentFlags(flag.CommandLine, 50_000, "bzip2,mesa,ammp")
	flag.Parse()

	rec := Record{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Commit:     gitCommit(),
		Short:      *short,
		Notes:      *notes,
	}
	path := *out
	if path == "" {
		path = "BENCH_" + rec.Date + ".json"
	}

	gridOpts := fl.Options()
	insns := gridOpts.Insns
	fsimSteps := uint64(200_000)
	if *short {
		insns, fsimSteps = 10_000, 50_000
		gridOpts.Insns, gridOpts.Benchmarks = insns, []string{"bzip2"}
	}

	measure := func(name string, metric string, denom float64, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		res := Result{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if metric != "" && r.NsPerOp() > 0 {
			// Rate metric: work units per second of one operation.
			res.Metrics = map[string]float64{metric: denom / (float64(r.NsPerOp()) / 1e9)}
		}
		rec.Results = append(rec.Results, res)
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op %10d allocs/op\n", name, res.NsPerOp, res.AllocsPerOp)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	gzip, ok := workload.ByName("gzip")
	if !ok {
		fail(fmt.Errorf("gzip profile missing"))
	}
	tr, err := sim.CaptureTrace(gzip, sim.Options{Insns: insns})
	if err != nil {
		fail(err)
	}
	for _, nc := range sim.HeadlineConfigs() {
		nc := nc
		measure("SimulatorThroughput/"+nc.Name, "insns_per_s", float64(insns), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(nc.Name, nc.Cfg, gzip, sim.Options{Insns: insns, Trace: tr}); err != nil {
					b.Fatal(err)
				}
			}
		})
		measure("SimulatorThroughputDirect/"+nc.Name, "insns_per_s", float64(insns), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(nc.Name, nc.Cfg, gzip, sim.Options{Insns: insns}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// BatchThroughput measures the lockstep core's aggregate bandwidth:
	// one leader serving K injector lanes whose rate is so low they stay
	// convergent, so each operation simulates K*insns lane-instructions
	// for about one scalar run's wall clock. K=1 prices the probe layer
	// itself against SimulatorThroughput/DIE.
	for _, k := range []int{1, 4, 8, 16} {
		lanes := make([]sim.BatchLane, k)
		for i := range lanes {
			inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-9, Seed: uint64(i + 1)})
			if err != nil {
				fail(err)
			}
			lanes[i] = sim.BatchLane{Name: fmt.Sprintf("lane%d", i), Injector: inj}
		}
		measure(fmt.Sprintf("BatchThroughput/K=%d", k), "aggregate_insns_per_s",
			float64(k)*float64(insns), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					// NewBatchSim resets each lane injector, so reuse across
					// iterations replays the identical campaign.
					if _, err := sim.RunBatchContext(nil, "DIE", core.BaseDIE(), gzip,
						sim.Options{Insns: insns, Trace: tr}, lanes); err != nil {
						b.Fatal(err)
					}
				}
			})
	}

	// GridFaultCampaign is the macro-benchmark behind the batch planner: a
	// recovery-campaign cell — one config × one workload × many seeds plus
	// the fault-free baseline — swept through the runner with batching on
	// and off. The campaign rate is low enough that most lanes converge,
	// which is the regime the planner wins in; diverged lanes re-run
	// scalar, exactly as production sweeps do.
	campaignSeeds := 32
	if *short {
		campaignSeeds = 8
	}
	campaign := func() []runner.Job {
		jobs := []runner.Job{{
			Name: "DIE/clean", Config: core.BaseDIE(), Profile: gzip,
			Opts: sim.Options{Insns: insns, Trace: tr},
		}}
		for s := 1; s <= campaignSeeds; s++ {
			inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 2e-7, Seed: uint64(s)})
			if err != nil {
				fail(err)
			}
			jobs = append(jobs, runner.Job{
				Name: fmt.Sprintf("DIE/fu-s%d", s), Config: core.BaseDIE(), Profile: gzip,
				Opts: sim.Options{Insns: insns, Trace: tr, Injector: inj},
			})
		}
		return jobs
	}
	campaignInsns := float64(campaignSeeds+1) * float64(insns)
	for _, v := range []struct {
		name    string
		noBatch bool
	}{{"batched", false}, {"scalar", true}} {
		jobs := campaign()
		measure("GridFaultCampaign/"+v.name, "aggregate_insns_per_s", campaignInsns,
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					// The runner resets batchable injectors before every
					// dispatch, so the job set is reusable across iterations.
					outs, err := runner.Run(context.Background(), jobs,
						runner.Options{Parallelism: 1, NoBatch: v.noBatch})
					if err != nil {
						b.Fatal(err)
					}
					for _, o := range outs {
						if o.Err != nil {
							b.Fatal(o.Err)
						}
					}
				}
			})
	}

	grid := func(name string, opts experiments.Options) {
		measure(name, "", 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := experiments.Headline(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	serial := gridOpts
	serial.Parallelism = 1
	grid("GridSerial", serial)
	grid("GridParallel", gridOpts)
	noReplay := gridOpts
	noReplay.DisableReplay = true
	grid("GridParallelNoReplay", noReplay)

	prog, err := workload.Generate(gzip.WithIters(1_000_000))
	if err != nil {
		fail(err)
	}
	measure("FunctionalSim/interpret", "insns_per_s", float64(fsimSteps), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fsim.New(prog).Run(fsimSteps); err != nil {
				b.Fatal(err)
			}
		}
	})
	ftr, err := fsim.Capture(prog, fsimSteps)
	if err != nil {
		fail(err)
	}
	measure("FunctionalSim/replay", "insns_per_s", float64(fsimSteps), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fsim.NewReplay(ftr).Run(fsimSteps); err != nil {
				b.Fatal(err)
			}
		}
	})

	buf, err := irb.New(irb.Default())
	if err != nil {
		fail(err)
	}
	for pc := uint64(0); pc < 2048; pc++ {
		buf.Insert(pc, pc, irb.Entry{Src1: pc, Src2: pc, Result: pc * 2})
	}
	measure("IRBLookup", "", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Lookup(uint64(i), uint64(i)%2048)
		}
	})

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Println(path)
}
