package core

import (
	"fmt"

	"repro/internal/fsim"
)

// DefaultFaultRetryLimit bounds how many consecutive times one static PC
// may fail the commit-time check and be re-executed before the core gives
// up. A transient fault needs exactly one retry; a handful of consecutive
// failures at the same PC means the fault is not transient — a stuck-at in
// a functional unit or an uncorrected storage error — and re-executing
// forever would livelock the run.
const DefaultFaultRetryLimit = 8

// UnrecoverableFaultError reports that the bounded retry budget for one
// static PC was exhausted: the commit-time check kept failing across
// FaultRetryLimit consecutive re-executions, so the fault is persistent and
// instruction-level temporal redundancy cannot mask it. The simulation
// driver surfaces it through sim.RunContext; campaign harnesses treat it as
// a per-cell outcome, not a crash.
type UnrecoverableFaultError struct {
	Bench   string // workload name (filled in by the sim driver)
	Config  string // configuration display name (filled in by the sim driver)
	PC      uint64 // static PC whose pair kept mismatching
	Seq     uint64 // architected sequence number of the stuck instruction
	Retries int    // re-executions attempted before giving up
	Cycle   uint64
}

func (e *UnrecoverableFaultError) Error() string {
	where := ""
	if e.Bench != "" || e.Config != "" {
		where = fmt.Sprintf("%s on %s: ", e.Bench, e.Config)
	}
	return fmt.Sprintf("core: %sunrecoverable fault at pc %d (seq %d): signature mismatch persisted through %d re-executions (cycle %d)",
		where, e.PC, e.Seq, e.Retries, e.Cycle)
}

// recoverFault performs the architectural rewind for a commit-time pair
// mismatch, reusing the branch-misprediction squash machinery: every uop at
// and younger than the faulting pair is flushed, the flushed correct-path
// records are pushed back onto the dispatch front for replay, and fetch is
// redirected to the faulting PC. The pair then re-executes from scratch —
// refetch, re-dispatch, re-issue, fresh functional-unit executions — and is
// re-checked at its next commit. Faults are transient datapath events (the
// architected values always come from the functional front), so a clean
// re-execution produces agreeing signatures and the run proceeds.
//
// Two guards keep a non-transient fault from looping forever. A mismatch
// whose wrong value was supplied by an IRB reuse hit invalidates that IRB
// entry (scrubbing): re-execution would otherwise hit the same corrupted
// entry again, deterministically, on every retry. And consecutive
// recoveries at one static PC are bounded by FaultRetryLimit; exhausting
// the budget aborts the run with an UnrecoverableFaultError.
func (c *Core) recoverFault(head, dupU *uop) {
	pc := head.rec.PC
	trueSig := outSignature(&head.rec, head.rec.Src1, head.rec.Src2)

	// Scrub: the copy whose signature disagrees with the architected
	// record is the corrupted one; if its value came from the reuse
	// buffer, the stored entry is bad and must not serve another hit.
	for _, u := range [2]*uop{head, dupU} {
		if u.reuseHit && u.outSig != trueSig && c.reuse.Invalidate(pc) {
			c.Stats.IRBScrubs++
		}
		// TRB-stored signatures are recomputed from architecturally
		// committed records, so a served copy disagreeing with the true
		// signature means the stored window itself is corrupted (storage
		// fault): scrub it exactly like a bad IRB entry.
		if u.trbServed && u.outSig != trueSig && c.trb.buf.Invalidate(u.trbEntry) {
			c.Stats.TRBScrubs++
		}
	}

	// Bounded retries per static PC, reset on successful commit (see
	// retire). The first detection at a PC starts re-execution #1; once
	// the budget is exhausted the next detection escalates.
	if c.faultRetries == nil {
		c.faultRetries = make(map[uint64]uint32)
	}
	retries := c.faultRetries[pc] + 1
	limit := c.cfg.FaultRetryLimit
	if limit == 0 {
		limit = DefaultFaultRetryLimit
	}
	if int(retries) > limit {
		c.Abort(&UnrecoverableFaultError{PC: pc, Seq: head.rec.Seq, Retries: limit, Cycle: c.cycle})
		return
	}
	c.faultRetries[pc] = retries
	if retries > 1 {
		c.Stats.FaultRetries++
	}
	c.Stats.FaultRecoveries++

	// MTTR window: opened at the first detection of this architected
	// instruction, closed when it finally commits (see retire). Commits
	// are in order, so a window can only re-fault on the same Seq — the
	// original detection cycle is kept.
	if !c.repairOpen {
		c.repairOpen = true
		c.repairDetect = c.cycle
		c.repairSeq = head.rec.Seq
	}

	// Architectural rewind: hand every in-flight correct-path record
	// (the faulting pair's first) back to the front for replay, then
	// flush the pipeline exactly as a branch recovery would — except the
	// squash point is *before* the pair, so the pair itself dies too.
	recs := make([]fsim.Retired, 0, c.ruu.len()/2+1)
	for i := 0; i < c.ruu.len(); i++ {
		if u := c.ruu.at(i); !u.dup && !u.wrongPath {
			recs = append(recs, u.rec)
		}
	}
	c.front.Rewind(recs)
	maxSeq := head.seq - 1
	c.lsq.squashYoungerThan(maxSeq, nil)
	killed := c.ruu.squashYoungerThan(maxSeq, c.freeFn)
	c.Stats.Squashed += uint64(killed)
	if c.tracer != nil {
		c.tracer.Squash(c.cycle, killed)
	}
	c.rebuildRename()
	c.waiting = c.waiting[:0]
	c.fetchPC = pc
	c.fq.clear()
	c.fetchStopped = false
	c.curFetchBlock = ^uint64(0)
	if c.fetchStallUntil > c.cycle {
		c.fetchStallUntil = c.cycle
	}
	if c.trb != nil {
		// A fault recovery can land mid-window (any PC can fault);
		// abandon the in-flight recording or serving walk. trbBefore
		// also disengages for the whole rewind drain, so replayed
		// records never extend a pre-fault walk.
		c.trbReset()
	}
}

// accountFaultOutcome classifies a committing instruction whose copies'
// signatures agree: against the architected record's true signature, an
// injector-touched copy either left no trace (masked — e.g. a corrupted
// operand bit that did not change a branch outcome) or produced a wrong
// value that the check cannot see (a silent-data-corruption escape; in DIE
// modes that requires both copies corrupted identically, in SIE any
// surviving corruption escapes — there is no check at all).
func (c *Core) accountFaultOutcome(head *uop, dupU *uop) {
	if !head.corrupted && (dupU == nil || !dupU.corrupted) {
		return
	}
	if head.outSig == outSignature(&head.rec, head.rec.Src1, head.rec.Src2) {
		c.Stats.FaultsMasked++
	} else {
		c.Stats.FaultsSilent++
	}
}
