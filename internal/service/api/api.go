// Package api is the wire contract of the simulation daemon: every JSON
// payload POST /v1/runs accepts and the /v1 endpoints return, as plain
// structs with explicit field tags. Clients (the sweep CLI, dashboards,
// tests) unmarshal into these types instead of re-declaring the shapes;
// the golden-payload test in this package pins the serialized form, so a
// field rename or tag change that would break deployed clients fails the
// build rather than an integration.
package api

import (
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RunRequest is the body of POST /v1/runs: a (configs × benchmarks) grid
// of simulation cells sharing one set of run options.
type RunRequest struct {
	// Configs names the machine configurations to run; see ConfigNames
	// (GET /v1/configs) for the accepted values.
	Configs []string `json:"configs,omitempty"`
	// Modes names redundancy modes to run at the paper-baseline machine,
	// resolved through the core mode registry; see GET /v1/modes for the
	// accepted values. Modes append columns after Configs, so a request
	// may mix both (at least one of the two must be non-empty).
	Modes []string `json:"modes,omitempty"`
	// Benchmarks restricts the workload set (empty = all 12 SPEC2000
	// profiles).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Insns is the per-cell architected instruction budget (0 = the
	// server's default).
	Insns uint64 `json:"insns,omitempty"`
	// FastForward skips this many instructions before measurement.
	FastForward uint64 `json:"fast_forward,omitempty"`
	// Seed perturbs the workload generators (see sim.Options.Seed).
	Seed uint64 `json:"seed,omitempty"`
	// Verify cross-checks every committed instruction against the
	// functional oracle.
	Verify bool `json:"verify,omitempty"`
	// Fault attaches a fault-injection campaign to every cell.
	Fault *FaultSpec `json:"fault,omitempty"`
}

// FaultSpec is the serializable fault campaign of a run request; it maps
// onto fault.Config, one fresh injector per cell.
type FaultSpec struct {
	Site      string  `json:"site"` // fu, forward, irb-result, irb-operand
	Rate      float64 `json:"rate"`
	Seed      uint64  `json:"seed,omitempty"`
	MaxFaults uint64  `json:"max_faults,omitempty"`
}

// CellResult is one grid cell's outcome in a run response.
type CellResult struct {
	Bench    string      `json:"bench"`
	Config   string      `json:"config"`
	CacheHit bool        `json:"cache_hit"`
	Result   *sim.Result `json:"result,omitempty"`
	Error    string      `json:"error,omitempty"`
}

// Run is the resource returned by POST /v1/runs and GET /v1/runs/{id}.
type Run struct {
	ID        string       `json:"id"`
	Status    string       `json:"status"` // queued, running, done, failed, cancelled
	Created   time.Time    `json:"created"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
	Cells     int          `json:"cells"`
	CacheHits int          `json:"cache_hits"`
	Error     string       `json:"error,omitempty"`
	Results   []CellResult `json:"results,omitempty"`
}

// Run statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// Mode is one entry of GET /v1/modes: a registered redundancy mode's
// identity, capability summary, and tunable knobs.
type Mode struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Streams is the execution copies dispatched per architected
	// instruction (the default; a knob may widen it).
	Streams int `json:"streams"`
	// Compare is where redundant work is checked: none, pair, vote or
	// epoch.
	Compare string `json:"compare"`
	// Detects: the mode detects datapath faults.
	Detects bool `json:"detects"`
	// Corrects: the mode repairs detected faults without a rewind.
	Corrects bool `json:"corrects"`
	// Knobs are the mode-specific tuning parameters.
	Knobs []Knob `json:"knobs,omitempty"`
}

// Knob is one mode-specific tuning parameter.
type Knob struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// ModesResponse is the body of GET /v1/modes.
type ModesResponse struct {
	Modes []Mode `json:"modes"`
}

// Error is the body of every non-2xx /v1 response. ValidModes is set
// when the request named an unknown redundancy mode, so a client can
// self-correct without a second round trip.
type Error struct {
	Error      string   `json:"error"`
	ValidModes []string `json:"valid_modes,omitempty"`
}

// --- fabric wire types ------------------------------------------------
//
// The coordinator/worker tier speaks these shapes on POST /v1/lease,
// POST /v1/heartbeat and POST /v1/complete. A Cell carries everything a
// worker needs to rebuild the runner.Job locally — simulation is
// deterministic in these fields (they are exactly what Job.Fingerprint
// hashes), so a cell executed on any worker, or re-executed after a lease
// expiry, produces a bit-identical result.

// Cell is one grid cell shipped from the coordinator to a worker.
type Cell struct {
	// ID is the coordinator-assigned cell identity, echoed back in the
	// completion so late results (after a lease expiry) still find their
	// cell.
	ID uint64 `json:"id"`
	// Fingerprint is the cell's content-addressed cache key
	// (runner.Job.Fingerprint); the coordinator shards on it and the
	// worker probes its local cache with the rebuilt job before
	// simulating.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Name is the configuration display name (runner.Job.Name).
	Name string `json:"name"`
	// Config is the full machine configuration.
	Config core.Config `json:"config"`
	// Profile is the workload profile.
	Profile workload.Profile `json:"profile"`
	// Run options (the sim.Options subset that crosses the wire; programs
	// and traces never do — workers capture their own traces).
	Insns       uint64     `json:"insns,omitempty"`
	FastForward uint64     `json:"fast_forward,omitempty"`
	Seed        uint64     `json:"seed,omitempty"`
	Verify      bool       `json:"verify,omitempty"`
	Fault       *FaultSpec `json:"fault,omitempty"`
}

// LeaseRequest is the body of POST /v1/lease: a worker asking the
// coordinator for a batch of cells.
type LeaseRequest struct {
	// Worker is the caller's stable identity (also the consistent-hash
	// ring key its cache affinity is computed from).
	Worker string `json:"worker"`
	// Max caps the cells returned (0 = the coordinator's default batch).
	Max int `json:"max,omitempty"`
}

// Lease is one granted cell lease.
type Lease struct {
	ID   string `json:"id"`
	Cell Cell   `json:"cell"`
}

// LeaseResponse is the body of a successful POST /v1/lease.
type LeaseResponse struct {
	Leases []Lease `json:"leases"`
	// TTLMillis is how long each lease lives without a heartbeat.
	TTLMillis int64 `json:"ttl_ms"`
	// HeartbeatMillis is the renewal cadence the worker must hold while
	// it owns leases.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
	// PollMillis is the suggested wait before the next lease request when
	// no cells were granted.
	PollMillis int64 `json:"poll_ms"`
}

// HeartbeatRequest is the body of POST /v1/heartbeat: it renews every
// lease the worker holds.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
}

// HeartbeatResponse reports whether the coordinator still knows the
// worker. Known=false after a coordinator restart or a dead-worker
// expiry: the worker's leases are gone and any in-flight work will be
// deduplicated on completion.
type HeartbeatResponse struct {
	Known bool `json:"known"`
}

// CellCompletion is one finished cell in a POST /v1/complete body.
type CellCompletion struct {
	LeaseID string `json:"lease_id"`
	// CellID identifies the cell independently of the lease, so a
	// completion arriving after the lease expired is still matched and
	// deduplicated instead of lost.
	CellID uint64      `json:"cell_id"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
	// CacheHit reports the worker served the cell from its local
	// content-addressed cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// CompleteRequest is the body of POST /v1/complete.
type CompleteRequest struct {
	Worker string           `json:"worker"`
	Cells  []CellCompletion `json:"cells"`
}

// CompleteResponse acknowledges a completion batch.
type CompleteResponse struct {
	// Accepted counts completions that settled a live cell.
	Accepted int `json:"accepted"`
	// Duplicates counts completions for cells that had already been
	// settled by a retry elsewhere (verified bit-identical, then
	// discarded).
	Duplicates int `json:"duplicates"`
}

// CellEvent is one server-sent event on GET /v1/runs/{id}/events: a cell
// result as it lands, or the terminal run summary.
type CellEvent struct {
	RunID string `json:"run_id"`
	// Seq orders events within the run, starting at 0.
	Seq int `json:"seq"`
	// Index is the cell's position in the run's result grid (-1 on the
	// terminal event).
	Index int `json:"index"`
	// Cell is the completed cell (nil on the terminal event).
	Cell *CellResult `json:"cell,omitempty"`
	// Done marks the terminal event; Status carries the run's terminal
	// status with it.
	Done   bool   `json:"done,omitempty"`
	Status string `json:"status,omitempty"`
}
