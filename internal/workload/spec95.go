package workload

// SPEC95 profiles. The DIE proposal the paper builds on (Ray, Hoe &
// Falsafi [24]) was evaluated on a mix of SPEC95 and SPEC2000 programs,
// reporting ~30% average IPC loss and up to 45% in the worst case — the
// numbers the paper's introduction quotes as motivation. This second
// suite models eight SPEC95 applications so that claim can be reproduced
// independently of the main SPEC2000 suite (experiment "prior24").

// SPEC95 returns eight SPEC95-like profiles.
func SPEC95() []Profile {
	return []Profile{
		// go: position evaluation over small boards — integer,
		// branch-dense, hard-to-predict, ALU-hungry.
		{
			Name: "go95", Seed: 201, Iters: 0, InnerIters: 4, Unroll: 6,
			InvariantOps: 4, IntOps: 16, Loads: 3, Stores: 1,
			CondBranches: 3, ArrayWords: 1 << 12, Stride: 0,
			ValueRange: 512, ChainDepth: 2,
		},
		// m88ksim: CPU simulator main loop — highly repetitive decode
		// over a small opcode alphabet.
		{
			Name: "m88ksim", Seed: 202, Iters: 0, InnerIters: 16, Unroll: 4,
			InvariantOps: 10, IntOps: 8, Loads: 3, Stores: 1,
			CondBranches: 2, ArrayWords: 1 << 11, Stride: 1,
			ValueRange: 32, ChainDepth: 2,
		},
		// compress: LZW over a tiny alphabet — the bzip2 of SPEC95.
		{
			Name: "compress", Seed: 203, Iters: 0, InnerIters: 24, Unroll: 3,
			InvariantOps: 12, IntOps: 15, MulOps: 1, Loads: 2, Stores: 1,
			CondBranches: 2, ArrayWords: 1 << 12, Stride: 1,
			ValueRange: 16, ChainDepth: 2,
		},
		// li: lisp interpreter — cons-cell chasing with calls.
		{
			Name: "li", Seed: 204, Iters: 0, InnerIters: 3, Unroll: 3,
			InvariantOps: 3, IntOps: 6, Loads: 3, Stores: 1,
			CondBranches: 3, ArrayWords: 1 << 14, Stride: -1,
			ValueRange: 1 << 20, ChainDepth: 2, Calls: true,
		},
		// ijpeg: DCT/quantization — integer multiply dense, high ILP.
		{
			Name: "ijpeg", Seed: 205, Iters: 0, InnerIters: 12, Unroll: 4,
			InvariantOps: 8, IntOps: 14, MulOps: 5, Loads: 3, Stores: 1,
			CondBranches: 1, ArrayWords: 1 << 11, Stride: 1,
			ValueRange: 64, ChainDepth: 1,
		},
		// perl: interpreter dispatch — branchy, call-heavy, moderate
		// reuse on interpreter state.
		{
			Name: "perl", Seed: 206, Iters: 0, InnerIters: 6, Unroll: 6,
			InvariantOps: 7, IntOps: 7, Loads: 3, Stores: 1,
			CondBranches: 3, ArrayWords: 1 << 12, Stride: 0,
			ValueRange: 256, ChainDepth: 2, Calls: true,
		},
		// swim: shallow-water FP stencils — wide, regular, FP-add/mul
		// saturating.
		{
			Name: "swim", Seed: 207, Iters: 0, InnerIters: 10, Unroll: 3,
			InvariantOps: 5, IntOps: 5, FPAdds: 9, FPMuls: 6,
			Loads: 3, Stores: 1, CondBranches: 1,
			ArrayWords: 1 << 12, Stride: 1,
			ValueRange: 32, ChainDepth: 1,
		},
		// tomcatv: mesh generation — FP over larger arrays with longer
		// recurrences.
		{
			Name: "tomcatv", Seed: 208, Iters: 0, InnerIters: 6, Unroll: 2,
			InvariantOps: 4, IntOps: 4, FPAdds: 5, FPMuls: 3,
			Loads: 4, Stores: 1, CondBranches: 1,
			ArrayWords: 1 << 14, Stride: 2,
			ValueRange: 48, ChainDepth: 3,
		},
	}
}

// ByName95 returns the named SPEC95 profile, reporting whether it exists.
func ByName95(name string) (Profile, bool) {
	for _, p := range SPEC95() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
