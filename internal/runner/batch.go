package runner

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// This file is the batch planner and group executor. Grid cells that are
// identical except for their fault injector — a fault campaign's many
// seeds and sites over one (config, workload) cell, plus that cell's
// fault-free baseline — run as one batched sim.RunBatchContext call
// instead of K scalar cells: the leader pays fetch/decode/replay/verify
// once, each lane only its injection probes. Lanes whose injector fires
// diverge from the shared trajectory and fall back to ordinary scalar
// cells in a second dispatch phase, so batching is invisible to callers:
// per-cell results, errors, progress reports and cache entries are
// exactly those of a scalar sweep.

// simRunBatch is sim.RunBatchContext, indirected like simRun so harness
// tests can substitute it.
var simRunBatch = sim.RunBatchContext

// task is one unit of worker dispatch: a single scalar cell (lanes holds
// its job index) or a batch group (lanes holds every member's index).
type task struct {
	lanes []int
	batch bool
}

// cost prices a task for longest-processing-time ordering. A batch group
// is summed over its lanes: its leader does one cell's work, but the
// group stands in for all of them and any divergence respawns lanes as
// scalar cells, so scheduling it early keeps the tail short either way.
func (t task) cost(jobs []Job) float64 {
	var c float64
	for _, i := range t.lanes {
		c += jobs[i].Cost()
	}
	return c
}

// batchKey computes the grouping key of a job: the content fingerprint of
// everything that determines its simulation outcome except the injector,
// plus the identities of the attached trace and pinned program. Jobs with
// equal keys follow identical fault-free trajectories (the batch's
// correctness premise); the pointer identities keep cells whose
// error-checking semantics depend on *which* trace or program object they
// carry (ErrTraceMismatch compares by identity) from being served by a
// leader configured with a different one. The second return is false when
// the job cannot join a batch at all: its injector is not batchable, or
// its inputs have no canonical fingerprint.
func batchKey(j Job) (string, bool) {
	if j.Opts.Injector != nil {
		if _, ok := j.Opts.Injector.(core.BatchableInjector); !ok {
			return "", false
		}
	}
	stripped := j
	stripped.Opts.Injector = nil
	fp, err := stripped.Fingerprint()
	if err != nil {
		return "", false
	}
	return fmt.Sprintf("%s|%p|%p", fp, j.Opts.Trace, j.Opts.Program), true
}

// planBatches groups the eligible jobs into batches of lanes. A group
// needs at least two lanes and at least one injector lane — duplicate
// fault-free cells gain nothing from a leader (the result cache already
// dedups them) and batching them would change completion-order behaviour
// for no win. Groups and their lanes come out in first-appearance job
// order, so planning is deterministic in the input.
func planBatches(jobs []Job, eligible func(int) bool) [][]int {
	groups := make(map[string][]int)
	var order []string
	for i := range jobs {
		if !eligible(i) {
			continue
		}
		k, ok := batchKey(jobs[i])
		if !ok {
			continue
		}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	var out [][]int
	for _, k := range order {
		lanes := groups[k]
		injectors := 0
		for _, i := range lanes {
			if jobs[i].Opts.Injector != nil {
				injectors++
			}
		}
		if len(lanes) < 2 || injectors == 0 {
			continue
		}
		out = append(out, lanes)
	}
	return out
}

// runBatchOnce executes one batch group, converting a panic anywhere
// under the simulation into a *CellPanicError (named after the leader).
func runBatchOnce(ctx context.Context, jobs []Job, lanes []int) (outs []sim.BatchOutcome, err error) {
	leader := jobs[lanes[0]]
	defer func() {
		if v := recover(); v != nil {
			err = &CellPanicError{
				Bench:  leader.Profile.Name,
				Config: leader.Name,
				Value:  v,
				Stack:  debug.Stack(),
			}
		}
	}()
	opts := leader.Opts
	opts.Injector = nil
	bl := make([]sim.BatchLane, len(lanes))
	for k, i := range lanes {
		bl[k] = sim.BatchLane{Name: jobs[i].Name, Injector: jobs[i].Opts.Injector}
	}
	return simRunBatch(ctx, leader.Name, leader.Config, leader.Profile, opts, bl)
}

// runBatchGroup executes one batch group under the per-cell timeout. The
// leader does about one cell's work regardless of lane count, so the
// scalar cell bound applies; there is no group-level retry — on any
// failure, timeout included, every lane falls back to a scalar cell with
// the full per-cell timeout-and-retry semantics.
func runBatchGroup(ctx context.Context, jobs []Job, lanes []int, timeout time.Duration) ([]sim.BatchOutcome, error) {
	if timeout <= 0 {
		return runBatchOnce(ctx, jobs, lanes)
	}
	groupCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	return runBatchOnce(groupCtx, jobs, lanes)
}
