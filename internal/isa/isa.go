// Package isa defines the instruction set architecture simulated by this
// repository: a 64-bit load/store RISC machine with integer and floating
// point register files, whose functional-unit classes and operation
// latencies mirror the SimpleScalar machine model used by the DIE-IRB paper
// (Parashar et al., ISCA 2004).
//
// The package provides the instruction representation (Instr), opcode
// metadata (class, latency, operand kinds), pure functional semantics for
// register-to-register operations (Exec, EvalBranch, EffAddr), and a binary
// encoding (Encode/Decode) used by the instruction cache model.
package isa

import "fmt"

// NumIntRegs and NumFPRegs are the architected register file sizes.
// Integer register 0 (ZeroReg) is hardwired to zero, as in MIPS/Alpha.
const (
	NumIntRegs = 32
	NumFPRegs  = 32

	// ZeroReg reads as zero and ignores writes.
	ZeroReg = 0

	// LinkReg receives the return address of CALL instructions.
	LinkReg = 31
)

// Reg names an architected register. Integer registers are 0..31 and
// floating point registers are 32..63; the split keeps a single rename
// namespace in the core simple while preserving two architected files.
type Reg uint8

// FP0 is the register number of floating point register 0. FP register i is
// Reg(FP0 + i).
const FP0 Reg = 32

// NumRegs is the total size of the unified register namespace.
const NumRegs = NumIntRegs + NumFPRegs

// IsFP reports whether r names a floating point register.
func (r Reg) IsFP() bool { return r >= FP0 }

// String renders the register in assembly syntax (r3, f12).
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", int(r-FP0))
	}
	return fmt.Sprintf("r%d", int(r))
}

// Op enumerates the opcodes of the ISA.
type Op uint8

// Integer ALU operations (single cycle, FU class IntALU).
const (
	OpNop  Op = iota
	OpAdd     // rd = rs1 + rs2
	OpAddi    // rd = rs1 + imm
	OpSub     // rd = rs1 - rs2
	OpAnd     // rd = rs1 & rs2
	OpOr      // rd = rs1 | rs2
	OpXor     // rd = rs1 ^ rs2
	OpShl     // rd = rs1 << (rs2 & 63)
	OpShr     // rd = rs1 >> (rs2 & 63) (logical)
	OpSar     // rd = int64(rs1) >> (rs2 & 63) (arithmetic)
	OpSlt     // rd = 1 if int64(rs1) < int64(rs2) else 0
	OpSltu    // rd = 1 if rs1 < rs2 else 0
	OpLui     // rd = imm << 16

	// Integer multiply/divide (FU class IntMult).
	OpMul  // rd = rs1 * rs2 (low 64 bits)
	OpDiv  // rd = int64(rs1) / int64(rs2); 0 on divide-by-zero
	OpRem  // rd = int64(rs1) % int64(rs2); rs1 on divide-by-zero
	OpDivu // rd = rs1 / rs2; 0 on divide-by-zero

	// Floating point (operands/results are float64 bit patterns held in
	// FP registers).
	OpFAdd   // fd = fs1 + fs2 (FU class FPAdd)
	OpFSub   // fd = fs1 - fs2 (FU class FPAdd)
	OpFMul   // fd = fs1 * fs2 (FU class FPMult)
	OpFDiv   // fd = fs1 / fs2 (FU class FPMult)
	OpFSqrt  // fd = sqrt(fs1) (FU class FPMult)
	OpFNeg   // fd = -fs1 (FU class FPAdd)
	OpFAbs   // fd = |fs1| (FU class FPAdd)
	OpFCmpLt // rd = 1 if fs1 < fs2 else 0 (FU class FPAdd, int dest)
	OpFCmpEq // rd = 1 if fs1 == fs2 else 0 (FU class FPAdd, int dest)
	OpCvtIF  // fd = float64(int64(rs1)) (FU class FPAdd)
	OpCvtFI  // rd = int64(fs1) (FU class FPAdd)

	// Memory (address = rs1 + imm; FU class for address generation is
	// IntALU per the paper: "memory address calculations" use the ALUs).
	OpLoad   // rd = mem64[rs1+imm]
	OpStore  // mem64[rs1+imm] = rs2
	OpFLoad  // fd = mem64[rs1+imm]
	OpFStore // mem64[rs1+imm] = fs2

	// Control transfer. Branch targets are PC-relative instruction
	// offsets in Imm; JALR jumps to rs1.
	OpBeq  // if rs1 == rs2 goto PC+imm
	OpBne  // if rs1 != rs2 goto PC+imm
	OpBlt  // if int64(rs1) < int64(rs2) goto PC+imm
	OpBge  // if int64(rs1) >= int64(rs2) goto PC+imm
	OpJump // goto PC+imm
	OpJalr // rd = PC+1; goto rs1 (indirect jump / return)
	OpCall // r31 = PC+1; goto PC+imm

	// OpHalt stops the machine; it retires like a NOP.
	OpHalt

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// FUClass identifies the functional unit class that executes an operation.
// The classes and default latencies follow the SimpleScalar machine model
// the paper simulates on.
type FUClass uint8

const (
	// FUNone marks operations that need no functional unit (NOP, HALT).
	FUNone FUClass = iota
	// FUIntALU executes single-cycle integer operations, branch target
	// calculations and memory address generation.
	FUIntALU
	// FUIntMult executes integer multiply and divide.
	FUIntMult
	// FUFPAdd executes floating point add/sub/compare/convert.
	FUFPAdd
	// FUFPMult executes floating point multiply, divide and square root.
	FUFPMult
	// FUMemPort is the cache port used by the memory access part of
	// loads and stores (address generation still uses FUIntALU).
	FUMemPort

	// NumFUClasses is the number of functional unit classes.
	NumFUClasses
)

// String returns the conventional name of the class.
func (c FUClass) String() string {
	switch c {
	case FUNone:
		return "none"
	case FUIntALU:
		return "int-alu"
	case FUIntMult:
		return "int-mult"
	case FUFPAdd:
		return "fp-add"
	case FUFPMult:
		return "fp-mult"
	case FUMemPort:
		return "mem-port"
	}
	return fmt.Sprintf("FUClass(%d)", uint8(c))
}

// OpInfo describes the static properties of an opcode.
type OpInfo struct {
	Name    string
	Class   FUClass
	Latency int // execution latency in cycles, excluding cache misses

	// Operand shape flags.
	HasDest    bool // writes a destination register
	DestFP     bool // destination is a floating point register
	Src1FP     bool
	Src2FP     bool
	UsesSrc1   bool
	UsesSrc2   bool
	UsesImm    bool
	IsLoad     bool
	IsStore    bool
	IsBranch   bool // conditional branch
	IsJump     bool // unconditional control transfer
	IsIndirect bool // target comes from a register
}

// IsCtrl reports whether the opcode is any control transfer.
func (oi *OpInfo) IsCtrl() bool { return oi.IsBranch || oi.IsJump }

// IsMem reports whether the opcode accesses memory.
func (oi *OpInfo) IsMem() bool { return oi.IsLoad || oi.IsStore }

// opInfos is indexed by Op. Latencies follow SimpleScalar's defaults
// (int mult 3, int div 20, fp add 2, fp mult 4, fp div 12, fp sqrt 24),
// which are the values the paper's platform uses.
var opInfos = [NumOps]OpInfo{
	OpNop:  {Name: "nop", Class: FUNone, Latency: 1},
	OpHalt: {Name: "halt", Class: FUNone, Latency: 1},

	OpAdd:  {Name: "add", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpAddi: {Name: "addi", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesImm: true},
	OpSub:  {Name: "sub", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpAnd:  {Name: "and", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpOr:   {Name: "or", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpXor:  {Name: "xor", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpShl:  {Name: "shl", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpShr:  {Name: "shr", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpSar:  {Name: "sar", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpSlt:  {Name: "slt", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpSltu: {Name: "sltu", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpLui:  {Name: "lui", Class: FUIntALU, Latency: 1, HasDest: true, UsesImm: true},

	OpMul:  {Name: "mul", Class: FUIntMult, Latency: 3, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpDiv:  {Name: "div", Class: FUIntMult, Latency: 20, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpRem:  {Name: "rem", Class: FUIntMult, Latency: 20, HasDest: true, UsesSrc1: true, UsesSrc2: true},
	OpDivu: {Name: "divu", Class: FUIntMult, Latency: 20, HasDest: true, UsesSrc1: true, UsesSrc2: true},

	OpFAdd:   {Name: "fadd", Class: FUFPAdd, Latency: 2, HasDest: true, DestFP: true, Src1FP: true, Src2FP: true, UsesSrc1: true, UsesSrc2: true},
	OpFSub:   {Name: "fsub", Class: FUFPAdd, Latency: 2, HasDest: true, DestFP: true, Src1FP: true, Src2FP: true, UsesSrc1: true, UsesSrc2: true},
	OpFMul:   {Name: "fmul", Class: FUFPMult, Latency: 4, HasDest: true, DestFP: true, Src1FP: true, Src2FP: true, UsesSrc1: true, UsesSrc2: true},
	OpFDiv:   {Name: "fdiv", Class: FUFPMult, Latency: 12, HasDest: true, DestFP: true, Src1FP: true, Src2FP: true, UsesSrc1: true, UsesSrc2: true},
	OpFSqrt:  {Name: "fsqrt", Class: FUFPMult, Latency: 24, HasDest: true, DestFP: true, Src1FP: true, UsesSrc1: true},
	OpFNeg:   {Name: "fneg", Class: FUFPAdd, Latency: 2, HasDest: true, DestFP: true, Src1FP: true, UsesSrc1: true},
	OpFAbs:   {Name: "fabs", Class: FUFPAdd, Latency: 2, HasDest: true, DestFP: true, Src1FP: true, UsesSrc1: true},
	OpFCmpLt: {Name: "fcmplt", Class: FUFPAdd, Latency: 2, HasDest: true, Src1FP: true, Src2FP: true, UsesSrc1: true, UsesSrc2: true},
	OpFCmpEq: {Name: "fcmpeq", Class: FUFPAdd, Latency: 2, HasDest: true, Src1FP: true, Src2FP: true, UsesSrc1: true, UsesSrc2: true},
	OpCvtIF:  {Name: "cvtif", Class: FUFPAdd, Latency: 2, HasDest: true, DestFP: true, UsesSrc1: true},
	OpCvtFI:  {Name: "cvtfi", Class: FUFPAdd, Latency: 2, HasDest: true, Src1FP: true, UsesSrc1: true},

	OpLoad:   {Name: "ld", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, UsesImm: true, IsLoad: true},
	OpFLoad:  {Name: "fld", Class: FUIntALU, Latency: 1, HasDest: true, DestFP: true, UsesSrc1: true, UsesImm: true, IsLoad: true},
	OpStore:  {Name: "st", Class: FUIntALU, Latency: 1, UsesSrc1: true, UsesSrc2: true, UsesImm: true, IsStore: true},
	OpFStore: {Name: "fst", Class: FUIntALU, Latency: 1, UsesSrc1: true, UsesSrc2: true, Src2FP: true, UsesImm: true, IsStore: true},

	OpBeq:  {Name: "beq", Class: FUIntALU, Latency: 1, UsesSrc1: true, UsesSrc2: true, UsesImm: true, IsBranch: true},
	OpBne:  {Name: "bne", Class: FUIntALU, Latency: 1, UsesSrc1: true, UsesSrc2: true, UsesImm: true, IsBranch: true},
	OpBlt:  {Name: "blt", Class: FUIntALU, Latency: 1, UsesSrc1: true, UsesSrc2: true, UsesImm: true, IsBranch: true},
	OpBge:  {Name: "bge", Class: FUIntALU, Latency: 1, UsesSrc1: true, UsesSrc2: true, UsesImm: true, IsBranch: true},
	OpJump: {Name: "j", Class: FUIntALU, Latency: 1, UsesImm: true, IsJump: true},
	OpJalr: {Name: "jalr", Class: FUIntALU, Latency: 1, HasDest: true, UsesSrc1: true, IsJump: true, IsIndirect: true},
	OpCall: {Name: "call", Class: FUIntALU, Latency: 1, HasDest: true, UsesImm: true, IsJump: true},
}

// badOp reports an undefined opcode. It is outlined from Info and kept
// out of the inliner so the message-formatting machinery (which the
// escape analyzer sees as a heap allocation) never lands on the line of
// an inlined Info call in the pipeline's hot loops.
//
//go:noinline
func badOp(op Op) *OpInfo {
	//nopanic:invariant decode table covers every defined opcode; an unknown op is memory corruption
	panic(fmt.Sprintf("isa: undefined opcode %d", op))
}

// Info returns the static properties of op. It panics on an undefined
// opcode, which always indicates a generator or decoder bug.
func (op Op) Info() *OpInfo {
	if int(op) >= NumOps {
		return badOp(op)
	}
	return &opInfos[op]
}

// String returns the mnemonic of the opcode.
func (op Op) String() string { return op.Info().Name }

// Instr is one static instruction. PC values are instruction indices, not
// byte addresses; the instruction cache model converts to byte addresses
// with a fixed 8-byte instruction size.
type Instr struct {
	Op   Op
	Dest Reg
	Src1 Reg
	Src2 Reg
	Imm  int32
}

// String renders the instruction in a readable assembly-like syntax.
func (in Instr) String() string {
	oi := in.Op.Info()
	s := oi.Name
	sep := " "
	if oi.HasDest {
		s += sep + in.Dest.String()
		sep = ", "
	}
	if oi.UsesSrc1 {
		s += sep + in.Src1.String()
		sep = ", "
	}
	if oi.UsesSrc2 {
		s += sep + in.Src2.String()
		sep = ", "
	}
	if oi.UsesImm {
		s += fmt.Sprintf("%s%d", sep, in.Imm)
	}
	return s
}

// InstrBytes is the architectural size of one encoded instruction, used to
// map instruction indices to instruction-cache byte addresses.
const InstrBytes = 8
