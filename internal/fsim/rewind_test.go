package fsim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// rewindProgram is a tiny straight-line-plus-loop program long enough to
// step a window of records out of.
func rewindProgram() *program.Program {
	b := program.NewBuilder("rewind")
	b.LoadConst(1, 6)
	b.Label("loop")
	b.EmitOp(isa.OpAdd, 2, 2, 1)
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild()
}

// TestRewindReplaysRecords: records handed back to the front come out of
// StepCorrect again, verbatim and in order, before the machine resumes.
func TestRewindReplaysRecords(t *testing.T) {
	f := NewFront(New(rewindProgram()))
	var recs []Retired
	for i := 0; i < 8; i++ {
		r, err := f.StepCorrect()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}

	// Flush the last five as a fault recovery would.
	flushed := append([]Retired(nil), recs[3:]...)
	f.Rewind(flushed)
	if got := f.Rewinding(); got != 5 {
		t.Fatalf("Rewinding() = %d, want 5", got)
	}
	if f.PC() != flushed[0].PC {
		t.Errorf("PC() = %d, want the rewind head %d", f.PC(), flushed[0].PC)
	}
	for i, want := range flushed {
		got, err := f.StepCorrect()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("replayed record %d differs:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if f.Rewinding() != 0 {
		t.Errorf("queue not drained: %d left", f.Rewinding())
	}

	// Execution continues on the machine: same stream as an unflushed run.
	ref := NewFront(New(rewindProgram()))
	for range recs {
		if _, err := ref.StepCorrect(); err != nil {
			t.Fatal(err)
		}
	}
	for !ref.Halted() {
		want, err := ref.StepCorrect()
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.StepCorrect()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-rewind stream diverged:\n got %+v\nwant %+v", got, want)
		}
	}
	if !f.Halted() {
		t.Error("rewound front not halted when the reference is")
	}
}

// TestRewindDefersHalt: a machine that already stepped past the halt is
// not Halted while the halt still awaits re-dispatch.
func TestRewindDefersHalt(t *testing.T) {
	f := NewFront(New(rewindProgram()))
	var recs []Retired
	for !f.Halted() {
		r, err := f.StepCorrect()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	last := recs[len(recs)-2:]
	f.Rewind(last)
	if f.Halted() {
		t.Fatal("Halted() true with the halt still queued for replay")
	}
	if f.PC() != last[0].PC {
		t.Errorf("PC() = %d, want %d", f.PC(), last[0].PC)
	}
	for range last {
		if _, err := f.StepCorrect(); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Halted() {
		t.Error("Halted() false after the halt replayed")
	}
}

// TestRewindSurvivesSpecSquash: the wrong-path overlay machinery must not
// disturb a pending rewind queue — branch recovery during replay relies on
// Squash leaving the queue intact.
func TestRewindSurvivesSpecSquash(t *testing.T) {
	f := NewFront(New(rewindProgram()))
	r1, err := f.StepCorrect()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.StepCorrect()
	if err != nil {
		t.Fatal(err)
	}
	f.Rewind([]Retired{r1, r2})

	f.EnterSpec()
	f.StepSpecAt(r1.PC)
	f.Squash()
	if got := f.Rewinding(); got != 2 {
		t.Fatalf("Squash dropped the rewind queue: %d left, want 2", got)
	}
	got, err := f.StepCorrect()
	if err != nil {
		t.Fatal(err)
	}
	if got != r1 {
		t.Errorf("replay after squash returned %+v, want %+v", got, r1)
	}
}
