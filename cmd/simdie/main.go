// Command simdie runs one or more benchmarks on one machine
// configuration and prints the full statistics report per benchmark —
// the equivalent of a sim-outorder invocation on the paper's platform.
// A comma-separated -bench list (or -bench all for the whole suite)
// fans the runs out across -j parallel workers; reports print in the
// order the benchmarks were named regardless of completion order.
//
// Usage:
//
//	simdie -bench gzip -mode DIE-IRB
//	simdie -bench gzip,gcc,mesa -mode DIE -j 4
//	simdie -bench all -mode DIE-IRB
//	simdie -bench art -mode DIE -2xruu -insns 1000000
//	simdie -bench mesa -mode SIE -verify
//	simdie -bench bzip2 -mode REPLAY -replay-epoch 1024
//	simdie -bench bzip2 -mode TMR -vote-width 5
//	simdie -bench bzip2 -mode DIE-TRB -trb-entries 512
//	simdie -bench bzip2 -dump | head   # disassemble the workload
//
// The -mode value resolves through the core mode registry (see
// DESIGN.md §10); a newly registered mode is accepted with no change
// here.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	bench := cliutil.Bench(flag.CommandLine, "gzip",
		"comma-separated benchmark names, or \"all\" for the SPEC2000 suite")
	insns := cliutil.Insns(flag.CommandLine, sim.DefaultInsns)
	verify := cliutil.Verify(flag.CommandLine)
	jobs := cliutil.Jobs(flag.CommandLine)
	mode := cliutil.Mode(flag.CommandLine, "DIE-IRB")
	x2alu := flag.Bool("2xalu", false, "double all functional units")
	x2ruu := flag.Bool("2xruu", false, "double RUU and LSQ capacity")
	x2width := flag.Bool("2xwidths", false, "double all pipeline widths")
	irbEntries := flag.Int("irb-entries", 1024, "IRB entries (DIE-IRB/SIE-IRB)")
	irbAssoc := flag.Int("irb-assoc", 1, "IRB associativity")
	irbVictim := flag.Int("irb-victim", 0, "IRB victim buffer entries")
	replayEpoch := flag.Uint64("replay-epoch", 0,
		"REPLAY: committed instructions per replay epoch (0 = default)")
	voteWidth := flag.Int("vote-width", 0,
		"TMR: copies dispatched per instruction, odd, 3..7 (0 = default)")
	trbEntries := flag.Int("trb-entries", 0,
		"DIE-TRB: trace reuse buffer entries, power of two (0 = default)")
	trbBlockLen := flag.Int("trb-max-block-len", 0,
		"DIE-TRB: max window length in instructions (0 = default)")
	dump := flag.Bool("dump", false, "print the workload's disassembly instead of simulating")
	trace := flag.Uint64("trace", 0, "print a pipeline trace for the first N cycles")
	flag.Parse()

	if err := run(*bench, *mode, *insns, *verify, *jobs, *x2alu, *x2ruu, *x2width,
		*irbEntries, *irbAssoc, *irbVictim, *replayEpoch, *voteWidth,
		*trbEntries, *trbBlockLen, *dump, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "simdie:", err)
		os.Exit(1)
	}
}

func run(bench, mode string, insns uint64, verify bool, jobs int, x2alu, x2ruu, x2width bool,
	irbEntries, irbAssoc, irbVictim int, replayEpoch uint64, voteWidth int,
	trbEntries, trbBlockLen int, dump bool, trace uint64) error {
	if bench == "all" {
		bench = ""
	}
	profiles, err := cliutil.Profiles(bench)
	if err != nil {
		return err
	}

	// Resolve the mode through the registry: an unknown name fails here
	// with the valid list instead of deep inside config validation.
	mi, err := cliutil.ResolveMode(mode)
	if err != nil {
		return err
	}
	cfg := mi.Base()
	cfg.IRB.Entries = irbEntries
	cfg.IRB.Assoc = irbAssoc
	cfg.IRB.VictimEntries = irbVictim
	if replayEpoch > 0 {
		cfg.ReplayEpoch = replayEpoch
	}
	if voteWidth > 0 {
		cfg.VoteWidth = voteWidth
	}
	if trbEntries > 0 {
		cfg.TRBEntries = trbEntries
	}
	if trbBlockLen > 0 {
		cfg.TRBMaxBlockLen = trbBlockLen
	}
	if x2alu {
		cfg = cfg.WithDoubledALUs()
	}
	if x2ruu {
		cfg = cfg.WithDoubledRUU()
	}
	if x2width {
		cfg = cfg.WithDoubledWidths()
	}

	if dump || trace > 0 {
		if len(profiles) != 1 {
			return fmt.Errorf("-dump and -trace need exactly one benchmark, got %d", len(profiles))
		}
		p := profiles[0]
		if dump {
			prog, err := workload.Generate(p.WithIters(insns))
			if err != nil {
				return err
			}
			for pc, in := range prog.Code {
				fmt.Printf("%6d: %s\n", pc, in)
			}
			return nil
		}
		// Tracing needs direct core access; run outside the driver.
		prog, err := workload.Generate(p.WithIters(insns + insns/3))
		if err != nil {
			return err
		}
		cfg.MaxInsns = insns
		c, err := core.New(cfg, prog)
		if err != nil {
			return err
		}
		c.SetTracer(&core.TextTracer{W: os.Stdout, MaxCycles: trace})
		return c.Run()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	batch := make([]runner.Job, len(profiles))
	for i, p := range profiles {
		batch[i] = runner.Job{
			Name: mode, Config: cfg, Profile: p,
			Opts: sim.Options{Insns: insns, Verify: verify},
		}
	}
	outs, err := runner.Run(ctx, batch, runner.Options{Parallelism: jobs})
	for _, o := range outs {
		if o.Err == nil {
			report(o.Result)
		}
	}
	return err
}

func report(r sim.Result) {
	s := r.Core
	t := stats.NewTable(fmt.Sprintf("%s on %s", r.Bench, r.Mode), "stat", "value")
	t.AddRow("IPC", r.IPC)
	t.AddRow("cycles", s.Cycles)
	t.AddRow("instructions committed", s.Committed)
	t.AddRow("uop copies committed", s.CopiesCommitted)
	t.AddRow("uops dispatched", s.Dispatched)
	t.AddRow("wrong-path uops", s.WrongPath)
	t.AddRow("branch mispredicts", s.Mispredicts)
	t.AddRow("bpred direction accuracy", 1-stats.Ratio(r.Bpred.CondMiss, r.Bpred.CondBranches))
	t.AddRow("loads / stores", fmt.Sprintf("%d / %d", s.Loads, s.Stores))
	t.AddRow("store-to-load forwards", s.LoadForwarded)
	t.AddRow("L1I / L1D / L2 miss rate", fmt.Sprintf("%.4f / %.4f / %.4f",
		r.L1I.MissRate(), r.L1D.MissRate(), r.L2.MissRate()))
	t.AddRow("RUU-full dispatch stalls", s.RUUFullStalls)
	t.AddRow("LSQ-full dispatch stalls", s.LSQFullStalls)
	t.AddRow("ready-but-not-issued (copy-cycles)", s.ReadyNotIssued)
	t.AddRow("issued int-alu/mult/fp-add/fp-mult/mem", fmt.Sprintf("%d/%d/%d/%d/%d",
		s.Issued[0], s.Issued[1], s.Issued[2], s.Issued[3], s.Issued[4]))
	if s.ReplayEpochs > 0 {
		t.AddRow("replay epochs checked", s.ReplayEpochs)
		t.AddRow("replay stall cycles", s.ReplayStallCycles)
	}
	if s.FaultsInjected+s.FaultsDetected+s.FaultsCorrected > 0 {
		t.AddRow("faults injected/detected/corrected", fmt.Sprintf("%d/%d/%d",
			s.FaultsInjected, s.FaultsDetected, s.FaultsCorrected))
		t.AddRow("fault MTTR (cycles)", s.MTTR())
	}
	if r.TRB != nil {
		t.AddRow("TRB window hits / lookups", fmt.Sprintf("%d / %d", r.TRB.Hits, r.TRB.Lookups))
		t.AddRow("TRB instructions trace-skipped", s.TRBInstrSkipped)
		t.AddRow("trace-served commit share", r.TraceReuseRate())
	}
	if r.IRB != nil {
		t.AddRow("IRB PC hit rate", r.PCHitRate())
		t.AddRow("IRB reuse rate (dup stream)", r.ReuseRate())
		t.AddRow("IRB reuse hits / misses", fmt.Sprintf("%d / %d", s.IRBReuseHits, s.IRBReuseMiss))
		t.AddRow("IRB lookups port-denied", r.IRB.ReadDenied)
		t.AddRow("IRB updates port-denied", r.IRB.WriteDenied)
		t.AddRow("IRB evictions (victim spills)", fmt.Sprintf("%d (%d)",
			r.IRB.Evictions, r.IRB.VictimSpills))
	}
	fmt.Print(t)
}
