package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// The Section 3.3 variants (decoupled scheduler, name-based reuse) and the
// clustered alternative must all retire the exact architectural stream;
// their differences are timing-only.

func decoupledCfg() Config {
	c := quicken(BaseDIEIRB())
	c.Scheduler = Decoupled
	return c
}

func nameBasedCfg() Config {
	c := quicken(BaseDIEIRB())
	c.IRBNameBased = true
	return c
}

func clusteredCfg() Config {
	c := quicken(BaseDIE())
	c.Clustered = true
	return c
}

func TestVariantsMatchOracle(t *testing.T) {
	cfgs := map[string]Config{
		"decoupled":           decoupledCfg(),
		"name-based":          nameBasedCfg(),
		"clustered":           clusteredCfg(),
		"decoupled+namebased": func() Config { c := decoupledCfg(); c.IRBNameBased = true; return c }(),
		"clustered+irb":       func() Config { c := quicken(BaseDIEIRB()); c.Clustered = true; return c }(),
	}
	for name, cfg := range cfgs {
		for _, prog := range allPrograms() {
			t.Run(name+"/"+prog.Name, func(t *testing.T) {
				runVerified(t, cfg, prog)
			})
		}
	}
}

func TestDecoupledSchedulerCostsCycles(t *testing.T) {
	// Pipelining wakeup/select adds a cycle to every dependence chain:
	// on a chain-heavy program the decoupled machine cannot be faster.
	prog := fpProgram(300)
	dc := runVerified(t, quicken(BaseDIEIRB()), prog)
	de := runVerified(t, decoupledCfg(), prog)
	if de.Stats.IPC() > dc.Stats.IPC()*1.001 {
		t.Errorf("decoupled IPC %.3f above data-capture %.3f", de.Stats.IPC(), dc.Stats.IPC())
	}
}

func TestNameBasedReuseLowerButPresent(t *testing.T) {
	// The paper: "the hit rates may decrease" with name-based reuse.
	// The invariant-heavy loop reuses under both tests, but the version
	// test also rejects re-written-same-value registers, so it can only
	// be at most equal.
	prog := loopProgram(2000)
	val := runVerified(t, quicken(BaseDIEIRB()), prog)
	nb := runVerified(t, nameBasedCfg(), prog)
	if nb.Stats.IRBReuseHits == 0 {
		t.Fatal("name-based reuse never hit")
	}
	if nb.Stats.IRBReuseHits > val.Stats.IRBReuseHits {
		t.Errorf("name-based hits %d exceed value-based %d",
			nb.Stats.IRBReuseHits, val.Stats.IRBReuseHits)
	}
}

func TestNameBasedRejectsRewrittenRegisters(t *testing.T) {
	// In loopProgram the invariant instructions read r5, which is never
	// rewritten, so even the name-based test hits on them; the addi on
	// r1 rewrites r1 every iteration and must never reuse.
	c := runVerified(t, nameBasedCfg(), loopProgram(1000))
	total := c.Stats.IRBReuseHits + c.Stats.DupFUExec
	frac := float64(c.Stats.IRBReuseHits) / float64(total)
	if frac < 0.3 || frac > 0.45 {
		t.Errorf("name-based reuse fraction %.2f outside the invariant band", frac)
	}
}

// ilpProgram is an ALU-bound loop: eight independent add chains per
// iteration saturate the four integer ALUs.
func ilpProgram(n int64) *program.Program {
	b := program.NewBuilder("ilp")
	b.LoadConst(1, n)
	b.LoadConst(2, 3)
	b.Label("loop")
	for r := isa.Reg(8); r < 16; r++ {
		b.EmitOp(isa.OpAdd, r, r, 2)
		b.EmitOp(isa.OpXor, r+8, r+8, 2)
	}
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild()
}

func TestClusteredRemovesALUContention(t *testing.T) {
	// The clustered machine gives each stream its own full set of ALUs:
	// on an ALU-saturating loop it must beat the shared-ALU DIE...
	prog := ilpProgram(2000)
	die := runVerified(t, quicken(BaseDIE()), prog)
	clu := runVerified(t, clusteredCfg(), prog)
	if clu.Stats.IPC() <= die.Stats.IPC() {
		t.Errorf("clustered IPC %.3f not above shared DIE %.3f on ALU-bound loop",
			clu.Stats.IPC(), die.Stats.IPC())
	}
	// ...while the SIE bound still holds.
	sie := runVerified(t, quicken(BaseSIE()), prog)
	if clu.Stats.IPC() > sie.Stats.IPC()*1.01 {
		t.Errorf("clustered IPC %.3f above SIE %.3f", clu.Stats.IPC(), sie.Stats.IPC())
	}
}

func TestClusteredValidation(t *testing.T) {
	bad := BaseSIE()
	bad.Clustered = true
	if _, err := New(bad, loopProgram(1)); err == nil {
		t.Error("Clustered SIE accepted")
	}
	badSched := BaseSIE()
	badSched.Scheduler = "tomasulo"
	if _, err := New(badSched, loopProgram(1)); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestClusteredReplicatesSingletonUnits(t *testing.T) {
	// The base machine has one FP multiplier; each cluster gets its own
	// copy, so both streams' fdiv/fsqrt work must still complete.
	c := clusteredCfg()
	runVerified(t, c, fpProgram(50))
}

func TestSquashReuseHarvestsWrongPath(t *testing.T) {
	// branchyProgram mispredicts often; wrong-path work re-executes
	// after recovery, so harvesting it must raise reuse hits.
	prog := branchyProgram(800)
	base := runVerified(t, quicken(BaseDIEIRB()), prog)
	cfg := quicken(BaseDIEIRB())
	cfg.IRBSquashReuse = true
	sq := runVerified(t, cfg, prog)
	if sq.Stats.IRBReuseHits <= base.Stats.IRBReuseHits {
		t.Errorf("squash reuse hits %d not above base %d",
			sq.Stats.IRBReuseHits, base.Stats.IRBReuseHits)
	}
}

func TestChainingCollapsesDependentReuse(t *testing.T) {
	// A serial chain of invariant adds: every link reuses. With Sn+d
	// chaining the whole chain completes in one test cascade; without
	// it each link waits a cycle for the previous link's value.
	b := program.NewBuilder("chain")
	b.LoadConst(1, 2000)
	b.LoadConst(5, 3)
	b.Label("loop")
	b.EmitOp(isa.OpAdd, 8, 5, 5) // invariant chain root
	for r := isa.Reg(9); r < 20; r++ {
		b.EmitOp(isa.OpAdd, r, r-1, 5) // each link depends on the previous
	}
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	prog := b.MustBuild()

	sie := quicken(BaseSIE())
	sie.Mode = SIEIRB
	// A small window stops independent iterations from overlapping, so
	// the chain's completion latency is what IPC measures.
	sie.RUUSize = 20
	plain := runVerified(t, sie, prog)
	chainCfg := sie
	chainCfg.IRBChaining = true
	chained := runVerified(t, chainCfg, prog)
	if plain.Stats.IRBReuseHits == 0 {
		t.Fatal("invariant chain never reused")
	}
	if chained.Stats.IPC() <= plain.Stats.IPC() {
		t.Errorf("chaining IPC %.3f not above per-cycle reuse %.3f",
			chained.Stats.IPC(), plain.Stats.IPC())
	}
}
