// Package experiments implements the paper's evaluation: each function
// regenerates one figure or table of the DIE-IRB paper (or one of this
// reproduction's ablations) over the 12 SPEC2000-like workloads, returning
// both a rendered table and the structured data that the benchmark harness
// and shape tests assert against. See DESIGN.md's experiment index for the
// mapping to the paper and EXPERIMENTS.md for recorded paper-vs-measured
// results.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Insns is the per-run instruction budget (sim.DefaultInsns if 0).
	Insns uint64
	// Verify enables oracle checking on every run.
	Verify bool
	// Benchmarks restricts the workload set (nil = all 12).
	Benchmarks []string
	// Parallelism is the worker count handed to the grid runner
	// (0 = runtime.GOMAXPROCS(0), 1 = the old serial double loop).
	Parallelism int
	// Progress, when non-nil, observes every completed grid cell.
	Progress func(runner.Progress)
	// Context, when non-nil, cancels a sweep mid-grid; the experiment
	// returns the context's error with whatever cells completed.
	Context context.Context
	// DisableReplay turns off the trace-replay fast path: every cell
	// generates and interprets its own program, as the pre-trace harness
	// did. Replay is bit-identical by construction (and tested to be), so
	// this is an escape hatch for debugging the replay machinery itself,
	// not a fidelity knob.
	DisableReplay bool
	// CellTimeout bounds each grid cell's wall-clock time (0 = unbounded);
	// see runner.Options.CellTimeout. A hung cell times out (after one
	// retry) with a per-cell error instead of stalling the whole sweep.
	CellTimeout time.Duration
	// Cache, when non-nil, is handed to the grid runner so previously
	// simulated cells are served from the content-addressed result store
	// instead of being re-run; see runner.Options.Cache. The serving
	// daemon shares one cache across every experiment and run request.
	Cache runner.Cache
}

func (o Options) simOpts() sim.Options {
	return sim.Options{Insns: o.Insns, Verify: o.Verify}
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) runnerOpts() runner.Options {
	return runner.Options{
		Parallelism: o.Parallelism,
		Progress:    o.Progress,
		CellTimeout: o.CellTimeout,
		Cache:       o.Cache,
	}
}

func (o Options) profiles() ([]workload.Profile, error) {
	all := workload.SPEC2000()
	if len(o.Benchmarks) == 0 {
		return all, nil
	}
	var out []workload.Profile
	for _, name := range o.Benchmarks {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// Grid holds one experiment's results: a matrix of runs indexed by
// benchmark and configuration.
type Grid struct {
	Benchmarks []string
	Configs    []string
	Results    [][]sim.Result // [bench][config]
	// Errs records the per-cell simulation error, parallel to Results
	// (nil on success). One failed cell no longer aborts a sweep: the
	// other cells still run and the failures are reported together.
	Errs [][]error
}

// Err joins every recorded per-cell error, labelled by cell, or returns
// nil when the whole grid succeeded.
func (g *Grid) Err() error {
	var errs []error
	for b, row := range g.Errs {
		for c, err := range row {
			if err != nil {
				errs = append(errs, fmt.Errorf("%s on %s: %w", g.Benchmarks[b], g.Configs[c], err))
			}
		}
	}
	return errors.Join(errs...)
}

// IPC returns the IPC of (bench, config) by index.
func (g *Grid) IPC(b, c int) float64 { return g.Results[b][c].IPC }

// ConfigIPCs returns the IPC column for configuration index c.
func (g *Grid) ConfigIPCs(c int) []float64 {
	out := make([]float64, len(g.Benchmarks))
	for b := range g.Benchmarks {
		out[b] = g.Results[b][c].IPC
	}
	return out
}

// runGrid simulates every benchmark on every configuration through the
// parallel runner.
func runGrid(cfgs []sim.NamedConfig, opts Options) (*Grid, error) {
	profiles, err := opts.profiles()
	if err != nil {
		return nil, err
	}
	return runGridProfiles(cfgs, profiles, opts)
}

// runGridProfiles fans the (profile × configuration) cells out across
// the runner's worker pool and reassembles the grid in input order. All
// cells run even if some fail; the returned error aggregates every
// per-cell failure (and the context error, on cancellation) while the
// grid keeps whatever completed.
func runGridProfiles(cfgs []sim.NamedConfig, profiles []workload.Profile, opts Options) (*Grid, error) {
	g := &Grid{}
	for _, nc := range cfgs {
		g.Configs = append(g.Configs, nc.Name)
	}
	jobs := make([]runner.Job, 0, len(profiles)*len(cfgs))
	for _, p := range profiles {
		g.Benchmarks = append(g.Benchmarks, p.Name)
		for _, nc := range cfgs {
			jobs = append(jobs, runner.Job{Name: nc.Name, Config: nc.Cfg, Profile: p, Opts: opts.simOpts()})
		}
	}
	// Capture each benchmark's functional execution once and share it
	// across the configuration columns: program generation, preflight
	// analysis and interpretation are paid per benchmark, not per cell.
	if !opts.DisableReplay {
		if err := runner.AttachTraces(jobs); err != nil {
			return g, err
		}
	}
	outs, err := runner.Run(opts.ctx(), jobs, opts.runnerOpts())
	for b := range profiles {
		row := make([]sim.Result, len(cfgs))
		errRow := make([]error, len(cfgs))
		for c := range cfgs {
			o := outs[b*len(cfgs)+c]
			row[c], errRow[c] = o.Result, o.Err
		}
		g.Results = append(g.Results, row)
		g.Errs = append(g.Errs, errRow)
	}
	return g, err
}

// Fig2 reproduces the paper's Figure 2: percentage IPC loss with respect
// to SIE for the base DIE and the seven capacity-doubled DIE variants.
// The returned grid's first configuration column is the SIE baseline.
func Fig2(opts Options) (*Grid, *stats.Table, error) {
	g, err := runGrid(sim.Fig2Configs(), opts)
	if err != nil {
		return g, nil, err
	}
	headers := append([]string{"bench"}, g.Configs[1:]...)
	t := stats.NewTable("Figure 2: % IPC loss vs SIE", headers...)
	sums := make([]float64, len(g.Configs)-1)
	for b, bench := range g.Benchmarks {
		cells := []any{bench}
		sie := g.IPC(b, 0)
		for c := 1; c < len(g.Configs); c++ {
			loss := stats.PctLoss(sie, g.IPC(b, c))
			sums[c-1] += loss
			cells = append(cells, loss)
		}
		t.AddRow(cells...)
	}
	avg := []any{"AVERAGE"}
	for _, s := range sums {
		avg = append(avg, s/float64(len(g.Benchmarks)))
	}
	t.AddRow(avg...)
	return g, t, nil
}

// HeadlineSummary aggregates the headline experiment.
type HeadlineSummary struct {
	AvgLossDIE   float64 // mean % IPC loss of DIE vs SIE
	AvgLossIRB   float64 // mean % IPC loss of DIE-IRB vs SIE
	AvgLoss2xALU float64 // mean % IPC loss of DIE-2xALU vs SIE
	OverallGain  float64 // % of the DIE loss recovered by DIE-IRB
	ALUBandwidth float64 // % of the ALU-bandwidth loss (DIE -> 2xALU) recovered
}

// Headline reproduces the paper's central result (the Section 4 IPC
// comparison summarized in the abstract): SIE, DIE, DIE-IRB and DIE-2xALU
// per benchmark, with the "IPC loss gained back" aggregates. The paper
// reports recovering nearly 50% of the ALU-bandwidth loss and 23% of the
// overall loss.
func Headline(opts Options) (*Grid, HeadlineSummary, *stats.Table, error) {
	g, err := runGrid(sim.HeadlineConfigs(), opts)
	if err != nil {
		return g, HeadlineSummary{}, nil, err
	}
	t := stats.NewTable("Headline: IPC by configuration",
		"bench", "SIE", "DIE", "DIE-IRB", "DIE-2xALU", "loss%", "IRB-loss%", "reuse")
	var sum HeadlineSummary
	n := float64(len(g.Benchmarks))
	for b, bench := range g.Benchmarks {
		sie, die, irb, alu2 := g.IPC(b, 0), g.IPC(b, 1), g.IPC(b, 2), g.IPC(b, 3)
		lossDIE := stats.PctLoss(sie, die)
		lossIRB := stats.PctLoss(sie, irb)
		t.AddRow(bench, sie, die, irb, alu2, lossDIE, lossIRB, g.Results[b][2].ReuseRate())
		sum.AvgLossDIE += lossDIE / n
		sum.AvgLossIRB += lossIRB / n
		sum.AvgLoss2xALU += stats.PctLoss(sie, alu2) / n
	}
	sum.OverallGain = stats.Recovered(sum.AvgLossDIE, 0, sum.AvgLossIRB)
	sum.ALUBandwidth = stats.Recovered(sum.AvgLossDIE, sum.AvgLoss2xALU, sum.AvgLossIRB)
	t.AddRow("AVERAGE", "", "", "", "", sum.AvgLossDIE, sum.AvgLossIRB, "")
	t.AddRow(fmt.Sprintf("recovered: %.0f%% of ALU-bandwidth loss, %.0f%% of overall loss",
		sum.ALUBandwidth, sum.OverallGain))
	return g, sum, t, nil
}

// IRBHit reproduces the IRB effectiveness figure: per-benchmark PC hit
// rate, reuse (operand-match) rate of the duplicate stream, and the port-
// denial rates, on the base DIE-IRB machine.
func IRBHit(opts Options) (*Grid, *stats.Table, error) {
	g, err := runGrid([]sim.NamedConfig{{Name: "DIE-IRB", Cfg: core.BaseDIEIRB()}}, opts)
	if err != nil {
		return g, nil, err
	}
	t := stats.NewTable("IRB effectiveness (base 1024-entry direct-mapped)",
		"bench", "pc-hit", "reuse", "not-ready", "rd-denied", "wr-denied")
	for b, bench := range g.Benchmarks {
		r := g.Results[b][0]
		t.AddRow(bench, r.PCHitRate(), r.ReuseRate(),
			stats.Ratio(r.Core.IRBNotReady, r.IRB.Lookups),
			stats.Ratio(r.IRB.ReadDenied, r.IRB.Lookups),
			stats.Ratio(r.IRB.WriteDenied, r.IRB.Inserts+r.IRB.WriteDenied))
	}
	return g, t, nil
}

// IRBSize reproduces the IRB size sensitivity figure: average IPC across
// the suite as the buffer grows from 128 to 4096 entries, with the paper's
// 1024-entry point in the middle.
func IRBSize(opts Options) (*Grid, *stats.Table, error) {
	sizes := []int{128, 256, 512, 1024, 2048, 4096}
	g, err := runGrid(sim.IRBSizeConfigs(sizes), opts)
	if err != nil {
		return g, nil, err
	}
	headers := append([]string{"bench"}, g.Configs...)
	t := stats.NewTable("IRB size sensitivity: IPC", headers...)
	addAvgRows(t, g)
	return g, t, nil
}

// Conflict reproduces the conflict-miss reduction ablation: direct-mapped
// vs victim-buffer vs set-associative IRBs at equal capacity.
func Conflict(opts Options) (*Grid, *stats.Table, error) {
	g, err := runGrid(sim.ConflictConfigs(), opts)
	if err != nil {
		return g, nil, err
	}
	headers := append([]string{"bench"}, g.Configs...)
	t := stats.NewTable("Conflict-miss reduction: IPC (and PC-hit rate)", headers...)
	for b, bench := range g.Benchmarks {
		cells := []any{bench}
		for c := range g.Configs {
			r := g.Results[b][c]
			cells = append(cells, fmt.Sprintf("%.3f/%.2f", r.IPC, r.PCHitRate()))
		}
		t.AddRow(cells...)
	}
	avgRow(t, g)
	return g, t, nil
}

// Ports reproduces the IRB port sensitivity figure.
func Ports(opts Options) (*Grid, *stats.Table, error) {
	g, err := runGrid(sim.PortConfigs([]int{1, 2, 4, 8}), opts)
	if err != nil {
		return g, nil, err
	}
	headers := append([]string{"bench"}, g.Configs...)
	t := stats.NewTable("IRB port sensitivity: IPC", headers...)
	addAvgRows(t, g)
	return g, t, nil
}

// AblationDup compares the paper's duplicate-only IRB policy against
// routing both streams through the buffer (higher port pressure for
// little additional benefit, since the primary must execute anyway).
func AblationDup(opts Options) (*Grid, *stats.Table, error) {
	both := core.BaseDIEIRB()
	both.IRBBothStreams = true
	g, err := runGrid([]sim.NamedConfig{
		{Name: "dup-only", Cfg: core.BaseDIEIRB()},
		{Name: "both-streams", Cfg: both},
	}, opts)
	if err != nil {
		return g, nil, err
	}
	t := stats.NewTable("Ablation A: IRB stream policy",
		"bench", "dup-only IPC", "both IPC", "dup-only rd-denied", "both rd-denied")
	for b, bench := range g.Benchmarks {
		d, bo := g.Results[b][0], g.Results[b][1]
		t.AddRow(bench, d.IPC, bo.IPC,
			stats.Ratio(d.IRB.ReadDenied, d.IRB.Lookups),
			stats.Ratio(bo.IRB.ReadDenied, bo.IRB.Lookups))
	}
	return g, t, nil
}

// AblationFwd compares the paper's no-forwarding IRB (duplicates woken by
// primary results) against the prior-work IRB-as-functional-unit design,
// whose result broadcasts grow the wakeup logic like extra issue width —
// modeled as issue slots consumed by the IRB's read ports.
func AblationFwd(opts Options) (*Grid, *stats.Table, error) {
	asFU := core.BaseDIEIRB()
	asFU.IRBAsFU = true
	g, err := runGrid([]sim.NamedConfig{
		{Name: "no-forwarding", Cfg: core.BaseDIEIRB()},
		{Name: "IRB-as-FU", Cfg: asFU},
	}, opts)
	if err != nil {
		return g, nil, err
	}
	t := stats.NewTable("Ablation B: IRB result forwarding",
		"bench", "no-fwd IPC", "as-FU IPC", "as-FU penalty %")
	for b, bench := range g.Benchmarks {
		noFwd, fu := g.IPC(b, 0), g.IPC(b, 1)
		t.AddRow(bench, noFwd, fu, stats.PctLoss(noFwd, fu))
	}
	return g, t, nil
}

// addAvgRows renders per-benchmark IPC rows plus an average row.
func addAvgRows(t *stats.Table, g *Grid) {
	for b, bench := range g.Benchmarks {
		cells := []any{bench}
		for c := range g.Configs {
			cells = append(cells, g.IPC(b, c))
		}
		t.AddRow(cells...)
	}
	avgRow(t, g)
}

func avgRow(t *stats.Table, g *Grid) {
	cells := []any{"AVERAGE"}
	for c := range g.Configs {
		cells = append(cells, stats.Mean(g.ConfigIPCs(c)))
	}
	t.AddRow(cells...)
}

// FaultRow is one fault-injection campaign's outcome.
type FaultRow struct {
	Mode      core.Mode
	Site      fault.Site
	Injected  uint64
	Detected  uint64
	Masked    uint64 // corrupted copies whose signatures still matched
	Silent    uint64 // corrupted results committed undetected (SDC escapes)
	Corrected uint64 // outvoted by a voting majority: repaired with no rewind
	// Vanished faults struck wrong-path instructions or IRB entries
	// never reused — architecturally harmless by construction.
	Vanished int64

	// Recovery accounting (see core.Stats).
	Recoveries     uint64 // architectural rewinds performed
	Retries        uint64 // recoveries beyond the first for one PC
	Repairs        uint64 // repair windows closed
	RecoveryCycles uint64 // detection-to-clean-commit cycles, summed
	Scrubs         uint64 // corrupted IRB entries + TRB windows invalidated
}

// Coverage is detected faults per architecturally surviving fault.
func (r FaultRow) Coverage() float64 {
	live := r.Injected - uint64(max64(r.Vanished, 0))
	if live == 0 {
		return 1
	}
	return float64(r.Detected) / float64(live)
}

// MTTR is the campaign's mean detection-to-repair time in cycles.
func (r FaultRow) MTTR() float64 { return stats.Ratio(r.RecoveryCycles, r.Repairs) }

func max64(a int64, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// faultCampaigns is the six mode×site matrix every injection experiment
// sweeps: both injectable sites on DIE, all four on DIE-IRB.
func faultCampaigns() []struct {
	mode core.Mode
	cfg  core.Config
	site fault.Site
} {
	return []struct {
		mode core.Mode
		cfg  core.Config
		site fault.Site
	}{
		{core.DIE, core.BaseDIE(), fault.FU},
		{core.DIE, core.BaseDIE(), fault.Forward},
		{core.DIEIRB, core.BaseDIEIRB(), fault.FU},
		{core.DIEIRB, core.BaseDIEIRB(), fault.Forward},
		{core.DIEIRB, core.BaseDIEIRB(), fault.IRBResult},
		{core.DIEIRB, core.BaseDIEIRB(), fault.IRBOperand},
	}
}

// accumulate folds one cell's counters into the campaign row.
func (r *FaultRow) accumulate(injected uint64, st *core.Stats) {
	r.Injected += injected
	r.Detected += st.FaultsDetected
	r.Masked += st.FaultsMasked
	r.Silent += st.FaultsSilent
	r.Corrected += st.FaultsCorrected
	r.Recoveries += st.FaultRecoveries
	r.Retries += st.FaultRetries
	r.Repairs += st.FaultRepairs
	r.RecoveryCycles += st.FaultRecoveryCycles
	r.Scrubs += st.IRBScrubs + st.TRBScrubs
}

// Faults validates the redundancy argument of Section 3.4: single-bit
// faults injected into FU outputs, forwarding paths and the IRB array must
// be caught by the commit-time pair check (or be architecturally
// harmless), and DIE-IRB's coverage must match plain DIE's — the IRB needs
// no dedicated protection. Every detection triggers a real architectural
// rewind and re-execution, so the runs finish with oracle-verified final
// state: the oracle check is forced on regardless of Options.Verify.
func Faults(opts Options) ([]FaultRow, *stats.Table, error) {
	profiles, err := opts.profiles()
	if err != nil {
		return nil, nil, err
	}
	campaigns := faultCampaigns()
	// Every (campaign × profile) cell runs through the parallel runner
	// with its own injector; the campaign rows then aggregate the
	// injector and core counters, which is order-independent.
	var (
		jobs []runner.Job
		injs []*fault.Injector
	)
	for _, c := range campaigns {
		for _, p := range profiles {
			inj, err := fault.New(fault.Config{Site: c.site, Rate: 3e-4, Seed: p.Seed})
			if err != nil {
				return nil, nil, err
			}
			o := opts.simOpts()
			o.Injector = inj
			o.Verify = true
			jobs = append(jobs, runner.Job{Name: string(c.mode), Config: c.cfg, Profile: p, Opts: o})
			injs = append(injs, inj)
		}
	}
	// The trace records the fault-free architectural stream — exactly what
	// the commit-time oracle and the dispatch front need; injected faults
	// live in the timing core's duplicated values, not here. Each profile
	// appears once per campaign, so sharing saves len(campaigns)-1
	// generations and interpretations per benchmark.
	if !opts.DisableReplay {
		if err := runner.AttachTraces(jobs); err != nil {
			return nil, nil, err
		}
	}
	outs, err := runner.Run(opts.ctx(), jobs, opts.runnerOpts())
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Fault injection: detection coverage of the check-&-retire comparison",
		"mode", "site", "injected", "detected", "masked", "silent", "vanished",
		"coverage", "recoveries", "MTTR", "scrubs")
	var rows []FaultRow
	for ci, c := range campaigns {
		row := FaultRow{Mode: c.mode, Site: c.site}
		for pi := range profiles {
			i := ci*len(profiles) + pi
			row.accumulate(injs[i].Injected, &outs[i].Result.Core)
		}
		row.Vanished = int64(row.Injected) - int64(row.Detected) - int64(row.Masked) - int64(row.Silent)
		rows = append(rows, row)
		t.AddRow(string(c.mode), string(c.site), row.Injected, row.Detected,
			row.Masked, row.Silent, row.Vanished, row.Coverage(),
			row.Recoveries, row.MTTR(), row.Scrubs)
	}
	return rows, t, nil
}

// RecoveryRow is one (campaign × fault-rate) point of the recovery-overhead
// experiment: the suite-mean IPC under sustained injection next to the same
// machine's fault-free IPC, plus the aggregated recovery counters.
type RecoveryRow struct {
	FaultRow
	Rate    float64 // per-opportunity injection probability
	IPC     float64 // suite-mean IPC under injection
	BaseIPC float64 // suite-mean fault-free IPC of the same machine
}

// OverheadPct is the % IPC lost to detection-triggered rewinds.
func (r RecoveryRow) OverheadPct() float64 { return stats.PctLoss(r.BaseIPC, r.IPC) }

// RecoveryRates are the injection rates the recovery-overhead experiment
// sweeps, spanning "a fault every few hundred thousand opportunities" to
// the sustained-assault regime of the acceptance criteria.
func RecoveryRates() []float64 { return []float64{1e-5, 1e-4, 1e-3} }

// Recovery measures what real check-&-retire recovery costs: IPC and MTTR
// versus fault rate for all six mode×site campaigns, against each machine's
// fault-free baseline. All runs execute to completion with the verify
// oracle on — a detected fault is re-executed, never stall-forged — so any
// campaign cell that cannot reach an architecturally correct final state
// fails loudly rather than skewing the table.
func Recovery(opts Options) ([]RecoveryRow, *stats.Table, error) {
	profiles, err := opts.profiles()
	if err != nil {
		return nil, nil, err
	}
	campaigns := faultCampaigns()
	rates := RecoveryRates()

	// Job layout: the two fault-free baselines (DIE, DIE-IRB) first, then
	// one campaign block per (campaign × rate), each over all profiles.
	baselines := []sim.NamedConfig{
		{Name: string(core.DIE), Cfg: core.BaseDIE()},
		{Name: string(core.DIEIRB), Cfg: core.BaseDIEIRB()},
	}
	var (
		jobs []runner.Job
		injs []*fault.Injector
	)
	for _, nc := range baselines {
		for _, p := range profiles {
			o := opts.simOpts()
			o.Verify = true
			jobs = append(jobs, runner.Job{Name: nc.Name, Config: nc.Cfg, Profile: p, Opts: o})
		}
	}
	for _, c := range campaigns {
		for _, rate := range rates {
			for _, p := range profiles {
				inj, err := fault.New(fault.Config{Site: c.site, Rate: rate, Seed: p.Seed})
				if err != nil {
					return nil, nil, err
				}
				o := opts.simOpts()
				o.Injector = inj
				o.Verify = true
				jobs = append(jobs, runner.Job{Name: string(c.mode), Config: c.cfg, Profile: p, Opts: o})
				injs = append(injs, inj)
			}
		}
	}
	if !opts.DisableReplay {
		if err := runner.AttachTraces(jobs); err != nil {
			return nil, nil, err
		}
	}
	outs, err := runner.Run(opts.ctx(), jobs, opts.runnerOpts())
	if err != nil {
		return nil, nil, err
	}

	nb := len(profiles)
	baseIPC := make(map[core.Mode]float64, len(baselines))
	for bi, nc := range baselines {
		ipcs := make([]float64, nb)
		for pi := 0; pi < nb; pi++ {
			ipcs[pi] = outs[bi*nb+pi].Result.IPC
		}
		baseIPC[core.Mode(nc.Name)] = stats.Mean(ipcs)
	}

	t := stats.NewTable("Recovery overhead: IPC and MTTR vs fault rate",
		"mode", "site", "rate", "IPC", "base-IPC", "overhead%",
		"detected", "recoveries", "retries", "MTTR", "silent", "scrubs")
	var rows []RecoveryRow
	off := len(baselines) * nb
	for ci, c := range campaigns {
		for ri, rate := range rates {
			row := RecoveryRow{Rate: rate, BaseIPC: baseIPC[c.mode]}
			row.Mode, row.Site = c.mode, c.site
			ipcs := make([]float64, nb)
			for pi := 0; pi < nb; pi++ {
				cell := (ci*len(rates)+ri)*nb + pi
				row.accumulate(injs[cell].Injected, &outs[off+cell].Result.Core)
				ipcs[pi] = outs[off+cell].Result.IPC
			}
			row.IPC = stats.Mean(ipcs)
			row.Vanished = int64(row.Injected) - int64(row.Detected) - int64(row.Masked) - int64(row.Silent)
			rows = append(rows, row)
			t.AddRow(string(c.mode), string(c.site), fmt.Sprintf("%.0e", row.Rate), row.IPC, row.BaseIPC,
				row.OverheadPct(), row.Detected, row.Recoveries, row.Retries,
				row.MTTR(), row.Silent, row.Scrubs)
		}
	}
	return rows, t, nil
}

// ConfigTable renders the baseline machine parameters (the paper's
// configuration table).
func ConfigTable() *stats.Table {
	cfg := core.BaseSIE()
	t := stats.NewTable("Baseline machine configuration (paper Section 2.2)",
		"parameter", "value")
	t.AddRow("fetch/decode/issue/commit width", fmt.Sprintf("%d/%d/%d/%d",
		cfg.FetchWidth, cfg.DecodeWidth, cfg.IssueWidth, cfg.CommitWidth))
	t.AddRow("RUU (ROB + issue window)", fmt.Sprintf("%d entries", cfg.RUUSize))
	t.AddRow("load/store queue", fmt.Sprintf("%d entries", cfg.LSQSize))
	t.AddRow("integer ALUs", 4)
	t.AddRow("integer mult/div", 2)
	t.AddRow("FP adders", 2)
	t.AddRow("FP mult/div/sqrt", 1)
	t.AddRow("cache ports", 2)
	t.AddRow("branch predictor", "combined bimodal+gshare, 2K entries each")
	t.AddRow("BTB / RAS", "512x4 / 8")
	t.AddRow("L1I", "16KB 2-way 32B, 1 cycle")
	t.AddRow("L1D", "16KB 4-way 32B, 1 cycle")
	t.AddRow("L2", "256KB 4-way 64B, 6 cycles")
	t.AddRow("memory", "100 cycles")
	t.AddRow("IRB", "1024-entry direct-mapped, 4R+2W+2RW ports, 3-cycle pipelined lookup")
	return t
}

// Scheduler reproduces the Section 3.3 discussion: DIE-IRB IPC under the
// data-capture vs decoupled (non-data-capture) schedulers, each with the
// value-based and name-based reuse tests. The paper expects the decoupled
// pipeline to cost little IPC and name-based hit rates to decrease.
func Scheduler(opts Options) (*Grid, *stats.Table, error) {
	g, err := runGrid(sim.SchedulerConfigs(), opts)
	if err != nil {
		return g, nil, err
	}
	headers := append([]string{"bench"}, g.Configs...)
	t := stats.NewTable("Section 3.3 schedulers: IPC (and duplicate reuse rate)", headers...)
	for b, bench := range g.Benchmarks {
		cells := []any{bench}
		for c := range g.Configs {
			r := g.Results[b][c]
			cells = append(cells, fmt.Sprintf("%.3f/%.2f", r.IPC, r.ReuseRate()))
		}
		t.AddRow(cells...)
	}
	avgRow(t, g)
	return g, t, nil
}

// Cluster reproduces the clustered-architecture comparison the paper's
// Section 3 discusses and defers: a DIE whose duplicate stream runs on a
// second, fully replicated cluster (nearly spatial redundancy) against the
// shared-resource DIE and the proposed DIE-IRB.
func Cluster(opts Options) (*Grid, *stats.Table, error) {
	g, err := runGrid(sim.ClusterConfigs(), opts)
	if err != nil {
		return g, nil, err
	}
	headers := append([]string{"bench"}, g.Configs...)
	t := stats.NewTable("Clustered alternative: IPC (cluster doubles every FU)", headers...)
	addAvgRows(t, g)
	return g, t, nil
}

// Prior24 reproduces the claim the paper's introduction quotes from the
// original DIE proposal (Ray, Hoe & Falsafi [24], evaluated on a mix of
// SPEC95 and SPEC2000 programs): substantial average IPC loss for DIE vs
// SIE with a worst case approaching 45%. It runs both suites combined —
// the SPEC95 profiles are otherwise untouched by the other experiments.
func Prior24(opts Options) (*Grid, *stats.Table, error) {
	if len(opts.Benchmarks) > 0 {
		return nil, nil, fmt.Errorf("experiments: prior24 always runs the combined suites")
	}
	cfgs := []sim.NamedConfig{
		{Name: "SIE", Cfg: core.BaseSIE()},
		{Name: "DIE", Cfg: core.BaseDIE()},
	}
	g, err := runGridProfiles(cfgs, append(workload.SPEC95(), workload.SPEC2000()...), opts)
	if err != nil {
		return g, nil, err
	}
	t := stats.NewTable("Prior work [24] claim, SPEC95+SPEC2000 combined: DIE loss vs SIE",
		"bench", "SIE IPC", "DIE IPC", "loss%")
	var losses []float64
	worst := 0.0
	for b, bench := range g.Benchmarks {
		loss := stats.PctLoss(g.IPC(b, 0), g.IPC(b, 1))
		losses = append(losses, loss)
		if loss > worst {
			worst = loss
		}
		t.AddRow(bench, g.IPC(b, 0), g.IPC(b, 1), loss)
	}
	t.AddRow("AVERAGE", "", "", stats.Mean(losses))
	t.AddRow("WORST", "", "", worst)
	return g, t, nil
}

// ReuseSources evaluates the two extra reuse sources of the instruction-
// reuse literature the paper builds on ([29,30]): squash reuse (wrong-path
// results harvested into the IRB at recovery) on DIE-IRB, and dependent-
// chain collapsing (Sn+d) on the prior-work single-stream SIE-IRB.
func ReuseSources(opts Options) (*Grid, *stats.Table, error) {
	g, err := runGrid(sim.ReuseSourceConfigs(), opts)
	if err != nil {
		return g, nil, err
	}
	headers := append([]string{"bench"}, g.Configs...)
	t := stats.NewTable("Reuse sources: IPC (and reuse rate)", headers...)
	for b, bench := range g.Benchmarks {
		cells := []any{bench}
		for c := range g.Configs {
			r := g.Results[b][c]
			cells = append(cells, fmt.Sprintf("%.3f/%.2f", r.IPC, r.ReuseRate()))
		}
		t.AddRow(cells...)
	}
	avgRow(t, g)
	return g, t, nil
}

// PredictionRow pairs the static predictor's estimate for one benchmark
// with the reuse rate the timing core measured.
type PredictionRow struct {
	Bench     string
	Predicted float64 // analysis.Prediction.ReuseRate on the exact program run
	Measured  float64 // sim.Result.ReuseRate on the base DIE-IRB machine
	HotInstrs int     // static reuse-eligible in-loop instructions
	Conflict  float64 // predicted hot instructions per occupied IRB set
}

// ReusePrediction cross-validates the static IRB-reuse predictor
// (internal/analysis) against the measured duplicate-stream reuse rate of
// the base DIE-IRB machine. Each benchmark's program is analyzed exactly
// as generated for its run (sim.ProgramFor), then simulated; the returned
// coefficient is the Spearman rank correlation between the predicted and
// measured columns — the predictor's contract is ordering programs by
// reuse potential, not matching absolute rates.
func ReusePrediction(opts Options) ([]PredictionRow, float64, *stats.Table, error) {
	profiles, err := opts.profiles()
	if err != nil {
		return nil, 0, nil, err
	}
	cfgs := []sim.NamedConfig{{Name: "DIE-IRB", Cfg: core.BaseDIEIRB()}}
	g, err := runGridProfiles(cfgs, profiles, opts)
	if err != nil {
		return nil, 0, nil, err
	}
	t := stats.NewTable("Static reuse prediction vs measured (base DIE-IRB)",
		"bench", "predicted", "measured", "hot-instrs", "conflict")
	rows := make([]PredictionRow, 0, len(profiles))
	var preds, meas []float64
	for b, p := range profiles {
		prog, err := sim.ProgramFor(p, opts.simOpts())
		if err != nil {
			return nil, 0, nil, err
		}
		pred := analysis.Analyze(prog).Prediction
		row := PredictionRow{
			Bench:     p.Name,
			Predicted: pred.ReuseRate,
			Measured:  g.Results[b][0].ReuseRate(),
			HotInstrs: pred.HotInstrs,
			Conflict:  pred.ConflictRatio,
		}
		rows = append(rows, row)
		preds = append(preds, row.Predicted)
		meas = append(meas, row.Measured)
		t.AddRow(row.Bench, row.Predicted, row.Measured, row.HotInstrs, row.Conflict)
	}
	rho := stats.Spearman(preds, meas)
	t.AddRow("SPEARMAN", "", "", "", rho)
	return rows, rho, t, nil
}
