package analysis

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
)

// Kind classifies a diagnostic.
type Kind string

// The diagnostic catalog. Program.Validate already rejects malformed
// instructions and out-of-range direct targets; these checks cover the
// well-formedness hazards it cannot see without a CFG.
const (
	// KindReadBeforeWrite: a register can be read before any write on
	// some path from entry. The machine defines such reads (registers
	// start at zero), so this is almost always a generator bug.
	KindReadBeforeWrite Kind = "read-before-write"
	// KindUnreachable: a block containing real (non-NOP) instructions
	// can never execute. NOP-only blocks are exempt: generators emit
	// NOP padding for code placement (e.g. IRB-set alignment).
	KindUnreachable Kind = "unreachable-code"
	// KindZeroRegWrite: a computational result is written to ZeroReg and
	// silently discarded. The link-discarding JALR return idiom is
	// exempt.
	KindZeroRegWrite Kind = "zeroreg-write"
	// KindMisalignedData: a memory access whose address is statically
	// resolvable is not 8-byte aligned. The hardware masks addresses to
	// the access size (isa.EffAddr), so the access silently truncates.
	KindMisalignedData Kind = "misaligned-address"
	// KindOutOfSegment: a statically resolvable access lands outside the
	// initialized data segment; loads there read zeros.
	KindOutOfSegment Kind = "out-of-segment"
	// KindFallthrough: execution can run off the end of the code
	// segment, where fetches return NOPs forever.
	KindFallthrough Kind = "fallthrough-off-code"
)

// Diagnostic is one structured finding, usable as an error value (it is
// what the sim.RunContext preflight returns for an ill-formed program).
type Diagnostic struct {
	Program string
	Kind    Kind
	PC      int64 // instruction index, -1 for program-level findings
	Detail  string

	instrStr string // rendered instruction at PC, for Error
}

// Error implements error.
func (d *Diagnostic) Error() string {
	if d.PC < 0 {
		return fmt.Sprintf("%s: [%s] %s", d.Program, d.Kind, d.Detail)
	}
	return fmt.Sprintf("%s: pc=%d (%s): [%s] %s",
		d.Program, d.PC, d.instrStr, d.Kind, d.Detail)
}

// Report is the full result of analyzing one program.
type Report struct {
	Prog       *program.Program
	CFG        *CFG
	Liveness   *Liveness
	DefUse     *DefUse
	Diags      []Diagnostic
	Prediction Prediction
}

// Analyze runs every pass over p and returns the combined report. It
// assumes p passed Program.Validate; call Check for the validating entry
// point.
func Analyze(p *program.Program) *Report {
	return AnalyzeConfig(p, DefaultPredictorConfig())
}

// AnalyzeConfig is Analyze with an explicit predictor configuration.
func AnalyzeConfig(p *program.Program, pc PredictorConfig) *Report {
	g := BuildCFG(p)
	lv := ComputeLiveness(g)
	r := &Report{
		Prog:     p,
		CFG:      g,
		Liveness: lv,
		DefUse:   ComputeDefUse(g),
	}
	r.checkReadBeforeWrite()
	r.checkUnreachable()
	r.checkZeroRegWrites()
	r.checkDataAddresses()
	r.checkFallthrough()
	sort.SliceStable(r.Diags, func(i, j int) bool { return r.Diags[i].PC < r.Diags[j].PC })
	r.Prediction = predict(g, pc)
	return r
}

// Check validates p structurally (Program.Validate) and then analyzes it,
// returning nil for a clean program or an error carrying every finding;
// the first finding is exposed as a *Diagnostic via errors.As.
func Check(p *program.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r := Analyze(p)
	if len(r.Diags) == 0 {
		return nil
	}
	errs := make([]error, len(r.Diags))
	for i := range r.Diags {
		errs[i] = &r.Diags[i]
	}
	return errors.Join(errs...)
}

func (r *Report) addDiag(kind Kind, pc int64, format string, args ...any) {
	d := Diagnostic{Program: r.Prog.Name, Kind: kind, PC: pc,
		Detail: fmt.Sprintf(format, args...)}
	if pc >= 0 {
		d.instrStr = r.Prog.Code[pc].String()
	}
	r.Diags = append(r.Diags, d)
}

func (r *Report) checkReadBeforeWrite() {
	for _, reg := range r.Liveness.EntryLive().regs() {
		pc, ok := r.Liveness.firstExposedUse(reg)
		if !ok {
			continue
		}
		if len(r.DefUse.Defs[reg]) == 0 {
			r.addDiag(KindReadBeforeWrite, int64(pc),
				"%s is read but never written anywhere in the program", reg)
		} else {
			r.addDiag(KindReadBeforeWrite, int64(pc),
				"%s can be read before its first write", reg)
		}
	}
}

func (r *Report) checkUnreachable() {
	for _, b := range r.CFG.Blocks {
		if b.Reachable {
			continue
		}
		// NOP-only blocks are placement padding, not dead code.
		first := int64(-1)
		for pc := b.Start; pc < b.End; pc++ {
			if r.Prog.Code[pc].Op != isa.OpNop {
				first = int64(pc)
				break
			}
		}
		if first >= 0 {
			r.addDiag(KindUnreachable, first,
				"unreachable block [%d,%d)", b.Start, b.End)
		}
	}
}

func (r *Report) checkZeroRegWrites() {
	for _, b := range r.CFG.Blocks {
		if !b.Reachable {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := r.Prog.Code[pc]
			d, ok := in.DestReg()
			if !ok || d != isa.ZeroReg {
				continue
			}
			if in.Op.Info().IsCtrl() {
				// jalr r0, rs is the link-discarding return/jump
				// idiom; call r0 likewise discards the link.
				continue
			}
			r.addDiag(KindZeroRegWrite, int64(pc),
				"result written to %s is discarded", isa.Reg(isa.ZeroReg))
		}
	}
}

// checkDataAddresses runs a block-local constant propagation and checks
// every memory access whose effective address it can resolve. Registers
// are unknown at block entry (all-zero at the program entry block, the
// architectural initial state), so only addresses materialized within the
// same block — the LoadConst idiom — are checked. The check is therefore
// sound: it only reports accesses whose address is certain.
func (r *Report) checkDataAddresses() {
	extent := dataExtent(r.Prog)
	for _, b := range r.CFG.Blocks {
		if !b.Reachable {
			continue
		}
		var known regSet
		var val [isa.NumRegs]uint64
		if b.ID == r.CFG.entry && r.Prog.Entry == b.Start {
			known = ^regSet(0) // architectural reset: every register is 0
		}
		known.add(isa.ZeroReg) // hardwired zero is always known
		for pc := b.Start; pc < b.End; pc++ {
			in := r.Prog.Code[pc]
			oi := in.Op.Info()
			if oi.IsMem() && known.has(in.Src1) {
				raw := val[in.Src1] + uint64(int64(in.Imm))
				if raw%8 != 0 {
					r.addDiag(KindMisalignedData, int64(pc),
						"address %#x is not 8-byte aligned (hardware truncates to %#x)",
						raw, isa.EffAddr(val[in.Src1], in.Imm))
				} else if raw >= extent {
					r.addDiag(KindOutOfSegment, int64(pc),
						"address %#x is outside the initialized data segment [0,%#x)",
						raw, extent)
				}
			}
			d, hasDest := in.DestReg()
			if !hasDest {
				continue
			}
			switch {
			case d == isa.ZeroReg:
				// Writes to r0 don't change its known zero.
			case oi.IsLoad:
				known = known.without(d)
			case oi.UsesSrc1 && !known.has(in.Src1),
				oi.UsesSrc2 && !known.has(in.Src2):
				known = known.without(d)
			default:
				val[d] = isa.Exec(in.Op, val[in.Src1], val[in.Src2], in.Imm, pc)
				known.add(d)
			}
		}
	}
}

// dataExtent returns one past the highest initialized data byte, rounded
// to words; programs with no data get a zero-sized segment.
func dataExtent(p *program.Program) uint64 {
	var max uint64
	for addr := range p.Data {
		if addr+8 > max {
			max = addr + 8
		}
	}
	return max
}

func (r *Report) checkFallthrough() {
	n := uint64(len(r.Prog.Code))
	for _, b := range r.CFG.Blocks {
		if !b.Reachable || b.End != n {
			continue
		}
		if r.Prog.Code[b.End-1].FallsThrough() {
			r.addDiag(KindFallthrough, int64(b.End-1),
				"execution can fall through the end of the code segment")
		}
	}
}
