package core

import (
	"fmt"
	"io"

	"repro/internal/fsim"
)

// Tracer observes pipeline events. All callbacks run synchronously inside
// Tick, in pipeline-stage order, and receive immutable views; a nil tracer
// (the default) costs one predictable branch per event site.
type Tracer interface {
	// Dispatch fires when an instruction copy enters the RUU.
	Dispatch(cycle uint64, seq uint64, dup, wrongPath bool, rec *fsim.Retired)
	// Issue fires when a copy is selected for a functional unit.
	Issue(cycle uint64, seq uint64, dup bool, rec *fsim.Retired)
	// ReuseHit fires when a duplicate passes the reuse test and skips
	// the functional units.
	ReuseHit(cycle uint64, seq uint64, rec *fsim.Retired)
	// Complete fires when a copy's result becomes available.
	Complete(cycle uint64, seq uint64, dup bool, rec *fsim.Retired)
	// Squash fires once per recovery with the number of killed copies.
	Squash(cycle uint64, killed int)
	// Commit fires when an architected instruction retires.
	Commit(cycle uint64, seq uint64, rec *fsim.Retired)
}

// SetTracer installs a pipeline tracer; call before Run. Passing nil
// removes it.
func (c *Core) SetTracer(tr Tracer) { c.tracer = tr }

// TextTracer writes a human-readable pipeline trace, one line per event,
// in the spirit of SimpleScalar's ptrace output. MaxCycles bounds the
// traced window (0 = unbounded).
type TextTracer struct {
	W         io.Writer
	MaxCycles uint64
}

func (t *TextTracer) active(cycle uint64) bool {
	return t.MaxCycles == 0 || cycle <= t.MaxCycles
}

func (t *TextTracer) line(cycle uint64, ev string, seq uint64, dup bool, rec *fsim.Retired) {
	if !t.active(cycle) {
		return
	}
	stream := "P"
	if dup {
		stream = "D"
	}
	fmt.Fprintf(t.W, "%8d %-8s #%-6d %s pc=%-5d %s\n", cycle, ev, seq, stream, rec.PC, rec.Instr)
}

// Dispatch implements Tracer.
func (t *TextTracer) Dispatch(cycle, seq uint64, dup, wrongPath bool, rec *fsim.Retired) {
	ev := "dispatch"
	if wrongPath {
		ev = "dispatch*" // wrong path
	}
	t.line(cycle, ev, seq, dup, rec)
}

// Issue implements Tracer.
func (t *TextTracer) Issue(cycle, seq uint64, dup bool, rec *fsim.Retired) {
	t.line(cycle, "issue", seq, dup, rec)
}

// ReuseHit implements Tracer.
func (t *TextTracer) ReuseHit(cycle, seq uint64, rec *fsim.Retired) {
	t.line(cycle, "reuse", seq, true, rec)
}

// Complete implements Tracer.
func (t *TextTracer) Complete(cycle, seq uint64, dup bool, rec *fsim.Retired) {
	t.line(cycle, "complete", seq, dup, rec)
}

// Squash implements Tracer.
func (t *TextTracer) Squash(cycle uint64, killed int) {
	if !t.active(cycle) {
		return
	}
	fmt.Fprintf(t.W, "%8d squash   %d copies\n", cycle, killed)
}

// Commit implements Tracer.
func (t *TextTracer) Commit(cycle, seq uint64, rec *fsim.Retired) {
	t.line(cycle, "commit", seq, false, rec)
}
