package core

import (
	"fmt"
	"sort"
	"strings"
)

// CompareKind names the point where a redundancy mode compares redundant
// work, the second axis of the mode taxonomy (streams x compare point x
// recovery strategy).
type CompareKind string

const (
	// CompareNone: no redundancy check at all (SIE, SIE-IRB).
	CompareNone CompareKind = "none"
	// ComparePair: commit-time signature comparison of a two-copy pair
	// (DIE, DIE-IRB); a mismatch flushes and re-executes.
	ComparePair CompareKind = "pair"
	// CompareVote: commit-time majority vote over three or more copies
	// (TMR); a dissenter is outvoted without any rewind.
	CompareVote CompareKind = "vote"
	// CompareEpoch: deferred comparison by deterministic replay of a
	// committed epoch (REPLAY); a mismatch rewinds the whole epoch.
	CompareEpoch CompareKind = "epoch"
)

// Capabilities describes what a redundancy mode is and does, so the layers
// above the core (sim, runner, experiments, service, CLIs) can branch on
// properties instead of mode identity. Any `if mode == DIE` check outside
// this package is a bug; consume these flags instead.
type Capabilities struct {
	// Streams is the default number of uop copies dispatched per
	// architected instruction (a vote-width knob may widen it).
	Streams int
	// UsesIRB: the mode instantiates the instruction reuse buffer.
	UsesIRB bool
	// UsesTRB: the mode instantiates the trace reuse buffer, memoizing
	// whole loop windows keyed by entry PC + live-in values (DIE-TRB).
	// Always combined with UsesIRB: instructions outside a served
	// window fall back to per-instruction reuse.
	UsesTRB bool
	// IRBAllStreams: every stream consults the IRB (SIE-IRB), as opposed
	// to the duplicate stream only (DIE-IRB without IRBBothStreams).
	IRBAllStreams bool
	// IndependentDataflow: each stream has its own rename/dataflow (DIE);
	// otherwise shadow copies are woken by primary-stream results.
	IndependentDataflow bool
	// Compare is where redundant work is checked.
	Compare CompareKind
	// Detects: the mode detects datapath faults (some Compare != none).
	Detects bool
	// Corrects: the mode repairs a detected single-copy fault in place,
	// without an architectural rewind (majority vote).
	Corrects bool
}

// Knob documents one mode-specific Config field, for discovery surfaces
// such as the service's GET /v1/modes and the CLIs' usage text.
type Knob struct {
	// Name is the CLI-flavoured knob name (e.g. "replay-epoch").
	Name string
	// Field is the core.Config field the knob maps onto.
	Field string
	// Doc is a one-line description including the default.
	Doc string
}

// ModeInfo is a registered mode descriptor: the identity, capability
// flags, mode-specific knobs, and the builder for the paper-baseline
// machine running in that mode.
type ModeInfo struct {
	Mode        Mode
	Description string
	Caps        Capabilities
	Knobs       []Knob
	// Base returns the paper's baseline machine (Section 2.2 resources)
	// configured for this mode.
	Base func() Config
}

// modeRegistry holds the registered descriptors; modeOrder preserves
// registration order for stable listings.
var (
	modeRegistry = make(map[Mode]ModeInfo)
	modeOrder    []Mode
)

// RegisterMode adds a mode descriptor to the registry. The built-in modes
// register themselves at init; external packages may add experimental
// modes the same way. Registering a duplicate name or an incomplete
// descriptor panics: mode registration is program initialization, not a
// runtime input.
func RegisterMode(mi ModeInfo) {
	if mi.Mode == "" || mi.Base == nil || mi.Caps.Streams < 1 {
		//nopanic:invariant mode registration happens at init with literal descriptors; an incomplete one is a build bug
		panic(fmt.Sprintf("core: incomplete mode descriptor %+v", mi))
	}
	if _, dup := modeRegistry[mi.Mode]; dup {
		//nopanic:invariant duplicate registration is an init-time programming error, not runtime input
		panic(fmt.Sprintf("core: mode %q registered twice", mi.Mode))
	}
	modeRegistry[mi.Mode] = mi
	modeOrder = append(modeOrder, mi.Mode)
}

// Modes returns all registered mode descriptors in registration order
// (the built-ins first, in the order the paper discusses them).
func Modes() []ModeInfo {
	out := make([]ModeInfo, 0, len(modeOrder))
	for _, m := range modeOrder {
		out = append(out, modeRegistry[m])
	}
	return out
}

// ModeNames returns the registered mode names in registration order.
func ModeNames() []string {
	out := make([]string, 0, len(modeOrder))
	for _, m := range modeOrder {
		out = append(out, string(m))
	}
	return out
}

// ModeByName resolves a mode name (exact match) to its descriptor.
func ModeByName(name string) (ModeInfo, bool) {
	mi, ok := modeRegistry[Mode(name)]
	return mi, ok
}

// Info returns m's registered descriptor.
func (m Mode) Info() (ModeInfo, bool) {
	mi, ok := modeRegistry[m]
	return mi, ok
}

// Caps returns m's capability flags (the zero value for an unregistered
// mode, whose Streams is 0 — Validate rejects such configs up front).
func (m Mode) Caps() Capabilities {
	return modeRegistry[m].Caps
}

// knownModes renders the registered names for error messages, sorted so
// the text is stable regardless of registration order.
func knownModes() string {
	names := ModeNames()
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func init() {
	RegisterMode(ModeInfo{
		Mode:        SIE,
		Description: "single instruction execution: conventional superscalar, no redundancy",
		Caps:        Capabilities{Streams: 1, Compare: CompareNone},
		Base:        func() Config { return baseConfig(SIE) },
	})
	RegisterMode(ModeInfo{
		Mode:        DIE,
		Description: "dual instruction execution: every instruction duplicated at dispatch, pair checked at commit",
		Caps: Capabilities{
			Streams:             2,
			IndependentDataflow: true,
			Compare:             ComparePair,
			Detects:             true,
		},
		Base: func() Config { return baseConfig(DIE) },
	})
	RegisterMode(ModeInfo{
		Mode:        DIEIRB,
		Description: "DIE with the duplicate stream served by the instruction reuse buffer (the paper's proposal)",
		Caps: Capabilities{
			Streams: 2,
			UsesIRB: true,
			Compare: ComparePair,
			Detects: true,
		},
		Base: func() Config { return baseConfig(DIEIRB) },
	})
	RegisterMode(ModeInfo{
		Mode:        SIEIRB,
		Description: "prior-work dynamic instruction reuse: single stream consulting the IRB, no redundancy",
		Caps: Capabilities{
			Streams:       1,
			UsesIRB:       true,
			IRBAllStreams: true,
			Compare:       CompareNone,
		},
		Base: func() Config { return baseConfig(SIEIRB) },
	})
	RegisterMode(ModeInfo{
		Mode:        REPLAY,
		Description: "checkpoint/deterministic-replay detection: single-stream execution, each committed epoch replayed and compared",
		Caps: Capabilities{
			Streams: 1,
			Compare: CompareEpoch,
			Detects: true,
		},
		Knobs: []Knob{{
			Name:  "replay-epoch",
			Field: "ReplayEpoch",
			Doc: fmt.Sprintf("committed instructions per replay epoch (default %d); longer epochs amortize the checkpoint but grow detection latency",
				DefaultReplayEpoch),
		}},
		Base: func() Config { return baseConfig(REPLAY) },
	})
	RegisterMode(ModeInfo{
		Mode:        TMR,
		Description: "triple modular redundancy: three copies dispatched, commit takes a majority vote and corrects without rewind",
		Caps: Capabilities{
			Streams:  3,
			Compare:  CompareVote,
			Detects:  true,
			Corrects: true,
		},
		Knobs: []Knob{{
			Name:  "vote-width",
			Field: "VoteWidth",
			Doc:   "copies dispatched per instruction, odd, 3..7 (default 3)",
		}},
		Base: func() Config { return baseConfig(TMR) },
	})
	RegisterMode(ModeInfo{
		Mode:        DIETRB,
		Description: "DIE-IRB with a trace reuse buffer: loop windows memoized whole, one hit skips the duplicate stream past the entire window",
		Caps: Capabilities{
			Streams: 2,
			UsesIRB: true,
			UsesTRB: true,
			Compare: ComparePair,
			Detects: true,
		},
		Knobs: []Knob{{
			Name:  "trb-entries",
			Field: "TRBEntries",
			Doc:   "trace reuse buffer entries, direct-mapped by window entry PC, power of two (default 256)",
		}, {
			Name:  "trb-max-block-len",
			Field: "TRBMaxBlockLen",
			Doc:   "maximum memoized window length in instructions (default 16)",
		}},
		Base: func() Config { return baseConfig(DIETRB) },
	})
}
