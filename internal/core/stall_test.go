package core

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/program"
)

// Structural-stall and boundary-condition tests: each shrinks one resource
// until the corresponding stall path fires, while the oracle check proves
// the pipeline still retires the correct stream.

func TestTinyRUUStalls(t *testing.T) {
	cfg := quicken(BaseSIE())
	cfg.RUUSize = 4
	c := runVerified(t, cfg, loopProgram(300))
	if c.Stats.RUUFullStalls == 0 {
		t.Error("4-entry RUU never filled")
	}
	big := runVerified(t, quicken(BaseSIE()), loopProgram(300))
	if c.Stats.IPC() >= big.Stats.IPC() {
		t.Errorf("tiny RUU IPC %.3f not below full RUU %.3f", c.Stats.IPC(), big.Stats.IPC())
	}
}

func TestTinyLSQStalls(t *testing.T) {
	cfg := quicken(BaseSIE())
	cfg.LSQSize = 1
	c := runVerified(t, cfg, memProgram(100))
	if c.Stats.LSQFullStalls == 0 {
		t.Error("1-entry LSQ never filled")
	}
}

func TestTinyFetchQueue(t *testing.T) {
	cfg := quicken(BaseSIE())
	cfg.FetchQueue = 2
	c := runVerified(t, cfg, loopProgram(300))
	// A 2-entry fetch queue cannot feed an 8-wide dispatch.
	if c.Stats.IPC() > 2.0 {
		t.Errorf("IPC %.3f exceeds the fetch-queue bound", c.Stats.IPC())
	}
}

func TestColdICacheStallsFetch(t *testing.T) {
	cfg := quicken(BaseSIE())
	// One-set L1I: nearly every block transition misses.
	cfg.Cache.L1I.Sets = 1
	cfg.Cache.L1I.Assoc = 1
	slow := runVerified(t, cfg, branchyProgram(200))
	fast := runVerified(t, quicken(BaseSIE()), branchyProgram(200))
	if slow.Stats.IPC() >= fast.Stats.IPC() {
		t.Errorf("thrashing L1I IPC %.3f not below normal %.3f",
			slow.Stats.IPC(), fast.Stats.IPC())
	}
	if slow.Mem().L1I.Stats.Misses == 0 {
		t.Error("one-set L1I never missed")
	}
}

// notTakenProgram loops over branches that are never taken — trivial for
// a trained predictor, worst-case for static-taken.
func notTakenProgram(n int64) *program.Program {
	b := program.NewBuilder("nottaken")
	b.LoadConst(1, n)
	b.LoadConst(2, 7)
	b.Label("loop")
	for i := 0; i < 3; i++ {
		b.Branch(isa.OpBeq, 2, isa.ZeroReg, "never") // 7 != 0: never taken
		b.EmitOp(isa.OpAdd, 3, 3, 2)
	}
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Label("never")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild()
}

func TestWorseBpredCostsIPC(t *testing.T) {
	taken := quicken(BaseSIE())
	taken.Bpred.Kind = bpred.Taken
	worse := runVerified(t, taken, notTakenProgram(400))
	good := runVerified(t, quicken(BaseSIE()), notTakenProgram(400))
	if worse.Stats.IPC() >= good.Stats.IPC() {
		t.Errorf("static-taken IPC %.3f not below combined-predictor IPC %.3f",
			worse.Stats.IPC(), good.Stats.IPC())
	}
	if worse.Stats.Mispredicts <= good.Stats.Mispredicts {
		t.Errorf("static-taken mispredicts %d not above combined %d",
			worse.Stats.Mispredicts, good.Stats.Mispredicts)
	}
}

func TestSingleIssueWidth(t *testing.T) {
	cfg := quicken(BaseSIE())
	cfg.IssueWidth = 1
	c := runVerified(t, cfg, loopProgram(500))
	if c.Stats.IPC() > 1.0 {
		t.Errorf("IPC %.3f exceeds the single-issue bound", c.Stats.IPC())
	}
	if c.Stats.ReadyNotIssued == 0 {
		t.Error("single-issue machine never had ready-but-unissued work")
	}
}

// Detected-fault behaviour (recovery, not a commit stall) is covered by
// TestRecoveryReExecutes and friends in recovery_test.go.

func TestIRBPortStarvationReducesReuse(t *testing.T) {
	prog := loopProgram(2000)
	full := runVerified(t, quicken(BaseDIEIRB()), prog)

	starved := quicken(BaseDIEIRB())
	starved.IRB.ReadPorts = 1
	starved.IRB.WritePorts = 1
	starved.IRB.RWPorts = 0
	s := runVerified(t, starved, prog)
	if s.IRB().Stats.ReadDenied == 0 {
		t.Error("single read port never denied")
	}
	if s.Stats.IRBReuseHits >= full.Stats.IRBReuseHits {
		t.Errorf("starved ports reuse %d not below full ports %d",
			s.Stats.IRBReuseHits, full.Stats.IRBReuseHits)
	}
}

func TestHaltOnlyProgram(t *testing.T) {
	b := program.NewBuilder("halt-only")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	prog := b.MustBuild()
	for _, cfg := range allModes() {
		c, err := New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatalf("%s: %v", cfg.Mode, err)
		}
		if c.Stats.Committed != 1 {
			t.Errorf("%s: committed %d, want 1", cfg.Mode, c.Stats.Committed)
		}
	}
}

// jumpTableProgram drives an indirect jump through a two-entry jump table
// selected by the low bit of a counter.
func jumpTableProgram(n int64) *program.Program {
	b := program.NewBuilder("jumptable")
	b.LoadConst(1, n) // counter
	b.Label("loop")
	b.EmitImm(isa.OpAddi, 2, isa.ZeroReg, 1)
	b.EmitOp(isa.OpAnd, 2, 1, 2) // r2 = counter & 1
	// r3 = (r2 == 0) ? &even : &odd, via arithmetic selection.
	b.LoadConst(4, 0)                      // patched below to &even
	b.LoadConst(5, 0)                      // patched below to &odd
	b.EmitOp(isa.OpSub, 6, isa.ZeroReg, 2) // r6 = -r2 (all ones if odd)
	b.EmitOp(isa.OpAnd, 7, 5, 6)           // r7 = odd if odd
	b.EmitOp(isa.OpXor, 6, 6, 6)           // r6 = 0
	b.EmitOp(isa.OpSub, 6, 6, 2)           // r6 = -r2 again
	b.Emit(isa.Instr{Op: isa.OpNop})
	b.EmitOp(isa.OpSltu, 8, isa.ZeroReg, 2) // r8 = r2 != 0
	b.EmitImm(isa.OpAddi, 8, 8, -1)         // r8 = 0 if odd, -1 if even
	b.EmitOp(isa.OpAnd, 9, 4, 8)            // r9 = even if even
	b.EmitOp(isa.OpOr, 3, 7, 9)             // r3 = selected target
	b.Emit(isa.Instr{Op: isa.OpJalr, Dest: isa.ZeroReg, Src1: 3})
	b.Label("even")
	b.EmitImm(isa.OpAddi, 10, 10, 1)
	b.Jump("join")
	b.Label("odd")
	b.EmitImm(isa.OpAddi, 11, 11, 1)
	b.Label("join")
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p := b.MustBuild()
	// Patch the two target constants now that label PCs are known.
	var evenPC, oddPC int64
	for pc, in := range p.Code {
		if in.Op == isa.OpAddi && in.Dest == 10 {
			evenPC = int64(pc)
		}
		if in.Op == isa.OpAddi && in.Dest == 11 {
			oddPC = int64(pc)
		}
	}
	for pc, in := range p.Code {
		if in.Op == isa.OpAddi && in.Dest == 4 && in.Src1 == isa.ZeroReg && in.Imm == 0 {
			p.Code[pc].Imm = int32(evenPC)
		}
		if in.Op == isa.OpAddi && in.Dest == 5 && in.Src1 == isa.ZeroReg && in.Imm == 0 {
			p.Code[pc].Imm = int32(oddPC)
		}
	}
	return p
}

func TestIndirectJumpBTBTraining(t *testing.T) {
	// A jump table exercised repeatedly: the BTB should learn stable
	// targets and cut indirect mispredictions over time.
	c := runVerified(t, quicken(BaseSIE()), jumpTableProgram(400))
	st := c.Bpred().Stats
	if st.IndirJumps == 0 {
		t.Fatal("no indirect jumps recorded")
	}
	if st.IndirMiss >= st.IndirJumps {
		t.Errorf("BTB never learned: %d misses of %d", st.IndirMiss, st.IndirJumps)
	}
}
