package hotalloc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a tiny standalone module so the pass runs the
// real compiler against a tree we control.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const goMod = "module hotalloctest\n\ngo 1.22\n"

// cleanSrc is a hot function the escape analyzer is happy with: scratch
// stays on the stack, the panic path's message is pardoned, and the one
// deliberate allocation is annotated.
const cleanSrc = `package p

type ring struct {
	buf  []int
	free []int
}

// Step is the per-cycle path.
//
//lint:hotpath
func (r *ring) Step(i, v int) int {
	if i >= len(r.buf) {
		panic("p: ring overflow")
	}
	var scratch [8]int
	for k := range scratch {
		scratch[k] = v + k
	}
	r.buf[i] = scratch[0]
	if len(r.free) == 0 {
		//hotalloc:exempt amortized: one chunk refill serves many steps
		r.free = make([]int, 64)
	}
	n := len(r.free) - 1
	out := r.free[n]
	r.free = r.free[:n]
	return out
}

// Grow is off the hot path and may allocate freely.
func (r *ring) Grow(n int) {
	r.buf = append(r.buf, make([]int, n)...)
}
`

// dirtySrc plants a deliberate per-call allocation inside the annotated
// function: the ISSUE's acceptance demonstration.
const dirtySrc = `package p

// Sums is the per-cycle path, but it allocates a fresh slice every call.
//
//lint:hotpath
func Sums(vs []int) []int {
	out := make([]int, 0, len(vs))
	for _, v := range vs {
		out = append(out, v*v)
	}
	return out
}
`

// laneDirtySrc models the batched core's probe loop with a seeded
// mistake: building a per-lane scratch slice inside the per-opportunity
// hot path. One allocation per lane per injection opportunity is exactly
// the regression the batch step path's annotations exist to catch.
const laneDirtySrc = `package p

type batch struct {
	lanes    []func(uint64) uint64
	diverged []bool
}

// Probe fans one leader value out to every live lane.
//
//lint:hotpath
func (b *batch) Probe(sig uint64) int {
	vals := make([]uint64, len(b.lanes)) // per-lane scratch: the seeded bug
	evicted := 0
	for i, lane := range b.lanes {
		if b.diverged[i] {
			continue
		}
		vals[i] = lane(sig)
		if vals[i] != sig {
			b.diverged[i] = true
			evicted++
		}
	}
	return evicted
}
`

func TestCleanHotFunctionPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; skipped in -short")
	}
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"p/p.go": cleanSrc,
	})
	findings, err := CheckRoot(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestDeliberateAllocationFails is the acceptance demonstration: a heap
// allocation introduced into an annotated hot-path function must produce
// a finding naming that function.
func TestDeliberateAllocationFails(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; skipped in -short")
	}
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"p/p.go": dirtySrc,
	})
	findings, err := CheckRoot(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("deliberate allocation in a //lint:hotpath function produced no finding")
	}
	for _, f := range findings {
		if !strings.Contains(f.Message, "Sums") {
			t.Errorf("finding does not name the hot function: %s", f)
		}
	}
}

// TestPerLaneAllocationFails: a per-lane scratch allocation seeded into a
// batch-probe-shaped hot function must fail the lint — the guard that
// keeps the lockstep core's per-opportunity fan-out allocation-free.
func TestPerLaneAllocationFails(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; skipped in -short")
	}
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"p/p.go": laneDirtySrc,
	})
	findings, err := CheckRoot(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("per-lane allocation in a //lint:hotpath probe produced no finding")
	}
	for _, f := range findings {
		if !strings.Contains(f.Message, "Probe") {
			t.Errorf("finding does not name the probe function: %s", f)
		}
	}
}

// TestReasonlessExemptIsAFinding: the escape hatch must carry a reason.
func TestReasonlessExemptIsAFinding(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"p/p.go": "package p\n\nfunc f() []int {\n\t//hotalloc:exempt\n\treturn make([]int, 8)\n}\n",
	})
	findings, err := CheckRoot(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "needs a reason") {
		t.Fatalf("want one needs-a-reason finding, got %v", findings)
	}
}

// TestBrokenPackageIsAFinding: a tree that does not compile yields a
// diagnosable finding instead of a pass error.
func TestBrokenPackageIsAFinding(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; skipped in -short")
	}
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"p/p.go": "package p\n\n//lint:hotpath\nfunc f() { undefined() }\n",
	})
	findings, err := CheckRoot(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "does not build") {
		t.Fatalf("want one does-not-build finding, got %v", findings)
	}
}

// TestRepoHotPathsAreClean is the repository's own gate: every annotated
// function in the tree passes escape analysis.
func TestRepoHotPathsAreClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; skipped in -short")
	}
	findings, err := CheckRoot(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestNoAnnotationsNoBuild: a tree without annotations must not shell
// out at all (and in particular must not fail on a missing toolchain
// target), returning instantly with no findings.
func TestNoAnnotationsNoBuild(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"p/p.go": "package p\n\nfunc f() []int { return make([]int, 8) }\n",
	})
	findings, err := CheckRoot(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}
