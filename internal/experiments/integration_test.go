package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestFullSuiteVerified is the heavyweight integration test: every
// benchmark of both suites runs on every headline machine with the
// functional oracle checking each committed instruction. It catches
// workload-generator/core interactions that the per-package tests cannot.
func TestFullSuiteVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("full verified suite skipped in -short mode")
	}
	profiles := append(workload.SPEC2000(), workload.SPEC95()...)
	for _, p := range profiles {
		for _, nc := range sim.HeadlineConfigs() {
			p, nc := p, nc
			t.Run(p.Name+"/"+nc.Name, func(t *testing.T) {
				r, err := sim.Run(nc.Name, nc.Cfg, p, sim.Options{
					Insns:  25_000,
					Verify: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if r.Core.Committed != 25_000 {
					t.Errorf("committed %d", r.Core.Committed)
				}
			})
		}
	}
}

// TestSuiteSpansRegimes pins the qualitative diversity the experiments
// depend on: at least one benchmark in each behavioural regime.
func TestSuiteSpansRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("regime scan skipped in -short mode")
	}
	var (
		memoryBound bool // DIE loss < 3%
		aluBound    bool // DIE loss > 20% mostly recovered by 2xALU
		ruuBound    bool // DIE loss > 20% NOT recovered by 2xALU
		reuseRich   bool // DIE-IRB reuse rate > 0.4
	)
	for _, p := range workload.SPEC2000() {
		opts := sim.Options{Insns: 60_000}
		sie, err := sim.Run("SIE", sim.HeadlineConfigs()[0].Cfg, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		die, err := sim.Run("DIE", sim.HeadlineConfigs()[1].Cfg, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		irb, err := sim.Run("DIE-IRB", sim.HeadlineConfigs()[2].Cfg, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		alu2, err := sim.Run("DIE-2xALU", sim.HeadlineConfigs()[3].Cfg, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		loss := 100 * (sie.IPC - die.IPC) / sie.IPC
		aluRecovers := alu2.IPC-die.IPC > 0.6*(sie.IPC-die.IPC)
		switch {
		case loss < 3:
			memoryBound = true
		case loss > 20 && aluRecovers:
			aluBound = true
		case loss > 20 && !aluRecovers:
			ruuBound = true
		}
		if irb.ReuseRate() > 0.4 {
			reuseRich = true
		}
	}
	if !memoryBound {
		t.Error("no memory-bound benchmark (DIE loss < 3%)")
	}
	if !aluBound {
		t.Error("no ALU-bound benchmark (large loss recovered by 2xALU)")
	}
	if !ruuBound {
		t.Error("no window-bound benchmark (large loss NOT recovered by 2xALU)")
	}
	if !reuseRich {
		t.Error("no reuse-rich benchmark (IRB reuse > 0.4)")
	}
}
