package errcontract

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestTestdataWantComments drives the pass over the annotated testdata
// package: one finding per want comment, no extras.
func TestTestdataWantComments(t *testing.T) {
	dir := filepath.Join("testdata", "src", "a")
	linttest.Run(t, dir, func() ([]lint.Finding, error) {
		files, err := lint.PackageFiles(dir)
		if err != nil {
			return nil, err
		}
		var out []lint.Finding
		for _, path := range files {
			fs, err := CheckFile(path)
			if err != nil {
				return nil, err
			}
			out = append(out, fs...)
		}
		return out, nil
	})
}

// TestBoundaryPackagesAreClean is the repository's own gate: every
// fmt.Errorf in the API-boundary packages wraps with %w.
func TestBoundaryPackagesAreClean(t *testing.T) {
	findings, err := Pass{}.Check(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestMissingPackagesAreSkipped keeps the pass usable on partial trees.
func TestMissingPackagesAreSkipped(t *testing.T) {
	findings, err := Pass{}.Check(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("unexpected findings on empty tree: %v", findings)
	}
}
