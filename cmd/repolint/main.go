// Command repolint runs the repository's invariant suite: the lint
// passes under internal/lint that encode properties the simulator's
// correctness arguments lean on but the compiler cannot check —
//
//	nopanic      library code may not panic without an invariant annotation
//	determinism  no wall clock, global rand, or map-order dependence in the simulation core
//	modedispatch redundancy modes are dispatched via the registry, never by literal comparison
//	hotalloc     //lint:hotpath functions are allocation-free per the compiler's escape analysis
//	errcontract  API-boundary errors wrap with %w or use named structured types
//
// Every finding is either fixed, annotated at the site with the pass's
// exempt marker (reason required), or listed in the allowlist file —
// there is no fourth state, so `repolint` staying quiet means every
// deviation in the tree is explained.
//
// Usage:
//
//	repolint [flags] [root]
//
//	-pass name[,name]   run only the named passes (default: all)
//	-format table|json|sarif
//	-allow file         allowlist file (default .repolint.allow; missing file = empty)
//
// Exit status: 0 clean, 1 findings, 2 the tool itself failed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/determinism"
	"repro/internal/lint/errcontract"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/modedispatch"
	"repro/internal/lint/nopanic"
)

// passes is the suite, in the order findings are reported.
var passes = []lint.Pass{
	nopanic.Pass{},
	determinism.Pass{},
	modedispatch.Pass{},
	hotalloc.Pass{},
	errcontract.Pass{},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies in the signature, so the regression
// tests drive the real flag parsing, pass execution and exit-code logic.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "table", "output format: table, json, or sarif")
	allowPath := fs.String("allow", ".repolint.allow", "allowlist file (missing file = empty allowlist)")
	passNames := fs.String("pass", "", "comma-separated pass names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	root := "."
	switch fs.NArg() {
	case 0:
	case 1:
		root = fs.Arg(0)
	default:
		fmt.Fprintln(stderr, "repolint: at most one root directory")
		return 2
	}

	switch *format {
	case "table", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "repolint: unknown -format %q (want table, json, or sarif)\n", *format)
		return 2
	}
	selected, err := selectPasses(*passNames)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}

	var findings []lint.Finding
	for _, p := range selected {
		fnd, err := p.Check(root)
		if err != nil {
			fmt.Fprintf(stderr, "repolint: %s: %v\n", p.Name(), err)
			return 2
		}
		findings = append(findings, fnd...)
	}

	// Report root-relative paths: stable across invocation directories,
	// and the coordinate system the allowlist's entries are written in.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = filepath.ToSlash(rel)
		}
	}

	allow, err := lint.LoadAllowlist(*allowPath)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	findings = allow.Filter(findings)
	lint.SortFindings(findings)

	switch *format {
	case "table":
		err = lint.WriteTable(stdout, findings)
	case "json":
		err = lint.WriteJSON(stdout, findings)
	case "sarif":
		err = lint.WriteSARIF(stdout, findings, selected)
	}
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectPasses resolves the -pass flag against the suite; empty selects
// everything.
func selectPasses(names string) ([]lint.Pass, error) {
	if names == "" {
		return passes, nil
	}
	byName := make(map[string]lint.Pass, len(passes))
	for _, p := range passes {
		byName[p.Name()] = p
	}
	var out []lint.Pass
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		p, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(passes))
			for _, q := range passes {
				known = append(known, q.Name())
			}
			return nil, fmt.Errorf("unknown pass %q (have %s)", name, strings.Join(known, ", "))
		}
		out = append(out, p)
	}
	return out, nil
}
