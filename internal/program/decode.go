package program

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

// DecodeImage is the inverse of Image: it rebuilds a Program from a
// binary code image of little-endian 64-bit instruction words. It rejects
// truncated images, undecodable instructions, an entry point outside the
// code, and control flow targeting outside the code segment — everything
// Validate rejects — so a successfully decoded program is safe to feed to
// the simulators. Tooling uses it to round-trip dumped programs.
func DecodeImage(name string, entry uint64, image []byte) (*Program, error) {
	if len(image) == 0 {
		return nil, fmt.Errorf("program %q: empty image", name)
	}
	if len(image)%8 != 0 {
		return nil, fmt.Errorf("program %q: image length %d not a multiple of 8", name, len(image))
	}
	code := make([]isa.Instr, len(image)/8)
	for i := range code {
		in, err := isa.Decode(binary.LittleEndian.Uint64(image[i*8:]))
		if err != nil {
			return nil, fmt.Errorf("program %q pc=%d: %w", name, i, err)
		}
		code[i] = in
	}
	p := &Program{Name: name, Code: code, Entry: entry}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ImageBytes encodes the code segment as the little-endian byte image
// DecodeImage accepts.
func (p *Program) ImageBytes() []byte {
	out := make([]byte, 8*len(p.Code))
	for i, w := range p.Image() {
		binary.LittleEndian.PutUint64(out[i*8:], w)
	}
	return out
}
