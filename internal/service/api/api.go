// Package api is the wire contract of the simulation daemon: every JSON
// payload POST /v1/runs accepts and the /v1 endpoints return, as plain
// structs with explicit field tags. Clients (the sweep CLI, dashboards,
// tests) unmarshal into these types instead of re-declaring the shapes;
// the golden-payload test in this package pins the serialized form, so a
// field rename or tag change that would break deployed clients fails the
// build rather than an integration.
package api

import (
	"time"

	"repro/internal/sim"
)

// RunRequest is the body of POST /v1/runs: a (configs × benchmarks) grid
// of simulation cells sharing one set of run options.
type RunRequest struct {
	// Configs names the machine configurations to run; see ConfigNames
	// (GET /v1/configs) for the accepted values.
	Configs []string `json:"configs,omitempty"`
	// Modes names redundancy modes to run at the paper-baseline machine,
	// resolved through the core mode registry; see GET /v1/modes for the
	// accepted values. Modes append columns after Configs, so a request
	// may mix both (at least one of the two must be non-empty).
	Modes []string `json:"modes,omitempty"`
	// Benchmarks restricts the workload set (empty = all 12 SPEC2000
	// profiles).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Insns is the per-cell architected instruction budget (0 = the
	// server's default).
	Insns uint64 `json:"insns,omitempty"`
	// FastForward skips this many instructions before measurement.
	FastForward uint64 `json:"fast_forward,omitempty"`
	// Seed perturbs the workload generators (see sim.Options.Seed).
	Seed uint64 `json:"seed,omitempty"`
	// Verify cross-checks every committed instruction against the
	// functional oracle.
	Verify bool `json:"verify,omitempty"`
	// Fault attaches a fault-injection campaign to every cell.
	Fault *FaultSpec `json:"fault,omitempty"`
}

// FaultSpec is the serializable fault campaign of a run request; it maps
// onto fault.Config, one fresh injector per cell.
type FaultSpec struct {
	Site      string  `json:"site"` // fu, forward, irb-result, irb-operand
	Rate      float64 `json:"rate"`
	Seed      uint64  `json:"seed,omitempty"`
	MaxFaults uint64  `json:"max_faults,omitempty"`
}

// CellResult is one grid cell's outcome in a run response.
type CellResult struct {
	Bench    string      `json:"bench"`
	Config   string      `json:"config"`
	CacheHit bool        `json:"cache_hit"`
	Result   *sim.Result `json:"result,omitempty"`
	Error    string      `json:"error,omitempty"`
}

// Run is the resource returned by POST /v1/runs and GET /v1/runs/{id}.
type Run struct {
	ID        string       `json:"id"`
	Status    string       `json:"status"` // queued, running, done, failed, cancelled
	Created   time.Time    `json:"created"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
	Cells     int          `json:"cells"`
	CacheHits int          `json:"cache_hits"`
	Error     string       `json:"error,omitempty"`
	Results   []CellResult `json:"results,omitempty"`
}

// Run statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// Mode is one entry of GET /v1/modes: a registered redundancy mode's
// identity, capability summary, and tunable knobs.
type Mode struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Streams is the execution copies dispatched per architected
	// instruction (the default; a knob may widen it).
	Streams int `json:"streams"`
	// Compare is where redundant work is checked: none, pair, vote or
	// epoch.
	Compare string `json:"compare"`
	// Detects: the mode detects datapath faults.
	Detects bool `json:"detects"`
	// Corrects: the mode repairs detected faults without a rewind.
	Corrects bool `json:"corrects"`
	// Knobs are the mode-specific tuning parameters.
	Knobs []Knob `json:"knobs,omitempty"`
}

// Knob is one mode-specific tuning parameter.
type Knob struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// ModesResponse is the body of GET /v1/modes.
type ModesResponse struct {
	Modes []Mode `json:"modes"`
}

// Error is the body of every non-2xx /v1 response. ValidModes is set
// when the request named an unknown redundancy mode, so a client can
// self-correct without a second round trip.
type Error struct {
	Error      string   `json:"error"`
	ValidModes []string `json:"valid_modes,omitempty"`
}
