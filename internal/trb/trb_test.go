package trb

import (
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/isa"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestConfigValidateWrapsErrConfig(t *testing.T) {
	bad := []Config{
		{Entries: 0, MaxBlockLen: 16, MaxLiveIn: 8, LookupLat: 4},
		{Entries: 3, MaxBlockLen: 16, MaxLiveIn: 8, LookupLat: 4},
		{Entries: 256, MaxBlockLen: 1, MaxLiveIn: 8, LookupLat: 4},
		{Entries: 256, MaxBlockLen: 16, MaxLiveIn: 0, LookupLat: 4},
		{Entries: 256, MaxBlockLen: 16, MaxLiveIn: 8, LookupLat: 0},
	}
	for _, cfg := range bad {
		err := cfg.Validate()
		if err == nil {
			t.Errorf("config %+v validated, want error", cfg)
			continue
		}
		if !errors.Is(err, ErrConfig) {
			t.Errorf("config %+v error %v does not wrap ErrConfig", cfg, err)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted invalid config %+v", cfg)
		}
	}
}

func TestBufferInsertLookup(t *testing.T) {
	b, err := New(Config{Entries: 4, MaxBlockLen: 4, MaxLiveIn: 2, LookupLat: 1})
	if err != nil {
		t.Fatal(err)
	}
	live := []uint64{10, 20}
	sigs := []uint64{100, 200, 300}
	if !b.Insert(7, live, sigs) {
		t.Fatal("in-geometry Insert rejected")
	}

	got, hit := b.Lookup(7, []uint64{10, 20})
	if !hit {
		t.Fatal("matching lookup missed")
	}
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Fatalf("hit returned %v, want %v", got, sigs)
	}

	if _, hit := b.Lookup(7, []uint64{10, 21}); hit {
		t.Fatal("lookup hit with mismatched live-in value")
	}
	if _, hit := b.Lookup(7, []uint64{10}); hit {
		t.Fatal("lookup hit with wrong live-in count")
	}
	if _, hit := b.Lookup(6, []uint64{10, 20}); hit {
		t.Fatal("lookup hit for a PC never inserted")
	}

	st := b.Stats
	if st.Lookups != 4 || st.Hits != 1 || st.ValMisses != 2 || st.TagMisses != 1 {
		t.Fatalf("stats %+v, want 4 lookups / 1 hit / 2 val misses / 1 tag miss", st)
	}
}

func TestBufferEviction(t *testing.T) {
	b, err := New(Config{Entries: 4, MaxBlockLen: 4, MaxLiveIn: 2, LookupLat: 1})
	if err != nil {
		t.Fatal(err)
	}
	// PCs 3 and 7 map to the same direct-mapped slot.
	b.Insert(3, []uint64{1}, []uint64{11, 12})
	b.Insert(7, []uint64{2}, []uint64{21, 22})
	if _, hit := b.Lookup(3, []uint64{1}); hit {
		t.Fatal("evicted recording still hits")
	}
	if _, hit := b.Lookup(7, []uint64{2}); !hit {
		t.Fatal("evicting recording does not hit")
	}
	if b.Stats.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", b.Stats.Evictions)
	}

	// Re-recording the same PC is an update, not an eviction.
	b.Insert(7, []uint64{3}, []uint64{31})
	if b.Stats.Evictions != 1 {
		t.Fatalf("same-PC update counted as eviction: %d", b.Stats.Evictions)
	}
	if _, hit := b.Lookup(7, []uint64{2}); hit {
		t.Fatal("stale live-ins hit after same-PC update")
	}
	if got, hit := b.Lookup(7, []uint64{3}); !hit || len(got) != 1 || got[0] != 31 {
		t.Fatalf("updated recording lookup = %v, %v", got, hit)
	}
}

func TestBufferInvalidate(t *testing.T) {
	b, err := New(Config{Entries: 4, MaxBlockLen: 4, MaxLiveIn: 2, LookupLat: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(5, []uint64{9}, []uint64{1, 2})
	if !b.Invalidate(5) {
		t.Fatal("Invalidate missed a present recording")
	}
	if b.Invalidate(5) {
		t.Fatal("second Invalidate reported a recording")
	}
	if b.Invalidate(1) {
		t.Fatal("Invalidate of same-slot different PC reported a recording")
	}
	if _, hit := b.Lookup(5, []uint64{9}); hit {
		t.Fatal("scrubbed recording resurrected")
	}
	if _, _, ok := b.Probe(5); ok {
		t.Fatal("Probe found a scrubbed recording")
	}
	if b.Stats.Invalidated != 1 {
		t.Fatalf("Invalidated = %d, want 1", b.Stats.Invalidated)
	}

	// A fresh recording after the scrub serves only its own live-ins.
	b.Insert(5, []uint64{10}, []uint64{3})
	if _, hit := b.Lookup(5, []uint64{9}); hit {
		t.Fatal("pre-scrub live-ins hit the post-scrub recording")
	}
	if _, hit := b.Lookup(5, []uint64{10}); !hit {
		t.Fatal("post-scrub recording missed")
	}
}

func TestBufferInsertRejectsOverGeometry(t *testing.T) {
	b, err := New(Config{Entries: 4, MaxBlockLen: 2, MaxLiveIn: 1, LookupLat: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Insert(1, []uint64{1}, []uint64{1, 2, 3}) {
		t.Fatal("Insert accepted sigs longer than MaxBlockLen")
	}
	if b.Insert(1, []uint64{1, 2}, []uint64{1}) {
		t.Fatal("Insert accepted more live-ins than MaxLiveIn")
	}
	if b.Insert(1, []uint64{1}, nil) {
		t.Fatal("Insert accepted an empty recording")
	}
	if b.Stats.Inserts != 0 {
		t.Fatalf("rejected inserts counted: %d", b.Stats.Inserts)
	}
	if _, hit := b.Lookup(1, []uint64{1}); hit {
		t.Fatal("rejected insert left a recording behind")
	}
}

func TestProbeReturnsCopies(t *testing.T) {
	b, err := New(Config{Entries: 4, MaxBlockLen: 4, MaxLiveIn: 2, LookupLat: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(2, []uint64{7}, []uint64{70, 71})
	live, sigs, ok := b.Probe(2)
	if !ok || len(live) != 1 || len(sigs) != 2 {
		t.Fatalf("Probe = %v, %v, %v", live, sigs, ok)
	}
	live[0], sigs[0] = 999, 999
	if _, hit := b.Lookup(2, []uint64{7}); !hit {
		t.Fatal("mutating Probe copies corrupted the buffer")
	}
}

func TestIndexWindowAt(t *testing.T) {
	windows := []analysis.TraceBlock{
		{Entry: 2, Len: 3, LiveIn: []isa.Reg{1, 2}},
		{Entry: 8, Len: 2, LiveIn: nil},
	}
	ix, err := NewIndex(10, windows)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Windows() != 2 {
		t.Fatalf("Windows() = %d, want 2", ix.Windows())
	}
	if w := ix.WindowAt(2); w == nil || w.Len != 3 {
		t.Fatalf("WindowAt(2) = %+v", w)
	}
	if w := ix.WindowAt(8); w == nil || w.Len != 2 {
		t.Fatalf("WindowAt(8) = %+v", w)
	}
	for _, pc := range []uint64{0, 1, 3, 7, 9, 10, 1 << 40} {
		if w := ix.WindowAt(pc); w != nil {
			t.Fatalf("WindowAt(%d) = %+v, want nil", pc, w)
		}
	}
}

func TestIndexRejectsBadWindows(t *testing.T) {
	cases := []struct {
		name    string
		codeLen int
		windows []analysis.TraceBlock
	}{
		{"entry outside code", 4, []analysis.TraceBlock{{Entry: 4, Len: 2}}},
		{"window past end", 4, []analysis.TraceBlock{{Entry: 3, Len: 2}}},
		{"duplicate entry", 8, []analysis.TraceBlock{{Entry: 1, Len: 2}, {Entry: 1, Len: 3}}},
	}
	for _, tc := range cases {
		if _, err := NewIndex(tc.codeLen, tc.windows); err == nil {
			t.Errorf("%s: NewIndex accepted %+v", tc.name, tc.windows)
		} else if !errors.Is(err, ErrConfig) {
			t.Errorf("%s: error %v does not wrap ErrConfig", tc.name, err)
		}
	}
}
