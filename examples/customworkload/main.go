// Custom workload: shows the two ways to bring your own program to the
// simulator — writing assembly directly with the program.Builder, and
// defining a new workload.Profile — then runs both through the DIE-IRB
// machine.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	handWritten()
	profileBased()
}

// handWritten assembles a dot-product kernel by hand and runs it on the
// DIE-IRB core directly, verifying against the functional simulator.
func handWritten() {
	b := program.NewBuilder("dotproduct")
	const n = 4096
	x := b.Array(n, func(i int) uint64 { return uint64(i % 7) })
	y := b.Array(n, func(i int) uint64 { return uint64(i % 5) })

	b.LoadConst(1, int64(x)) // r1 = &x
	b.LoadConst(2, int64(y)) // r2 = &y
	b.LoadConst(3, n)        // r3 = count
	b.Label("loop")
	b.EmitImm(isa.OpLoad, 4, 1, 0) // r4 = *x
	b.EmitImm(isa.OpLoad, 5, 2, 0) // r5 = *y
	b.EmitOp(isa.OpMul, 6, 4, 5)   // r6 = r4*r5
	b.EmitOp(isa.OpAdd, 7, 7, 6)   // r7 += r6
	b.EmitImm(isa.OpAddi, 1, 1, 8)
	b.EmitImm(isa.OpAddi, 2, 2, 8)
	b.EmitImm(isa.OpAddi, 3, 3, -1)
	b.Branch(isa.OpBne, 3, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	prog := b.MustBuild()

	c, err := core.New(core.BaseDIEIRB(), prog)
	if err != nil {
		log.Fatal(err)
	}
	// Verify the timing core against a functional execution as it runs.
	oracle := fsim.New(prog)
	c.OnCommit = func(rec *fsim.Retired) {
		want, oerr := oracle.Step()
		if oerr != nil || rec.Result != want.Result || rec.PC != want.PC {
			log.Fatalf("timing core diverged at pc %d", rec.PC)
		}
	}
	if err := c.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-written dot product: %d instructions in %d cycles (IPC %.3f) on DIE-IRB\n",
		c.Stats.Committed, c.Stats.Cycles, c.Stats.IPC())
	fmt.Printf("  duplicate stream: %d reuse hits, %d ALU executions\n",
		c.Stats.IRBReuseHits, c.Stats.DupFUExec)
}

// profileBased defines a new synthetic profile — a small-alphabet
// histogram-style kernel — and runs it through the high-level driver.
func profileBased() {
	histogram := workload.Profile{
		Name: "histogram", Seed: 7,
		InnerIters: 16, Unroll: 2,
		InvariantOps: 8, IntOps: 6, Loads: 2, Stores: 1,
		CondBranches: 1, ArrayWords: 1 << 11, Stride: 1,
		ValueRange: 32, ChainDepth: 2,
	}
	r, err := sim.Run("DIE-IRB", core.BaseDIEIRB(), histogram, sim.Options{
		Insns:  100_000,
		Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom profile %q: IPC %.3f, IRB reuse rate %.2f, PC hit rate %.2f\n",
		r.Bench, r.IPC, r.ReuseRate(), r.PCHitRate())
}
