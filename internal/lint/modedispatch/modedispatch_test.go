package modedispatch

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestTestdataWantComments drives the pass over the annotated testdata
// package, which imports the real core package so the Mode type resolves.
func TestTestdataWantComments(t *testing.T) {
	dir := filepath.Join("testdata", "src", "a")
	linttest.Run(t, dir, func() ([]lint.Finding, error) {
		return CheckPackage(lint.NewChecker(), dir)
	})
}

// TestRepoIsClean is the repository's own gate: no layer above
// internal/core may compare modes against literals.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks every core-importing package from source; skipped in -short")
	}
	findings, err := Pass{}.Check(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestEmptyTree keeps the pass usable on trees without the core package.
func TestEmptyTree(t *testing.T) {
	findings, err := Pass{}.Check(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("unexpected findings on empty tree: %v", findings)
	}
}
