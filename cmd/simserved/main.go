// Command simserved serves the simulator over HTTP: sweep jobs in, stats
// JSON out, with a content-addressed result cache so repeated cells cost
// a map probe instead of a simulation. See README's "Serving" section
// for the API and curl examples.
//
// Usage:
//
//	go run ./cmd/simserved                      # listen on :8344
//	go run ./cmd/simserved -addr :9000 -workers 4 -queue 16
//	go run ./cmd/simserved -insns 100000 -verify -pprof
//
// SIGINT/SIGTERM drains gracefully: new runs get 503, /readyz fails so
// load balancers stop routing, and in-flight runs finish before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	workers := flag.Int("workers", 2, "concurrent runs")
	queue := flag.Int("queue", 0, "admitted requests bound, running plus waiting (default workers+8)")
	maxCells := flag.Int("max-cells", 4096, "per-request grid cell budget")
	cacheEntries := flag.Int("cache-entries", 1024, "result cache bound (cells)")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful shutdown bound after SIGTERM")
	insns := cliutil.Insns(flag.CommandLine, sim.DefaultInsns)
	verify := cliutil.Verify(flag.CommandLine)
	jobs := cliutil.Jobs(flag.CommandLine)
	cellTimeout := flag.Duration("cell-timeout", 0,
		"per-cell wall-clock bound with one retry (0 = unbounded)")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxCells:     *maxCells,
		CacheEntries: *cacheEntries,
		Parallelism:  *jobs,
		DefaultInsns: *insns,
		Verify:       *verify,
		CellTimeout:  *cellTimeout,
		EnablePprof:  *enablePprof,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "simserved: draining (new runs get 503; in-flight runs finish)")
		srv.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		done <- httpSrv.Shutdown(shutCtx)
	}()

	fmt.Fprintf(os.Stderr, "simserved: listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "simserved:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "simserved: drain:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "simserved: drained cleanly")
}
