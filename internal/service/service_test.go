package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/sim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postRun posts a run request body and decodes the response.
func postRun(t *testing.T, url, body string) (int, Run, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/runs: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	var run Run
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &run); err != nil {
			t.Fatalf("decoding run: %v\n%s", err, data)
		}
	}
	return resp.StatusCode, run, resp.Header
}

// TestModesEndpoint: GET /v1/modes lists every registered mode with its
// capability summary and knobs, straight from the core registry.
func TestModesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := get(t, ts.URL+"/v1/modes")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/modes: status %d", code)
	}
	var resp struct {
		Modes []struct {
			Name    string `json:"name"`
			Streams int    `json:"streams"`
			Compare string `json:"compare"`
			Detects bool   `json:"detects"`
			Knobs   []struct {
				Name string `json:"name"`
				Doc  string `json:"doc"`
			} `json:"knobs"`
		} `json:"modes"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decoding: %v\n%s", err, body)
	}
	byName := map[string]int{}
	for i, m := range resp.Modes {
		byName[m.Name] = i
		if m.Streams < 1 || m.Compare == "" {
			t.Errorf("mode %q: incomplete descriptor %+v", m.Name, m)
		}
	}
	for _, want := range []string{"SIE", "DIE", "DIE-IRB", "SIE-IRB", "REPLAY", "TMR"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("mode %q missing from /v1/modes", want)
		}
	}
	tmr := resp.Modes[byName["TMR"]]
	if !tmr.Detects || tmr.Streams != 3 || len(tmr.Knobs) == 0 {
		t.Errorf("TMR descriptor wrong: %+v", tmr)
	}
	if tmr.Knobs[0].Name != "vote-width" || tmr.Knobs[0].Doc == "" {
		t.Errorf("TMR knob wrong: %+v", tmr.Knobs)
	}
}

// TestRunRequestModes: the modes field resolves through the registry, and
// an unknown mode is a structured 400 listing the valid names.
func TestRunRequestModes(t *testing.T) {
	ctl := stubRunner(t)
	close(ctl.release)
	_, ts := newTestServer(t, Config{})

	code, run, _ := postRun(t, ts.URL, `{"modes":["SIE","TMR"],"benchmarks":["bzip2"],"insns":2000}`)
	if code != http.StatusOK {
		t.Fatalf("modes-only request: status %d", code)
	}
	if run.Cells != 2 {
		t.Fatalf("modes-only request expanded to %d cells, want 2", run.Cells)
	}

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"modes":["NMR-9"],"benchmarks":["bzip2"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error      string   `json:"error"`
		ValidModes []string `json:"valid_modes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "NMR-9") {
		t.Errorf("error %q does not name the bad mode", e.Error)
	}
	if len(e.ValidModes) < 6 {
		t.Errorf("valid_modes %v does not list the registry", e.ValidModes)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

// stubControl coordinates with a substituted grid runner: every
// invocation signals started and then blocks until release is closed or
// the run's context is cancelled.
type stubControl struct {
	started chan struct{}
	release chan struct{}
}

// stubRunner replaces the runner seams with a controllable fake so the
// backpressure, cancellation and drain paths can be exercised without
// burning simulation time. Restored on test cleanup; tests using it must
// not run in parallel.
func stubRunner(t *testing.T) *stubControl {
	t.Helper()
	ctl := &stubControl{started: make(chan struct{}, 16), release: make(chan struct{})}
	origRun, origAttach := runnerRun, attachTraces
	attachTraces = func([]runner.Job) error { return nil }
	runnerRun = func(ctx context.Context, jobs []runner.Job, _ runner.Options) ([]runner.Outcome, error) {
		ctl.started <- struct{}{}
		outs := make([]runner.Outcome, len(jobs))
		select {
		case <-ctl.release:
			for i := range outs {
				outs[i] = runner.Outcome{
					Job:    jobs[i],
					Result: sim.Result{Bench: jobs[i].Profile.Name, Config: jobs[i].Name},
				}
			}
			return outs, nil
		case <-ctx.Done():
			for i := range outs {
				outs[i] = runner.Outcome{Job: jobs[i], Err: ctx.Err()}
			}
			return outs, ctx.Err()
		}
	}
	t.Cleanup(func() { runnerRun, attachTraces = origRun, origAttach })
	return ctl
}

const smallRun = `{"configs":["DIE-IRB"],"benchmarks":["gzip"],"insns":2000}`

// TestServiceCacheHitOnRepeat is the end-to-end memoization check: the
// same job posted twice simulates once, the repeat is served from the
// result cache bit-identically, and the /metrics counters move to match.
func TestServiceCacheHitOnRepeat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	code, first, _ := postRun(t, ts.URL, smallRun)
	if code != http.StatusOK {
		t.Fatalf("first POST: code %d", code)
	}
	if first.Status != StatusDone || first.Cells != 1 || first.CacheHits != 0 {
		t.Fatalf("first run: status=%s cells=%d hits=%d", first.Status, first.Cells, first.CacheHits)
	}
	if len(first.Results) != 1 || first.Results[0].CacheHit || first.Results[0].Result == nil {
		t.Fatalf("first run results malformed: %+v", first.Results)
	}
	if first.Results[0].Result.IPC <= 0 {
		t.Fatalf("first run IPC = %v, want > 0", first.Results[0].Result.IPC)
	}

	code, second, _ := postRun(t, ts.URL, smallRun)
	if code != http.StatusOK {
		t.Fatalf("second POST: code %d", code)
	}
	if second.Status != StatusDone || second.CacheHits != 1 {
		t.Fatalf("second run: status=%s hits=%d, want done with 1 cache hit", second.Status, second.CacheHits)
	}
	if !second.Results[0].CacheHit {
		t.Fatal("second run cell not marked as a cache hit")
	}
	if !reflect.DeepEqual(first.Results[0].Result, second.Results[0].Result) {
		t.Error("cached result differs from the simulated one")
	}

	// The observability surface must reflect what just happened.
	code, metrics := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: code %d", code)
	}
	for _, want := range []string{
		`simserved_requests_total{route="POST /v1/runs",code="200"} 2`,
		`simserved_runs_total{status="done"} 2`,
		`simserved_cache_hits_total 1`,
		`simserved_cache_misses_total 1`,
		`simserved_cells_total{source="simulated"} 1`,
		`simserved_cells_total{source="cache"} 1`,
		`simserved_run_latency_seconds_count 2`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The run records stay retrievable afterwards.
	code, body := get(t, ts.URL+"/v1/runs/"+first.ID)
	if code != http.StatusOK || !strings.Contains(body, `"status": "done"`) {
		t.Errorf("GET run %s: code %d body %s", first.ID, code, body)
	}
}

// TestServiceBackpressure saturates the admission queue and checks the
// overflow request is refused with 429 + Retry-After while the admitted
// run still completes.
func TestServiceBackpressure(t *testing.T) {
	ctl := stubRunner(t)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	type result struct {
		code int
		run  Run
	}
	firstDone := make(chan result, 1)
	go func() {
		code, run, _ := postRun(t, ts.URL, smallRun)
		firstDone <- result{code, run}
	}()
	<-ctl.started // the first run now holds the only queue token

	code, _, hdr := postRun(t, ts.URL, smallRun)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: code %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	close(ctl.release)
	first := <-firstDone
	if first.code != http.StatusOK || first.run.Status != StatusDone {
		t.Fatalf("admitted run: code %d status %s, want 200 done", first.code, first.run.Status)
	}
}

// TestServiceClientDisconnect covers both cancellation points: a client
// vanishing mid-simulation cancels the in-flight run, and one vanishing
// while waiting for a slot cancels the queued run without it ever
// starting.
func TestServiceClientDisconnect(t *testing.T) {
	ctl := stubRunner(t)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	waitStatus := func(id, want string) {
		t.Helper()
		terminal := want == StatusDone || want == StatusFailed || want == StatusCancelled
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if run, ok := s.snapshotRun(id); ok && run.Status == want {
				if terminal && run.Finished == nil {
					t.Fatalf("run %s reached %s without a finish time", id, want)
				}
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		run, _ := s.snapshotRun(id)
		t.Fatalf("run %s never reached %s (last: %+v)", id, want, run)
	}

	post := func(ctx context.Context) chan error {
		done := make(chan error, 1)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/runs", strings.NewReader(smallRun))
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if resp != nil {
				resp.Body.Close()
			}
			done <- err
		}()
		return done
	}

	// First client: disconnects while its run is simulating.
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := post(ctx1)
	<-ctl.started
	// Second client: disconnects while queued behind the first. Wait
	// until the run is registered (and therefore parked on the slot
	// acquire) before pulling the plug, or the cancel can outrace the
	// request ever reaching the server.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := post(ctx2)
	waitStatus("run-000002", StatusQueued)

	cancel2()
	if err := <-done2; err == nil {
		t.Fatal("queued request returned without error despite cancellation")
	}
	waitStatus("run-000002", StatusCancelled)
	select {
	case <-ctl.started:
		t.Fatal("cancelled queued run was dispatched to the runner")
	default:
	}

	cancel1()
	if err := <-done1; err == nil {
		t.Fatal("in-flight request returned without error despite cancellation")
	}
	waitStatus("run-000001", StatusCancelled)
}

// TestServiceGracefulDrain checks BeginDrain semantics: new work is
// refused with 503, readiness fails, and the already-accepted run is
// allowed to finish.
func TestServiceGracefulDrain(t *testing.T) {
	ctl := stubRunner(t)
	s, ts := newTestServer(t, Config{Workers: 1})

	type result struct {
		code int
		run  Run
	}
	acceptedDone := make(chan result, 1)
	go func() {
		code, run, _ := postRun(t, ts.URL, smallRun)
		acceptedDone <- result{code, run}
	}()
	<-ctl.started

	s.BeginDrain()
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: code %d, want 503", code)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while draining: code %d, want 200 (liveness is not readiness)", code)
	}
	code, _, hdr := postRun(t, ts.URL, smallRun)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: code %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}

	close(ctl.release)
	accepted := <-acceptedDone
	if accepted.code != http.StatusOK || accepted.run.Status != StatusDone {
		t.Fatalf("accepted run after drain: code %d status %s, want 200 done", accepted.code, accepted.run.Status)
	}
}

// TestServiceValidation walks the request-rejection paths.
func TestServiceValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxCells: 1})

	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{"configs":`, http.StatusBadRequest},
		{"no configs", `{}`, http.StatusBadRequest},
		{"unknown config", `{"configs":["no-such-machine"]}`, http.StatusBadRequest},
		{"unknown benchmark", `{"configs":["DIE"],"benchmarks":["no-such-bench"]}`, http.StatusBadRequest},
		{"bad fault site", `{"configs":["DIE"],"fault":{"site":"nowhere","rate":0.1}}`, http.StatusBadRequest},
		{"over cell budget", `{"configs":["DIE","SIE"],"benchmarks":["gzip"]}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		if code, _, _ := postRun(t, ts.URL, c.body); code != c.want {
			t.Errorf("%s: code %d, want %d", c.name, code, c.want)
		}
	}

	if code, _ := get(t, ts.URL+"/v1/runs/run-999999"); code != http.StatusNotFound {
		t.Errorf("unknown run: code %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/v1/experiments/no-such-exp"); code != http.StatusNotFound {
		t.Errorf("unknown experiment: code %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/v1/experiments/config?format=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad experiment format: code %d, want 400", code)
	}
}

// TestServiceDiscovery checks the list endpoints a client scripts
// against.
func TestServiceDiscovery(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body := get(t, ts.URL+"/v1/configs")
	if code != http.StatusOK {
		t.Fatalf("/v1/configs: code %d", code)
	}
	for _, name := range []string{"DIE-IRB", "SIE", "DIE-IRB-1024", "capture/value"} {
		if !strings.Contains(body, fmt.Sprintf("%q", name)) {
			t.Errorf("/v1/configs missing %q", name)
		}
	}

	code, body = get(t, ts.URL+"/v1/experiments")
	if code != http.StatusOK || !strings.Contains(body, `"headline"`) {
		t.Errorf("/v1/experiments: code %d body %s", code, body)
	}

	// The config experiment renders without simulating: a fast check of
	// the full experiment path including format negotiation.
	code, body = get(t, ts.URL+"/v1/experiments/config?format=csv")
	if code != http.StatusOK || body == "" {
		t.Errorf("/v1/experiments/config: code %d, empty=%t", code, body == "")
	}

	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: code %d body %q", code, body)
	}
	if code, _ = get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz: code %d", code)
	}
}
