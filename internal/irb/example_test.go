package irb_test

import (
	"fmt"

	"repro/internal/irb"
)

// Example shows the reuse buffer's lifecycle: an instruction's first
// execution misses and is inserted at commit; a recurrence with the same
// operands passes the reuse test and can skip the functional units; a
// recurrence with different operands is a reuse miss.
func Example() {
	buf, err := irb.New(irb.Default())
	if err != nil {
		panic(err)
	}
	const pc = 0x42

	if _, hit := buf.Lookup(1, pc); !hit {
		fmt.Println("first execution: PC miss, execute on an ALU")
	}
	buf.Insert(2, pc, irb.Entry{Src1: 10, Src2: 20, Result: 30})

	if e, hit := buf.Lookup(3, pc); hit && e.Matches(10, 20) {
		fmt.Printf("same operands: reuse hit, result %d without an ALU\n", e.Result)
	}
	if e, hit := buf.Lookup(4, pc); hit && !e.Matches(10, 99) {
		fmt.Println("different operands: reuse miss, execute on an ALU")
	}
	// Output:
	// first execution: PC miss, execute on an ALU
	// same operands: reuse hit, result 30 without an ALU
	// different operands: reuse miss, execute on an ALU
}
