package sim_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExampleRun simulates one benchmark on the paper's proposed machine with
// oracle verification enabled.
func ExampleRun() {
	profile, _ := workload.ByName("bzip2")
	r, err := sim.Run("DIE-IRB", core.BaseDIEIRB(), profile, sim.Options{
		Insns:  50_000,
		Verify: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("bench=%s committed=%d reuse>0=%v\n",
		r.Bench, r.Core.Committed, r.ReuseRate() > 0)
	// Output: bench=bzip2 committed=50000 reuse>0=true
}
