package core

import (
	"errors"
	"testing"

	"repro/internal/fault"
)

// TestNewBatchSimValidation: the batch shim rejects lane sets it cannot
// honour before the core runs a single cycle.
func TestNewBatchSimValidation(t *testing.T) {
	prog := loopProgram(50)
	mk := func() *Core {
		c, err := New(BaseDIE(), prog)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	if _, err := NewBatchSim(mk(), nil); err == nil {
		t.Error("zero lanes accepted")
	}

	occupied := mk()
	inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	occupied.SetInjector(inj)
	if _, err := NewBatchSim(occupied, []FaultInjector{nil}); err == nil {
		t.Error("core with an installed injector accepted")
	}
}

// TestBatchSimLaneAccounting: construction resets lane injectors and
// installs the shim; eviction retires lanes one by one, and draining a
// batch with no fault-free lane aborts the leader with ErrBatchDrained.
func TestBatchSimLaneAccounting(t *testing.T) {
	prog := loopProgram(50)
	c, err := New(BaseDIE(), prog)
	if err != nil {
		t.Fatal(err)
	}
	var injs []FaultInjector
	for seed := uint64(1); seed <= 2; seed++ {
		inj, ferr := fault.New(fault.Config{Site: fault.FU, Rate: 0.9, Seed: seed})
		if ferr != nil {
			t.Fatal(ferr)
		}
		inj.FUResult(1, 0, false, 0) // consumed state: NewBatchSim must Reset it
		injs = append(injs, inj)
	}
	bs, err := NewBatchSim(c, injs)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Lanes() != 2 || bs.Active() != 2 {
		t.Fatalf("Lanes/Active = %d/%d, want 2/2", bs.Lanes(), bs.Active())
	}
	for i, inj := range injs {
		if inj.(*fault.Injector).Injected != 0 {
			t.Errorf("lane %d injector not reset at construction", i)
		}
	}

	// At rate 0.9 both lanes fire on the first probes; with no fault-free
	// lane the leader must drain out of Run with ErrBatchDrained.
	err = c.Run()
	if !errors.Is(err, ErrBatchDrained) {
		t.Fatalf("Run() = %v, want ErrBatchDrained", err)
	}
	if bs.Active() != 0 {
		t.Errorf("Active = %d after drain, want 0", bs.Active())
	}
	for i := range injs {
		if seq, div := bs.Diverged(i); !div || seq == 0 {
			t.Errorf("lane %d: Diverged = (%d,%t), want a nonzero strike seq", i, seq, div)
		}
	}
}
