package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/program"
)

// randomProgram generates a random but well-formed program: a loop whose
// body mixes ALU, memory, FP and branch instructions with random operands
// over disjoint register classes, guaranteeing termination via a dedicated
// counter register. It is the fuzzing companion to the hand-written test
// programs: any timing-model bug that corrupts dataflow shows up as an
// oracle divergence on some seed.
func randomProgram(seed uint64) *program.Program {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	b := program.NewBuilder("random")
	base := b.Array(256, func(i int) uint64 { return rng.Uint64() >> 34 })

	const (
		ctr  isa.Reg = 1 // loop counter: never touched by random ops
		addr isa.Reg = 2 // memory base: never touched by random ops
	)
	b.LoadConst(ctr, int64(rng.IntN(150)+20))
	b.LoadConst(addr, int64(base))
	// General-purpose pools for random operands.
	intRegs := []isa.Reg{3, 4, 5, 6, 7, 8, 9, 10}
	fpRegs := []isa.Reg{isa.FP0 + 1, isa.FP0 + 2, isa.FP0 + 3, isa.FP0 + 4}
	for _, r := range intRegs {
		b.LoadConst(r, int64(rng.IntN(1000)))
	}
	for i, r := range fpRegs {
		b.EmitOp(isa.OpCvtIF, r, intRegs[i], 0)
	}

	intOps := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpSlt, isa.OpSltu, isa.OpMul,
		isa.OpDiv, isa.OpRem, isa.OpDivu}
	fpOps := []isa.Op{isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpFNeg, isa.OpFAbs}

	pick := func(pool []isa.Reg) isa.Reg { return pool[rng.IntN(len(pool))] }

	b.Label("loop")
	bodyLen := rng.IntN(24) + 8
	for i := 0; i < bodyLen; i++ {
		switch rng.IntN(10) {
		case 0, 1, 2, 3, 4: // integer ALU
			op := intOps[rng.IntN(len(intOps))]
			b.EmitOp(op, pick(intRegs), pick(intRegs), pick(intRegs))
		case 5: // FP
			op := fpOps[rng.IntN(len(fpOps))]
			b.EmitOp(op, pick(fpRegs), pick(fpRegs), pick(fpRegs))
		case 6: // load within the array
			off := int32(rng.IntN(256) * 8)
			b.EmitImm(isa.OpLoad, pick(intRegs), addr, off)
		case 7: // store within the array
			off := int32(rng.IntN(256) * 8)
			b.Emit(isa.Instr{Op: isa.OpStore, Src1: addr, Src2: pick(intRegs), Imm: off})
		case 8: // short forward data-dependent branch
			label := labelName(seed, i)
			b.Branch(isa.OpBlt, pick(intRegs), pick(intRegs), label)
			b.EmitOp(isa.OpAdd, pick(intRegs), pick(intRegs), pick(intRegs))
			b.Label(label)
		case 9: // immediate op
			b.EmitImm(isa.OpAddi, pick(intRegs), pick(intRegs), int32(rng.IntN(64)-32))
		}
	}
	b.EmitImm(isa.OpAddi, ctr, ctr, -1)
	b.Branch(isa.OpBne, ctr, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	return b.MustBuild()
}

func labelName(seed uint64, i int) string {
	return "rnd_" + string(rune('a'+seed%26)) + "_" + string(rune('a'+i%26)) +
		string(rune('a'+(i/26)%26))
}

// TestRandomProgramsMatchOracle fuzzes the pipeline: for random programs
// and every execution mode, the retired stream must equal the functional
// execution exactly.
func TestRandomProgramsMatchOracle(t *testing.T) {
	f := func(seedRaw uint16) bool {
		prog := randomProgram(uint64(seedRaw))
		for _, cfg := range allModes() {
			runVerified(t, cfg, prog)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestRandomProgramsDIEInvariants fuzzes the dual-execution bookkeeping:
// copies committed must be exactly twice the architected count and every
// random program must produce identical architected counts in all modes.
func TestRandomProgramsDIEInvariants(t *testing.T) {
	f := func(seedRaw uint16) bool {
		prog := randomProgram(uint64(seedRaw))
		sie := runVerified(t, quicken(BaseSIE()), prog)
		die := runVerified(t, quicken(BaseDIE()), prog)
		irb := runVerified(t, quicken(BaseDIEIRB()), prog)
		return die.Stats.CopiesCommitted == 2*die.Stats.Committed &&
			irb.Stats.CopiesCommitted == 2*irb.Stats.Committed &&
			sie.Stats.Committed == die.Stats.Committed &&
			sie.Stats.Committed == irb.Stats.Committed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
