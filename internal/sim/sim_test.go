package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workload"
)

func gzipProfile(t *testing.T) workload.Profile {
	t.Helper()
	p, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	return p
}

func TestRunVerifiedAllModes(t *testing.T) {
	p := gzipProfile(t)
	for _, nc := range HeadlineConfigs() {
		r, err := Run(nc.Name, nc.Cfg, p, Options{Insns: 30_000, Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", nc.Name, err)
		}
		if r.Core.Committed != 30_000 {
			t.Errorf("%s: committed %d, want 30000", nc.Name, r.Core.Committed)
		}
		if r.IPC <= 0 {
			t.Errorf("%s: IPC %v", nc.Name, r.IPC)
		}
		if r.Bench != "gzip" || r.Config != nc.Name {
			t.Errorf("%s: result labels wrong: %+v", nc.Name, r)
		}
	}
}

func TestEqualInstructionBudgets(t *testing.T) {
	// IPC comparisons require identical committed counts across configs.
	p := gzipProfile(t)
	var counts []uint64
	for _, nc := range Fig2Configs()[:3] {
		r, err := Run(nc.Name, nc.Cfg, p, Options{Insns: 25_000})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, r.Core.Committed)
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Errorf("committed counts differ: %v", counts)
		}
	}
}

func TestIRBStatsPresentOnlyWithIRB(t *testing.T) {
	p := gzipProfile(t)
	rs, err := Run("SIE", core.BaseSIE(), p, Options{Insns: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if rs.IRB != nil {
		t.Error("SIE result has IRB stats")
	}
	ri, err := Run("DIE-IRB", core.BaseDIEIRB(), p, Options{Insns: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if ri.IRB == nil || ri.IRB.Lookups == 0 {
		t.Error("DIE-IRB result missing IRB stats")
	}
	if ri.ReuseRate() <= 0 || ri.PCHitRate() <= 0 {
		t.Errorf("reuse/pc-hit rates: %v / %v", ri.ReuseRate(), ri.PCHitRate())
	}
}

func TestRunWithInjector(t *testing.T) {
	p := gzipProfile(t)
	inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run("DIE", core.BaseDIE(), p, Options{Insns: 50_000, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Injected == 0 {
		t.Fatal("injector never fired")
	}
	if r.Core.FaultsDetected == 0 {
		t.Error("no faults detected by check-&-retire")
	}
}

func TestFig2ConfigNames(t *testing.T) {
	cfgs := Fig2Configs()
	if len(cfgs) != 9 {
		t.Fatalf("got %d configs, want 9 (SIE + 8 DIE variants)", len(cfgs))
	}
	if cfgs[0].Name != "SIE" {
		t.Errorf("first config = %s, want SIE", cfgs[0].Name)
	}
	for _, nc := range cfgs[1:] {
		if !strings.HasPrefix(nc.Name, "DIE") {
			t.Errorf("config %s should be a DIE variant", nc.Name)
		}
		if err := nc.Cfg.Validate(); err != nil {
			t.Errorf("%s: %v", nc.Name, err)
		}
	}
	// The doubled variants must actually double the base quantities.
	base := core.BaseDIE()
	twoALU := cfgs[2].Cfg
	if twoALU.RUUSize != base.RUUSize {
		t.Error("2xALU changed RUU size")
	}
	all := cfgs[8].Cfg
	if all.RUUSize != 2*base.RUUSize || all.IssueWidth != 2*base.IssueWidth {
		t.Error("2xALU-2xRUU-2xWidths did not double RUU and widths")
	}
}

func TestSweepConfigGenerators(t *testing.T) {
	if got := len(IRBSizeConfigs([]int{128, 1024})); got != 2 {
		t.Errorf("IRBSizeConfigs: %d", got)
	}
	for _, nc := range ConflictConfigs() {
		if err := nc.Cfg.Validate(); err != nil {
			t.Errorf("%s: %v", nc.Name, err)
		}
	}
	for _, nc := range PortConfigs([]int{1, 4}) {
		if err := nc.Cfg.Validate(); err != nil {
			t.Errorf("%s: %v", nc.Name, err)
		}
	}
	pc := PortConfigs([]int{4})[0].Cfg
	if pc.IRB.ReadPorts != 4 || pc.IRB.WritePorts != 2 || pc.IRB.RWPorts != 2 {
		t.Errorf("PortConfigs(4) = %+v, want the paper's 4R/2W/2RW", pc.IRB)
	}
}

func TestUnknownBenchmarkError(t *testing.T) {
	bad := workload.Profile{} // invalid: fails generation
	if _, err := Run("SIE", core.BaseSIE(), bad, Options{Insns: 1000}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestFastForwardSkipsWarmup(t *testing.T) {
	p := gzipProfile(t)
	plain, err := Run("SIE", core.BaseSIE(), p, Options{Insns: 30_000, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	ffwd, err := Run("SIE", core.BaseSIE(), p, Options{Insns: 30_000, Verify: true, FastForward: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	// Both runs commit the same budget, but the fast-forwarded one
	// measures a different (post-warmup) region of the execution.
	if ffwd.Core.Committed != plain.Core.Committed {
		t.Errorf("committed %d vs %d", ffwd.Core.Committed, plain.Core.Committed)
	}
	if ffwd.Core.Cycles == plain.Core.Cycles {
		t.Error("fast-forwarded run measured an identical region (suspicious)")
	}
}

func TestFastForwardDeterministic(t *testing.T) {
	p := gzipProfile(t)
	opts := Options{Insns: 20_000, FastForward: 30_000}
	a, err := Run("SIE", core.BaseSIE(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("SIE", core.BaseSIE(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Core != b.Core {
		t.Error("fast-forwarded runs are not deterministic")
	}
}

func TestPreflightRejectsBrokenProgram(t *testing.T) {
	// r2 is read but never written: the analysis preflight must reject
	// the program with a structured diagnostic before cycle 0 — no panic.
	b := program.NewBuilder("broken")
	b.EmitOp(isa.OpAdd, 1, 2, isa.ZeroReg)
	b.Emit(isa.Instr{Op: isa.OpHalt})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run("DIE-IRB", core.BaseDIEIRB(), workload.Profile{}, Options{
		Insns: 10_000, Program: prog,
	})
	if err == nil {
		t.Fatal("Run accepted an ill-formed program")
	}
	var d *analysis.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("error %v does not carry *analysis.Diagnostic", err)
	}
	if d.Kind != analysis.KindReadBeforeWrite {
		t.Errorf("kind = %s, want %s", d.Kind, analysis.KindReadBeforeWrite)
	}
	if !strings.Contains(err.Error(), "preflight") {
		t.Errorf("error %q does not mention the preflight", err)
	}
}

func TestRunProgramOverride(t *testing.T) {
	// A hand-written kernel runs verified through the full timing core; it
	// halts well before the budget, which Program mode permits.
	prog, _ := workload.KernelHistogram(512)
	r, err := Run("DIE-IRB", core.BaseDIEIRB(), workload.Profile{}, Options{
		Insns: 200_000, Verify: true, Program: prog,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bench != "histogram" {
		t.Errorf("bench = %q, want histogram", r.Bench)
	}
	if r.Core.Committed == 0 || r.IPC <= 0 {
		t.Errorf("kernel did not execute: %+v", r.Core)
	}
}

func TestProgramForMatchesRunContext(t *testing.T) {
	// The program ProgramFor hands static tooling must be the exact
	// program a run would execute: same options, same bytes.
	p := gzipProfile(t)
	opts := Options{Insns: 30_000, Seed: 99}
	a, err := ProgramFor(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ProgramFor(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Code) != len(b2.Code) {
		t.Fatalf("ProgramFor not deterministic: %d vs %d instrs", len(a.Code), len(b2.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b2.Code[i] {
			t.Fatalf("ProgramFor not deterministic at pc %d", i)
		}
	}
	unseeded, err := ProgramFor(p, Options{Insns: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	same := len(unseeded.Code) == len(a.Code)
	if same {
		same = false
		for i := range a.Code {
			if a.Code[i] != unseeded.Code[i] {
				same = true // any difference proves the seed was applied
				break
			}
		}
		if !same {
			t.Error("Seed option did not perturb the generated program")
		}
	}
}
