// Quickstart: simulate one benchmark on the three machines the paper
// compares — a conventional superscalar (SIE), the dual-execution machine
// (DIE) that runs every instruction twice for soft-error protection, and
// the proposed DIE-IRB whose duplicate stream is served by an instruction
// reuse buffer — and print the IPC cost of redundancy with and without
// the IRB.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	profile, ok := workload.ByName("bzip2")
	if !ok {
		log.Fatal("bzip2 profile missing")
	}
	opts := sim.Options{Insns: 200_000, Verify: true}

	machines := []sim.NamedConfig{
		{Name: "SIE", Cfg: core.BaseSIE()},
		{Name: "DIE", Cfg: core.BaseDIE()},
		{Name: "DIE-IRB", Cfg: core.BaseDIEIRB()},
	}

	var sie float64
	for _, m := range machines {
		r, err := sim.Run(m.Name, m.Cfg, profile, opts)
		if err != nil {
			log.Fatal(err)
		}
		switch m.Name {
		case "SIE":
			sie = r.IPC
			fmt.Printf("%-8s IPC %.3f  (baseline, no redundancy)\n", m.Name, r.IPC)
		case "DIE":
			fmt.Printf("%-8s IPC %.3f  (every instruction executed twice: %.1f%% slower)\n",
				m.Name, r.IPC, stats.PctLoss(sie, r.IPC))
		case "DIE-IRB":
			fmt.Printf("%-8s IPC %.3f  (duplicates reuse prior results: %.1f%% slower, "+
				"%.0f%% of duplicate work served by the IRB)\n",
				m.Name, r.IPC, stats.PctLoss(sie, r.IPC), 100*r.ReuseRate())
		}
	}
	fmt.Println("\nEvery run above was verified instruction-by-instruction against")
	fmt.Println("an independent functional execution of the same program.")
}
