package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/backoff"
	"repro/internal/fabric"
	"repro/internal/runner"
	"repro/internal/service/api"
	"repro/internal/sim"
)

// This file is the service side of the sweep fabric: the coordinator's
// lease endpoints, the per-run server-sent event streams, the crash-safe
// run journal hooks, and the boot-time journal recovery that lets a
// restarted coordinator resume from its last completed cell.

// retryAfter renders a jittered Retry-After header value from the shared
// backoff helper. Jitter matters here for the same reason it does in the
// fabric's lease re-queue: a fleet of workers told a bare "1" all come
// back in the same second and collide again.
func (s *Server) retryAfter(base time.Duration) string {
	pol := backoff.Policy{Base: base, Cap: 2 * base, Factor: 1, Jitter: 0.5}
	s.rngMu.Lock()
	d := pol.Delay(0, s.rng)
	s.rngMu.Unlock()
	return backoff.RetryAfter(d)
}

// --- coordinator endpoints -------------------------------------------

// decodeInto decodes a bounded JSON body, answering 400 itself on
// failure.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return false
	}
	return true
}

// handleLease is POST /v1/lease: workers pull batches of cells. A
// draining coordinator stops granting (the in-flight cells still
// complete through /v1/complete) and tells workers when to come back.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter(5*time.Second))
		writeError(w, http.StatusServiceUnavailable, "coordinator is draining; not granting leases")
		return
	}
	var req api.LeaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "worker identity required")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Coordinator.Lease(req))
}

// handleHeartbeat is POST /v1/heartbeat. Heartbeats are accepted even
// while draining, so in-flight leases survive the drain window.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req api.HeartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Coordinator.Heartbeat(req))
}

// handleComplete is POST /v1/complete: accepted even while draining —
// refusing a completion would turn a graceful drain into a retry storm.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req api.CompleteRequest
	if !decodeInto(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Coordinator.Complete(req))
}

// --- per-run event streams -------------------------------------------

// stream is one run's event log and its wakeup fan-out. Subscribers read
// history at their own cursor and park on wake; every publish closes and
// replaces wake, so no subscriber can miss an event or block the
// publisher — a slow or disconnected client costs nothing.
type stream struct {
	history []api.CellEvent
	done    bool
	wake    chan struct{}
}

// openStream registers an event stream for a run.
func (s *Server) openStream(runID string) {
	s.streamMu.Lock()
	s.streams[runID] = &stream{wake: make(chan struct{})}
	s.streamMu.Unlock()
}

// publishEvent appends one event to a run's stream and wakes its
// subscribers. The terminal event (Done=true) also ends the stream and
// drops it from the table — late subscribers replay the finished run's
// record instead.
func (s *Server) publishEvent(runID string, ev api.CellEvent) {
	s.streamMu.Lock()
	st := s.streams[runID]
	if st == nil {
		s.streamMu.Unlock()
		return
	}
	ev.RunID = runID
	ev.Seq = len(st.history)
	st.history = append(st.history, ev)
	if ev.Done {
		st.done = true
		delete(s.streams, runID)
	}
	close(st.wake)
	st.wake = make(chan struct{})
	s.streamMu.Unlock()
}

// dropStream removes a run's stream without a terminal event (the run
// record never reached running — e.g. cancelled while queued). Parked
// subscribers are woken and see done.
func (s *Server) dropStream(runID string) {
	s.streamMu.Lock()
	if st := s.streams[runID]; st != nil {
		st.done = true
		delete(s.streams, runID)
		close(st.wake)
		st.wake = make(chan struct{})
	}
	s.streamMu.Unlock()
}

// snapshotStream returns the events at or past cursor, the wakeup channel
// to park on, and whether the stream has ended.
func (s *Server) snapshotStream(st *stream, cursor int) ([]api.CellEvent, <-chan struct{}, bool) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	evs := st.history[cursor:]
	return evs, st.wake, st.done
}

// handleRunEvents is GET /v1/runs/{id}/events: a server-sent event
// stream of per-cell results as they land, ending with a terminal "done"
// event. A run that already finished replays its recorded results. A
// client disconnect tears down only the stream — the run itself is owned
// by the submitting request and proceeds to completion.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.streamMu.Lock()
	st := s.streams[id]
	s.streamMu.Unlock()

	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	if st == nil {
		// No live stream: replay the finished run's record, if any.
		snap, found := s.snapshotRun(id)
		if !found {
			writeError(w, http.StatusNotFound, "unknown run ID")
			return
		}
		if snap.Finished == nil {
			// Queued with no stream yet (or a pre-fabric record): nothing
			// to tail; report the gap rather than hanging forever.
			writeError(w, http.StatusConflict, "run has no event stream yet; retry shortly")
			return
		}
		startEventStream(w, fl)
		seq := 0
		for i := range snap.Results {
			cr := snap.Results[i]
			writeEvent(w, fl, api.CellEvent{RunID: id, Seq: seq, Index: i, Cell: &cr})
			seq++
		}
		writeEvent(w, fl, api.CellEvent{RunID: id, Seq: seq, Index: -1, Done: true, Status: snap.Status})
		return
	}

	startEventStream(w, fl)
	cursor := 0
	for {
		evs, wake, done := s.snapshotStream(st, cursor)
		for i := range evs {
			if err := writeEvent(w, fl, evs[i]); err != nil {
				return // client is gone; the run continues without us
			}
		}
		cursor += len(evs)
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return // disconnect tears down the stream, never the run
		case <-wake:
		}
	}
}

// startEventStream commits the SSE response headers. The immediate flush
// matters: subscribers block on the response headers, and the first cell
// of a long run may be minutes away.
func startEventStream(w http.ResponseWriter, fl http.Flusher) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
}

// writeEvent writes one SSE frame and flushes it to the client.
func writeEvent(w io.Writer, fl http.Flusher, ev api.CellEvent) error {
	name := "cell"
	if ev.Done {
		name = "done"
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("service: encoding event: %w", err)
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		return fmt.Errorf("service: writing event: %w", err)
	}
	fl.Flush()
	return nil
}

// --- journal hooks ----------------------------------------------------

// journalAppend appends one record, counting (never panicking on)
// failures: a full disk degrades crash recovery, not serving.
func (s *Server) journalAppend(rec fabric.Record) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal.Append(rec); err != nil {
		s.journalErrs.Add(1)
	}
}

// journalCache wraps the result cache so every insert is also journaled
// as a RecCache record — the WAL's copy of the result payload. RecCell
// records then only carry the fingerprint, so a result is journaled once
// no matter how many runs repeat the cell.
type journalCache struct {
	inner *resultCache
	s     *Server
}

func (c journalCache) Get(key string) (sim.Result, bool) { return c.inner.Get(key) }

func (c journalCache) Put(key string, res sim.Result) {
	c.inner.Put(key, res)
	r := res
	c.s.journalAppend(fabric.Record{Type: fabric.RecCache, Key: key, Result: &r})
}

// runnerCache returns the cache to hand the grid runner: the raw result
// cache, or its journaling wrapper when a WAL is attached.
func (s *Server) runnerCache() runner.Cache {
	if s.cfg.Journal != nil {
		return journalCache{inner: s.cache, s: s}
	}
	return s.cache
}

// RunJobs executes jobs through the server's standalone grid path —
// shared trace capture, content-addressed cache, batch planner — and
// returns one outcome per job, per-cell errors included. It is the
// worker daemon's executor for leased cells: a worker is exactly a
// standalone server whose work arrives by lease instead of by HTTP run
// request, which is what lets the fleet's caches behave as one tier.
func (s *Server) RunJobs(ctx context.Context, jobs []runner.Job) []runner.Outcome {
	outs, _ := s.executeGrid(ctx, jobs, "", nil) // errors ride in the outcomes
	return outs
}

// cellProgress builds the per-cell progress hook: each finished cell is
// journaled (crash safety) and published to the run's event stream
// (liveness) the moment it lands, not when the run ends.
func (s *Server) cellProgress(runID string, keys []string) func(runner.Progress) {
	return func(p runner.Progress) {
		cr := CellResult{Bench: p.Bench, Config: p.Config, CacheHit: p.CacheHit}
		if p.Err != nil {
			cr.Error = p.Err.Error()
		} else {
			cr.Result = p.Result
		}
		rec := fabric.Record{
			Type: fabric.RecCell, RunID: runID, Index: p.Index,
			Err: cr.Error, CacheHit: p.CacheHit,
		}
		if p.Index >= 0 && p.Index < len(keys) {
			rec.Key = keys[p.Index]
		}
		s.journalAppend(rec)
		s.publishEvent(runID, api.CellEvent{Index: p.Index, Cell: &cr})
	}
}

// --- journal recovery -------------------------------------------------

// replayInfo captures what boot-time recovery did, for /metrics.
type replayInfo struct {
	stats   fabric.ReplayStats
	seconds float64
	runs    int // journaled runs recovered (finished or resumed)
	resumed int // unfinished runs re-executed
}

// RecoverJournal replays a WAL image into the server: cache records
// refill the content-addressed result cache, finished runs are restored
// as queryable records, and unfinished runs are re-executed — their
// journaled cells now cache hits, so a restart resumes from the last
// completed cell instead of re-simulating, with bit-identical output.
// Call once at boot, before serving traffic.
func (s *Server) RecoverJournal(ctx context.Context, recs []fabric.Record, stats fabric.ReplayStats) (resumed int, err error) {
	start := now()
	type runState struct {
		rec    fabric.Record
		cells  map[int]fabric.Record
		finish *fabric.Record
	}
	var order []string
	states := make(map[string]*runState)
	for i := range recs {
		rec := recs[i]
		switch rec.Type {
		case fabric.RecCache:
			if rec.Key != "" && rec.Result != nil {
				s.cache.Put(rec.Key, *rec.Result)
			}
		case fabric.RecRun:
			if rec.RunID == "" || rec.Req == nil {
				continue
			}
			if states[rec.RunID] == nil {
				order = append(order, rec.RunID)
			}
			states[rec.RunID] = &runState{rec: rec, cells: make(map[int]fabric.Record)}
		case fabric.RecCell:
			if st := states[rec.RunID]; st != nil {
				st.cells[rec.Index] = rec
			}
		case fabric.RecFinish:
			if st := states[rec.RunID]; st != nil {
				st.finish = &recs[i]
			}
		}
	}

	var firstErr error
	for _, id := range order {
		st := states[id]
		s.restoreRun(id, st.rec)
		jobs, buildErr := s.buildJobs(st.rec.Req)
		if buildErr != nil {
			// The journaled request no longer builds (e.g. a renamed
			// config across versions): fail the record, keep serving.
			s.finishRun(id, StatusFailed, nil, 0, "journal replay: "+buildErr.Error())
			if firstErr == nil {
				firstErr = fmt.Errorf("service: replaying run %s: %w", id, buildErr)
			}
			continue
		}
		if st.finish != nil {
			results, hits := s.recoveredResults(jobs, st.cells)
			if st.finish.Status != StatusDone {
				results = nil // partial grids are not reconstructed
			}
			s.finishRun(id, st.finish.Status, results, hits, st.finish.Err)
			continue
		}
		// Unfinished run: re-execute. Completed cells were journaled into
		// the cache above, so they replay as hits; only the missing tail
		// simulates.
		s.openStream(id)
		s.performRun(ctx, id, jobs)
		resumed++
	}
	info := &replayInfo{stats: stats, seconds: now().Sub(start).Seconds(),
		runs: len(order), resumed: resumed}
	s.replay.Store(info)
	return resumed, firstErr
}

// recoveredResults rebuilds a finished run's per-cell results from its
// journaled cell records plus the replayed cache.
func (s *Server) recoveredResults(jobs []runner.Job, cells map[int]fabric.Record) ([]CellResult, int) {
	results := make([]CellResult, len(jobs))
	hits := 0
	for i := range jobs {
		cr := CellResult{Bench: jobs[i].Profile.Name, Config: jobs[i].Name}
		rec, ok := cells[i]
		switch {
		case !ok:
			cr.Error = "cell outcome not recovered from journal"
		case rec.Err != "":
			cr.Error = rec.Err
		default:
			cr.CacheHit = rec.CacheHit
			if res, found := s.cache.Get(rec.Key); found {
				r := res
				r.Config = jobs[i].Name
				cr.Result = &r
				hits++
			} else {
				cr.Error = "cell result evicted before recovery"
			}
		}
		results[i] = cr
	}
	return results, hits
}

// restoreRun recreates a journaled run record under its original ID and
// advances the ID sequence past it, so new runs never collide.
func (s *Server) restoreRun(id string, rec fabric.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var seq uint64
	if _, err := fmt.Sscanf(id, "run-%d", &seq); err == nil && seq > s.nextID {
		s.nextID = seq
	}
	if s.runs[id] == nil {
		s.order = append(s.order, id)
	}
	s.runs[id] = &Run{ID: id, Status: StatusQueued, Created: rec.Created, Cells: rec.Cells}
	s.evictRunsLocked()
}

// --- fabric metrics ---------------------------------------------------

// renderFabricMetrics appends the coordinator's counters to /metrics.
func renderFabricMetrics(w io.Writer, m fabric.Metrics) {
	fmt.Fprintln(w, "# HELP simserved_fabric_workers Fabric workers by liveness.")
	fmt.Fprintln(w, "# TYPE simserved_fabric_workers gauge")
	fmt.Fprintf(w, "simserved_fabric_workers{state=\"live\"} %d\n", m.WorkersLive)
	fmt.Fprintf(w, "simserved_fabric_workers{state=\"dead\"} %d\n", m.WorkersDead)

	fmt.Fprintln(w, "# HELP simserved_fabric_cells_pending Cells queued for lease.")
	fmt.Fprintln(w, "# TYPE simserved_fabric_cells_pending gauge")
	fmt.Fprintf(w, "simserved_fabric_cells_pending %d\n", m.CellsPending)

	fmt.Fprintln(w, "# HELP simserved_fabric_leases_active Leases currently granted.")
	fmt.Fprintln(w, "# TYPE simserved_fabric_leases_active gauge")
	fmt.Fprintf(w, "simserved_fabric_leases_active %d\n", m.LeasesActive)

	fmt.Fprintln(w, "# HELP simserved_fabric_lease_expiries_total Leases lost to missed heartbeats or worker death.")
	fmt.Fprintln(w, "# TYPE simserved_fabric_lease_expiries_total counter")
	fmt.Fprintf(w, "simserved_fabric_lease_expiries_total %d\n", m.LeaseExpiries)

	fmt.Fprintln(w, "# HELP simserved_fabric_cells_retried_total Cells re-queued after a lease expiry.")
	fmt.Fprintln(w, "# TYPE simserved_fabric_cells_retried_total counter")
	fmt.Fprintf(w, "simserved_fabric_cells_retried_total %d\n", m.CellsRetried)

	fmt.Fprintln(w, "# HELP simserved_fabric_cells_total Cells settled, by execution source.")
	fmt.Fprintln(w, "# TYPE simserved_fabric_cells_total counter")
	fmt.Fprintf(w, "simserved_fabric_cells_total{source=\"worker\"} %d\n", m.CellsCompleted)
	fmt.Fprintf(w, "simserved_fabric_cells_total{source=\"local\"} %d\n", m.CellsLocal)

	fmt.Fprintln(w, "# HELP simserved_fabric_dead_workers_total Workers declared dead after missed heartbeats.")
	fmt.Fprintln(w, "# TYPE simserved_fabric_dead_workers_total counter")
	fmt.Fprintf(w, "simserved_fabric_dead_workers_total %d\n", m.DeadWorkers)

	fmt.Fprintln(w, "# HELP simserved_fabric_duplicate_completions_total Late completions for already-settled cells (deduplicated).")
	fmt.Fprintln(w, "# TYPE simserved_fabric_duplicate_completions_total counter")
	fmt.Fprintf(w, "simserved_fabric_duplicate_completions_total %d\n", m.DuplicateCompletions)

	fmt.Fprintln(w, "# HELP simserved_fabric_retry_mismatches_total Retried cells whose result was not bit-identical to the first try.")
	fmt.Fprintln(w, "# TYPE simserved_fabric_retry_mismatches_total counter")
	fmt.Fprintf(w, "simserved_fabric_retry_mismatches_total %d\n", m.RetryMismatches)
}

// renderJournalMetrics appends the WAL recovery gauges to /metrics.
func renderJournalMetrics(w io.Writer, info *replayInfo, appendErrs uint64) {
	fmt.Fprintln(w, "# HELP simserved_journal_append_errors_total Journal appends that failed.")
	fmt.Fprintln(w, "# TYPE simserved_journal_append_errors_total counter")
	fmt.Fprintf(w, "simserved_journal_append_errors_total %d\n", appendErrs)
	if info == nil {
		return
	}
	fmt.Fprintln(w, "# HELP simserved_journal_replay_seconds Wall-clock time of boot journal replay.")
	fmt.Fprintln(w, "# TYPE simserved_journal_replay_seconds gauge")
	fmt.Fprintf(w, "simserved_journal_replay_seconds %g\n", info.seconds)
	fmt.Fprintln(w, "# HELP simserved_journal_replay_records Journal records replayed at boot.")
	fmt.Fprintln(w, "# TYPE simserved_journal_replay_records gauge")
	fmt.Fprintf(w, "simserved_journal_replay_records %d\n", info.stats.Records)
	fmt.Fprintln(w, "# HELP simserved_journal_replay_truncated_bytes Torn-tail bytes discarded at boot.")
	fmt.Fprintln(w, "# TYPE simserved_journal_replay_truncated_bytes gauge")
	fmt.Fprintf(w, "simserved_journal_replay_truncated_bytes %d\n", info.stats.TruncatedBytes)
	fmt.Fprintln(w, "# HELP simserved_journal_replay_runs Journaled runs recovered at boot.")
	fmt.Fprintln(w, "# TYPE simserved_journal_replay_runs gauge")
	fmt.Fprintf(w, "simserved_journal_replay_runs %d\n", info.runs)
	fmt.Fprintln(w, "# HELP simserved_journal_resumed_runs Unfinished runs re-executed at boot.")
	fmt.Fprintln(w, "# TYPE simserved_journal_resumed_runs gauge")
	fmt.Fprintf(w, "simserved_journal_resumed_runs %d\n", info.resumed)
}
