package core

import "repro/internal/isa"

// replayState is REPLAY mode's epoch bookkeeping. The mode executes a
// single stream at SIE speed; every epoch (ReplayEpoch committed
// instructions) a replay engine deterministically re-executes the epoch
// from the last checkpoint and compares the two commit streams. The model
// charges that honestly rather than simulating the re-execution twice:
//
//   - Replay bandwidth: the replay engine contends for the same datapath,
//     so each epoch check stalls the pipeline for the cycles the epoch's
//     instruction mix needs through the issue width and FU pools.
//   - Detection latency: a corrupted commit is only *detected* at the
//     epoch boundary, and repair is a rewind to the epoch's checkpoint
//     plus re-execution — so MTTR is epoch-scale by construction, the
//     fundamental trade RepTFD-style schemes make for SIE-speed commit.
//
// Because the replay comparison re-derives every outcome from checkpointed
// architected state, a corrupted signature cannot escape it: REPLAY has no
// silent-corruption channel, only delayed detection.
type replayState struct {
	epoch uint64 // committed instructions per checkpoint interval

	// Current-epoch accumulators, reset at each checkpoint.
	total      uint64    // instructions committed this epoch
	counts     [5]uint64 // per fuBucket, memory folded into IntALU
	faulty     uint64    // commits whose signature differed from the oracle
	startCycle uint64    // cycle the epoch opened
}

func newReplayState(cfg Config) *replayState {
	k := cfg.ReplayEpoch
	if k == 0 {
		k = DefaultReplayEpoch
	}
	return &replayState{epoch: k}
}

// replayObserve records one committing instruction into the open epoch:
// its FU class for the bandwidth charge, and whether its signature
// disagrees with the architected record (a fault the replay comparison
// will surface at the epoch boundary).
func (c *Core) replayObserve(head *uop) {
	r := c.replay
	rec := &head.rec
	if rec.Instr.Op.Info().Class != isa.FUNone {
		b := fuBucket(rec.Instr.Op)
		if b == bucketMem {
			// Replay recomputes addresses on the integer ALUs; the
			// memory values themselves come from the checkpoint log,
			// outside the sphere of replication.
			b = bucketIntALU
		}
		r.counts[b]++
	}
	r.total++
	if head.outSig != outSignature(rec, rec.Src1, rec.Src2) {
		r.faulty++
	} else if head.corrupted {
		c.Stats.FaultsMasked++
	}
}

// replayCheckDue reports whether the open epoch has filled.
func (c *Core) replayCheckDue() bool {
	return c.replay != nil && c.replay.total >= c.replay.epoch
}

// replayEpochCheck closes the open epoch: the replay engine re-executes it
// and compares commit streams. The pipeline stalls for the replay
// bandwidth; a detected fault additionally rewinds to the checkpoint and
// re-executes the epoch, charged as a second stall of the epoch's
// duration. Detection latency per fault is the span from the epoch's start
// to the end of its repair, which is what makes REPLAY's MTTR epoch-scale.
func (c *Core) replayEpochCheck() {
	r := c.replay
	if r.total == 0 {
		return
	}
	c.Stats.ReplayEpochs++

	// Bandwidth: the epoch's instructions re-issue through the same
	// issue width and FU pools, whichever is the tighter bottleneck.
	iw := uint64(c.cfg.IssueWidth)
	stall := (r.total + iw - 1) / iw
	for b, n := range r.counts {
		units := uint64(c.cfg.FUs[bucketFUClass(b)])
		if units == 0 || n == 0 {
			continue
		}
		if s := (n + units - 1) / units; s > stall {
			stall = s
		}
	}

	if r.faulty > 0 {
		dur := c.cycle - r.startCycle
		c.Stats.FaultsDetected += r.faulty
		c.Stats.FaultRecoveries++ // one rewind repairs the whole epoch
		c.Stats.FaultRepairs += r.faulty
		// Each fault in the epoch was latent from (at worst) the epoch
		// start and is clean only after the replay pass and the rewound
		// re-execution complete.
		c.Stats.FaultRecoveryCycles += r.faulty * (dur + stall)
		// Rollback: re-executing the epoch costs its original duration
		// again on top of the replay pass.
		stall += dur
	}

	c.Stats.ReplayStallCycles += stall
	c.stallUntil = c.cycle + stall
	// The stall is an accounted-for pause, not a hang.
	c.lastCommitCycle = c.stallUntil

	r.total, r.faulty = 0, 0
	r.counts = [5]uint64{}
	r.startCycle = c.stallUntil
}

// replayFinalCheck closes the last partial epoch when the run ends, so a
// tail fault cannot escape unchecked, and folds the final stall into the
// cycle count (there is no pipeline left to stall).
func (c *Core) replayFinalCheck() {
	if c.replay == nil || c.replay.total == 0 {
		return
	}
	c.replayEpochCheck()
	if c.stallUntil > c.cycle {
		c.cycle = c.stallUntil
		c.Stats.Cycles = c.cycle
	}
}

// bucketFUClass maps an Issued/replay bucket back to the FU class whose
// unit count bounds its replay bandwidth.
func bucketFUClass(b int) isa.FUClass {
	switch b {
	case bucketIntMult:
		return isa.FUIntMult
	case bucketFPAdd:
		return isa.FUFPAdd
	case bucketFPMult:
		return isa.FUFPMult
	default:
		// bucketIntALU, and bucketMem folded into it.
		return isa.FUIntALU
	}
}
