package service

import (
	"container/list"
	"sync"

	"repro/internal/sim"
)

// resultCache is the daemon's content-addressed result store: an LRU map
// from runner.Job fingerprints to simulation results, with hit/miss
// accounting surfaced on /metrics. It plays the IRB's role one level up —
// the IRB memoizes duplicate-stream instruction executions under a
// PC+operand key, the resultCache memoizes whole grid cells under a
// config+workload+seed+fault key — and like the IRB it is purely an
// optimization: a hit is bit-identical to re-running the cell, because
// simulation is deterministic in the fingerprinted inputs.
//
// It implements runner.Cache and is safe for concurrent use.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, inserts, evictions uint64
}

type cacheItem struct {
	key string
	res sim.Result
}

// newResultCache builds a cache bounded to max entries (min 1).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get implements runner.Cache.
func (c *resultCache) Get(key string) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return sim.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

// Put implements runner.Cache, evicting the least recently used entry
// when the bound is exceeded.
func (c *resultCache) Put(key string, res sim.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.inserts++
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, res: res})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheItem).key)
		c.evictions++
	}
}

// Contains reports key presence without touching recency or the hit/miss
// counters; the server uses it to decide which jobs still need a trace
// attached before dispatch.
func (c *resultCache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// cacheStats is a consistent snapshot of the cache counters.
type cacheStats struct {
	Hits, Misses, Inserts, Evictions uint64
	Entries                          int
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Hits: c.hits, Misses: c.misses,
		Inserts: c.inserts, Evictions: c.evictions,
		Entries: c.ll.Len(),
	}
}
