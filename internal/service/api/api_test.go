package api

import (
	"encoding/json"
	"testing"
	"time"
)

// TestGoldenPayloads pins the serialized form of every wire type. These
// strings are the daemon's compatibility contract: a client deployed
// against today's service must keep parsing tomorrow's responses, so a
// failure here means a breaking API change — rename the new field or tag,
// don't update the golden.
func TestGoldenPayloads(t *testing.T) {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	t1 := t0.Add(time.Second)
	cases := []struct {
		name string
		v    any
		want string
	}{
		{
			"run_request_full",
			RunRequest{
				Configs:     []string{"SIE", "DIE-IRB"},
				Modes:       []string{"TMR"},
				Benchmarks:  []string{"bzip2"},
				Insns:       50000,
				FastForward: 1000,
				Seed:        7,
				Verify:      true,
				Fault:       &FaultSpec{Site: "fu", Rate: 0.0003, Seed: 9, MaxFaults: 2},
			},
			`{"configs":["SIE","DIE-IRB"],"modes":["TMR"],"benchmarks":["bzip2"],` +
				`"insns":50000,"fast_forward":1000,"seed":7,"verify":true,` +
				`"fault":{"site":"fu","rate":0.0003,"seed":9,"max_faults":2}}`,
		},
		{
			// The minimal request a pre-modes client sends: optional
			// fields vanish rather than serializing as zero values.
			"run_request_minimal",
			RunRequest{Configs: []string{"SIE"}},
			`{"configs":["SIE"]}`,
		},
		{
			"run_resource",
			Run{
				ID:        "run-000001",
				Status:    StatusDone,
				Created:   t0,
				Started:   &t0,
				Finished:  &t1,
				Cells:     2,
				CacheHits: 1,
				Results: []CellResult{
					{Bench: "bzip2", Config: "SIE", CacheHit: true},
					{Bench: "bzip2", Config: "DIE", Error: "cell timeout"},
				},
			},
			`{"id":"run-000001","status":"done","created":"2026-01-02T03:04:05Z",` +
				`"started":"2026-01-02T03:04:05Z","finished":"2026-01-02T03:04:06Z",` +
				`"cells":2,"cache_hits":1,"results":[` +
				`{"bench":"bzip2","config":"SIE","cache_hit":true},` +
				`{"bench":"bzip2","config":"DIE","cache_hit":false,"error":"cell timeout"}]}`,
		},
		{
			"modes_response",
			ModesResponse{Modes: []Mode{{
				Name:        "TMR",
				Description: "triple modular redundancy",
				Streams:     3,
				Compare:     "vote",
				Detects:     true,
				Corrects:    true,
				Knobs:       []Knob{{Name: "vote-width", Doc: "copies dispatched, odd, 3..7"}},
			}}},
			`{"modes":[{"name":"TMR","description":"triple modular redundancy",` +
				`"streams":3,"compare":"vote","detects":true,"corrects":true,` +
				`"knobs":[{"name":"vote-width","doc":"copies dispatched, odd, 3..7"}]}]}`,
		},
		{
			"error_plain",
			Error{Error: "unknown config"},
			`{"error":"unknown config"}`,
		},
		{
			"error_with_modes",
			Error{Error: `unknown mode "NMR"`, ValidModes: []string{"SIE", "DIE"}},
			`{"error":"unknown mode \"NMR\"","valid_modes":["SIE","DIE"]}`,
		},
	}
	for _, tc := range cases {
		b, err := json.Marshal(tc.v)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if string(b) != tc.want {
			t.Errorf("%s payload changed — this breaks deployed clients.\n got: %s\nwant: %s",
				tc.name, b, tc.want)
		}
	}
}

// TestGoldenPayloadRoundTrip: the golden forms parse back losslessly, so
// yesterday's recorded payloads remain readable.
func TestGoldenPayloadRoundTrip(t *testing.T) {
	in := `{"configs":["DIE"],"modes":["REPLAY"],"insns":10,"fault":{"site":"fu","rate":0.1}}`
	var req RunRequest
	if err := json.Unmarshal([]byte(in), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Configs) != 1 || len(req.Modes) != 1 || req.Fault == nil || req.Fault.Rate != 0.1 {
		t.Fatalf("round trip lost fields: %+v", req)
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != in {
		t.Fatalf("re-encoded form drifted:\n got: %s\nwant: %s", b, in)
	}
}
