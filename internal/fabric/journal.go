// Package fabric is the fault-tolerant sharded sweep tier: a coordinator
// that leases grid cells to pull-based worker daemons, re-queues work
// lost to crashes or partitions with capped jittered backoff, degrades to
// in-process execution when no workers are live, and journals run state
// to a crash-safe write-ahead log so its own restarts resume instead of
// forgetting. It applies the paper's check-&-recover discipline to the
// harness itself: detect the fault (a missed heartbeat, an expired
// lease, a torn journal tail), rewind to known-good state (re-queue the
// cell, truncate the tail), re-execute, and verify the retry is
// bit-identical to the first try — nothing is ever silently lost or
// silently different.
package fabric

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/service/api"
	"repro/internal/sim"
)

// Journal record types.
const (
	// RecRun: a run was accepted (RunID, Req, Cells, Created).
	RecRun = "run"
	// RecCell: one cell of a run completed (RunID, Index, Key, Err,
	// CacheHit). The result payload itself lives in the cache record
	// keyed by Key, so results are journaled once even when runs repeat.
	RecCell = "cell"
	// RecFinish: a run reached a terminal status (RunID, Status, Err).
	RecFinish = "finish"
	// RecCache: a content-addressed cache insert (Key, Result).
	RecCache = "cache"
)

// Record is one journal entry. A single flat struct keeps the WAL format
// trivially evolvable: unknown fields are ignored on replay, absent ones
// are zero.
type Record struct {
	Type string `json:"t"`

	RunID   string          `json:"run,omitempty"`
	Req     *api.RunRequest `json:"req,omitempty"`
	Cells   int             `json:"cells,omitempty"`
	Created time.Time       `json:"created,omitzero"`

	Index    int    `json:"index,omitempty"`
	Key      string `json:"key,omitempty"`
	Err      string `json:"err,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`

	Status string      `json:"status,omitempty"`
	Result *sim.Result `json:"result,omitempty"`
}

// ReplayStats describes what a replay recovered and what it refused.
type ReplayStats struct {
	// Records is the count of intact records replayed.
	Records int
	// ValidBytes is the length of the intact prefix; everything past it
	// was truncated.
	ValidBytes int64
	// TruncatedBytes is the length of the discarded tail (0 on a clean
	// log).
	TruncatedBytes int64
	// TailError describes why the tail was discarded ("" on a clean log).
	TailError string
}

// ErrJournalClosed reports an append to a closed journal.
var ErrJournalClosed = errors.New("fabric: journal is closed")

// journalName is the WAL file under the data directory.
const journalName = "journal.wal"

// Journal is the append-only, fsync-per-record write-ahead log. Records
// are framed as an 8-byte header — payload length and CRC32 (IEEE) of
// the payload — followed by the JSON payload, so a crash mid-append
// leaves a detectable torn tail rather than a silently mis-parsed log.
type Journal struct {
	mu     sync.Mutex // serializes appends so concurrent cells never interleave frames
	f      *os.File
	path   string
	closed bool
}

// OpenJournal opens (creating as needed) the WAL under dir, replays the
// intact prefix, truncates any torn or corrupt tail, and returns the
// journal positioned for append along with the replayed records. A
// record is only trusted if its frame is complete and its CRC matches;
// everything from the first bad frame on is discarded, so a partial cell
// can never be resurrected.
func OpenJournal(dir string) (*Journal, []Record, ReplayStats, error) {
	var stats ReplayStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, stats, fmt.Errorf("fabric: creating data dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("fabric: opening journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("fabric: reading journal: %w", err)
	}
	recs, stats := decodeRecords(data)
	if stats.TruncatedBytes > 0 {
		if err := f.Truncate(stats.ValidBytes); err != nil {
			f.Close()
			return nil, nil, stats, fmt.Errorf("fabric: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(stats.ValidBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("fabric: seeking journal append point: %w", err)
	}
	return &Journal{f: f, path: path}, recs, stats, nil
}

// Append frames, writes and fsyncs one record. The fsync is the journal's
// contract: when Append returns nil the record survives a crash.
func (j *Journal) Append(rec Record) error {
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("fabric: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fabric: syncing journal: %w", err)
	}
	return nil
}

// Close releases the WAL file. Appends after Close fail with
// ErrJournalClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("fabric: closing journal: %w", err)
	}
	return nil
}

// Path returns the WAL file path (diagnostics and tests).
func (j *Journal) Path() string { return j.path }

// frameHeader is [4 bytes little-endian payload length][4 bytes CRC32].
const frameHeader = 8

// maxRecordBytes bounds a single record frame. A length beyond it is
// treated as corruption rather than an allocation request: a torn header
// must not ask replay to allocate gigabytes.
const maxRecordBytes = 64 << 20

// encodeRecord frames one record for the WAL.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("fabric: encoding journal record: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// decodeRecords replays the intact prefix of a WAL image. It never
// panics and never trusts a frame whose length, checksum or JSON does
// not hold: the first bad frame ends the replay and everything after it
// is reported as the truncated tail. The fuzz target drives this
// function directly.
func decodeRecords(data []byte) ([]Record, ReplayStats) {
	var (
		recs  []Record
		stats ReplayStats
	)
	off := int64(0)
	total := int64(len(data))
	fail := func(reason string) ([]Record, ReplayStats) {
		stats.ValidBytes = off
		stats.TruncatedBytes = total - off
		stats.TailError = reason
		return recs, stats
	}
	for off < total {
		if total-off < frameHeader {
			return fail("torn frame header")
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes {
			return fail("frame length exceeds record bound")
		}
		if total-off-frameHeader < n {
			return fail("torn frame payload")
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return fail("payload checksum mismatch")
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fail("payload is not a journal record: " + err.Error())
		}
		recs = append(recs, rec)
		stats.Records++
		off += frameHeader + n
	}
	stats.ValidBytes = off
	return recs, stats
}
