// Command sweep regenerates the paper's figures and tables (and this
// reproduction's ablations) over the 12 SPEC2000-like workloads. The
// grid cells of each experiment run in parallel across -j workers
// (default GOMAXPROCS); -j 1 reproduces the old serial sweep exactly,
// and Ctrl-C cancels a sweep mid-grid.
//
// Usage:
//
//	sweep -exp all                     # every experiment
//	sweep -exp fig2 -j 8               # one experiment, eight workers
//	sweep -exp headline -insns 500000  # bigger instruction budget
//	sweep -exp irbhit -bench gzip,mesa # subset of benchmarks
//	sweep -exp fig2 -format csv        # csv or json instead of a table
//	sweep -exp all -progress           # live cells-done/ETA on stderr
//	sweep -exp headline -trace-replay=off  # per-cell interpretation
//	sweep -exp all -cpuprofile cpu.pprof   # profile the sweep
//	sweep -exp recovery -cell-timeout 5m   # bound each cell's wall-clock
//
// Experiments: config, fig2, headline, irbhit, irbsize, conflict,
// irbports, faults, recovery, frontier, ablation-dup, ablation-fwd,
// scheduler, cluster, prior24, reuse-sources, reuse-prediction, trb,
// trb-prediction, all.
//
// The frontier experiment compares every registered redundancy mode
// (SIE, DIE, DIE-IRB, REPLAY, TMR, DIE-TRB) on one fault-free-IPC vs
// detection-coverage vs MTTR table. The trb experiment ablates DIE vs
// DIE-IRB vs DIE-TRB and injects faults into the trace-buffered
// machine; trb-prediction cross-validates the static trace-reuse
// forecast against the measured trace-served share.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see package doc)")
	fl := cliutil.RegisterExperimentFlags(flag.CommandLine, sim.DefaultInsns, "")
	format := cliutil.Format(flag.CommandLine)
	csv := flag.Bool("csv", false, "deprecated: alias for -format csv")
	progress := flag.Bool("progress", false, "report live per-cell progress on stderr")
	traceReplay := flag.String("trace-replay", "on",
		"on: capture each benchmark's functional trace once and replay it in every cell; off: interpret per cell")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a post-sweep heap profile to this file")
	flag.Parse()
	if *csv {
		*format = "csv"
	}
	if *traceReplay != "on" && *traceReplay != "off" {
		fmt.Fprintf(os.Stderr, "sweep: -trace-replay must be on or off, got %q\n", *traceReplay)
		os.Exit(1)
	}

	// Ctrl-C cancels the sweep: in-flight simulations stop within a
	// cycle and the completed cells' failures are still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := fl.Options()
	opts.Context = ctx
	opts.DisableReplay = *traceReplay == "off"
	if *progress {
		opts.Progress = func(p runner.Progress) {
			fmt.Fprintf(os.Stderr, "\r%4d/%d cells  %-40s eta %-10s",
				p.Done, p.Total, p.Bench+"/"+p.Config, p.ETA.Round(time.Second))
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(*exp, opts, *format); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // report live post-sweep heap, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}
}

func run(exp string, opts experiments.Options, format string) error {
	// Validate the format before burning simulation time on the grid.
	if _, err := cliutil.Render(stats.NewTable(""), format); err != nil {
		return err
	}
	for _, r := range experiments.Registry() {
		if exp != "all" && exp != r.Name {
			continue
		}
		t, err := r.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		out, err := cliutil.Render(t, format)
		if err != nil {
			return err
		}
		// Machine-readable formats keep stdout clean (so `-format json
		// > x.json` is a valid document); the banner moves to stderr.
		if format == "table" || format == "" {
			fmt.Printf("=== %s ===\n%s\n", r.Name, out)
		} else {
			fmt.Fprintf(os.Stderr, "=== %s ===\n", r.Name)
			fmt.Printf("%s\n", out)
		}
		if exp == r.Name {
			return nil
		}
	}
	if exp != "all" {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
