// Fault injection: validates the redundancy argument of the paper's
// Section 3.4 end-to-end. Single-bit transient faults are injected into
// functional unit outputs, operand forwarding paths, and the IRB storage
// array while a benchmark runs on the DIE-IRB machine. The commit-time
// check-&-retire comparison must catch every fault that could reach
// architectural state — and every detection triggers a real recovery:
// the faulting pair and everything younger are flushed, any corrupted
// IRB entry is scrubbed, and execution resumes from the faulting PC.
// The runs here keep the verification oracle on, so "the final state is
// architecturally correct" is checked, not assumed. Faults striking the
// IRB's operand fields merely fail the reuse test (the duplicate then
// executes on a real ALU), which is why the paper argues the IRB needs
// no ECC of its own.
//
//	go run ./examples/faultinjection
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	profile, ok := workload.ByName("parser")
	if !ok {
		log.Fatal("parser profile missing")
	}

	// The machine under test resolves through the mode registry; its
	// descriptor confirms the mode actually detects faults before any
	// injection is attempted.
	mi, ok := core.ModeByName("DIE-IRB")
	if !ok || !mi.Caps.Detects {
		log.Fatal("DIE-IRB is not a registered detecting mode")
	}

	fmt.Println("site         injected  detected  recovered  MTTR(cyc)  scrubbed  outcome")
	for _, site := range fault.Sites() {
		inj, err := fault.New(fault.Config{Site: site, Rate: 5e-4, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Run("DIE-IRB", mi.Base(), profile, sim.Options{
			Insns:    150_000,
			Verify:   true, // oracle-check every committed instruction
			Injector: inj,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := r.Core
		fmt.Printf("%-12s %8d  %8d  %9d  %9.2f  %8d  %s\n",
			site, inj.Injected, st.FaultsDetected, st.FaultRecoveries,
			st.MTTR(), st.IRBScrubs, describe(site, inj.Injected, st.FaultsDetected))
	}

	// Temporal redundancy cannot repair a fault that re-executes
	// identically. A rate-1 fault pinned to one static PC models a
	// stuck-at ALU bit: the core retries up to its per-PC budget, then
	// escalates with a structured error instead of livelocking.
	fmt.Println("\npersistent stuck-at fault (same PC, every execution):")
	stuck := &fault.Persistent{Site: fault.FU, PC: 1, Bit: 7}
	_, err := sim.Run("DIE-IRB", mi.Base(), profile, sim.Options{
		Insns:    150_000,
		Injector: stuck,
	})
	var uf *core.UnrecoverableFaultError
	if errors.As(err, &uf) {
		fmt.Printf("  escalated after %d retries: %v\n", uf.Retries, uf)
	} else {
		fmt.Printf("  run ended without escalation (err=%v) — the pinned PC never executed\n", err)
	}
}

func describe(site fault.Site, injected, detected uint64) string {
	switch site {
	case fault.IRBOperand:
		return "corrupted operands fail the reuse test: harmless by design"
	case fault.IRBResult:
		if detected > 0 {
			return "reused corrupted results caught, entries scrubbed"
		}
		return "no corrupted entry was reused before being overwritten"
	default:
		if injected == 0 {
			return "no faults fired"
		}
		return fmt.Sprintf("%.0f%% caught (the rest struck squashed wrong-path work)",
			100*float64(detected)/float64(injected))
	}
}
