// Package cliutil centralizes the flag handling shared by the repro
// command-line tools (cmd/sweep, cmd/simdie, cmd/irbstat): the
// instruction budget, oracle verification, benchmark selection, the
// parallel-runner width (-j), and the table output formats backed by
// internal/stats. Each command registers only the flags it needs, so the
// tools stay small while spelling every shared knob the same way.
package cliutil

import (
	"flag"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Insns registers the -insns instruction-budget flag on fs.
func Insns(fs *flag.FlagSet, def uint64) *uint64 {
	return fs.Uint64("insns", def, "architected instructions per run")
}

// Verify registers the -verify oracle-checking flag on fs.
func Verify(fs *flag.FlagSet) *bool {
	return fs.Bool("verify", false, "verify every run against the functional oracle")
}

// Bench registers the -bench benchmark-selection flag on fs. The value
// is a comma-separated list of profile names; see SplitBenchmarks and
// Profiles for parsing.
func Bench(fs *flag.FlagSet, def, usage string) *string {
	return fs.String("bench", def, usage)
}

// Jobs registers the -j parallelism flag on fs, defaulting to
// runtime.GOMAXPROCS(0). A value of 1 runs simulations serially, exactly
// reproducing the pre-parallel sweep.
func Jobs(fs *flag.FlagSet) *int {
	return fs.Int("j", runtime.GOMAXPROCS(0), "parallel simulation jobs (1 = serial)")
}

// SplitBenchmarks parses a comma-separated -bench value into names,
// trimming blanks; an empty value yields nil (meaning "all").
func SplitBenchmarks(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// Profiles resolves a comma-separated -bench value to workload profiles,
// defaulting to the full SPEC2000 suite when the value is empty.
func Profiles(bench string) ([]workload.Profile, error) {
	names := SplitBenchmarks(bench)
	if len(names) == 0 {
		return workload.SPEC2000(), nil
	}
	out := make([]workload.Profile, 0, len(names))
	for _, name := range names {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (want one of the SPEC2000 profile names)", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// Format registers the -format output-format flag on fs.
func Format(fs *flag.FlagSet) *string {
	return fs.String("format", "table", "output format: table, csv or json")
}

// Render renders t according to a -format value.
func Render(t *stats.Table, format string) (string, error) {
	switch format {
	case "", "table":
		return t.String(), nil
	case "csv":
		return t.CSV(), nil
	case "json":
		return t.JSON(), nil
	}
	return "", fmt.Errorf("unknown format %q (want table, csv or json)", format)
}
