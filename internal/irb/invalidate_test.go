package irb

import "testing"

func TestInvalidateMainArray(t *testing.T) {
	b, err := New(Config{Entries: 64, Assoc: 1, ReadPorts: 4, WritePorts: 2, LookupLat: 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(1, 7, Entry{Src1: 1, Src2: 2, Result: 3})
	if !b.Invalidate(7) {
		t.Fatal("Invalidate missed an existing entry")
	}
	if _, ok := b.Probe(7); ok {
		t.Error("entry still present after Invalidate")
	}
	if _, ok := b.Lookup(2, 7); ok {
		t.Error("Lookup still hits after Invalidate")
	}
	if b.Stats.Invalidated != 1 {
		t.Errorf("Invalidated = %d, want 1", b.Stats.Invalidated)
	}
	if b.Invalidate(7) {
		t.Error("second Invalidate reported an entry")
	}
	if b.Invalidate(9) {
		t.Error("Invalidate of a never-inserted PC reported an entry")
	}
}

func TestInvalidateVictimBuffer(t *testing.T) {
	b, err := New(Config{Entries: 4, Assoc: 1, VictimEntries: 4,
		ReadPorts: 4, WritePorts: 4, LookupLat: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Two PCs mapping to the same set: the second insert evicts the first
	// into the victim buffer.
	b.Insert(1, 3, Entry{Result: 30})
	b.Insert(1, 7, Entry{Result: 70})
	if _, ok := b.Probe(3); !ok {
		t.Fatal("evicted entry not in the victim buffer")
	}
	if !b.Invalidate(3) {
		t.Fatal("Invalidate missed the victim-buffer entry")
	}
	if _, ok := b.Probe(3); ok {
		t.Error("victim entry still present after Invalidate")
	}
	if b.Stats.Invalidated != 1 {
		t.Errorf("Invalidated = %d, want 1", b.Stats.Invalidated)
	}
	// The co-resident main-array entry is untouched.
	if e, ok := b.Probe(7); !ok || e.Result != 70 {
		t.Errorf("main-array entry disturbed: %+v, %v", e, ok)
	}
}
