package fabric

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over worker IDs, keyed by cell
// fingerprints. The coordinator uses it as a cache-affinity preference:
// the same fingerprint always lands on the same live worker, so each
// worker's content-addressed result cache concentrates the cells it will
// be asked for again — the fleet's caches become one sharded tier. It is
// a preference, not a partition: a worker with no owned cells pending
// still steals others' so no cell waits on a busy owner.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker string
}

// ringReplicas is the virtual-node count per worker; enough to spread
// ownership within a few percent across small fleets.
const ringReplicas = 64

// newRing builds a ring over the given worker IDs (order-insensitive).
func newRing(workers []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(workers)*ringReplicas)}
	for _, w := range workers {
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(w + "#" + strconv.Itoa(i)), worker: w})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].worker < r.points[b].worker
	})
	return r
}

// owner returns the worker owning key, or "" on an empty ring.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].worker
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. FNV alone clusters the nearly
// identical virtual-node strings ("w1#0", "w1#1", …) badly enough to
// skew ring ownership several-fold; the finalizer's avalanche restores
// a near-uniform spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
