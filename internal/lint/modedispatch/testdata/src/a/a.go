// Package a exercises the modedispatch pass: comparing core.Mode values
// against literals must fire; dispatching on registry capabilities, mode
// variable-to-variable comparison, and annotated special cases must not.
package a

import "repro/internal/core"

// literalCompare recognizes specific modes by identity: forbidden.
func literalCompare(cfg core.Config) bool {
	if cfg.Mode == core.DIE { // want "core.Mode compared against a literal"
		return true
	}
	return cfg.Mode != core.Mode("SIE") // want "core.Mode compared against a literal"
}

// stringLiteralCompare against an untyped constant is still a mode
// identity check: forbidden.
func stringLiteralCompare(m core.Mode) bool {
	return m == "DIE-IRB" // want "core.Mode compared against a literal"
}

// literalSwitch dispatches by mode name: every constant case fires.
func literalSwitch(m core.Mode) int {
	switch m {
	case core.SIE: // want "switch on core.Mode with a literal case"
		return 1
	case core.TMR: // want "switch on core.Mode with a literal case"
		return 3
	}
	return 0
}

// capabilityDispatch is the intended shape: ask the registry what the
// mode can do. Allowed.
func capabilityDispatch(cfg core.Config) int {
	caps := cfg.Mode.Caps()
	if caps.UsesIRB {
		return 2 * caps.Streams
	}
	return caps.Streams
}

// variableCompare of two mode values carries no literal knowledge:
// allowed (e.g. "did the sweep change mode between cells").
func variableCompare(a, b core.Mode) bool {
	return a == b
}

// exemptTool is genuinely about one mode and says so: allowed.
func exemptTool(m core.Mode) bool {
	//modedispatch:exempt this debug helper prints the REPLAY epoch table and is meaningless for other modes
	return m == core.REPLAY
}

// compareKinds are capability enums, not modes; comparing them against
// their constants is exactly how capability dispatch works. Allowed.
func compareKinds(cfg core.Config) bool {
	return cfg.Mode.Caps().Compare == core.CompareVote
}
