// Package a exercises the determinism pass: wall-clock reads, global
// RNG use and order-sensitive map iteration must fire; injected clock
// seams with reasons, seeded generators and collect-then-sort loops must
// not.
package a

import (
	"math/rand"
	"sort"
	"time"
)

// readClock reads the wall clock directly: both the call and the
// function-value reference must fire.
func readClock() time.Duration {
	start := time.Now() // want "wall-clock read time.Now"
	_ = start
	clock := time.Now          // want "wall-clock read time.Now"
	return time.Since(clock()) // want "wall-clock read time.Since"
}

// injectedSeam is the allowed shape: one annotated seam with a reason.
type injectedSeam struct {
	now func() time.Time
}

func newSeam() *injectedSeam {
	return &injectedSeam{
		//determinism:exempt the single clock seam; everything downstream receives injected time
		now: time.Now,
	}
}

// unexplainedSeam carries the marker without a reason, which is itself a
// violation: the annotation does not exempt anything and the next reader
// cannot audit it, so both lines fire.
func unexplainedSeam() time.Time {
	// want-next "needs a reason"
	//determinism:exempt
	return time.Now() // want "wall-clock read time.Now"
}

// globalRand drives the process-global generator: forbidden.
func globalRand() int {
	return rand.Intn(10) // want "global math/rand Intn"
}

// seededRand builds a local seeded generator: allowed.
func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// mapOrder lets map iteration order reach the output stream: forbidden.
func mapOrder(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order"
		if v > 0 {
			out = append(out, v)
		}
	}
	return out
}

// collectThenSort only accumulates keys and sorts them before use: the
// canonical deterministic idiom, allowed.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sliceRange iterates a slice, which is ordered: allowed.
func sliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// exemptAggregation documents a commutative fold over a map: allowed via
// the annotation because addition is order-insensitive.
func exemptAggregation(m map[string]int) int {
	total := 0
	//determinism:exempt integer addition is commutative; the fold result is order-independent
	for _, v := range m {
		total += v
	}
	return total
}
