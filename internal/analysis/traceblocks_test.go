package analysis

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workload"
)

// invariantChainLoop builds
//
//	addi r1, r0, 8        ; loop counter
//	addi r10, r0, 100     ; invariant input
//	addi r11, r0, 7       ; invariant input
//	LOOP: add r12, r10, r11   ; invariant chain, pc 3
//	mul  r13, r12, r10        ; pc 4
//	xor  r14, r13, r11        ; pc 5
//	addi r1, r1, -1           ; pc 6: induction update
//	bne  r1, r0, LOOP
//	halt
func invariantChainLoop(t *testing.T) *CFG {
	t.Helper()
	b := program.NewBuilder("invchain")
	b.EmitImm(isa.OpAddi, 1, isa.ZeroReg, 8)
	b.EmitImm(isa.OpAddi, 10, isa.ZeroReg, 100)
	b.EmitImm(isa.OpAddi, 11, isa.ZeroReg, 7)
	b.Label("loop")
	b.EmitOp(isa.OpAdd, 12, 10, 11)
	b.EmitOp(isa.OpMul, 13, 12, 10)
	b.EmitOp(isa.OpXor, 14, 13, 11)
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return BuildCFG(p)
}

func TestTraceBlocksInvariantChain(t *testing.T) {
	g := invariantChainLoop(t)
	ws := TraceBlocks(g, 16, 8)
	if len(ws) != 1 {
		t.Fatalf("windows = %+v, want exactly one", ws)
	}
	w := ws[0]
	// The window is the three-instruction invariant chain: it starts at
	// the loop header and stops where the induction update would drag
	// the loop-carried r1 into the live-in set.
	if w.Entry != 3 || w.Len != 3 {
		t.Fatalf("window [%d, +%d), want [3, +3)", w.Entry, w.Len)
	}
	if len(w.LiveIn) != 2 || w.LiveIn[0] != 10 || w.LiveIn[1] != 11 {
		t.Fatalf("live-ins = %v, want [10 11]", w.LiveIn)
	}
}

func TestTraceBlocksMaxLenCap(t *testing.T) {
	g := invariantChainLoop(t)
	ws := TraceBlocks(g, 2, 8)
	if len(ws) != 1 || ws[0].Len != 2 {
		t.Fatalf("windows = %+v, want one of length 2", ws)
	}
}

func TestTraceBlocksMaxLiveInCap(t *testing.T) {
	g := invariantChainLoop(t)
	// The full chain needs live-ins {r10, r11}; with a cap of 1 only the
	// tail of the chain fits a single live-in... in this program no run
	// of two instructions reads just one invariant, so nothing is
	// emitted at all.
	if ws := TraceBlocks(g, 16, 1); len(ws) != 0 {
		t.Fatalf("windows = %+v, want none under live-in cap 1", ws)
	}
}

// loadTaintLoop builds a loop whose first chain consumes a loaded value
// (unsound to memoize) and whose second chain is pure:
//
//	addi r1, r0, 8
//	addi r10, r0, 64      ; invariant base address
//	addi r11, r0, 5       ; invariant input
//	LOOP: ld r12, 0(r10)      ; pc 3: load
//	add  r13, r12, r11        ; pc 4: reads the loaded value
//	add  r14, r10, r11        ; pc 5: pure chain
//	xor  r15, r14, r11        ; pc 6
//	addi r1, r1, -1           ; pc 7
//	bne  r1, r0, LOOP
//	halt
//	(data word at 64)
func loadTaintLoop(t *testing.T) *CFG {
	t.Helper()
	b := program.NewBuilder("loadtaint")
	b.EmitImm(isa.OpAddi, 1, isa.ZeroReg, 8)
	b.EmitImm(isa.OpAddi, 10, isa.ZeroReg, 64)
	b.EmitImm(isa.OpAddi, 11, isa.ZeroReg, 5)
	b.Label("loop")
	b.EmitImm(isa.OpLoad, 12, 10, 0)
	b.EmitOp(isa.OpAdd, 13, 12, 11)
	b.EmitOp(isa.OpAdd, 14, 10, 11)
	b.EmitOp(isa.OpXor, 15, 14, 11)
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return BuildCFG(p)
}

func TestTraceBlocksLoadTaint(t *testing.T) {
	g := loadTaintLoop(t)
	ws := TraceBlocks(g, 16, 8)
	if len(ws) != 1 {
		t.Fatalf("windows = %+v, want exactly one", ws)
	}
	w := ws[0]
	// The window must be the pure chain at pc 5..6: a window starting at
	// the load dies at pc 4 (its reader would fold memory contents into
	// a register-keyed signature), and pc 4 itself can't start a window
	// because r12 is loop-defined.
	if w.Entry != 5 || w.Len != 2 {
		t.Fatalf("window [%d, +%d), want [5, +2)", w.Entry, w.Len)
	}
	for _, r := range w.LiveIn {
		if r == 12 {
			t.Fatalf("live-ins %v include the load destination", w.LiveIn)
		}
	}
}

// TestTraceBlocksLoadWithoutConsumerIsMemoizable pins the other half of
// the taint rule: a load (and a store) whose value is never read inside
// the window is safe to include, because its signature is the effective
// address — a pure function of registers.
func TestTraceBlocksLoadWithoutConsumerIsMemoizable(t *testing.T) {
	b := program.NewBuilder("loadok")
	b.EmitImm(isa.OpAddi, 1, isa.ZeroReg, 8)
	b.EmitImm(isa.OpAddi, 10, isa.ZeroReg, 64)
	b.EmitImm(isa.OpAddi, 11, isa.ZeroReg, 5)
	b.Label("loop")
	b.EmitOp(isa.OpAdd, 13, 10, 11)
	b.EmitImm(isa.OpLoad, 12, 10, 0)
	b.EmitImm(isa.OpStore, 0, 10, 13) // mem[r10+?]: src1=r10 addr, src2=r13 value
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := TraceBlocks(BuildCFG(p), 16, 8)
	if len(ws) != 1 {
		t.Fatalf("windows = %+v, want exactly one", ws)
	}
	if w := ws[0]; w.Entry != 3 || w.Len != 3 {
		t.Fatalf("window [%d, +%d), want [3, +3) spanning add+load+store", w.Entry, w.Len)
	}
}

// TestTraceBlocksLenFloor: the classic counted nested loop has no
// two-instruction run free of loop-carried live-ins, so no windows.
func TestTraceBlocksLenFloor(t *testing.T) {
	p := nestedLoopProgram(t)
	if ws := TraceBlocks(BuildCFG(p), 16, 8); len(ws) != 0 {
		t.Fatalf("windows = %+v, want none", ws)
	}
}

// TestTraceBlocksGeneratedWorkloads holds the extractor to its contract
// over every generated benchmark: windows lie inside the code and inside
// a loop block, respect the caps, never include a tainted-value read, and
// have distinct entry PCs (at most one per block).
func TestTraceBlocksGeneratedWorkloads(t *testing.T) {
	const maxLen, maxLiveIn = 16, 8
	var total int
	for _, prof := range append(workload.SPEC2000(), workload.SPEC95()...) {
		prof := prof.WithIters(50_000)
		p, err := workload.Generate(prof)
		if err != nil {
			t.Fatalf("%s: generate: %v", prof.Name, err)
		}
		g := BuildCFG(p)
		ws := TraceBlocks(g, maxLen, maxLiveIn)
		total += len(ws)
		seen := make(map[uint64]bool)
		for _, w := range ws {
			if w.Len < 2 || w.Len > maxLen || len(w.LiveIn) > maxLiveIn {
				t.Fatalf("%s: window %+v violates caps", prof.Name, w)
			}
			if w.Entry+uint64(w.Len) > uint64(len(p.Code)) {
				t.Fatalf("%s: window %+v outside code", prof.Name, w)
			}
			blk := g.BlockAt(w.Entry)
			if blk == nil || blk.LoopDepth == 0 || w.Entry+uint64(w.Len) > blk.End {
				t.Fatalf("%s: window %+v not inside a loop block", prof.Name, w)
			}
			if seen[w.Entry] {
				t.Fatalf("%s: duplicate window entry %d", prof.Name, w.Entry)
			}
			seen[w.Entry] = true
			var taint regSet
			for pc := w.Entry; pc < w.Entry+uint64(w.Len); pc++ {
				in := p.Code[pc]
				if uses(in)&taint != 0 {
					t.Fatalf("%s: window %+v reads an in-window loaded value at pc %d", prof.Name, w, pc)
				}
				if in.Op.Info().IsLoad {
					taint |= defs(in)
				} else {
					taint &^= defs(in)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no windows extracted from any generated workload; the TRB would be dead hardware")
	}
}
