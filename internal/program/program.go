// Package program defines the executable program representation shared by
// the functional simulator, the timing core and the workload generators: a
// code segment of decoded instructions, an initial data segment, and an
// entry point. It also provides an assembler-style Builder with symbolic
// labels for constructing programs programmatically.
package program

import (
	"fmt"

	"repro/internal/isa"
)

// Program is a complete executable image.
type Program struct {
	Name string

	// Code is the instruction memory. PC values index this slice.
	Code []isa.Instr

	// Data holds the initial contents of data memory as 8-byte words
	// keyed by byte address (8-byte aligned).
	Data map[uint64]uint64

	// Entry is the PC of the first instruction to execute.
	Entry uint64
}

// Fetch returns the instruction at pc. Fetches outside the code segment
// (possible only on the wrong path of a mispredicted indirect jump) return
// a NOP so that speculative execution stays well defined.
func (p *Program) Fetch(pc uint64) isa.Instr {
	if pc >= uint64(len(p.Code)) {
		return isa.Instr{Op: isa.OpNop}
	}
	return p.Code[pc]
}

// Image encodes the code segment into its binary form, one 64-bit word per
// instruction. Used by tooling and by encoding round-trip tests.
func (p *Program) Image() []uint64 {
	img := make([]uint64, len(p.Code))
	for i, in := range p.Code {
		img[i] = isa.Encode(in)
	}
	return img
}

// Validate checks every instruction in the code segment and that branch
// targets stay within the code segment.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("program %q: empty code segment", p.Name)
	}
	if p.Entry >= uint64(len(p.Code)) {
		return fmt.Errorf("program %q: entry %d outside code", p.Name, p.Entry)
	}
	for pc, in := range p.Code {
		if err := isa.Validate(in); err != nil {
			return fmt.Errorf("program %q pc=%d (%s): %w", p.Name, pc, in, err)
		}
		oi := in.Op.Info()
		if oi.IsCtrl() && !oi.IsIndirect {
			t := int64(pc) + int64(in.Imm)
			if t < 0 || t >= int64(len(p.Code)) {
				return fmt.Errorf("program %q pc=%d (%s): target %d outside code", p.Name, pc, in, t)
			}
		}
	}
	return nil
}

// Builder assembles a Program instruction by instruction, resolving
// symbolic branch labels in a single backpatching pass at Build time.
type Builder struct {
	name    string
	code    []isa.Instr
	data    map[uint64]uint64
	labels  map[string]uint64
	fixups  []fixup
	dataPtr uint64
}

type fixup struct {
	pc    uint64
	label string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		data:   make(map[uint64]uint64),
		labels: make(map[string]uint64),
		// Keep address 0 unused so that "null pointer" chases in
		// generated workloads read a well-defined zero word.
		dataPtr: 64,
	}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() uint64 { return uint64(len(b.code)) }

// Label defines a symbolic label at the current PC. Defining the same label
// twice panics: generator code is the only caller and duplicate labels are
// always bugs.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		//nopanic:invariant generator code is the only caller and duplicate labels are always bugs
		panic(fmt.Sprintf("program: duplicate label %q", name))
	}
	b.labels[name] = b.PC()
}

// Emit appends a fully-resolved instruction.
func (b *Builder) Emit(in isa.Instr) {
	b.code = append(b.code, in)
}

// EmitOp is shorthand for Emit of a three-register operation.
func (b *Builder) EmitOp(op isa.Op, dest, src1, src2 isa.Reg) {
	b.Emit(isa.Instr{Op: op, Dest: dest, Src1: src1, Src2: src2})
}

// EmitImm is shorthand for Emit of an operation with an immediate.
func (b *Builder) EmitImm(op isa.Op, dest, src1 isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: op, Dest: dest, Src1: src1, Imm: imm})
}

// Branch emits a conditional branch or jump to a label resolved at Build.
func (b *Builder) Branch(op isa.Op, src1, src2 isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	b.Emit(isa.Instr{Op: op, Src1: src1, Src2: src2})
}

// Jump emits an unconditional jump to a label.
func (b *Builder) Jump(label string) {
	b.Branch(isa.OpJump, 0, 0, label)
}

// Call emits a call to a label; the return address lands in isa.LinkReg.
func (b *Builder) Call(label string) {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	b.Emit(isa.Instr{Op: isa.OpCall, Dest: isa.LinkReg})
}

// Ret emits a return through isa.LinkReg.
func (b *Builder) Ret() {
	b.Emit(isa.Instr{Op: isa.OpJalr, Dest: isa.ZeroReg, Src1: isa.LinkReg})
}

// LoadConst emits instructions that materialize a constant into reg.
// Constants that fit in the 32-bit immediate take one instruction; wider
// values take a lui/addi pair covering 48 bits, which is ample for the
// 40-bit address space.
func (b *Builder) LoadConst(reg isa.Reg, v int64) {
	if v == int64(int32(v)) {
		b.EmitImm(isa.OpAddi, reg, isa.ZeroReg, int32(v))
		return
	}
	hi := int32(v >> 16)
	lo := int32(v & 0xffff)
	b.EmitImm(isa.OpLui, reg, isa.ZeroReg, hi)
	if lo != 0 {
		b.EmitImm(isa.OpAddi, reg, reg, lo)
	}
}

// Word appends one 8-byte word to the data segment and returns its address.
func (b *Builder) Word(v uint64) uint64 {
	addr := b.dataPtr
	b.data[addr] = v
	b.dataPtr += 8
	return addr
}

// Array reserves n consecutive words initialized by init(i) and returns the
// base address.
func (b *Builder) Array(n int, init func(i int) uint64) uint64 {
	base := b.dataPtr
	for i := 0; i < n; i++ {
		b.data[b.dataPtr] = init(i)
		b.dataPtr += 8
	}
	return base
}

// DataSize returns the current extent of the data segment in bytes.
func (b *Builder) DataSize() uint64 { return b.dataPtr }

// Build resolves all label fixups and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("program %q: undefined label %q", b.name, f.label)
		}
		b.code[f.pc].Imm = int32(int64(target) - int64(f.pc))
	}
	p := &Program{Name: b.name, Code: b.code, Data: b.data}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for use in generators and tests
// where a build failure is a programming bug.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		//nopanic:invariant callers assert statically-correct programs; see the doc comment
		panic(err)
	}
	return p
}
