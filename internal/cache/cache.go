// Package cache models the memory hierarchy of the simulated machine:
// set-associative L1 instruction and data caches backed by a unified L2 and
// a fixed-latency main memory. The model is a blocking, latency-accurate
// one in the style of SimpleScalar's default hierarchy: each access returns
// the number of cycles it takes, and the timing core charges that latency
// to the instruction. The DIE-IRB paper places the memory system outside
// the Sphere of Replication, so both instruction streams share one
// hierarchy and a duplicated load performs only its address calculation —
// exactly one cache access happens per architected memory instruction.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Sets       int // number of sets (power of two)
	Assoc      int // ways per set
	BlockBytes int // line size (power of two)
	HitLat     int // access latency in cycles
}

// SizeBytes returns the capacity of the configured cache.
func (c Config) SizeBytes() int { return c.Sets * c.Assoc * c.BlockBytes }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: Sets = %d, want power of two", c.Sets)
	}
	if c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache: BlockBytes = %d, want power of two", c.BlockBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: Assoc = %d, want > 0", c.Assoc)
	}
	if c.HitLat <= 0 {
		return fmt.Errorf("cache: HitLat = %d, want > 0", c.HitLat)
	}
	return nil
}

// Stats counts the traffic seen by one cache level.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access, or zero when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative, write-back, write-allocate cache level with
// LRU replacement.
type Cache struct {
	cfg   Config
	tags  []uint64 // tag+1 per line; 0 = invalid
	dirty []bool
	lru   []uint64
	clock uint64
	Stats Stats
}

// New builds a cache level.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets * cfg.Assoc
	return &Cache{
		cfg:   cfg,
		tags:  make([]uint64, n),
		dirty: make([]bool, n),
		lru:   make([]uint64, n),
	}, nil
}

// access looks addr up, allocating on miss. It reports whether the access
// hit and whether a dirty line was evicted.
func (c *Cache) access(addr uint64, write bool) (hit, writeback bool) {
	c.Stats.Accesses++
	block := addr / uint64(c.cfg.BlockBytes)
	set := int(block) & (c.cfg.Sets - 1)
	tag := block + 1
	base := set * c.cfg.Assoc
	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.clock++
			c.lru[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return true, false
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.Stats.Misses++
	writeback = c.tags[victim] != 0 && c.dirty[victim]
	if writeback {
		c.Stats.Writebacks++
	}
	c.clock++
	c.tags[victim] = tag
	c.dirty[victim] = write
	c.lru[victim] = c.clock
	return false, writeback
}

// Probe reports whether addr is resident without touching LRU state or
// statistics. Tests and tooling use it.
func (c *Cache) Probe(addr uint64) bool {
	block := addr / uint64(c.cfg.BlockBytes)
	base := (int(block) & (c.cfg.Sets - 1)) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == block+1 {
			return true
		}
	}
	return false
}

// HierarchyConfig describes the full memory system.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MemLat       int // main memory access latency in cycles
}

// DefaultHierarchy returns the memory system modeled for the paper's
// platform: 16KB 2-way L1I, 16KB 4-way L1D (1-cycle), 256KB 4-way unified
// L2 (6-cycle), 100-cycle main memory.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:    Config{Sets: 256, Assoc: 2, BlockBytes: 32, HitLat: 1},
		L1D:    Config{Sets: 128, Assoc: 4, BlockBytes: 32, HitLat: 1},
		L2:     Config{Sets: 1024, Assoc: 4, BlockBytes: 64, HitLat: 6},
		MemLat: 100,
	}
}

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	cfg HierarchyConfig
	L1I *Cache
	L1D *Cache
	L2  *Cache
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	if cfg.MemLat <= 0 {
		return nil, fmt.Errorf("cache: MemLat = %d, want > 0", cfg.MemLat)
	}
	return &Hierarchy{cfg: cfg, L1I: l1i, L1D: l1d, L2: l2}, nil
}

// AccessI returns the latency of fetching the instruction block at addr.
func (h *Hierarchy) AccessI(addr uint64) int {
	return h.through(h.L1I, addr, false)
}

// AccessD returns the latency of a data access at addr.
func (h *Hierarchy) AccessD(addr uint64, write bool) int {
	return h.through(h.L1D, addr, write)
}

// through performs an L1 access and, on a miss, an L2 access and possibly a
// memory access, composing latencies. Writebacks ride the existing path and
// are counted but add no latency (buffered in a real machine).
func (h *Hierarchy) through(l1 *Cache, addr uint64, write bool) int {
	lat := l1.cfg.HitLat
	hit, _ := l1.access(addr, write)
	if hit {
		return lat
	}
	lat += h.L2.cfg.HitLat
	l2hit, _ := h.L2.access(addr, false)
	if l2hit {
		return lat
	}
	return lat + h.cfg.MemLat
}
