// Package linttest is the analysistest-style harness the repository's
// lint passes share: a testdata Go file annotates the lines that must
// fire with
//
//	// want "fragment of the expected message"
//
// comments, and Run checks the pass's findings against them both ways —
// every want comment must be matched by a finding on its line whose text
// contains the fragment, and every finding must land on a wanted line.
// Extracted from the original nopanic test so each new pass gets the
// same coverage contract: at least one catch and one allowed case per
// testdata package.
package linttest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// want is one expectation: file base name, line, message fragment.
type want struct {
	file string
	line int
}

// Wants parses the `// want "..."` comments of every .go file directly
// inside dir (including _test-suffixed and testdata inputs — the harness
// reads them as data, not as code under test).
func Wants(t *testing.T, dir string) map[want]string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[want]string{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing testdata %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				line := fset.Position(c.Pos()).Line
				// `// want-next "..."` expects the finding on the line
				// below — for lines that cannot carry a trailing comment,
				// like a bare annotation marker.
				if rest, ok := strings.CutPrefix(text, "want-next "); ok {
					text, line = "want "+rest, line+1
				}
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				frag := strings.Trim(strings.TrimPrefix(text, "want "), "`\"")
				wants[want{file: e.Name(), line: line}] = frag
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("testdata %s has no want comments", dir)
	}
	return wants
}

// Run checks findings produced by check against the want comments in
// dir. Findings are matched by (file base name, line) so the checker may
// report either absolute or root-relative paths.
func Run(t *testing.T, dir string, check func() ([]lint.Finding, error)) {
	t.Helper()
	wants := Wants(t, dir)

	findings, err := check()
	if err != nil {
		t.Fatal(err)
	}
	got := map[want]string{}
	for _, f := range findings {
		got[want{file: filepath.Base(f.File), line: f.Line}] = f.String()
	}

	for w, frag := range wants {
		msg, ok := got[w]
		if !ok {
			t.Errorf("%s:%d: want finding matching %q, got none", w.file, w.line, frag)
			continue
		}
		if !strings.Contains(msg, frag) {
			t.Errorf("%s:%d: finding %q does not match %q", w.file, w.line, msg, frag)
		}
	}
	for w, msg := range got {
		if _, ok := wants[w]; !ok {
			t.Errorf("%s:%d: unexpected finding %q", w.file, w.line, msg)
		}
	}
}
