package fsim

import "repro/internal/isa"

// Front is the dispatch-front execution engine of the timing core. On the
// correct path it steps the underlying Machine directly. After the core
// dispatches a mispredicted branch it calls EnterSpec, and subsequent
// wrong-path instructions execute against a copy-on-write overlay of the
// register file and memory; Squash discards the overlay when the branch
// resolves. This mirrors sim-outorder's speculative-mode execution: wrong-
// path instructions compute real (but doomed) values and therefore exercise
// functional units, issue ports and the IRB exactly like correct-path ones.
type Front struct {
	M *Machine

	spec     bool
	specRegs map[isa.Reg]uint64
	specMem  map[uint64]uint64
}

// NewFront wraps m.
func NewFront(m *Machine) *Front {
	return &Front{
		M:        m,
		specRegs: make(map[isa.Reg]uint64),
		specMem:  make(map[uint64]uint64),
	}
}

// Spec reports whether the front is executing down a wrong path.
func (f *Front) Spec() bool { return f.spec }

// PC returns the correct-path PC (the next instruction StepCorrect would
// execute).
func (f *Front) PC() uint64 { return f.M.PC }

// Halted reports whether correct-path execution has retired OpHalt.
func (f *Front) Halted() bool { return f.M.Halted }

// StepCorrect executes the next correct-path instruction. It must not be
// called while in speculative mode.
func (f *Front) StepCorrect() (Retired, error) {
	if f.spec {
		//nopanic:invariant the core exits speculative mode before stepping the oracle
		panic("fsim: StepCorrect during speculative mode")
	}
	return f.M.Step()
}

// EnterSpec switches the front to wrong-path execution. The core calls it
// after dispatching a branch whose predicted next PC differs from the
// actual next PC; fetch then proceeds down the predicted (wrong) path.
func (f *Front) EnterSpec() {
	if f.spec {
		//nopanic:invariant the core tracks a single outstanding speculation region
		panic("fsim: nested EnterSpec")
	}
	f.spec = true
}

// Squash discards all wrong-path state and returns to the correct path.
// Squash on a non-speculating front is a no-op, matching the pipeline's
// recovery logic which squashes unconditionally.
func (f *Front) Squash() {
	f.spec = false
	clear(f.specRegs)
	clear(f.specMem)
}

// StepSpecAt executes the instruction at pc against the speculative
// overlay. Unlike StepCorrect the caller chooses the PC: wrong-path fetch
// follows the branch predictor, not the computed next PC.
func (f *Front) StepSpecAt(pc uint64) Retired {
	if !f.spec {
		//nopanic:invariant callers pair StepSpecAt with EnterSpec
		panic("fsim: StepSpecAt outside speculative mode")
	}
	in := f.M.Prog.Fetch(pc)
	r := exec(in, pc, f.readSpec, specMemReader{f})
	if in.Op.Info().HasDest && in.Dest != isa.ZeroReg {
		f.specRegs[in.Dest] = r.Result
	}
	if in.Op.Info().IsStore {
		f.specMem[r.Addr] = r.StoreVal
	}
	return r
}

func (f *Front) readSpec(r isa.Reg) uint64 {
	if r == isa.ZeroReg {
		return 0
	}
	if v, ok := f.specRegs[r]; ok {
		return v
	}
	return f.M.Regs[r]
}

// specMemReader layers wrong-path stores over the machine's memory.
type specMemReader struct{ f *Front }

func (s specMemReader) Read(addr uint64) uint64 {
	if v, ok := s.f.specMem[addr]; ok {
		return v
	}
	return s.f.M.Mem.Read(addr)
}
