// Package determinism is the lint pass that keeps the simulation core
// bit-reproducible by construction. The simulator's replay fast path, its
// content-addressed result cache, and the paper's sphere-of-replication
// argument all assume that a run is a pure function of its fingerprinted
// inputs; a single wall-clock read or map-iteration-order dependence
// breaks that silently. The pass forbids, inside a fixed set of packages:
//
//   - wall-clock reads: any reference to time.Now, time.Since or
//     time.Until (calls or method values alike, so the builtin cannot be
//     smuggled through a function variable);
//   - the global math/rand (and math/rand/v2) generators: rand.Int,
//     rand.Float64, rand.Shuffle, ... — seeded local generators built
//     with rand.New / rand.NewPCG / rand.NewSource remain allowed;
//   - ranging over a map, whose order Go randomizes per iteration,
//     except when the loop body only accumulates into slices (the
//     collect-then-sort idiom) — everything else must either be
//     restructured or carry the exemption annotation.
//
// An injected clock seam — one place a deterministic layer hands a real
// clock in from outside — is declared with
//
//	//determinism:exempt <reason>
//
// on the offending line or the line above. The reason is mandatory; an
// empty reason is itself a finding, so the clean tree carries zero
// unexplained annotations. Test files are not checked.
package determinism

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// Marker is the annotation that declares an intentional nondeterminism
// seam, with a mandatory reason.
const Marker = "//determinism:exempt"

// DefaultPackages is the sphere the pass protects: the simulation core
// (whose outputs must be bit-identical across runs, hosts and replay)
// plus the grid runner and the serving layer, whose wall-clock use must
// flow through injected clock seams so their logic stays testable and
// deterministic.
var DefaultPackages = []string{
	"internal/core",
	"internal/fsim",
	"internal/irb",
	"internal/trb",
	"internal/fault",
	"internal/sim",
	"internal/runner",
	"internal/service",
	"internal/fabric",
	"internal/backoff",
	"internal/chaostest",
}

// wallClock lists the time package functions that read the wall clock.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// randAllowed are the math/rand names that do not touch the global
// generator: the constructors of seeded local generators and the
// package's type names. Everything else exported drives the global
// generator and is forbidden.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewZipf": true, "NewChaCha8": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true, "PCG": true, "ChaCha8": true,
}

// Pass is the determinism pass, ready for the repolint driver.
type Pass struct{}

func (Pass) Name() string { return "determinism" }
func (Pass) Doc() string {
	return "simulation core must not read wall clocks, global RNGs, or map iteration order"
}

// Check runs the pass over DefaultPackages relative to root. Package
// directories missing from the tree are skipped, so the pass is safe on
// partial trees.
func (Pass) Check(root string) ([]lint.Finding, error) {
	checker := lint.NewChecker()
	var out []lint.Finding
	for _, rel := range DefaultPackages {
		fs, err := CheckPackage(checker, filepath.Join(root, rel))
		if err != nil {
			return nil, fmt.Errorf("determinism: %s: %w", rel, err)
		}
		out = append(out, fs...)
	}
	lint.SortFindings(out)
	return out, nil
}

// CheckPackage checks one package directory unconditionally (the unit the
// testdata harness drives).
func CheckPackage(checker *lint.Checker, dir string) ([]lint.Finding, error) {
	pkg, err := checker.Check(dir)
	if pkg == nil || err != nil {
		return nil, err
	}
	var out []lint.Finding
	for _, f := range pkg.Files {
		out = append(out, checkFile(pkg, f)...)
	}
	return out, nil
}

func checkFile(pkg *lint.Package, f *ast.File) []lint.Finding {
	marked := lint.MarkedLines(pkg.Fset, f, Marker)
	var out []lint.Finding

	// An exemption without a reason is unexplained and fails the suite.
	for line, reason := range marked {
		if reason == "" {
			pos := pkg.Fset.Position(f.Pos())
			pos.Line, pos.Column = line, 1
			out = append(out, lint.NewFinding("determinism", pos,
				Marker+" needs a reason explaining why the nondeterminism is safe"))
		}
	}

	// imports maps the local name of each import to its path.
	imports := map[string]string{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		imports[name] = path
	}

	exempt := func(pos ast.Node) bool {
		reason, ok := lint.Exempt(marked, pkg.Fset.Position(pos.Pos()).Line)
		return ok && reason != ""
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			// When type information resolved the identifier, trust it:
			// only flag genuine package references, so a local variable
			// named `time` cannot false-positive.
			if obj, resolved := pkg.Info.Uses[id]; resolved {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			switch imports[id.Name] {
			case "time":
				if wallClock[n.Sel.Name] && !exempt(n) {
					out = append(out, lint.NewFinding("determinism",
						pkg.Fset.Position(n.Pos()),
						fmt.Sprintf("wall-clock read time.%s in the deterministic core (inject a clock seam, or annotate with %s <reason>)",
							n.Sel.Name, Marker)))
				}
			case "math/rand", "math/rand/v2":
				if obj, resolved := pkg.Info.Uses[n.Sel]; resolved {
					if _, isType := obj.(*types.TypeName); isType {
						return true
					}
				}
				if !randAllowed[n.Sel.Name] && ast.IsExported(n.Sel.Name) && !exempt(n) {
					out = append(out, lint.NewFinding("determinism",
						pkg.Fset.Position(n.Pos()),
						fmt.Sprintf("global math/rand %s in the deterministic core (use a seeded rand.New generator, or annotate with %s <reason>)",
							n.Sel.Name, Marker)))
				}
			}
		case *ast.RangeStmt:
			tv, ok := pkg.Info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectOnly(n.Body) || exempt(n) {
				return true
			}
			out = append(out, lint.NewFinding("determinism",
				pkg.Fset.Position(n.Pos()),
				fmt.Sprintf("map iteration order feeds computation (collect keys and sort, or annotate with %s <reason>)", Marker)))
		}
		return true
	})
	return out
}

// collectOnly reports whether a range body only accumulates into slices
// (`x = append(x, ...)` statements), the first half of the
// collect-then-sort idiom: the accumulated order is normalized by the
// sort that follows, so the map's iteration order never escapes.
func collectOnly(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			return false
		}
	}
	return true
}
