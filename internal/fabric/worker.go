package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"

	"repro/internal/backoff"
	"repro/internal/runner"
	"repro/internal/service/api"
)

// StatusError is a non-2xx coordinator response that carries no
// Retry-After guidance.
type StatusError struct {
	Path   string
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("fabric: %s: status %d: %s", e.Path, e.Status, e.Msg)
}

// RetryAfterError is a 429/503 coordinator response: the server asked
// the caller to come back after Delay. The worker client honors it in
// place of its own backoff schedule.
type RetryAfterError struct {
	Status int
	Delay  time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("fabric: coordinator busy (status %d), retry after %v", e.Status, e.Delay)
}

// Client speaks the coordinator's lease protocol. Its transport is
// injectable, which is how the chaos tests put a flaky network between
// worker and coordinator.
type Client struct {
	// BaseURL is the coordinator root, e.g. "http://coord:8344".
	BaseURL string
	// HTTPClient performs the requests (nil = http.DefaultClient).
	HTTPClient *http.Client
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return http.DefaultClient
}

// post sends one JSON round trip and decodes the response into out.
func (cl *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("fabric: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fabric: building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("fabric: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("fabric: reading %s response: %w", path, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		delay, ok := backoff.ParseRetryAfter(resp.Header.Get("Retry-After"))
		if !ok {
			delay = time.Second
		}
		return &RetryAfterError{Status: resp.StatusCode, Delay: delay}
	default:
		return &StatusError{Path: path, Status: resp.StatusCode, Msg: string(bytes.TrimSpace(data))}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("fabric: decoding %s response: %w", path, err)
	}
	return nil
}

// Lease asks the coordinator for a batch of cells.
func (cl *Client) Lease(ctx context.Context, req api.LeaseRequest) (api.LeaseResponse, error) {
	var resp api.LeaseResponse
	err := cl.post(ctx, "/v1/lease", req, &resp)
	return resp, err
}

// Heartbeat renews every lease the worker holds.
func (cl *Client) Heartbeat(ctx context.Context, req api.HeartbeatRequest) (api.HeartbeatResponse, error) {
	var resp api.HeartbeatResponse
	err := cl.post(ctx, "/v1/heartbeat", req, &resp)
	return resp, err
}

// Complete reports a batch of finished cells.
func (cl *Client) Complete(ctx context.Context, req api.CompleteRequest) (api.CompleteResponse, error) {
	var resp api.CompleteResponse
	err := cl.post(ctx, "/v1/complete", req, &resp)
	return resp, err
}

// Worker is the pull loop a worker daemon runs against a coordinator:
// lease a batch of cells, heartbeat while executing them, report the
// completions, repeat. Transient coordinator failures back off with the
// shared jittered schedule (honoring an explicit Retry-After when the
// server sends one); a worker that cannot report a completion just stops
// heartbeating it, and the coordinator's lease expiry re-queues the work
// elsewhere — losing a worker never loses a cell.
type Worker struct {
	// Client reaches the coordinator.
	Client *Client
	// ID is this worker's stable identity on the fabric.
	ID string
	// Exec executes a batch of rebuilt jobs locally and returns one
	// outcome per job, in order. The daemon wires the standalone
	// service's grid path (shared trace capture, content-addressed
	// cache, batch planner) in here.
	Exec func(ctx context.Context, jobs []runner.Job) []runner.Outcome
	// MaxCells caps the cells requested per lease (0 = the coordinator's
	// default batch).
	MaxCells int
	// Backoff is the client-side retry schedule (zero = backoff.Default()).
	Backoff backoff.Policy
	// Seed seeds the jitter PRNG (0 = 1).
	Seed uint64
	// OnError, when non-nil, observes transient loop errors (logging
	// seam; the loop always keeps going).
	OnError func(error)
}

// completeAttempts bounds the delivery retries for one completion batch
// before the worker abandons it to the lease-expiry path.
const completeAttempts = 5

// Run pulls and executes work until ctx ends; it always returns ctx's
// error.
func (w *Worker) Run(ctx context.Context) error {
	rng := rand.New(rand.NewPCG(max(w.Seed, 1), 0x77ecc0))
	pol := w.Backoff
	if pol == (backoff.Policy{}) {
		pol = backoff.Default()
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.Client.Lease(ctx, api.LeaseRequest{Worker: w.ID, Max: w.MaxCells})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.observe(err)
			failures++
			if !sleepCtx(ctx, retryDelay(err, pol, failures-1, rng)) {
				return ctx.Err()
			}
			continue
		}
		failures = 0
		if len(resp.Leases) == 0 {
			idle := time.Duration(resp.PollMillis) * time.Millisecond
			if idle <= 0 {
				idle = pol.Delay(0, rng)
			}
			if !sleepCtx(ctx, idle) {
				return ctx.Err()
			}
			continue
		}
		w.process(ctx, resp, pol, rng)
	}
}

// retryDelay picks the wait after a failed coordinator call: the
// server's explicit Retry-After when it sent one, the shared backoff
// schedule otherwise.
func retryDelay(err error, pol backoff.Policy, attempt int, rng *rand.Rand) time.Duration {
	if ra, ok := err.(*RetryAfterError); ok {
		return ra.Delay
	}
	return pol.Delay(attempt, rng)
}

// process executes one leased batch under a heartbeat and reports it.
func (w *Worker) process(ctx context.Context, leased api.LeaseResponse, pol backoff.Policy, rng *rand.Rand) {
	jobs := make([]runner.Job, 0, len(leased.Leases))
	idx := make([]int, 0, len(leased.Leases)) // lease index per job
	comps := make([]api.CellCompletion, len(leased.Leases))
	for i, l := range leased.Leases {
		comps[i] = api.CellCompletion{LeaseID: l.ID, CellID: l.Cell.ID}
		job, err := JobFromCell(l.Cell)
		if err != nil {
			comps[i].Error = err.Error()
			continue
		}
		jobs = append(jobs, job)
		idx = append(idx, i)
	}

	// Heartbeat for as long as the batch executes, so the leases outlive
	// a batch slower than the TTL. A heartbeat failure is not fatal —
	// the next one may get through before the lease expires.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		every := time.Duration(leased.HeartbeatMillis) * time.Millisecond
		if every <= 0 {
			every = time.Second
		}
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if _, err := w.Client.Heartbeat(hbCtx, api.HeartbeatRequest{Worker: w.ID}); err != nil && hbCtx.Err() == nil {
					w.observe(err)
				}
			}
		}
	}()

	if len(jobs) > 0 {
		outs := w.Exec(ctx, jobs)
		for k, i := range idx {
			if k >= len(outs) {
				comps[i].Error = "fabric: worker executor returned short outcome list"
				continue
			}
			o := outs[k]
			if o.Err != nil {
				comps[i].Error = o.Err.Error()
				continue
			}
			res := o.Result
			comps[i].Result = &res
			comps[i].CacheHit = o.CacheHit
		}
	}
	stopHB()
	<-hbDone
	if ctx.Err() != nil {
		return // dying mid-batch: the lease expiry re-queues the cells
	}

	req := api.CompleteRequest{Worker: w.ID, Cells: comps}
	for attempt := 0; attempt < completeAttempts; attempt++ {
		if _, err := w.Client.Complete(ctx, req); err == nil {
			return
		} else {
			w.observe(err)
			if !sleepCtx(ctx, retryDelay(err, pol, attempt, rng)) {
				return
			}
		}
	}
	// Delivery failed repeatedly: stop trying. The cells' leases expire
	// and the coordinator re-runs them — slower, never lost.
}

func (w *Worker) observe(err error) {
	if w.OnError != nil {
		w.OnError(err)
	}
}

// sleepCtx waits d or until ctx ends; it reports whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
