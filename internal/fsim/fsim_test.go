package fsim

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/program"
)

// sumProgram computes sum(1..n) into r2 via a loop, stores it, reloads it
// into r3, and halts.
func sumProgram(n int64) *program.Program {
	b := program.NewBuilder("sum")
	addr := b.Word(0)
	b.LoadConst(1, n) // r1 = n
	b.Label("loop")
	b.EmitOp(isa.OpAdd, 2, 2, 1)                // r2 += r1
	b.EmitImm(isa.OpAddi, 1, 1, -1)             // r1--
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop") // while r1 != 0
	b.LoadConst(4, int64(addr))                 // r4 = &word
	b.EmitImm(isa.OpStore, 0, 4, 0)             // placeholder, fixed below
	b.Emit(isa.Instr{Op: isa.OpHalt})
	p := b.MustBuild()
	// EmitImm can't express store's src2; patch it in directly.
	p.Code[len(p.Code)-2] = isa.Instr{Op: isa.OpStore, Src1: 4, Src2: 2}
	return p
}

func TestMachineSumLoop(t *testing.T) {
	p := sumProgram(10)
	m := New(p)
	n, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("machine did not halt")
	}
	if m.Regs[2] != 55 {
		t.Errorf("r2 = %d, want 55", m.Regs[2])
	}
	if n == 0 || n > 1000 {
		t.Errorf("retired %d instructions", n)
	}
}

func TestMachineStoreLoad(t *testing.T) {
	b := program.NewBuilder("sl")
	addr := b.Word(7)
	b.LoadConst(1, int64(addr))
	b.EmitImm(isa.OpLoad, 2, 1, 0) // r2 = mem[addr] = 7
	b.EmitImm(isa.OpAddi, 2, 2, 1) // r2 = 8
	b.Emit(isa.Instr{Op: isa.OpStore, Src1: 1, Src2: 2, Imm: 8})
	b.EmitImm(isa.OpLoad, 3, 1, 8) // r3 = 8
	b.Emit(isa.Instr{Op: isa.OpHalt})
	m := New(b.MustBuild())
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 8 {
		t.Errorf("r3 = %d, want 8", m.Regs[3])
	}
	if got := m.Mem.Read(addr + 8); got != 8 {
		t.Errorf("mem[addr+8] = %d, want 8", got)
	}
}

func TestMachineCallRet(t *testing.T) {
	b := program.NewBuilder("call")
	b.Call("double")
	b.Call("double")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	b.Label("double")
	b.EmitOp(isa.OpAdd, 1, 1, 1)
	b.Ret()
	m := New(b.MustBuild())
	m.Regs[1] = 3
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 12 {
		t.Errorf("r1 = %d, want 12", m.Regs[1])
	}
}

func TestMachineZeroRegHardwired(t *testing.T) {
	b := program.NewBuilder("zero")
	b.EmitImm(isa.OpAddi, isa.ZeroReg, isa.ZeroReg, 42)
	b.EmitOp(isa.OpAdd, 1, isa.ZeroReg, isa.ZeroReg)
	b.Emit(isa.Instr{Op: isa.OpHalt})
	m := New(b.MustBuild())
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Regs[0] != 0 || m.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d; zero register not hardwired", m.Regs[0], m.Regs[1])
	}
}

func TestStepOnHaltedErrors(t *testing.T) {
	b := program.NewBuilder("halt")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	m := New(b.MustBuild())
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err == nil {
		t.Error("Step on halted machine did not error")
	}
}

func TestRetiredRecordFields(t *testing.T) {
	b := program.NewBuilder("rec")
	addr := b.Word(5)
	b.LoadConst(1, int64(addr)) // pc 0
	b.EmitImm(isa.OpLoad, 2, 1, 0)
	b.EmitOp(isa.OpAdd, 3, 2, 2)
	b.Branch(isa.OpBeq, 3, 3, "t")
	b.Emit(isa.Instr{Op: isa.OpNop})
	b.Label("t")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	m := New(b.MustBuild())

	r0, _ := m.Step()
	if r0.Seq != 1 || r0.PC != 0 {
		t.Errorf("first record: seq=%d pc=%d", r0.Seq, r0.PC)
	}
	rLoad, _ := m.Step()
	if rLoad.Addr != addr || rLoad.Result != 5 {
		t.Errorf("load record: addr=%d result=%d", rLoad.Addr, rLoad.Result)
	}
	rAdd, _ := m.Step()
	if rAdd.Src1 != 5 || rAdd.Src2 != 5 || rAdd.Result != 10 {
		t.Errorf("add record: %+v", rAdd)
	}
	rBr, _ := m.Step()
	if !rBr.Taken || rBr.NextPC != 5 {
		t.Errorf("branch record: taken=%v next=%d", rBr.Taken, rBr.NextPC)
	}
	rHalt, _ := m.Step()
	if !rHalt.Halt {
		t.Error("halt record not marked")
	}
}

func TestFrontSpecOverlay(t *testing.T) {
	b := program.NewBuilder("spec")
	addr := b.Word(100)
	b.LoadConst(1, int64(addr))                          // pc 0: r1 = addr
	b.EmitImm(isa.OpAddi, 2, 0, 1)                       // pc 1: r2 = 1
	b.EmitImm(isa.OpAddi, 3, 0, 2)                       // pc 2
	b.Emit(isa.Instr{Op: isa.OpStore, Src1: 1, Src2: 3}) // pc 3: mem[addr]=2
	b.Emit(isa.Instr{Op: isa.OpHalt})                    // pc 4
	f := NewFront(New(b.MustBuild()))

	if _, err := f.StepCorrect(); err != nil { // pc 0
		t.Fatal(err)
	}
	r1, _ := f.StepCorrect() // pc 1: r2 = 1
	if r1.Result != 1 {
		t.Fatalf("r2 = %d", r1.Result)
	}

	// Pretend pc 1 was a mispredicted branch: go down a wrong path that
	// overwrites r2 and memory.
	f.EnterSpec()
	if !f.Spec() {
		t.Fatal("Spec() = false after EnterSpec")
	}
	sr := f.StepSpecAt(2) // wrong path executes pc2: r3 = 2
	if sr.Result != 2 {
		t.Errorf("spec r3 = %d", sr.Result)
	}
	f.StepSpecAt(3) // wrong path store mem[addr] = 2
	// Wrong-path effects must be visible inside the overlay...
	if got := (specMemReader{f}).Read(addr); got != 2 {
		t.Errorf("spec mem read = %d, want 2", got)
	}
	// ...but not in the architected machine.
	if got := f.M.Mem.Read(addr); got != 100 {
		t.Errorf("architected mem = %d, want 100", got)
	}
	if f.M.Regs[3] != 0 {
		t.Errorf("architected r3 = %d, want 0", f.M.Regs[3])
	}

	f.Squash()
	if f.Spec() {
		t.Error("Spec() = true after Squash")
	}
	// Correct path resumes where it left off (pc 2).
	r2, _ := f.StepCorrect()
	if r2.PC != 2 || r2.Result != 2 {
		t.Errorf("post-squash step: %+v", r2)
	}
	r3, _ := f.StepCorrect() // the real store
	_ = r3
	if got := f.M.Mem.Read(addr); got != 2 {
		t.Errorf("mem after real store = %d", got)
	}
}

func TestFrontSpecReadsThroughToArchState(t *testing.T) {
	b := program.NewBuilder("spec2")
	b.EmitImm(isa.OpAddi, 1, 0, 7) // pc 0
	b.EmitOp(isa.OpAdd, 2, 1, 1)   // pc 1
	b.Emit(isa.Instr{Op: isa.OpHalt})
	f := NewFront(New(b.MustBuild()))
	f.StepCorrect()
	f.EnterSpec()
	// Wrong path reads r1, which only exists in architected state.
	r := f.StepSpecAt(1)
	if r.Result != 14 {
		t.Errorf("spec add = %d, want 14", r.Result)
	}
	f.Squash()
}

func TestFrontPanics(t *testing.T) {
	b := program.NewBuilder("p")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	f := NewFront(New(b.MustBuild()))
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("StepSpecAt outside spec", func() { f.StepSpecAt(0) })
	f.EnterSpec()
	mustPanic("nested EnterSpec", func() { f.EnterSpec() })
	mustPanic("StepCorrect during spec", func() { f.StepCorrect() })
}

func TestMemorySparse(t *testing.T) {
	m := NewMemory()
	if m.Read(0) != 0 || m.Read(1<<39) != 0 {
		t.Error("unwritten memory not zero")
	}
	m.Write(8, 42)
	m.Write(1<<30, 43)
	if m.Read(8) != 42 || m.Read(1<<30) != 43 {
		t.Error("write/read mismatch")
	}
	if m.Footprint() != 2 {
		t.Errorf("footprint = %d, want 2", m.Footprint())
	}
}

// Property: memory is a map — last write wins, distinct aligned addresses
// do not interfere.
func TestMemoryProperty(t *testing.T) {
	f := func(addrs []uint64, vals []uint64) bool {
		m := NewMemory()
		want := make(map[uint64]uint64)
		for i, a := range addrs {
			if i >= len(vals) {
				break
			}
			a = a % (1 << 40) &^ 7
			m.Write(a, vals[i])
			want[a] = vals[i]
		}
		for a, v := range want {
			if m.Read(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a machine run is deterministic — two runs of the same program
// produce identical final register files and instruction counts.
func TestMachineDeterministicProperty(t *testing.T) {
	f := func(n uint8) bool {
		p := sumProgram(int64(n%50) + 1)
		m1, m2 := New(p), New(p)
		m1.Run(10000)
		m2.Run(10000)
		return m1.Regs == m2.Regs && m1.Count == m2.Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFrontAccessors(t *testing.T) {
	b := program.NewBuilder("acc")
	b.EmitImm(isa.OpAddi, 1, 0, 1)
	b.Emit(isa.Instr{Op: isa.OpHalt})
	f := NewFront(New(b.MustBuild()))
	if f.PC() != 0 || f.Halted() {
		t.Error("fresh front state wrong")
	}
	f.StepCorrect()
	if f.PC() != 1 {
		t.Errorf("PC = %d after one step", f.PC())
	}
	f.StepCorrect()
	if !f.Halted() {
		t.Error("front not halted after halt retired")
	}
}
