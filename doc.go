// Package repro is a from-scratch Go reproduction of "A Complexity-
// Effective Approach to ALU Bandwidth Enhancement for Instruction-Level
// Temporal Redundancy" (Parashar, Gurumurthi & Sivasubramaniam, ISCA 2004).
//
// The repository contains a cycle-level out-of-order superscalar simulator
// (internal/core) with the paper's three execution models — SIE, DIE and
// DIE-IRB — plus every substrate they need: the ISA and functional
// simulator, branch predictors, a cache hierarchy, the instruction reuse
// buffer, 12 SPEC2000-like synthetic workloads, and a fault-injection
// framework. The benchmark harness in bench_test.go and cmd/sweep
// regenerates every figure and table of the paper's evaluation; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results.
package repro
