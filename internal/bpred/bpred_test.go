package bpred

import (
	"testing"

	"repro/internal/isa"
)

func branchAt(imm int32) isa.Instr {
	return isa.Instr{Op: isa.OpBne, Src1: 1, Src2: 0, Imm: imm}
}

func TestConfigValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	bad := Default()
	bad.BimodalSize = 1000 // not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("accepted non-power-of-two table")
	}
	bad2 := Default()
	bad2.Kind = "oracle"
	if err := bad2.Validate(); err == nil {
		t.Error("accepted unknown kind")
	}
	bad3 := Default()
	bad3.HistBits = 0
	if err := bad3.Validate(); err == nil {
		t.Error("accepted zero history bits")
	}
}

// trainLoop trains p with n occurrences of a branch at pc with the given
// outcome and returns how many of the last half were predicted correctly.
func trainLoop(p *Predictor, pc uint64, in isa.Instr, outcomes []bool) int {
	correct := 0
	for i, taken := range outcomes {
		pred := p.Predict(pc, in)
		actual := pc + 1
		if taken {
			actual = isa.CtrlTarget(in.Op, in.Imm, 0, pc)
		}
		if i >= len(outcomes)/2 && pred == actual {
			correct++
		}
		p.Update(pc, in, taken, actual, pred)
	}
	return correct
}

func TestBimodalLearnsBias(t *testing.T) {
	for _, kind := range []Kind{Bimodal, Gshare, Combined} {
		cfg := Default()
		cfg.Kind = kind
		p := mustNew(cfg)
		outcomes := make([]bool, 100)
		for i := range outcomes {
			outcomes[i] = true
		}
		if got := trainLoop(p, 10, branchAt(5), outcomes); got < 49 {
			t.Errorf("%s: always-taken branch predicted %d/50 in second half", kind, got)
		}
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// Alternating T/N/T/N is hopeless for bimodal but trivial for a
	// history-based predictor.
	pat := make([]bool, 400)
	for i := range pat {
		pat[i] = i%2 == 0
	}
	cfgG := Default()
	cfgG.Kind = Gshare
	g := mustNew(cfgG)
	gGot := trainLoop(g, 10, branchAt(5), pat)

	cfgB := Default()
	cfgB.Kind = Bimodal
	b := mustNew(cfgB)
	bGot := trainLoop(b, 10, branchAt(5), pat)

	if gGot <= bGot {
		t.Errorf("gshare (%d/200) should beat bimodal (%d/200) on alternating pattern", gGot, bGot)
	}
	if gGot < 180 {
		t.Errorf("gshare learned only %d/200 of alternating pattern", gGot)
	}
}

func TestCombinedTracksBetterComponent(t *testing.T) {
	pat := make([]bool, 400)
	for i := range pat {
		pat[i] = i%2 == 0
	}
	c := mustNew(Default())
	if got := trainLoop(c, 10, branchAt(5), pat); got < 150 {
		t.Errorf("combined predictor learned only %d/200 of alternating pattern", got)
	}
}

func TestStaticTaken(t *testing.T) {
	cfg := Default()
	cfg.Kind = Taken
	p := mustNew(cfg)
	in := branchAt(7)
	if got := p.Predict(100, in); got != 107 {
		t.Errorf("taken predictor: next = %d, want 107", got)
	}
}

func TestPredictNonControl(t *testing.T) {
	p := mustNew(Default())
	if got := p.Predict(5, isa.Instr{Op: isa.OpAdd, Dest: 1, Src1: 2, Src2: 3}); got != 6 {
		t.Errorf("non-control next = %d, want 6", got)
	}
}

func TestDirectJumpAndCall(t *testing.T) {
	p := mustNew(Default())
	j := isa.Instr{Op: isa.OpJump, Imm: -10}
	if got := p.Predict(50, j); got != 40 {
		t.Errorf("jump predicted %d, want 40", got)
	}
	call := isa.Instr{Op: isa.OpCall, Dest: isa.LinkReg, Imm: 20}
	if got := p.Predict(50, call); got != 70 {
		t.Errorf("call predicted %d, want 70", got)
	}
}

func TestRASPredictsReturns(t *testing.T) {
	p := mustNew(Default())
	call := isa.Instr{Op: isa.OpCall, Dest: isa.LinkReg, Imm: 100}
	ret := isa.Instr{Op: isa.OpJalr, Dest: isa.ZeroReg, Src1: isa.LinkReg}
	p.Predict(10, call) // pushes 11
	p.Predict(20, call) // pushes 21
	if got := p.Predict(200, ret); got != 21 {
		t.Errorf("first return predicted %d, want 21", got)
	}
	if got := p.Predict(150, ret); got != 11 {
		t.Errorf("second return predicted %d, want 11", got)
	}
	// Empty stack falls back to pc+1.
	if got := p.Predict(300, ret); got != 301 {
		t.Errorf("empty-RAS return predicted %d, want 301", got)
	}
}

func TestRASWrapsAround(t *testing.T) {
	cfg := Default()
	cfg.RASSize = 2
	p := mustNew(cfg)
	call := isa.Instr{Op: isa.OpCall, Dest: isa.LinkReg, Imm: 100}
	ret := isa.Instr{Op: isa.OpJalr, Dest: isa.ZeroReg, Src1: isa.LinkReg}
	p.Predict(10, call)
	p.Predict(20, call)
	p.Predict(30, call) // overwrites the oldest entry
	if got := p.Predict(400, ret); got != 31 {
		t.Errorf("return predicted %d, want 31", got)
	}
	if got := p.Predict(400, ret); got != 21 {
		t.Errorf("return predicted %d, want 21", got)
	}
}

func TestBTBIndirectJumps(t *testing.T) {
	p := mustNew(Default())
	jr := isa.Instr{Op: isa.OpJalr, Dest: isa.ZeroReg, Src1: 5}
	// Cold BTB: falls through.
	if got := p.Predict(10, jr); got != 11 {
		t.Errorf("cold indirect predicted %d, want 11", got)
	}
	p.Update(10, jr, false, 500, 11)
	if got := p.Predict(10, jr); got != 500 {
		t.Errorf("trained indirect predicted %d, want 500", got)
	}
	if p.Stats.IndirJumps != 1 || p.Stats.IndirMiss != 1 {
		t.Errorf("indirect stats = %+v", p.Stats)
	}
}

func TestBTBNoAdjacentPCAliasing(t *testing.T) {
	b := newBTB(16, 2)
	b.insert(4, 100)
	b.insert(5, 200)
	if tg, ok := b.lookup(4); !ok || tg != 100 {
		t.Errorf("lookup(4) = %d,%v", tg, ok)
	}
	if tg, ok := b.lookup(5); !ok || tg != 200 {
		t.Errorf("lookup(5) = %d,%v", tg, ok)
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	b := newBTB(1, 2) // one set, two ways
	b.insert(1, 101)
	b.insert(2, 102)
	b.lookup(1)      // make pc=1 most recent
	b.insert(3, 103) // evicts pc=2
	if _, ok := b.lookup(2); ok {
		t.Error("pc=2 should have been evicted")
	}
	if tg, ok := b.lookup(1); !ok || tg != 101 {
		t.Errorf("pc=1 evicted wrongly: %d,%v", tg, ok)
	}
	if tg, ok := b.lookup(3); !ok || tg != 103 {
		t.Errorf("pc=3 missing: %d,%v", tg, ok)
	}
}

func TestStatsCounting(t *testing.T) {
	p := mustNew(Default())
	in := branchAt(5)
	pred := p.Predict(10, in)
	p.Update(10, in, true, 15, pred)
	p.Update(10, in, false, 11, 15) // a mispredict
	if p.Stats.CondBranches != 2 {
		t.Errorf("CondBranches = %d, want 2", p.Stats.CondBranches)
	}
	if p.Stats.CondMiss != 1 {
		t.Errorf("CondMiss = %d, want 1", p.Stats.CondMiss)
	}
}

func TestSaturatingCounters(t *testing.T) {
	if satInc(3) != 3 {
		t.Error("satInc(3) != 3")
	}
	if satDec(0) != 0 {
		t.Error("satDec(0) != 0")
	}
	if satInc(1) != 2 || satDec(2) != 1 {
		t.Error("mid-range counter updates wrong")
	}
}

// mustNew is the test-side New that panics on configuration errors.
func mustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}
