package fsim

// pageWords is the number of 8-byte words per page (4 KiB pages).
const pageWords = 512

// Memory is a sparse, page-granular 64-bit word-addressable memory covering
// the ISA's 40-bit address space. Unwritten locations read as zero, which
// keeps wrong-path execution with garbage addresses well defined.
type Memory struct {
	pages map[uint64]*[pageWords]uint64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageWords]uint64)}
}

// Read returns the 8-byte word at addr (8-byte aligned by the ISA's
// effective-address computation).
func (m *Memory) Read(addr uint64) uint64 {
	pg := m.pages[addr/8/pageWords]
	if pg == nil {
		return 0
	}
	return pg[addr/8%pageWords]
}

// Write stores an 8-byte word at addr.
func (m *Memory) Write(addr uint64, v uint64) {
	idx := addr / 8 / pageWords
	pg := m.pages[idx]
	if pg == nil {
		pg = new([pageWords]uint64)
		m.pages[idx] = pg
	}
	pg[addr/8%pageWords] = v
}

// Footprint returns the number of distinct pages touched, a cheap proxy for
// working-set size used by workload tests.
func (m *Memory) Footprint() int { return len(m.pages) }
