package sim

// This file is the batched simulation driver: one prepared run serves K
// lanes that agree on everything but their fault injector. See
// core.BatchSim for the lockstep/divergence model; here is the driver
// plumbing around it — shared setup, the verification oracle on the
// leader, and per-lane result fan-out.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// BatchLane is one cell of a batched run: a display name for its Result
// and the injector that distinguishes it from its siblings. A nil
// Injector is a fault-free lane, served the leader's result directly.
type BatchLane struct {
	Name     string
	Injector core.FaultInjector
}

// BatchOutcome is one lane's terminal state. Exactly one of the two
// shapes applies: a convergent lane carries the Result (bit-identical to
// the lane's own scalar run), a diverged lane carries the strike point
// and must be re-run scalar by the caller after resetting its injector.
type BatchOutcome struct {
	Result Result
	// Diverged reports that the lane's injector fired: from that
	// opportunity on the lane's trajectory differs from the leader's, so
	// the batch has no result for it.
	Diverged bool
	// StruckSeq is the architected sequence number of the leader
	// instruction whose injection opportunity evicted the lane (0 when
	// the strike hit the IRB array or a wrong-path copy).
	StruckSeq uint64
}

// RunBatchContext simulates K lanes of profile p on configuration cfg in
// lockstep through one core, paying program generation, trace replay,
// fetch/decode/dispatch and the verification oracle once for the whole
// batch. Options.Injector must be nil — injectors ride in the lanes — and
// every non-nil lane injector must implement core.BatchableInjector.
//
// The returned slice has one outcome per lane. Convergent lanes' Results
// are bit-identical to what RunContext would produce for them, including
// their injector's final state; diverged lanes are flagged for a scalar
// re-run. When every lane diverges the leader exits early (the batch is
// drained) rather than finishing a run nobody consumes.
//
// A non-nil error reports that the leader could not complete: the batch
// produced nothing and every lane should fall back to a scalar run, which
// reproduces the error with per-cell granularity.
func RunBatchContext(ctx context.Context, name string, cfg core.Config, p workload.Profile, opts Options, lanes []BatchLane) ([]BatchOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Injector != nil {
		return nil, fmt.Errorf("%w: injectors ride in lanes, not in Options", ErrBatchMisuse)
	}
	if len(lanes) == 0 {
		return nil, fmt.Errorf("%w: no lanes", ErrBatchMisuse)
	}
	if opts.Insns == 0 {
		opts.Insns = DefaultInsns
	}
	c, prog, p, err := prepareRun(ctx, cfg, p, opts)
	if err != nil {
		return nil, err
	}
	defer c.Release()

	injs := make([]core.FaultInjector, len(lanes))
	for i := range lanes {
		injs[i] = lanes[i].Injector
	}
	bs, err := core.NewBatchSim(c, injs)
	if err != nil {
		return nil, err
	}
	if opts.Verify {
		oracle, oerr := commitOracle(c, opts, prog, p.Name, name)
		if oerr != nil {
			return nil, oerr
		}
		c.OnCommit = oracle
	}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, c.RequestStop)
		defer stop()
	}

	runErr := c.Run()
	drained := errors.Is(runErr, core.ErrBatchDrained)
	if runErr != nil && !drained {
		return nil, mapRunErr(runErr, ctx, p.Name, name)
	}
	if !drained && opts.Program == nil && c.Stats.Committed < opts.Insns {
		return nil, fmt.Errorf("%w: %s on %s committed only %d/%d instructions",
			ErrProgramTooShort, p.Name, name, c.Stats.Committed, opts.Insns)
	}

	leader := harvest(c, p.Name, name, cfg.Mode)
	outs := make([]BatchOutcome, len(lanes))
	for i := range lanes {
		if seq, div := bs.Diverged(i); div {
			outs[i] = BatchOutcome{Diverged: true, StruckSeq: seq}
			continue
		}
		r := leader
		r.Config = lanes[i].Name
		if leader.IRB != nil {
			st := *leader.IRB
			r.IRB = &st // lanes must not share mutable state
		}
		outs[i] = BatchOutcome{Result: r}
	}
	return outs, nil
}
