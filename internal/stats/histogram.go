package stats

import "math"

// histSubBuckets is the number of linear sub-buckets per power of two.
// Eight sub-buckets bound the relative quantile error at 1/16 of an octave
// base, i.e. ≤ 12.5%, plenty for the p50/p99 latency figures the serving
// layer reports while keeping the whole histogram a few hundred counters.
const histSubBuckets = 8

// histBuckets spans 2^-30 .. 2^33 (roughly a nanosecond to a few hundred
// years when observations are seconds), clamping anything outside.
const histBuckets = 64 * histSubBuckets

// Histogram accumulates positive float64 observations into geometrically
// spaced buckets for cheap approximate quantiles: the serving layer feeds
// it per-run latencies (in seconds) and reports p50/p99 on /metrics. The
// zero value is ready to use. Histogram is not safe for concurrent use;
// callers that share one across goroutines must serialize access.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(x float64) int {
	if !(x > 0) || math.IsInf(x, 1) { // also catches NaN
		x = math.Ldexp(1, -30)
	}
	// frexp: x = frac * 2^exp with frac in [0.5, 1).
	frac, exp := math.Frexp(x)
	sub := int((frac - 0.5) * 2 * histSubBuckets) // 0..histSubBuckets-1
	i := (exp+30)*histSubBuckets + sub
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpper returns the upper bound of bucket i, the value Quantile
// reports for observations landing in it.
func bucketUpper(i int) float64 {
	exp := i/histSubBuckets - 30
	frac := 0.5 + float64(i%histSubBuckets+1)/(2*histSubBuckets)
	return math.Ldexp(frac, exp)
}

// Observe records one observation. Non-positive, NaN and infinite values
// clamp into the extreme buckets rather than being dropped, so Count always
// equals the number of Observe calls.
func (h *Histogram) Observe(x float64) {
	i := bucketOf(x)
	h.counts[i]++
	h.count++
	h.sum += x
	if h.count == 1 || x < h.min {
		h.min = x
	}
	if h.count == 1 || x > h.max {
		h.max = x
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Quantile returns an upper bound on the p-quantile (p in [0, 1]) that is
// within one bucket (≤12.5% relative error) of the true value, clamped to
// the observed min/max. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Rank of the target observation, 1-based, rounded up.
	rank := uint64(math.Ceil(p * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketUpper(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}
