package fsim

import (
	"fmt"
	"sync"

	"repro/internal/program"
)

// Trace is the recorded Retired stream of one functional execution of a
// program, captured once and replayed many times. The record stream for a
// (program, instruction budget) pair is deterministic, so an experiment
// grid that runs the same benchmark on eight machine configurations can
// interpret it once and fan the flat read-only buffer out to every cell.
//
// A Trace is immutable after Capture and safe for concurrent replay from
// any number of goroutines.
type Trace struct {
	prog *program.Program
	recs []Retired

	preflightOnce sync.Once
	preflightErr  error
}

// initialTraceCap bounds the first buffer allocation in Capture so a huge
// instruction budget on a program that halts early does not reserve
// gigabytes up front.
const initialTraceCap = 1 << 20

// Capture functionally executes prog from its entry point, recording up
// to maxInstrs retired records (fewer if the program halts first).
func Capture(prog *program.Program, maxInstrs uint64) (*Trace, error) {
	capHint := maxInstrs
	if capHint > initialTraceCap {
		capHint = initialTraceCap
	}
	t := &Trace{prog: prog, recs: make([]Retired, 0, capHint)}
	m := New(prog)
	for uint64(len(t.recs)) < maxInstrs && !m.Halted {
		r, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("fsim: capture of %q: %w", prog.Name, err)
		}
		t.recs = append(t.recs, r)
	}
	return t, nil
}

// Prog returns the program the trace was captured from. Replaying callers
// must execute exactly this program object's instruction stream.
func (t *Trace) Prog() *program.Program { return t.prog }

// Len returns the number of recorded instructions.
func (t *Trace) Len() uint64 { return uint64(len(t.recs)) }

// Halts reports whether the recorded execution ended in OpHalt — i.e. the
// trace is the complete dynamic instruction stream of the program, not a
// budget-truncated prefix.
func (t *Trace) Halts() bool {
	return len(t.recs) > 0 && t.recs[len(t.recs)-1].Halt
}

// Covers reports whether a run of n instructions stays within the trace:
// either n records were captured, or the program halts inside the trace
// (so no execution can get past its end).
func (t *Trace) Covers(n uint64) bool { return t.Halts() || t.Len() >= n }

// Preflight memoizes a program-level validation across the many runs that
// share this trace: check runs at most once, on the traced program, and
// every caller observes its result. The simulation driver routes its
// per-run static analysis through here so a grid pays for it once per
// benchmark instead of once per cell.
func (t *Trace) Preflight(check func(*program.Program) error) error {
	t.preflightOnce.Do(func() { t.preflightErr = check(t.prog) })
	return t.preflightErr
}

// Replay returns a cursor over the recorded stream starting at the first
// instruction. Cursors are independent; a shared Trace supports any
// number of concurrent ones.
func (t *Trace) Replay() *Cursor { return &Cursor{recs: t.recs} }

// ReplayFrom returns a cursor positioned after the first skip
// instructions — the oracle-side equivalent of fast-forward.
func (t *Trace) ReplayFrom(skip uint64) *Cursor {
	if skip > uint64(len(t.recs)) {
		skip = uint64(len(t.recs))
	}
	return &Cursor{recs: t.recs, pos: int(skip)}
}

// Cursor yields the records of a Trace in order without re-executing.
// The commit-time divergence oracle steps one per retired instruction.
type Cursor struct {
	recs []Retired
	pos  int
}

// Next returns a pointer to the next record, or nil, false when the trace
// is exhausted. The record is shared read-only state: callers must not
// modify it.
//
//lint:hotpath
func (c *Cursor) Next() (*Retired, bool) {
	if c.pos >= len(c.recs) {
		return nil, false
	}
	r := &c.recs[c.pos]
	c.pos++
	return r, true
}

// Remaining returns how many records the cursor has not yet yielded.
func (c *Cursor) Remaining() uint64 { return uint64(len(c.recs) - c.pos) }

// NewReplay creates a machine that replays t's recorded stream instead of
// interpreting: Step applies each record's architectural side effects
// (register write, store, PC) without decoding or evaluating, which is
// substantially cheaper and bit-identical by construction. When the trace
// is exhausted before the machine halts, Step falls back to live
// interpretation seamlessly — the architectural state at the trace's end
// is exactly what the interpreter needs to continue.
//
// The wrong-path overlay (Front) composes with replay unchanged: the
// overlay reads the machine's registers and memory, which replay keeps as
// current as interpretation would.
func NewReplay(t *Trace) *Machine {
	m := New(t.prog)
	m.replay = t
	return m
}
