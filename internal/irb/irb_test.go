package irb

import (
	"testing"
	"testing/quick"
)

// unlimited returns a config with enough ports that arbitration never
// interferes with the behaviour under test.
func unlimited(entries, assoc, victim int) Config {
	return Config{
		Entries: entries, Assoc: assoc, VictimEntries: victim,
		ReadPorts: 64, WritePorts: 64, RWPorts: 0, LookupLat: 3,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	bad := []Config{
		{Entries: 1000, Assoc: 1, ReadPorts: 1, WritePorts: 1, LookupLat: 1},
		{Entries: 1024, Assoc: 3, ReadPorts: 1, WritePorts: 1, LookupLat: 1},
		{Entries: 1024, Assoc: 1, ReadPorts: 0, WritePorts: 1, RWPorts: 0, LookupLat: 1},
		{Entries: 1024, Assoc: 1, ReadPorts: 1, WritePorts: 0, RWPorts: 0, LookupLat: 1},
		{Entries: 1024, Assoc: 1, ReadPorts: 1, WritePorts: 1, LookupLat: 0},
		{Entries: 1024, Assoc: 1, VictimEntries: -1, ReadPorts: 1, WritePorts: 1, LookupLat: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted invalid config %+v", c)
		}
	}
}

func TestInsertLookupHit(t *testing.T) {
	b := mustNew(unlimited(16, 1, 0))
	e := Entry{Src1: 10, Src2: 20, Result: 30}
	if !b.Insert(1, 100, e) {
		t.Fatal("insert rejected")
	}
	got, hit := b.Lookup(2, 100)
	if !hit || got != e {
		t.Errorf("Lookup = %+v, %v", got, hit)
	}
	if _, hit := b.Lookup(2, 101); hit {
		t.Error("lookup of absent pc hit")
	}
	if b.Stats.PCHits != 1 || b.Stats.Lookups != 2 || b.Stats.Inserts != 1 {
		t.Errorf("stats = %+v", b.Stats)
	}
}

func TestReuseTest(t *testing.T) {
	e := Entry{Src1: 10, Src2: 20, Result: 30}
	if !e.Matches(10, 20) {
		t.Error("matching operands failed reuse test")
	}
	if e.Matches(10, 21) || e.Matches(11, 20) {
		t.Error("mismatching operands passed reuse test")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	b := mustNew(unlimited(16, 1, 0))
	// pc 5 and pc 21 collide in a 16-set direct-mapped array.
	b.Insert(1, 5, Entry{Result: 1})
	b.Insert(2, 21, Entry{Result: 2})
	if _, hit := b.Lookup(3, 5); hit {
		t.Error("conflicting entry survived in direct-mapped array")
	}
	if e, hit := b.Lookup(3, 21); !hit || e.Result != 2 {
		t.Error("replacing entry missing")
	}
	if b.Stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", b.Stats.Evictions)
	}
}

func TestAssociativityRemovesConflict(t *testing.T) {
	b := mustNew(unlimited(16, 2, 0)) // 8 sets x 2 ways
	// pc 5 and pc 13 collide in set 5 but coexist in a 2-way array.
	b.Insert(1, 5, Entry{Result: 1})
	b.Insert(2, 13, Entry{Result: 2})
	if e, hit := b.Lookup(3, 5); !hit || e.Result != 1 {
		t.Error("2-way array lost first entry")
	}
	if e, hit := b.Lookup(3, 13); !hit || e.Result != 2 {
		t.Error("2-way array lost second entry")
	}
}

func TestLRUWithinSet(t *testing.T) {
	b := mustNew(unlimited(16, 2, 0)) // 8 sets x 2 ways
	b.Insert(1, 5, Entry{Result: 1})
	b.Insert(2, 13, Entry{Result: 2})
	b.Lookup(3, 5)                    // pc 5 most recent
	b.Insert(4, 21, Entry{Result: 3}) // evicts pc 13
	if _, hit := b.Lookup(5, 13); hit {
		t.Error("LRU entry not evicted")
	}
	if _, hit := b.Lookup(5, 5); !hit {
		t.Error("MRU entry evicted")
	}
}

func TestVictimBufferRecoversConflicts(t *testing.T) {
	b := mustNew(unlimited(16, 1, 4))
	b.Insert(1, 5, Entry{Result: 1})
	b.Insert(2, 21, Entry{Result: 2}) // evicts pc 5 into victim buffer
	e, hit := b.Lookup(3, 5)
	if !hit || e.Result != 1 {
		t.Fatal("victim buffer did not recover conflict miss")
	}
	// One spill from the conflicting insert, and a second from the
	// promotion swapping pc 21 out to the victim buffer.
	if b.Stats.VictimHits != 1 || b.Stats.VictimSpills != 2 {
		t.Errorf("stats = %+v", b.Stats)
	}
	// The promotion swapped pc 21 out to the victim buffer; both must
	// still be visible.
	if _, hit := b.Lookup(4, 21); !hit {
		t.Error("displaced entry lost after victim promotion")
	}
}

func TestVictimBufferCapacity(t *testing.T) {
	b := mustNew(unlimited(16, 1, 2))
	// Fill set 5 repeatedly: pcs 5, 21, 37, 53 all collide.
	for i, pc := range []uint64{5, 21, 37, 53} {
		b.Insert(uint64(i+1), pc, Entry{Result: uint64(pc)})
	}
	// Victim holds the two most recent evictions (5 and 21 were evicted
	// first; with capacity 2 the survivors are 21 and 37).
	if _, hit := b.Lookup(10, 5); hit {
		t.Error("oldest victim should have been displaced")
	}
	if e, hit := b.Lookup(11, 37); !hit || e.Result != 37 {
		t.Error("recent victim lost")
	}
}

func TestReadPortExhaustion(t *testing.T) {
	cfg := Config{Entries: 64, Assoc: 1, ReadPorts: 2, WritePorts: 1, RWPorts: 1, LookupLat: 3}
	b := mustNew(cfg)
	// One insert per cycle so the write ports never throttle the setup.
	for pc := uint64(0); pc < 8; pc++ {
		b.Insert(pc, pc, Entry{Result: pc})
	}
	hits := 0
	for pc := uint64(0); pc < 8; pc++ {
		if _, hit := b.Lookup(5, pc); hit {
			hits++
		}
	}
	// 2 read ports + 1 shared RW port = 3 lookups served in one cycle.
	if hits != 3 {
		t.Errorf("served %d lookups in one cycle, want 3", hits)
	}
	if b.Stats.ReadDenied != 5 {
		t.Errorf("ReadDenied = %d, want 5", b.Stats.ReadDenied)
	}
	// Next cycle the ports are free again.
	if _, hit := b.Lookup(6, 0); !hit {
		t.Error("port budget did not reset on new cycle")
	}
}

func TestWritePortExhaustionDropsUpdates(t *testing.T) {
	cfg := Config{Entries: 64, Assoc: 1, ReadPorts: 1, WritePorts: 2, RWPorts: 0, LookupLat: 3}
	b := mustNew(cfg)
	accepted := 0
	for pc := uint64(0); pc < 5; pc++ {
		if b.Insert(7, pc, Entry{Result: pc}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Errorf("accepted %d inserts in one cycle, want 2", accepted)
	}
	if b.Stats.WriteDenied != 3 {
		t.Errorf("WriteDenied = %d, want 3", b.Stats.WriteDenied)
	}
}

func TestRWPortsSharedBetweenReadsAndWrites(t *testing.T) {
	cfg := Config{Entries: 64, Assoc: 1, ReadPorts: 1, WritePorts: 1, RWPorts: 2, LookupLat: 3}
	b := mustNew(cfg)
	// Same cycle: 2 reads (1 dedicated + 1 RW), then 3 writes
	// (1 dedicated + 1 remaining RW + 1 denied).
	b.Lookup(9, 0)
	b.Lookup(9, 1)
	ok1 := b.Insert(9, 2, Entry{})
	ok2 := b.Insert(9, 3, Entry{})
	ok3 := b.Insert(9, 4, Entry{})
	if !ok1 || !ok2 || ok3 {
		t.Errorf("write port sharing wrong: %v %v %v", ok1, ok2, ok3)
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	b := mustNew(unlimited(16, 1, 0))
	b.Insert(1, 7, Entry{Result: 9})
	before := b.Stats
	if e, ok := b.Probe(7); !ok || e.Result != 9 {
		t.Error("Probe missed present entry")
	}
	if _, ok := b.Probe(8); ok {
		t.Error("Probe hit absent entry")
	}
	if b.Stats != before {
		t.Error("Probe changed statistics")
	}
}

func TestCorruptResult(t *testing.T) {
	b := mustNew(unlimited(16, 1, 4))
	b.Insert(1, 7, Entry{Result: 0})
	if !b.CorruptResult(7, 5) {
		t.Fatal("CorruptResult missed present entry")
	}
	if e, _ := b.Probe(7); e.Result != 1<<5 {
		t.Errorf("corrupted result = %#x, want %#x", e.Result, uint64(1)<<5)
	}
	if b.CorruptResult(99, 0) {
		t.Error("CorruptResult hit absent entry")
	}
	// Corruption reaches entries in the victim buffer too.
	b.Insert(2, 23, Entry{Result: 0}) // evicts pc 7 to victim
	if !b.CorruptResult(7, 0) {
		t.Error("CorruptResult missed victim-buffer entry")
	}
}

func TestUpdateExistingEntryInPlace(t *testing.T) {
	b := mustNew(unlimited(16, 1, 0))
	b.Insert(1, 5, Entry{Src1: 1, Result: 2})
	b.Insert(2, 5, Entry{Src1: 3, Result: 4})
	if b.Stats.Evictions != 0 {
		t.Errorf("same-pc update counted as eviction")
	}
	if e, _ := b.Probe(5); e.Src1 != 3 || e.Result != 4 {
		t.Errorf("entry not updated: %+v", e)
	}
}

// Property: anything inserted (without subsequent conflicting inserts) is
// found by lookup with exactly the inserted payload.
func TestInsertLookupProperty(t *testing.T) {
	f := func(pc uint64, s1, s2, res uint64, taken bool) bool {
		b := mustNew(unlimited(256, 1, 0))
		pc &= 1<<30 - 1
		e := Entry{Src1: s1, Src2: s2, Result: res, Taken: taken}
		b.Insert(1, pc, e)
		got, hit := b.Lookup(2, pc)
		return hit && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with a victim buffer, a lookup immediately following the
// eviction of the looked-up pc always hits (single-conflict recovery).
func TestVictimRecoveryProperty(t *testing.T) {
	f := func(pcRaw uint16) bool {
		b := mustNew(unlimited(64, 1, 8))
		pc := uint64(pcRaw)
		b.Insert(1, pc, Entry{Result: 1})
		b.Insert(2, pc+64, Entry{Result: 2}) // collides with pc
		_, hit := b.Lookup(3, pc)
		return hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: port arbitration never serves more lookups per cycle than
// ReadPorts+RWPorts.
func TestPortBoundProperty(t *testing.T) {
	f := func(r, w, rw uint8, n uint8) bool {
		cfg := Config{
			Entries: 64, Assoc: 1,
			ReadPorts: int(r%4) + 1, WritePorts: int(w%4) + 1, RWPorts: int(rw % 4),
			LookupLat: 3,
		}
		b := mustNew(cfg)
		for pc := uint64(0); pc < 32; pc++ {
			b.Insert(uint64(pc), pc, Entry{})
		}
		served := 0
		for i := uint8(0); i < n; i++ {
			if _, hit := b.Lookup(1000, uint64(i)%32); hit {
				served++
			}
		}
		return served <= cfg.ReadPorts+cfg.RWPorts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchesVersions(t *testing.T) {
	e := Entry{Ver1: 3, Ver2: 7}
	if !e.MatchesVersions(3, 7) {
		t.Error("matching versions failed")
	}
	if e.MatchesVersions(3, 8) || e.MatchesVersions(4, 7) {
		t.Error("stale versions passed the name-based test")
	}
}

func TestConfigAccessor(t *testing.T) {
	b := mustNew(Default())
	if got := b.Config(); got != Default() {
		t.Errorf("Config() = %+v", got)
	}
}

func TestProbeFindsVictimEntries(t *testing.T) {
	b := mustNew(unlimited(16, 1, 4))
	b.Insert(1, 5, Entry{Result: 1})
	b.Insert(2, 21, Entry{Result: 2}) // spills pc 5 to the victim buffer
	if e, ok := b.Probe(5); !ok || e.Result != 1 {
		t.Error("Probe missed a victim-buffer entry")
	}
}

func TestCorruptOperandMainArray(t *testing.T) {
	b := mustNew(unlimited(16, 1, 0))
	b.Insert(1, 5, Entry{Src1: 0, Src2: 0})
	if !b.CorruptOperand(5, true, 3) {
		t.Fatal("CorruptOperand missed present entry")
	}
	if e, _ := b.Probe(5); e.Src1 != 1<<3 {
		t.Errorf("Src1 = %#x", e.Src1)
	}
	if !b.CorruptOperand(5, false, 4) {
		t.Fatal("second CorruptOperand missed")
	}
	if e, _ := b.Probe(5); e.Src2 != 1<<4 {
		t.Errorf("Src2 = %#x", e.Src2)
	}
	if b.CorruptOperand(99, true, 0) {
		t.Error("CorruptOperand hit absent entry")
	}
}

func TestCorruptOperandVictim(t *testing.T) {
	b := mustNew(unlimited(16, 1, 4))
	b.Insert(1, 5, Entry{})
	b.Insert(2, 21, Entry{}) // pc 5 now in the victim buffer
	if !b.CorruptOperand(5, true, 2) {
		t.Error("CorruptOperand missed victim entry")
	}
	if e, _ := b.Probe(5); e.Src1 != 1<<2 {
		t.Errorf("victim Src1 = %#x", e.Src1)
	}
}

// mustNew is the test-side New that panics on configuration errors.
func mustNew(cfg Config) *IRB {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}
