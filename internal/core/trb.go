package core

import (
	"repro/internal/analysis"
	"repro/internal/fsim"
	"repro/internal/program"
	"repro/internal/trb"
)

// trbState is the core side of DIE-TRB's trace reuse buffer: the static
// window index extracted from the program, the buffer of recorded window
// executions, and the dispatch-time walk state. The protocol runs at the
// dispatch front, in lockstep with correct-path functional execution:
//
//   - At a window's entry PC the live-in register values are read from
//     the architected machine (valid exactly there: dispatch is on the
//     correct path, not rewinding, and the front has not stepped yet) and
//     the buffer is probed. A hit starts a skip: every duplicate copy in
//     the window is served its recorded output signature and bypasses
//     wakeup, issue and the functional units — the multi-instruction
//     reuse test the IRB performs per instruction, amortized to one
//     lookup per window. A miss starts a recording: the leader's output
//     signatures are captured as the window dispatches and inserted when
//     it completes.
//
//   - The signatures a recording captures come from the clean functional
//     records, so a served signature is architecturally true by
//     construction and a leader-side fault strike inside a skipped window
//     is still detected by the commit-time pair check. Duplicate work in
//     a skipped window never executes, so there is nothing to strike on
//     the duplicate side — injection opportunities are accounted against
//     the leader only.
//
//   - Fault recovery rewinds through trbReset (any recording or skip in
//     flight is abandoned; replayed records must not be re-captured) and
//     scrubs served entries like irb.Invalidate (see recoverFault).
//
// There is no port model: the buffer is probed once per window entry —
// far below the IRB's per-duplicate lookup rate — so port contention
// would be dead configuration surface (see the trb package comment).
type trbState struct {
	buf *trb.Buffer
	idx *trb.Index
	lat uint64 // pipelined lookup depth, charged once per window hit

	// Recording walk: a buffer miss at a window entry captures the
	// leader's signatures until the window completes.
	recActive bool
	recEntry  uint64
	recLen    int
	recPos    int
	recLive   []uint64
	recSigs   []uint64

	// Skip walk: a buffer hit serves the recorded signatures to the
	// duplicate copies of the window's instructions.
	skipActive bool
	skipEntry  uint64
	skipLen    int
	skipPos    int
	skipReady  uint64 // cycle the first served signature is deliverable
	skipSigs   []uint64

	// serving hands one dispatch iteration's decision from trbBefore to
	// newUop: the instruction being dispatched is inside an active skip
	// and its duplicate copy is served serveSig.
	serving  bool
	serveSig uint64

	liveBuf []uint64 // scratch for gathering live-in values at lookup
}

// newTRBState builds the DIE-TRB state for prog: CFG construction, window
// extraction, the entry-PC index and the buffer.
func newTRBState(cfg Config, prog *program.Program) (*trbState, error) {
	tc := cfg.trbConfig()
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	windows := analysis.TraceBlocks(analysis.BuildCFG(prog), tc.MaxBlockLen, tc.MaxLiveIn)
	idx, err := trb.NewIndex(len(prog.Code), windows)
	if err != nil {
		return nil, err
	}
	buf, err := trb.New(tc)
	if err != nil {
		return nil, err
	}
	return &trbState{
		buf:      buf,
		idx:      idx,
		lat:      uint64(tc.LookupLat),
		recLive:  make([]uint64, 0, tc.MaxLiveIn),
		recSigs:  make([]uint64, 0, tc.MaxBlockLen),
		skipSigs: make([]uint64, 0, tc.MaxBlockLen),
		liveBuf:  make([]uint64, 0, tc.MaxLiveIn),
	}, nil
}

// trbBefore runs at dispatch for every correct-path instruction, before
// the front steps it: it advances an active window walk (or abandons one
// whose expected PC the correct path left) and, at a window entry, probes
// the buffer against the current live-in register values.
//
//lint:hotpath
func (c *Core) trbBefore(pc uint64) {
	t := c.trb
	t.serving = false
	if c.front.Rewinding() > 0 {
		// Fault-recovery replay: the machine's registers do not reflect
		// the pre-step state of the replayed record, so the TRB neither
		// serves nor records until the rewind drains.
		c.trbReset()
		return
	}
	if t.skipActive {
		if pc == t.skipEntry+uint64(t.skipPos) {
			t.serving = true
			t.serveSig = t.skipSigs[t.skipPos]
			return
		}
		// Windows are straight-line, so the correct path cannot leave
		// one mid-skip; defensive against future window shapes.
		t.skipActive = false
	}
	if t.recActive {
		if pc == t.recEntry+uint64(t.recPos) {
			return // capture happens in trbAfter, off the clean record
		}
		t.recActive = false
	}
	w := t.idx.WindowAt(pc)
	if w == nil {
		return
	}
	vals := t.liveBuf[:0]
	for _, r := range w.LiveIn {
		vals = append(vals, c.front.M.Regs[r])
	}
	t.liveBuf = vals
	if sigs, hit := t.buf.Lookup(pc, vals); hit {
		// The returned slice aliases the buffer; copy it out so a
		// later recording cannot clobber an in-flight skip.
		t.skipActive = true
		t.skipEntry = pc
		t.skipLen = len(sigs)
		t.skipPos = 0
		t.skipReady = c.cycle + t.lat
		t.skipSigs = append(t.skipSigs[:0], sigs...)
		t.serving = true
		t.serveSig = t.skipSigs[0]
		c.Stats.TRBBlockHits++
		return
	}
	t.recActive = true
	t.recEntry = pc
	t.recLen = w.Len
	t.recPos = 0
	t.recLive = append(t.recLive[:0], vals...)
	t.recSigs = t.recSigs[:0]
}

// trbAfter runs after a correct-path instruction's copy group dispatched:
// it advances the skip walk, or captures the instruction's true output
// signature into an active recording — from the clean functional record,
// never from a (possibly injector-corrupted) uop — inserting the
// recording when the window completes.
//
//lint:hotpath
func (c *Core) trbAfter(rec *fsim.Retired) {
	t := c.trb
	t.serving = false
	if t.skipActive {
		t.skipPos++
		if t.skipPos == t.skipLen {
			t.skipActive = false
		}
		return
	}
	if t.recActive {
		t.recSigs = append(t.recSigs, outSignature(rec, rec.Src1, rec.Src2))
		t.recPos++
		if t.recPos == t.recLen {
			t.buf.Insert(t.recEntry, t.recLive, t.recSigs)
			t.recActive = false
		}
	}
}

// trbReset abandons any window walk in flight. Fault recovery calls it:
// the rewind re-dispatches the flushed instructions, and a recording that
// straddled the flush would otherwise capture replayed records against
// stale live-in values.
func (c *Core) trbReset() {
	t := c.trb
	t.serving = false
	t.skipActive = false
	t.recActive = false
}

// TRB returns the trace reuse buffer, or nil when the mode has none.
func (c *Core) TRB() *trb.Buffer {
	if c.trb == nil {
		return nil
	}
	return c.trb.buf
}
