package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram: count %d sum %g", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

func TestHistogramSingle(t *testing.T) {
	var h Histogram
	h.Observe(0.25)
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if q := h.Quantile(p); q != 0.25 {
			t.Fatalf("Quantile(%g) = %g, want exactly the single observation", p, q)
		}
	}
	if h.Count() != 1 || h.Sum() != 0.25 {
		t.Fatalf("count %d sum %g", h.Count(), h.Sum())
	}
}

// TestHistogramQuantileError checks the advertised bound: the reported
// quantile is an upper bound within one bucket (≤12.5%) of the exact
// order statistic.
func TestHistogramQuantileError(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	var h Histogram
	xs := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Latency-like mix: lognormal body with a heavy tail.
		x := math.Exp(rng.NormFloat64()) * 1e-3
		if i%100 == 0 {
			x *= 50
		}
		xs = append(xs, x)
		h.Observe(x)
	}
	exact := func(p float64) float64 {
		s := append([]float64(nil), xs...)
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j] < s[i] {
					s[i], s[j] = s[j], s[i]
				}
			}
		}
		r := int(math.Ceil(p*float64(len(s)))) - 1
		if r < 0 {
			r = 0
		}
		return s[r]
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got, want := h.Quantile(p), exact(p)
		if got < want || got > want*1.125 {
			t.Errorf("Quantile(%g) = %g, exact %g: outside [exact, 1.125*exact]", p, got, want)
		}
	}
}

func TestHistogramClampsPathologicalValues(t *testing.T) {
	var h Histogram
	for _, x := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5: pathological values must still be counted", h.Count())
	}
	// Quantile must not return NaN or panic.
	if q := h.Quantile(0.5); math.IsNaN(q) {
		t.Fatalf("Quantile over pathological values = NaN")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		x := rng.Float64() + 0.01
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
		all.Observe(x)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || math.Abs(a.Sum()-all.Sum()) > 1e-9 {
		t.Fatalf("merge: count %d sum %g, want %d %g", a.Count(), a.Sum(), all.Count(), all.Sum())
	}
	for _, p := range []float64{0.25, 0.5, 0.99} {
		if got, want := a.Quantile(p), all.Quantile(p); got != want {
			t.Errorf("merged Quantile(%g) = %g, combined = %g", p, got, want)
		}
	}
	// Merging into an empty histogram preserves min/max clamping.
	var c Histogram
	c.Merge(&all)
	if c.Quantile(1) != all.Quantile(1) || c.Quantile(0) != all.Quantile(0) {
		t.Errorf("merge into empty lost extremes")
	}
}
