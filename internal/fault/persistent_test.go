package fault

import (
	"testing"

	"repro/internal/irb"
)

func TestPersistentPinsPCAndStream(t *testing.T) {
	p := &Persistent{Site: FU, PC: 10, Dup: true, Bit: 5}
	if got := p.FUResult(1, 11, true, 42); got != 42 {
		t.Error("struck the wrong PC")
	}
	if got := p.FUResult(1, 10, false, 42); got != 42 {
		t.Error("struck the wrong stream")
	}
	if got := p.FUResult(1, 10, true, 42); got != 42^(1<<5) {
		t.Errorf("FUResult = %#x, want bit 5 flipped", got)
	}
	// Rate-1: every opportunity at the pinned point fires.
	if got := p.FUResult(2, 10, true, 42); got != 42^(1<<5) {
		t.Error("second opportunity did not fire")
	}
	if p.Injected != 2 {
		t.Errorf("Injected = %d, want 2", p.Injected)
	}
}

func TestPersistentOperandScoping(t *testing.T) {
	p := &Persistent{Site: Forward, PC: 10, Which: 2, Bit: 0}
	if got := p.Operand(1, 10, false, 1, 8); got != 8 {
		t.Error("struck the wrong operand")
	}
	if got := p.Operand(1, 10, false, 2, 8); got != 9 {
		t.Errorf("Operand = %d, want 9", got)
	}
	// A Forward-site Persistent must not touch FU results or the IRB.
	if got := p.FUResult(1, 10, false, 42); got != 42 {
		t.Error("Forward-site Persistent corrupted an FU result")
	}
}

func TestPersistentMaxFaults(t *testing.T) {
	p := &Persistent{Site: FU, PC: 10, Bit: 1, MaxFaults: 1}
	if got := p.FUResult(1, 10, false, 0); got == 0 {
		t.Fatal("first opportunity did not fire")
	}
	if got := p.FUResult(2, 10, false, 0); got != 0 {
		t.Error("fired past MaxFaults")
	}
	if p.Injected != 1 {
		t.Errorf("Injected = %d, want 1", p.Injected)
	}
}

func TestPersistentIRBSites(t *testing.T) {
	buf, err := irb.New(irb.Config{Entries: 64, Assoc: 1, ReadPorts: 4, WritePorts: 2, LookupLat: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf.Insert(1, 7, irb.Entry{Src1: 1, Src2: 2, Result: 3})
	buf.Insert(1, 9, irb.Entry{Src1: 1, Src2: 2, Result: 3})

	p := &Persistent{Site: IRBResult, PC: 7, Bit: 4}
	p.AfterIRBInsert(9, buf) // wrong PC: untouched
	if e, _ := buf.Probe(9); e.Result != 3 {
		t.Error("IRBResult Persistent struck the wrong PC")
	}
	p.AfterIRBInsert(7, buf)
	if e, _ := buf.Probe(7); e.Result != 3^(1<<4) {
		t.Errorf("Result = %#x, want bit 4 flipped", e.Result)
	}

	op := &Persistent{Site: IRBOperand, PC: 9, Which: 2, Bit: 0}
	op.AfterIRBInsert(9, buf)
	if e, _ := buf.Probe(9); e.Src2 != 3 || e.Src1 != 1 {
		t.Errorf("operand strike wrong: %+v", e)
	}
}
