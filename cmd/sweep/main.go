// Command sweep regenerates the paper's figures and tables (and this
// reproduction's ablations) over the 12 SPEC2000-like workloads. The
// grid cells of each experiment run in parallel across -j workers
// (default GOMAXPROCS); -j 1 reproduces the old serial sweep exactly,
// and Ctrl-C cancels a sweep mid-grid.
//
// Usage:
//
//	sweep -exp all                     # every experiment
//	sweep -exp fig2 -j 8               # one experiment, eight workers
//	sweep -exp headline -insns 500000  # bigger instruction budget
//	sweep -exp irbhit -bench gzip,mesa # subset of benchmarks
//	sweep -exp fig2 -format csv        # csv or json instead of a table
//	sweep -exp all -progress           # live cells-done/ETA on stderr
//	sweep -exp headline -trace-replay=off  # per-cell interpretation
//	sweep -exp all -cpuprofile cpu.pprof   # profile the sweep
//	sweep -exp recovery -cell-timeout 5m   # bound each cell's wall-clock
//
// Experiments: config, fig2, headline, irbhit, irbsize, conflict,
// irbports, faults, recovery, ablation-dup, ablation-fwd, scheduler,
// cluster, prior24, reuse-sources, reuse-prediction, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see package doc)")
	insns := cliutil.Insns(flag.CommandLine, sim.DefaultInsns)
	bench := cliutil.Bench(flag.CommandLine, "", "comma-separated benchmark subset (default all 12)")
	verify := cliutil.Verify(flag.CommandLine)
	jobs := cliutil.Jobs(flag.CommandLine)
	format := cliutil.Format(flag.CommandLine)
	csv := flag.Bool("csv", false, "deprecated: alias for -format csv")
	progress := flag.Bool("progress", false, "report live per-cell progress on stderr")
	traceReplay := flag.String("trace-replay", "on",
		"on: capture each benchmark's functional trace once and replay it in every cell; off: interpret per cell")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a post-sweep heap profile to this file")
	cellTimeout := flag.Duration("cell-timeout", 0,
		"per-cell wall-clock bound with one retry (0 = unbounded); a timed-out cell fails alone")
	flag.Parse()
	if *csv {
		*format = "csv"
	}
	if *traceReplay != "on" && *traceReplay != "off" {
		fmt.Fprintf(os.Stderr, "sweep: -trace-replay must be on or off, got %q\n", *traceReplay)
		os.Exit(1)
	}

	// Ctrl-C cancels the sweep: in-flight simulations stop within a
	// cycle and the completed cells' failures are still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := experiments.Options{
		Insns:         *insns,
		Verify:        *verify,
		Benchmarks:    cliutil.SplitBenchmarks(*bench),
		Parallelism:   *jobs,
		Context:       ctx,
		DisableReplay: *traceReplay == "off",
		CellTimeout:   *cellTimeout,
	}
	if *progress {
		opts.Progress = func(p runner.Progress) {
			fmt.Fprintf(os.Stderr, "\r%4d/%d cells  %-40s eta %-10s",
				p.Done, p.Total, p.Bench+"/"+p.Config, p.ETA.Round(time.Second))
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(*exp, opts, *format); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // report live post-sweep heap, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}
}

type runnerFn func(experiments.Options) (*stats.Table, error)

func runners() []struct {
	name string
	fn   runnerFn
} {
	return []struct {
		name string
		fn   runnerFn
	}{
		{"config", func(experiments.Options) (*stats.Table, error) {
			return experiments.ConfigTable(), nil
		}},
		{"fig2", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Fig2(o)
			return t, err
		}},
		{"headline", func(o experiments.Options) (*stats.Table, error) {
			_, _, t, err := experiments.Headline(o)
			return t, err
		}},
		{"irbhit", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.IRBHit(o)
			return t, err
		}},
		{"irbsize", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.IRBSize(o)
			return t, err
		}},
		{"conflict", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Conflict(o)
			return t, err
		}},
		{"irbports", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Ports(o)
			return t, err
		}},
		{"faults", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Faults(o)
			return t, err
		}},
		{"recovery", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Recovery(o)
			return t, err
		}},
		{"ablation-dup", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.AblationDup(o)
			return t, err
		}},
		{"ablation-fwd", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.AblationFwd(o)
			return t, err
		}},
		{"scheduler", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Scheduler(o)
			return t, err
		}},
		{"cluster", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Cluster(o)
			return t, err
		}},
		{"prior24", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Prior24(o)
			return t, err
		}},
		{"reuse-sources", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.ReuseSources(o)
			return t, err
		}},
		{"reuse-prediction", func(o experiments.Options) (*stats.Table, error) {
			_, _, t, err := experiments.ReusePrediction(o)
			return t, err
		}},
	}
}

func run(exp string, opts experiments.Options, format string) error {
	// Validate the format before burning simulation time on the grid.
	if _, err := cliutil.Render(stats.NewTable(""), format); err != nil {
		return err
	}
	for _, r := range runners() {
		if exp != "all" && exp != r.name {
			continue
		}
		t, err := r.fn(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		out, err := cliutil.Render(t, format)
		if err != nil {
			return err
		}
		// Machine-readable formats keep stdout clean (so `-format json
		// > x.json` is a valid document); the banner moves to stderr.
		if format == "table" || format == "" {
			fmt.Printf("=== %s ===\n%s\n", r.name, out)
		} else {
			fmt.Fprintf(os.Stderr, "=== %s ===\n", r.name)
			fmt.Printf("%s\n", out)
		}
		if exp == r.name {
			return nil
		}
	}
	if exp != "all" {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
