// Quickstart: simulate one benchmark on the three machines the paper
// compares — a conventional superscalar (SIE), the dual-execution machine
// (DIE) that runs every instruction twice for soft-error protection, and
// the proposed DIE-IRB whose duplicate stream is served by an instruction
// reuse buffer — and print the IPC cost of redundancy with and without
// the IRB.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	profile, ok := workload.ByName("bzip2")
	if !ok {
		log.Fatal("bzip2 profile missing")
	}
	opts := sim.Options{Insns: 200_000, Verify: true}

	// Machines come from the mode registry: each name resolves to a
	// descriptor carrying the paper-baseline configuration for that mode
	// and the capability flags the report text branches on.
	var sie float64
	for _, name := range []string{"SIE", "DIE", "DIE-IRB"} {
		mi, ok := core.ModeByName(name)
		if !ok {
			log.Fatalf("mode %q not registered", name)
		}
		r, err := sim.Run(name, mi.Base(), profile, opts)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case !mi.Caps.Detects:
			sie = r.IPC
			fmt.Printf("%-8s IPC %.3f  (baseline, no redundancy)\n", name, r.IPC)
		case mi.Caps.UsesIRB:
			fmt.Printf("%-8s IPC %.3f  (duplicates reuse prior results: %.1f%% slower, "+
				"%.0f%% of duplicate work served by the IRB)\n",
				name, r.IPC, stats.PctLoss(sie, r.IPC), 100*r.ReuseRate())
		default:
			fmt.Printf("%-8s IPC %.3f  (every instruction executed twice: %.1f%% slower)\n",
				name, r.IPC, stats.PctLoss(sie, r.IPC))
		}
	}
	fmt.Println("\nEvery run above was verified instruction-by-instruction against")
	fmt.Println("an independent functional execution of the same program.")
}
