package nopanic

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestTestdataWantComments checks the pass against the `// want` comments
// in the testdata package via the shared linttest harness: every
// annotated line must produce a finding matching the quoted fragment,
// and no other line may produce one.
func TestTestdataWantComments(t *testing.T) {
	dir := filepath.Join("testdata", "src", "a")
	linttest.Run(t, dir, func() ([]lint.Finding, error) {
		return CheckDir(dir)
	})
}

// TestCheckDirSkipsTestsAndTestdata ensures the directory walk exempts
// _test.go files and testdata trees: checking this package's own source
// directory must not report the panics in its testdata inputs, and the
// analyzer source itself is clean.
func TestCheckDirSkipsTestsAndTestdata(t *testing.T) {
	findings, err := CheckDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestInternalTreeIsClean is the repository's own gate: every panic left
// in the library packages must carry the invariant annotation.
func TestInternalTreeIsClean(t *testing.T) {
	findings, err := CheckDir(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
