package isa

import "math"

// Exec computes the result of a register-to-register operation given its two
// source operand bit patterns. Floating point operands and results are IEEE
// 754 binary64 bit patterns. Exec is the single source of truth for ALU
// semantics: the functional simulator, the timing core's functional units
// and the instruction reuse buffer's stored results all derive from it, so
// an IRB hit is guaranteed to reproduce exactly what a functional unit would
// compute for the same operands — the property the paper's reuse test
// depends on.
//
// Exec must only be called for opcodes with HasDest (plus branches, which
// should use EvalBranch, and loads, whose result comes from memory).
func Exec(op Op, a, b uint64, imm int32, pc uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpAddi:
		return a + uint64(int64(imm))
	case OpSub:
		return a - b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpSar:
		return uint64(int64(a) >> (b & 63))
	case OpSlt:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case OpSltu:
		if a < b {
			return 1
		}
		return 0
	case OpLui:
		return uint64(int64(imm)) << 16
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		// Match hardware behaviour for the INT64_MIN / -1 overflow
		// case rather than faulting.
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return a
		}
		return uint64(int64(a) / int64(b))
	case OpRem:
		if b == 0 {
			return a
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case OpDivu:
		if b == 0 {
			return 0
		}
		return a / b
	case OpFAdd:
		return f2u(u2f(a) + u2f(b))
	case OpFSub:
		return f2u(u2f(a) - u2f(b))
	case OpFMul:
		return f2u(u2f(a) * u2f(b))
	case OpFDiv:
		return f2u(u2f(a) / u2f(b))
	case OpFSqrt:
		return f2u(math.Sqrt(u2f(a)))
	case OpFNeg:
		return f2u(-u2f(a))
	case OpFAbs:
		return f2u(math.Abs(u2f(a)))
	case OpFCmpLt:
		if u2f(a) < u2f(b) {
			return 1
		}
		return 0
	case OpFCmpEq:
		if u2f(a) == u2f(b) {
			return 1
		}
		return 0
	case OpCvtIF:
		return f2u(float64(int64(a)))
	case OpCvtFI:
		return uint64(int64(u2f(a)))
	case OpJalr, OpCall:
		return pc + 1
	}
	return 0
}

// EvalBranch reports whether a conditional branch with the given operand
// values is taken.
func EvalBranch(op Op, a, b uint64) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return int64(a) < int64(b)
	case OpBge:
		return int64(a) >= int64(b)
	}
	return false
}

// CtrlTarget computes the target PC of a control transfer given its operand
// value (for indirect jumps) and the instruction's PC. For a not-taken
// conditional branch the next PC is pc+1, which the caller handles.
func CtrlTarget(op Op, imm int32, src1 uint64, pc uint64) uint64 {
	if op == OpJalr {
		return src1
	}
	return uint64(int64(pc) + int64(imm))
}

// EffAddr computes the effective byte address of a memory operation. The
// address is masked to a 40-bit space so that wrong-path execution with
// garbage base registers stays within the sparse memory model's range.
const addrMask = (uint64(1) << 40) - 1

// EffAddr computes the effective address of a load or store and aligns it
// to the 8-byte access size of this ISA.
func EffAddr(base uint64, imm int32) uint64 {
	return (base + uint64(int64(imm))) & addrMask &^ 7
}

func u2f(u uint64) float64 { return math.Float64frombits(u) }
func f2u(f float64) uint64 { return math.Float64bits(f) }
