// Package chaostest is a fault-injection harness for HTTP clients: an
// http.RoundTripper that drops requests, delays them, and tears
// connections down mid-response-body, all steered by a seeded PRNG so a
// failing schedule replays exactly. It is the network-layer sibling of
// internal/fault — the simulator injects bit flips into datapaths, this
// injects partition-shaped faults into the fabric's control plane — and
// exists so the coordinator/worker recovery paths (lease expiry, retry
// with backoff, duplicate-completion detection) are exercised by tests
// rather than trusted.
//
// The package is test infrastructure: it lives outside the determinism
// lint's sphere and may sleep for real, but it never reads the wall
// clock or the global math/rand.
package chaostest

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// ErrDropped is the error a dropped request fails with, before any bytes
// reach the server — the shape of a connection refused or a black-holed
// packet.
var ErrDropped = errors.New("chaostest: request dropped")

// ErrBodyCut is the error surfaced by a response body the transport
// disconnects mid-read — the shape of a peer dying between the status
// line and the last byte.
var ErrBodyCut = errors.New("chaostest: response body cut mid-stream")

// Transport wraps a base http.RoundTripper with seeded fault injection.
// The probability fields may be set freely before first use and must not
// be mutated concurrently with requests.
type Transport struct {
	// Base performs the real round trips (nil = http.DefaultTransport).
	Base http.RoundTripper

	// DropProb is the probability a request fails with ErrDropped before
	// it is sent.
	DropProb float64
	// CutBodyProb is the probability a successful response's body is
	// truncated after a random prefix and then fails with ErrBodyCut.
	CutBodyProb float64
	// MaxLatency, when positive, delays each surviving request by a
	// uniform draw from [0, MaxLatency).
	MaxLatency time.Duration

	mu  sync.Mutex
	rng *rand.Rand

	// Injection counters, for asserting that a test actually exercised
	// the fault paths it claims to.
	drops, cuts, delays, sent int
}

// New builds a Transport over base whose fault schedule is a pure
// function of seed.
func New(seed uint64, base http.RoundTripper) *Transport {
	return &Transport{Base: base, rng: rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))}
}

// Counts reports how many requests were dropped, had their response body
// cut, were delayed, and were passed through to the base transport.
func (t *Transport) Counts() (drops, cuts, delays, sent int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops, t.cuts, t.delays, t.sent
}

// decide draws the whole fault plan for one request under the lock, so
// concurrent requests consume the PRNG in well-defined single draws.
func (t *Transport) decide() (drop bool, delay time.Duration, cutAfter int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.DropProb > 0 && t.rng.Float64() < t.DropProb {
		t.drops++
		return true, 0, -1
	}
	if t.MaxLatency > 0 {
		delay = time.Duration(t.rng.Int64N(int64(t.MaxLatency)))
		t.delays++
	}
	cutAfter = -1
	if t.CutBodyProb > 0 && t.rng.Float64() < t.CutBodyProb {
		// Cut after a small random prefix: enough for headers and a torn
		// JSON payload, never the whole body.
		cutAfter = t.rng.Int64N(64)
		t.cuts++
	}
	t.sent++
	return false, delay, cutAfter
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	drop, delay, cutAfter := t.decide()
	if drop {
		// Consume and close the body like a real transport would have.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: %s %s", ErrDropped, req.Method, req.URL.Path)
	}
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || cutAfter < 0 {
		return resp, err
	}
	resp.Body = &cutReader{rc: resp.Body, remaining: cutAfter}
	return resp, nil
}

// cutReader yields at most remaining bytes and then fails the read, the
// way a torn TCP connection surfaces to a JSON decoder.
type cutReader struct {
	rc        io.ReadCloser
	remaining int64
}

func (c *cutReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, fmt.Errorf("%w", ErrBodyCut)
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= int64(n)
	if err == nil && c.remaining <= 0 {
		err = fmt.Errorf("%w", ErrBodyCut)
	}
	return n, err
}

func (c *cutReader) Close() error { return c.rc.Close() }
