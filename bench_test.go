// Benchmark harness: one testing.B benchmark per figure/table of the
// paper's evaluation (see DESIGN.md's experiment index). Each benchmark
// regenerates its experiment on a reduced workload set and reports the
// figure's key quantities as custom metrics, so `go test -bench=.` gives a
// quick-look reproduction; `go run ./cmd/sweep -exp all` runs the full
// 12-benchmark versions that EXPERIMENTS.md records.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/fsim"
	"repro/internal/irb"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchOpts keeps per-iteration work around a second: three benchmarks
// spanning the key regimes (ALU-bound integer, reuse-rich FP,
// memory-bound FP).
func benchOpts() experiments.Options {
	return experiments.Options{
		Insns:      50_000,
		Benchmarks: []string{"bzip2", "mesa", "ammp"},
	}
}

// BenchmarkFig2 regenerates Figure 2 (the motivation: % IPC loss of DIE
// and its capacity-doubled variants vs SIE) and reports the base DIE and
// DIE-2xALU average losses.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var dieLoss, aluLoss float64
		for bi := range g.Benchmarks {
			sie := g.IPC(bi, 0)
			dieLoss += stats.PctLoss(sie, g.IPC(bi, 1))
			aluLoss += stats.PctLoss(sie, g.IPC(bi, 2))
		}
		n := float64(len(g.Benchmarks))
		b.ReportMetric(dieLoss/n, "%DIE-loss")
		b.ReportMetric(aluLoss/n, "%2xALU-loss")
	}
}

// BenchmarkHeadline regenerates the headline comparison (Figure 7 in the
// reconstruction): the fraction of the ALU-bandwidth and overall IPC loss
// that DIE-IRB gains back. The paper reports ~50% and ~23%.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, sum, _, err := experiments.Headline(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.ALUBandwidth, "%ALU-recovered")
		b.ReportMetric(sum.OverallGain, "%overall-recovered")
	}
}

// BenchmarkIRBHit regenerates the IRB effectiveness figure (Figure 8) and
// reports the mean PC-hit and reuse rates.
func BenchmarkIRBHit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.IRBHit(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var pc, reuse float64
		for bi := range g.Benchmarks {
			pc += g.Results[bi][0].PCHitRate()
			reuse += g.Results[bi][0].ReuseRate()
		}
		n := float64(len(g.Benchmarks))
		b.ReportMetric(pc/n, "pc-hit")
		b.ReportMetric(reuse/n, "reuse")
	}
}

// BenchmarkIRBSize regenerates the size sensitivity figure (Figure 9),
// reporting the IPC at the smallest and the paper's 1024-entry points.
func BenchmarkIRBSize(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"gcc"} // the capacity-pressured benchmark
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.IRBSize(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.IPC(0, 0), "IPC@128")
		b.ReportMetric(g.IPC(0, 3), "IPC@1024")
	}
}

// BenchmarkConflict regenerates the conflict-miss reduction ablation
// (Figure 10), reporting the reuse recovered by the victim buffer on the
// alias-afflicted benchmark.
func BenchmarkConflict(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"parser"}
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.Conflict(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.Results[0][0].ReuseRate(), "reuse-DM")
		b.ReportMetric(g.Results[0][2].ReuseRate(), "reuse-victim16")
	}
}

// BenchmarkIRBPorts regenerates the port sensitivity figure (Figure 11).
func BenchmarkIRBPorts(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"bzip2"}
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.Ports(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.IPC(0, 0), "IPC@1R")
		b.ReportMetric(g.IPC(0, 2), "IPC@4R")
	}
}

// BenchmarkFaultCoverage regenerates the Section 3.4 validation (Table 2
// in the reconstruction): detection coverage of the check-&-retire
// comparison under fault injection.
func BenchmarkFaultCoverage(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"bzip2"}
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Faults(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			// The IRB-integrated mode's FU-site campaign, selected by
			// capability rather than mode identity.
			if r.Mode.Caps().UsesIRB && r.Site == "fu" {
				b.ReportMetric(r.Coverage(), "fu-coverage")
			}
		}
	}
}

// BenchmarkAblationDup regenerates ablation A (duplicate-only vs
// both-streams IRB policy).
func BenchmarkAblationDup(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"bzip2"}
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.AblationDup(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.IPC(0, 0), "IPC-dup-only")
		b.ReportMetric(g.IPC(0, 1), "IPC-both")
	}
}

// BenchmarkAblationFwd regenerates ablation B (no-forwarding vs
// IRB-as-functional-unit).
func BenchmarkAblationFwd(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"bzip2"}
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.AblationFwd(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.IPC(0, 0), "IPC-no-fwd")
		b.ReportMetric(g.IPC(0, 1), "IPC-as-FU")
	}
}

// BenchmarkGridSerial and BenchmarkGridParallel time the same headline
// grid through the sweep runner with one worker and with every core;
// their ratio is the wall-clock speedup recorded in EXPERIMENTS.md. On a
// single-CPU machine the two are equivalent by construction.
func BenchmarkGridSerial(b *testing.B) {
	opts := benchOpts()
	opts.Parallelism = 1
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.Headline(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridParallel(b *testing.B) {
	opts := benchOpts() // Parallelism 0 = GOMAXPROCS workers
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.Headline(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures the simulator's own speed in
// simulated instructions per wall-clock second, per execution mode, on
// the grid hot path: one trace captured up front (as the sweep harness
// does) and replayed by every timed run, so the numbers reflect the
// timing core itself, not workload generation.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, _ := workload.ByName("gzip")
	const insns = 50_000
	tr, err := sim.CaptureTrace(p, sim.Options{Insns: insns})
	if err != nil {
		b.Fatal(err)
	}
	for _, nc := range sim.HeadlineConfigs() {
		b.Run(nc.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(nc.Name, nc.Cfg, p, sim.Options{Insns: insns, Trace: tr}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(insns)*float64(b.N)/b.Elapsed().Seconds(), "insns/s")
		})
	}
}

// BenchmarkSimulatorThroughputDirect is the same measurement without the
// shared trace: every run generates and interprets its own program. The
// gap to BenchmarkSimulatorThroughput is what trace replay saves per cell.
func BenchmarkSimulatorThroughputDirect(b *testing.B) {
	p, _ := workload.ByName("gzip")
	for _, nc := range sim.HeadlineConfigs() {
		b.Run(nc.Name, func(b *testing.B) {
			b.ReportAllocs()
			const insns = 50_000
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(nc.Name, nc.Cfg, p, sim.Options{Insns: insns}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(insns)*float64(b.N)/b.Elapsed().Seconds(), "insns/s")
		})
	}
}

// BenchmarkFunctionalSim measures the golden-model interpreter alone, and
// the trace-replay fast path that substitutes for it on grid runs.
func BenchmarkFunctionalSim(b *testing.B) {
	p, _ := workload.ByName("gzip")
	prog, err := workload.Generate(p.WithIters(1_000_000))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("interpret", func(b *testing.B) {
		b.ReportAllocs()
		var total uint64
		for i := 0; i < b.N; i++ {
			m := fsim.New(prog)
			n, err := m.Run(200_000)
			if err != nil {
				b.Fatal(err)
			}
			total += n
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insns/s")
	})
	b.Run("replay", func(b *testing.B) {
		tr, err := fsim.Capture(prog, 200_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		var total uint64
		for i := 0; i < b.N; i++ {
			m := fsim.NewReplay(tr)
			n, err := m.Run(200_000)
			if err != nil {
				b.Fatal(err)
			}
			total += n
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insns/s")
	})
}

// BenchmarkIRBLookup measures the reuse buffer microarchitecture model.
func BenchmarkIRBLookup(b *testing.B) {
	buf, err := irb.New(irb.Default())
	if err != nil {
		b.Fatal(err)
	}
	for pc := uint64(0); pc < 2048; pc++ {
		buf.Insert(pc, pc, irb.Entry{Src1: pc, Src2: pc, Result: pc * 2})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Lookup(uint64(i), uint64(i)%2048)
	}
}

// BenchmarkScheduler regenerates the Section 3.3 scheduler matrix
// (data-capture vs decoupled, value- vs name-based reuse tests).
func BenchmarkScheduler(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"bzip2"}
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.Scheduler(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.IPC(0, 0), "IPC-capture-value")
		b.ReportMetric(g.IPC(0, 3), "IPC-decoupled-name")
	}
}

// BenchmarkCluster regenerates the clustered-alternative comparison from
// the paper's Section 3 discussion.
func BenchmarkCluster(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"bzip2"}
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.Cluster(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.IPC(0, 1), "IPC-DIE")
		b.ReportMetric(g.IPC(0, 2), "IPC-cluster")
		b.ReportMetric(g.IPC(0, 3), "IPC-DIE-IRB")
	}
}

// BenchmarkPrior24 regenerates the introduction's prior-work claim
// ([24]: DIE loses up to 45% vs SIE) over both workload suites.
func BenchmarkPrior24(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.Prior24(experiments.Options{Insns: 50_000})
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for bi := range g.Benchmarks {
			if l := stats.PctLoss(g.IPC(bi, 0), g.IPC(bi, 1)); l > worst {
				worst = l
			}
		}
		b.ReportMetric(worst, "%worst-DIE-loss")
	}
}

// BenchmarkReuseSources regenerates the reuse-sources extension table
// (squash reuse on DIE-IRB, Sn+d chaining on SIE-IRB).
func BenchmarkReuseSources(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"bzip2"}
	for i := 0; i < b.N; i++ {
		g, _, err := experiments.ReuseSources(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.Results[0][0].ReuseRate(), "reuse-base")
		b.ReportMetric(g.Results[0][1].ReuseRate(), "reuse-squash")
	}
}
