package workload

import (
	"testing"

	"repro/internal/fsim"
)

// Each kernel's result is checked against a native Go computation — these
// are end-to-end acceptance tests for the ISA semantics, the builder and
// the functional simulator together.

func runKernel(t *testing.T, prog interface {
	Validate() error
}, m *fsim.Machine) {
	t.Helper()
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("kernel did not halt")
	}
}

func TestKernelMatMul(t *testing.T) {
	const n = 8
	prog, cBase := KernelMatMul(n)
	m := fsim.New(prog)
	runKernel(t, prog, m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := uint64(0)
			for k := 0; k < n; k++ {
				want += uint64(i+k) * uint64(k*2+j)
			}
			got := m.Mem.Read(cBase + uint64(i*n+j)*8)
			if got != want {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestKernelBubbleSort(t *testing.T) {
	const n = 32
	prog, base := KernelBubbleSort(n)
	m := fsim.New(prog)
	runKernel(t, prog, m)
	for i := 0; i < n; i++ {
		if got := m.Mem.Read(base + uint64(i)*8); got != uint64(i+1) {
			t.Fatalf("arr[%d] = %d, want %d", i, got, i+1)
		}
	}
}

func TestKernelFib(t *testing.T) {
	prog := KernelFib(30)
	m := fsim.New(prog)
	runKernel(t, prog, m)
	a, b := uint64(0), uint64(1)
	for i := 0; i < 30; i++ {
		a, b = b, a+b
	}
	if m.Regs[3] != b {
		t.Errorf("fib(30): r3 = %d, want %d", m.Regs[3], b)
	}
}

func TestKernelMemcpy(t *testing.T) {
	const n = 64
	prog, dst := KernelMemcpy(n)
	m := fsim.New(prog)
	runKernel(t, prog, m)
	for i := 0; i < n; i++ {
		want := uint64(i)*2654435761 + 17
		if got := m.Mem.Read(dst + uint64(i)*8); got != want {
			t.Fatalf("dst[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestKernelHistogram(t *testing.T) {
	const n = 200
	prog, hist := KernelHistogram(n)
	m := fsim.New(prog)
	runKernel(t, prog, m)
	var want [16]uint64
	for i := 0; i < n; i++ {
		want[uint64(i*i*31+7)&15]++
	}
	for bkt := 0; bkt < 16; bkt++ {
		if got := m.Mem.Read(hist + uint64(bkt)*8); got != want[bkt] {
			t.Errorf("hist[%d] = %d, want %d", bkt, got, want[bkt])
		}
	}
}

func TestKernelCRC(t *testing.T) {
	const n = 100
	prog := KernelCRC(n)
	m := fsim.New(prog)
	runKernel(t, prog, m)
	sum := uint64(5381)
	for i := 0; i < n; i++ {
		sum = (sum + sum<<5) ^ uint64(i*131+7)
	}
	if m.Regs[5] != sum {
		t.Errorf("crc: r5 = %#x, want %#x", m.Regs[5], sum)
	}
}
