// Package analysis is the static program analysis layer over
// program.Program: basic-block CFG construction with reachability and
// natural-loop detection, def-use chains and per-register liveness,
// well-formedness diagnostics beyond Program.Validate, and a static
// predictor for the IRB reuse rate and per-class ALU port pressure that
// the timing core otherwise measures only dynamically (cross-validated
// against sim.Result.ReuseRate by the experiments package).
//
// The layer serves three consumers: cmd/irblint (human and JSON reports),
// the sim.RunContext preflight (rejecting ill-formed programs with a
// structured *Diagnostic error before cycle 0), and the experiments
// cross-validation grid.
package analysis

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
)

// Block is one basic block: the half-open instruction-index range
// [Start, End) with its CFG edges and loop annotations.
type Block struct {
	ID         int
	Start, End uint64
	Succs      []int
	Preds      []int

	// Reachable reports whether the block is reachable from the entry
	// point along CFG edges (including call and return-summary edges).
	Reachable bool

	// LoopDepth is the number of natural loops containing the block;
	// 0 means straight-line code executed at most once per visit.
	LoopDepth int

	// LoopHead reports whether the block is the header of a natural loop.
	LoopHead bool

	// loop is the ID of the innermost loop containing the block, -1 when
	// the block is outside every loop.
	loop int
}

// Loop is one natural loop: the header block and the set of member blocks.
type Loop struct {
	ID     int
	Header int
	Blocks []int // ascending block IDs, header included
	Depth  int   // 1 for outermost
}

// CFG is the control flow graph of a program.
type CFG struct {
	Prog    *program.Program
	Blocks  []*Block
	Loops   []Loop
	blockOf []int // instruction index -> block ID
	entry   int
}

// Entry returns the block containing the program's entry point.
func (g *CFG) Entry() *Block { return g.Blocks[g.entry] }

// BlockAt returns the block containing the instruction at pc.
func (g *CFG) BlockAt(pc uint64) *Block { return g.Blocks[g.blockOf[pc]] }

// InnermostLoop returns the innermost loop containing the block, or nil.
func (g *CFG) InnermostLoop(b *Block) *Loop {
	if b.loop < 0 {
		return nil
	}
	return &g.Loops[b.loop]
}

// BuildCFG constructs the control flow graph of p. The program must have a
// non-empty code segment with in-range direct targets (Program.Validate);
// BuildCFG tolerates anything Validate accepts.
//
// Interprocedural edges: a CALL has an edge to its target only, and a
// conventional return (JALR through LinkReg discarding the link) has edges
// to every return point (pc+1 of every CALL) in the program. Return points
// are thus reachable through the callee body, which keeps dataflow precise
// — definitions inside the callee reach the code after the call, and code
// after a call to a non-returning function is correctly unreachable.
// Indirect JALR jumps that are not conventional returns get no successors.
func BuildCFG(p *program.Program) *CFG {
	n := uint64(len(p.Code))

	// Leaders: the entry, every direct target, and every instruction
	// following a block terminator.
	leader := make([]bool, n)
	leader[p.Entry] = true
	if n > 0 {
		leader[0] = true
	}
	var returnPoints []uint64
	for pc := uint64(0); pc < n; pc++ {
		in := p.Code[pc]
		if t, ok := in.StaticTarget(pc); ok && t < n {
			leader[t] = true
		}
		if in.EndsBlock() && pc+1 < n {
			leader[pc+1] = true
		}
		if in.Op == isa.OpCall && pc+1 < n {
			returnPoints = append(returnPoints, pc+1)
		}
	}

	g := &CFG{Prog: p, blockOf: make([]int, n)}
	for pc := uint64(0); pc < n; pc++ {
		if leader[pc] {
			g.Blocks = append(g.Blocks, &Block{ID: len(g.Blocks), Start: pc, loop: -1})
		}
		g.blockOf[pc] = len(g.Blocks) - 1
	}
	for i, b := range g.Blocks {
		if i+1 < len(g.Blocks) {
			b.End = g.Blocks[i+1].Start
		} else {
			b.End = n
		}
	}
	g.entry = g.blockOf[p.Entry]

	// Edges.
	addEdge := func(from *Block, toPC uint64) {
		if toPC >= n {
			return
		}
		to := g.Blocks[g.blockOf[toPC]]
		for _, s := range from.Succs {
			if s == to.ID {
				return
			}
		}
		from.Succs = append(from.Succs, to.ID)
		to.Preds = append(to.Preds, from.ID)
	}
	for _, b := range g.Blocks {
		last := p.Code[b.End-1]
		if t, ok := last.StaticTarget(b.End - 1); ok {
			addEdge(b, t)
		}
		if last.FallsThrough() {
			// Ordinary fallthrough or a not-taken branch. A CALL's
			// return point is instead reached via the callee's
			// return edges below.
			addEdge(b, b.End)
		}
		if last.IsReturn() {
			for _, rp := range returnPoints {
				addEdge(b, rp)
			}
		}
	}

	g.markReachable()
	g.findLoops()
	return g
}

// markReachable flags every block reachable from the entry block.
func (g *CFG) markReachable() {
	stack := []int{g.entry}
	g.Blocks[g.entry].Reachable = true
	for len(stack) > 0 {
		b := g.Blocks[stack[len(stack)-1]]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !g.Blocks[s].Reachable {
				g.Blocks[s].Reachable = true
				stack = append(stack, s)
			}
		}
	}
}

// findLoops computes dominators over the reachable subgraph and collects
// the natural loop of every back edge, merging loops that share a header.
func (g *CFG) findLoops() {
	rpo := g.reversePostorder()
	idom := g.dominators(rpo)

	dominates := func(a, b int) bool {
		// Walk b's dominator chain; chains are short.
		for b >= 0 {
			if a == b {
				return true
			}
			if b == g.entry {
				return false
			}
			b = idom[b]
		}
		return false
	}

	// Natural loop of each back edge tail->head, merged per header.
	bodies := make(map[int]map[int]bool)
	for _, b := range g.Blocks {
		if !b.Reachable {
			continue
		}
		for _, h := range b.Succs {
			if !dominates(h, b.ID) {
				continue
			}
			body := bodies[h]
			if body == nil {
				body = map[int]bool{h: true}
				bodies[h] = body
			}
			// Walk predecessors back from the tail to the header.
			stack := []int{b.ID}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				for _, pr := range g.Blocks[x].Preds {
					if g.Blocks[pr].Reachable {
						stack = append(stack, pr)
					}
				}
			}
		}
	}

	headers := make([]int, 0, len(bodies))
	for h := range bodies {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	for _, h := range headers {
		body := bodies[h]
		members := make([]int, 0, len(body))
		for id := range body {
			members = append(members, id)
		}
		sort.Ints(members)
		l := Loop{ID: len(g.Loops), Header: h, Blocks: members}
		g.Loops = append(g.Loops, l)
		g.Blocks[h].LoopHead = true
		for _, id := range members {
			g.Blocks[id].LoopDepth++
		}
	}
	// Depth per loop = depth of its header; the innermost loop of a block
	// is the containing loop with the smallest body.
	for i := range g.Loops {
		g.Loops[i].Depth = g.Blocks[g.Loops[i].Header].LoopDepth
	}
	for i := range g.Loops {
		l := &g.Loops[i]
		for _, id := range l.Blocks {
			b := g.Blocks[id]
			if b.loop < 0 || len(l.Blocks) < len(g.Loops[b.loop].Blocks) {
				b.loop = l.ID
			}
		}
	}
}

// reversePostorder returns the reachable blocks in reverse postorder.
func (g *CFG) reversePostorder() []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(id int) {
		seen[id] = true
		for _, s := range g.Blocks[id].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	dfs(g.entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// dominators computes immediate dominators with the Cooper–Harvey–Kennedy
// iterative algorithm over the given reverse postorder.
func (g *CFG) dominators(rpo []int) []int {
	order := make([]int, len(g.Blocks)) // block ID -> RPO index
	for i := range order {
		order[i] = -1
	}
	for i, id := range rpo {
		order[id] = i
	}
	idom := make([]int, len(g.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[g.entry] = g.entry
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, id := range rpo {
			if id == g.entry {
				continue
			}
			newIdom := -1
			for _, pr := range g.Blocks[id].Preds {
				if order[pr] < 0 || idom[pr] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = pr
				} else {
					newIdom = intersect(newIdom, pr)
				}
			}
			if newIdom >= 0 && idom[id] != newIdom {
				idom[id] = newIdom
				changed = true
			}
		}
	}
	return idom
}
