// Package modedispatch is the lint pass that keeps redundancy-mode
// dispatch inside the core mode registry. Since the registry redesign,
// every layer above internal/core is supposed to ask a mode for its
// capabilities (core.Mode.Caps, core.ModeInfo) instead of recognizing
// specific modes by name — that is what lets a newly registered mode flow
// through the runner, the experiments and the service with zero changes.
// A literal comparison like
//
//	if cfg.Mode == core.DIEIRB { ... }
//
// outside internal/core silently re-centralizes mode knowledge and breaks
// the next registered mode, so the pass forbids comparing core.Mode
// values against constants (==, != or switch cases) everywhere except the
// core package itself. The escape hatch, for the rare tool that truly is
// about one specific mode, is
//
//	//modedispatch:exempt <reason>
//
// on the comparison's line or the line above. Test files are not checked:
// tests pin modes by name on purpose.
package modedispatch

import (
	"fmt"
	"go/ast"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

// Marker is the annotation that allows a deliberate mode-literal
// comparison, with a mandatory reason.
const Marker = "//modedispatch:exempt"

// corePkgSuffix identifies the package that owns the Mode type and the
// registry; it is the one place literal comparisons are legitimate.
const corePkgSuffix = "internal/core"

// Pass is the modedispatch pass, ready for the repolint driver.
type Pass struct{}

func (Pass) Name() string { return "modedispatch" }
func (Pass) Doc() string {
	return "capability decisions must flow through the core mode registry, not mode-literal comparisons"
}

// Check walks every package under root except internal/core and flags
// comparisons of core.Mode values against constants. Packages that do not
// mention the core package are skipped without type-checking.
func (Pass) Check(root string) ([]lint.Finding, error) {
	dirs, err := candidateDirs(root)
	if err != nil {
		return nil, err
	}
	checker := lint.NewChecker()
	var out []lint.Finding
	for _, dir := range dirs {
		fs, err := CheckPackage(checker, dir)
		if err != nil {
			return nil, fmt.Errorf("modedispatch: %s: %w", dir, err)
		}
		out = append(out, fs...)
	}
	lint.SortFindings(out)
	return out, nil
}

// candidateDirs returns the package directories under root that mention
// the core package and are not the core package, testdata, or hidden.
func candidateDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			if filepath.ToSlash(path) == filepath.ToSlash(filepath.Join(root, corePkgSuffix)) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if seen[dir] {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Cheap pre-filter: a package that never names the core import
		// path cannot compare core.Mode values.
		if strings.Contains(string(src), corePkgSuffix+`"`) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// CheckPackage checks one package directory unconditionally (the unit the
// testdata harness drives).
func CheckPackage(checker *lint.Checker, dir string) ([]lint.Finding, error) {
	pkg, err := checker.Check(dir)
	if pkg == nil || err != nil {
		return nil, err
	}
	var out []lint.Finding
	for _, f := range pkg.Files {
		out = append(out, checkFile(pkg, f)...)
	}
	return out, nil
}

// isMode reports whether t (or its pointer element) is the core Mode type.
func isMode(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Mode" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), corePkgSuffix)
}

func checkFile(pkg *lint.Package, f *ast.File) []lint.Finding {
	marked := lint.MarkedLines(pkg.Fset, f, Marker)
	var out []lint.Finding

	typeOf := func(e ast.Expr) types.Type {
		tv, ok := pkg.Info.Types[e]
		if !ok {
			return nil
		}
		return tv.Type
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := pkg.Info.Types[e]
		return ok && tv.Value != nil
	}
	report := func(n ast.Node, what string) {
		pos := pkg.Fset.Position(n.Pos())
		if reason, ok := lint.Exempt(marked, pos.Line); ok && reason != "" {
			return
		}
		out = append(out, lint.NewFinding("modedispatch", pos,
			fmt.Sprintf("%s outside internal/core: dispatch on the registry's capabilities (Mode.Caps, ModeInfo), or annotate with %s <reason>", what, Marker)))
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op.String() != "==" && n.Op.String() != "!=" {
				return true
			}
			xt, yt := typeOf(n.X), typeOf(n.Y)
			if xt == nil || yt == nil || (!isMode(xt) && !isMode(yt)) {
				return true
			}
			if isConst(n.X) || isConst(n.Y) {
				report(n, "core.Mode compared against a literal")
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			tt := typeOf(n.Tag)
			if tt == nil || !isMode(tt) {
				return true
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if isConst(e) {
						report(e, "switch on core.Mode with a literal case")
					}
				}
			}
		}
		return true
	})
	return out
}
