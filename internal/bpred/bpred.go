// Package bpred implements the branch prediction structures of the
// simulated front end: bimodal and gshare direction predictors, a
// tournament (combined) predictor in the style of SimpleScalar's "comb"
// predictor, a set-associative branch target buffer for indirect jumps, and
// a return address stack. The DIE-IRB paper leaves the PC and branch
// prediction structures outside the Sphere of Replication, so one predictor
// instance serves both instruction streams.
package bpred

import (
	"fmt"

	"repro/internal/isa"
)

// Kind selects the direction predictor algorithm.
type Kind string

const (
	// Bimodal is a table of 2-bit saturating counters indexed by PC.
	Bimodal Kind = "bimodal"
	// Gshare is a table of 2-bit counters indexed by PC xor global
	// branch history.
	Gshare Kind = "gshare"
	// Combined is a tournament predictor: a meta table of 2-bit counters
	// chooses between a bimodal and a gshare component per branch.
	Combined Kind = "combined"
	// Taken statically predicts every conditional branch taken; used by
	// tests and as a pessimistic baseline.
	Taken Kind = "taken"
)

// Config sizes the prediction structures. All table sizes must be powers
// of two.
type Config struct {
	Kind        Kind
	BimodalSize int // entries in the bimodal table
	GshareSize  int // entries in the gshare table
	HistBits    int // global history bits for gshare
	MetaSize    int // entries in the tournament meta table
	BTBSets     int
	BTBAssoc    int
	RASSize     int
}

// Default returns the configuration used by the paper's platform: a
// combined predictor (SimpleScalar's default), 2K-entry tables, a
// 512-set 4-way BTB and an 8-entry RAS.
func Default() Config {
	return Config{
		Kind:        Combined,
		BimodalSize: 2048,
		GshareSize:  2048,
		HistBits:    11,
		MetaSize:    2048,
		BTBSets:     512,
		BTBAssoc:    4,
		RASSize:     8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	pow2 := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("bpred: %s = %d, want power of two", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"BimodalSize", c.BimodalSize},
		{"GshareSize", c.GshareSize},
		{"MetaSize", c.MetaSize},
		{"BTBSets", c.BTBSets},
	} {
		if err := pow2(f.name, f.v); err != nil {
			return err
		}
	}
	if c.BTBAssoc <= 0 {
		return fmt.Errorf("bpred: BTBAssoc = %d, want > 0", c.BTBAssoc)
	}
	if c.RASSize <= 0 {
		return fmt.Errorf("bpred: RASSize = %d, want > 0", c.RASSize)
	}
	if c.HistBits <= 0 || c.HistBits > 30 {
		return fmt.Errorf("bpred: HistBits = %d, want 1..30", c.HistBits)
	}
	switch c.Kind {
	case Bimodal, Gshare, Combined, Taken:
	default:
		return fmt.Errorf("bpred: unknown kind %q", c.Kind)
	}
	return nil
}

// Stats counts prediction outcomes.
type Stats struct {
	CondBranches uint64 // conditional branches predicted
	CondMiss     uint64 // direction mispredictions
	IndirJumps   uint64 // indirect-target predictions (BTB or RAS)
	IndirMiss    uint64 // indirect-target mispredictions
}

// Predictor is the complete front-end prediction unit.
type Predictor struct {
	cfg     Config
	bimodal []uint8
	gshare  []uint8
	meta    []uint8
	history uint32
	btb     *btb
	ras     []uint64
	rasTop  int
	Stats   Stats
}

// New builds a predictor; counters start weakly taken (2) to match
// SimpleScalar initialization.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, cfg.BimodalSize),
		gshare:  make([]uint8, cfg.GshareSize),
		meta:    make([]uint8, cfg.MetaSize),
		btb:     newBTB(cfg.BTBSets, cfg.BTBAssoc),
		ras:     make([]uint64, cfg.RASSize),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.meta {
		p.meta[i] = 2
	}
	return p, nil
}

// Predict returns the predicted next PC for the control-transfer
// instruction in at pc. For non-control instructions it returns pc+1.
// Predict also performs the RAS push/pop side effects of calls and
// returns, mirroring a real fetch stage.
func (p *Predictor) Predict(pc uint64, in isa.Instr) uint64 {
	oi := in.Op.Info()
	switch {
	case oi.IsBranch:
		if p.direction(pc) {
			return isa.CtrlTarget(in.Op, in.Imm, 0, pc)
		}
		return pc + 1
	case in.Op == isa.OpCall:
		p.push(pc + 1)
		return isa.CtrlTarget(in.Op, in.Imm, 0, pc)
	case in.Op == isa.OpJump:
		return isa.CtrlTarget(in.Op, in.Imm, 0, pc)
	case oi.IsIndirect:
		if in.Src1 == isa.LinkReg {
			return p.pop(pc)
		}
		if t, ok := p.btb.lookup(pc); ok {
			return t
		}
		// No BTB entry: fall through, which will be corrected when
		// the jump resolves.
		return pc + 1
	default:
		return pc + 1
	}
}

// direction returns the predicted direction for the conditional branch at
// pc without updating any state (counters update at resolve time).
func (p *Predictor) direction(pc uint64) bool {
	switch p.cfg.Kind {
	case Taken:
		return true
	case Bimodal:
		return p.bimodal[p.bimodalIdx(pc)] >= 2
	case Gshare:
		return p.gshare[p.gshareIdx(pc)] >= 2
	default: // Combined
		if p.meta[p.metaIdx(pc)] >= 2 {
			return p.gshare[p.gshareIdx(pc)] >= 2
		}
		return p.bimodal[p.bimodalIdx(pc)] >= 2
	}
}

// Update trains the predictor with the resolved outcome of a control
// instruction and records accuracy statistics. predictedNext is the next
// PC fetch followed; actualNext the architecturally correct one.
func (p *Predictor) Update(pc uint64, in isa.Instr, taken bool, actualNext, predictedNext uint64) {
	oi := in.Op.Info()
	switch {
	case oi.IsBranch:
		p.Stats.CondBranches++
		if predictedNext != actualNext {
			p.Stats.CondMiss++
		}
		p.train(pc, taken)
	case oi.IsIndirect:
		p.Stats.IndirJumps++
		if predictedNext != actualNext {
			p.Stats.IndirMiss++
		}
		if in.Src1 != isa.LinkReg {
			p.btb.insert(pc, actualNext)
		}
	}
}

func (p *Predictor) train(pc uint64, taken bool) {
	if p.cfg.Kind == Taken {
		return
	}
	bIdx, gIdx := p.bimodalIdx(pc), p.gshareIdx(pc)
	bCorrect := (p.bimodal[bIdx] >= 2) == taken
	gCorrect := (p.gshare[gIdx] >= 2) == taken
	if p.cfg.Kind == Combined && bCorrect != gCorrect {
		m := p.metaIdx(pc)
		if gCorrect {
			p.meta[m] = satInc(p.meta[m])
		} else {
			p.meta[m] = satDec(p.meta[m])
		}
	}
	if p.cfg.Kind != Gshare {
		if taken {
			p.bimodal[bIdx] = satInc(p.bimodal[bIdx])
		} else {
			p.bimodal[bIdx] = satDec(p.bimodal[bIdx])
		}
	}
	if p.cfg.Kind != Bimodal {
		if taken {
			p.gshare[gIdx] = satInc(p.gshare[gIdx])
		} else {
			p.gshare[gIdx] = satDec(p.gshare[gIdx])
		}
		p.history = (p.history<<1 | b2u(taken)) & (1<<p.cfg.HistBits - 1)
	}
}

func (p *Predictor) bimodalIdx(pc uint64) int {
	return int(pc) & (p.cfg.BimodalSize - 1)
}

func (p *Predictor) gshareIdx(pc uint64) int {
	return int(pc^uint64(p.history)) & (p.cfg.GshareSize - 1)
}

func (p *Predictor) metaIdx(pc uint64) int {
	return int(pc) & (p.cfg.MetaSize - 1)
}

func (p *Predictor) push(ret uint64) {
	p.ras[p.rasTop] = ret
	p.rasTop = (p.rasTop + 1) % len(p.ras)
}

func (p *Predictor) pop(pc uint64) uint64 {
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	t := p.ras[p.rasTop]
	if t == 0 {
		return pc + 1
	}
	return t
}

func satInc(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return 3
}

func satDec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return 0
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// btb is a set-associative branch target buffer with LRU replacement,
// used only for non-return indirect jumps (direct targets come from the
// pre-decoded instruction).
type btb struct {
	sets  int
	assoc int
	tags  []uint64
	tgts  []uint64
	lru   []uint32
	clock uint32
}

func newBTB(sets, assoc int) *btb {
	n := sets * assoc
	return &btb{
		sets:  sets,
		assoc: assoc,
		tags:  make([]uint64, n),
		tgts:  make([]uint64, n),
		lru:   make([]uint32, n),
	}
}

func (b *btb) lookup(pc uint64) (uint64, bool) {
	base := (int(pc) & (b.sets - 1)) * b.assoc
	tag := pc + 1 // bias so that tag 0 means empty
	for w := 0; w < b.assoc; w++ {
		if b.tags[base+w] == tag {
			b.clock++
			b.lru[base+w] = b.clock
			return b.tgts[base+w], true
		}
	}
	return 0, false
}

func (b *btb) insert(pc, target uint64) {
	base := (int(pc) & (b.sets - 1)) * b.assoc
	tag := pc + 1
	victim := base
	for w := 0; w < b.assoc; w++ {
		if b.tags[base+w] == tag {
			victim = base + w
			break
		}
		if b.lru[base+w] < b.lru[victim] {
			victim = base + w
		}
	}
	b.clock++
	b.tags[victim] = tag
	b.tgts[victim] = target
	b.lru[victim] = b.clock
}
