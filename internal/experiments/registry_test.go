package experiments

import "testing"

// TestRegistryNames pins the public experiment names: cmd/sweep's -exp
// values and the serving daemon's /v1/experiments/{name} paths both
// resolve through the registry, so renaming or dropping an entry is an
// API break that must be deliberate.
func TestRegistryNames(t *testing.T) {
	want := []string{
		"config", "fig2", "headline", "irbhit", "irbsize", "conflict",
		"irbports", "faults", "recovery", "frontier", "ablation-dup", "ablation-fwd",
		"scheduler", "cluster", "prior24", "reuse-sources", "reuse-prediction",
		"trb", "trb-prediction",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, name := range want {
		n, ok := ByName(name)
		if !ok || n.Run == nil {
			t.Errorf("ByName(%q): ok=%t, runnable=%t", name, ok, n.Run != nil)
		}
	}
	if _, ok := ByName("no-such-experiment"); ok {
		t.Error("ByName resolved a nonexistent experiment")
	}
}

// TestRegistryConfigRuns exercises the one registry entry that needs no
// simulation, proving the Named plumbing end to end.
func TestRegistryConfigRuns(t *testing.T) {
	n, ok := ByName("config")
	if !ok {
		t.Fatal("config experiment missing")
	}
	tbl, err := n.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.String() == "" {
		t.Fatal("config table rendered empty")
	}
}
