package experiments

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
)

// TestGridSerialParallelEquivalence runs the same experiment grid with
// one worker and with eight and requires identical Result values in
// every cell — the acceptance bar for the parallel sweep engine.
func TestGridSerialParallelEquivalence(t *testing.T) {
	cfgs := sim.HeadlineConfigs()
	serialOpts := quickOpts()
	serialOpts.Insns = 20_000
	serialOpts.Parallelism = 1
	parallelOpts := serialOpts
	parallelOpts.Parallelism = 8

	serial, err := runGrid(cfgs, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runGrid(cfgs, parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Benchmarks, parallel.Benchmarks) ||
		!reflect.DeepEqual(serial.Configs, parallel.Configs) {
		t.Fatal("grid axes differ between serial and parallel runs")
	}
	for b := range serial.Benchmarks {
		for c := range serial.Configs {
			if !reflect.DeepEqual(serial.Results[b][c], parallel.Results[b][c]) {
				t.Errorf("cell %s/%s differs between serial and parallel runs",
					serial.Benchmarks[b], serial.Configs[c])
			}
		}
	}
}

// TestGridErrorIsolation poisons one configuration in a grid: its column
// fails on every benchmark, every other cell still completes, and the
// aggregate error names the failed cells.
func TestGridErrorIsolation(t *testing.T) {
	bad := core.BaseDIE()
	bad.RUUSize = -1
	cfgs := []sim.NamedConfig{
		{Name: "SIE", Cfg: core.BaseSIE()},
		{Name: "broken", Cfg: bad},
		{Name: "DIE", Cfg: core.BaseDIE()},
	}
	opts := quickOpts()
	opts.Insns = 10_000
	opts.Parallelism = 4

	g, err := runGrid(cfgs, opts)
	if err == nil {
		t.Fatal("grid with a broken configuration reported no error")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("aggregate error does not name the broken config: %v", err)
	}
	if !errors.Is(g.Err(), err) && g.Err().Error() != err.Error() {
		t.Errorf("Grid.Err() disagrees with the returned error:\n %v\n vs %v", g.Err(), err)
	}
	for b := range g.Benchmarks {
		for c, name := range g.Configs {
			cellErr := g.Errs[b][c]
			if name == "broken" {
				if cellErr == nil {
					t.Errorf("%s on broken config reported no error", g.Benchmarks[b])
				}
				continue
			}
			if cellErr != nil {
				t.Errorf("healthy cell %s/%s failed: %v", g.Benchmarks[b], name, cellErr)
			}
			if g.Results[b][c].IPC <= 0 {
				t.Errorf("healthy cell %s/%s has no result", g.Benchmarks[b], name)
			}
		}
	}
}

// TestGridCancellation cancels a sweep from the progress callback and
// checks the experiment returns promptly with the context error while
// keeping the cells that did complete.
func TestGridCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := quickOpts()
	opts.Insns = 15_000
	opts.Parallelism = 2
	opts.Context = ctx
	opts.Progress = func(p runner.Progress) {
		if p.Done == 2 {
			cancel()
		}
	}

	g, err := runGrid(sim.HeadlineConfigs(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var done int
	for b := range g.Benchmarks {
		for c := range g.Configs {
			switch cellErr := g.Errs[b][c]; {
			case cellErr == nil:
				done++
			case !errors.Is(cellErr, context.Canceled):
				t.Errorf("cell %s/%s: %v", g.Benchmarks[b], g.Configs[c], cellErr)
			}
		}
	}
	if done < 2 {
		t.Errorf("%d cells completed before cancellation, want >= 2", done)
	}
	if done == len(g.Benchmarks)*len(g.Configs) {
		t.Error("cancellation did not skip any cell")
	}
}
