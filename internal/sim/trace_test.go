package sim

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"sort"
	"testing"

	"repro/internal/fsim"
	"repro/internal/program"
	"repro/internal/workload"
)

// TestTraceReplayMatchesDirect is the replay determinism gate: for every
// headline configuration, a run fed a captured trace must produce results
// identical — field for field — to a run that generates and interprets the
// program itself. Verify stays on so the commit-time oracle cross-checks
// every retired instruction along the way.
func TestTraceReplayMatchesDirect(t *testing.T) {
	p := gzipProfile(t)
	opts := Options{Insns: 20_000, Verify: true}
	tr, err := CaptureTrace(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, nc := range HeadlineConfigs() {
		direct, err := Run(nc.Name, nc.Cfg, p, opts)
		if err != nil {
			t.Fatalf("%s direct: %v", nc.Name, err)
		}
		withTrace := opts
		withTrace.Trace = tr
		replay, err := Run(nc.Name, nc.Cfg, p, withTrace)
		if err != nil {
			t.Fatalf("%s replay: %v", nc.Name, err)
		}
		if !reflect.DeepEqual(direct, replay) {
			t.Errorf("%s: trace-replay result differs from direct run:\ndirect %+v\nreplay %+v",
				nc.Name, direct, replay)
		}
	}
}

// TestTraceReplayWithFastForward exercises the cursor oracle's skip path
// and the replay front's fast-forward together.
func TestTraceReplayWithFastForward(t *testing.T) {
	p := gzipProfile(t)
	opts := Options{Insns: 15_000, FastForward: 25_000, Verify: true}
	tr, err := CaptureTrace(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := opts.FastForward + opts.Insns; !tr.Covers(want) {
		t.Fatalf("captured trace too short: %d < %d", tr.Len(), want)
	}
	direct, err := Run("DIE-IRB", HeadlineConfigs()[2].Cfg, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Trace = tr
	replay, err := Run("DIE-IRB", HeadlineConfigs()[2].Cfg, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, replay) {
		t.Errorf("fast-forwarded trace-replay differs from direct run")
	}
}

// TestTraceShortCoverageFallsBack runs with a trace that covers only part
// of the measured window: the front and the machine oracle must fall back
// to interpretation past its end and still verify cleanly.
func TestTraceShortCoverageFallsBack(t *testing.T) {
	p := gzipProfile(t)
	prog, err := ProgramFor(p, Options{Insns: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	short, err := fsim.Capture(prog, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Insns: 20_000, Verify: true, Trace: short}
	if short.Covers(opts.Insns) {
		t.Fatalf("trace unexpectedly covers the full budget (len %d)", short.Len())
	}
	replay, err := Run("DIE", HeadlineConfigs()[1].Cfg, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run("DIE", HeadlineConfigs()[1].Cfg, p, Options{Insns: 20_000, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, replay) {
		t.Errorf("partial-trace run differs from direct run")
	}
}

// TestTraceProfileMismatchRejected: handing a run a trace captured from a
// different benchmark must fail fast, not silently simulate the wrong
// program.
func TestTraceProfileMismatchRejected(t *testing.T) {
	gzip := gzipProfile(t)
	tr, err := CaptureTrace(gzip, Options{Insns: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	other, ok := workload.ByName("mesa")
	if !ok {
		t.Fatal("mesa profile missing")
	}
	_, err = Run("SIE", HeadlineConfigs()[0].Cfg, other, Options{Insns: 5_000, Trace: tr})
	if err == nil {
		t.Fatal("run accepted a trace captured from a different profile")
	}
}

// programChecksum hashes every architecturally meaningful part of a
// program: the code stream, the data image, and the entry point.
func programChecksum(t *testing.T, prog *program.Program) uint64 {
	t.Helper()
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|", prog.Name, prog.Entry)
	for _, in := range prog.Code {
		fmt.Fprintf(h, "%+v;", in)
	}
	addrs := make([]uint64, 0, len(prog.Data))
	for a := range prog.Data {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(h, "%d=%d;", a, prog.Data[a])
	}
	return h.Sum64()
}

// TestSharedTraceProgramNotMutated guards the memoization contract: the
// one generated program fanned out (via its trace) to every configuration
// cell must come back bit-identical — no run may write to the shared
// workload.
func TestSharedTraceProgramNotMutated(t *testing.T) {
	p := gzipProfile(t)
	opts := Options{Insns: 10_000, Verify: true}
	tr, err := CaptureTrace(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := programChecksum(t, tr.Prog())
	opts.Trace = tr
	for _, nc := range HeadlineConfigs() {
		if _, err := Run(nc.Name, nc.Cfg, p, opts); err != nil {
			t.Fatalf("%s: %v", nc.Name, err)
		}
	}
	if after := programChecksum(t, tr.Prog()); after != before {
		t.Errorf("shared program mutated across runs: checksum %#x != %#x", after, before)
	}
}
