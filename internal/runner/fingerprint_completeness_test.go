package runner

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The fingerprint's completeness is a structural property: every input
// that can steer a simulation must reach the hash, or the result cache
// will alias distinct runs. These tests hold the fingerprint's shape
// against the input types by reflection, so adding a field to
// sim.Options, core.Config or workload.Profile without deciding its
// cache treatment fails here with instructions, not in production with
// wrong cached numbers.

// optsExcluded are the sim.Options fields deliberately left out of
// optsKey. Every entry must carry the reason it cannot change a result.
var optsExcluded = map[string]string{
	"Trace": "replay is bit-identical to interpretation by construction; the trace's program is the profile's",
}

// jobExcluded are the Job fields deliberately left out of the payload.
var jobExcluded = map[string]string{
	"Name": "display label only, rewritten on cache hits; never reaches the simulator",
}

func TestFingerprintCoversOptions(t *testing.T) {
	key := reflect.TypeOf(optsKey{})
	keyed := make(map[string]bool, key.NumField())
	for i := 0; i < key.NumField(); i++ {
		keyed[key.Field(i).Name] = true
	}
	opts := reflect.TypeOf(sim.Options{})
	for i := 0; i < opts.NumField(); i++ {
		name := opts.Field(i).Name
		switch {
		case keyed[name] && optsExcluded[name] != "":
			t.Errorf("sim.Options.%s is both in optsKey and excluded; drop one", name)
		case !keyed[name] && optsExcluded[name] == "":
			t.Errorf("sim.Options.%s is not fingerprinted: add it to optsKey (and project it in Fingerprint), or add it to optsExcluded with the reason it cannot change a result", name)
		}
	}
	// The reverse direction: a key field naming no Options field is dead
	// weight that suggests a rename slipped by.
	for name := range keyed {
		if _, ok := opts.FieldByName(name); !ok {
			t.Errorf("optsKey.%s matches no sim.Options field; was the field renamed?", name)
		}
	}
	for name := range optsExcluded {
		if _, ok := opts.FieldByName(name); !ok {
			t.Errorf("optsExcluded lists %q, which is not a sim.Options field", name)
		}
	}
}

func TestFingerprintCoversJob(t *testing.T) {
	covered := map[string]bool{ // fields the payload struct carries
		"Config":  true,
		"Profile": true,
		"Opts":    true,
	}
	job := reflect.TypeOf(Job{})
	for i := 0; i < job.NumField(); i++ {
		name := job.Field(i).Name
		if !covered[name] && jobExcluded[name] == "" {
			t.Errorf("Job.%s is neither fingerprinted nor excluded with a reason", name)
		}
	}
}

// TestFingerprintConfigAndProfileAreFullyMarshaled guards the other leg:
// Config and Profile enter the hash via json.Marshal of the whole value,
// which silently drops unexported fields and fields tagged json:"-". Any
// such field would be invisible to the cache key.
func TestFingerprintConfigAndProfileAreFullyMarshaled(t *testing.T) {
	checkJSONVisible(t, reflect.TypeOf(core.Config{}), "core.Config")
	checkJSONVisible(t, reflect.TypeOf(workload.Profile{}), "workload.Profile")
}

func checkJSONVisible(t *testing.T, typ reflect.Type, path string) {
	t.Helper()
	if typ.Kind() == reflect.Pointer || typ.Kind() == reflect.Slice ||
		typ.Kind() == reflect.Array || typ.Kind() == reflect.Map {
		checkJSONVisible(t, typ.Elem(), path+"[]")
		return
	}
	if typ.Kind() != reflect.Struct {
		return
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		fp := path + "." + f.Name
		if !f.IsExported() {
			t.Errorf("%s is unexported: json.Marshal drops it, so it never reaches the fingerprint; export it or move it out of the marshaled type", fp)
			continue
		}
		if tag := f.Tag.Get("json"); tag == "-" {
			t.Errorf("%s is tagged json:\"-\": it never reaches the fingerprint; untag it or fingerprint it explicitly", fp)
			continue
		} else if strings.Contains(tag, "omitempty") {
			// omitempty is fine for the key: an absent field and its zero
			// value steer the simulator identically.
			_ = tag
		}
		checkJSONVisible(t, f.Type, fp)
	}
}
