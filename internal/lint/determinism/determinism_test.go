package determinism

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestTestdataWantComments drives the pass over the annotated testdata
// package: one finding per want comment, no extras.
func TestTestdataWantComments(t *testing.T) {
	dir := filepath.Join("testdata", "src", "a")
	linttest.Run(t, dir, func() ([]lint.Finding, error) {
		return CheckPackage(lint.NewChecker(), dir)
	})
}

// TestProtectedTreeIsClean is the repository's own gate: the simulation
// core and the harness layers must carry no unannotated wall-clock
// reads, global RNG calls or order-sensitive map iteration.
func TestProtectedTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the protected packages from source; skipped in -short")
	}
	findings, err := Pass{}.Check(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestMissingPackagesAreSkipped keeps the pass usable on partial trees:
// a root without the protected packages yields no findings and no error.
func TestMissingPackagesAreSkipped(t *testing.T) {
	findings, err := Pass{}.Check(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("unexpected findings on empty tree: %v", findings)
	}
}
