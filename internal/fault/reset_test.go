package fault

import "testing"

// TestInjectorResetRestoresFreshStream: after consuming an arbitrary
// prefix of decisions, Reset must make the injector replay exactly the
// campaign a freshly constructed injector with the same config would —
// the property the batched runner's scalar re-runs stand on.
func TestInjectorResetRestoresFreshStream(t *testing.T) {
	cfg := Config{Site: FU, Rate: 0.02, Seed: 99}
	used, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a prefix: PRNG draws, strike bookkeeping, fault count.
	for seq := uint64(1); seq <= 500; seq++ {
		used.FUResult(seq, seq*4, false, 0xabcdef)
	}
	if used.Injected == 0 {
		t.Fatal("prefix consumed no faults; raise the rate or length")
	}
	used.Reset()
	if used.Injected != 0 {
		t.Fatalf("Injected = %d after Reset, want 0", used.Injected)
	}

	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 2_000; seq++ {
		a := used.FUResult(seq, seq*4, false, 0xabcdef)
		b := fresh.FUResult(seq, seq*4, false, 0xabcdef)
		if a != b {
			t.Fatalf("seq %d: reset injector returned %#x, fresh returned %#x", seq, a, b)
		}
	}
	if used.Injected != fresh.Injected {
		t.Fatalf("reset injector fired %d faults, fresh fired %d", used.Injected, fresh.Injected)
	}
}

// TestPersistentReset: the stuck-at injector's only consumed state is its
// applied-fault count.
func TestPersistentReset(t *testing.T) {
	p := &Persistent{Site: FU, PC: 8, Bit: 3, MaxFaults: 1}
	if got := p.FUResult(1, 8, false, 0); got == 0 {
		t.Fatal("persistent fault did not fire")
	}
	if p.FUResult(2, 8, false, 0) != 0 {
		t.Fatal("MaxFaults=1 injector fired twice")
	}
	p.Reset()
	if p.InjectedCount() != 0 {
		t.Fatalf("InjectedCount = %d after Reset, want 0", p.InjectedCount())
	}
	if got := p.FUResult(3, 8, false, 0); got == 0 {
		t.Fatal("reset persistent fault did not fire again")
	}
}
