// ALU bandwidth exploration: the paper's motivating observation is that a
// dual-execution core is starved for ALUs, and that adding ALUs is the
// most effective (but complexity-prohibitive) fix. This example sweeps the
// integer ALU count on an ALU-hungry workload and shows where DIE's demand
// saturates each machine — and how close DIE-IRB gets to the doubled-ALU
// machine without adding a single ALU.
//
//	go run ./examples/alusweep
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	profile, ok := workload.ByName("gzip")
	if !ok {
		log.Fatal("gzip profile missing")
	}
	opts := sim.Options{Insns: 150_000}

	fmt.Println("int ALUs   SIE IPC   DIE IPC   DIE loss")
	for _, alus := range []int{2, 3, 4, 6, 8} {
		sie := core.BaseSIE()
		sie.FUs[isa.FUIntALU] = alus
		die := sie
		die.Mode = core.DIE
		rs, err := sim.Run("SIE", sie, profile, opts)
		if err != nil {
			log.Fatal(err)
		}
		rd, err := sim.Run("DIE", die, profile, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d   %7.3f   %7.3f   %7.1f%%\n",
			alus, rs.IPC, rd.IPC, 100*(rs.IPC-rd.IPC)/rs.IPC)
	}

	// The punchline: DIE-IRB at 4 ALUs vs DIE at 8 ALUs.
	irb, err := sim.Run("DIE-IRB", core.BaseDIEIRB(), profile, opts)
	if err != nil {
		log.Fatal(err)
	}
	die8 := core.BaseDIE().WithDoubledALUs()
	r8, err := sim.Run("DIE-2xALU", die8, profile, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDIE-IRB with 4 ALUs reaches IPC %.3f; doubling to 8 ALUs reaches %.3f.\n",
		irb.IPC, r8.IPC)
	fmt.Printf("The IRB supplies %.0f%% of the duplicate stream without touching the\n",
		100*irb.ReuseRate())
	fmt.Println("issue logic; extra ALUs would grow the wakeup/select critical path.")
}
