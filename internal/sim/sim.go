// Package sim is the top-level simulation driver: it generates a workload
// program, runs it through a configured core, optionally verifies the
// retired instruction stream against an independent functional execution,
// and collects the statistics the experiment harness reports. It also
// defines the named machine configurations of each experiment in the
// paper (see DESIGN.md's experiment index).
package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/irb"
	"repro/internal/program"
	"repro/internal/trb"
	"repro/internal/workload"
)

// Options control one simulation run.
type Options struct {
	// Insns is the architected instruction budget. The workload is sized
	// to outlast it, so every configuration commits exactly this many
	// instructions — the basis for IPC comparisons.
	Insns uint64
	// Verify cross-checks every committed instruction against an
	// independent in-order functional execution. Costs ~15% runtime;
	// tests keep it on, large sweeps may disable it. A mismatch surfaces
	// as a *DivergenceError.
	Verify bool
	// Injector, when non-nil, is installed as the core's fault injector.
	Injector core.FaultInjector
	// FastForward functionally executes this many instructions before
	// the timing simulation starts, skipping initialization phases the
	// way SimpleScalar's -fastfwd does. Caches and predictors start
	// cold at the measurement point.
	FastForward uint64
	// Seed, when non-zero, perturbs the workload generator: it is XORed
	// into the profile's own seed, so a single sweep-level seed still
	// gives every benchmark a distinct program. The zero value keeps the
	// profile's fixed seed and is byte-identical to the behaviour the
	// recorded EXPERIMENTS.md numbers were measured with.
	Seed uint64
	// Program, when non-nil, runs this exact pre-built program instead of
	// generating one from the profile — the path kernels and externally
	// assembled programs take. The profile's workload knobs (and Seed) are
	// ignored and the program's own name is reported as the benchmark.
	// The instruction budget still caps the run, but a program that halts
	// before exhausting it is not an error in this mode.
	Program *program.Program
	// Trace, when non-nil, replays this pre-captured functional execution
	// (see CaptureTrace) instead of generating and re-interpreting the
	// program: the run executes the trace's own program and both the
	// dispatch front and the verification oracle draw values from the
	// recorded stream, which is bit-identical to direct interpretation by
	// construction. The grid harness captures one trace per benchmark and
	// shares it — read-only — across every configuration cell.
	Trace *fsim.Trace
}

// DivergenceError reports that a committed instruction did not match the
// independent functional oracle (or that the oracle itself could not
// step). It is returned — not panicked — by Run/RunContext so callers,
// including the parallel sweep runner, can handle verification failure
// as an ordinary per-run error value.
type DivergenceError struct {
	Bench  string // workload profile name
	Config string // configuration display name
	Seq    uint64 // architected sequence number of the divergent commit
	// Got is the record the timing core retired; Want is the oracle's.
	// Both are zero when OracleErr is set.
	Got, Want fsim.Retired
	// OracleErr is non-nil when the oracle failed to produce a record at
	// all (e.g. it halted before the timing core did).
	OracleErr error
}

func (e *DivergenceError) Error() string {
	if e.OracleErr != nil {
		return fmt.Sprintf("sim: %s on %s: oracle failed at seq %d: %v",
			e.Bench, e.Config, e.Seq, e.OracleErr)
	}
	return fmt.Sprintf("sim: %s on %s diverged from functional execution at seq %d:\n got %+v\nwant %+v",
		e.Bench, e.Config, e.Seq, e.Got, e.Want)
}

func (e *DivergenceError) Unwrap() error { return e.OracleErr }

// Sentinel errors for the programmatically distinguishable run failures.
// RunContext wraps each with the run's particulars via %w, so callers
// select on the condition with errors.Is and never on message text.
var (
	// ErrTraceMismatch: Options.Trace was captured from a different
	// program than the one the run was asked to execute.
	ErrTraceMismatch = errors.New("sim: trace does not match requested program")
	// ErrHaltedEarly: the functional machine halted before the
	// fast-forward window completed.
	ErrHaltedEarly = errors.New("sim: machine halted during fast-forward")
	// ErrProgramTooShort: a generated program ran out of instructions
	// before the measured budget was committed.
	ErrProgramTooShort = errors.New("sim: program too short for instruction budget")
	// ErrTraceExhausted: the verification oracle's recorded stream ended
	// before the timing core stopped committing (surfaced inside a
	// *DivergenceError's OracleErr chain).
	ErrTraceExhausted = errors.New("sim: trace exhausted before run completed")
	// ErrBatchMisuse: RunBatchContext was handed a shape it cannot honor
	// (no lanes, or an injector in Options instead of a lane).
	ErrBatchMisuse = errors.New("sim: invalid batch run specification")
)

// DefaultInsns is the per-benchmark instruction budget used by the
// experiment harness; large enough for the caches, predictor and IRB to
// reach steady state, small enough for full sweeps on a laptop.
const DefaultInsns = 300_000

// Result is the outcome of one run.
type Result struct {
	Bench        string
	Config       string
	Mode         core.Mode
	IPC          float64
	Core         core.Stats
	IRB          *irb.Stats // nil when the mode has no IRB
	TRB          *trb.Stats // nil when the mode has no trace reuse buffer
	Bpred        bpred.Stats
	L1I, L1D, L2 cache.Stats
}

// ReuseRate returns the fraction of reuse-eligible executions served by
// a reuse structure rather than a functional unit: for dual modes,
// duplicate-stream hits (per-instruction IRB hits plus TRB-served window
// instructions) over those hits plus duplicate FU executions; for modes
// whose every stream consults the IRB (SIE-IRB), reuse hits over reuse
// hits plus all FU issues.
func (r Result) ReuseRate() float64 {
	hits := r.Core.IRBReuseHits + r.Core.TRBInstrSkipped
	den := hits + r.Core.DupFUExec
	if r.Mode.Caps().IRBAllStreams {
		den = r.Core.IRBReuseHits + r.Core.IssueSlotsUsed
		hits = r.Core.IRBReuseHits
	}
	if den == 0 {
		return 0
	}
	return float64(hits) / float64(den)
}

// TraceReuseRate returns the fraction of committed architected
// instructions whose duplicate was served by a TRB window hit — the
// trace-level share of the overall reuse. Zero for modes without a TRB.
func (r Result) TraceReuseRate() float64 {
	if r.Core.Committed == 0 {
		return 0
	}
	return float64(r.Core.TRBInstrSkipped) / float64(r.Core.Committed)
}

// PCHitRate returns the IRB's PC-tag hit rate.
func (r Result) PCHitRate() float64 {
	if r.IRB == nil || r.IRB.Lookups == 0 {
		return 0
	}
	return float64(r.IRB.PCHits) / float64(r.IRB.Lookups)
}

// ProgramFor returns the exact program RunContext would execute for p and
// opts: the Options.Program override when set, otherwise the generated
// workload sized to outlast the instruction budget with margin. Static
// tooling (cmd/irblint, the experiments cross-validation) uses it to
// analyze precisely what a run measures.
func ProgramFor(p workload.Profile, opts Options) (*program.Program, error) {
	if opts.Program != nil {
		return opts.Program, nil
	}
	if opts.Trace != nil {
		return opts.Trace.Prog(), nil
	}
	if opts.Insns == 0 {
		opts.Insns = DefaultInsns
	}
	if opts.Seed != 0 {
		p.Seed ^= opts.Seed
	}
	return workload.Generate(p.WithIters(opts.FastForward + opts.Insns + opts.Insns/3))
}

// TraceSlack is the extra margin CaptureTrace records beyond
// FastForward+Insns. The dispatch front executes ahead of commit by up to
// the in-flight window (RUU plus fetch queue), so a trace sized exactly to
// the commit budget would force the last window of instructions back onto
// the interpreter; the slack keeps the whole run on the replay fast path.
// It is deliberately generous — far larger than any configured window —
// because trace records are cheap (~96 B) and correctness never depends on
// it: a machine that outruns its trace falls back to interpretation with
// bit-identical results.
const TraceSlack = 4096

// CaptureTrace functionally executes the exact program RunContext would
// run for (p, opts) and records its retired stream. The returned trace is
// immutable and safe to share: a grid harness captures one trace per
// benchmark and sets it as Options.Trace on every configuration cell, so
// the workload is generated and interpreted once instead of once per cell.
func CaptureTrace(p workload.Profile, opts Options) (*fsim.Trace, error) {
	if opts.Insns == 0 {
		opts.Insns = DefaultInsns
	}
	prog, err := ProgramFor(p, opts)
	if err != nil {
		return nil, err
	}
	return fsim.Capture(prog, opts.FastForward+opts.Insns+TraceSlack)
}

// Run simulates profile p on configuration cfg. It is RunContext with a
// background context.
func Run(name string, cfg core.Config, p workload.Profile, opts Options) (Result, error) {
	return RunContext(context.Background(), name, cfg, p, opts)
}

// RunContext simulates profile p on configuration cfg, stopping early
// with ctx.Err() if the context is cancelled mid-run. Verification
// failures are returned as *DivergenceError values.
func RunContext(ctx context.Context, name string, cfg core.Config, p workload.Profile, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Insns == 0 {
		opts.Insns = DefaultInsns
	}
	c, prog, p, err := prepareRun(ctx, cfg, p, opts)
	if err != nil {
		return Result{}, err
	}
	// Return the core's recycled buffers (event heap, waiting list, uop
	// arena) to the shared pool once the stats below have been copied out.
	defer c.Release()
	if opts.Injector != nil {
		c.SetInjector(opts.Injector)
	}
	if opts.Verify {
		oracle, oerr := commitOracle(c, opts, prog, p.Name, name)
		if oerr != nil {
			return Result{}, oerr
		}
		c.OnCommit = oracle
	}
	if ctx.Done() != nil {
		// Propagate cancellation into the core's cycle loop so a long
		// run stops within one cycle of the context ending.
		stop := context.AfterFunc(ctx, c.RequestStop)
		defer stop()
	}
	if err := c.Run(); err != nil {
		return Result{}, mapRunErr(err, ctx, p.Name, name)
	}
	if opts.Program == nil && c.Stats.Committed < opts.Insns {
		return Result{}, fmt.Errorf("%w: %s on %s committed only %d/%d instructions",
			ErrProgramTooShort, p.Name, name, c.Stats.Committed, opts.Insns)
	}
	return harvest(c, p.Name, name, cfg.Mode), nil
}

// prepareRun performs everything that precedes the cycle loop, shared by
// the scalar and batched drivers: the trace-agreement checks, program
// resolution, the preflight analysis, the functional machine (replaying
// the trace when one is attached), the fast-forward window, and core
// construction. It returns the profile with its display name resolved (a
// pinned program reports its own name as the benchmark). On success the
// caller owns the core and must Release it.
func prepareRun(ctx context.Context, cfg core.Config, p workload.Profile, opts Options) (*core.Core, *program.Program, workload.Profile, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, p, err
	}
	if tr := opts.Trace; tr != nil {
		// A trace fixes the executed program, so it must agree with the
		// other program sources: the explicit Program override by identity,
		// the profile by name (generated programs are named after their
		// profile). Catching a mismatched hand-off here turns a silent
		// wrong-benchmark result into an immediate error.
		if opts.Program != nil && opts.Program != tr.Prog() {
			return nil, nil, p, fmt.Errorf("%w: captured from %q, Options.Program is %q",
				ErrTraceMismatch, tr.Prog().Name, opts.Program.Name)
		}
		if opts.Program == nil && tr.Prog().Name != p.Name {
			return nil, nil, p, fmt.Errorf("%w: captured from %q, profile is %q",
				ErrTraceMismatch, tr.Prog().Name, p.Name)
		}
	}
	prog, err := ProgramFor(p, opts)
	if err != nil {
		return nil, nil, p, err
	}
	if opts.Program != nil {
		p.Name = prog.Name
	}
	// Preflight: reject ill-formed programs with a structured diagnostic
	// before spending any cycles on them. The first finding is available
	// via errors.As(err, &(*analysis.Diagnostic)). Runs sharing a trace
	// share one memoized check instead of re-analyzing per cell.
	var preErr error
	if opts.Trace != nil {
		preErr = opts.Trace.Preflight(analysis.Check)
	} else {
		preErr = analysis.Check(prog)
	}
	if preErr != nil {
		return nil, nil, p, fmt.Errorf("sim: preflight rejected %s: %w", prog.Name, preErr)
	}
	cfg.MaxInsns = opts.Insns
	// The dispatch front replays the captured stream when a trace is
	// available — applying recorded values instead of decoding and
	// evaluating — and falls back to interpretation past the trace's end.
	var m *fsim.Machine
	if opts.Trace != nil {
		m = fsim.NewReplay(opts.Trace)
	} else {
		m = fsim.New(prog)
	}
	if opts.FastForward > 0 {
		ran, ferr := m.Run(opts.FastForward)
		if ferr != nil {
			return nil, nil, p, ferr
		}
		if ran < opts.FastForward || m.Halted {
			return nil, nil, p, fmt.Errorf("%w: %s ran %d/%d", ErrHaltedEarly,
				p.Name, ran, opts.FastForward)
		}
	}
	c, err := core.NewAt(cfg, m)
	if err != nil {
		return nil, nil, p, err
	}
	return c, prog, p, nil
}

// mapRunErr converts a core.Run error into the driver's documented error
// surface: a *DivergenceError passes through, an *UnrecoverableFaultError
// is stamped with the run's identity, a stop caused by the caller's
// context becomes that context's error, and anything else is wrapped with
// the run's name.
func mapRunErr(err error, ctx context.Context, bench, config string) error {
	var div *DivergenceError
	if errors.As(err, &div) {
		return div
	}
	var uf *core.UnrecoverableFaultError
	if errors.As(err, &uf) {
		// A persistent fault exhausted the bounded retry budget:
		// a structured per-run outcome, like a divergence.
		uf.Bench, uf.Config = bench, config
		return uf
	}
	if errors.Is(err, core.ErrStopped) && ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("sim: %s on %s: %w", bench, config, err)
}

// harvest copies a finished core's statistics into a Result.
func harvest(c *core.Core, bench, config string, mode core.Mode) Result {
	res := Result{
		Bench:  bench,
		Config: config,
		Mode:   mode,
		IPC:    c.Stats.IPC(),
		Core:   c.Stats,
		Bpred:  c.Bpred().Stats,
	}
	res.L1I = c.Mem().L1I.Stats
	res.L1D = c.Mem().L1D.Stats
	res.L2 = c.Mem().L2.Stats
	if b := c.IRB(); b != nil {
		st := b.Stats
		res.IRB = &st
	}
	if b := c.TRB(); b != nil {
		st := b.Stats
		res.TRB = &st
	}
	return res
}

// sameCommit reports whether the core's retired record agrees with the
// oracle's on every architecturally visible field.
func sameCommit(rec *fsim.Retired, want *fsim.Retired) bool {
	return rec.Seq == want.Seq && rec.PC == want.PC && rec.Result == want.Result &&
		rec.NextPC == want.NextPC && rec.Addr == want.Addr
}

// commitOracle builds the Verify callback comparing every committed
// instruction against an independent functional execution. When the trace
// covers the whole measured run the oracle is just a cursor over the
// recorded stream — no second interpreter runs at all; otherwise it steps
// a dedicated machine (itself replay-backed when a partial trace exists,
// falling back to interpretation past its end).
func commitOracle(c *core.Core, opts Options, prog *program.Program, bench, config string) (func(*fsim.Retired), error) {
	var diverged bool
	abort := func(e *DivergenceError) {
		diverged = true
		e.Bench, e.Config = bench, config
		c.Abort(e)
	}
	if tr := opts.Trace; tr != nil && tr.Covers(opts.FastForward+opts.Insns) {
		cur := tr.ReplayFrom(opts.FastForward)
		return func(rec *fsim.Retired) {
			if diverged {
				return
			}
			want, ok := cur.Next()
			if !ok {
				abort(&DivergenceError{Seq: rec.Seq,
					OracleErr: fmt.Errorf("%w: trace of %q ended at seq %d", ErrTraceExhausted, prog.Name, rec.Seq)})
				return
			}
			if !sameCommit(rec, want) {
				abort(&DivergenceError{Seq: want.Seq, Got: *rec, Want: *want})
			}
		}, nil
	}
	var oracle *fsim.Machine
	if opts.Trace != nil {
		oracle = fsim.NewReplay(opts.Trace)
	} else {
		oracle = fsim.New(prog)
	}
	if opts.FastForward > 0 {
		if _, ferr := oracle.Run(opts.FastForward); ferr != nil {
			return nil, ferr
		}
	}
	return func(rec *fsim.Retired) {
		if diverged {
			return
		}
		want, oerr := oracle.Step()
		if oerr != nil {
			abort(&DivergenceError{Seq: rec.Seq, OracleErr: oerr})
			return
		}
		if !sameCommit(rec, &want) {
			abort(&DivergenceError{Seq: want.Seq, Got: *rec, Want: want})
		}
	}, nil
}

// NamedConfig pairs a configuration with its display name.
type NamedConfig struct {
	Name string
	Cfg  core.Config
}

// FrontierConfigs returns the machines of the redundancy frontier
// comparison, resolved through the core mode registry: the plain
// single-stream baseline plus every registered mode that detects faults.
// The list is what `sweep -exp frontier` places on one
// IPC-vs-coverage-vs-MTTR table; a newly registered detecting mode joins
// it with no code change here.
func FrontierConfigs() []NamedConfig {
	var out []NamedConfig
	for _, mi := range core.Modes() {
		// The baseline is recognized by capability, not by name: one
		// stream, no commit-time comparison, no reuse buffer.
		baseline := mi.Caps.Streams == 1 && mi.Caps.Compare == core.CompareNone && !mi.Caps.UsesIRB
		if baseline || mi.Caps.Detects {
			out = append(out, NamedConfig{string(mi.Mode), mi.Base()})
		}
	}
	return out
}

// Fig2Configs returns the eight machines of the paper's Figure 2
// motivation experiment (plus the SIE baseline first): DIE with each
// combination of doubled ALUs, doubled RUU/LSQ and doubled widths.
func Fig2Configs() []NamedConfig {
	die := core.BaseDIE()
	return []NamedConfig{
		{"SIE", core.BaseSIE()},
		{"DIE", die},
		{"DIE-2xALU", die.WithDoubledALUs()},
		{"DIE-2xRUU", die.WithDoubledRUU()},
		{"DIE-2xWidths", die.WithDoubledWidths()},
		{"DIE-2xALU-2xRUU", die.WithDoubledALUs().WithDoubledRUU()},
		{"DIE-2xALU-2xWidths", die.WithDoubledALUs().WithDoubledWidths()},
		{"DIE-2xRUU-2xWidths", die.WithDoubledRUU().WithDoubledWidths()},
		{"DIE-2xALU-2xRUU-2xWidths", die.WithDoubledALUs().WithDoubledRUU().WithDoubledWidths()},
	}
}

// HeadlineConfigs returns the machines of the headline comparison: the
// SIE bound, the DIE floor, the proposed DIE-IRB, and the idealized
// DIE-2xALU that DIE-IRB approximates without issue-logic growth.
func HeadlineConfigs() []NamedConfig {
	return []NamedConfig{
		{"SIE", core.BaseSIE()},
		{"DIE", core.BaseDIE()},
		{"DIE-IRB", core.BaseDIEIRB()},
		{"DIE-2xALU", core.BaseDIE().WithDoubledALUs()},
	}
}

// IRBSizeConfigs returns DIE-IRB with the given IRB entry counts.
func IRBSizeConfigs(sizes []int) []NamedConfig {
	out := make([]NamedConfig, 0, len(sizes))
	for _, n := range sizes {
		cfg := core.BaseDIEIRB()
		cfg.IRB.Entries = n
		out = append(out, NamedConfig{fmt.Sprintf("DIE-IRB-%d", n), cfg})
	}
	return out
}

// ConflictConfigs returns the conflict-miss reduction ablation: the
// direct-mapped baseline, the victim-buffer extension, and 2/4-way
// set-associative variants at equal capacity.
func ConflictConfigs() []NamedConfig {
	mk := func(name string, assoc, victim int) NamedConfig {
		cfg := core.BaseDIEIRB()
		cfg.IRB.Assoc = assoc
		cfg.IRB.VictimEntries = victim
		return NamedConfig{name, cfg}
	}
	return []NamedConfig{
		mk("DM", 1, 0),
		mk("DM+victim8", 1, 8),
		mk("DM+victim16", 1, 16),
		mk("2-way", 2, 0),
		mk("4-way", 4, 0),
	}
}

// PortConfigs returns DIE-IRB with varying read-port provisioning (write
// ports scale at half the reads, as in the paper's 4R/2W/2RW split).
func PortConfigs(reads []int) []NamedConfig {
	out := make([]NamedConfig, 0, len(reads))
	for _, r := range reads {
		cfg := core.BaseDIEIRB()
		cfg.IRB.ReadPorts = r
		cfg.IRB.WritePorts = (r + 1) / 2
		cfg.IRB.RWPorts = r / 2
		out = append(out, NamedConfig{fmt.Sprintf("DIE-IRB-%dR%dW%dRW", r, (r+1)/2, r/2), cfg})
	}
	return out
}

// SchedulerConfigs returns the Section 3.3 issue-logic matrix: the default
// data-capture scheduler with the value-based reuse test, the decoupled
// (non-data-capture) scheduler, and the name-based reuse test on both.
func SchedulerConfigs() []NamedConfig {
	mk := func(name string, sched core.SchedulerKind, nameBased bool) NamedConfig {
		cfg := core.BaseDIEIRB()
		cfg.Scheduler = sched
		cfg.IRBNameBased = nameBased
		return NamedConfig{name, cfg}
	}
	return []NamedConfig{
		mk("capture/value", core.DataCapture, false),
		mk("capture/name", core.DataCapture, true),
		mk("decoupled/value", core.Decoupled, false),
		mk("decoupled/name", core.Decoupled, true),
	}
}

// ClusterConfigs returns the clustered-alternative comparison of the
// paper's Section 3 discussion: the shared-resource DIE, the resource-
// replicating clustered DIE, and the proposed DIE-IRB.
func ClusterConfigs() []NamedConfig {
	clu := core.BaseDIE()
	clu.Clustered = true
	return []NamedConfig{
		{"SIE", core.BaseSIE()},
		{"DIE", core.BaseDIE()},
		{"DIE-cluster", clu},
		{"DIE-IRB", core.BaseDIEIRB()},
	}
}

// ReuseSourceConfigs returns the reuse-source extension matrix: the
// baseline DIE-IRB, DIE-IRB with squash reuse, the prior-work SIE-IRB,
// and SIE-IRB with Sn+d-style dependence chaining (the "collapse true
// dependencies" capability instruction reuse was first proposed for).
func ReuseSourceConfigs() []NamedConfig {
	sq := core.BaseDIEIRB()
	sq.IRBSquashReuse = true
	sie := core.BaseSIE()
	sie.Mode = core.SIEIRB
	chain := sie
	chain.IRBChaining = true
	return []NamedConfig{
		{"DIE-IRB", core.BaseDIEIRB()},
		{"DIE-IRB+squash", sq},
		{"SIE-IRB", sie},
		{"SIE-IRB+chain", chain},
	}
}
