// Command sweep regenerates the paper's figures and tables (and this
// reproduction's ablations) over the 12 SPEC2000-like workloads.
//
// Usage:
//
//	sweep -exp all                     # every experiment
//	sweep -exp fig2                    # one experiment
//	sweep -exp headline -insns 500000  # bigger instruction budget
//	sweep -exp irbhit -bench gzip,mesa # subset of benchmarks
//
// Experiments: config, fig2, headline, irbhit, irbsize, conflict,
// irbports, faults, ablation-dup, ablation-fwd, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see package doc)")
	insns := flag.Uint64("insns", sim.DefaultInsns, "architected instructions per run")
	bench := flag.String("bench", "", "comma-separated benchmark subset (default all 12)")
	verify := flag.Bool("verify", false, "verify every run against the functional oracle")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	flag.Parse()
	emitCSV = *csv

	opts := experiments.Options{Insns: *insns, Verify: *verify}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}

	if err := run(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

type runner func(experiments.Options) (*stats.Table, error)

func runners() []struct {
	name string
	fn   runner
} {
	return []struct {
		name string
		fn   runner
	}{
		{"config", func(experiments.Options) (*stats.Table, error) {
			return experiments.ConfigTable(), nil
		}},
		{"fig2", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Fig2(o)
			return t, err
		}},
		{"headline", func(o experiments.Options) (*stats.Table, error) {
			_, _, t, err := experiments.Headline(o)
			return t, err
		}},
		{"irbhit", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.IRBHit(o)
			return t, err
		}},
		{"irbsize", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.IRBSize(o)
			return t, err
		}},
		{"conflict", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Conflict(o)
			return t, err
		}},
		{"irbports", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Ports(o)
			return t, err
		}},
		{"faults", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Faults(o)
			return t, err
		}},
		{"ablation-dup", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.AblationDup(o)
			return t, err
		}},
		{"ablation-fwd", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.AblationFwd(o)
			return t, err
		}},
		{"scheduler", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Scheduler(o)
			return t, err
		}},
		{"cluster", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Cluster(o)
			return t, err
		}},
		{"prior24", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.Prior24(o)
			return t, err
		}},
		{"reuse-sources", func(o experiments.Options) (*stats.Table, error) {
			_, t, err := experiments.ReuseSources(o)
			return t, err
		}},
	}
}

var emitCSV bool

func render(t *stats.Table) string {
	if emitCSV {
		return t.CSV()
	}
	return t.String()
}

func run(exp string, opts experiments.Options) error {
	for _, r := range runners() {
		if exp != "all" && exp != r.name {
			continue
		}
		t, err := r.fn(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Printf("=== %s ===\n%s\n", r.name, render(t))
		if exp == r.name {
			return nil
		}
	}
	if exp != "all" {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
