package runner

// Planner and batch-harness tests. These live inside the package so they
// can exercise planBatches directly and swap simRunBatch for stubs, the
// same way harness_test.go treats simRun.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/irb"
	"repro/internal/sim"
	"repro/internal/workload"
)

// swapSimRunBatch substitutes the batched simulation entry point for the
// duration of the test, restoring the real one afterwards.
func swapSimRunBatch(t *testing.T, fn func(context.Context, string, core.Config, workload.Profile, sim.Options, []sim.BatchLane) ([]sim.BatchOutcome, error)) {
	t.Helper()
	prev := simRunBatch
	simRunBatch = fn
	t.Cleanup(func() { simRunBatch = prev })
}

// campaignStubJobs builds n jobs identical up to their injector seed —
// the canonical batchable family — over the named profile.
func campaignStubJobs(t *testing.T, bench string, n int) []Job {
	t.Helper()
	jobs := make([]Job, n)
	for i := range jobs {
		inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-4, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Job{
			Name:    "stub",
			Profile: workload.Profile{Name: bench},
			Opts:    sim.Options{Injector: inj},
		}
	}
	return jobs
}

func allEligible(int) bool { return true }

// nonBatchable delegates core.FaultInjector to a real injector but
// deliberately withholds the batch capability (no Reset/InjectedCount).
type nonBatchable struct{ inner *fault.Injector }

func (n nonBatchable) FUResult(seq, pc uint64, dup bool, sig uint64) uint64 {
	return n.inner.FUResult(seq, pc, dup, sig)
}
func (n nonBatchable) Operand(seq, pc uint64, dup bool, which int, val uint64) uint64 {
	return n.inner.Operand(seq, pc, dup, which, val)
}
func (n nonBatchable) AfterIRBInsert(pc uint64, b *irb.IRB) { n.inner.AfterIRBInsert(pc, b) }
func (nonBatchable) Fingerprint() string                    { return "nonBatchable{}" }

func TestPlanBatchesGroupingRule(t *testing.T) {
	famA := campaignStubJobs(t, "a", 3) // seeds 1..3: one group
	famB := campaignStubJobs(t, "b", 1) // singleton: no group
	// Two identical fault-free cells: duplicates, but no injector lane —
	// the cache dedups those, batching them would buy nothing.
	clean := []Job{
		{Name: "stub", Profile: workload.Profile{Name: "c"}},
		{Name: "stub", Profile: workload.Profile{Name: "c"}},
	}
	// A fault-free sibling of family A joins A's group as its clean lane.
	cleanA := Job{Name: "stub", Profile: workload.Profile{Name: "a"}}

	jobs := append(append(append(append([]Job{}, famA...), famB...), clean...), cleanA)
	groups := planBatches(jobs, allEligible)
	if len(groups) != 1 {
		t.Fatalf("got %d groups %v, want 1", len(groups), groups)
	}
	want := []int{0, 1, 2, 6}
	if len(groups[0]) != len(want) {
		t.Fatalf("group = %v, want %v", groups[0], want)
	}
	for k, i := range want {
		if groups[0][k] != i {
			t.Fatalf("group = %v, want %v", groups[0], want)
		}
	}
}

func TestPlanBatchesNonBatchableExcluded(t *testing.T) {
	jobs := campaignStubJobs(t, "a", 3)
	wrapped, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	raw := jobs[0]
	raw.Opts.Injector = nonBatchable{wrapped}
	jobs = append(jobs, raw)
	groups := planBatches(jobs, allEligible)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v, want the three batchable lanes only", groups)
	}
}

func TestPlanBatchesSplitsOnTraceIdentity(t *testing.T) {
	// Same campaign family, but half the lanes carry a different trace
	// object: ErrTraceMismatch semantics compare by identity, so a leader
	// holding one trace must not serve lanes holding another.
	jobs := campaignStubJobs(t, "a", 4)
	trA, trB := new(fsim.Trace), new(fsim.Trace)
	jobs[0].Opts.Trace, jobs[1].Opts.Trace = trA, trA
	jobs[2].Opts.Trace, jobs[3].Opts.Trace = trB, trB
	groups := planBatches(jobs, allEligible)
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 2 {
		t.Fatalf("groups = %v, want two two-lane groups split on trace identity", groups)
	}
}

func TestPlanBatchesRespectsEligibility(t *testing.T) {
	jobs := campaignStubJobs(t, "a", 3)
	groups := planBatches(jobs, func(i int) bool { return i != 0 })
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("groups = %v, want one group of the two eligible lanes", groups)
	}
}

// TestBatchLeaderErrorFallsBackToScalar: when the batched leader cannot
// complete, every lane must be re-dispatched as an ordinary scalar cell,
// and the sweep must end with per-cell results as if batching never
// happened.
func TestBatchLeaderErrorFallsBackToScalar(t *testing.T) {
	var batchCalls, scalarCalls atomic.Int32
	swapSimRunBatch(t, func(_ context.Context, _ string, _ core.Config, _ workload.Profile, opts sim.Options, lanes []sim.BatchLane) ([]sim.BatchOutcome, error) {
		batchCalls.Add(1)
		if opts.Injector != nil {
			t.Error("leader options carry an injector; injectors ride in lanes")
		}
		return nil, errors.New("leader lost the trace")
	})
	swapSimRun(t, func(_ context.Context, _ string, _ core.Config, p workload.Profile, _ sim.Options) (sim.Result, error) {
		scalarCalls.Add(1)
		return sim.Result{Bench: p.Name, Config: "scalar"}, nil
	})

	jobs := campaignStubJobs(t, "a", 3)
	outs, err := Run(context.Background(), jobs, Options{Parallelism: 2})
	if err != nil {
		t.Fatalf("fallback sweep failed: %v", err)
	}
	if got := batchCalls.Load(); got != 1 {
		t.Errorf("batch leader dispatched %d times, want 1", got)
	}
	if got := scalarCalls.Load(); got != 3 {
		t.Errorf("scalar fallback dispatched %d cells, want 3", got)
	}
	for i, o := range outs {
		if o.Err != nil || o.Result.Config != "scalar" {
			t.Errorf("lane %d: outcome %+v, want a scalar fallback result", i, o)
		}
	}
}

// TestBatchDivergedLanesRerunScalar: convergent lanes keep the batch's
// result; diverged lanes get a scalar re-run with their injector reset
// first.
func TestBatchDivergedLanesRerunScalar(t *testing.T) {
	jobs := campaignStubJobs(t, "a", 3)
	// Consume a draw so the re-run path's Reset is observable.
	jobs[1].Opts.Injector.(*fault.Injector).FUResult(1, 0, false, 0)

	swapSimRunBatch(t, func(_ context.Context, _ string, _ core.Config, _ workload.Profile, _ sim.Options, lanes []sim.BatchLane) ([]sim.BatchOutcome, error) {
		outs := make([]sim.BatchOutcome, len(lanes))
		for i := range lanes {
			if i == 1 {
				outs[i] = sim.BatchOutcome{Diverged: true, StruckSeq: 42}
				continue
			}
			outs[i] = sim.BatchOutcome{Result: sim.Result{Config: "batch"}}
		}
		return outs, nil
	})
	var rerunInjector *fault.Injector
	swapSimRun(t, func(_ context.Context, _ string, _ core.Config, _ workload.Profile, opts sim.Options) (sim.Result, error) {
		rerunInjector = opts.Injector.(*fault.Injector)
		return sim.Result{Config: "scalar"}, nil
	})

	outs, err := Run(context.Background(), jobs, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"batch", "scalar", "batch"} {
		if outs[i].Result.Config != want {
			t.Errorf("lane %d served by %q, want %q", i, outs[i].Result.Config, want)
		}
	}
	if rerunInjector != jobs[1].Opts.Injector {
		t.Error("scalar re-run did not carry the diverged lane's own injector")
	}
	if rerunInjector.Injected != 0 {
		t.Error("diverged lane's injector was not reset before its re-run")
	}
}

// TestBatchLeaderPanicFallsBack: a panic under the batched leader is
// contained exactly like a scalar cell panic — and because batch groups
// retry as scalar cells, the sweep can still complete cleanly.
func TestBatchLeaderPanicFallsBack(t *testing.T) {
	swapSimRunBatch(t, func(_ context.Context, _ string, _ core.Config, _ workload.Profile, _ sim.Options, _ []sim.BatchLane) ([]sim.BatchOutcome, error) {
		panic("leader poisoned")
	})
	swapSimRun(t, func(_ context.Context, _ string, _ core.Config, p workload.Profile, _ sim.Options) (sim.Result, error) {
		return sim.Result{Bench: p.Name}, nil
	})
	jobs := campaignStubJobs(t, "a", 2)
	outs, err := Run(context.Background(), jobs, Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("sweep failed despite scalar fallback: %v", err)
	}
	for i, o := range outs {
		if o.Err != nil || o.Result.Bench != "a" {
			t.Errorf("lane %d: outcome %+v, want a scalar fallback result", i, o)
		}
	}
}

// TestNoBatchDisablesPlanner: with Options.NoBatch the batched entry
// point must never be consulted.
func TestNoBatchDisablesPlanner(t *testing.T) {
	var batchCalls atomic.Int32
	swapSimRunBatch(t, func(_ context.Context, _ string, _ core.Config, _ workload.Profile, _ sim.Options, _ []sim.BatchLane) ([]sim.BatchOutcome, error) {
		batchCalls.Add(1)
		return nil, errors.New("unreachable")
	})
	swapSimRun(t, func(_ context.Context, _ string, _ core.Config, _ workload.Profile, _ sim.Options) (sim.Result, error) {
		return sim.Result{}, nil
	})
	jobs := campaignStubJobs(t, "a", 3)
	if _, err := Run(context.Background(), jobs, Options{Parallelism: 1, NoBatch: true}); err != nil {
		t.Fatal(err)
	}
	if got := batchCalls.Load(); got != 0 {
		t.Errorf("NoBatch sweep consulted the batch runner %d times", got)
	}
}
