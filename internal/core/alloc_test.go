package core

import (
	"testing"
)

// steadyStateAllocsPerInstr measures the amortized heap allocations per
// committed instruction of a full run on cfg, after one warm-up run has
// populated the shared scratch pool. The construction cost (RUU ring,
// caches, predictor tables) is real but one-time; the budget below guards
// the per-instruction pipeline path — dispatch, issue, writeback, commit —
// which the uop free list and the unboxed event heap keep allocation-free.
func steadyStateAllocsPerInstr(t *testing.T, cfg Config) float64 {
	t.Helper()
	prog := loopProgram(2_000)
	run := func() uint64 {
		c, err := New(quicken(cfg), prog)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Release()
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Stats.Committed
	}
	committed := run() // warm-up: fill the scratch pool, fault in code paths
	if committed == 0 {
		t.Fatal("no instructions committed")
	}
	allocs := testing.AllocsPerRun(5, func() { run() })
	return allocs / float64(committed)
}

// TestAllocBudgetPerInstruction locks in the zero-allocation pipeline: a
// steady-state run must stay far below one allocation per committed
// instruction in every mode (the pre-free-list core spent ~6). The bound
// of 0.02 leaves room only for construction-time and incidental setup
// allocations amortized over the run, not per-instruction garbage.
func TestAllocBudgetPerInstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run is slow in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector pool dropping distorts allocation accounting")
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"SIE", BaseSIE()},
		{"DIE", BaseDIE()},
		{"DIE-IRB", BaseDIEIRB()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const budget = 0.02
			if got := steadyStateAllocsPerInstr(t, tc.cfg); got > budget {
				t.Errorf("%.4f allocs per committed instruction, budget %.4f", got, budget)
			}
		})
	}
}

// TestScratchPoolReuse verifies Release actually recycles: two sequential
// runs must reuse the pooled event heap, waiting list and uop arena, so
// the second run allocates no new uop chunks.
func TestScratchPoolReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	prog := loopProgram(500)
	c, err := New(quicken(BaseDIE()), prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	arena := len(c.freeUops)
	if arena == 0 {
		t.Fatal("run left no recycled uops in the free list")
	}
	c.Release()
	c2, err := New(quicken(BaseDIE()), prog)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Release()
	// The pool is per-P best-effort, but in a single-goroutine test the
	// scratch released above is the one Get returns.
	if len(c2.freeUops) == 0 {
		t.Error("second core did not inherit the pooled uop arena")
	}
	if err := c2.Run(); err != nil {
		t.Fatal(err)
	}
}
