// Package irb implements the Instruction Reuse Buffer at the center of the
// DIE-IRB proposal (Parashar et al., ISCA 2004): a small PC-indexed table
// of previously executed instructions — operand values and result — that
// the duplicate instruction stream of a dual-execution (DIE) core looks up
// in parallel with fetch. A duplicate whose stored operands match its
// actual operands (the "reuse test", performed in the issue window) skips
// the functional units entirely, amplifying effective ALU bandwidth without
// widening issue or adding result-forwarding buses.
//
// The buffer is direct-mapped with 1024 entries in the paper's chosen
// configuration, accessed through a 3-stage pipeline (PC index, two cycles
// of operand/result read) and provisioned with 4 read ports, 2 write ports
// and 2 read/write ports. Both the geometry and the port mix are
// configurable here, along with two conflict-miss reduction mechanisms the
// paper alludes to: higher associativity and a small fully-associative
// victim buffer.
package irb

import "fmt"

// Config sizes the reuse buffer.
type Config struct {
	Entries int // total main-array entries (power of two)
	Assoc   int // main-array associativity; 1 = direct-mapped (paper)

	// VictimEntries sizes the fully-associative victim buffer that
	// captures main-array evictions; 0 disables it. This is the
	// conflict-miss reduction mechanism evaluated in the conflict
	// ablation experiment.
	VictimEntries int

	// Port provisioning per cycle. A lookup consumes one read port (or a
	// free read/write port); an update consumes one write port (or a
	// free read/write port). Lookups that cannot get a port miss;
	// updates that cannot get a port are dropped — both are safe,
	// performance-only outcomes for a cache-like structure.
	ReadPorts  int
	WritePorts int
	RWPorts    int

	// LookupLat is the pipelined access depth in cycles from the fetch-
	// stage lookup to operands/result being available for the reuse
	// test (3 in the paper: index + two read stages).
	LookupLat int
}

// Default returns the paper's IRB configuration: 1024-entry direct-mapped,
// 4R+2W+2RW ports, 3-cycle pipelined access, no victim buffer.
func Default() Config {
	return Config{
		Entries:    1024,
		Assoc:      1,
		ReadPorts:  4,
		WritePorts: 2,
		RWPorts:    2,
		LookupLat:  3,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("irb: Entries = %d, want power of two", c.Entries)
	}
	if c.Assoc <= 0 || c.Entries%c.Assoc != 0 {
		return fmt.Errorf("irb: Assoc = %d, want > 0 and dividing Entries", c.Assoc)
	}
	sets := c.Entries / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("irb: Entries/Assoc = %d, want power of two", sets)
	}
	if c.VictimEntries < 0 {
		return fmt.Errorf("irb: VictimEntries = %d, want >= 0", c.VictimEntries)
	}
	if c.ReadPorts < 0 || c.WritePorts < 0 || c.RWPorts < 0 {
		return fmt.Errorf("irb: negative port count")
	}
	if c.ReadPorts+c.RWPorts == 0 {
		return fmt.Errorf("irb: no ports available for lookups")
	}
	if c.WritePorts+c.RWPorts == 0 {
		return fmt.Errorf("irb: no ports available for updates")
	}
	if c.LookupLat < 1 {
		return fmt.Errorf("irb: LookupLat = %d, want >= 1", c.LookupLat)
	}
	return nil
}

// Entry is the payload of one reuse-buffer line: the operand values of the
// buffered execution and its result. For branches, Result holds the target
// and Taken the direction; for memory instructions Result holds the
// effective address (the IRB serves only the address calculation — the
// memory access itself is outside the Sphere of Replication).
type Entry struct {
	Src1, Src2 uint64
	Result     uint64
	Taken      bool

	// Ver1, Ver2 are the source registers' write-version numbers at the
	// buffered execution's dispatch, used by the name-based reuse test
	// (the paper's Section 3.3 alternative): the entry is reusable while
	// no newer write to either source register has entered the pipeline.
	Ver1, Ver2 uint32
}

// MatchesVersions performs the name-based reuse test.
func (e Entry) MatchesVersions(v1, v2 uint32) bool {
	return e.Ver1 == v1 && e.Ver2 == v2
}

// Matches performs the reuse test: it reports whether the buffered operand
// values equal the instruction's actual operand values.
func (e Entry) Matches(src1, src2 uint64) bool {
	return e.Src1 == src1 && e.Src2 == src2
}

// Stats counts IRB traffic. PCHits / Lookups is the PC hit rate; a reuse
// (operand-match) hit is counted by the core, which performs the reuse
// test, as are the IPC effects.
type Stats struct {
	Lookups    uint64 // lookups attempted
	PCHits     uint64 // lookups that found a matching PC tag
	VictimHits uint64 // subset of PCHits served by the victim buffer
	ReadDenied uint64 // lookups dropped for lack of a read port

	Inserts      uint64 // updates written
	WriteDenied  uint64 // updates dropped for lack of a write port
	Evictions    uint64 // main-array entries displaced by updates
	VictimSpills uint64 // evictions captured by the victim buffer
	Invalidated  uint64 // entries scrubbed after a detected fault
}

// IRB is the instruction reuse buffer.
type IRB struct {
	cfg    Config
	sets   int
	tags   []uint64 // pc+1 per line; 0 = invalid
	data   []Entry
	lru    []uint64
	clock  uint64
	victim *victimBuf

	portCycle  uint64
	readsUsed  int
	writesUsed int
	rwUsed     int

	Stats Stats
}

// New builds an IRB.
func New(cfg Config) (*IRB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &IRB{
		cfg:  cfg,
		sets: cfg.Entries / cfg.Assoc,
		tags: make([]uint64, cfg.Entries),
		data: make([]Entry, cfg.Entries),
		lru:  make([]uint64, cfg.Entries),
	}
	if cfg.VictimEntries > 0 {
		b.victim = newVictimBuf(cfg.VictimEntries)
	}
	return b, nil
}

// Config returns the buffer's configuration.
func (b *IRB) Config() Config { return b.cfg }

// Lookup probes the buffer for pc at the given cycle, consuming a read
// port. It returns the stored entry and whether the PC hit. The entry's
// values become usable for the reuse test LookupLat cycles later; the core
// enforces that timing. A lookup that cannot obtain a port this cycle is a
// miss.
//
//lint:hotpath
func (b *IRB) Lookup(cycle, pc uint64) (Entry, bool) {
	b.Stats.Lookups++
	if !b.allocPort(cycle, false) {
		b.Stats.ReadDenied++
		return Entry{}, false
	}
	base, tag := b.setBase(pc), pc+1
	for w := 0; w < b.cfg.Assoc; w++ {
		if b.tags[base+w] == tag {
			b.clock++
			b.lru[base+w] = b.clock
			b.Stats.PCHits++
			return b.data[base+w], true
		}
	}
	if b.victim != nil {
		if e, ok := b.victim.lookup(pc); ok {
			// Promote the victim entry back into the main array,
			// spilling the displaced line in its place.
			b.Stats.PCHits++
			b.Stats.VictimHits++
			b.place(pc, e)
			return e, true
		}
	}
	return Entry{}, false
}

// Insert writes an entry for pc at the given cycle, consuming a write
// port; it reports whether the update was accepted. Updates happen at
// commit, off the critical path; dropped updates only cost future reuse
// opportunities.
func (b *IRB) Insert(cycle, pc uint64, e Entry) bool {
	if !b.allocPort(cycle, true) {
		b.Stats.WriteDenied++
		return false
	}
	b.Stats.Inserts++
	b.place(pc, e)
	return true
}

// place installs an entry, choosing the LRU way and spilling any displaced
// different-PC entry to the victim buffer.
func (b *IRB) place(pc uint64, e Entry) {
	base, tag := b.setBase(pc), pc+1
	victimIdx := base
	for w := 0; w < b.cfg.Assoc; w++ {
		i := base + w
		if b.tags[i] == tag || b.tags[i] == 0 {
			victimIdx = i
			break
		}
		if b.lru[i] < b.lru[victimIdx] {
			victimIdx = i
		}
	}
	if old := b.tags[victimIdx]; old != 0 && old != tag {
		b.Stats.Evictions++
		if b.victim != nil {
			b.victim.insert(old-1, b.data[victimIdx])
			b.Stats.VictimSpills++
		}
	}
	b.clock++
	b.tags[victimIdx] = tag
	b.data[victimIdx] = e
	b.lru[victimIdx] = b.clock
}

func (b *IRB) setBase(pc uint64) int {
	return (int(pc) & (b.sets - 1)) * b.cfg.Assoc
}

// allocPort reserves one port of the requested kind for the cycle,
// spilling into the shared read/write ports when the dedicated ones are
// exhausted.
func (b *IRB) allocPort(cycle uint64, write bool) bool {
	if cycle != b.portCycle {
		b.portCycle = cycle
		b.readsUsed, b.writesUsed, b.rwUsed = 0, 0, 0
	}
	if write {
		if b.writesUsed < b.cfg.WritePorts {
			b.writesUsed++
			return true
		}
	} else if b.readsUsed < b.cfg.ReadPorts {
		b.readsUsed++
		return true
	}
	if b.rwUsed < b.cfg.RWPorts {
		b.rwUsed++
		return true
	}
	return false
}

// Invalidate removes the entry for pc, reporting whether one existed. The
// core scrubs with it when a commit-time check traces a mismatch to a reuse
// hit: the stored entry is corrupted and would deterministically re-fire on
// every re-execution. Invalidation consumes no port — scrubbing rides the
// recovery flush, which already owns the pipeline.
func (b *IRB) Invalidate(pc uint64) bool {
	base, tag := b.setBase(pc), pc+1
	for w := 0; w < b.cfg.Assoc; w++ {
		if b.tags[base+w] == tag {
			b.tags[base+w] = 0
			b.data[base+w] = Entry{}
			b.Stats.Invalidated++
			return true
		}
	}
	if b.victim != nil && b.victim.invalidate(pc) {
		b.Stats.Invalidated++
		return true
	}
	return false
}

// Probe returns the entry for pc without consuming ports or updating any
// replacement or statistics state. Tooling and fault injection use it.
func (b *IRB) Probe(pc uint64) (Entry, bool) {
	base, tag := b.setBase(pc), pc+1
	for w := 0; w < b.cfg.Assoc; w++ {
		if b.tags[base+w] == tag {
			return b.data[base+w], true
		}
	}
	if b.victim != nil {
		if e, ok := b.victim.peek(pc); ok {
			return e, true
		}
	}
	return Entry{}, false
}

// CorruptResult flips bit (0..63) of the stored result for pc, simulating a
// soft error striking the IRB array after the entry was inserted. It
// reports whether an entry for pc existed. The fault-injection experiments
// use it to validate the paper's claim that the IRB needs no dedicated
// protection.
func (b *IRB) CorruptResult(pc uint64, bit uint) bool {
	base, tag := b.setBase(pc), pc+1
	for w := 0; w < b.cfg.Assoc; w++ {
		if b.tags[base+w] == tag {
			b.data[base+w].Result ^= 1 << (bit & 63)
			return true
		}
	}
	if b.victim != nil {
		return b.victim.corrupt(pc, bit)
	}
	return false
}

// CorruptOperand flips bit (0..63) of a stored operand field for pc (the
// first operand when first is true, otherwise the second), simulating a
// soft error in the IRB's operand array. A corrupted operand fails the
// reuse test, which the paper argues is a harmless outcome. It reports
// whether an entry for pc existed.
func (b *IRB) CorruptOperand(pc uint64, first bool, bit uint) bool {
	base, tag := b.setBase(pc), pc+1
	for w := 0; w < b.cfg.Assoc; w++ {
		if b.tags[base+w] == tag {
			if first {
				b.data[base+w].Src1 ^= 1 << (bit & 63)
			} else {
				b.data[base+w].Src2 ^= 1 << (bit & 63)
			}
			return true
		}
	}
	if b.victim != nil {
		return b.victim.corruptOperand(pc, first, bit)
	}
	return false
}

// victimBuf is a small fully-associative LRU buffer that captures entries
// evicted from the direct-mapped main array, recovering conflict misses.
type victimBuf struct {
	pcs   []uint64 // pc+1; 0 = invalid
	data  []Entry
	lru   []uint64
	clock uint64
}

func newVictimBuf(n int) *victimBuf {
	return &victimBuf{
		pcs:  make([]uint64, n),
		data: make([]Entry, n),
		lru:  make([]uint64, n),
	}
}

func (v *victimBuf) lookup(pc uint64) (Entry, bool) {
	for i, t := range v.pcs {
		if t == pc+1 {
			e := v.data[i]
			v.pcs[i] = 0 // promoted out
			return e, true
		}
	}
	return Entry{}, false
}

func (v *victimBuf) peek(pc uint64) (Entry, bool) {
	for i, t := range v.pcs {
		if t == pc+1 {
			return v.data[i], true
		}
	}
	return Entry{}, false
}

func (v *victimBuf) insert(pc uint64, e Entry) {
	victim := 0
	for i, t := range v.pcs {
		if t == pc+1 || t == 0 {
			victim = i
			break
		}
		if v.lru[i] < v.lru[victim] {
			victim = i
		}
	}
	v.clock++
	v.pcs[victim] = pc + 1
	v.data[victim] = e
	v.lru[victim] = v.clock
}

func (v *victimBuf) invalidate(pc uint64) bool {
	for i, t := range v.pcs {
		if t == pc+1 {
			v.pcs[i] = 0
			v.data[i] = Entry{}
			return true
		}
	}
	return false
}

func (v *victimBuf) corrupt(pc uint64, bit uint) bool {
	for i, t := range v.pcs {
		if t == pc+1 {
			v.data[i].Result ^= 1 << (bit & 63)
			return true
		}
	}
	return false
}

func (v *victimBuf) corruptOperand(pc uint64, first bool, bit uint) bool {
	for i, t := range v.pcs {
		if t == pc+1 {
			if first {
				v.data[i].Src1 ^= 1 << (bit & 63)
			} else {
				v.data[i].Src2 ^= 1 << (bit & 63)
			}
			return true
		}
	}
	return false
}
