package fsim

import "repro/internal/isa"

// Front is the dispatch-front execution engine of the timing core. On the
// correct path it steps the underlying Machine directly. After the core
// dispatches a mispredicted branch it calls EnterSpec, and subsequent
// wrong-path instructions execute against a copy-on-write overlay of the
// register file and memory; Squash discards the overlay when the branch
// resolves. This mirrors sim-outorder's speculative-mode execution: wrong-
// path instructions compute real (but doomed) values and therefore exercise
// functional units, issue ports and the IRB exactly like correct-path ones.
//
// Fault recovery adds a second mechanism, Rewind: the core hands back the
// records of in-flight correct-path instructions it is flushing, and
// StepCorrect replays them — in order, without touching the machine, whose
// architectural state already reflects them — before resuming normal
// stepping. Transient faults live in the timing core's duplicated
// signatures, never in architectural state, so a replayed record is exactly
// what a fault-free re-execution of that instruction would produce.
type Front struct {
	M *Machine

	spec     bool
	specRegs map[isa.Reg]uint64
	specMem  map[uint64]uint64

	// rewind[rewindPos:] holds flushed correct-path records awaiting
	// re-dispatch, oldest first.
	rewind    []Retired
	rewindPos int
}

// NewFront wraps m.
func NewFront(m *Machine) *Front {
	return &Front{
		M:        m,
		specRegs: make(map[isa.Reg]uint64),
		specMem:  make(map[uint64]uint64),
	}
}

// Spec reports whether the front is executing down a wrong path.
func (f *Front) Spec() bool { return f.spec }

// PC returns the correct-path PC (the next instruction StepCorrect would
// execute): the head of the rewind queue while a fault flush is being
// replayed, the machine's PC otherwise.
func (f *Front) PC() uint64 {
	if f.rewindPos < len(f.rewind) {
		return f.rewind[f.rewindPos].PC
	}
	return f.M.PC
}

// Halted reports whether correct-path execution has retired OpHalt. A
// machine that ran past a halt still in the rewind queue is not halted from
// the pipeline's point of view: the halt has yet to be re-dispatched.
func (f *Front) Halted() bool { return f.M.Halted && f.rewindPos >= len(f.rewind) }

// Rewinding reports how many flushed records await re-dispatch.
func (f *Front) Rewinding() int { return len(f.rewind) - f.rewindPos }

// Rewind pushes the records of flushed in-flight correct-path instructions
// (oldest first) back onto the front, so subsequent StepCorrect calls
// re-deliver them before the machine resumes stepping. Any wrong-path
// overlay is discarded: the rewind re-establishes the correct path at the
// oldest flushed instruction. The slice is copied, not retained. A second
// Rewind before the first drains prepends — its records are necessarily
// older than the remainder of the queue.
func (f *Front) Rewind(recs []Retired) {
	f.Squash()
	rest := f.rewind[f.rewindPos:]
	q := make([]Retired, 0, len(recs)+len(rest))
	q = append(append(q, recs...), rest...)
	f.rewind, f.rewindPos = q, 0
}

// throw reports a broken speculation-mode invariant. It is outlined and
// kept out of the inliner so the panic's message conversion never lands
// inside a core pipeline stage that inlined EnterSpec or a step — the
// hotalloc escape-analysis gate sees those stages allocation-free.
//
//go:noinline
func throw(msg string) {
	//nopanic:invariant the core brackets speculation with EnterSpec/Squash; reaching here is a sequencing bug
	panic(msg)
}

// StepCorrect executes the next correct-path instruction. It must not be
// called while in speculative mode.
func (f *Front) StepCorrect() (Retired, error) {
	if f.spec {
		throw("fsim: StepCorrect during speculative mode")
	}
	if f.rewindPos < len(f.rewind) {
		r := f.rewind[f.rewindPos]
		f.rewindPos++
		if f.rewindPos == len(f.rewind) {
			f.rewind, f.rewindPos = f.rewind[:0], 0
		}
		return r, nil
	}
	return f.M.Step()
}

// EnterSpec switches the front to wrong-path execution. The core calls it
// after dispatching a branch whose predicted next PC differs from the
// actual next PC; fetch then proceeds down the predicted (wrong) path.
func (f *Front) EnterSpec() {
	if f.spec {
		throw("fsim: nested EnterSpec")
	}
	f.spec = true
}

// Squash discards all wrong-path state and returns to the correct path.
// Squash on a non-speculating front is a no-op, matching the pipeline's
// recovery logic which squashes unconditionally.
func (f *Front) Squash() {
	f.spec = false
	clear(f.specRegs)
	clear(f.specMem)
}

// StepSpecAt executes the instruction at pc against the speculative
// overlay. Unlike StepCorrect the caller chooses the PC: wrong-path fetch
// follows the branch predictor, not the computed next PC.
func (f *Front) StepSpecAt(pc uint64) Retired {
	if !f.spec {
		throw("fsim: StepSpecAt outside speculative mode")
	}
	in := f.M.Prog.Fetch(pc)
	r := exec(in, pc, f.readSpec, specMemReader{f})
	if in.Op.Info().HasDest && in.Dest != isa.ZeroReg {
		f.specRegs[in.Dest] = r.Result
	}
	if in.Op.Info().IsStore {
		f.specMem[r.Addr] = r.StoreVal
	}
	return r
}

func (f *Front) readSpec(r isa.Reg) uint64 {
	if r == isa.ZeroReg {
		return 0
	}
	if v, ok := f.specRegs[r]; ok {
		return v
	}
	return f.M.Regs[r]
}

// specMemReader layers wrong-path stores over the machine's memory.
type specMemReader struct{ f *Front }

func (s specMemReader) Read(addr uint64) uint64 {
	if v, ok := s.f.specMem[addr]; ok {
		return v
	}
	return s.f.M.Mem.Read(addr)
}
