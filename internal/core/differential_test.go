package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fsim"
	"repro/internal/program"
	"repro/internal/workload"
)

// commitStream runs prog on cfg and returns the full architectural commit
// stream plus the core's stats. Each record is also cross-checked against
// the functional oracle, so a divergence between two streams pinpoints
// which side broke rather than just that they differ.
func commitStream(t *testing.T, cfg Config, prog *program.Program) ([]fsim.Retired, Stats) {
	t.Helper()
	c, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	oracle := fsim.New(prog)
	var stream []fsim.Retired
	c.OnCommit = func(rec *fsim.Retired) {
		want, oerr := oracle.Step()
		if oerr != nil {
			t.Fatalf("oracle: %v", oerr)
		}
		if rec.Seq != want.Seq || rec.PC != want.PC || rec.Result != want.Result ||
			rec.NextPC != want.NextPC || rec.Addr != want.Addr {
			t.Fatalf("commit diverged from oracle:\n got %+v\nwant %+v", rec, want)
		}
		stream = append(stream, *rec)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return stream, c.Stats
}

// alwaysMissIRB returns a DIE-IRB machine whose reuse buffer can never
// supply a hit: one entry, and a lookup latency the run length cannot
// reach, so the reuse test is never ready. The machine still pays all the
// IRB plumbing paths — lookup issue, update traffic, the reuse-test
// plumbing — making it a differential probe of the reuse path itself.
func alwaysMissIRB() Config {
	cfg := quicken(BaseDIEIRB())
	cfg.IRB.Entries = 1
	cfg.IRB.LookupLat = 1 << 30
	return cfg
}

// TestDifferentialAlwaysMissIRBMatchesDIE is the key safety property of
// the proposal: the IRB is purely a bandwidth optimization, so disabling
// every reuse opportunity must leave DIE-IRB architecturally
// indistinguishable from plain DIE — bit-identical commit streams and
// identical architected/copy commit counts. The subtests run in parallel
// so the property holds race-clean under both -parallel 1 and -parallel 8
// (the -j1/-j8 acceptance spellings).
func TestDifferentialAlwaysMissIRBMatchesDIE(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 99, 1001, 31337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			prog := randomProgram(seed)

			dieStream, dieStats := commitStream(t, quicken(BaseDIE()), prog)
			irbStream, irbStats := commitStream(t, alwaysMissIRB(), prog)

			if irbStats.IRBReuseHits != 0 {
				t.Fatalf("always-miss IRB produced %d reuse hits", irbStats.IRBReuseHits)
			}
			if dieStats.Committed != irbStats.Committed {
				t.Fatalf("committed: DIE %d, DIE-IRB %d", dieStats.Committed, irbStats.Committed)
			}
			if dieStats.CopiesCommitted != irbStats.CopiesCommitted {
				t.Fatalf("copies committed: DIE %d, DIE-IRB %d",
					dieStats.CopiesCommitted, irbStats.CopiesCommitted)
			}
			if len(dieStream) != len(irbStream) {
				t.Fatalf("stream length: DIE %d, DIE-IRB %d", len(dieStream), len(irbStream))
			}
			for i := range dieStream {
				if !reflect.DeepEqual(dieStream[i], irbStream[i]) {
					t.Fatalf("commit %d diverged:\n DIE     %+v\n DIE-IRB %+v",
						i, dieStream[i], irbStream[i])
				}
			}
		})
	}
}

// TestDifferentialRealIRBKeepsArchitecture strengthens the property in
// the other direction: with the paper's real IRB actually producing reuse
// hits, the architectural stream must STILL be bit-identical to DIE —
// reuse changes when results appear, never what they are.
func TestDifferentialRealIRBKeepsArchitecture(t *testing.T) {
	for _, seed := range []uint64{3, 21} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			prog := randomProgram(seed)
			dieStream, _ := commitStream(t, quicken(BaseDIE()), prog)
			irbStream, _ := commitStream(t, quicken(BaseDIEIRB()), prog)
			if !reflect.DeepEqual(dieStream, irbStream) {
				t.Fatal("DIE-IRB with live reuse diverged architecturally from DIE")
			}
		})
	}
}

// TestDifferentialTRBMatchesIRBAndDIE is the trace-level generalization
// of the safety property: with zero faults, DIE-TRB's architectural
// commit stream must be bit-identical to both DIE-IRB's and plain DIE's
// — a window hit skips the duplicate stream past whole blocks, but never
// changes what commits. Architected counters (instructions, copies,
// memory operations) must match too; only the reuse/timing counters may
// differ. The subtests run in parallel so the property holds race-clean
// under both -parallel 1 and -parallel 8.
func TestDifferentialTRBMatchesIRBAndDIE(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 99, 1001, 31337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			prog := randomProgram(seed)

			dieStream, dieStats := commitStream(t, quicken(BaseDIE()), prog)
			irbStream, irbStats := commitStream(t, quicken(BaseDIEIRB()), prog)
			trbStream, trbStats := commitStream(t, quicken(baseConfig(DIETRB)), prog)

			if trbStats.FaultsDetected != 0 || trbStats.FaultsSilent != 0 {
				t.Fatalf("fault-free DIE-TRB reported faults: detected %d, silent %d",
					trbStats.FaultsDetected, trbStats.FaultsSilent)
			}
			for _, ref := range []struct {
				name   string
				stream []fsim.Retired
				stats  Stats
			}{{"DIE", dieStream, dieStats}, {"DIE-IRB", irbStream, irbStats}} {
				if ref.stats.Committed != trbStats.Committed {
					t.Fatalf("committed: %s %d, DIE-TRB %d",
						ref.name, ref.stats.Committed, trbStats.Committed)
				}
				if ref.stats.CopiesCommitted != trbStats.CopiesCommitted {
					t.Fatalf("copies committed: %s %d, DIE-TRB %d",
						ref.name, ref.stats.CopiesCommitted, trbStats.CopiesCommitted)
				}
				if ref.stats.Loads != trbStats.Loads || ref.stats.Stores != trbStats.Stores {
					t.Fatalf("memory ops: %s %d/%d, DIE-TRB %d/%d",
						ref.name, ref.stats.Loads, ref.stats.Stores,
						trbStats.Loads, trbStats.Stores)
				}
				if len(ref.stream) != len(trbStream) {
					t.Fatalf("stream length: %s %d, DIE-TRB %d",
						ref.name, len(ref.stream), len(trbStream))
				}
				for i := range ref.stream {
					if !reflect.DeepEqual(ref.stream[i], trbStream[i]) {
						t.Fatalf("commit %d diverged:\n %-7s %+v\n DIE-TRB %+v",
							i, ref.name, ref.stream[i], trbStream[i])
					}
				}
			}
		})
	}
}

// TestDifferentialTRBLoopWorkloadsNonVacuous pins the trace path down on
// the loop-heavy generated workloads, where windows actually hit: the
// TRB must serve a nonzero share of duplicates (so the stream identity
// above is not trivially exercised on a hitless machine) while the
// commit stream stays bit-identical to DIE-IRB's.
func TestDifferentialTRBLoopWorkloadsNonVacuous(t *testing.T) {
	for _, name := range []string{"gzip", "bzip2", "mesa"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, ok := workload.ByName(name)
			if !ok {
				t.Fatalf("profile %q missing", name)
			}
			prog, err := workload.Generate(p.WithIters(8_000))
			if err != nil {
				t.Fatal(err)
			}
			irbStream, _ := commitStream(t, quicken(BaseDIEIRB()), prog)
			trbStream, trbStats := commitStream(t, quicken(baseConfig(DIETRB)), prog)
			if trbStats.TRBBlockHits == 0 || trbStats.TRBInstrSkipped == 0 {
				t.Fatalf("%s: TRB never served a window (hits %d, skipped %d) — differential is vacuous",
					name, trbStats.TRBBlockHits, trbStats.TRBInstrSkipped)
			}
			if !reflect.DeepEqual(irbStream, trbStream) {
				t.Fatal("DIE-TRB with live window hits diverged architecturally from DIE-IRB")
			}
		})
	}
}
