// Package workload generates the benchmark programs driven through the
// simulator. The paper evaluates 12 SPEC2000 applications on SimpleScalar;
// SPEC binaries (and an Alpha toolchain) are unavailable here, so each
// application is modeled by a deterministic synthetic program for our ISA
// whose structural knobs — instruction mix, branch behaviour, working-set
// size and access pattern, dependency chain depth, static code footprint
// and data value locality — are set per application to match its published
// character. The programs are real code executed functionally: instruction
// reuse emerges from loops re-touching data whose values repeat, it is
// never asserted. See DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/isa"
	"repro/internal/program"
)

// Profile is the parameter set of one synthetic application.
type Profile struct {
	Name string
	Seed uint64

	// Iters is the trip count of the main loop; the dynamic instruction
	// count is roughly Iters * Unroll * (body size).
	Iters int

	// InnerIters nests an inner loop of this many iterations inside each
	// outer iteration (1 = flat loop). Values loaded by the outer loop
	// are invariant across the inner iterations, so instructions rooted
	// at them repeat operands consecutively — the dominant source of
	// instruction reuse in real programs (fixed matrices, loop bounds,
	// rematerialized constants).
	InnerIters int

	// Unroll replicates the loop body with distinct PCs, controlling the
	// static code footprint and hence IRB capacity pressure.
	Unroll int

	// Per-block operation counts (per unrolled body block).
	InvariantOps int // integer ops rooted at outer-loop values
	IntOps       int // single-cycle integer ALU operations rooted at loads
	MulOps       int // integer multiplies
	DivOps       int // integer divides
	FPAdds       int // FP add/sub
	FPMuls       int // FP multiplies
	FPDivs       int // FP divide/sqrt (alternating)
	Loads        int
	Stores       int

	// CondBranches is the number of data-dependent branches per block
	// (in addition to the loop's backward branch).
	CondBranches int

	// Calls adds a call/return pair per block, exercising the RAS.
	Calls bool

	// AliasLeaf pads the code so the called leaf function's PCs alias
	// the hot loop body in a 1024-entry direct-mapped IRB, creating
	// genuine conflict misses (real programs get these from functions
	// scattered across the address space). Requires Calls.
	AliasLeaf bool

	// ArrayWords is the per-array working set (two arrays are
	// allocated); larger values push accesses out of the caches.
	ArrayWords int

	// Stride is the load stride in words; 0 selects pseudo-random
	// indexing and -1 selects pointer chasing.
	Stride int

	// ValueRange bounds the data values stored in the arrays: loaded
	// operands are drawn from [0, ValueRange), so small ranges make
	// operand tuples repeat across iterations — the source of
	// instruction reuse. Must be >= 1.
	ValueRange uint64

	// ChainDepth >= 1 links each block's integer operations into
	// dependency chains of roughly this length, throttling ILP.
	ChainDepth int
}

// Validate reports parameter errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: empty profile name")
	}
	if p.Iters <= 0 || p.Unroll <= 0 {
		return fmt.Errorf("workload %s: Iters/Unroll must be positive", p.Name)
	}
	if p.InnerIters < 1 {
		return fmt.Errorf("workload %s: InnerIters must be >= 1", p.Name)
	}
	if p.ArrayWords < 16 || p.ArrayWords&(p.ArrayWords-1) != 0 {
		return fmt.Errorf("workload %s: ArrayWords = %d, want power of two >= 16", p.Name, p.ArrayWords)
	}
	if p.ValueRange == 0 {
		return fmt.Errorf("workload %s: ValueRange must be >= 1", p.Name)
	}
	if p.ChainDepth < 1 {
		return fmt.Errorf("workload %s: ChainDepth must be >= 1", p.Name)
	}
	if p.Stride < -1 {
		return fmt.Errorf("workload %s: Stride = %d", p.Name, p.Stride)
	}
	if p.Loads < 1 {
		return fmt.Errorf("workload %s: need at least one load per block", p.Name)
	}
	return nil
}

// Register conventions used by the generator. r1..r7 hold loop state,
// r8..r15 hold loaded values, scratch and the outer-loop invariants,
// r16..r21 are persistent accumulators, r22..r27 chain temporaries, r28
// the inner loop counter; f1..f6 are the loop-invariant FP pool, f8..f11
// the FP chains, f14 the FP accumulator.
const (
	regIter   isa.Reg = 1 // remaining iterations
	regBaseA  isa.Reg = 2
	regBaseB  isa.Reg = 3
	regIdx    isa.Reg = 4 // current byte offset into the arrays
	regLCG    isa.Reg = 5 // pseudo-random state
	regMask   isa.Reg = 6 // byte-offset mask (ArrayWords*8 - 8)
	regThresh isa.Reg = 7 // branch threshold

	regLoad0 isa.Reg = 8  // most recent loaded values rotate 8..11
	regTmp   isa.Reg = 12 // scratch
	regStVal isa.Reg = 13
	regInner isa.Reg = 28 // inner loop counter
	regOut0  isa.Reg = 14 // outer-loop loaded values: invariant across
	regOut1  isa.Reg = 15 // the inner iterations

	// Persistent accumulators: evolve every iteration (non-reusable).
	regAccBase isa.Reg = 16
	numAcc             = 6

	// Chain temporaries: recomputed from loads each block (reusable).
	regChainBase isa.Reg = 22
	numChain             = 6

	// Loop-invariant FP pool and FP chain/accumulator registers.
	fpBase              = isa.FP0 + 1
	numFP               = 6
	fpChainBase isa.Reg = isa.FP0 + 8
	numFPChain          = 4
	fpAcc       isa.Reg = isa.FP0 + 14
)

// Generate builds the program for p. Generation is fully deterministic in
// p (including Seed).
func Generate(p Profile) (*program.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &gen{
		p:   p,
		rng: rand.New(rand.NewPCG(p.Seed, p.Seed^0x9e3779b97f4a7c15)),
		b:   program.NewBuilder(p.Name),
	}
	g.prologue()
	g.b.Label("outer_loop")
	g.outerPrep()
	g.innerPC = g.b.PC()
	g.b.Label("inner_loop")
	for u := 0; u < p.Unroll; u++ {
		g.block(u)
	}
	g.b.EmitImm(isa.OpAddi, regInner, regInner, -1)
	g.b.Branch(isa.OpBne, regInner, isa.ZeroReg, "inner_loop")
	g.b.EmitImm(isa.OpAddi, regIter, regIter, -1)
	g.b.Branch(isa.OpBne, regIter, isa.ZeroReg, "outer_loop")
	g.b.Emit(isa.Instr{Op: isa.OpHalt})
	g.epilogueFuncs()
	return g.b.Build()
}

type gen struct {
	p       Profile
	rng     *rand.Rand
	b       *program.Builder
	nCalls  int
	innerPC uint64 // PC of the inner loop head, for AliasLeaf padding
}

// prologue allocates and initializes the data arrays and loop registers.
func (g *gen) prologue() {
	p, b := g.p, g.b
	// Array A: operand values with the profile's entropy. For pointer
	// chasing it instead holds a random ring permutation of byte
	// offsets, so every load feeds the next load's address.
	var baseA uint64
	if p.Stride == -1 {
		perm := g.rng.Perm(p.ArrayWords)
		next := make([]uint64, p.ArrayWords)
		for i := 0; i < p.ArrayWords; i++ {
			next[perm[i]] = uint64(perm[(i+1)%p.ArrayWords]) * 8
		}
		baseA = b.Array(p.ArrayWords, func(i int) uint64 { return next[i] })
	} else {
		baseA = b.Array(p.ArrayWords, func(i int) uint64 {
			return g.rng.Uint64() % p.ValueRange
		})
	}
	// Array B: FP payload (small magnitudes, quantized by ValueRange)
	// and the store target.
	baseB := b.Array(p.ArrayWords, func(i int) uint64 {
		q := g.rng.Uint64() % p.ValueRange
		return f2u(1.0 + float64(q%251)/16.0)
	})

	b.LoadConst(regIter, int64(p.Iters))
	b.LoadConst(regBaseA, int64(baseA))
	b.LoadConst(regBaseB, int64(baseB))
	b.LoadConst(regIdx, 0)
	b.LoadConst(regLCG, int64(g.rng.Uint64()&0x7fffffff))
	b.LoadConst(regMask, int64(p.ArrayWords*8-8))
	b.LoadConst(regThresh, int64(p.ValueRange/2))
	// Seed the accumulators with distinct small constants.
	for i := 0; i < numAcc; i++ {
		b.LoadConst(regAccBase+isa.Reg(i), int64(i+1))
	}
	// Zero the load-rotation registers and the FP accumulator explicitly:
	// blocks with few loads read the unrotated slots, and the first FP fold
	// reads the accumulator, before anything has written them. The machine
	// resets registers to zero so the values are unchanged; the writes make
	// the program well-formed under liveness analysis (no read of a
	// never-written register).
	for i := 0; i < 4; i++ {
		b.LoadConst(regLoad0+isa.Reg(i), 0)
	}
	b.EmitOp(isa.OpCvtIF, fpAcc, isa.ZeroReg, 0)
	b.EmitOp(isa.OpCvtIF, fpBase, regAccBase, 0) // f1 = 1.0
	for i := 1; i < numFP; i++ {
		b.EmitOp(isa.OpCvtIF, fpBase+isa.Reg(i), regAccBase+isa.Reg(i%numAcc), 0)
	}
}

// outerPrep runs once per outer iteration: it advances the outer position,
// loads the values that stay invariant across the inner loop, and resets
// the inner trip counter.
func (g *gen) outerPrep() {
	p, b := g.p, g.b
	g.indexUpdate()
	b.EmitImm(isa.OpLoad, regOut0, regIdxPlus(b, regBaseA), 0)
	b.EmitImm(isa.OpLoad, regOut1, regIdxPlus(b, regBaseA), 8)
	b.LoadConst(regInner, int64(p.InnerIters))
}

// invariantMix emits integer chains rooted at the outer-loop values: their
// operands repeat on every inner iteration, so — like a real program's
// loop-invariant address and bound computations — they are prime
// instruction-reuse candidates.
func (g *gen) invariantMix() {
	p, b := g.p, g.b
	intOps := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSlt}
	emitted := 0
	for emitted < p.InvariantOps {
		chainReg := regChainBase + isa.Reg(g.rng.IntN(numChain))
		b.EmitOp(intOps[g.rng.IntN(len(intOps))], chainReg, regOut0, regOut1)
		emitted++
		for d := 1; d < p.ChainDepth && emitted < p.InvariantOps; d++ {
			src := regOut0
			if d%2 == 1 {
				src = regOut1
			}
			b.EmitOp(intOps[g.rng.IntN(len(intOps))], chainReg, chainReg, src)
			emitted++
		}
		if emitted < p.InvariantOps {
			// An immediate op on an invariant value: also reusable.
			b.EmitImm(isa.OpAddi, chainReg, chainReg, int32(g.rng.IntN(64)))
			emitted++
		}
	}
}

// block emits one unrolled loop body: index update, loads, compute mix,
// data-dependent branches, stores, and an optional call.
func (g *gen) block(u int) {
	p, b := g.p, g.b
	g.indexUpdate()

	// Loads rotate through regLoad0..regLoad0+3. Pointer-chase profiles
	// keep array A exclusively for the chase: a block load of A[idx]
	// would otherwise prefetch the next chase target and collapse the
	// serial miss chain that makes these applications memory-bound.
	for i := 0; i < p.Loads; i++ {
		dst := regLoad0 + isa.Reg(i%4)
		if i%2 == 0 && p.Stride != -1 {
			b.EmitImm(isa.OpLoad, dst, regIdxPlus(b, regBaseA), 0)
		} else {
			b.EmitImm(isa.OpLoad, dst, regIdxPlus(b, regBaseB), int32(8*(i/2)))
		}
	}

	g.invariantMix()
	g.intMix()
	g.fpMix()

	for i := 0; i < p.CondBranches; i++ {
		g.condBranch(u, i)
	}

	for i := 0; i < p.Stores; i++ {
		// Store an accumulator back into array B at the current index.
		src := regAccBase + isa.Reg(g.rng.IntN(numAcc))
		b.EmitOp(isa.OpAdd, regTmp, regBaseB, regIdx)
		b.Emit(isa.Instr{Op: isa.OpStore, Src1: regTmp, Src2: src, Imm: 0})
	}

	if p.Calls {
		g.nCalls++
		b.Call("leaf")
	}
}

// regIdxPlus emits base+idx into regTmp and returns regTmp, the base
// register for a subsequent load.
func regIdxPlus(b *program.Builder, base isa.Reg) isa.Reg {
	b.EmitOp(isa.OpAdd, regTmp, base, regIdx)
	return regTmp
}

// indexUpdate advances regIdx according to the access pattern.
func (g *gen) indexUpdate() {
	p, b := g.p, g.b
	switch {
	case p.Stride == -1:
		// Pointer chase: the loaded value is the next offset.
		b.EmitOp(isa.OpAdd, regTmp, regBaseA, regIdx)
		b.EmitImm(isa.OpLoad, regIdx, regTmp, 0)
	case p.Stride == 0:
		// LCG pseudo-random indexing.
		b.LoadConst(regTmp, 1664525)
		b.EmitOp(isa.OpMul, regLCG, regLCG, regTmp)
		b.EmitImm(isa.OpAddi, regLCG, regLCG, 1013904223)
		b.EmitOp(isa.OpAnd, regIdx, regLCG, regMask)
	default:
		b.EmitImm(isa.OpAddi, regIdx, regIdx, int32(p.Stride*8))
		b.EmitOp(isa.OpAnd, regIdx, regIdx, regMask)
	}
}

// intMix emits the block's integer operations as ChainDepth-long dependent
// chains rooted at the loaded values — like real code, the computation is
// a function of its inputs, so the same loaded operands recompute the same
// chain and instruction reuse tracks the data's value locality. Each chain
// ends with one fold into a persistent accumulator, which evolves every
// iteration and is therefore the realistic non-reusable fraction.
func (g *gen) intMix() {
	p, b := g.p, g.b
	intOps := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpSlt}
	emitted := 0
	for emitted < p.IntOps {
		chainReg := regChainBase + isa.Reg(g.rng.IntN(numChain))
		// Root: a pure function of two loaded values.
		la := regLoad0 + isa.Reg(g.rng.IntN(4))
		lb := regLoad0 + isa.Reg(g.rng.IntN(4))
		b.EmitOp(intOps[g.rng.IntN(len(intOps))], chainReg, la, lb)
		emitted++
		for d := 1; d < p.ChainDepth && emitted < p.IntOps; d++ {
			// Each link folds one of the chain's root loads, so
			// the whole chain is a pure function of (la, lb) and
			// repeats exactly when that pair of values does.
			op := intOps[g.rng.IntN(len(intOps))]
			src := la
			if d%2 == 1 {
				src = lb
			}
			b.EmitOp(op, chainReg, chainReg, src)
			emitted++
		}
		if emitted < p.IntOps {
			// The accumulator fold: never reusable.
			acc := regAccBase + isa.Reg(g.rng.IntN(numAcc))
			b.EmitOp(isa.OpAdd, acc, acc, chainReg)
			emitted++
		}
	}
	for i := 0; i < p.MulOps; i++ {
		dst := regChainBase + isa.Reg(g.rng.IntN(numChain))
		b.EmitOp(isa.OpMul, dst, regLoad0+isa.Reg(i%4), regLoad0+isa.Reg((i+1)%4))
	}
	for i := 0; i < p.DivOps; i++ {
		dst := regChainBase + isa.Reg(g.rng.IntN(numChain))
		// Divisor is a loaded value + 3: never zero, data-dependent.
		b.EmitImm(isa.OpAddi, regTmp, regLoad0+isa.Reg(i%4), 3)
		b.EmitOp(isa.OpDivu, dst, regLoad0+isa.Reg((i+2)%4), regTmp)
	}
}

// fpMix emits the block's floating point operations, likewise rooted at
// the loaded data: values are converted into the FP chain registers and
// combined with the loop-invariant FP pool, with one accumulator fold.
func (g *gen) fpMix() {
	p, b := g.p, g.b
	nFPOps := p.FPAdds + p.FPMuls + p.FPDivs
	if nFPOps == 0 {
		return
	}
	// Root half the FP chains in the outer-loop values (invariant
	// across the inner loop, hence reusable) and half in this
	// iteration's data.
	b.EmitOp(isa.OpCvtIF, fpChainBase, regOut0, 0)
	b.EmitOp(isa.OpCvtIF, fpChainBase+1, regOut1, 0)
	b.EmitOp(isa.OpCvtIF, fpChainBase+2, regLoad0, 0)
	b.EmitOp(isa.OpCvtIF, fpChainBase+3, regLoad0+1, 0)
	// Every op writes back to its own chain register (d == s), so the
	// invariant chains (0,1) stay pure functions of the outer values and
	// the variant chains (2,3) of this iteration's loads.
	for i := 0; i < p.FPAdds; i++ {
		s := g.fpSource(i)
		op := isa.OpFAdd
		if i%3 == 1 {
			op = isa.OpFSub
		}
		b.EmitOp(op, s, s, fpBase+isa.Reg(g.rng.IntN(numFP)))
	}
	for i := 0; i < p.FPMuls; i++ {
		s := g.fpSource(i)
		b.EmitOp(isa.OpFMul, s, s, fpBase+isa.Reg(g.rng.IntN(numFP)))
	}
	for i := 0; i < p.FPDivs; i++ {
		s := g.fpSource(i)
		if i%2 == 0 {
			b.EmitOp(isa.OpFDiv, s, s, fpBase+isa.Reg(g.rng.IntN(numFP)))
		} else {
			b.EmitOp(isa.OpFAbs, regTmpFP, s, 0)
			b.EmitOp(isa.OpFSqrt, s, regTmpFP, 0)
		}
	}
	// One accumulator fold per block: the non-reusable tail.
	b.EmitOp(isa.OpFAdd, fpAcc, fpAcc, fpChainBase)
}

// fpSource rotates through the FP chain registers, alternating between the
// invariant (0,1) and variant (2,3) chains.
func (g *gen) fpSource(i int) isa.Reg {
	return fpChainBase + isa.Reg(i%numFPChain)
}

// regTmpFP is the FP scratch register.
const regTmpFP = isa.FP0 + 15

// condBranch emits one data-dependent branch over a short then-block. Its
// predictability is governed by the loaded values' distribution against
// the fixed threshold.
func (g *gen) condBranch(u, i int) {
	b := g.b
	label := fmt.Sprintf("skip_%d_%d", u, i)
	src := regLoad0 + isa.Reg(g.rng.IntN(4))
	b.Branch(isa.OpBlt, src, regThresh, label)
	acc := regAccBase + isa.Reg(g.rng.IntN(numAcc))
	b.EmitOp(isa.OpAdd, acc, acc, src)
	b.EmitImm(isa.OpAddi, acc, acc, 1)
	b.Label(label)
}

// epilogueFuncs emits the leaf function used by Calls profiles. With
// AliasLeaf it first pads the (never-executed) gap after the halt so the
// leaf's PCs land exactly one IRB-set stride past the hot inner loop,
// making the per-block calls evict loop-body entries on every iteration.
func (g *gen) epilogueFuncs() {
	if g.nCalls == 0 {
		return
	}
	b := g.b
	if g.p.AliasLeaf {
		const irbSets = 1024
		target := g.innerPC + 16
		for b.PC()%irbSets != target%irbSets {
			b.Emit(isa.Instr{Op: isa.OpNop})
		}
	}
	b.Label("leaf")
	// The leaf recomputes per-outer-iteration state from the invariant
	// outer values (reusable work, like a real helper re-deriving
	// bounds), then folds in the caller's latest load.
	b.EmitOp(isa.OpAdd, regStVal, regOut0, regOut1)
	b.EmitOp(isa.OpXor, regTmp, regOut0, regOut1)
	b.EmitOp(isa.OpOr, regStVal, regStVal, regTmp)
	b.EmitOp(isa.OpSlt, regTmp, regOut0, regOut1)
	b.EmitImm(isa.OpAddi, regStVal, regStVal, 5)
	b.EmitOp(isa.OpAdd, regStVal, regStVal, regLoad0)
	b.Ret()
}

func f2u(f float64) uint64 { return math.Float64bits(f) }
