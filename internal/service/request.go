package service

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/sim"
)

// RunRequest is the body of POST /v1/runs: a (configs × benchmarks) grid
// of simulation cells sharing one set of run options.
type RunRequest struct {
	// Configs names the machine configurations to run; see ConfigNames
	// (GET /v1/configs) for the accepted values.
	Configs []string `json:"configs"`
	// Benchmarks restricts the workload set (empty = all 12 SPEC2000
	// profiles).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Insns is the per-cell architected instruction budget (0 = the
	// server's default).
	Insns uint64 `json:"insns,omitempty"`
	// FastForward skips this many instructions before measurement.
	FastForward uint64 `json:"fast_forward,omitempty"`
	// Seed perturbs the workload generators (see sim.Options.Seed).
	Seed uint64 `json:"seed,omitempty"`
	// Verify cross-checks every committed instruction against the
	// functional oracle.
	Verify bool `json:"verify,omitempty"`
	// Fault attaches a fault-injection campaign to every cell.
	Fault *FaultSpec `json:"fault,omitempty"`
}

// FaultSpec is the serializable fault campaign of a run request; it maps
// onto fault.Config, one fresh injector per cell.
type FaultSpec struct {
	Site      string  `json:"site"` // fu, forward, irb-result, irb-operand
	Rate      float64 `json:"rate"`
	Seed      uint64  `json:"seed,omitempty"`
	MaxFaults uint64  `json:"max_faults,omitempty"`
}

// CellResult is one grid cell's outcome in a run response.
type CellResult struct {
	Bench    string      `json:"bench"`
	Config   string      `json:"config"`
	CacheHit bool        `json:"cache_hit"`
	Result   *sim.Result `json:"result,omitempty"`
	Error    string      `json:"error,omitempty"`
}

// Run is the resource returned by POST /v1/runs and GET /v1/runs/{id}.
type Run struct {
	ID        string       `json:"id"`
	Status    string       `json:"status"` // queued, running, done, failed, cancelled
	Created   time.Time    `json:"created"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
	Cells     int          `json:"cells"`
	CacheHits int          `json:"cache_hits"`
	Error     string       `json:"error,omitempty"`
	Results   []CellResult `json:"results,omitempty"`
}

// Run statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// configRegistry maps every named configuration the simulation layer
// defines — the experiment families of internal/sim — to its core.Config,
// so requests name machines the same way the paper's tables do.
func configRegistry() map[string]core.Config {
	m := make(map[string]core.Config)
	add := func(ncs []sim.NamedConfig) {
		for _, nc := range ncs {
			m[nc.Name] = nc.Cfg
		}
	}
	add(sim.Fig2Configs())
	add(sim.HeadlineConfigs())
	add(sim.IRBSizeConfigs([]int{128, 256, 512, 1024, 2048, 4096}))
	add(sim.ConflictConfigs())
	add(sim.PortConfigs([]int{1, 2, 4, 8}))
	add(sim.SchedulerConfigs())
	add(sim.ClusterConfigs())
	add(sim.ReuseSourceConfigs())
	return m
}

// ConfigNames returns the accepted configuration names, sorted.
func ConfigNames() []string {
	reg := configRegistry()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ConfigByName resolves a named machine configuration.
func ConfigByName(name string) (core.Config, bool) {
	cfg, ok := configRegistry()[name]
	return cfg, ok
}

// buildJobs validates a request and expands it into the runner job grid,
// applying the server's defaults. Each cell with a fault spec gets its own
// freshly built injector, keeping cells independent (and cacheable — the
// injector's fingerprint is its spec, which is only valid for fresh
// injectors).
func (s *Server) buildJobs(req *RunRequest) ([]runner.Job, error) {
	if len(req.Configs) == 0 {
		return nil, fmt.Errorf("configs: at least one configuration name required (see GET /v1/configs)")
	}
	if req.Fault != nil {
		spec := fault.Config{
			Site:      fault.Site(req.Fault.Site),
			Rate:      req.Fault.Rate,
			Seed:      req.Fault.Seed,
			MaxFaults: req.Fault.MaxFaults,
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
	}
	// Benchmark selection reuses the CLI's parser, so the HTTP API and
	// the command-line tools accept exactly the same names.
	profiles, err := cliutil.Profiles(strings.Join(req.Benchmarks, ","))
	if err != nil {
		return nil, err
	}
	insns := req.Insns
	if insns == 0 {
		insns = s.cfg.DefaultInsns
	}
	var jobs []runner.Job
	for _, p := range profiles {
		for _, name := range req.Configs {
			cfg, ok := ConfigByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown config %q (see GET /v1/configs)", name)
			}
			opts := sim.Options{
				Insns:       insns,
				Verify:      req.Verify || s.cfg.Verify,
				FastForward: req.FastForward,
				Seed:        req.Seed,
			}
			if req.Fault != nil {
				inj, ferr := fault.New(fault.Config{
					Site:      fault.Site(req.Fault.Site),
					Rate:      req.Fault.Rate,
					Seed:      req.Fault.Seed,
					MaxFaults: req.Fault.MaxFaults,
				})
				if ferr != nil {
					return nil, ferr
				}
				opts.Injector = inj
			}
			jobs = append(jobs, runner.Job{Name: name, Config: cfg, Profile: p, Opts: opts})
		}
	}
	return jobs, nil
}
