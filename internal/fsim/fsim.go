// Package fsim implements the functional (architectural) simulator: an
// in-order interpreter for the ISA defined in internal/isa. It plays two
// roles in the repository:
//
//   - It is the value engine of the timing core. Like SimpleScalar's
//     sim-outorder, the out-of-order core executes instructions functionally
//     at dispatch (in fetch order) and plays out timing separately; fsim
//     provides that dispatch-front execution, including a copy-on-write
//     overlay (Front) for wrong-path instructions beyond a mispredicted
//     branch.
//
//   - It is the golden model. An independent Machine stepped at commit
//     verifies that the timing core retires exactly the correct-path
//     instruction stream with correct values, so timing bugs surface as
//     test failures instead of silently skewing IPC.
package fsim

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
)

// Retired describes one dynamically executed instruction with all values
// resolved. The timing core carries Retired records through the pipeline:
// operand values feed the IRB reuse test, results feed the commit-time
// check-&-retire comparison of DIE, and NextPC feeds branch resolution.
type Retired struct {
	Seq   uint64 // 1-based dynamic instruction number (0 for wrong-path)
	PC    uint64
	Instr isa.Instr

	Src1, Src2 uint64 // operand values read (bit patterns for FP)
	Result     uint64 // value written to Dest (loads: loaded value)
	Addr       uint64 // effective address for loads/stores
	StoreVal   uint64 // value written to memory for stores

	Taken  bool   // conditional branch outcome
	NextPC uint64 // PC of the next instruction in program order
	Halt   bool   // instruction was OpHalt
}

// Machine is the architectural state of one program execution.
type Machine struct {
	Prog *program.Program
	Regs [isa.NumRegs]uint64
	Mem  *Memory
	PC   uint64

	Halted bool
	Count  uint64 // retired instruction count

	// replay, when non-nil, feeds Step from a pre-captured Trace (see
	// NewReplay) instead of interpreting; replayPos is the next record.
	replay    *Trace
	replayPos int
}

// New creates a machine loaded with prog: data segment installed, PC at the
// entry point, registers cleared.
func New(prog *program.Program) *Machine {
	m := &Machine{Prog: prog, Mem: NewMemory(), PC: prog.Entry}
	// Install the data segment in address order. Memory contents are
	// insensitive to install order today (one write per address), but the
	// sparse page directory's allocation pattern is not, and iterating the
	// map directly would bake Go's randomized order into anything that
	// ever observes it.
	addrs := make([]uint64, 0, len(prog.Data))
	for addr := range prog.Data {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		m.Mem.Write(addr, prog.Data[addr])
	}
	return m
}

// Step executes the instruction at the current PC and returns its record.
// Calling Step on a halted machine returns an error.
func (m *Machine) Step() (Retired, error) {
	if m.Halted {
		return Retired{}, fmt.Errorf("fsim: step on halted machine %q at pc=%d", m.Prog.Name, m.PC)
	}
	if t := m.replay; t != nil {
		if m.replayPos < len(t.recs) {
			r := t.recs[m.replayPos]
			m.replayPos++
			m.Count++
			applyRegs(&m.Regs, r.Instr, r.Result)
			if r.Instr.Op.Info().IsStore {
				m.Mem.Write(r.Addr, r.StoreVal)
			}
			m.PC = r.NextPC
			if r.Halt {
				m.Halted = true
			}
			return r, nil
		}
		// Trace exhausted: the architectural state is exactly the
		// capture machine's at the same point, so interpretation
		// continues seamlessly.
		m.replay = nil
	}
	in := m.Prog.Fetch(m.PC)
	r := exec(in, m.PC, regReader(&m.Regs), m.Mem)
	m.Count++
	r.Seq = m.Count
	applyRegs(&m.Regs, in, r.Result)
	if in.Op.Info().IsStore {
		m.Mem.Write(r.Addr, r.StoreVal)
	}
	m.PC = r.NextPC
	if r.Halt {
		m.Halted = true
	}
	return r, nil
}

// Run executes until the machine halts or maxInstrs instructions have
// retired, returning the number retired.
func (m *Machine) Run(maxInstrs uint64) (uint64, error) {
	start := m.Count
	for !m.Halted && m.Count-start < maxInstrs {
		if _, err := m.Step(); err != nil {
			return m.Count - start, err
		}
	}
	return m.Count - start, nil
}

// regReader adapts a register array to the operand-reading function used by
// exec, enforcing the hardwired zero register.
func regReader(regs *[isa.NumRegs]uint64) func(isa.Reg) uint64 {
	return func(r isa.Reg) uint64 {
		if r == isa.ZeroReg {
			return 0
		}
		return regs[r]
	}
}

func applyRegs(regs *[isa.NumRegs]uint64, in isa.Instr, result uint64) {
	if in.Op.Info().HasDest && in.Dest != isa.ZeroReg {
		regs[in.Dest] = result
	}
}

// exec evaluates one instruction at pc with operand values supplied by
// read and memory reads served by mem. It performs no state updates; the
// caller applies register, memory and PC effects from the returned record.
func exec(in isa.Instr, pc uint64, read func(isa.Reg) uint64, mem memReader) Retired {
	oi := in.Op.Info()
	r := Retired{PC: pc, Instr: in, NextPC: pc + 1}
	if oi.UsesSrc1 {
		r.Src1 = read(in.Src1)
	}
	if oi.UsesSrc2 {
		r.Src2 = read(in.Src2)
	}
	switch {
	case oi.IsLoad:
		r.Addr = isa.EffAddr(r.Src1, in.Imm)
		r.Result = mem.Read(r.Addr)
	case oi.IsStore:
		r.Addr = isa.EffAddr(r.Src1, in.Imm)
		r.StoreVal = r.Src2
	case oi.IsBranch:
		r.Taken = isa.EvalBranch(in.Op, r.Src1, r.Src2)
		if r.Taken {
			r.NextPC = isa.CtrlTarget(in.Op, in.Imm, r.Src1, pc)
		}
	case oi.IsJump:
		r.NextPC = isa.CtrlTarget(in.Op, in.Imm, r.Src1, pc)
		if oi.HasDest {
			r.Result = isa.Exec(in.Op, r.Src1, r.Src2, in.Imm, pc)
		}
	case in.Op == isa.OpHalt:
		r.Halt = true
	case oi.HasDest:
		r.Result = isa.Exec(in.Op, r.Src1, r.Src2, in.Imm, pc)
	}
	return r
}

type memReader interface {
	Read(addr uint64) uint64
}
