package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/chaostest"
	"repro/internal/runner"
	"repro/internal/service/api"
	"repro/internal/sim"
)

// serveCoordinator exposes a coordinator's lease protocol over HTTP the
// way the service layer does, so worker loops can be tested end to end.
func serveCoordinator(t *testing.T, c *Coordinator) *httptest.Server {
	t.Helper()
	handle := func(serve func(body []byte) (any, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var body []byte
			if r.Body != nil {
				b := make([]byte, 0, 1024)
				buf := make([]byte, 1024)
				for {
					n, err := r.Body.Read(buf)
					b = append(b, buf[:n]...)
					if err != nil {
						break
					}
				}
				body = b
			}
			resp, err := serve(body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(resp)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/lease", handle(func(body []byte) (any, error) {
		var req api.LeaseRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return c.Lease(req), nil
	}))
	mux.HandleFunc("/v1/heartbeat", handle(func(body []byte) (any, error) {
		var req api.HeartbeatRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return c.Heartbeat(req), nil
	}))
	mux.HandleFunc("/v1/complete", handle(func(body []byte) (any, error) {
		var req api.CompleteRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return c.Complete(req), nil
	}))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// simExec is a worker executor running the real deterministic simulation.
func simExec(ctx context.Context, jobs []runner.Job) []runner.Outcome {
	outs := make([]runner.Outcome, len(jobs))
	for i, j := range jobs {
		outs[i].Result, outs[i].Err = sim.RunContext(ctx, j.Name, j.Config, j.Profile, j.Opts)
	}
	return outs
}

// TestWorkerFleetChaosE2E is the fabric's integration spine: a real grid
// runs through runner.Run's dispatch seam against a coordinator over
// HTTP, with one worker SIGKILL'd mid-batch (its context cut) and the
// survivor talking through a flaky chaos transport that drops requests,
// delays them and cuts response bodies. Every cell must still complete,
// bit-identical to the direct in-process run; the killed worker's lease
// must expire and retry (visible in the metrics); and no retry may
// diverge.
func TestWorkerFleetChaosE2E(t *testing.T) {
	jobs := []runner.Job{
		testJob(t, "cell-a", 3000),
		testJob(t, "cell-b", 4000),
		testJob(t, "cell-c", 5000),
	}
	want := make([]sim.Result, len(jobs))
	for i, j := range jobs {
		var err error
		want[i], err = sim.RunContext(context.Background(), j.Name, j.Config, j.Profile, j.Opts)
		if err != nil {
			t.Fatalf("direct run of %s: %v", j.Name, err)
		}
	}

	c := NewCoordinator(CoordinatorConfig{
		LeaseTTL:       400 * time.Millisecond,
		HeartbeatEvery: 100 * time.Millisecond,
		SweepEvery:     25 * time.Millisecond,
		LeaseBatch:     2,
		Backoff:        backoff.Policy{Base: 20 * time.Millisecond, Cap: 100 * time.Millisecond, Factor: 2, Jitter: 0.5},
		Seed:           1,
		Local: func(context.Context, runner.Job) (sim.Result, error) {
			return sim.Result{}, errors.New("cell degraded to local — fleet should have completed it")
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	srv := serveCoordinator(t, c)

	// Victim worker: leases one cell, then hangs until killed.
	victimCtx, kill := context.WithCancel(ctx)
	defer kill()
	victimHolds := make(chan struct{})
	victim := &Worker{
		Client:   &Client{BaseURL: srv.URL},
		ID:       "victim",
		MaxCells: 1,
		Exec: func(ctx context.Context, jobs []runner.Job) []runner.Outcome {
			close(victimHolds)
			<-ctx.Done() // killed mid-batch; never completes
			return make([]runner.Outcome, len(jobs))
		},
	}
	go victim.Run(victimCtx)

	// Give the victim time to register, then launch the grid through the
	// runner's dispatch seam.
	waitFor(t, func() bool { return c.Metrics().WorkersLive >= 1 })
	outsCh := make(chan []runner.Outcome, 1)
	errCh := make(chan error, 1)
	go func() {
		outs, err := runner.Run(ctx, jobs, runner.Options{
			Parallelism: len(jobs),
			Execute:     c.Execute,
		})
		outsCh <- outs
		errCh <- err
	}()

	// Once the victim holds a cell, kill it and start the survivor behind
	// a flaky transport.
	<-victimHolds
	kill()
	chaos := chaostest.New(7, http.DefaultTransport)
	chaos.DropProb = 0.2
	chaos.CutBodyProb = 0.1
	chaos.MaxLatency = 5 * time.Millisecond
	survivor := &Worker{
		Client:  &Client{BaseURL: srv.URL, HTTPClient: &http.Client{Transport: chaos}},
		ID:      "survivor",
		Exec:    simExec,
		Backoff: backoff.Policy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond, Factor: 2, Jitter: 0.5},
		Seed:    11,
	}
	go survivor.Run(ctx)

	var outs []runner.Outcome
	select {
	case outs = <-outsCh:
	case <-time.After(60 * time.Second):
		t.Fatalf("grid did not complete; metrics %+v", c.Metrics())
	}
	if err := <-errCh; err != nil {
		t.Fatalf("grid error: %v", err)
	}
	for i := range jobs {
		if outs[i].Err != nil {
			t.Fatalf("cell %s failed: %v", jobs[i].Name, outs[i].Err)
		}
		if !reflect.DeepEqual(outs[i].Result, want[i]) {
			t.Errorf("cell %s: fabric result differs from direct run", jobs[i].Name)
		}
	}

	m := c.Metrics()
	if m.LeaseExpiries == 0 || m.CellsRetried == 0 {
		t.Errorf("killed worker left no expiry/retry trace: %+v", m)
	}
	if m.RetryMismatches != 0 {
		t.Errorf("retried cells were not bit-identical: %+v", m)
	}
	if m.CellsLocal != 0 {
		t.Errorf("%d cells degraded to local under a live fleet", m.CellsLocal)
	}
	drops, cuts, delays, sent := chaos.Counts()
	t.Logf("chaos faults injected: %d drops, %d cuts, %d delays over %d requests; metrics %+v",
		drops, cuts, delays, sent, m)
}

// TestClientHonorsRetryAfter: a 429 with an explicit Retry-After becomes
// a RetryAfterError, and retryDelay prefers it over the backoff schedule.
func TestClientHonorsRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	_, err := cl.Lease(context.Background(), api.LeaseRequest{Worker: "w"})
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("429 surfaced as %v, want *RetryAfterError", err)
	}
	if ra.Delay != 3*time.Second {
		t.Errorf("Retry-After parsed as %v, want 3s", ra.Delay)
	}
	if d := retryDelay(err, backoff.Default(), 0, nil); d != 3*time.Second {
		t.Errorf("retryDelay ignored the server's Retry-After: %v", d)
	}
}

// TestClientStatusError: a plain failure carries the status and body.
func TestClientStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusBadRequest)
	}))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	_, err := cl.Heartbeat(context.Background(), api.HeartbeatRequest{Worker: "w"})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("400 surfaced as %v, want *StatusError", err)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
