package runner_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testJobs builds a small (benchmark × headline-config) grid.
func testJobs(t *testing.T, benches []string, insns uint64) []runner.Job {
	t.Helper()
	var jobs []runner.Job
	for _, name := range benches {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		for _, nc := range sim.HeadlineConfigs() {
			jobs = append(jobs, runner.Job{
				Name: nc.Name, Config: nc.Cfg, Profile: p,
				Opts: sim.Options{Insns: insns},
			})
		}
	}
	return jobs
}

// TestSerialParallelEquivalence is the parallel-correctness anchor: the
// same grid run by one worker and by eight must produce identical Result
// values cell by cell, in the same (input) order.
func TestSerialParallelEquivalence(t *testing.T) {
	jobs := testJobs(t, []string{"bzip2", "ammp"}, 10_000)
	serial, err := runner.Run(context.Background(), jobs, runner.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.Run(context.Background(), jobs, runner.Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("outcome counts %d/%d, want %d", len(serial), len(parallel), len(jobs))
	}
	for i := range jobs {
		if parallel[i].Result.Bench != jobs[i].Profile.Name ||
			parallel[i].Result.Config != jobs[i].Name {
			t.Errorf("cell %d out of order: got %s/%s, want %s/%s", i,
				parallel[i].Result.Bench, parallel[i].Result.Config,
				jobs[i].Profile.Name, jobs[i].Name)
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Errorf("cell %d (%s on %s): serial and parallel results differ",
				i, jobs[i].Profile.Name, jobs[i].Name)
		}
	}
}

// TestErrorIsolation poisons one cell's configuration: that cell must
// fail, every other cell must still run to completion, and the batch
// error must name the failed cell.
func TestErrorIsolation(t *testing.T) {
	jobs := testJobs(t, []string{"gzip"}, 8_000)
	poisoned := core.BaseSIE()
	poisoned.RUUSize = 0 // fails core config validation
	bad := runner.Job{Name: "poisoned", Config: poisoned, Profile: jobs[0].Profile,
		Opts: sim.Options{Insns: 8_000}}
	jobs = append(jobs[:2:2], append([]runner.Job{bad}, jobs[2:]...)...)

	outs, err := runner.Run(context.Background(), jobs, runner.Options{Parallelism: 4})
	if err == nil {
		t.Fatal("poisoned cell did not surface in the batch error")
	}
	if !strings.Contains(err.Error(), "poisoned") {
		t.Errorf("batch error does not name the failed cell: %v", err)
	}
	for i, o := range outs {
		if jobs[i].Name == "poisoned" {
			if o.Err == nil {
				t.Error("poisoned cell reported no error")
			}
			continue
		}
		if o.Err != nil {
			t.Errorf("healthy cell %s on %s failed: %v", jobs[i].Profile.Name, jobs[i].Name, o.Err)
		}
		if o.Result.Core.Committed != 8_000 {
			t.Errorf("healthy cell %s on %s committed %d, want 8000",
				jobs[i].Profile.Name, jobs[i].Name, o.Result.Core.Committed)
		}
	}
}

// TestCancellationPartialResults cancels the sweep from the progress
// callback: completed cells keep their results, the rest carry the
// context's error, and Run reports the cancellation.
func TestCancellationPartialResults(t *testing.T) {
	p, _ := workload.ByName("gzip")
	var jobs []runner.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, runner.Job{
			Name: "DIE", Config: core.BaseDIE(), Profile: p,
			Opts: sim.Options{Insns: 15_000},
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	outs, err := runner.Run(ctx, jobs, runner.Options{
		Parallelism: 2,
		Progress: func(pr runner.Progress) {
			if pr.Done == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	var done, cancelled int
	for _, o := range outs {
		switch {
		case o.Err == nil:
			done++
			if o.Result.Core.Committed != 15_000 {
				t.Errorf("completed cell committed %d", o.Result.Core.Committed)
			}
		case errors.Is(o.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("unexpected cell error: %v", o.Err)
		}
	}
	if done < 2 {
		t.Errorf("only %d cells completed before cancellation, want >= 2", done)
	}
	if cancelled == 0 {
		t.Error("no cell recorded the cancellation")
	}
}

// TestProgressReporting checks the per-cell progress stream: a strictly
// increasing Done count up to Total, labelled cells, and a zero ETA on
// the final report.
func TestProgressReporting(t *testing.T) {
	jobs := testJobs(t, []string{"gzip"}, 5_000)
	var seen []runner.Progress
	_, err := runner.Run(context.Background(), jobs, runner.Options{
		Parallelism: 1,
		Progress:    func(p runner.Progress) { seen = append(seen, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("got %d progress reports, want %d", len(seen), len(jobs))
	}
	for i, p := range seen {
		if p.Done != i+1 || p.Total != len(jobs) {
			t.Errorf("report %d: done %d/%d, want %d/%d", i, p.Done, p.Total, i+1, len(jobs))
		}
		if p.Bench == "" || p.Config == "" {
			t.Errorf("report %d: unlabelled cell %q/%q", i, p.Bench, p.Config)
		}
	}
	if last := seen[len(seen)-1]; last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}
}

// TestCostHeuristic pins the ranking the LPT dispatch relies on: heavier
// modes, wider machines and verified runs must cost more, and a zero
// instruction budget must price as the default budget.
func TestCostHeuristic(t *testing.T) {
	p, _ := workload.ByName("gzip")
	mk := func(cfg core.Config, opts sim.Options) runner.Job {
		return runner.Job{Name: "x", Config: cfg, Profile: p, Opts: opts}
	}
	o := sim.Options{Insns: 100_000}
	sie := mk(core.BaseSIE(), o)
	die := mk(core.BaseDIE(), o)
	irb := mk(core.BaseDIEIRB(), o)
	wide := mk(core.BaseDIEIRB().WithDoubledWidths().WithDoubledRUU(), o)
	if !(sie.Cost() < die.Cost() && die.Cost() < irb.Cost() && irb.Cost() < wide.Cost()) {
		t.Errorf("cost ordering broken: SIE %.0f, DIE %.0f, DIE-IRB %.0f, wide %.0f",
			sie.Cost(), die.Cost(), irb.Cost(), wide.Cost())
	}
	verified := mk(core.BaseSIE(), sim.Options{Insns: 100_000, Verify: true})
	if verified.Cost() <= sie.Cost() {
		t.Error("verification did not raise the cost estimate")
	}
	defaulted := mk(core.BaseSIE(), sim.Options{})
	explicit := mk(core.BaseSIE(), sim.Options{Insns: sim.DefaultInsns})
	if defaulted.Cost() != explicit.Cost() {
		t.Errorf("zero budget cost %.0f != default budget cost %.0f",
			defaulted.Cost(), explicit.Cost())
	}
}

// TestEmptyBatch keeps the degenerate case boring.
func TestEmptyBatch(t *testing.T) {
	outs, err := runner.Run(context.Background(), nil, runner.Options{})
	if err != nil || len(outs) != 0 {
		t.Fatalf("empty batch: %v, %d outcomes", err, len(outs))
	}
}

// TestPreCancelledContext runs nothing and reports every cell skipped.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := testJobs(t, []string{"gzip"}, 5_000)
	outs, err := runner.Run(ctx, jobs, runner.Options{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, o := range outs {
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("cell %d: err = %v, want context.Canceled", i, o.Err)
		}
	}
}

// TestAttachTracesSharesPerWorkload: cells running the same workload get
// the same trace object; cells with different workloads (or measurement
// windows) get distinct ones; pre-seeded traces survive.
func TestAttachTracesSharesPerWorkload(t *testing.T) {
	jobs := testJobs(t, []string{"bzip2", "ammp"}, 8_000)
	// Give one cell a distinct fast-forward: same profile, different
	// executed window, so it must not share bzip2's common trace.
	jobs[1].Opts.FastForward = 2_000
	if err := runner.AttachTraces(jobs); err != nil {
		t.Fatal(err)
	}
	byBench := map[string]*fsim.Trace{}
	for i, j := range jobs {
		if j.Opts.Trace == nil {
			t.Fatalf("job %d (%s/%s) got no trace", i, j.Profile.Name, j.Name)
		}
		if i == 1 {
			continue
		}
		if prev, ok := byBench[j.Profile.Name]; ok && prev != j.Opts.Trace {
			t.Errorf("%s cells got different traces", j.Profile.Name)
		}
		byBench[j.Profile.Name] = j.Opts.Trace
	}
	if byBench["bzip2"] == byBench["ammp"] {
		t.Error("different benchmarks share a trace")
	}
	if jobs[1].Opts.Trace == byBench["bzip2"] {
		t.Error("fast-forwarded cell shares the plain cell's trace")
	}
	// Idempotence: a second attach must keep every existing trace.
	before := make([]*fsim.Trace, len(jobs))
	for i := range jobs {
		before[i] = jobs[i].Opts.Trace
	}
	if err := runner.AttachTraces(jobs); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Opts.Trace != before[i] {
			t.Errorf("job %d trace replaced on re-attach", i)
		}
	}
}

// TestAttachTracesMatchesDirectRun: a traced grid must produce results
// identical to the same grid run without traces.
func TestAttachTracesMatchesDirectRun(t *testing.T) {
	direct := testJobs(t, []string{"bzip2"}, 8_000)
	traced := testJobs(t, []string{"bzip2"}, 8_000)
	for i := range direct {
		direct[i].Opts.Verify = true
		traced[i].Opts.Verify = true
	}
	if err := runner.AttachTraces(traced); err != nil {
		t.Fatal(err)
	}
	dOuts, err := runner.Run(context.Background(), direct, runner.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	tOuts, err := runner.Run(context.Background(), traced, runner.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dOuts {
		if !reflect.DeepEqual(dOuts[i].Result, tOuts[i].Result) {
			t.Errorf("cell %d (%s/%s) differs between traced and direct runs",
				i, direct[i].Profile.Name, direct[i].Name)
		}
	}
}
