package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/isa"
)

// TestModeRegistryExhaustive is the registry's contract: every registered
// mode has a complete descriptor whose base machine validates and
// simulates a smoke workload oracle-verified. A mode that registers but
// cannot run never survives this test, so discovery surfaces (CLIs,
// GET /v1/modes) can trust the registry blindly.
func TestModeRegistryExhaustive(t *testing.T) {
	infos := Modes()
	if len(infos) < 6 {
		t.Fatalf("only %d registered modes, want the 6 built-ins", len(infos))
	}
	seen := make(map[Mode]bool)
	for _, mi := range infos {
		mi := mi
		if seen[mi.Mode] {
			t.Fatalf("mode %q listed twice", mi.Mode)
		}
		seen[mi.Mode] = true
		t.Run(string(mi.Mode), func(t *testing.T) {
			if mi.Description == "" {
				t.Error("empty description")
			}
			if got, ok := ModeByName(string(mi.Mode)); !ok || got.Mode != mi.Mode {
				t.Errorf("ModeByName(%q) did not round-trip", mi.Mode)
			}
			if mi.Caps != mi.Mode.Caps() {
				t.Error("Mode.Caps() disagrees with the registered descriptor")
			}
			if mi.Caps.Corrects && !mi.Caps.Detects {
				t.Error("a correcting mode must also detect")
			}
			cfg := mi.Base()
			if cfg.Mode != mi.Mode {
				t.Fatalf("Base() built mode %q", cfg.Mode)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("base config invalid: %v", err)
			}
			c := runVerified(t, quicken(cfg), loopProgram(300))
			if c.Stats.Committed == 0 {
				t.Fatal("smoke workload committed nothing")
			}
			if want := uint64(cfg.Streams()) * c.Stats.Committed; c.Stats.CopiesCommitted != want {
				t.Errorf("CopiesCommitted = %d, want %d (%d streams)",
					c.Stats.CopiesCommitted, want, cfg.Streams())
			}
		})
	}
	if names := ModeNames(); len(names) != len(infos) {
		t.Errorf("ModeNames() lists %d names for %d modes", len(names), len(infos))
	}
	if _, ok := ModeByName("no-such-mode"); ok {
		t.Error("ModeByName accepted an unregistered name")
	}
}

// TestModeValidationNamesRegistry: the unknown-mode error must teach the
// registered names, since the registry is now the only source of truth.
func TestModeValidationNamesRegistry(t *testing.T) {
	bad := BaseSIE()
	bad.Mode = "QMR"
	err := bad.Validate()
	if err == nil {
		t.Fatal("unregistered mode accepted")
	}
	for _, name := range ModeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered mode %q", err, name)
		}
	}
}

func baseTMR() Config    { return baseConfig(TMR) }
func baseREPLAY() Config { return baseConfig(REPLAY) }

// TestTMRTriplicatesDynamicInstructions mirrors the DIE doubling test:
// TMR commits VoteWidth copies per architected instruction.
func TestTMRTriplicatesDynamicInstructions(t *testing.T) {
	for _, width := range []int{3, 5} {
		cfg := quicken(baseTMR())
		cfg.VoteWidth = width
		c := runVerified(t, cfg, loopProgram(300))
		if c.Stats.CopiesCommitted != uint64(width)*c.Stats.Committed {
			t.Errorf("width %d: CopiesCommitted = %d, want %d",
				width, c.Stats.CopiesCommitted, uint64(width)*c.Stats.Committed)
		}
	}
}

// TestTMRCorrectsWithoutRewind is TMR's defining property: a single-copy
// strike is outvoted by the surviving majority and the instruction retires
// corrected — no flush, no re-execution, no repair window — while the
// oracle confirms the architected stream. Both the primary and a shadow
// copy are struck, since the old pair-check path special-cased streams.
func TestTMRCorrectsWithoutRewind(t *testing.T) {
	prog := loopProgram(300)
	pc := findPC(t, prog, isa.OpAdd, 2)
	for _, dup := range []bool{false, true} {
		name := "primary"
		if dup {
			name = "shadow"
		}
		t.Run(name, func(t *testing.T) {
			inj := &fault.Persistent{Site: fault.FU, PC: pc, Dup: dup, Bit: 5, MaxFaults: 1}
			c := runInjected(t, quicken(baseTMR()), prog, inj)
			if inj.Injected != 1 {
				t.Fatalf("injected %d faults, want 1", inj.Injected)
			}
			if c.Stats.FaultsDetected != 1 {
				t.Errorf("FaultsDetected = %d, want 1", c.Stats.FaultsDetected)
			}
			if c.Stats.FaultsCorrected != 1 {
				t.Errorf("FaultsCorrected = %d, want 1", c.Stats.FaultsCorrected)
			}
			if c.Stats.FaultRecoveries != 0 {
				t.Errorf("FaultRecoveries = %d, want 0 (vote needs no rewind)",
					c.Stats.FaultRecoveries)
			}
			if c.Stats.FaultsSilent != 0 {
				t.Errorf("FaultsSilent = %d, want 0", c.Stats.FaultsSilent)
			}
			if mttr := c.Stats.MTTR(); mttr != 0 {
				t.Errorf("MTTR = %.2f, want 0 (correction is instantaneous)", mttr)
			}
		})
	}
}

// TestTMRCampaignZeroSilent: a sustained stochastic campaign under the
// single-fault model must be fully covered — every injected fault is
// masked or outvoted, never silent, and no rewind is ever needed.
func TestTMRCampaignZeroSilent(t *testing.T) {
	inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 2e-3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c := runInjected(t, quicken(baseTMR()), loopProgram(2000), inj)
	if inj.Injected == 0 {
		t.Fatal("campaign injected nothing")
	}
	if c.Stats.FaultsSilent != 0 {
		t.Errorf("FaultsSilent = %d, want 0", c.Stats.FaultsSilent)
	}
	if c.Stats.FaultsCorrected == 0 {
		t.Error("no faults corrected by vote")
	}
	if c.Stats.FaultRecoveries != 0 {
		t.Errorf("FaultRecoveries = %d, want 0 under single-copy strikes",
			c.Stats.FaultRecoveries)
	}
	if got := c.Stats.FaultsCorrected + c.Stats.FaultsMasked; got > inj.Injected {
		t.Errorf("corrected+masked = %d exceeds injected %d", got, inj.Injected)
	}
}

// TestReplayDetectsAtEpochScale: REPLAY commits unchecked, so a strike is
// surfaced only by the epoch's replay comparison — detection happens, is
// never silent, and its repair latency is on the order of the epoch, not
// the pipeline depth. The run must still be oracle-clean (the rewind is a
// timing charge; architected state was never wrong).
func TestReplayDetectsAtEpochScale(t *testing.T) {
	inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 2e-3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quicken(baseREPLAY())
	cfg.ReplayEpoch = 256
	c := runInjected(t, cfg, loopProgram(2000), inj)
	if inj.Injected == 0 {
		t.Fatal("campaign injected nothing")
	}
	if c.Stats.FaultsDetected == 0 {
		t.Fatal("replay comparison detected nothing")
	}
	if c.Stats.FaultsSilent != 0 {
		t.Errorf("FaultsSilent = %d, want 0 (replay has no escape channel)",
			c.Stats.FaultsSilent)
	}
	if c.Stats.FaultRecoveries == 0 {
		t.Error("detections triggered no epoch rewinds")
	}
	if c.Stats.ReplayEpochs == 0 {
		t.Error("no epochs checked")
	}
	if c.Stats.ReplayStallCycles == 0 {
		t.Error("replay bandwidth was never charged")
	}
	// Detection latency is epoch-scale: the faulting commit waited for
	// its epoch boundary, far beyond DIE's refetch-round-trip MTTR.
	if mttr := c.Stats.MTTR(); mttr < 64 {
		t.Errorf("MTTR = %.1f cycles, want epoch-scale (>= 64)", mttr)
	}
}

// TestReplayChargesBandwidth: the epoch checks make REPLAY strictly slower
// than SIE on the same program, and the final partial epoch is flushed so
// every commit is covered by some checked epoch.
func TestReplayChargesBandwidth(t *testing.T) {
	prog := loopProgram(1000)
	sie := runVerified(t, quicken(BaseSIE()), prog)
	rep := runVerified(t, quicken(baseREPLAY()), prog)
	if rep.Stats.Cycles <= sie.Stats.Cycles {
		t.Errorf("REPLAY (%d cycles) not slower than SIE (%d): replay bandwidth unpaid",
			rep.Stats.Cycles, sie.Stats.Cycles)
	}
	// Every committed instruction must fall inside a checked epoch,
	// including the tail: ceil(committed/epoch) epochs.
	k := uint64(DefaultReplayEpoch)
	if want := (rep.Stats.Committed + k - 1) / k; rep.Stats.ReplayEpochs != want {
		t.Errorf("ReplayEpochs = %d, want %d for %d commits (tail epoch unflushed?)",
			rep.Stats.ReplayEpochs, want, rep.Stats.Committed)
	}
	// A longer epoch amortizes better: fewer checks, fewer stall cycles.
	long := quicken(baseREPLAY())
	long.ReplayEpoch = 4096
	l := runVerified(t, long, prog)
	if l.Stats.ReplayEpochs >= rep.Stats.ReplayEpochs {
		t.Errorf("epoch 4096 checked %d epochs, default %d checked %d",
			l.Stats.ReplayEpochs, k, rep.Stats.ReplayEpochs)
	}
}

// TestDifferentialReplayAndTMRMatchSIE extends the differential property
// to the new modes: under zero faults, REPLAY and TMR must produce commit
// streams bit-identical to SIE — replay is pure timing, and a unanimous
// vote is architecturally invisible.
func TestDifferentialReplayAndTMRMatchSIE(t *testing.T) {
	for _, seed := range []uint64{3, 21, 77} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			prog := randomProgram(seed)
			sieStream, sieStats := commitStream(t, quicken(BaseSIE()), prog)
			for _, mode := range []Mode{REPLAY, TMR} {
				stream, stats := commitStream(t, quicken(baseConfig(mode)), prog)
				if stats.Committed != sieStats.Committed {
					t.Fatalf("%s committed %d, SIE %d", mode, stats.Committed, sieStats.Committed)
				}
				if !reflect.DeepEqual(stream, sieStream) {
					t.Fatalf("%s commit stream diverged from SIE", mode)
				}
			}
		})
	}
}
