package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stats"
)

// quick returns options small enough for unit tests but large enough for
// the qualitative shapes to hold. Three benchmarks cover the key regimes:
// ALU-bound integer (bzip2), reuse-rich FP (mesa), memory-bound (ammp).
func quickOpts() Options {
	return Options{
		Insns:      60_000,
		Benchmarks: []string{"bzip2", "mesa", "ammp"},
	}
}

func TestFig2Shape(t *testing.T) {
	g, tbl, err := Fig2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Configs) != 9 || len(g.Benchmarks) != 3 {
		t.Fatalf("grid shape %dx%d", len(g.Benchmarks), len(g.Configs))
	}
	// bzip2 (ALU-bound): DIE must lose significantly, 2xALU must recover
	// most of it.
	const iSIE, iDIE, i2xALU = 0, 1, 2
	bz := 0
	dieLoss := stats.PctLoss(g.IPC(bz, iSIE), g.IPC(bz, iDIE))
	aluLoss := stats.PctLoss(g.IPC(bz, iSIE), g.IPC(bz, i2xALU))
	if dieLoss < 10 {
		t.Errorf("bzip2 DIE loss %.1f%%, want >= 10%%", dieLoss)
	}
	if aluLoss > dieLoss/2 {
		t.Errorf("bzip2 2xALU loss %.1f%% did not halve DIE loss %.1f%%", aluLoss, dieLoss)
	}
	// ammp (memory-bound): DIE costs almost nothing.
	ammp := 2
	if l := stats.PctLoss(g.IPC(ammp, iSIE), g.IPC(ammp, iDIE)); l > 5 {
		t.Errorf("ammp DIE loss %.1f%%, want < 5%%", l)
	}
	// The fully doubled machine is within a few percent of SIE.
	for b, bench := range g.Benchmarks {
		if l := stats.PctLoss(g.IPC(b, 0), g.IPC(b, 8)); l > 8 {
			t.Errorf("%s: fully doubled DIE still loses %.1f%%", bench, l)
		}
	}
	if !strings.Contains(tbl.String(), "AVERAGE") {
		t.Error("table missing average row")
	}
}

func TestHeadlineShape(t *testing.T) {
	g, sum, tbl, err := Headline(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// DIE-IRB must land between DIE and SIE on every benchmark (small
	// tolerance for the memory-bound case where all three coincide).
	for b, bench := range g.Benchmarks {
		sie, die, irb := g.IPC(b, 0), g.IPC(b, 1), g.IPC(b, 2)
		if irb < die*0.99 {
			t.Errorf("%s: DIE-IRB IPC %.3f below DIE %.3f", bench, irb, die)
		}
		if irb > sie*1.01 {
			t.Errorf("%s: DIE-IRB IPC %.3f above SIE %.3f", bench, irb, sie)
		}
	}
	// Aggregates: the reproduction's headline numbers must be positive
	// and within a plausible band of the paper's 50%/23%.
	if sum.ALUBandwidth < 15 || sum.ALUBandwidth > 90 {
		t.Errorf("ALU-bandwidth loss recovered %.0f%%, outside [15,90]", sum.ALUBandwidth)
	}
	if sum.OverallGain < 8 || sum.OverallGain > 60 {
		t.Errorf("overall loss recovered %.0f%%, outside [8,60]", sum.OverallGain)
	}
	if !strings.Contains(tbl.String(), "recovered") {
		t.Error("table missing the recovered summary line")
	}
}

func TestIRBHitReportsRates(t *testing.T) {
	g, _, err := IRBHit(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for b, bench := range g.Benchmarks {
		r := g.Results[b][0]
		if r.PCHitRate() <= 0 || r.PCHitRate() > 1 {
			t.Errorf("%s: pc hit rate %v", bench, r.PCHitRate())
		}
		if r.ReuseRate() <= 0 {
			t.Errorf("%s: zero reuse", bench)
		}
	}
}

func TestIRBSizeMonotoneOnAverage(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"gcc"} // the capacity-pressured benchmark
	g, _, err := IRBSize(opts)
	if err != nil {
		t.Fatal(err)
	}
	// gcc's static footprint overflows small IRBs: 4096 entries must
	// beat 128 entries.
	small, large := g.IPC(0, 0), g.IPC(0, len(g.Configs)-1)
	if large <= small {
		t.Errorf("gcc IPC did not grow with IRB size: %.3f @128 vs %.3f @4096", small, large)
	}
}

func TestConflictMechanismsHelpParser(t *testing.T) {
	// parser's leaf function aliases its hot loop in the direct-mapped
	// array (AliasLeaf); the victim buffer must recover those conflict
	// misses.
	opts := quickOpts()
	opts.Benchmarks = []string{"parser"}
	g, _, err := Conflict(opts)
	if err != nil {
		t.Fatal(err)
	}
	dm := g.Results[0][0]     // "DM"
	victim := g.Results[0][2] // "DM+victim16"
	if victim.PCHitRate() <= dm.PCHitRate() {
		t.Errorf("victim buffer PC hit rate %.3f not above direct-mapped %.3f",
			victim.PCHitRate(), dm.PCHitRate())
	}
	if victim.ReuseRate() <= dm.ReuseRate() {
		t.Errorf("victim buffer reuse %.3f not above direct-mapped %.3f",
			victim.ReuseRate(), dm.ReuseRate())
	}
}

func TestPortsThrottleWhenScarce(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"bzip2"}
	g, _, err := Ports(opts)
	if err != nil {
		t.Fatal(err)
	}
	one := g.Results[0][0]
	eight := g.Results[0][len(g.Configs)-1]
	if one.IRB.ReadDenied == 0 {
		t.Error("single read port never denied a lookup")
	}
	if eight.IRB.ReadDenied >= one.IRB.ReadDenied {
		t.Error("more ports did not reduce denials")
	}
	if eight.IPC < one.IPC {
		t.Errorf("IPC fell with more ports: %.3f -> %.3f", one.IPC, eight.IPC)
	}
}

func TestFaultCoverage(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"bzip2"}
	rows, tbl, err := Faults(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d campaigns, want 6", len(rows))
	}
	byKey := map[string]FaultRow{}
	for _, r := range rows {
		byKey[string(r.Mode)+"/"+string(r.Site)] = r
		if r.Injected == 0 {
			t.Errorf("%s/%s: no faults injected", r.Mode, r.Site)
		}
	}
	// FU faults must be overwhelmingly detected in both modes (the IRB
	// adds no coverage hole).
	for _, key := range []string{"DIE/fu", "DIE-IRB/fu"} {
		if r := byKey[key]; r.Coverage() < 0.8 {
			t.Errorf("%s coverage %.2f, want >= 0.8", key, r.Coverage())
		}
	}
	// IRB operand faults are harmless: never detected as mismatches
	// (they fail the reuse test instead) and never architectural.
	if r := byKey["DIE-IRB/irb-operand"]; r.Detected != 0 {
		t.Errorf("irb-operand faults detected %d times; they should just fail the reuse test", r.Detected)
	}
	if !strings.Contains(tbl.String(), "irb-result") {
		t.Error("table missing irb-result row")
	}
}

func TestFrontierSixWay(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"bzip2"}
	rows, tbl, err := Frontier(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("frontier has %d modes, want 6", len(rows))
	}
	byMode := map[core.Mode]FrontierRow{}
	var baseline *FrontierRow
	for i, r := range rows {
		byMode[r.Mode] = r
		if !r.Mode.Caps().Detects {
			if baseline != nil {
				t.Fatalf("two non-detecting rows: %s and %s", baseline.Mode, r.Mode)
			}
			baseline = &rows[i]
		}
		if r.IPC <= 0 {
			t.Errorf("%s: IPC %v not positive", r.Mode, r.IPC)
		}
		if r.Streams != r.Mode.Caps().Streams {
			t.Errorf("%s: row reports %d streams, caps say %d",
				r.Mode, r.Streams, r.Mode.Caps().Streams)
		}
		if !r.Mode.Caps().Detects {
			continue
		}
		// Every detecting mode's campaigns must inject, detect, and
		// commit zero silent corruptions — the acceptance bar.
		if r.Inj.Injected == 0 {
			t.Errorf("%s: no faults injected", r.Mode)
		}
		if r.Inj.Silent != 0 {
			t.Errorf("%s: %d silent corruptions escaped", r.Mode, r.Inj.Silent)
		}
		if r.Inj.Coverage() < 0.5 {
			t.Errorf("%s: coverage %.2f implausibly low", r.Mode, r.Inj.Coverage())
		}
	}
	if baseline == nil {
		t.Fatal("frontier has no non-detecting baseline row")
	}
	// The baseline must run no campaign and define zero loss.
	if baseline.Inj.Injected != 0 || baseline.LossPct != 0 {
		t.Errorf("baseline row carries campaign data: %+v", baseline)
	}
	// Redundancy is not free: every multi-stream mode loses IPC on the
	// ALU-bound benchmark, and TMR loses at least as much as DIE.
	die, tmr := byMode[core.DIE], byMode[core.TMR]
	if die.LossPct <= 0 {
		t.Errorf("DIE loss %.1f%% not positive on bzip2", die.LossPct)
	}
	if tmr.LossPct < die.LossPct {
		t.Errorf("TMR loss %.1f%% below DIE loss %.1f%%", tmr.LossPct, die.LossPct)
	}
	// TMR corrects by vote (no rewind); REPLAY repairs at epoch scale.
	if tmr.Inj.Corrected == 0 {
		t.Error("TMR corrected no faults by vote")
	}
	if tmr.Inj.Recoveries != 0 {
		t.Errorf("TMR performed %d rewinds; the vote should correct in place", tmr.Inj.Recoveries)
	}
	// Trace reuse is a bandwidth win on top of DIE: the DIE-TRB row may
	// never lose more IPC than plain DIE on the same benchmark.
	trb := byMode[core.DIETRB]
	if trb.LossPct > die.LossPct {
		t.Errorf("DIE-TRB loss %.1f%% exceeds DIE loss %.1f%%", trb.LossPct, die.LossPct)
	}
	rep := byMode[core.REPLAY]
	if rep.Inj.Detected == 0 || rep.Inj.Recoveries == 0 {
		t.Errorf("REPLAY detected %d / recovered %d, want both positive",
			rep.Inj.Detected, rep.Inj.Recoveries)
	}
	if rep.Inj.MTTR() <= die.Inj.MTTR() {
		t.Errorf("REPLAY MTTR %.0f not above DIE's commit-time MTTR %.0f",
			rep.Inj.MTTR(), die.Inj.MTTR())
	}
	for _, want := range []string{"REPLAY", "TMR", "coverage", "mttr"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("frontier table missing %q", want)
		}
	}
}

func TestAblations(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"bzip2"}
	gd, _, err := AblationDup(opts)
	if err != nil {
		t.Fatal(err)
	}
	dupOnly, both := gd.Results[0][0], gd.Results[0][1]
	if both.IRB.Lookups <= dupOnly.IRB.Lookups {
		t.Error("both-streams policy did not increase IRB traffic")
	}

	gf, _, err := AblationFwd(opts)
	if err != nil {
		t.Fatal(err)
	}
	noFwd, asFU := gf.IPC(0, 0), gf.IPC(0, 1)
	if asFU > noFwd {
		t.Errorf("IRB-as-FU (issue-width tax) IPC %.3f above no-forwarding %.3f", asFU, noFwd)
	}
}

func TestConfigTable(t *testing.T) {
	tbl := ConfigTable()
	out := tbl.String()
	for _, want := range []string{"8/8/8/8", "128 entries", "1024-entry direct-mapped"} {
		if !strings.Contains(out, want) {
			t.Errorf("config table missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	opts := Options{Insns: 1000, Benchmarks: []string{"doom"}}
	if _, _, err := Fig2(opts); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFaultRowCoverage(t *testing.T) {
	r := FaultRow{Injected: 10, Detected: 8, Vanished: 2}
	if got := r.Coverage(); got != 1.0 {
		t.Errorf("coverage = %v, want 1.0", got)
	}
	r2 := FaultRow{Injected: 10, Detected: 5, Vanished: 0}
	if got := r2.Coverage(); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
	empty := FaultRow{}
	if empty.Coverage() != 1 {
		t.Error("zero-fault campaign should have coverage 1")
	}
	_ = fault.Sites()
}

func TestSchedulerMatrix(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"bzip2"}
	g, _, err := Scheduler(opts)
	if err != nil {
		t.Fatal(err)
	}
	captureValue, captureName := g.Results[0][0], g.Results[0][1]
	decoupledValue := g.Results[0][2]
	// Name-based hit rates decrease (the paper's Section 3.3 caveat).
	if captureName.ReuseRate() >= captureValue.ReuseRate() {
		t.Errorf("name-based reuse %.2f not below value-based %.2f",
			captureName.ReuseRate(), captureValue.ReuseRate())
	}
	// The decoupled pipeline costs IPC but not much.
	if decoupledValue.IPC > captureValue.IPC {
		t.Errorf("decoupled IPC %.3f above data-capture %.3f",
			decoupledValue.IPC, captureValue.IPC)
	}
	if decoupledValue.IPC < captureValue.IPC*0.85 {
		t.Errorf("decoupled IPC %.3f lost more than 15%% vs %.3f",
			decoupledValue.IPC, captureValue.IPC)
	}
}

func TestClusterComparison(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"bzip2"}
	g, _, err := Cluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	sie, die, clu, irb := g.IPC(0, 0), g.IPC(0, 1), g.IPC(0, 2), g.IPC(0, 3)
	if clu <= die {
		t.Errorf("replicated cluster IPC %.3f not above shared DIE %.3f", clu, die)
	}
	if clu > sie*1.01 {
		t.Errorf("cluster IPC %.3f above SIE %.3f", clu, sie)
	}
	if irb <= die {
		t.Errorf("DIE-IRB IPC %.3f not above DIE %.3f", irb, die)
	}
}

func TestPrior24Claim(t *testing.T) {
	g, tbl, err := Prior24(Options{Insns: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Benchmarks) != 20 {
		t.Fatalf("combined suites have %d benchmarks, want 20", len(g.Benchmarks))
	}
	worst := 0.0
	for b := range g.Benchmarks {
		if l := stats.PctLoss(g.IPC(b, 0), g.IPC(b, 1)); l > worst {
			worst = l
		}
	}
	// The paper quotes [24]: "up to 45% performance loss".
	if worst < 30 || worst > 50 {
		t.Errorf("worst-case DIE loss %.1f%%, want the paper's 'up to 45%%' band", worst)
	}
	if !strings.Contains(tbl.String(), "WORST") {
		t.Error("table missing worst row")
	}
	if _, _, err := Prior24(Options{Benchmarks: []string{"gzip"}}); err == nil {
		t.Error("prior24 accepted a benchmark subset")
	}
}

func TestReuseSources(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"bzip2"} // branchy enough to squash, reuse-rich
	g, _, err := ReuseSources(opts)
	if err != nil {
		t.Fatal(err)
	}
	base, squash := g.Results[0][0], g.Results[0][1]
	sie, chain := g.Results[0][2], g.Results[0][3]
	// Squash reuse can only add reuse opportunities.
	if squash.Core.IRBReuseHits < base.Core.IRBReuseHits {
		t.Errorf("squash reuse lost hits: %d vs %d",
			squash.Core.IRBReuseHits, base.Core.IRBReuseHits)
	}
	// Chaining collapses dependent reuse chains: IPC must not drop.
	if chain.IPC < sie.IPC*0.999 {
		t.Errorf("chaining IPC %.3f below plain SIE-IRB %.3f", chain.IPC, sie.IPC)
	}
}

func TestReusePredictionCrossValidates(t *testing.T) {
	// The acceptance bar for the static predictor: across the full
	// benchmark grid, the predicted reuse rate must rank the benchmarks
	// essentially the way the timing core measures them.
	rows, rho, tbl, err := ReusePrediction(Options{Insns: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want the full 12-benchmark grid", len(rows))
	}
	if rho < 0.7 {
		t.Errorf("Spearman rank correlation %.3f, want >= 0.7\n%s", rho, tbl)
	}
	for _, r := range rows {
		if r.Predicted < 0 || r.Predicted > 1 {
			t.Errorf("%s: predicted reuse %.3f outside [0,1]", r.Bench, r.Predicted)
		}
		if r.Measured <= 0 {
			t.Errorf("%s: measured reuse %.3f not positive", r.Bench, r.Measured)
		}
	}
	if !strings.Contains(tbl.String(), "SPEARMAN") {
		t.Error("table missing SPEARMAN summary row")
	}
}

// TestDisableReplayEquivalent: the trace-replay fast path is a pure
// engineering optimization — a grid run with it disabled must produce
// the identical Grid.
func TestDisableReplayEquivalent(t *testing.T) {
	opts := Options{Insns: 15_000, Benchmarks: []string{"bzip2", "ammp"}, Verify: true}
	replay, _, _, err := Headline(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableReplay = true
	direct, _, _, err := Headline(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay.Results, direct.Results) {
		t.Error("replay-backed grid differs from direct grid")
	}
}
