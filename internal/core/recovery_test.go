package core

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/isa"
	"repro/internal/program"
)

// findPC returns the PC of the first instruction matching op and dest —
// the anchor the pinned-PC fault tests strike.
func findPC(t *testing.T, prog *program.Program, op isa.Op, dest isa.Reg) uint64 {
	t.Helper()
	for pc, in := range prog.Code {
		if in.Op == op && in.Dest == dest {
			return uint64(pc)
		}
	}
	t.Fatalf("no %v with dest r%d in %s", op, dest, prog.Name)
	return 0
}

// runInjected runs prog on cfg with the injector installed and the oracle
// check on: recovery must reach an architecturally correct final state, not
// merely finish.
func runInjected(t *testing.T, cfg Config, prog *program.Program, inj FaultInjector) *Core {
	t.Helper()
	c, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	c.SetInjector(inj)
	oracle := fsim.New(prog)
	c.OnCommit = func(rec *fsim.Retired) {
		want, err := oracle.Step()
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if rec.Seq != want.Seq || rec.PC != want.PC || rec.Result != want.Result ||
			rec.NextPC != want.NextPC || rec.Addr != want.Addr {
			t.Fatalf("commit diverged from oracle:\n got %+v\nwant %+v", rec, want)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRecoveryPerStream is the regression for the old commit() forgery
// (head.outSig = dupU.outSig): a fault confined to either stream — primary
// or shadow — must be detected and repaired by real re-execution, with the
// oracle confirming the architected stream. The forged agreement would have
// hidden the shadow-stream case entirely.
func TestRecoveryPerStream(t *testing.T) {
	prog := loopProgram(300)
	pc := findPC(t, prog, isa.OpAdd, 2)
	for _, dup := range []bool{false, true} {
		name := "primary"
		if dup {
			name = "shadow"
		}
		t.Run(name, func(t *testing.T) {
			inj := &fault.Persistent{Site: fault.FU, PC: pc, Dup: dup, Bit: 5, MaxFaults: 1}
			c := runInjected(t, quicken(BaseDIE()), prog, inj)
			if inj.Injected != 1 {
				t.Fatalf("injected %d faults, want 1", inj.Injected)
			}
			if c.Stats.FaultsDetected != 1 {
				t.Errorf("FaultsDetected = %d, want 1", c.Stats.FaultsDetected)
			}
			if c.Stats.FaultRecoveries != 1 {
				t.Errorf("FaultRecoveries = %d, want 1", c.Stats.FaultRecoveries)
			}
			if c.Stats.FaultRepairs != 1 {
				t.Errorf("FaultRepairs = %d, want 1", c.Stats.FaultRepairs)
			}
			if c.Stats.FaultsSilent != 0 {
				t.Errorf("FaultsSilent = %d, want 0", c.Stats.FaultsSilent)
			}
		})
	}
}

// TestRecoveryReExecutes pins the difference from the old stall model: a
// detection squashes the pair and everything younger, so the copies are
// dispatched (and the squash counter moves) strictly more than in a clean
// run, and the run still ends architecturally correct.
func TestRecoveryReExecutes(t *testing.T) {
	prog := loopProgram(800)
	clean := runVerified(t, quicken(BaseDIE()), prog)

	inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 5e-3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	faulty := runInjected(t, quicken(BaseDIE()), prog, inj)
	if faulty.Stats.FaultsDetected == 0 {
		t.Fatal("no faults detected")
	}
	if faulty.Stats.FaultRecoveries == 0 {
		t.Fatal("detections triggered no recoveries")
	}
	if faulty.Stats.Cycles <= clean.Stats.Cycles {
		t.Errorf("faulty run (%d cycles, %d detections) not slower than clean (%d cycles)",
			faulty.Stats.Cycles, faulty.Stats.FaultsDetected, clean.Stats.Cycles)
	}
	if faulty.Stats.Dispatched <= clean.Stats.Dispatched {
		t.Errorf("faulty run dispatched %d copies, clean %d: recovery did not re-execute",
			faulty.Stats.Dispatched, clean.Stats.Dispatched)
	}
	if faulty.Stats.Squashed <= clean.Stats.Squashed {
		t.Errorf("faulty run squashed %d copies, clean %d: recovery did not flush",
			faulty.Stats.Squashed, clean.Stats.Squashed)
	}
}

// TestRecoveryMTTR checks the repair-window accounting: every detection
// opens a window that a later clean commit closes, so repairs match
// recoveries net of retries and the mean time to repair is at least the
// refetch round-trip.
func TestRecoveryMTTR(t *testing.T) {
	inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 5e-3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c := runInjected(t, quicken(BaseDIE()), loopProgram(800), inj)
	if c.Stats.FaultRepairs == 0 {
		t.Fatal("no repairs recorded")
	}
	if c.Stats.FaultRepairs > c.Stats.FaultRecoveries {
		t.Errorf("repairs %d exceed recoveries %d", c.Stats.FaultRepairs, c.Stats.FaultRecoveries)
	}
	if mttr := c.Stats.MTTR(); mttr < 1 {
		t.Errorf("MTTR = %.2f cycles, want >= 1 (refetch takes at least a cycle)", mttr)
	}
}

// TestStuckIRBEntryScrubbed: a single corrupted IRB entry keeps serving
// hits — without scrubbing, its PC re-detects (and under real recovery,
// livelocks into escalation) on every reuse. Invalidation on the first
// detection makes it a one-detection event: the re-executed pair refreshes
// the buffer with a clean entry and reuse resumes.
func TestStuckIRBEntryScrubbed(t *testing.T) {
	prog := loopProgram(2000)
	pc := findPC(t, prog, isa.OpXor, 3) // invariant: reuse-hits every iteration
	inj := &fault.Persistent{Site: fault.IRBResult, PC: pc, Bit: 3, MaxFaults: 1}
	c := runInjected(t, quicken(BaseDIEIRB()), prog, inj)
	if inj.Injected != 1 {
		t.Fatalf("injected %d faults, want 1", inj.Injected)
	}
	if c.Stats.FaultsDetected != 1 {
		t.Errorf("FaultsDetected = %d, want exactly 1 (stuck entry not scrubbed?)",
			c.Stats.FaultsDetected)
	}
	if c.Stats.IRBScrubs != 1 {
		t.Errorf("IRBScrubs = %d, want 1", c.Stats.IRBScrubs)
	}
	if c.IRB().Stats.Invalidated != 1 {
		t.Errorf("IRB Invalidated = %d, want 1", c.IRB().Stats.Invalidated)
	}
	// Reuse must resume once the clean entry is reinserted.
	if c.Stats.IRBReuseHits < 100 {
		t.Errorf("only %d reuse hits after the scrub; reuse did not resume", c.Stats.IRBReuseHits)
	}
}

// TestPersistentFaultEscalates: a rate-1 stuck fault pinned to one PC
// defeats temporal redundancy — every re-execution fails the same way. The
// bounded retry budget must trip and surface a structured error instead of
// livelocking the run.
func TestPersistentFaultEscalates(t *testing.T) {
	prog := loopProgram(300)
	pc := findPC(t, prog, isa.OpAdd, 2)
	inj := &fault.Persistent{Site: fault.FU, PC: pc, Bit: 7}
	c, err := New(quicken(BaseDIE()), prog)
	if err != nil {
		t.Fatal(err)
	}
	c.SetInjector(inj)
	runErr := c.Run()
	var uf *UnrecoverableFaultError
	if !errors.As(runErr, &uf) {
		t.Fatalf("Run() = %v, want *UnrecoverableFaultError", runErr)
	}
	if uf.PC != pc {
		t.Errorf("escalated PC = %d, want %d", uf.PC, pc)
	}
	if uf.Retries != DefaultFaultRetryLimit {
		t.Errorf("Retries = %d, want the default limit %d", uf.Retries, DefaultFaultRetryLimit)
	}
	if c.Stats.FaultRecoveries != DefaultFaultRetryLimit {
		t.Errorf("FaultRecoveries = %d, want %d (budget exhausted)",
			c.Stats.FaultRecoveries, DefaultFaultRetryLimit)
	}
	if c.Stats.FaultRepairs != 0 {
		t.Errorf("FaultRepairs = %d, want 0 (the stuck instruction never committed)",
			c.Stats.FaultRepairs)
	}
}

// TestFaultRetryLimitConfigurable: a smaller budget escalates sooner.
func TestFaultRetryLimitConfigurable(t *testing.T) {
	prog := loopProgram(300)
	pc := findPC(t, prog, isa.OpAdd, 2)
	cfg := quicken(BaseDIE())
	cfg.FaultRetryLimit = 2
	c, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	c.SetInjector(&fault.Persistent{Site: fault.FU, PC: pc, Bit: 7})
	var uf *UnrecoverableFaultError
	if runErr := c.Run(); !errors.As(runErr, &uf) {
		t.Fatalf("Run() = %v, want *UnrecoverableFaultError", runErr)
	}
	if uf.Retries != 2 {
		t.Errorf("Retries = %d, want 2", uf.Retries)
	}
	if cfg.FaultRetryLimit = -1; cfg.Validate() == nil {
		t.Error("negative FaultRetryLimit accepted")
	}
}

// TestRecoveryDeterministic: identical injected runs produce identical
// statistics, the property the campaign determinism tests build on.
func TestRecoveryDeterministic(t *testing.T) {
	run := func() Stats {
		inj, err := fault.New(fault.Config{Site: fault.Forward, Rate: 2e-3, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return runInjected(t, quicken(BaseDIEIRB()), loopProgram(800), inj).Stats
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical faulty runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestRecoveryAcrossAllSites runs a sustained rate-1e-3 campaign at every
// injectable site on both dual modes — the acceptance sweep in miniature:
// completion with oracle-verified state and zero silent corruptions.
func TestRecoveryAcrossAllSites(t *testing.T) {
	for _, cfg := range []Config{quicken(BaseDIE()), quicken(BaseDIEIRB())} {
		for _, site := range fault.Sites() {
			if cfg.Mode == DIE && (site == fault.IRBResult || site == fault.IRBOperand) {
				continue // no IRB to strike
			}
			t.Run(string(cfg.Mode)+"/"+string(site), func(t *testing.T) {
				inj, err := fault.New(fault.Config{Site: site, Rate: 1e-3, Seed: 5})
				if err != nil {
					t.Fatal(err)
				}
				c := runInjected(t, cfg, loopProgram(2000), inj)
				if c.Stats.FaultsSilent != 0 {
					t.Errorf("%d silent corruptions escaped the check", c.Stats.FaultsSilent)
				}
				if inj.Injected > 0 && site == fault.FU && c.Stats.FaultsDetected == 0 {
					t.Error("FU faults injected but none detected")
				}
			})
		}
	}
}
