// Pipeline tracing: watch the DIE-IRB machinery work at cycle granularity.
// The example assembles a tiny loop whose body is loop-invariant, runs it
// on the DIE-IRB core with a TextTracer attached, and prints an annotated
// window of the steady state: primary copies (P) issuing to ALUs, their
// duplicates (D) completing via "reuse" events without ever issuing, and
// pairs committing together.
//
//	go run ./examples/pipetrace
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
)

func main() {
	b := program.NewBuilder("tracedemo")
	b.LoadConst(1, 400) // iteration counter
	b.LoadConst(5, 3)   // invariant operand
	b.Label("loop")
	b.EmitOp(isa.OpXor, 3, 5, 5) // invariant: reuses every iteration
	b.EmitOp(isa.OpAnd, 4, 5, 5) // invariant: reuses every iteration
	b.EmitOp(isa.OpAdd, 2, 2, 5) // accumulator: never reuses
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	prog := b.MustBuild()

	cfg := core.BaseDIEIRB()
	cfg.MaxInsns = 2000
	c, err := core.New(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	// Trace a steady-state window: by cycle 400 the IRB is warm and the
	// invariant duplicates reuse every iteration.
	c.SetTracer(&core.TextTracer{W: &window{from: 400, to: 410}})
	if err := c.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsummary: %d instructions in %d cycles (IPC %.2f); "+
		"duplicate stream: %d reuse hits, %d ALU executions\n",
		c.Stats.Committed, c.Stats.Cycles, c.Stats.IPC(),
		c.Stats.IRBReuseHits, c.Stats.DupFUExec)
	fmt.Println(`
Reading the trace: "P" lines are primary-stream copies, "D" duplicates.
The invariant xor/and duplicates show "reuse" events — they never issue
to a functional unit — while the addi/add/bne duplicates issue normally.
Each architected instruction commits once, after both copies agree.`)
}

// window forwards trace lines whose leading cycle falls in [from, to].
type window struct {
	from, to int
}

func (w *window) Write(p []byte) (int, error) {
	var cyc int
	if _, err := fmt.Sscan(string(p), &cyc); err == nil && cyc >= w.from && cyc <= w.to {
		os.Stdout.Write(p)
	}
	return len(p), nil
}
