package analysis

import (
	"math"

	"repro/internal/isa"
	"repro/internal/program"
)

// The static IRB-reuse predictor. The IRB serves a duplicate execution
// when the instruction's PC hits the buffer and the cached operand tuple
// matches (Parashar et al., ISCA 2004); dynamically that depends on how
// often a static instruction repeats with identical operands. "Decanting
// the Contribution of Instruction Types and Loop Structures in the Reuse
// of Traces" observes that this is largely predictable from static
// structure, which is what this pass exploits: per static instruction it
// estimates (a) how often the instruction executes (loop depth), (b) how
// likely its operands are to repeat (operand invariance class and the
// data segment's value locality), and (c) whether a direct-mapped IRB can
// retain the entry (set-conflict pressure), then aggregates to a
// predicted per-program reuse rate and per-FU-class demand profile.

// PredictorConfig sets the IRB geometry the prediction assumes and the
// model constants. The zero value is invalid; use DefaultPredictorConfig.
type PredictorConfig struct {
	// IRBEntries and IRBAssoc describe the reuse buffer being predicted
	// for (the paper's base machine: 1024 entries, direct-mapped).
	IRBEntries int
	IRBAssoc   int

	// LoopWeightBase is the assumed trip count of a loop whose trip
	// count cannot be recovered statically; loops with a recoverable
	// decrement-to-zero counter use the real value instead.
	LoopWeightBase float64

	// TripClamp bounds the per-loop frequency multiplier so that one
	// huge outer loop cannot drown every other weight.
	TripClamp float64

	// PInvariant is the reuse probability of an instruction whose
	// operands are loop-invariant in its innermost loop: it repeats the
	// same tuple every iteration, missing only on cold and displaced
	// entries.
	PInvariant float64

	// PInduction is the reuse probability of an instruction fed by an
	// induction/accumulator chain: its operands evolve monotonically and
	// essentially never repeat consecutively.
	PInduction float64

	// PLoadMax scales the reuse probability of load-fed instructions; it
	// is multiplied by the data segment's value-repeat likelihood.
	PLoadMax float64

	// TRBEntries, TRBMaxBlockLen and TRBMaxLiveIn describe the trace
	// reuse buffer being predicted for (DIE-TRB's defaults: 256 entries
	// direct-mapped by window entry PC, windows of up to 16 instructions
	// and 8 live-in registers). TRBEntries <= 0 disables the trace-level
	// prediction (TraceReuseRate stays 0).
	TRBEntries     int
	TRBMaxBlockLen int
	TRBMaxLiveIn   int
}

// DefaultPredictorConfig returns the model tuned against the measured
// reuse of the paper's base 1024-entry direct-mapped DIE-IRB machine (see
// the experiments cross-validation test).
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{
		IRBEntries:     1024,
		IRBAssoc:       1,
		LoopWeightBase: 16,
		TripClamp:      4096,
		PInvariant:     0.95,
		PInduction:     0.02,
		PLoadMax:       0.45,
		TRBEntries:     256,
		TRBMaxBlockLen: 16,
		TRBMaxLiveIn:   8,
	}
}

// Prediction is the predictor's aggregate output for one program.
type Prediction struct {
	// ReuseRate is the predicted fraction of reuse-eligible executions
	// served by the IRB, comparable to sim.Result.ReuseRate.
	ReuseRate float64

	// ClassDemand is the predicted fraction of functional-unit issue
	// demand per FU class (loop-frequency weighted); address generation
	// for memory operations lands on the IntALU class, as in the core.
	ClassDemand [isa.NumFUClasses]float64

	// HotInstrs is the number of static reuse-eligible instructions
	// inside loops — the IRB capacity the program asks for.
	HotInstrs int

	// ConflictRatio is the average number of hot instructions competing
	// per occupied IRB set (1.0 = conflict-free).
	ConflictRatio float64

	// ValueLocality is the data segment's value-repeat likelihood in
	// [0,1]: the probability proxy that two loads of this program's data
	// observe an already-seen value.
	ValueLocality float64

	// TraceReuseRate is the predicted fraction of committed instructions
	// whose duplicate a trace reuse buffer serves via a whole-window hit,
	// comparable to sim.Result.TraceReuseRate. It aggregates, over the
	// memoizable windows TraceBlocks extracts, the window length times a
	// hit probability (invariant live-ins repeat every iteration except
	// re-entry, discounted by entry-PC set conflicts), against the total
	// loop-weighted instruction volume.
	TraceReuseRate float64

	// TraceWindows is the number of static memoizable windows found — the
	// TRB capacity the program asks for.
	TraceWindows int
}

// Operand variance classes, ordered by severity: an instruction's class
// is the worst class among its source operands.
type varClass uint8

const (
	classInvariant varClass = iota // defined outside the innermost loop
	classLoad                      // derived from in-loop memory loads
	classInduction                 // loop-carried self-dependence
)

func predict(g *CFG, cfg PredictorConfig) Prediction {
	var p Prediction
	p.ValueLocality = valueLocality(g.Prog)

	// Classify, per innermost loop, how every instruction's operand tuple
	// varies across that loop's iterations.
	classes := make([]map[uint64]varClass, len(g.Loops))
	for i := range g.Loops {
		classes[i] = loopInstrClasses(g, &g.Loops[i])
	}

	// Conflict pressure: hot (in-loop, reuse-eligible) static
	// instructions competing for IRB sets, direct-mapped by PC.
	sets := cfg.IRBEntries / max(cfg.IRBAssoc, 1)
	setPop := make(map[uint64]int)
	for _, b := range g.Blocks {
		if !b.Reachable || b.LoopDepth == 0 {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			if reuseEligible(g.Prog.Code[pc]) {
				p.HotInstrs++
				setPop[pc%uint64(sets)]++
			}
		}
	}
	if len(setPop) > 0 {
		p.ConflictRatio = float64(p.HotInstrs) / float64(len(setPop))
	} else {
		p.ConflictRatio = 1
	}

	// Per-loop frequency multiplier: the recovered trip count where the
	// counter idiom is statically visible, the model default otherwise. A
	// block's execution weight is the product over its containing loops.
	mult := make([]float64, len(g.Loops))
	for i := range g.Loops {
		mult[i] = weightTrip(g, cfg, &g.Loops[i])
	}
	weight := make([]float64, len(g.Blocks))
	for i := range weight {
		weight[i] = 1
	}
	for i := range g.Loops {
		for _, id := range g.Loops[i].Blocks {
			weight[id] = min(weight[id]*mult[i], 1e12)
		}
	}

	var wReuse, wEligible, wTotal float64
	var classW [isa.NumFUClasses]float64
	for _, b := range g.Blocks {
		if !b.Reachable {
			continue
		}
		w := weight[b.ID]
		loop := g.InnermostLoop(b)
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Prog.Code[pc]
			oi := in.Op.Info()
			if oi.Class != isa.FUNone {
				classW[oi.Class] += w
				wTotal += w
			}
			if !reuseEligible(in) {
				continue
			}
			wEligible += w
			if loop == nil {
				continue // executes at most once: no repetition to reuse
			}
			pr := cfg.reuseProb(classes[loop.ID][pc],
				p.ValueLocality, mult[loop.ID])
			// A direct-mapped set shared by k hot instructions
			// retains each entry roughly 1/k of the time.
			if k := setPop[pc%uint64(sets)]; k > 1 {
				pr /= float64(k)
			}
			wReuse += w * pr
		}
	}
	if wEligible > 0 {
		p.ReuseRate = wReuse / wEligible
	}
	if wTotal > 0 {
		for c := range classW {
			p.ClassDemand[c] = classW[c] / wTotal
		}
	}
	p.TraceReuseRate, p.TraceWindows = predictTraceReuse(g, cfg, weight)
	return p
}

// predictTraceReuse estimates the fraction of committed instructions a
// trace reuse buffer would serve via whole-window hits — the static
// analogue of TRBInstrSkipped/Committed. Each memoizable window
// (TraceBlocks) has loop-invariant live-ins by construction, so it hits
// on every iteration of its innermost loop except re-entry
// (PInvariant x (trip-1)/trip), discounted when k windows share one
// direct-mapped TRB set (each retained roughly 1/k of the time). The
// served instruction weight — window weight x window length x hit
// probability — is normalized by the total loop-weighted instruction
// volume.
func predictTraceReuse(g *CFG, cfg PredictorConfig, weight []float64) (float64, int) {
	if cfg.TRBEntries <= 0 || cfg.TRBMaxBlockLen < 2 || cfg.TRBMaxLiveIn < 1 {
		return 0, 0
	}
	windows := TraceBlocks(g, cfg.TRBMaxBlockLen, cfg.TRBMaxLiveIn)
	if len(windows) == 0 {
		return 0, 0
	}
	setPop := make(map[uint64]int, len(windows))
	for _, w := range windows {
		setPop[w.Entry%uint64(cfg.TRBEntries)]++
	}
	var wServed float64
	for _, w := range windows {
		b := g.BlockAt(w.Entry)
		loop := g.InnermostLoop(b)
		if loop == nil {
			continue // TraceBlocks only emits in-loop windows
		}
		trip := weightTrip(g, cfg, loop)
		pr := cfg.PInvariant * (1 - 1/max(trip, 1))
		if k := setPop[w.Entry%uint64(cfg.TRBEntries)]; k > 1 {
			pr /= float64(k)
		}
		wServed += weight[b.ID] * float64(w.Len) * pr
	}
	var wAll float64
	for _, b := range g.Blocks {
		if b.Reachable {
			wAll += weight[b.ID] * float64(b.End-b.Start)
		}
	}
	if wAll == 0 {
		return 0, len(windows)
	}
	return wServed / wAll, len(windows)
}

// weightTrip is the per-iteration frequency multiplier predict assigns a
// loop: the statically recovered trip count clamped to TripClamp, or the
// model default when the counter idiom is not visible.
func weightTrip(g *CFG, cfg PredictorConfig, l *Loop) float64 {
	if t := loopTrip(g, l); t > 0 {
		return min(t, cfg.TripClamp)
	}
	return cfg.LoopWeightBase
}

// reuseProb maps an operand variance class to a reuse probability. An
// invariant tuple still changes when the surrounding loop re-enters (its
// out-of-loop inputs are recomputed), so it hits at most (trip-1)/trip.
func (cfg PredictorConfig) reuseProb(c varClass, locality, trip float64) float64 {
	switch c {
	case classInvariant:
		return cfg.PInvariant * (1 - 1/max(trip, 1))
	case classInduction:
		return cfg.PInduction
	default:
		return cfg.PLoadMax * locality
	}
}

// loopTrip statically recovers the loop's trip count when it uses the
// decrement-to-zero counter idiom the workload generator (and hand-written
// kernels) emit: a single back-edge branch `BNE c, r0, header`, exactly one
// in-loop update `ADDI c, c, -step`, and every out-of-loop definition of c
// being the same `ADDI c, r0, K`. Returns 0 when the pattern doesn't hold.
func loopTrip(g *CFG, l *Loop) float64 {
	header := g.Blocks[l.Header].Start
	member := make(map[int]bool, len(l.Blocks))
	for _, id := range l.Blocks {
		member[id] = true
	}
	var counter isa.Reg
	found := false
	for _, id := range l.Blocks {
		b := g.Blocks[id]
		last := g.Prog.Code[b.End-1]
		t, ok := last.StaticTarget(b.End - 1)
		if !ok || t != header {
			continue
		}
		if last.Op != isa.OpBne {
			return 0
		}
		var c isa.Reg
		switch {
		case last.Src2 == isa.ZeroReg && last.Src1 != isa.ZeroReg:
			c = last.Src1
		case last.Src1 == isa.ZeroReg && last.Src2 != isa.ZeroReg:
			c = last.Src2
		default:
			return 0
		}
		if found && c != counter {
			return 0
		}
		counter, found = c, true
	}
	if !found {
		return 0
	}
	var step int64
	for _, id := range l.Blocks {
		b := g.Blocks[id]
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Prog.Code[pc]
			if d, ok := in.DestReg(); !ok || d != counter {
				continue
			}
			if in.Op != isa.OpAddi || in.Src1 != counter ||
				int64(in.Imm) >= 0 || step != 0 {
				return 0
			}
			step = -int64(in.Imm)
		}
	}
	if step == 0 {
		return 0
	}
	init := int64(-1)
	for _, b := range g.Blocks {
		if !b.Reachable || member[b.ID] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Prog.Code[pc]
			if d, ok := in.DestReg(); !ok || d != counter {
				continue
			}
			if in.Op != isa.OpAddi || in.Src1 != isa.ZeroReg {
				return 0
			}
			k := int64(in.Imm)
			if k <= 0 || (init >= 0 && k != init) {
				return 0
			}
			init = k
		}
	}
	if init <= 0 {
		return 0
	}
	return math.Ceil(float64(init) / float64(step))
}

// reuseEligible mirrors the core's IRB admission rule: everything that
// produces a checkable outcome (a destination value, a memory address, a
// branch decision) except NOP and HALT.
func reuseEligible(in isa.Instr) bool {
	if in.Op == isa.OpNop || in.Op == isa.OpHalt {
		return false
	}
	oi := in.Op.Info()
	return oi.HasDest || oi.IsMem() || oi.IsCtrl()
}

// loopInstrClasses classifies, for every instruction in the loop body, how
// its source operand tuple varies across loop iterations: loop-carried
// chains (induction/accumulators, including cross-register recurrences
// like Fibonacci's rotate), load-derived values, or invariant recomputation
// from values defined outside the loop. It is a flow-sensitive abstract
// interpretation in program order: the register state map reflects each
// instruction's program point, so a register that briefly carries a loaded
// value and is then overwritten with an invariant recomputation does not
// poison later readers. A read of an in-loop-defined register before its
// in-iteration definition observes the previous iteration's value and is
// loop-carried directly, so one pass reaches the fixpoint.
func loopInstrClasses(g *CFG, l *Loop) map[uint64]varClass {
	inLoopDefs := map[isa.Reg]bool{}
	for _, id := range l.Blocks {
		b := g.Blocks[id]
		for pc := b.Start; pc < b.End; pc++ {
			if d, ok := g.Prog.Code[pc].DestReg(); ok && d != isa.ZeroReg {
				inLoopDefs[d] = true
			}
		}
	}
	out := make(map[uint64]varClass)
	cur := map[isa.Reg]varClass{}
	defined := map[isa.Reg]bool{}
	for _, id := range l.Blocks {
		b := g.Blocks[id]
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Prog.Code[pc]
			var c varClass
			srcs, n := in.SrcRegs()
			for i := 0; i < n; i++ {
				s := srcs[i]
				if s == isa.ZeroReg {
					continue
				}
				if inLoopDefs[s] && !defined[s] {
					// Reads the previous iteration's value:
					// loop-carried chain.
					c = classInduction
					break
				}
				if sc := cur[s]; sc > c {
					c = sc
				}
			}
			out[pc] = c
			if d, ok := in.DestReg(); ok && d != isa.ZeroReg {
				if in.Op.Info().IsLoad {
					cur[d] = classLoad
				} else {
					cur[d] = c
				}
				defined[d] = true
			}
		}
	}
	return out
}

// valueLocality estimates, from the initial data segment, how likely two
// consecutive loads at one PC observe the same value. The IRB caches only
// the last operand tuple per static instruction, so what matters is the
// collision probability of two independent draws from the data's value
// distribution: sum of squared frequencies (1/k for k uniform distinct
// values). The square root folds in that repeated values also cluster
// positionally in real access patterns (sequential sweeps re-touch runs of
// equal values), which pure draw-independence underestimates. Programs
// with no data default to zero locality.
func valueLocality(p *program.Program) float64 {
	if len(p.Data) == 0 {
		return 0
	}
	counts := map[uint64]int{}
	for _, v := range p.Data {
		counts[v]++
	}
	total := float64(len(p.Data))
	var collide float64
	for _, c := range counts {
		f := float64(c) / total
		collide += f * f
	}
	return math.Sqrt(collide)
}
