package runner

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/workload"
)

// Fingerprinter is implemented by run add-ons — today fault injectors —
// whose effect on a simulation is fully determined by a serializable spec.
// Two freshly-constructed values with equal fingerprints must steer
// identical runs identically; a job carrying an add-on that cannot promise
// this is uncacheable. The string should name its type to keep specs of
// different kinds from colliding.
type Fingerprinter interface {
	Fingerprint() string
}

// ErrUncacheable reports that a job's result cannot be keyed: some input
// (an injector without a Fingerprint, typically) is not reducible to a
// canonical spec. Uncacheable jobs still run; they just never hit or fill
// Options.Cache.
var ErrUncacheable = errors.New("runner: job is not cacheable")

// optsKey is the canonical projection of sim.Options into the
// fingerprint. It is a package-level type so the completeness test can
// hold it against sim.Options by reflection: every exported Options
// field must appear here by name or in that test's documented exclusion
// set, which is how a future Options field fails the test instead of
// silently aliasing distinct results in the cache.
type optsKey struct {
	Insns       uint64
	Verify      bool
	FastForward uint64
	Seed        uint64
	Injector    string `json:",omitempty"`
	Program     string `json:",omitempty"`
}

// Fingerprint returns a stable content hash identifying everything that
// determines the job's simulation outcome: the machine configuration, the
// workload profile, the run options, the exact program when one is
// pinned, and the fault campaign spec when an injector is attached.
// Simulation is deterministic in these inputs, so equal fingerprints mean
// bit-identical results — the property the serving layer's result cache is
// built on, the way the IRB's PC+operand key means a reusable result.
//
// Deliberately excluded: Job.Name (a display label, rewritten on cache
// hits), Options.Trace (replay is bit-identical to interpretation by
// construction), and anything observational (progress callbacks).
func (j Job) Fingerprint() (string, error) {
	ok := optsKey{
		Insns:       j.Opts.Insns,
		Verify:      j.Opts.Verify,
		FastForward: j.Opts.FastForward,
		Seed:        j.Opts.Seed,
	}
	if j.Opts.Injector != nil {
		fp, is := j.Opts.Injector.(Fingerprinter)
		if !is {
			return "", fmt.Errorf("%w: injector %T has no Fingerprint", ErrUncacheable, j.Opts.Injector)
		}
		ok.Injector = fp.Fingerprint()
	}
	if j.Opts.Program != nil {
		ok.Program = programDigest(j.Opts.Program)
	}
	payload := struct {
		Config  core.Config
		Profile workload.Profile
		Opts    optsKey
	}{j.Config, j.Profile, ok}
	// JSON with sorted struct fields and map keys is canonical enough:
	// every keyed type here is plain exported data.
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("runner: fingerprinting job: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// programDigest hashes a pinned program's full content: name, entry, code
// image and initial data segment (in address order).
func programDigest(p *program.Program) string {
	h := sha256.New()
	h.Write([]byte(p.Name))
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], p.Entry)
	h.Write(w[:])
	for _, word := range p.Image() {
		binary.LittleEndian.PutUint64(w[:], word)
		h.Write(w[:])
	}
	addrs := make([]uint64, 0, len(p.Data))
	for a := range p.Data {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, k int) bool { return addrs[i] < addrs[k] })
	for _, a := range addrs {
		binary.LittleEndian.PutUint64(w[:], a)
		h.Write(w[:])
		binary.LittleEndian.PutUint64(w[:], p.Data[a])
		h.Write(w[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
