// Package a exercises the errcontract pass: fmt.Errorf without %w must
// fire at the API boundary; wrapped causes, sentinel wraps, named error
// types and annotated exceptions must not.
package a

import (
	"errors"
	"fmt"
)

// ErrBudget is the package sentinel messages with no cause wrap.
var ErrBudget = errors.New("a: budget exhausted")

// flattened severs the error chain: forbidden.
func flattened(err error) error {
	return fmt.Errorf("running job: %v", err) // want "fmt.Errorf without %w"
}

// bareMessage has no cause and no sentinel: forbidden (make it a
// sentinel or a named type).
func bareMessage(n int) error {
	return fmt.Errorf("a: %d cells over budget", n) // want "fmt.Errorf without %w"
}

// dynamicFormat cannot be audited at all: forbidden.
func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err) // want "non-literal format"
}

// wrapped keeps the chain intact: allowed.
func wrapped(err error) error {
	return fmt.Errorf("running job: %w", err)
}

// sentinelWrapped attaches context to a programmable sentinel: allowed.
func sentinelWrapped(n int) error {
	return fmt.Errorf("%d cells over budget: %w", n, ErrBudget)
}

// JobError is a named structured error type: constructing it is the
// other sanctioned shape, and its Error method may format freely because
// fmt.Sprintf is not fmt.Errorf.
type JobError struct {
	Job string
	Seq uint64
	Err error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("job %s failed at seq %d: %v", e.Job, e.Seq, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

func named(job string, seq uint64, err error) error {
	return &JobError{Job: job, Seq: seq, Err: err}
}

// exempted flattens deliberately and says why: allowed.
func exempted(err error) error {
	//errcontract:exempt the wire format embeds the rendered message; clients parse the code, not the chain
	return fmt.Errorf("wire: %v", err)
}
