package trb

import (
	"testing"
)

// The fuzz model: every recording's signatures are a fixed function of
// (entry pc, live-in values), mirroring the architectural fact the TRB
// leans on — a window's output signatures are a pure function of its
// entry PC and live-ins. Any hit the buffer ever returns can therefore be
// checked two ways: against an exact shadow of the direct-mapped array
// (no false hit, no resurrection after Invalidate), and by recomputing
// the block scalar from the probed live-ins (served signatures are the
// function of the values the hit matched on).
func modelScalar(pc uint64, live []uint64) uint64 {
	s := pc*0x100000001b3 + 0x9e3779b97f4a7c15
	for _, v := range live {
		s = (s ^ v) * 0x100000001b3
	}
	return s
}

func modelSig(scalar uint64, j int) uint64 {
	return scalar + uint64(j)*0x9e3779b97f4a7c15
}

// shadowRec mirrors one direct-mapped slot of the buffer.
type shadowRec struct {
	pc   uint64
	live []uint64
	sigs []uint64
}

// FuzzTRBLookup drives a small TRB through an arbitrary
// insert/lookup/invalidate sequence and holds it to an exact shadow of
// its direct-mapped state:
//
//   - a lookup hits iff the shadow slot holds that PC with exactly the
//     probed live-in values, and then serves exactly the shadowed
//     signatures (no false hit);
//   - every served signature recomputes from (pc, probed live-ins) via
//     the model function (a hit can never smuggle in state the live-in
//     key does not capture);
//   - after Invalidate the slot is empty until a fresh Insert, so
//     scrubbed recordings and their stale live-ins never resurrect;
//   - over-geometry recordings are rejected without disturbing the slot.
func FuzzTRBLookup(f *testing.F) {
	// Config probe + insert/lookup/invalidate over colliding PCs
	// (entries=4 puts pc 1, 5, 9, 13 in one slot).
	f.Add([]byte{0, 2,
		0, 1, 5, 0, 1, 1, 5, 0, 0, 5, 9, 0, 1, 1, 5, 0, 1, 5, 9, 0,
		2, 5, 0, 0, 1, 5, 9, 0, 0, 1, 6, 0, 1, 1, 5, 1})
	f.Add([]byte{1, 4, 0, 13, 7, 0, 2, 13, 0, 0, 1, 13, 7, 0, 0, 13, 8, 0, 1, 13, 7, 0, 7, 13, 1, 0})
	f.Add([]byte("fuzzing the trace reuse buffer"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		cfg := Config{
			Entries:     4 << (data[0] % 3), // 4, 8 or 16
			MaxBlockLen: 2 + int(data[1]%7), // 2..8
			MaxLiveIn:   1 + int(data[1]%4), // 1..4
			LookupLat:   1 + int(data[0]%4),
		}
		b, err := New(cfg)
		if err != nil {
			t.Fatalf("derived config %+v rejected: %v", cfg, err)
		}
		shadow := make([]shadowRec, cfg.Entries)

		// makeRec derives the recording an insert/probe with (pc, vb)
		// would use: live-in count, values and signatures are all fixed
		// functions of the two bytes.
		makeRec := func(pc uint64, vb byte) ([]uint64, []uint64) {
			nLive := 1 + int(vb)%cfg.MaxLiveIn
			live := make([]uint64, nLive)
			for k := range live {
				live[k] = uint64(vb)*0xdeadbeef + pc<<8 + uint64(k)
			}
			scalar := modelScalar(pc, live)
			sigs := make([]uint64, 2+int(vb)%(cfg.MaxBlockLen-1))
			for j := range sigs {
				sigs[j] = modelSig(scalar, j)
			}
			return live, sigs
		}

		for i := 2; i+3 < len(data); i += 4 {
			op, pcb, vb, pert := data[i], data[i+1], data[i+2], data[i+3]
			pc := uint64(pcb % 32) // small PC space to force conflicts
			slot := int(pc) & (cfg.Entries - 1)
			switch op % 4 {
			case 0, 3: // insert (biased: reuse needs residency)
				live, sigs := makeRec(pc, vb)
				if op%8 == 7 {
					// Over-geometry recording: must be rejected and
					// must not disturb the shadowed slot.
					long := make([]uint64, cfg.MaxBlockLen+1)
					if b.Insert(pc, live, long) {
						t.Fatalf("Insert accepted %d sigs with MaxBlockLen %d", len(long), cfg.MaxBlockLen)
					}
					break
				}
				if !b.Insert(pc, live, sigs) {
					t.Fatalf("in-geometry Insert rejected: pc=%d live=%d sigs=%d", pc, len(live), len(sigs))
				}
				shadow[slot] = shadowRec{pc: pc, live: live, sigs: sigs}
			case 1: // lookup, then verify against the shadow
				live, _ := makeRec(pc, vb)
				if pert%4 == 0 && len(live) > 0 {
					live[int(pert)%len(live)] ^= 1 + uint64(pert)
				}
				got, hit := b.Lookup(pc, live)
				want := shadow[slot]
				wantHit := want.pc == pc && len(want.live) > 0 && equalU64(want.live, live)
				if hit != wantHit {
					t.Fatalf("pc=%d live=%v: hit=%v, shadow says %v (slot holds %+v)", pc, live, hit, wantHit, want)
				}
				if !hit {
					break
				}
				if !equalU64(got, want.sigs) {
					t.Fatalf("pc=%d served %v, shadow recorded %v", pc, got, want.sigs)
				}
				scalar := modelScalar(pc, live)
				for j, s := range got {
					if s != modelSig(scalar, j) {
						t.Fatalf("pc=%d sig[%d]=%d does not recompute from the probed live-ins", pc, j, s)
					}
				}
			case 2: // scrub, as fault recovery would
				had := shadow[slot].pc == pc && len(shadow[slot].live) > 0
				if b.Invalidate(pc) != had {
					t.Fatalf("Invalidate(%d) = %v, shadow says %v", pc, !had, had)
				}
				if had {
					shadow[slot] = shadowRec{}
				}
			}
		}

		// The statistics must stay coherent with what we drove.
		st := b.Stats
		if st.Hits+st.TagMisses+st.ValMisses != st.Lookups {
			t.Fatalf("stats incoherent: %d hits + %d tag + %d val misses != %d lookups",
				st.Hits, st.TagMisses, st.ValMisses, st.Lookups)
		}
	})
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
