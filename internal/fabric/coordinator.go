package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/service/api"
	"repro/internal/sim"
)

// now is the fabric's single sanctioned wall-clock read: lease deadlines,
// heartbeat ages and backoff gates all flow through it, so tests freeze
// time and drive the lease state machine deterministically.
//
//determinism:exempt sole injected clock seam; lease deadlines and heartbeat ages only, tests substitute it
var now = time.Now

// CoordinatorConfig shapes the lease state machine. The zero value
// selects the documented defaults; NewCoordinator normalizes it.
type CoordinatorConfig struct {
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// renewal (default 10s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the renewal cadence told to workers
	// (default LeaseTTL/4).
	HeartbeatEvery time.Duration
	// SweepEvery is the expiry scan cadence of Start's background loop
	// (default LeaseTTL/4). Tests bypass it by calling Tick directly.
	SweepEvery time.Duration
	// DeadAfter is the missed-heartbeat budget: a worker silent for
	// DeadAfter*HeartbeatEvery is marked dead and its leases expire
	// immediately (default 3).
	DeadAfter int
	// LeaseBatch caps the cells granted per lease call (default 8).
	LeaseBatch int
	// MaxAttempts is the lease-expiry budget per cell: beyond it the cell
	// degrades to in-process execution instead of waiting on a fleet that
	// keeps losing it (default 5).
	MaxAttempts int
	// Backoff is the re-queue schedule for cells whose lease expired
	// (zero value = backoff.Default()).
	Backoff backoff.Policy
	// Seed seeds the jitter PRNG (0 = 1), keeping the retry schedule
	// replayable.
	Seed uint64
	// Local executes a cell in-process — the degraded mode when no
	// workers are live, a cell is not wire-shippable, or its retry budget
	// is exhausted. Defaults to the direct simulation path.
	Local func(ctx context.Context, j runner.Job) (sim.Result, error)
}

// RemoteCellError is the structured error of a cell a worker completed
// unsuccessfully: the simulation's own failure (a divergence, an
// escalated persistent fault), reported by the worker that ran it.
// Transport failures never take this shape — a worker that cannot report
// surfaces as a lease expiry and a retry instead.
type RemoteCellError struct {
	Worker string
	Msg    string
}

func (e *RemoteCellError) Error() string {
	return fmt.Sprintf("fabric: worker %s: %s", e.Worker, e.Msg)
}

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
)

// outcome settles one Execute call.
type outcome struct {
	res      sim.Result
	err      error
	cacheHit bool
	// local routes the waiting Execute back to in-process execution (the
	// fleet died or the retry budget ran out).
	local bool
}

type cell struct {
	id        uint64
	job       runner.Job
	wire      api.Cell
	key       string // ring + duplicate-identity key (fingerprint)
	attempts  int    // lease expiries suffered
	notBefore time.Time
	state     cellState
	leaseID   string
	done      chan outcome // cap 1; settled exactly once
	// resultJSON is the canonical serialization of the first accepted
	// result, against which any late duplicate completion is asserted
	// bit-identical (the PR-3 invariant, applied to the fabric).
	resultJSON []byte
}

type lease struct {
	id       string
	cellID   uint64
	worker   string
	deadline time.Time
}

type workerState struct {
	id       string
	lastSeen time.Time
	dead     bool
}

// Metrics is a consistent snapshot of the fabric counters, rendered by
// the service layer on /metrics.
type Metrics struct {
	WorkersLive, WorkersDead   int
	CellsPending, LeasesActive int

	LeaseExpiries        uint64 // leases that timed out
	CellsRetried         uint64 // cells re-queued after an expiry
	CellsCompleted       uint64 // cells settled by worker completions
	CellsLocal           uint64 // cells executed in-process (degraded mode)
	DeadWorkers          uint64 // dead-worker transitions
	DuplicateCompletions uint64 // late completions for already-settled cells
	RetryMismatches      uint64 // duplicates that were NOT bit-identical
	LateCompletions      uint64 // completions accepted after their lease expired
	IgnoredCompletions   uint64 // completions for cells no longer tracked
}

// Coordinator shards grid cells across pull-based workers and survives
// their crashes: every granted cell is covered by a heartbeat-renewed
// lease, an expired lease re-queues the cell with capped jittered
// backoff, and a fleet with no live workers degrades to in-process
// execution. It plugs into the grid runner as its Execute seam, so the
// planner, result cache, progress reporting and error capture above it
// are exactly the standalone daemon's.
type Coordinator struct {
	cfg CoordinatorConfig

	mu       sync.Mutex
	rng      *rand.Rand
	cells    map[uint64]*cell
	pending  []uint64 // cell IDs, FIFO; done/leased entries are skipped lazily
	leases   map[string]*lease
	workers  map[string]*workerState
	live     int // workers not marked dead
	ring     *ring
	nextCell uint64
	nextLse  uint64
	met      Metrics
}

// NewCoordinator builds a Coordinator, applying defaults for zero
// config fields.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.LeaseTTL / 4
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = cfg.LeaseTTL / 4
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	if cfg.LeaseBatch <= 0 {
		cfg.LeaseBatch = 8
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Backoff == (backoff.Policy{}) {
		cfg.Backoff = backoff.Default()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.Local == nil {
		cfg.Local = localRun
	}
	return &Coordinator{
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(seed, 0xfab51c)),
		cells:   make(map[uint64]*cell),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerState),
		ring:    newRing(nil),
	}
}

// localRun is the default in-process execution path: the plain
// deterministic simulation call, bit-identical to what a worker would
// have produced.
func localRun(ctx context.Context, j runner.Job) (sim.Result, error) {
	return sim.RunContext(ctx, j.Name, j.Config, j.Profile, j.Opts)
}

// Start launches the background expiry sweeper; it stops when ctx ends.
func (c *Coordinator) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(c.cfg.SweepEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
}

// Metrics returns a snapshot of the fabric counters.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.met
	m.WorkersLive = c.live
	m.WorkersDead = len(c.workers) - c.live
	for _, id := range c.pending {
		if cl, ok := c.cells[id]; ok && cl.state == cellPending {
			m.CellsPending++
		}
	}
	m.LeasesActive = len(c.leases)
	return m
}

// Execute is the runner's dispatch seam: it ships one cell to the worker
// fleet and blocks until the cell settles — surviving lease expiries,
// retries and worker deaths along the way — or falls back to in-process
// execution when the fleet cannot take the cell. Safe for concurrent use
// by the runner's worker pool.
func (c *Coordinator) Execute(ctx context.Context, j runner.Job) (sim.Result, error) {
	cl, remote := c.enqueue(j)
	if !remote {
		return c.runLocal(ctx, j)
	}
	select {
	case out := <-cl.done:
		if out.local {
			// The fleet vanished or the retry budget ran out: the sweep
			// handed the cell back for in-process execution.
			return c.runLocal(ctx, j)
		}
		return out.res, out.err
	case <-ctx.Done():
		c.abandon(cl)
		return sim.Result{}, ctx.Err()
	}
}

// runLocal executes one cell in-process (the degraded mode) and counts it.
func (c *Coordinator) runLocal(ctx context.Context, j runner.Job) (sim.Result, error) {
	c.mu.Lock()
	c.met.CellsLocal++
	c.mu.Unlock()
	return c.cfg.Local(ctx, j)
}

// enqueue registers one cell for remote execution, or reports
// remote=false when the cell must run in-process (no live workers, or
// the job cannot cross the wire).
func (c *Coordinator) enqueue(j runner.Job) (*cell, bool) {
	wire, shippable := cellFromJob(j)
	if !shippable {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.live == 0 {
		return nil, false
	}
	c.nextCell++
	cl := &cell{
		id:   c.nextCell,
		job:  j,
		wire: wire,
		key:  wire.Fingerprint,
		done: make(chan outcome, 1),
	}
	cl.wire.ID = cl.id
	c.cells[cl.id] = cl
	c.pending = append(c.pending, cl.id)
	return cl, true
}

// abandon drops a cell whose Execute caller is gone (run cancelled); a
// late completion for it is counted as ignored.
func (c *Coordinator) abandon(cl *cell) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl.leaseID != "" {
		delete(c.leases, cl.leaseID)
	}
	delete(c.cells, cl.id)
}

// rebuildRingLocked recomputes the consistent-hash ring from the live
// worker set (collect-then-sort, so map order never escapes).
func (c *Coordinator) rebuildRingLocked() {
	var ids []string
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	live := ids[:0]
	for _, id := range ids {
		if !c.workers[id].dead {
			live = append(live, id)
		}
	}
	c.ring = newRing(live)
}

// Lease grants a batch of pending cells to the calling worker,
// registering (or reviving) it on the way. Cells whose ring owner is the
// caller are granted first — the affinity that makes each worker's
// content-addressed cache a shard of one distributed tier — but a worker
// with no owned cells steals others' so no cell waits on a busy owner.
func (c *Coordinator) Lease(req api.LeaseRequest) api.LeaseResponse {
	t := now()
	c.mu.Lock()
	defer c.mu.Unlock()

	w, ok := c.workers[req.Worker]
	if !ok {
		w = &workerState{id: req.Worker, dead: true} // revived just below
		c.workers[req.Worker] = w
	}
	if w.dead {
		w.dead = false
		c.live++
		c.rebuildRingLocked()
	}
	w.lastSeen = t

	max := req.Max
	if max <= 0 || max > c.cfg.LeaseBatch {
		max = c.cfg.LeaseBatch
	}

	// Partition the eligible pending cells into ring-owned and stealable,
	// preserving queue order within each class; compact the queue on the
	// way (settled and leased entries drop out here).
	var owned, other, keep []uint64
	for _, id := range c.pending {
		cl, okc := c.cells[id]
		if !okc || cl.state != cellPending {
			continue
		}
		if cl.notBefore.After(t) {
			keep = append(keep, id)
			continue
		}
		if c.ring.owner(cl.ringKey()) == req.Worker {
			owned = append(owned, id)
		} else {
			other = append(other, id)
		}
	}
	grant := owned
	if len(grant) < max {
		grant = append(grant, other...)
	} else {
		other = append([]uint64(nil), other...)
		keep = append(keep, other...)
	}
	if len(grant) > max {
		keep = append(keep, grant[max:]...)
		grant = grant[:max]
	}
	sort.Slice(keep, func(a, b int) bool { return keep[a] < keep[b] })
	c.pending = keep

	resp := api.LeaseResponse{
		TTLMillis:       c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMillis: c.cfg.HeartbeatEvery.Milliseconds(),
		PollMillis:      c.cfg.SweepEvery.Milliseconds(),
	}
	for _, id := range grant {
		cl := c.cells[id]
		c.nextLse++
		lid := fmt.Sprintf("lease-%08d", c.nextLse)
		cl.state, cl.leaseID = cellLeased, lid
		c.leases[lid] = &lease{id: lid, cellID: id, worker: req.Worker, deadline: t.Add(c.cfg.LeaseTTL)}
		resp.Leases = append(resp.Leases, api.Lease{ID: lid, Cell: cl.wire})
	}
	return resp
}

// ringKey is the cell's consistent-hash key: the fingerprint when the
// cell is cacheable (so cache affinity holds), otherwise a stable
// fallback from its identity.
func (cl *cell) ringKey() string {
	if cl.key != "" {
		return cl.key
	}
	return cl.wire.Name + "/" + cl.wire.Profile.Name
}

// Heartbeat renews the worker's liveness and every lease it holds.
// Known=false tells a worker the coordinator no longer tracks it (a
// restart or a dead-worker expiry): its leases are gone, and whatever it
// still completes will be deduplicated.
func (c *Coordinator) Heartbeat(req api.HeartbeatRequest) api.HeartbeatResponse {
	t := now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[req.Worker]
	if !ok || w.dead {
		return api.HeartbeatResponse{Known: false}
	}
	w.lastSeen = t
	var ids []string
	for id := range c.leases {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if l := c.leases[id]; l.worker == req.Worker {
			l.deadline = t.Add(c.cfg.LeaseTTL)
		}
	}
	return api.HeartbeatResponse{Known: true}
}

// Complete settles a batch of finished cells. A completion whose lease
// expired is still accepted if the cell has not been settled elsewhere
// (a retry avoided); one for an already-settled cell is asserted
// bit-identical to the accepted result and discarded — a retried cell
// that differed from its first try would be a determinism bug, and it is
// counted, never silently dropped.
func (c *Coordinator) Complete(req api.CompleteRequest) api.CompleteResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	var resp api.CompleteResponse
	for _, comp := range req.Cells {
		var cl *cell
		if l, ok := c.leases[comp.LeaseID]; ok {
			cl = c.cells[l.cellID]
		} else if cand, ok := c.cells[comp.CellID]; ok {
			cl = cand
		}
		if cl == nil {
			c.met.IgnoredCompletions++
			continue
		}
		if cl.state == cellDone {
			c.met.DuplicateCompletions++
			if !bytesEqual(cl.resultJSON, canonicalResult(comp)) {
				c.met.RetryMismatches++
			}
			resp.Duplicates++
			continue
		}
		if cl.leaseID != "" && cl.leaseID != comp.LeaseID {
			// The cell was re-leased after this worker's lease expired;
			// its late completion wins the race and the re-leasing
			// worker's copy will arrive as the duplicate.
			delete(c.leases, cl.leaseID)
		}
		if _, ok := c.leases[comp.LeaseID]; !ok && comp.LeaseID != "" {
			c.met.LateCompletions++
		}
		delete(c.leases, comp.LeaseID)
		cl.state, cl.leaseID = cellDone, ""
		cl.resultJSON = canonicalResult(comp)
		out := outcome{cacheHit: comp.CacheHit}
		if comp.Error != "" {
			out.err = &RemoteCellError{Worker: req.Worker, Msg: comp.Error}
		} else if comp.Result != nil {
			out.res = *comp.Result
			out.res.Config = cl.job.Name // display name, as the cache does
		}
		cl.done <- out
		c.met.CellsCompleted++
		resp.Accepted++
	}
	return resp
}

// canonicalResult serializes a completion's payload for the
// bit-identity assertion between a first-try and a retried completion.
func canonicalResult(comp api.CellCompletion) []byte {
	b, err := json.Marshal(struct {
		Result *sim.Result `json:"result,omitempty"`
		Error  string      `json:"error,omitempty"`
	}{comp.Result, comp.Error})
	if err != nil {
		return nil
	}
	return b
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Tick runs one expiry sweep: workers past their missed-heartbeat budget
// are marked dead, expired leases re-queue their cells with capped
// jittered backoff, and cells whose retry budget is gone — or that have
// no live workers left to go to — are routed back to their waiting
// Execute for in-process execution. Start drives it on a timer;
// tests call it directly under a frozen clock.
func (c *Coordinator) Tick() {
	t := now()
	c.mu.Lock()
	defer c.mu.Unlock()

	// Dead workers first, so their leases expire in the same sweep.
	deadline := time.Duration(c.cfg.DeadAfter) * c.cfg.HeartbeatEvery
	var wids []string
	for id := range c.workers {
		wids = append(wids, id)
	}
	sort.Strings(wids)
	ringStale := false
	for _, id := range wids {
		w := c.workers[id]
		if !w.dead && t.Sub(w.lastSeen) > deadline {
			w.dead = true
			c.live--
			c.met.DeadWorkers++
			ringStale = true
		}
	}
	if ringStale {
		c.rebuildRingLocked()
	}

	var lids []string
	for id := range c.leases {
		lids = append(lids, id)
	}
	sort.Strings(lids)
	live := c.live
	for _, lid := range lids {
		l := c.leases[lid]
		if !l.deadline.Before(t) && c.workers[l.worker] != nil && !c.workers[l.worker].dead {
			continue
		}
		delete(c.leases, lid)
		cl, ok := c.cells[l.cellID]
		if !ok || cl.state != cellLeased {
			continue
		}
		c.met.LeaseExpiries++
		cl.attempts++
		cl.leaseID = ""
		if cl.attempts > c.cfg.MaxAttempts || live == 0 {
			// Degrade: hand the cell back to its Execute for in-process
			// execution instead of queueing on a fleet that keeps losing
			// it.
			cl.state = cellDone
			delete(c.cells, cl.id)
			cl.done <- outcome{local: true}
			continue
		}
		cl.state = cellPending
		cl.notBefore = t.Add(c.cfg.Backoff.Delay(cl.attempts-1, c.rng))
		c.pending = append(c.pending, cl.id)
		c.met.CellsRetried++
	}
}

// cellFromJob projects a runner.Job onto the wire, or reports that the
// job cannot cross it (a pinned program, or a fault injector that is not
// reconstructible from a spec) and must run in-process.
func cellFromJob(j runner.Job) (api.Cell, bool) {
	if j.Opts.Program != nil {
		return api.Cell{}, false
	}
	wire := api.Cell{
		Name:        j.Name,
		Config:      j.Config,
		Profile:     j.Profile,
		Insns:       j.Opts.Insns,
		FastForward: j.Opts.FastForward,
		Seed:        j.Opts.Seed,
		Verify:      j.Opts.Verify,
	}
	if j.Opts.Injector != nil {
		inj, ok := j.Opts.Injector.(*fault.Injector)
		if !ok {
			return api.Cell{}, false
		}
		spec := inj.Spec()
		wire.Fault = &api.FaultSpec{
			Site:      string(spec.Site),
			Rate:      spec.Rate,
			Seed:      spec.Seed,
			MaxFaults: spec.MaxFaults,
		}
	}
	if key, err := j.Fingerprint(); err == nil {
		wire.Fingerprint = key
	}
	return wire, true
}

// JobFromCell rebuilds the runner.Job a wire cell describes — the worker
// side of cellFromJob. The rebuilt job fingerprints identically, so the
// worker's cache probe and the coordinator's sharding agree.
func JobFromCell(c api.Cell) (runner.Job, error) {
	opts := sim.Options{
		Insns:       c.Insns,
		Verify:      c.Verify,
		FastForward: c.FastForward,
		Seed:        c.Seed,
	}
	if c.Fault != nil {
		inj, err := fault.New(fault.Config{
			Site:      fault.Site(c.Fault.Site),
			Rate:      c.Fault.Rate,
			Seed:      c.Fault.Seed,
			MaxFaults: c.Fault.MaxFaults,
		})
		if err != nil {
			return runner.Job{}, fmt.Errorf("fabric: rebuilding cell %d injector: %w", c.ID, err)
		}
		opts.Injector = inj
	}
	return runner.Job{Name: c.Name, Config: c.Config, Profile: c.Profile, Opts: opts}, nil
}
