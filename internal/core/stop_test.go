package core

import (
	"errors"
	"testing"

	"repro/internal/fsim"
)

// TestRequestStopHaltsRun stops a run from the OnCommit callback (the
// same cycle-granular path context cancellation uses) and checks the
// core returns ErrStopped with stats intact.
func TestRequestStopHaltsRun(t *testing.T) {
	c, err := New(BaseSIE(), loopProgram(100_000))
	if err != nil {
		t.Fatal(err)
	}
	c.OnCommit = func(rec *fsim.Retired) {
		if c.Stats.Committed >= 500 {
			c.RequestStop()
		}
	}
	if err := c.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run() = %v, want ErrStopped", err)
	}
	if c.Stats.Committed < 500 {
		t.Errorf("stopped after %d commits, want >= 500", c.Stats.Committed)
	}
	// The stop is cycle-granular: the run must not have drained the
	// whole 100k-iteration program.
	if c.Stats.Committed > 5_000 {
		t.Errorf("stop was not prompt: %d commits", c.Stats.Committed)
	}
	if c.Stats.Cycles == 0 {
		t.Error("Stats.Cycles not finalized on stop")
	}
}

// TestRequestStopBeforeRun is the degenerate case: a pre-stopped core
// returns immediately without simulating a cycle.
func TestRequestStopBeforeRun(t *testing.T) {
	c, err := New(BaseSIE(), loopProgram(1_000))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestStop()
	if err := c.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run() = %v, want ErrStopped", err)
	}
	if c.Stats.Committed != 0 {
		t.Errorf("pre-stopped core committed %d instructions", c.Stats.Committed)
	}
}

// TestAbortCarriesError checks Abort terminates the run and Run returns
// exactly the supplied error — the mechanism the verify oracle uses to
// surface a divergence instead of panicking.
func TestAbortCarriesError(t *testing.T) {
	c, err := New(BaseSIE(), loopProgram(100_000))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("divergence at seq 42")
	c.OnCommit = func(rec *fsim.Retired) {
		if rec.Seq == 42 {
			c.Abort(boom)
		}
	}
	if err := c.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run() = %v, want the aborting error", err)
	}
}

// TestCleanRunReturnsNil pins the no-error contract for a normal halt.
func TestCleanRunReturnsNil(t *testing.T) {
	c, err := New(BaseSIE(), loopProgram(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run() = %v, want nil", err)
	}
	if c.Stats.Committed == 0 {
		t.Error("no instructions committed")
	}
}
