// Command repolint runs the repository's own lint passes — currently the
// nopanic pass, which forbids panic calls in library code unless they are
// annotated as internal invariants (see internal/lint/nopanic). It exits
// nonzero when any finding fires, so `make lint` and CI can gate on it.
//
// Usage:
//
//	repolint            # lint the whole repository
//	repolint ./internal # lint a subtree
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint/nopanic"
)

func main() {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}

	bad := false
	for _, root := range roots {
		findings, err := nopanic.CheckDir(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
