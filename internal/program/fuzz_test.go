package program

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/isa"
)

// FuzzProgramDecode throws arbitrary byte images at DecodeImage. The
// decoder must never panic, and any image it accepts must round-trip
// exactly: re-encoding reproduces the input bytes bit for bit, and
// decoding those again reproduces the same program. Together with
// Validate's guarantees this means every decoder-accepted image is a
// well-formed, simulator-safe program.
func FuzzProgramDecode(f *testing.F) {
	// Seed with real programs alongside the committed corpus files, so
	// the fuzzer starts from deep inside the valid-image space.
	b := NewBuilder("seed")
	b.LoadConst(1, 5)
	b.Label("loop")
	b.EmitOp(isa.OpAdd, 3, 3, 1)
	b.EmitImm(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Emit(isa.Instr{Op: isa.OpHalt})
	f.Add(uint64(0), b.MustBuild().ImageBytes())
	f.Add(uint64(1), []byte{})
	f.Add(uint64(0), make([]byte, 8))
	f.Add(uint64(0), []byte{1, 2, 3}) // truncated word

	f.Fuzz(func(t *testing.T, entry uint64, image []byte) {
		p, err := DecodeImage("fuzz", entry, image)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if p.Entry != entry || len(p.Code) != len(image)/8 {
			t.Fatalf("accepted image decoded to %d insns entry %d (image %d bytes, entry %d)",
				len(p.Code), p.Entry, len(image), entry)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails Validate: %v", err)
		}
		re := p.ImageBytes()
		if !bytes.Equal(re, image) {
			t.Fatalf("re-encoding diverged:\n in  %x\n out %x", image, re)
		}
		p2, err := DecodeImage("fuzz", entry, re)
		if err != nil {
			t.Fatalf("re-decoding a round-tripped image failed: %v", err)
		}
		if !reflect.DeepEqual(p.Code, p2.Code) {
			t.Fatal("decode → encode → decode did not reach a fixed point")
		}
	})
}
