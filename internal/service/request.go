package service

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/service/api"
	"repro/internal/sim"
)

// The wire types live in internal/service/api — the serialization
// contract clients program against, pinned there by a golden-payload
// test. The daemon uses them under their traditional names.
type (
	RunRequest = api.RunRequest
	FaultSpec  = api.FaultSpec
	CellResult = api.CellResult
	Run        = api.Run
)

// Run statuses.
const (
	StatusQueued    = api.StatusQueued
	StatusRunning   = api.StatusRunning
	StatusDone      = api.StatusDone
	StatusFailed    = api.StatusFailed
	StatusCancelled = api.StatusCancelled
)

// unknownModeError carries the registry listing to the HTTP layer, which
// renders it as a structured 400 with valid_modes, so clients can
// self-correct without another round trip.
type unknownModeError struct {
	name  string
	valid []string
}

func (e *unknownModeError) Error() string {
	return fmt.Sprintf("unknown mode %q (see GET /v1/modes)", e.name)
}

// ErrNoConfigs rejects a run request naming neither configurations nor
// modes; the HTTP layer renders it as a 400.
var ErrNoConfigs = errors.New("configs: at least one configuration or mode name required (see GET /v1/configs, GET /v1/modes)")

// unknownConfigError mirrors unknownModeError for the named-configuration
// column source, keeping the rejection selectable with errors.As instead
// of message matching.
type unknownConfigError struct {
	name string
}

func (e *unknownConfigError) Error() string {
	return fmt.Sprintf("unknown config %q (see GET /v1/configs)", e.name)
}

// DescribeModes renders the core mode registry as the GET /v1/modes
// payload.
func DescribeModes() []api.Mode {
	var out []api.Mode
	for _, mi := range core.Modes() {
		m := api.Mode{
			Name:        string(mi.Mode),
			Description: mi.Description,
			Streams:     mi.Caps.Streams,
			Compare:     string(mi.Caps.Compare),
			Detects:     mi.Caps.Detects,
			Corrects:    mi.Caps.Corrects,
		}
		for _, k := range mi.Knobs {
			m.Knobs = append(m.Knobs, api.Knob{Name: k.Name, Doc: k.Doc})
		}
		out = append(out, m)
	}
	return out
}

// configRegistry maps every named configuration the simulation layer
// defines — the experiment families of internal/sim — to its core.Config,
// so requests name machines the same way the paper's tables do.
func configRegistry() map[string]core.Config {
	m := make(map[string]core.Config)
	add := func(ncs []sim.NamedConfig) {
		for _, nc := range ncs {
			m[nc.Name] = nc.Cfg
		}
	}
	add(sim.FrontierConfigs())
	add(sim.Fig2Configs())
	add(sim.HeadlineConfigs())
	add(sim.IRBSizeConfigs([]int{128, 256, 512, 1024, 2048, 4096}))
	add(sim.ConflictConfigs())
	add(sim.PortConfigs([]int{1, 2, 4, 8}))
	add(sim.SchedulerConfigs())
	add(sim.ClusterConfigs())
	add(sim.ReuseSourceConfigs())
	return m
}

// ConfigNames returns the accepted configuration names, sorted.
func ConfigNames() []string {
	reg := configRegistry()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ConfigByName resolves a named machine configuration.
func ConfigByName(name string) (core.Config, bool) {
	cfg, ok := configRegistry()[name]
	return cfg, ok
}

// buildJobs validates a request and expands it into the runner job grid,
// applying the server's defaults. Each cell with a fault spec gets its own
// freshly built injector, keeping cells independent (and cacheable — the
// injector's fingerprint is its spec, which is only valid for fresh
// injectors).
func (s *Server) buildJobs(req *RunRequest) ([]runner.Job, error) {
	if len(req.Configs) == 0 && len(req.Modes) == 0 {
		return nil, ErrNoConfigs
	}
	// Resolve the request's columns up front: named configurations first,
	// then registry modes at the paper-baseline machine. Mode names are
	// validated against the registry before any simulation time is spent.
	var cols []sim.NamedConfig
	for _, name := range req.Configs {
		cfg, ok := ConfigByName(name)
		if !ok {
			return nil, &unknownConfigError{name: name}
		}
		cols = append(cols, sim.NamedConfig{Name: name, Cfg: cfg})
	}
	for _, name := range req.Modes {
		mi, ok := core.ModeByName(name)
		if !ok {
			return nil, &unknownModeError{name: name, valid: core.ModeNames()}
		}
		cols = append(cols, sim.NamedConfig{Name: string(mi.Mode), Cfg: mi.Base()})
	}
	if req.Fault != nil {
		spec := fault.Config{
			Site:      fault.Site(req.Fault.Site),
			Rate:      req.Fault.Rate,
			Seed:      req.Fault.Seed,
			MaxFaults: req.Fault.MaxFaults,
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
	}
	// Benchmark selection reuses the CLI's parser, so the HTTP API and
	// the command-line tools accept exactly the same names.
	profiles, err := cliutil.Profiles(strings.Join(req.Benchmarks, ","))
	if err != nil {
		return nil, err
	}
	insns := req.Insns
	if insns == 0 {
		insns = s.cfg.DefaultInsns
	}
	var jobs []runner.Job
	for _, p := range profiles {
		for _, col := range cols {
			opts := sim.Options{
				Insns:       insns,
				Verify:      req.Verify || s.cfg.Verify,
				FastForward: req.FastForward,
				Seed:        req.Seed,
			}
			if req.Fault != nil {
				inj, ferr := fault.New(fault.Config{
					Site:      fault.Site(req.Fault.Site),
					Rate:      req.Fault.Rate,
					Seed:      req.Fault.Seed,
					MaxFaults: req.Fault.MaxFaults,
				})
				if ferr != nil {
					return nil, ferr
				}
				opts.Injector = inj
			}
			jobs = append(jobs, runner.Job{Name: col.Name, Config: col.Cfg, Profile: p, Opts: opts})
		}
	}
	return jobs, nil
}
