package cache

import (
	"testing"
	"testing/quick"
)

func small() Config { return Config{Sets: 4, Assoc: 2, BlockBytes: 32, HitLat: 1} }

func TestConfigValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Sets: 3, Assoc: 2, BlockBytes: 32, HitLat: 1},
		{Sets: 4, Assoc: 0, BlockBytes: 32, HitLat: 1},
		{Sets: 4, Assoc: 2, BlockBytes: 33, HitLat: 1},
		{Sets: 4, Assoc: 2, BlockBytes: 32, HitLat: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted invalid config %+v", bad)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	if got := small().SizeBytes(); got != 4*2*32 {
		t.Errorf("SizeBytes = %d", got)
	}
	if got := DefaultHierarchy().L1D.SizeBytes(); got != 16*1024 {
		t.Errorf("default L1D size = %d, want 16KB", got)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, _ := New(small())
	if hit, _ := c.access(0x100, false); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.access(0x100, false); !hit {
		t.Error("second access missed")
	}
	// Same block, different word.
	if hit, _ := c.access(0x118, false); !hit {
		t.Error("same-block access missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(small()) // 4 sets x 2 ways, 32B blocks: set stride 128B
	// Three blocks mapping to set 0.
	a, b2, d := uint64(0), uint64(128), uint64(256)
	c.access(a, false)
	c.access(b2, false)
	c.access(a, false) // a most recent
	c.access(d, false) // evicts b2
	if !c.Probe(a) || c.Probe(b2) || !c.Probe(d) {
		t.Errorf("LRU state wrong: a=%v b=%v d=%v", c.Probe(a), c.Probe(b2), c.Probe(d))
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c, _ := New(Config{Sets: 1, Assoc: 1, BlockBytes: 32, HitLat: 1})
	c.access(0, true) // dirty
	if _, wb := c.access(64, false); !wb {
		t.Error("dirty eviction did not write back")
	}
	if _, wb := c.access(128, false); wb {
		t.Error("clean eviction wrote back")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c, _ := New(small())
	c.access(0x40, false)
	before := c.Stats
	if !c.Probe(0x40) || c.Probe(0x4000) {
		t.Error("probe results wrong")
	}
	if c.Stats != before {
		t.Error("Probe changed statistics")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := mustNewHierarchy(HierarchyConfig{
		L1I:    Config{Sets: 4, Assoc: 1, BlockBytes: 32, HitLat: 1},
		L1D:    Config{Sets: 4, Assoc: 1, BlockBytes: 32, HitLat: 1},
		L2:     Config{Sets: 16, Assoc: 2, BlockBytes: 64, HitLat: 6},
		MemLat: 100,
	})
	// Cold: L1 miss + L2 miss + memory.
	if lat := h.AccessD(0x1000, false); lat != 1+6+100 {
		t.Errorf("cold latency = %d, want 107", lat)
	}
	// Warm L1.
	if lat := h.AccessD(0x1000, false); lat != 1 {
		t.Errorf("L1 hit latency = %d, want 1", lat)
	}
	// Evict from tiny L1 but stay in L2: set stride = 4 sets * 32B = 128.
	h.AccessD(0x1080, false)
	if lat := h.AccessD(0x1000, false); lat != 1+6 {
		t.Errorf("L2 hit latency = %d, want 7", lat)
	}
}

func TestHierarchySeparatesIAndD(t *testing.T) {
	h := mustNewHierarchy(DefaultHierarchy())
	h.AccessI(0x2000)
	if h.L1D.Stats.Accesses != 0 {
		t.Error("instruction access touched L1D")
	}
	if h.L1I.Stats.Accesses != 1 {
		t.Error("instruction access missed L1I stats")
	}
	// Both miss into the shared L2.
	h.AccessD(0x2000, false)
	if h.L2.Stats.Accesses != 2 {
		t.Errorf("L2 accesses = %d, want 2", h.L2.Stats.Accesses)
	}
}

func TestHierarchyConfigErrors(t *testing.T) {
	bad := DefaultHierarchy()
	bad.MemLat = 0
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("accepted zero memory latency")
	}
	bad2 := DefaultHierarchy()
	bad2.L2.Sets = 7
	if _, err := NewHierarchy(bad2); err == nil {
		t.Error("accepted invalid L2")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate != 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

// Property: after accessing addr, an immediate re-access of any address in
// the same block hits.
func TestTemporalLocalityProperty(t *testing.T) {
	f := func(addr uint64, off uint8) bool {
		c, _ := New(Config{Sets: 64, Assoc: 4, BlockBytes: 32, HitLat: 1})
		addr &= 1<<40 - 1
		c.access(addr, false)
		hit, _ := c.access(addr/32*32+uint64(off%32), false)
		return hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a working set no larger than one set's capacity never conflicts
// (all misses are cold).
func TestNoConflictWithinAssocProperty(t *testing.T) {
	f := func(seed uint8) bool {
		cfg := Config{Sets: 8, Assoc: 4, BlockBytes: 32, HitLat: 1}
		c, _ := New(cfg)
		// Four blocks, all in the same set.
		stride := uint64(cfg.Sets * cfg.BlockBytes)
		base := uint64(seed) * 4096
		for round := 0; round < 3; round++ {
			for i := uint64(0); i < 4; i++ {
				c.access(base+i*stride, false)
			}
		}
		return c.Stats.Misses == 4 // only the cold misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// mustNewHierarchy is the test-side NewHierarchy that panics on
// configuration errors.
func mustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}
