// Command simserved serves the simulator over HTTP: sweep jobs in, stats
// JSON out, with a content-addressed result cache so repeated cells cost
// a map probe instead of a simulation. See README's "Serving" section
// for the API and curl examples.
//
// Usage:
//
//	go run ./cmd/simserved                      # standalone on :8344
//	go run ./cmd/simserved -addr :9000 -workers 4 -queue 16
//	go run ./cmd/simserved -insns 100000 -verify -pprof
//
// The daemon also forms a fault-tolerant sweep fabric (see DESIGN.md §13):
//
//	go run ./cmd/simserved -role coordinator -data-dir /var/lib/simserved
//	go run ./cmd/simserved -role worker -peers http://coord:8344 -addr :8345
//
// A coordinator shards grid cells across pull-based workers under
// heartbeat-renewed leases, re-queues cells lost to crashes, degrades to
// in-process execution with no workers live, and journals run state so
// its own restarts resume from the last completed cell. A worker is a
// standalone daemon that additionally pulls leased cells from -peers.
//
// SIGINT/SIGTERM drains gracefully: new runs get 503, /readyz fails so
// load balancers stop routing, and in-flight runs finish before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/fabric"
	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	workers := flag.Int("workers", 2, "concurrent runs")
	queue := flag.Int("queue", 0, "admitted requests bound, running plus waiting (default workers+8)")
	maxCells := flag.Int("max-cells", 4096, "per-request grid cell budget")
	cacheEntries := flag.Int("cache-entries", 1024, "result cache bound (cells)")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful shutdown bound after SIGTERM")
	insns := cliutil.Insns(flag.CommandLine, sim.DefaultInsns)
	verify := cliutil.Verify(flag.CommandLine)
	jobs := cliutil.Jobs(flag.CommandLine)
	cellTimeout := flag.Duration("cell-timeout", 0,
		"per-cell wall-clock bound with one retry (0 = unbounded)")
	role := flag.String("role", "standalone",
		"daemon role: standalone, coordinator (shard cells to workers) or worker (pull cells from -peers)")
	peers := flag.String("peers", "",
		"comma-separated coordinator URLs a worker pulls from (the first entry is used; worker role only)")
	maxLease := flag.Int("max-lease-cells", 0,
		"cells a worker holds per lease (0 = the coordinator's default batch; worker role only)")
	dataDir := flag.String("data-dir", "",
		"crash-safe run journal directory (coordinator/standalone; empty = no journal)")
	workerID := flag.String("worker-id", "",
		"stable worker identity on the fabric (default: the hostname)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second,
		"coordinator lease lifetime without a heartbeat renewal")
	flag.Parse()

	cfg := service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxCells:     *maxCells,
		CacheEntries: *cacheEntries,
		Parallelism:  *jobs,
		DefaultInsns: *insns,
		Verify:       *verify,
		CellTimeout:  *cellTimeout,
		EnablePprof:  *enablePprof,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		journal *fabric.Journal
		recs    []fabric.Record
		stats   fabric.ReplayStats
	)
	if *dataDir != "" {
		var err error
		journal, recs, stats, err = fabric.OpenJournal(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simserved:", err)
			os.Exit(1)
		}
		defer journal.Close()
		cfg.Journal = journal
		if stats.TruncatedBytes > 0 {
			fmt.Fprintf(os.Stderr, "simserved: journal: discarded %d-byte torn tail (%s)\n",
				stats.TruncatedBytes, stats.TailError)
		}
	}

	switch *role {
	case "standalone", "worker":
	case "coordinator":
		coord := fabric.NewCoordinator(fabric.CoordinatorConfig{LeaseTTL: *leaseTTL})
		coord.Start(ctx)
		cfg.Coordinator = coord
	default:
		fmt.Fprintf(os.Stderr, "simserved: unknown -role %q (want standalone, coordinator or worker)\n", *role)
		os.Exit(1)
	}

	srv := service.New(cfg)
	if journal != nil && len(recs) > 0 {
		fmt.Fprintf(os.Stderr, "simserved: replaying %d journal records\n", stats.Records)
		resumed, err := srv.RecoverJournal(ctx, recs, stats)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simserved: journal replay:", err)
		}
		if resumed > 0 {
			fmt.Fprintf(os.Stderr, "simserved: resumed %d unfinished run(s) from the journal\n", resumed)
		}
	}

	if *role == "worker" {
		base := firstPeer(*peers)
		if base == "" {
			fmt.Fprintln(os.Stderr, "simserved: -role worker requires -peers")
			os.Exit(1)
		}
		id := *workerID
		if id == "" {
			id, _ = os.Hostname()
		}
		if id == "" {
			id = "worker-" + strings.TrimPrefix(*addr, ":")
		}
		w := &fabric.Worker{
			Client:   &fabric.Client{BaseURL: base},
			ID:       id,
			MaxCells: *maxLease,
			Exec:     srv.RunJobs,
			OnError: func(err error) {
				fmt.Fprintln(os.Stderr, "simserved: worker:", err)
			},
		}
		go w.Run(ctx)
		fmt.Fprintf(os.Stderr, "simserved: worker %s pulling from %s\n", id, base)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "simserved: draining (new runs get 503; in-flight runs finish)")
		srv.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		done <- httpSrv.Shutdown(shutCtx)
	}()

	fmt.Fprintf(os.Stderr, "simserved: %s listening on %s\n", *role, *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "simserved:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "simserved: drain:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "simserved: drained cleanly")
}

// firstPeer picks the first non-empty entry of a comma-separated peer
// list, trimming a trailing slash so path joins stay clean.
func firstPeer(peers string) string {
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			return strings.TrimSuffix(p, "/")
		}
	}
	return ""
}
