// Package lint is the shared core of the repository's invariant suite:
// the Pass interface every analyzer implements, the Finding type they
// report, the allowlist that can silence individual findings, and the
// table/JSON/SARIF renderers cmd/repolint drives them through.
//
// Every pass is stdlib-only (go/ast + go/types; hotalloc additionally
// shells out to the go toolchain already required to build the repo), so
// the suite runs offline inside `make lint` and CI without the x/tools
// analysis framework. Each pass checks one invariant the simulator's
// headline guarantees rest on:
//
//   - nopanic: library code returns errors instead of panicking
//   - determinism: the simulation core reads no wall clock, no global
//     RNG, and iterates no map in an order-sensitive way
//   - modedispatch: redundancy-mode capability decisions flow through
//     the core mode registry, never through mode-literal comparisons
//   - hotalloc: functions annotated //lint:hotpath stay allocation-free
//     under the compiler's escape analysis
//   - errcontract: API-boundary packages wrap errors (%w) or construct
//     named structured error types
package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one invariant violation, positioned for file:line reports.
type Finding struct {
	Pass    string         `json:"pass"`
	Pos     token.Position `json:"-"`
	Message string         `json:"message"`

	// Flattened position for the JSON encoding.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// NewFinding builds a Finding with the position flattened.
func NewFinding(pass string, pos token.Position, message string) Finding {
	return Finding{
		Pass:    pass,
		Pos:     pos,
		Message: message,
		File:    filepath.ToSlash(pos.Filename),
		Line:    pos.Line,
		Col:     pos.Column,
	}
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Pass, f.Message)
}

// Pass is one invariant checker. Check walks the tree rooted at root —
// the repository root for repo-wide passes, or any package tree in tests —
// and returns its findings ordered by position. A Pass must be safe to
// run on a tree that does not contain its subject (it returns no
// findings, not an error), so the driver can run the whole suite on
// partial trees.
type Pass interface {
	Name() string
	// Doc is the one-line description shown by repolint and embedded in
	// the SARIF rule metadata.
	Doc() string
	Check(root string) ([]Finding, error)
}

// SortFindings orders findings by file, line, column, pass.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Pass < b.Pass
	})
}

// ---------------------------------------------------------------- files

// GoFiles returns the non-test .go files under root, skipping testdata
// trees and hidden directories, sorted for deterministic reports.
func GoFiles(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// PackageFiles returns the non-test .go files directly inside dir,
// sorted. It returns nil (no error) when dir does not exist, so passes
// with fixed package sets tolerate partial trees.
func PackageFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// MarkedLines returns the line numbers of comments carrying marker (an
// exact comment prefix such as "//determinism:exempt"), mapped to the
// text following the marker (the author's reason, possibly empty). A
// statement on line L is conventionally exempt when L or L-1 is marked.
func MarkedLines(fset *token.FileSet, f *ast.File, marker string) map[int]string {
	marked := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, marker) {
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, marker))
				marked[fset.Position(c.Pos()).Line] = reason
			}
		}
	}
	return marked
}

// Exempt reports whether the statement at line is covered by a marked
// line (same line or the line above), and returns the reason.
func Exempt(marked map[int]string, line int) (string, bool) {
	if r, ok := marked[line]; ok {
		return r, true
	}
	r, ok := marked[line-1]
	return r, ok
}

// ------------------------------------------------------------ typecheck

// Package is one parsed and (partially) type-checked package directory.
type Package struct {
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// Checker parses and type-checks package directories from source. One
// Checker shares an importer across packages, so dependencies (including
// the standard library) are loaded once per process. Type errors are
// tolerated: passes get whatever type information could be resolved,
// which keeps the suite usable on seeded or partial trees.
type Checker struct {
	imp types.Importer
}

// NewChecker builds a Checker backed by the stdlib source importer.
func NewChecker() *Checker {
	return &Checker{}
}

// Check parses the non-test files of the package in dir and type-checks
// them, returning nil when the directory holds no Go files.
func (c *Checker) Check(dir string) (*Package, error) {
	files, err := PackageFiles(dir)
	if err != nil || len(files) == 0 {
		return nil, err
	}
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		parsed = append(parsed, f)
	}
	if c.imp == nil {
		c.imp = importer.ForCompiler(fset, "source", nil)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: c.imp,
		Error:    func(error) {}, // tolerate partial type information
	}
	pkg, _ := conf.Check(dir, fset, parsed, info)
	return &Package{Dir: dir, Fset: fset, Files: parsed, Info: info, Pkg: pkg}, nil
}

// ------------------------------------------------------------ allowlist

// AllowEntry silences findings of one pass at one file (and optionally
// one line). Entries come from the allowlist file, one per line:
//
//	<pass> <file>[:<line>]   # comment
//
// with '#' starting a comment and blank lines ignored. File paths are
// slash-separated and relative to the repository root.
type AllowEntry struct {
	Pass string
	File string
	Line int // 0 = whole file
	used bool
}

// Allowlist filters findings against explicit, reviewable entries.
type Allowlist struct {
	Path    string
	Entries []AllowEntry
}

// LoadAllowlist reads path. A missing file yields an empty allowlist.
func LoadAllowlist(path string) (*Allowlist, error) {
	al := &Allowlist{Path: path}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return al, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("lint: %s:%d: want \"<pass> <file>[:<line>]\", got %q", path, lineNo, sc.Text())
		}
		e := AllowEntry{Pass: fields[0], File: fields[1]}
		if i := strings.LastIndex(e.File, ":"); i >= 0 {
			n, err := strconv.Atoi(e.File[i+1:])
			if err != nil {
				return nil, fmt.Errorf("lint: %s:%d: bad line number in %q", path, lineNo, fields[1])
			}
			e.File, e.Line = e.File[:i], n
		}
		al.Entries = append(al.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return al, nil
}

// Filter removes allowed findings and returns the rest. Entries that
// silenced nothing are themselves reported as findings: a stale allowlist
// line is an unexplained annotation, exactly what the suite exists to
// forbid.
func (al *Allowlist) Filter(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		allowed := false
		for i := range al.Entries {
			e := &al.Entries[i]
			if e.Pass == f.Pass && e.File == f.File && (e.Line == 0 || e.Line == f.Line) {
				e.used = true
				allowed = true
			}
		}
		if !allowed {
			out = append(out, f)
		}
	}
	for _, e := range al.Entries {
		if !e.used {
			pos := token.Position{Filename: al.Path}
			out = append(out, NewFinding("allowlist",
				pos, fmt.Sprintf("stale entry %q silences nothing; remove it", e.Pass+" "+e.File)))
		}
	}
	SortFindings(out)
	return out
}

// --------------------------------------------------------------- output

// WriteTable renders findings one per line, the grep-friendly default.
func WriteTable(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as a JSON array (never null).
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// sarif mirrors the fragment of SARIF 2.1.0 the suite emits: one run,
// one rule per pass, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription map[string]string `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   map[string]any  `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation map[string]string `json:"artifactLocation"`
	Region           map[string]int    `json:"region"`
}

// WriteSARIF renders findings in the SARIF 2.1.0 format CI code-scanning
// uploads consume. passes supplies the rule metadata (name -> doc); rules
// are emitted for every pass so a clean run still documents the suite.
func WriteSARIF(w io.Writer, findings []Finding, passes []Pass) error {
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "repolint"}},
		Results: []sarifResult{},
	}
	for _, p := range passes {
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               p.Name(),
			ShortDescription: map[string]string{"text": p.Doc()},
		})
	}
	for _, f := range findings {
		line, col := f.Line, f.Col
		if line <= 0 {
			line = 1
		}
		if col <= 0 {
			col = 1
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.Pass,
			Level:   "error",
			Message: map[string]any{"text": f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: map[string]string{"uri": f.File},
					Region:           map[string]int{"startLine": line, "startColumn": col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
