package core

import "repro/internal/stats"

// Stats aggregates the counters of one simulation run. "Architected"
// quantities count program instructions once; "copies" count primary and
// duplicate uops separately.
type Stats struct {
	Cycles          uint64
	Committed       uint64 // architected instructions retired
	CopiesCommitted uint64

	Fetched    uint64 // copies fetched (wrong path included)
	Dispatched uint64 // copies dispatched
	WrongPath  uint64 // wrong-path copies dispatched
	Squashed   uint64 // copies squashed by recovery

	Issued         [5]uint64 // copies issued per FU class bucket (see fuBucket)
	ReadyNotIssued uint64    // copy-cycles ready but not selected (FU/width contention)
	IssueSlotsUsed uint64

	RUUFullStalls uint64 // dispatch stalls: no RUU space
	LSQFullStalls uint64 // dispatch stalls: no LSQ space
	FetchQEmpty   uint64 // dispatch cycles with nothing to dispatch

	Mispredicts    uint64 // correct-path control mispredictions recovered
	RecoveryCycles uint64 // cycles from mispredict dispatch to re-fetch

	// DIE-IRB counters.
	IRBReuseHits uint64 // duplicates that skipped the FUs
	IRBReuseMiss uint64 // PC hits whose operands failed the reuse test
	IRBNotReady  uint64 // PC hits issued to FUs before lookup data arrived
	DupFUExec    uint64 // duplicates executed on functional units

	// DIE-TRB counters (see trb.go).
	TRBBlockHits    uint64 // window entries whose live-ins hit the TRB
	TRBInstrSkipped uint64 // duplicates served a recorded window signature

	// Fault accounting (see internal/fault).
	FaultsInjected  uint64
	FaultsDetected  uint64 // commit/vote/replay check caught a signature difference
	FaultsMasked    uint64 // injected but produced no signature difference
	FaultsSilent    uint64 // corrupted result committed undetected (SDC escape)
	FaultsCorrected uint64 // outvoted by a TMR majority: repaired with no rewind

	// REPLAY-mode counters (see replay.go).
	ReplayEpochs      uint64 // epochs checked by the replay engine
	ReplayStallCycles uint64 // cycles the pipeline ceded to replay/rollback

	// Fault recovery (see recovery.go).
	FaultRecoveries     uint64 // architectural rewinds performed
	FaultRetries        uint64 // recoveries beyond the first for the same PC
	FaultRepairs        uint64 // repair windows closed (faulting insn committed)
	FaultRecoveryCycles uint64 // cycles from detection to clean commit, summed
	IRBScrubs           uint64 // corrupted IRB entries invalidated on detection
	TRBScrubs           uint64 // TRB window recordings invalidated on detection

	LoadForwarded uint64 // loads served by store-to-load forwarding
	Loads, Stores uint64 // architected memory operations
}

// IPC returns architected committed instructions per cycle, the metric the
// paper reports (both SIE and DIE count each program instruction once).
func (s *Stats) IPC() float64 { return stats.Ratio(s.Committed, s.Cycles) }

// MTTR returns the mean time to repair in cycles: the average span from a
// commit-time fault detection to the clean commit of the faulting
// instruction, over all repaired faults. Zero when no fault was repaired.
func (s *Stats) MTTR() float64 { return stats.Ratio(s.FaultRecoveryCycles, s.FaultRepairs) }

// fuBucket maps an FU class to its Issued index.
const (
	bucketIntALU = iota
	bucketIntMult
	bucketFPAdd
	bucketFPMult
	bucketMem
)
