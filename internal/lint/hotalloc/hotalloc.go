// Package hotalloc is the lint pass that keeps the simulator's per-cycle
// code allocation-free. Functions on the cycle loop — the pipeline stage
// methods, the IRB probe, the trace cursor — are annotated
//
//	//lint:hotpath
//
// in their doc comment, and the pass holds them to a budget of zero heap
// allocations by running the compiler's own escape analysis
// (go build -gcflags=<pkg>=-m) and attributing each "escapes to heap" /
// "moved to heap" diagnostic to the enclosing function. This is the
// compiler's verdict on the exact code it compiles, so the check cannot
// drift from reality the way a syntactic allocation blacklist would.
//
// Two classes of diagnostics inside a hot function are not findings:
//
//   - Panic arguments. A panic is already the end of the run; the
//     allocation building its message is free on every cycle that does
//     not take it. Diagnostics whose position falls lexically inside a
//     panic(...) call are dropped. (Allocations inlined from a callee's
//     panic path do not get this pardon — outline such callees with
//     //go:noinline instead, as isa.badOp does.)
//
//   - Annotated amortized allocations:
//
//     //hotalloc:exempt <reason>
//
//     on the diagnostic's line or the line above, for the rare
//     allocation that is deliberate and amortized (the uop arena grows
//     by chunks, for example). An exempt marker with no reason is
//     itself a finding.
//
// The pass only builds packages that contain at least one annotated
// function, so repositories (and test trees) without annotations never
// shell out to the compiler.
package hotalloc

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// Annotation marks a function as hot-path in its doc comment.
const Annotation = "//lint:hotpath"

// Marker allows one deliberate, amortized allocation, with a mandatory
// reason.
const Marker = "//hotalloc:exempt"

// Pass is the hotalloc pass, ready for the repolint driver.
type Pass struct{}

func (Pass) Name() string { return "hotalloc" }
func (Pass) Doc() string {
	return "functions annotated //lint:hotpath must be free of heap allocations per the compiler's escape analysis"
}

// Check scans root for annotated functions and verifies each annotated
// package with the compiler's escape analysis.
func (Pass) Check(root string) ([]lint.Finding, error) {
	return CheckRoot(root)
}

// span is one annotated function's extent in a file.
type span struct {
	file       string // path relative to root, slash-separated
	name       string
	start, end int // line range, inclusive
}

// fileFacts is what the source scan collects per file: annotated function
// spans, lexical panic-argument spans, and exempt markers by line.
type fileFacts struct {
	spans  []span
	panics [][2]int       // [start,end] line ranges of panic(...) calls
	marked map[int]string // Marker lines -> reason
}

// diagRE matches the compiler's positioned diagnostics. The file path is
// printed relative to the build's working directory (the repo root).
var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// CheckRoot runs the pass over the module rooted at root. The module
// path is only resolved (and the compiler only invoked) when the tree
// actually contains annotations, so annotation-free trees — including
// other passes' testdata — cost nothing and need no go.mod.
func CheckRoot(root string) ([]lint.Finding, error) {
	files, err := lint.GoFiles(root)
	if err != nil {
		return nil, err
	}

	var out []lint.Finding
	facts := make(map[string]*fileFacts) // relative file path -> facts
	pkgs := make(map[string]bool)        // relative dirs with annotations
	fset := token.NewFileSet()
	for _, path := range files {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return nil, fmt.Errorf("hotalloc: %w", err)
		}
		rel = filepath.ToSlash(rel)
		ff, markerFindings, err := scanFile(fset, path, rel)
		if err != nil {
			return nil, err
		}
		out = append(out, markerFindings...)
		if ff == nil {
			continue
		}
		facts[rel] = ff
		if len(ff.spans) > 0 {
			pkgs[filepath.ToSlash(filepath.Dir(rel))] = true
		}
	}

	dirs := make([]string, 0, len(pkgs))
	for d := range pkgs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		lint.SortFindings(out)
		return out, nil
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		fs, err := checkPackage(root, modPath, dir, facts)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	lint.SortFindings(out)
	return out, nil
}

// scanFile parses one source file and extracts its hot-path facts. It
// returns nil facts when the file has neither annotations nor markers
// nor panics (nothing the diagnostics could be matched against).
// Reasonless exempt markers are returned as findings immediately — they
// never suppress anything.
func scanFile(fset *token.FileSet, path, rel string) (*fileFacts, []lint.Finding, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, nil, fmt.Errorf("hotalloc: %w", err)
	}
	ff := &fileFacts{marked: lint.MarkedLines(fset, f, Marker)}
	var out []lint.Finding
	for line, reason := range ff.marked {
		if reason == "" {
			out = append(out, lint.NewFinding("hotalloc",
				token.Position{Filename: rel, Line: line, Column: 1},
				Marker+" needs a reason: say why this allocation is deliberate and amortized"))
		}
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			if strings.HasPrefix(c.Text, Annotation) {
				ff.spans = append(ff.spans, span{
					file:  rel,
					name:  fn.Name.Name,
					start: fset.Position(fn.Pos()).Line,
					end:   fset.Position(fn.End()).Line,
				})
				break
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			ff.panics = append(ff.panics, [2]int{
				fset.Position(call.Pos()).Line,
				fset.Position(call.End()).Line,
			})
		}
		return true
	})
	if len(ff.spans) == 0 && len(ff.panics) == 0 && len(ff.marked) == 0 {
		return nil, out, nil
	}
	return ff, out, nil
}

// checkPackage builds one annotated package with escape analysis enabled
// and converts in-span diagnostics to findings.
func checkPackage(root, modPath, dir string, facts map[string]*fileFacts) ([]lint.Finding, error) {
	importPath := modPath
	if dir != "." {
		importPath = modPath + "/" + dir
	}
	cmd := exec.Command("go", "build", "-gcflags="+importPath+"=-m", "./"+dir)
	cmd.Dir = root
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			return nil, fmt.Errorf("hotalloc: running escape analysis for %s: %w", dir, err)
		}
		// A failed build is a finding, not a pass error: the tree the
		// pass was pointed at does not compile.
		return []lint.Finding{lint.NewFinding("hotalloc",
			token.Position{Filename: dir, Line: 1, Column: 1},
			fmt.Sprintf("package does not build, escape analysis unavailable: %s",
				firstLine(buf.String())))}, nil
	}

	var out []lint.Finding
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := diagRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap:") {
			continue
		}
		file := filepath.ToSlash(m[1])
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		ff := facts[file]
		if ff == nil {
			continue
		}
		fn := enclosing(ff.spans, line)
		if fn == "" {
			continue
		}
		if inPanic(ff.panics, line) {
			continue
		}
		if reason, ok := lint.Exempt(ff.marked, line); ok && reason != "" {
			continue
		}
		out = append(out, lint.NewFinding("hotalloc",
			token.Position{Filename: file, Line: line, Column: col},
			fmt.Sprintf("heap allocation in %s function %s: %s", Annotation, fn, msg)))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hotalloc: reading compiler output: %w", err)
	}
	return out, nil
}

func enclosing(spans []span, line int) string {
	for _, s := range spans {
		if line >= s.start && line <= s.end {
			return s.name
		}
	}
	return ""
}

func inPanic(panics [][2]int, line int) bool {
	for _, p := range panics {
		if line >= p[0] && line <= p[1] {
			return true
		}
	}
	return false
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("hotalloc: %w", err)
	}
	for _, ln := range strings.Split(string(data), "\n") {
		ln = strings.TrimSpace(ln)
		if rest, ok := strings.CutPrefix(ln, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("hotalloc: no module line in %s", filepath.Join(root, "go.mod"))
}

func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
