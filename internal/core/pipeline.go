package core

import (
	"repro/internal/fsim"
	"repro/internal/irb"
	"repro/internal/isa"
)

// uopState tracks a uop through the pipeline.
type uopState uint8

const (
	uWaiting  uopState = iota // in the issue window, operands may be pending
	uIssued                   // executing on a functional unit
	uDone                     // result available; eligible to commit
	uSquashed                 // killed by recovery; slot already reclaimed
)

// uop is one in-flight instruction copy. In DIE modes every architected
// instruction dispatches as a pair of uops (primary and duplicate) sharing
// one fsim.Retired record; the pair is compared at commit.
//
// uops are recycled through the core's free list rather than allocated per
// instruction. gen counts recyclings: every reference that can outlive the
// uop (completion events, consumer links, waiting-list entries, rename
// table slots) carries the gen it was created under and is dropped when
// the counts no longer match.
type uop struct {
	seq  uint64 // global dispatch order
	gen  uint32 // recycling generation (bumped on free)
	rec  fsim.Retired
	dup  bool
	pair *uop // other member of the DIE pair (nil in SIE)

	wrongPath bool
	state     uopState

	// Dataflow. waitCount is the number of pending producers; readyAt is
	// the earliest cycle the uop can be selected once waitCount is zero.
	waitCount int
	readyAt   uint64
	consumers []consumerLink

	dispatchCycle uint64
	fetchCycle    uint64
	completeCycle uint64

	// Control flow.
	predNext uint64
	mispred  bool // correct-path control with predNext != rec.NextPC

	// IRB (DIE-IRB mode).
	irbPCHit  bool
	irbEntry  irb.Entry
	irbReady  uint64 // cycle the pipelined lookup data arrives
	irbTested bool
	reuseHit  bool

	// TRB (DIE-TRB mode): this duplicate copy was served a recorded
	// window signature at dispatch and never executes; trbEntry is the
	// window's entry PC, kept for scrub-on-fault (see recoverFault).
	trbServed bool
	trbEntry  uint64

	// Memory. Only the primary copy of a load/store occupies the LSQ and
	// accesses the cache; the duplicate performs address calculation
	// only (the paper keeps memory outside the Sphere of Replication).
	memAccess  bool // occupies an LSQ slot
	addrReady  bool // address calculation completed
	memStarted bool // load: cache access / forwarding has begun

	// Register write-versions of the sources at dispatch, for the
	// name-based reuse test.
	ver1, ver2 uint32

	// Fault-check signatures: the operand values this copy "read" and
	// the outcome it "produced". They equal the record's values unless a
	// fault injector corrupted them.
	src1c, src2c uint64
	outSig       uint64
	corrupted    bool // an injector touched this copy (accounting only)
}

// consumerLink records one waiting consumer and the generation it was
// wired under; a consumer that was squashed and recycled before its
// producer completed is recognized by the mismatch and skipped.
type consumerLink struct {
	u   *uop
	gen uint32
}

// waitRef is one entry of the age-ordered waiting list selectIssue scans.
// Entries are dropped lazily: a stale generation means the uop was
// squashed and its slot reissued.
type waitRef struct {
	u   *uop
	gen uint32
}

// prodRef is a rename-table slot: the latest producer of a register plus
// the generation it had when installed, so a producer that committed (or
// was squashed) and got recycled reads as absent.
type prodRef struct {
	u   *uop
	gen uint32
}

// live reports whether the slot still refers to the uop it was set to.
func (p prodRef) live() bool { return p.u != nil && p.u.gen == p.gen }

// outSignature computes the canonical outcome signature of an instruction
// copy from its (possibly corrupted) operand values: ALU result for value-
// producing ops, effective address for memory ops, and target/direction for
// control transfers. The DIE commit check compares the two copies'
// signatures.
func outSignature(rec *fsim.Retired, src1, src2 uint64) uint64 {
	in := rec.Instr
	oi := in.Op.Info()
	switch {
	case oi.IsStore:
		// Fold the store data into the signature so a corrupted data
		// operand is caught, not just a corrupted address.
		return sigMix(isa.EffAddr(src1, in.Imm), src2)
	case oi.IsLoad:
		return isa.EffAddr(src1, in.Imm)
	case oi.IsBranch:
		next := rec.PC + 1
		taken := isa.EvalBranch(in.Op, src1, src2)
		if taken {
			next = isa.CtrlTarget(in.Op, in.Imm, src1, rec.PC)
		}
		return next*2 + b2u64(taken)
	case oi.IsJump:
		return isa.CtrlTarget(in.Op, in.Imm, src1, rec.PC) * 2
	case oi.HasDest:
		return isa.Exec(in.Op, src1, src2, in.Imm, rec.PC)
	default:
		return 0
	}
}

// irbOutSig converts a reuse-buffer entry into an outcome signature for the
// instruction class of rec, mirroring outSignature's encoding.
func irbOutSig(rec *fsim.Retired, e irb.Entry) uint64 {
	oi := rec.Instr.Op.Info()
	switch {
	case oi.IsCtrl():
		return e.Result*2 + b2u64(e.Taken)
	case oi.IsStore:
		// The reuse test verified the data operand (Src2); fold the
		// stored copy in so the signature matches outSignature's.
		return sigMix(e.Result, e.Src2)
	default:
		return e.Result
	}
}

// sigMix combines two 64-bit values into one signature word with a
// multiplicative hash; single-bit corruption of either input always
// changes the output.
func sigMix(a, b uint64) uint64 {
	return a ^ (b * 0x9e3779b97f4a7c15)
}

// irbEntryFor builds the reuse-buffer payload for a retiring instruction:
// operands plus result, with control transfers storing target and
// direction and memory operations storing the effective address.
func irbEntryFor(rec *fsim.Retired) irb.Entry {
	oi := rec.Instr.Op.Info()
	e := irb.Entry{Src1: rec.Src1, Src2: rec.Src2}
	switch {
	case oi.IsMem():
		e.Result = rec.Addr
	case oi.IsCtrl():
		e.Result = rec.NextPC
		e.Taken = rec.Taken
	default:
		e.Result = rec.Result
	}
	return e
}

// irbReusable reports whether the instruction class participates in
// instruction reuse: integer and FP ALU operations, branch target/direction
// calculation, and the address calculation of loads and stores. (The memory
// access itself is never reused — the paper keeps memory outside the Sphere
// of Replication.)
func irbReusable(in isa.Instr) bool {
	oi := in.Op.Info()
	if in.Op == isa.OpNop || in.Op == isa.OpHalt {
		return false
	}
	return oi.HasDest || oi.IsMem() || oi.IsCtrl()
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// fuPool allocates functional units. Units are fully pipelined (new
// operation every cycle) except divide and square root, which occupy their
// unit for the full latency, matching SimpleScalar's issue latencies.
type fuPool struct {
	busyUntil [isa.NumFUClasses][]uint64
}

func newFUPool(counts [isa.NumFUClasses]int) *fuPool {
	p := &fuPool{}
	for cl := isa.FUClass(0); cl < isa.NumFUClasses; cl++ {
		p.busyUntil[cl] = make([]uint64, counts[cl])
	}
	return p
}

// occupancy returns how many cycles an operation keeps its unit busy.
func occupancy(op isa.Op) int {
	switch op {
	case isa.OpDiv, isa.OpRem, isa.OpDivu, isa.OpFDiv, isa.OpFSqrt:
		return op.Info().Latency
	default:
		return 1
	}
}

// alloc reserves a unit of class cl starting at cycle for occ cycles; it
// reports whether one was free.
func (p *fuPool) alloc(cl isa.FUClass, cycle uint64, occ int) bool {
	for i, b := range p.busyUntil[cl] {
		if b <= cycle {
			p.busyUntil[cl][i] = cycle + uint64(occ)
			return true
		}
	}
	return false
}

// event is a scheduled pipeline completion. gen snapshots the uop's
// recycling generation at scheduling time: a popped event whose gen no
// longer matches the uop's refers to a slot that was squashed and reissued
// and is dropped.
type event struct {
	cycle uint64
	kind  eventKind
	u     *uop
	gen   uint32
}

type eventKind uint8

const (
	evExecDone eventKind = iota // FU execution finished: complete + wake
	evAddrDone                  // memory address calculation finished
	evLoadDone                  // memory access finished: complete + wake
	evTRBDone                   // TRB-served duplicate: recorded signature delivered
)

// eventQueue is a min-heap of events by cycle, hand-specialized so push
// and pop move concrete event values instead of boxing them through
// container/heap's interface (whose Pop allocates on every call). The sift
// loops mirror container/heap's up/down exactly, so the pop order among
// equal-cycle events — which completion order, and therefore wakeup order,
// depends on — is unchanged.
type eventQueue []event

func (q *eventQueue) push(e event) {
	h := append(*q, e)
	*q = h
	for j := len(h) - 1; j > 0; {
		i := (j - 1) / 2
		if h[i].cycle <= h[j].cycle {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && h[r].cycle < h[j].cycle {
			j = r
		}
		if h[i].cycle <= h[j].cycle {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	e := h[n]
	h[n] = event{}
	*q = h[:n]
	return e
}

func (q *eventQueue) schedule(cycle uint64, kind eventKind, u *uop) {
	q.push(event{cycle: cycle, kind: kind, u: u, gen: u.gen})
}

// throw reports a broken FIFO occupancy invariant. It is outlined and
// kept out of the inliner so the panic's message conversion never lands
// inside a pipeline stage that inlined a push or pop — the hotalloc
// escape-analysis gate sees those stages allocation-free.
//
//go:noinline
func throw(msg string) {
	//nopanic:invariant callers guard occupancy before push/pop; reaching here is a scheduling bug
	panic(msg)
}

// ring is a bounded FIFO of uops used for the RUU and the LSQ. Entries
// retire from the head and are squashed from the tail.
type ring struct {
	buf        []*uop
	head, size int
}

func newRing(capacity int) *ring { return &ring{buf: make([]*uop, capacity)} }

func (r *ring) len() int  { return r.size }
func (r *ring) cap() int  { return len(r.buf) }
func (r *ring) free() int { return len(r.buf) - r.size }

// idx maps a logical position (0 = head) to a buffer index. The wrap is a
// compare-and-subtract instead of the modulo division that dominated the
// issue-scan profile.
func (r *ring) idx(i int) int {
	i += r.head
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return i
}

func (r *ring) push(u *uop) {
	if r.size == len(r.buf) {
		throw("core: ring overflow")
	}
	r.buf[r.idx(r.size)] = u
	r.size++
}

func (r *ring) at(i int) *uop { return r.buf[r.idx(i)] }

func (r *ring) popHead() *uop {
	if r.size == 0 {
		throw("core: ring underflow")
	}
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.size--
	return u
}

// squashYoungerThan removes all entries with seq greater than maxSeq,
// marking them squashed, and returns how many were removed. When free is
// non-nil every removed uop is recycled through it; the LSQ passes nil
// because its entries alias the RUU's, which owns the recycling.
func (r *ring) squashYoungerThan(maxSeq uint64, free func(*uop)) int {
	n := 0
	for r.size > 0 {
		i := r.idx(r.size - 1)
		u := r.buf[i]
		if u.seq <= maxSeq {
			break
		}
		u.state = uSquashed
		r.buf[i] = nil
		r.size--
		n++
		if free != nil {
			free(u)
		}
	}
	return n
}

// fetchQueue is the bounded fetch-to-dispatch FIFO. Its backing array is
// allocated once and reused; the previous slice-append queue reallocated
// on every refill after the slice-off-the-front drain emptied it.
type fetchQueue struct {
	buf        []fetchEntry
	head, size int
}

func newFetchQueue(capacity int) *fetchQueue {
	return &fetchQueue{buf: make([]fetchEntry, capacity)}
}

func (q *fetchQueue) len() int   { return q.size }
func (q *fetchQueue) full() bool { return q.size == len(q.buf) }

func (q *fetchQueue) push(e fetchEntry) {
	if q.size == len(q.buf) {
		throw("core: fetch queue overflow")
	}
	i := q.head + q.size
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = e
	q.size++
}

// front returns the oldest entry in place; the caller copies what it needs
// before popFront.
func (q *fetchQueue) front() *fetchEntry {
	if q.size == 0 {
		throw("core: fetch queue underflow")
	}
	return &q.buf[q.head]
}

func (q *fetchQueue) popFront() {
	if q.size == 0 {
		throw("core: fetch queue underflow")
	}
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.size--
}

func (q *fetchQueue) clear() { q.head, q.size = 0, 0 }
