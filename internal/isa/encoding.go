package isa

import "fmt"

// Binary encoding. Each instruction occupies 8 bytes:
//
//	bits  0..7   opcode
//	bits  8..15  dest register
//	bits 16..23  src1 register
//	bits 24..31  src2 register
//	bits 32..63  immediate (signed 32-bit)
//
// The encoding exists so that programs have a concrete memory image for the
// instruction cache model and so that tooling (cmd/simdie -dump) can round-
// trip programs. It is deliberately simple; the timing model operates on
// decoded Instr values.

// Encode packs the instruction into its 64-bit binary form.
func Encode(in Instr) uint64 {
	return uint64(in.Op) |
		uint64(in.Dest)<<8 |
		uint64(in.Src1)<<16 |
		uint64(in.Src2)<<24 |
		uint64(uint32(in.Imm))<<32
}

// Decode unpacks a 64-bit binary instruction. It returns an error when the
// opcode or a used register field is out of range.
func Decode(w uint64) (Instr, error) {
	in := Instr{
		Op:   Op(w & 0xff),
		Dest: Reg(w >> 8 & 0xff),
		Src1: Reg(w >> 16 & 0xff),
		Src2: Reg(w >> 24 & 0xff),
		Imm:  int32(uint32(w >> 32)),
	}
	if int(in.Op) >= NumOps {
		return Instr{}, fmt.Errorf("isa: decode: undefined opcode %d", w&0xff)
	}
	oi := in.Op.Info()
	if err := checkReg(oi.HasDest, in.Dest, oi.DestFP, "dest"); err != nil {
		return Instr{}, err
	}
	if err := checkReg(oi.UsesSrc1, in.Src1, oi.Src1FP, "src1"); err != nil {
		return Instr{}, err
	}
	if err := checkReg(oi.UsesSrc2, in.Src2, oi.Src2FP, "src2"); err != nil {
		return Instr{}, err
	}
	return in, nil
}

func checkReg(used bool, r Reg, wantFP bool, field string) error {
	if !used {
		return nil
	}
	if r >= NumRegs {
		return fmt.Errorf("isa: decode: %s register %d out of range", field, r)
	}
	if r.IsFP() != wantFP {
		return fmt.Errorf("isa: decode: %s register %s has wrong file (want fp=%v)", field, r, wantFP)
	}
	return nil
}

// Validate checks that the instruction's register fields match the operand
// shape of its opcode. Program builders call it to reject malformed
// instructions at construction time.
func Validate(in Instr) error {
	_, err := Decode(Encode(in))
	return err
}
