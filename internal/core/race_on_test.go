//go:build race

package core

// raceEnabled reports the race detector is active, under which sync.Pool
// deliberately drops items to shake out races — pool-reuse assertions
// cannot hold there.
const raceEnabled = true
