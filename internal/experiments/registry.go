package experiments

import "repro/internal/stats"

// Named pairs an experiment's public name — the -exp value of cmd/sweep
// and the /v1/experiments/{name} path of the serving daemon — with a
// generator for its rendered table. Experiments returning richer
// structured results (grids, summaries) expose them through their own
// functions; the registry is the uniform by-name surface.
type Named struct {
	Name string
	Run  func(Options) (*stats.Table, error)
}

// Registry returns every experiment in presentation order. The slice is
// freshly allocated; callers may reorder or filter it.
func Registry() []Named {
	return []Named{
		{"config", func(Options) (*stats.Table, error) {
			return ConfigTable(), nil
		}},
		{"fig2", func(o Options) (*stats.Table, error) {
			_, t, err := Fig2(o)
			return t, err
		}},
		{"headline", func(o Options) (*stats.Table, error) {
			_, _, t, err := Headline(o)
			return t, err
		}},
		{"irbhit", func(o Options) (*stats.Table, error) {
			_, t, err := IRBHit(o)
			return t, err
		}},
		{"irbsize", func(o Options) (*stats.Table, error) {
			_, t, err := IRBSize(o)
			return t, err
		}},
		{"conflict", func(o Options) (*stats.Table, error) {
			_, t, err := Conflict(o)
			return t, err
		}},
		{"irbports", func(o Options) (*stats.Table, error) {
			_, t, err := Ports(o)
			return t, err
		}},
		{"faults", func(o Options) (*stats.Table, error) {
			_, t, err := Faults(o)
			return t, err
		}},
		{"recovery", func(o Options) (*stats.Table, error) {
			_, t, err := Recovery(o)
			return t, err
		}},
		{"frontier", func(o Options) (*stats.Table, error) {
			_, t, err := Frontier(o)
			return t, err
		}},
		{"ablation-dup", func(o Options) (*stats.Table, error) {
			_, t, err := AblationDup(o)
			return t, err
		}},
		{"ablation-fwd", func(o Options) (*stats.Table, error) {
			_, t, err := AblationFwd(o)
			return t, err
		}},
		{"scheduler", func(o Options) (*stats.Table, error) {
			_, t, err := Scheduler(o)
			return t, err
		}},
		{"cluster", func(o Options) (*stats.Table, error) {
			_, t, err := Cluster(o)
			return t, err
		}},
		{"prior24", func(o Options) (*stats.Table, error) {
			_, t, err := Prior24(o)
			return t, err
		}},
		{"reuse-sources", func(o Options) (*stats.Table, error) {
			_, t, err := ReuseSources(o)
			return t, err
		}},
		{"reuse-prediction", func(o Options) (*stats.Table, error) {
			_, _, t, err := ReusePrediction(o)
			return t, err
		}},
		{"trb", func(o Options) (*stats.Table, error) {
			_, _, t, err := TRBAblation(o)
			return t, err
		}},
		{"trb-prediction", func(o Options) (*stats.Table, error) {
			_, _, t, err := TraceReusePrediction(o)
			return t, err
		}},
	}
}

// ByName resolves one registry entry.
func ByName(name string) (Named, bool) {
	for _, n := range Registry() {
		if n.Name == name {
			return n, true
		}
	}
	return Named{}, false
}

// Names returns the registry's experiment names in order.
func Names() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, n := range reg {
		out[i] = n.Name
	}
	return out
}
