// Package core implements the cycle-level out-of-order superscalar
// processor model of this reproduction: a unified-RUU machine in the style
// of SimpleScalar's sim-outorder, extended with the paper's two execution
// modes — DIE (dual instruction execution: every instruction duplicated at
// dispatch and checked at commit) and DIE-IRB (the duplicate stream served
// by an Instruction Reuse Buffer looked up in parallel with fetch).
//
// Timing model per cycle, evaluated commit-first so that same-cycle
// hand-offs between stages behave like a real pipeline:
//
//	commit -> writeback/wakeup -> memory issue -> select/issue ->
//	dispatch -> fetch
//
// Like sim-outorder, instructions execute functionally at dispatch (via
// internal/fsim, including wrong-path execution against a speculative
// overlay) and the pipeline plays out timing; commit verifies the pair
// signatures (DIE) and an external oracle can verify the retired stream.
package core

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/irb"
	"repro/internal/isa"
	"repro/internal/trb"
)

// Mode selects the redundancy scheme of the core. A Mode is the name of a
// registered descriptor (see ModeInfo and Modes); the constants below are
// the built-in schemes, registered in modes.go.
type Mode string

const (
	// SIE is single instruction execution: a conventional superscalar
	// with no temporal redundancy.
	SIE Mode = "SIE"
	// DIE duplicates every instruction at dispatch; the two copies flow
	// through the shared pipeline independently (each stream has its own
	// dataflow) and are compared at commit.
	DIE Mode = "DIE"
	// DIEIRB is DIE extended with the instruction reuse buffer: the
	// duplicate stream looks the IRB up in parallel with fetch and, on a
	// reuse hit, skips the functional units. Duplicate-stream consumers
	// are woken by primary-stream results, so the IRB adds no
	// result-forwarding buses.
	DIEIRB Mode = "DIE-IRB"
	// SIEIRB is the prior-work configuration the paper builds on
	// (Sodani & Sohi's dynamic instruction reuse): a single instruction
	// stream whose instructions consult the IRB and skip the functional
	// units on a reuse hit. Here the IRB acts as a functional unit whose
	// results broadcast to waiting instructions; combine with IRBAsFU to
	// charge the issue-logic cost the paper argues this incurs.
	SIEIRB Mode = "SIE-IRB"
	// REPLAY detects faults by checkpoint plus deterministic replay (in
	// the style of RepTFD) instead of inline duplication: the single
	// stream executes at SIE speed, and every ReplayEpoch committed
	// instructions the epoch is re-executed by a replay engine and the
	// two commit streams compared. Replay bandwidth is charged against
	// the same datapath, and a detected fault rewinds the whole epoch —
	// detection latency and MTTR are epoch-scale by construction.
	REPLAY Mode = "REPLAY"
	// TMR is triple modular redundancy at instruction level (in the
	// style of ELZAR): VoteWidth copies (default three) dispatch per
	// instruction and commit takes a majority vote over their outcome
	// signatures. A single-copy strike is outvoted and corrected in
	// place — no flush, no re-execution — so MTTR is zero for the
	// single-fault model; only a votes-split tie falls back to the
	// rewind path.
	TMR Mode = "TMR"
	// DIETRB is DIE-IRB extended with the trace reuse buffer: loop
	// windows whose output signatures are a pure function of their entry
	// PC and live-in register values (extracted statically by
	// analysis.TraceBlocks) are memoized whole, and a hit skips the
	// duplicate stream past the entire window for one lookup's latency.
	// Anything outside a window — and any window whose live-ins
	// mismatch — falls back to per-instruction DIE-IRB behavior.
	DIETRB Mode = "DIE-TRB"
)

// SchedulerKind selects the instruction scheduler model.
type SchedulerKind string

const (
	// DataCapture is the paper's default: operand values are captured
	// into the issue window, where the reuse test runs overlapped with
	// wakeup (Figure 5's Rdy2L/Rdy2R logic).
	DataCapture SchedulerKind = ""
	// Decoupled is the non-data-capture alternative of Section 3.3:
	// wakeup and selection are pipelined into separate cycles, with
	// operands read from the register file (and the reuse test run)
	// between them.
	Decoupled SchedulerKind = "decoupled"
)

// DefaultReplayEpoch is the checkpoint interval of REPLAY mode when
// Config.ReplayEpoch is zero: committed instructions per replayed epoch.
const DefaultReplayEpoch = 512

// maxVoteWidth bounds Config.VoteWidth; the commit-time vote uses a
// fixed-size scratch array and wider TMR is not a design point anyone
// proposes.
const maxVoteWidth = 7

// Config describes the simulated machine.
type Config struct {
	Mode Mode

	FetchWidth  int // instructions fetched per cycle
	DecodeWidth int // dispatch slots per cycle (a DIE pair uses two)
	IssueWidth  int // instructions selected for execution per cycle
	CommitWidth int // retirement slots per cycle (a DIE pair uses two)

	FetchQueue int // fetch-to-dispatch buffer entries

	RUUSize int // unified ROB + issue window entries (a pair uses two)
	LSQSize int // load/store queue entries (one per architected memory op)

	// FUs gives the number of functional units per class, indexed by
	// isa.FUClass. FUMemPort is the number of data cache ports.
	FUs [isa.NumFUClasses]int

	Bpred bpred.Config
	Cache cache.HierarchyConfig

	// IRB configures the reuse buffer; used only in DIE-IRB mode.
	IRB irb.Config

	// IRBBothStreams also routes primary-stream instructions through the
	// IRB (ablation: the paper sends only the duplicate stream to keep
	// port requirements low; primaries then contend for ports).
	IRBBothStreams bool

	// IRBAsFU models the prior-work alternative in which the IRB
	// behaves like a functional unit whose read ports broadcast results
	// into the issue window. The paper rejects this because each extra
	// broadcast source grows the wakeup/bypass logic like extra issue
	// width; the model charges that cost by deducting the IRB's read
	// ports from the issue width available each cycle (ablation B).
	IRBAsFU bool

	// Scheduler selects the issue-logic style (Section 3.3 of the
	// paper). The default data-capture scheduler holds operand values in
	// the issue window and performs the reuse test there; the decoupled
	// (non-data-capture) scheduler pipelines wakeup and selection into
	// separate cycles — operands are read from the register file after
	// wakeup and the reuse test follows that read — costing one cycle on
	// every dependence chain.
	Scheduler SchedulerKind

	// IRBNameBased switches the reuse test from operand values to
	// register names (Section 3.3's last paragraph): an entry hits when
	// no write to its source registers has entered the pipeline since it
	// was created. Hit rates decrease, but a non-data-capture scheduler
	// can run this test without reading operand values at all.
	IRBNameBased bool

	// Clustered models the alternative the paper's Section 3 discusses
	// and rejects: two clusters with separate issue units (each of half
	// the issue width) scheduling separate, fully replicated sets of
	// ALUs, the primary stream steered to one cluster and the duplicate
	// to the other, with a one-cycle inter-cluster forwarding penalty.
	// It removes the shared-ALU contention, but the replicated ALUs,
	// issue window and register file are exactly why the paper calls it
	// "almost a spatial redundancy approach" — those transistors could
	// have sped up SIE instead. Only meaningful for dual modes.
	Clustered bool

	// IRBChaining enables dependent-chain reuse in the style of Sodani &
	// Sohi's Sn+d scheme (the "collapsing true dependencies" capability
	// instruction reuse was originally proposed for): a reuse hit's
	// value becomes usable by a dependent instruction's reuse test in
	// the same cycle, so whole chains of buffered instructions collapse
	// at once. Without it a reuse hit's value reaches consumers' operand
	// lines one cycle later, like any other broadcast.
	IRBChaining bool

	// IRBSquashReuse also inserts completed wrong-path instructions into
	// the IRB when they are squashed ([29]'s "squash reuse"): after a
	// misprediction recovery, the re-executed convergent instructions
	// can reuse the work the wrong path already did. Inserts contend for
	// the IRB's write ports like any others.
	IRBSquashReuse bool

	// FaultRetryLimit bounds consecutive commit-check failures at one
	// static PC before the core aborts with an UnrecoverableFaultError
	// (0 = DefaultFaultRetryLimit). Only meaningful with a fault injector
	// attached.
	FaultRetryLimit int

	// ReplayEpoch is REPLAY mode's checkpoint interval: committed
	// instructions per replayed epoch (0 = DefaultReplayEpoch). The
	// json tag keeps the zero value out of runner fingerprints, so
	// pre-existing cache keys are unchanged.
	ReplayEpoch uint64 `json:",omitempty"`

	// VoteWidth is TMR mode's copy count: how many copies of each
	// instruction dispatch and vote at commit. Odd, 3..7 (0 = 3). The
	// json tag keeps the zero value out of runner fingerprints.
	VoteWidth int `json:",omitempty"`

	// TRBEntries sizes DIE-TRB mode's trace reuse buffer: window
	// recordings, direct-mapped by entry PC, power of two (0 =
	// trb.Default's 256). The json tag keeps the zero value out of
	// runner fingerprints.
	TRBEntries int `json:",omitempty"`

	// TRBMaxBlockLen caps DIE-TRB windows in instructions — both the
	// static extraction and the per-entry signature storage (0 =
	// trb.Default's 16). The json tag keeps the zero value out of
	// runner fingerprints.
	TRBMaxBlockLen int `json:",omitempty"`

	// MaxInsns stops simulation after this many architected instructions
	// commit (0 = run to halt).
	MaxInsns uint64

	// MaxCycles aborts a run that exceeds this many cycles, guarding
	// against deadlocked-pipeline bugs (0 = no bound).
	MaxCycles uint64
}

// baseConfig returns the paper's baseline machine (Section 2.2) running
// in the given mode: 8-wide, 128-entry RUU, 64-entry LSQ, 4 integer ALUs,
// 2 integer multipliers, 2 FP adders, 1 FP multiplier, 2 cache ports. The
// mode registry's Base builders all bottom out here.
func baseConfig(m Mode) Config {
	c := Config{
		Mode:        m,
		FetchWidth:  8,
		DecodeWidth: 8,
		IssueWidth:  8,
		CommitWidth: 8,
		FetchQueue:  16,
		RUUSize:     128,
		LSQSize:     64,
		Bpred:       bpred.Default(),
		Cache:       cache.DefaultHierarchy(),
		IRB:         irb.Default(),
		MaxCycles:   500_000_000,
	}
	c.FUs[isa.FUIntALU] = 4
	c.FUs[isa.FUIntMult] = 2
	c.FUs[isa.FUFPAdd] = 2
	c.FUs[isa.FUFPMult] = 1
	c.FUs[isa.FUMemPort] = 2
	return c
}

// BaseSIE returns the paper's baseline machine.
//
// Deprecated: resolve modes through the registry instead — e.g.
// core.ModeByName("SIE") and the descriptor's Base builder — so new modes
// need no new constructor. Kept as a thin alias for existing snippets.
func BaseSIE() Config { return baseConfig(SIE) }

// BaseDIE returns the paper's baseline DIE machine: identical resources to
// BaseSIE, shared by both instruction streams.
//
// Deprecated: resolve modes through the registry instead (see BaseSIE).
func BaseDIE() Config { return baseConfig(DIE) }

// BaseDIEIRB returns the paper's proposed machine: BaseDIE plus the
// 1024-entry direct-mapped IRB.
//
// Deprecated: resolve modes through the registry instead (see BaseSIE).
func BaseDIEIRB() Config { return baseConfig(DIEIRB) }

// Streams returns how many copies of each architected instruction the
// configured machine dispatches: the mode's stream count, widened by
// VoteWidth for voting modes.
func (c Config) Streams() int {
	caps := c.Mode.Caps()
	if caps.Compare == CompareVote && c.VoteWidth > 0 {
		return c.VoteWidth
	}
	if caps.Streams < 1 {
		return 1
	}
	return caps.Streams
}

// WithDoubledALUs returns c with all functional unit counts doubled
// (the paper's 2xALU configurations double the ALU mix to 8/4/4/2).
func (c Config) WithDoubledALUs() Config {
	c.FUs[isa.FUIntALU] *= 2
	c.FUs[isa.FUIntMult] *= 2
	c.FUs[isa.FUFPAdd] *= 2
	c.FUs[isa.FUFPMult] *= 2
	return c
}

// WithDoubledRUU returns c with RUU and LSQ capacity doubled.
func (c Config) WithDoubledRUU() Config {
	c.RUUSize *= 2
	c.LSQSize *= 2
	return c
}

// WithDoubledWidths returns c with fetch/decode/issue/commit widths
// doubled.
func (c Config) WithDoubledWidths() Config {
	c.FetchWidth *= 2
	c.DecodeWidth *= 2
	c.IssueWidth *= 2
	c.CommitWidth *= 2
	c.FetchQueue *= 2
	return c
}

// Validate reports configuration errors. The mode must name a registered
// descriptor (see RegisterMode); mode-specific knobs are rejected on
// modes whose capabilities do not use them, so a knob typo cannot
// silently produce a differently-fingerprinted but identical run.
func (c Config) Validate() error {
	info, registered := c.Mode.Info()
	if !registered {
		return fmt.Errorf("core: unknown mode %q (registered: %s)", c.Mode, knownModes())
	}
	caps := info.Caps
	for _, f := range []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth},
		{"DecodeWidth", c.DecodeWidth},
		{"IssueWidth", c.IssueWidth},
		{"CommitWidth", c.CommitWidth},
		{"FetchQueue", c.FetchQueue},
		{"RUUSize", c.RUUSize},
		{"LSQSize", c.LSQSize},
	} {
		if f.v <= 0 {
			return fmt.Errorf("core: %s = %d, want > 0", f.name, f.v)
		}
	}
	if s := c.Streams(); c.RUUSize < s {
		return fmt.Errorf("core: RUUSize = %d, want >= %d for %d-stream execution", c.RUUSize, s, s)
	}
	if s := c.Streams(); c.DecodeWidth < s || c.CommitWidth < s {
		return fmt.Errorf("core: DecodeWidth/CommitWidth = %d/%d, want >= %d (one full copy group per slot group)",
			c.DecodeWidth, c.CommitWidth, s)
	}
	if c.VoteWidth != 0 {
		if caps.Compare != CompareVote {
			return fmt.Errorf("core: VoteWidth set but mode %q takes no vote", c.Mode)
		}
		if c.VoteWidth < 3 || c.VoteWidth > maxVoteWidth || c.VoteWidth%2 == 0 {
			return fmt.Errorf("core: VoteWidth = %d, want odd in [3, %d]", c.VoteWidth, maxVoteWidth)
		}
	}
	if c.ReplayEpoch != 0 && caps.Compare != CompareEpoch {
		return fmt.Errorf("core: ReplayEpoch set but mode %q does not replay epochs", c.Mode)
	}
	if (c.TRBEntries != 0 || c.TRBMaxBlockLen != 0) && !caps.UsesTRB {
		return fmt.Errorf("core: TRB knobs set but mode %q has no trace reuse buffer", c.Mode)
	}
	for cl := isa.FUIntALU; cl < isa.NumFUClasses; cl++ {
		if c.FUs[cl] <= 0 {
			return fmt.Errorf("core: no %v units", cl)
		}
	}
	switch c.Scheduler {
	case DataCapture, Decoupled:
	default:
		return fmt.Errorf("core: unknown scheduler %q", c.Scheduler)
	}
	if c.Clustered && c.Streams() != 2 {
		return fmt.Errorf("core: Clustered requires a dual execution mode")
	}
	if c.FaultRetryLimit < 0 {
		return fmt.Errorf("core: FaultRetryLimit = %d, want >= 0", c.FaultRetryLimit)
	}
	if err := c.Bpred.Validate(); err != nil {
		return err
	}
	if caps.UsesIRB {
		if err := c.IRB.Validate(); err != nil {
			return err
		}
	}
	if caps.UsesTRB {
		if err := c.trbConfig().Validate(); err != nil {
			return err
		}
	}
	return nil
}

// trbConfig resolves the TRB knobs onto the package defaults; fields the
// knobs do not expose (live-in cap, lookup latency) stay at trb.Default.
func (c Config) trbConfig() trb.Config {
	tc := trb.Default()
	if c.TRBEntries > 0 {
		tc.Entries = c.TRBEntries
	}
	if c.TRBMaxBlockLen > 0 {
		tc.MaxBlockLen = c.TRBMaxBlockLen
	}
	return tc
}
