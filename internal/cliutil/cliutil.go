// Package cliutil centralizes the flag handling shared by the repro
// command-line tools (cmd/sweep, cmd/bench, cmd/simserved, cmd/simdie,
// cmd/irbstat): the instruction budget, oracle verification, benchmark
// selection, the parallel-runner width (-j), the grid-flag bundle those
// compose into, and the table output formats backed by internal/stats.
// Each command registers only the flags it needs, so the tools stay small
// while spelling every shared knob the same way.
package cliutil

import (
	"flag"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Insns registers the -insns instruction-budget flag on fs.
func Insns(fs *flag.FlagSet, def uint64) *uint64 {
	return fs.Uint64("insns", def, "architected instructions per run")
}

// Verify registers the -verify oracle-checking flag on fs.
func Verify(fs *flag.FlagSet) *bool {
	return fs.Bool("verify", false, "verify every run against the functional oracle")
}

// Bench registers the -bench benchmark-selection flag on fs. The value
// is a comma-separated list of profile names; see SplitBenchmarks and
// Profiles for parsing.
func Bench(fs *flag.FlagSet, def, usage string) *string {
	return fs.String("bench", def, usage)
}

// Jobs registers the -j parallelism flag on fs, defaulting to
// runtime.GOMAXPROCS(0). A value of 1 runs simulations serially, exactly
// reproducing the pre-parallel sweep.
func Jobs(fs *flag.FlagSet) *int {
	return fs.Int("j", runtime.GOMAXPROCS(0), "parallel simulation jobs (1 = serial)")
}

// SplitBenchmarks parses a comma-separated -bench value into names,
// trimming blanks; an empty value yields nil (meaning "all").
func SplitBenchmarks(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// Profiles resolves a comma-separated -bench value to workload profiles,
// defaulting to the full SPEC2000 suite when the value is empty.
func Profiles(bench string) ([]workload.Profile, error) {
	names := SplitBenchmarks(bench)
	if len(names) == 0 {
		return workload.SPEC2000(), nil
	}
	out := make([]workload.Profile, 0, len(names))
	for _, name := range names {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (want one of the SPEC2000 profile names)", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// Mode registers the -mode redundancy-mode flag on fs. The usage text
// lists the registered modes, so a newly registered mode documents
// itself; resolve the parsed value with ResolveMode.
func Mode(fs *flag.FlagSet, def string) *string {
	return fs.String("mode", def,
		"redundancy mode: "+strings.Join(core.ModeNames(), ", "))
}

// ResolveMode resolves a -mode value through the core mode registry,
// with an error that lists the valid names.
func ResolveMode(name string) (core.ModeInfo, error) {
	mi, ok := core.ModeByName(name)
	if !ok {
		return core.ModeInfo{}, fmt.Errorf("unknown mode %q (want one of: %s)",
			name, strings.Join(core.ModeNames(), ", "))
	}
	return mi, nil
}

// ExperimentFlags bundles the grid-run flags shared by cmd/sweep and
// cmd/bench, and reused by cmd/simserved for its per-request defaults:
// one registration, one spelling, one Options translation, instead of a
// per-command copy of the same five flags.
type ExperimentFlags struct {
	Insns       *uint64
	Bench       *string
	Verify      *bool
	Jobs        *int
	CellTimeout *time.Duration
}

// RegisterExperimentFlags registers the shared grid flags on fs with the
// given defaults (defBench empty means "all 12 benchmarks").
func RegisterExperimentFlags(fs *flag.FlagSet, defInsns uint64, defBench string) *ExperimentFlags {
	return &ExperimentFlags{
		Insns:  Insns(fs, defInsns),
		Bench:  Bench(fs, defBench, "comma-separated benchmark subset (default all 12)"),
		Verify: Verify(fs),
		Jobs:   Jobs(fs),
		CellTimeout: fs.Duration("cell-timeout", 0,
			"per-cell wall-clock bound with one retry (0 = unbounded); a timed-out cell fails alone"),
	}
}

// Options translates the parsed flags into experiment options. Callers add
// the knobs that stay command-specific (Context, Progress, DisableReplay).
func (f *ExperimentFlags) Options() experiments.Options {
	return experiments.Options{
		Insns:       *f.Insns,
		Verify:      *f.Verify,
		Benchmarks:  SplitBenchmarks(*f.Bench),
		Parallelism: *f.Jobs,
		CellTimeout: *f.CellTimeout,
	}
}

// Format registers the -format output-format flag on fs.
func Format(fs *flag.FlagSet) *string {
	return fs.String("format", "table", "output format: table, csv or json")
}

// Render renders t according to a -format value.
func Render(t *stats.Table, format string) (string, error) {
	switch format {
	case "", "table":
		return t.String(), nil
	case "csv":
		return t.CSV(), nil
	case "json":
		return t.JSON(), nil
	}
	return "", fmt.Errorf("unknown format %q (want table, csv or json)", format)
}
