package nopanic

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestTestdataWantComments checks CheckFile against the `// want` comments
// in the testdata file, analysistest-style: every line annotated with a
// want comment must produce a finding whose text matches the quoted
// fragment, and no other line may produce one.
func TestTestdataWantComments(t *testing.T) {
	path := filepath.Join("testdata", "src", "a", "a.go")

	wants := map[int]string{} // line -> expected fragment
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			frag := strings.Trim(strings.TrimPrefix(text, "want "), "`\"")
			wants[fset.Position(c.Pos()).Line] = frag
		}
	}
	if len(wants) == 0 {
		t.Fatal("testdata has no want comments")
	}

	findings, err := CheckFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]string{}
	for _, fd := range findings {
		got[fd.Pos.Line] = fd.String()
	}

	for line, frag := range wants {
		msg, ok := got[line]
		if !ok {
			t.Errorf("line %d: want finding matching %q, got none", line, frag)
			continue
		}
		if !strings.Contains(msg, frag) {
			t.Errorf("line %d: finding %q does not match %q", line, msg, frag)
		}
	}
	for line, msg := range got {
		if _, ok := wants[line]; !ok {
			t.Errorf("line %d: unexpected finding %q", line, msg)
		}
	}
}

// TestCheckDirSkipsTestsAndTestdata ensures the directory walk exempts
// _test.go files and testdata trees: checking this package's own source
// directory must not report the panics in its testdata inputs, and the
// analyzer source itself is clean.
func TestCheckDirSkipsTestsAndTestdata(t *testing.T) {
	findings, err := CheckDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestInternalTreeIsClean is the repository's own gate: every panic left
// in the library packages must carry the invariant annotation.
func TestInternalTreeIsClean(t *testing.T) {
	findings, err := CheckDir(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
