package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpInfoComplete(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		oi := op.Info()
		if oi.Name == "" {
			t.Errorf("opcode %d has no name", op)
		}
		if oi.Latency < 1 {
			t.Errorf("%s: latency %d < 1", oi.Name, oi.Latency)
		}
		if oi.Class == FUNone && op != OpNop && op != OpHalt {
			t.Errorf("%s: only nop/halt may have FUNone", oi.Name)
		}
	}
}

func TestOpInfoShapes(t *testing.T) {
	// Spot-check the operand shapes the core relies on.
	cases := []struct {
		op      Op
		dest    bool
		isMem   bool
		isCtrl  bool
		class   FUClass
		latency int
	}{
		{OpAdd, true, false, false, FUIntALU, 1},
		{OpMul, true, false, false, FUIntMult, 3},
		{OpDiv, true, false, false, FUIntMult, 20},
		{OpFAdd, true, false, false, FUFPAdd, 2},
		{OpFMul, true, false, false, FUFPMult, 4},
		{OpFDiv, true, false, false, FUFPMult, 12},
		{OpFSqrt, true, false, false, FUFPMult, 24},
		{OpLoad, true, true, false, FUIntALU, 1},
		{OpStore, false, true, false, FUIntALU, 1},
		{OpBeq, false, false, true, FUIntALU, 1},
		{OpJalr, true, false, true, FUIntALU, 1},
	}
	for _, c := range cases {
		oi := c.op.Info()
		if oi.HasDest != c.dest {
			t.Errorf("%s: HasDest = %v, want %v", oi.Name, oi.HasDest, c.dest)
		}
		if oi.IsMem() != c.isMem {
			t.Errorf("%s: IsMem = %v, want %v", oi.Name, oi.IsMem(), c.isMem)
		}
		if oi.IsCtrl() != c.isCtrl {
			t.Errorf("%s: IsCtrl = %v, want %v", oi.Name, oi.IsCtrl(), c.isCtrl)
		}
		if oi.Class != c.class {
			t.Errorf("%s: Class = %v, want %v", oi.Name, oi.Class, c.class)
		}
		if oi.Latency != c.latency {
			t.Errorf("%s: Latency = %d, want %d", oi.Name, oi.Latency, c.latency)
		}
	}
}

func TestRegString(t *testing.T) {
	if got := Reg(3).String(); got != "r3" {
		t.Errorf("Reg(3) = %q, want r3", got)
	}
	if got := (FP0 + 12).String(); got != "f12" {
		t.Errorf("FP0+12 = %q, want f12", got)
	}
	if !FP0.IsFP() || Reg(31).IsFP() {
		t.Error("IsFP boundary wrong")
	}
}

func TestExecInteger(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		imm  int32
		want uint64
	}{
		{OpAdd, 3, 4, 0, 7},
		{OpAdd, math.MaxUint64, 1, 0, 0},
		{OpAddi, 10, 0, -3, 7},
		{OpSub, 3, 4, 0, math.MaxUint64},
		{OpAnd, 0b1100, 0b1010, 0, 0b1000},
		{OpOr, 0b1100, 0b1010, 0, 0b1110},
		{OpXor, 0b1100, 0b1010, 0, 0b0110},
		{OpShl, 1, 65, 0, 2}, // shift amount masked to 6 bits
		{OpShr, 16, 2, 0, 4},
		{OpSar, uint64(0xffffffffffffff00), 4, 0, uint64(0xfffffffffffffff0)},
		{OpSlt, uint64(0xffffffffffffffff), 1, 0, 1}, // -1 < 1 signed
		{OpSltu, uint64(0xffffffffffffffff), 1, 0, 0},
		{OpLui, 0, 0, 5, 5 << 16},
		{OpMul, 7, 6, 0, 42},
		{OpDiv, 42, 6, 0, 7},
		{OpDiv, 42, 0, 0, 0},
		{OpDiv, uint64(1) << 63, uint64(0xffffffffffffffff), 0, uint64(1) << 63},
		{OpRem, 43, 6, 0, 1},
		{OpRem, 43, 0, 0, 43},
		{OpDivu, math.MaxUint64, 2, 0, math.MaxUint64 / 2},
		{OpDivu, 5, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Exec(c.op, c.a, c.b, c.imm, 0); got != c.want {
			t.Errorf("Exec(%s, %#x, %#x, %d) = %#x, want %#x", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestExecFloat(t *testing.T) {
	f := math.Float64bits
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpFAdd, f(1.5), f(2.25), f(3.75)},
		{OpFSub, f(1.5), f(2.25), f(-0.75)},
		{OpFMul, f(3), f(4), f(12)},
		{OpFDiv, f(1), f(4), f(0.25)},
		{OpFSqrt, f(9), 0, f(3)},
		{OpFNeg, f(2.5), 0, f(-2.5)},
		{OpFAbs, f(-2.5), 0, f(2.5)},
		{OpFCmpLt, f(1), f(2), 1},
		{OpFCmpLt, f(2), f(1), 0},
		{OpFCmpEq, f(2), f(2), 1},
		{OpCvtIF, uint64(7), 0, f(7)},
		{OpCvtFI, f(7.9), 0, 7},
	}
	for _, c := range cases {
		if got := Exec(c.op, c.a, c.b, 0, 0); got != c.want {
			t.Errorf("Exec(%s, %#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestExecLink(t *testing.T) {
	if got := Exec(OpCall, 0, 0, 10, 100); got != 101 {
		t.Errorf("call link = %d, want 101", got)
	}
	if got := Exec(OpJalr, 555, 0, 0, 7); got != 8 {
		t.Errorf("jalr link = %d, want 8", got)
	}
}

func TestEvalBranch(t *testing.T) {
	cases := []struct {
		op    Op
		a, b  uint64
		taken bool
	}{
		{OpBeq, 5, 5, true},
		{OpBeq, 5, 6, false},
		{OpBne, 5, 6, true},
		{OpBlt, uint64(0xffffffffffffffff), 0, true}, // -1 < 0
		{OpBge, 0, uint64(0xffffffffffffffff), true}, // 0 >= -1
		{OpBge, 1, 2, false},
	}
	for _, c := range cases {
		if got := EvalBranch(c.op, c.a, c.b); got != c.taken {
			t.Errorf("EvalBranch(%s, %d, %d) = %v, want %v", c.op, c.a, c.b, got, c.taken)
		}
	}
}

func TestCtrlTarget(t *testing.T) {
	if got := CtrlTarget(OpJump, -5, 0, 100); got != 95 {
		t.Errorf("jump target = %d, want 95", got)
	}
	if got := CtrlTarget(OpJalr, 0, 1234, 100); got != 1234 {
		t.Errorf("jalr target = %d, want 1234", got)
	}
	if got := CtrlTarget(OpBne, 8, 0, 100); got != 108 {
		t.Errorf("branch target = %d, want 108", got)
	}
}

func TestEffAddr(t *testing.T) {
	if got := EffAddr(100, 4); got != 104 {
		t.Errorf("EffAddr(100,4) = %d, want 104", got)
	}
	if got := EffAddr(103, 0); got != 96 {
		t.Errorf("EffAddr alignment: got %d, want 96", got)
	}
	// Wrong-path garbage addresses must stay within the masked space.
	if got := EffAddr(math.MaxUint64, 0); got>>40 != 0 {
		t.Errorf("EffAddr overflow not masked: %#x", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Instr{
		{Op: OpAdd, Dest: 1, Src1: 2, Src2: 3},
		{Op: OpAddi, Dest: 1, Src1: 2, Imm: -42},
		{Op: OpFAdd, Dest: FP0 + 1, Src1: FP0 + 2, Src2: FP0 + 3},
		{Op: OpLoad, Dest: 5, Src1: 6, Imm: 1 << 20},
		{Op: OpFStore, Src1: 6, Src2: FP0 + 7, Imm: -8},
		{Op: OpBeq, Src1: 1, Src2: 2, Imm: -100},
		{Op: OpJalr, Dest: 1, Src1: 31},
		{Op: OpHalt},
	}
	for _, in := range ins {
		got, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", in, err)
		}
		if got != in {
			t.Errorf("round trip %v -> %v", in, got)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(uint64(NumOps) + 7); err == nil {
		t.Error("Decode accepted undefined opcode")
	}
	// fadd with integer source register: wrong file.
	bad := Instr{Op: OpFAdd, Dest: FP0, Src1: 2, Src2: FP0}
	if _, err := Decode(Encode(bad)); err == nil {
		t.Error("Decode accepted fadd with integer src1")
	}
	// register out of range
	bad2 := Instr{Op: OpAdd, Dest: 70, Src1: 1, Src2: 2}
	if _, err := Decode(Encode(bad2)); err == nil {
		t.Error("Decode accepted out-of-range register")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Instr{Op: OpAdd, Dest: 1, Src1: 2, Src2: 3}); err != nil {
		t.Errorf("Validate rejected valid instruction: %v", err)
	}
	if err := Validate(Instr{Op: OpAdd, Dest: FP0, Src1: 2, Src2: 3}); err == nil {
		t.Error("Validate accepted add with fp dest")
	}
}

// Property: Exec is a pure function — same operands always give the same
// result. This is the foundation of the IRB's reuse guarantee.
func TestExecDeterministicProperty(t *testing.T) {
	ops := []Op{OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar,
		OpSlt, OpSltu, OpMul, OpDiv, OpRem, OpDivu,
		OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmpLt, OpFCmpEq}
	f := func(opIdx uint8, a, b uint64) bool {
		op := ops[int(opIdx)%len(ops)]
		r1 := Exec(op, a, b, 0, 0)
		r2 := Exec(op, a, b, 0, 0)
		return r1 == r2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: add/sub and xor are involutive inverses.
func TestExecAlgebraProperties(t *testing.T) {
	addSub := func(a, b uint64) bool {
		return Exec(OpSub, Exec(OpAdd, a, b, 0, 0), b, 0, 0) == a
	}
	if err := quick.Check(addSub, nil); err != nil {
		t.Errorf("add/sub inverse: %v", err)
	}
	xorInv := func(a, b uint64) bool {
		return Exec(OpXor, Exec(OpXor, a, b, 0, 0), b, 0, 0) == a
	}
	if err := quick.Check(xorInv, nil); err != nil {
		t.Errorf("xor involution: %v", err)
	}
}

// Property: encode/decode round-trips for arbitrary valid instructions.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op uint8, d, s1, s2 uint8, imm int32) bool {
		in := Instr{Op: Op(op % uint8(NumOps))}
		oi := in.Op.Info()
		pick := func(fp bool, raw uint8) Reg {
			r := Reg(raw % 32)
			if fp {
				r += FP0
			}
			return r
		}
		if oi.HasDest {
			in.Dest = pick(oi.DestFP, d)
		}
		if oi.UsesSrc1 {
			in.Src1 = pick(oi.Src1FP, s1)
		}
		if oi.UsesSrc2 {
			in.Src2 = pick(oi.Src2FP, s2)
		}
		if oi.UsesImm {
			in.Imm = imm
		}
		got, err := Decode(Encode(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: OpAddi, Dest: 1, Src1: 2, Imm: -4}
	if got := in.String(); got != "addi r1, r2, -4" {
		t.Errorf("String = %q", got)
	}
	st := Instr{Op: OpFStore, Src1: 6, Src2: FP0 + 7, Imm: 8}
	if got := st.String(); got != "fst r6, f7, 8" {
		t.Errorf("String = %q", got)
	}
}

func TestFUClassString(t *testing.T) {
	cases := map[FUClass]string{
		FUNone: "none", FUIntALU: "int-alu", FUIntMult: "int-mult",
		FUFPAdd: "fp-add", FUFPMult: "fp-mult", FUMemPort: "mem-port",
	}
	for cl, want := range cases {
		if got := cl.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", cl, got, want)
		}
	}
	if got := FUClass(99).String(); got != "FUClass(99)" {
		t.Errorf("unknown class = %q", got)
	}
}

func TestOpInfoPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Info on undefined opcode did not panic")
		}
	}()
	Op(200).Info()
}
