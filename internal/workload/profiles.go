package workload

// The twelve SPEC2000 applications of the paper's evaluation, modeled as
// synthetic profiles. The knob settings encode each application's published
// character (instruction mix, branchiness, memory behaviour) and a value-
// locality setting chosen so the suite spans the IPC and reuse ranges the
// paper reports: SIE IPC from ~0.7 (art) upward, DIE loss from ~1% (ammp)
// to ~43% (art), and "fairly good" 1024-entry IRB hit rates with a strong
// per-application spread.
//
// Integer applications: gzip, vpr, gcc, mcf, parser, bzip2, twolf, vortex.
// Floating point applications: art, equake, ammp, mesa.

// SPEC2000 returns the twelve profiles in the paper's presentation order.
func SPEC2000() []Profile {
	return []Profile{
		// gzip: tight integer compression loops over a modest window;
		// the inner match loop re-reads window state set per input
		// block, giving good consecutive reuse.
		{
			Name: "gzip", Seed: 101, Iters: 0, InnerIters: 24, Unroll: 4,
			InvariantOps: 14, IntOps: 8, Loads: 3, Stores: 1,
			CondBranches: 2, ArrayWords: 1 << 12, Stride: 1,
			ValueRange: 64, ChainDepth: 2,
		},
		// vpr: placement/routing with data-dependent control and
		// scattered small-structure accesses; moderate reuse.
		{
			Name: "vpr", Seed: 102, Iters: 0, InnerIters: 8, Unroll: 2,
			InvariantOps: 9, IntOps: 8, MulOps: 1, Loads: 3, Stores: 1,
			CondBranches: 3, ArrayWords: 1 << 12, Stride: 0,
			ValueRange: 512, ChainDepth: 2,
		},
		// gcc: very large static code footprint (pressures the
		// 1024-entry direct-mapped IRB with capacity/conflict misses),
		// branchy, moderate reuse.
		{
			Name: "gcc", Seed: 103, Iters: 0, InnerIters: 6, Unroll: 40,
			InvariantOps: 8, IntOps: 8, Loads: 3, Stores: 1,
			CondBranches: 3, ArrayWords: 1 << 11, Stride: 2,
			ValueRange: 256, ChainDepth: 2, Calls: true,
		},
		// mcf: pointer-chasing network simplex; memory-bound with low
		// ILP and poor value locality on the chased addresses.
		{
			Name: "mcf", Seed: 104, Iters: 0, InnerIters: 2, Unroll: 2,
			InvariantOps: 2, IntOps: 6, Loads: 4, Stores: 1,
			CondBranches: 2, ArrayWords: 1 << 16, Stride: -1,
			ValueRange: 1 << 30, ChainDepth: 3,
		},
		// parser: dictionary word chasing with many calls and branches;
		// per-sentence state gives decent inner reuse.
		{
			Name: "parser", Seed: 105, Iters: 0, InnerIters: 8, Unroll: 6,
			InvariantOps: 11, IntOps: 7, Loads: 3, Stores: 1,
			CondBranches: 3, ArrayWords: 1 << 12, Stride: 0,
			ValueRange: 128, ChainDepth: 2, Calls: true, AliasLeaf: true,
		},
		// bzip2: block-sort compression; long counting loops over a
		// small alphabet — the best integer reuse in the suite.
		{
			Name: "bzip2", Seed: 106, Iters: 0, InnerIters: 32, Unroll: 3,
			InvariantOps: 16, IntOps: 10, MulOps: 1, Loads: 2, Stores: 1,
			CondBranches: 1, ArrayWords: 1 << 12, Stride: 1,
			ValueRange: 16, ChainDepth: 2,
		},
		// twolf: place-and-route with random small-table lookups and
		// unpredictable branches; little consecutive reuse.
		{
			Name: "twolf", Seed: 107, Iters: 0, InnerIters: 4, Unroll: 5,
			InvariantOps: 6, IntOps: 10, MulOps: 2, Loads: 3,
			Stores: 1, CondBranches: 3, ArrayWords: 1 << 12, Stride: 0,
			ValueRange: 1024, ChainDepth: 3,
		},
		// vortex: object database; call/return and store heavy with
		// regular access patterns over per-object state.
		{
			Name: "vortex", Seed: 108, Iters: 0, InnerIters: 10, Unroll: 8,
			InvariantOps: 11, IntOps: 7, Loads: 3, Stores: 2,
			CondBranches: 2, ArrayWords: 1 << 12, Stride: 2,
			ValueRange: 96, ChainDepth: 2, Calls: true,
		},
		// art: neural-network image recognition; FP over arrays that
		// thrash the caches — the paper's lowest-IPC application (SIE
		// 0.73, DIE 0.41) and the one that prefers a bigger RUU.
		{
			Name: "art", Seed: 109, Iters: 0, InnerIters: 4, Unroll: 2,
			InvariantOps: 4, IntOps: 4, FPAdds: 5, FPMuls: 4,
			Loads: 4, Stores: 1, CondBranches: 1,
			ArrayWords: 1 << 17, Stride: 0,
			ValueRange: 32, ChainDepth: 4,
		},
		// equake: seismic FEM; regular sparse-matrix FP add/multiply
		// sweeps with per-row invariants.
		{
			Name: "equake", Seed: 110, Iters: 0, InnerIters: 6, Unroll: 2,
			InvariantOps: 7, IntOps: 5, MulOps: 1, FPAdds: 6, FPMuls: 4,
			Loads: 3, Stores: 1, CondBranches: 1,
			ArrayWords: 1 << 12, Stride: 2,
			ValueRange: 48, ChainDepth: 2,
		},
		// ammp: molecular dynamics; serial pointer-linked neighbor
		// walks keep IPC memory-latency-bound, so the duplicate stream
		// slots into idle ALU cycles — DIE costs it almost nothing
		// (paper: ~1% loss).
		{
			Name: "ammp", Seed: 111, Iters: 0, InnerIters: 8, Unroll: 1,
			InvariantOps: 4, IntOps: 3, FPAdds: 2, FPMuls: 1, FPDivs: 1,
			Loads: 2, Stores: 1, CondBranches: 1,
			ArrayWords: 1 << 17, Stride: -1,
			ValueRange: 64, ChainDepth: 4,
		},
		// mesa: software 3D rendering; the same vertex transforms run
		// against fixed matrices — the best FP reuse in the suite.
		{
			Name: "mesa", Seed: 112, Iters: 0, InnerIters: 20, Unroll: 4,
			InvariantOps: 10, IntOps: 6, MulOps: 1, FPAdds: 4, FPMuls: 5,
			Loads: 3, Stores: 1, CondBranches: 1,
			ArrayWords: 1 << 10, Stride: 1,
			ValueRange: 8, ChainDepth: 2,
		},
	}
}

// ByName returns the named profile from SPEC2000, reporting whether it
// exists.
func ByName(name string) (Profile, bool) {
	for _, p := range SPEC2000() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// WithIters returns p sized to run for roughly n dynamic instructions.
func (p Profile) WithIters(n uint64) Profile {
	// Estimate the per-iteration dynamic length from the block shape:
	// index update (~4), loads (2 each), int/fp ops, branches (~3 each
	// counting the skipped block half the time), stores (2 each), call
	// overhead (4), plus the loop bookkeeping.
	perBlock := 4 + 2*p.Loads + p.InvariantOps + p.IntOps + p.MulOps + 2*p.DivOps +
		4 + p.FPAdds + p.FPMuls + p.FPDivs + 3*p.CondBranches + 2*p.Stores
	if p.Calls {
		perBlock += 4
	}
	perOuter := uint64(8 + p.InnerIters*(perBlock*p.Unroll+2) + 2)
	// Overshoot by 2x: data-dependent branches skip work, and a program
	// that outlives the measurement budget merely gets cut by MaxInsns,
	// while one that halts early invalidates the run.
	p.Iters = int(2*n/perOuter) + 1
	return p
}
