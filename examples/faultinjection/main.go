// Fault injection: validates the redundancy argument of the paper's
// Section 3.4 end-to-end. Single-bit transient faults are injected into
// functional unit outputs, operand forwarding paths, and the IRB storage
// array while a benchmark runs on the DIE-IRB machine; the commit-time
// check-&-retire comparison must catch every fault that could reach
// architectural state. Faults striking the IRB's operand fields merely
// fail the reuse test (the duplicate then executes on a real ALU), which
// is why the paper argues the IRB needs no ECC of its own.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	profile, ok := workload.ByName("parser")
	if !ok {
		log.Fatal("parser profile missing")
	}

	fmt.Println("site         injected  detected  masked  outcome")
	for _, site := range fault.Sites() {
		inj, err := fault.New(fault.Config{Site: site, Rate: 5e-4, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Run("DIE-IRB", core.BaseDIEIRB(), profile, sim.Options{
			Insns:    150_000,
			Injector: inj,
		})
		if err != nil {
			log.Fatal(err)
		}
		outcome := describe(site, inj.Injected, r.Core.FaultsDetected)
		fmt.Printf("%-12s %8d  %8d  %6d  %s\n",
			site, inj.Injected, r.Core.FaultsDetected, r.Core.FaultsMasked, outcome)
	}
}

func describe(site fault.Site, injected, detected uint64) string {
	switch site {
	case fault.IRBOperand:
		return "corrupted operands fail the reuse test: harmless by design"
	case fault.IRBResult:
		if detected > 0 {
			return "reused corrupted results caught by check-&-retire"
		}
		return "no corrupted entry was reused before being overwritten"
	default:
		if injected == 0 {
			return "no faults fired"
		}
		return fmt.Sprintf("%.0f%% caught (the rest struck squashed wrong-path work)",
			100*float64(detected)/float64(injected))
	}
}
