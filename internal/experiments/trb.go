package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TRBRow is one benchmark's trace-reuse ablation outcome: the IPC ladder
// from plain DIE through DIE-IRB to DIE-TRB, with the reuse composition
// of the trace-buffered machine.
type TRBRow struct {
	Bench      string
	DIE        float64 // plain dual-execution IPC
	DIEIRB     float64 // per-instruction reuse IPC
	DIETRB     float64 // trace-level reuse IPC
	ReuseIRB   float64 // DIE-IRB duplicate reuse rate
	ReuseTRB   float64 // DIE-TRB combined reuse rate (IRB + trace hits)
	TraceShare float64 // fraction of committed insns whose dup a window hit served
	BlockHits  uint64  // TRB window lookups that hit
}

// trbSites is the injection matrix of the TRB campaign phase: the two
// universal datapath sites plus both reuse-array sites — the TRB, like
// the IRB, stores values consumed in place of execution, so a corrupted
// entry must be caught by the commit-time pair check and scrubbed.
func trbSites() []fault.Site {
	return []fault.Site{fault.FU, fault.Forward, fault.IRBResult, fault.IRBOperand}
}

// TRBAblation runs the trace-reuse ablation: DIE vs DIE-IRB vs DIE-TRB
// on one fault-free oracle-verified grid (phase one), then DIE-TRB under
// single-bit injection at all four sites (phase two, rate 3e-4 — the
// Faults experiment's operating point). Verification is forced on for
// every run: a silent corruption in the trace path fails the run rather
// than skewing a number. The returned table carries the per-benchmark
// IPC ladder and reuse composition, an AVERAGE row, and one fault@site
// row per campaign for the silent-corruption gate in CI.
func TRBAblation(opts Options) ([]TRBRow, []FaultRow, *stats.Table, error) {
	opts.Verify = true
	cfgs := []sim.NamedConfig{
		{Name: string(core.DIE), Cfg: core.BaseDIE()},
		{Name: string(core.DIEIRB), Cfg: core.BaseDIEIRB()},
		{Name: string(core.DIETRB), Cfg: baseDIETRB()},
	}
	g, err := runGrid(cfgs, opts)
	if err != nil {
		return nil, nil, nil, err
	}

	profiles, err := opts.profiles()
	if err != nil {
		return nil, nil, nil, err
	}
	sites := trbSites()
	var (
		jobs []runner.Job
		injs []*fault.Injector
	)
	for _, site := range sites {
		for _, p := range profiles {
			inj, err := fault.New(fault.Config{Site: site, Rate: 3e-4, Seed: p.Seed})
			if err != nil {
				return nil, nil, nil, err
			}
			o := opts.simOpts()
			o.Injector = inj
			o.Verify = true
			jobs = append(jobs, runner.Job{
				Name:    string(core.DIETRB) + "@" + string(site),
				Config:  baseDIETRB(),
				Profile: p,
				Opts:    o,
			})
			injs = append(injs, inj)
		}
	}
	if !opts.DisableReplay {
		if err := runner.AttachTraces(jobs); err != nil {
			return nil, nil, nil, err
		}
	}
	outs, err := runner.Run(opts.ctx(), jobs, opts.runnerOpts())
	if err != nil {
		return nil, nil, nil, err
	}

	t := stats.NewTable("Trace reuse ablation: DIE vs DIE-IRB vs DIE-TRB (verified)",
		"bench", "die_ipc", "irb_ipc", "trb_ipc", "reuse_rate", "trace_share", "block_hits")
	rows := make([]TRBRow, 0, len(g.Benchmarks))
	var sumIRB, sumTRB, sumReuse, sumShare float64
	for b, bench := range g.Benchmarks {
		rIRB, rTRB := g.Results[b][1], g.Results[b][2]
		row := TRBRow{
			Bench:      bench,
			DIE:        g.IPC(b, 0),
			DIEIRB:     rIRB.IPC,
			DIETRB:     rTRB.IPC,
			ReuseIRB:   rIRB.ReuseRate(),
			ReuseTRB:   rTRB.ReuseRate(),
			TraceShare: rTRB.TraceReuseRate(),
		}
		if rTRB.TRB != nil {
			row.BlockHits = rTRB.TRB.Hits
		}
		rows = append(rows, row)
		sumIRB += row.DIEIRB
		sumTRB += row.DIETRB
		sumReuse += row.ReuseTRB
		sumShare += row.TraceShare
		t.AddRow(bench, row.DIE, row.DIEIRB, row.DIETRB,
			row.ReuseTRB, row.TraceShare, row.BlockHits)
	}
	n := float64(len(rows))
	if n > 0 {
		t.AddRow("AVERAGE", "", sumIRB/n, sumTRB/n, sumReuse/n, sumShare/n, "")
	}

	var frows []FaultRow
	for si, site := range sites {
		frow := FaultRow{Mode: core.DIETRB, Site: site}
		for pi := range profiles {
			i := si*len(profiles) + pi
			frow.accumulate(injs[i].Injected, &outs[i].Result.Core)
		}
		frow.Vanished = int64(frow.Injected) - int64(frow.Detected) -
			int64(frow.Masked) - int64(frow.Silent)
		frows = append(frows, frow)
		t.AddRow("fault@"+string(site), frow.Injected, frow.Detected,
			frow.Masked, frow.Silent, frow.Coverage(), frow.Scrubs)
	}
	return rows, frows, t, nil
}

// baseDIETRB resolves the registered DIE-TRB baseline machine.
func baseDIETRB() core.Config {
	mi, ok := core.DIETRB.Info()
	if !ok {
		//nopanic:invariant the built-in mode registers at init; absence is a build bug
		panic("experiments: DIE-TRB mode not registered")
	}
	return mi.Base()
}

// TracePredictionRow pairs the static trace-reuse forecast for one
// benchmark with the trace-served instruction share the timing core
// measured on the base DIE-TRB machine.
type TracePredictionRow struct {
	Bench     string
	Predicted float64 // analysis.Prediction.TraceReuseRate on the exact program run
	Measured  float64 // sim.Result.TraceReuseRate on the base DIE-TRB machine
	Windows   int     // static memoizable windows found
	BlockHits uint64  // measured TRB window hits
}

// TraceReusePrediction cross-validates the static trace-reuse predictor
// (internal/analysis, TraceBlocks-driven) against the measured
// trace-served share of the base DIE-TRB machine, exactly as
// ReusePrediction does for the per-instruction predictor: each
// benchmark's program is analyzed as generated for its run, then
// simulated, and the Spearman rank correlation of the two columns is the
// acceptance figure — the predictor orders programs by trace-reuse
// potential, it does not promise absolute rates.
func TraceReusePrediction(opts Options) ([]TracePredictionRow, float64, *stats.Table, error) {
	profiles, err := opts.profiles()
	if err != nil {
		return nil, 0, nil, err
	}
	cfgs := []sim.NamedConfig{{Name: string(core.DIETRB), Cfg: baseDIETRB()}}
	g, err := runGridProfiles(cfgs, profiles, opts)
	if err != nil {
		return nil, 0, nil, err
	}
	t := stats.NewTable("Static trace-reuse prediction vs measured (base DIE-TRB)",
		"bench", "predicted", "measured", "windows", "block_hits")
	rows := make([]TracePredictionRow, 0, len(profiles))
	var preds, meas []float64
	for b, p := range profiles {
		prog, err := sim.ProgramFor(p, opts.simOpts())
		if err != nil {
			return nil, 0, nil, err
		}
		pred := analysis.Analyze(prog).Prediction
		row := TracePredictionRow{
			Bench:     p.Name,
			Predicted: pred.TraceReuseRate,
			Measured:  g.Results[b][0].TraceReuseRate(),
			Windows:   pred.TraceWindows,
		}
		if tb := g.Results[b][0].TRB; tb != nil {
			row.BlockHits = tb.Hits
		}
		rows = append(rows, row)
		preds = append(preds, row.Predicted)
		meas = append(meas, row.Measured)
		t.AddRow(row.Bench, fmt.Sprintf("%.4f", row.Predicted),
			fmt.Sprintf("%.4f", row.Measured), row.Windows, row.BlockHits)
	}
	rho := stats.Spearman(preds, meas)
	t.AddRow("SPEARMAN", "", "", "", rho)
	return rows, rho, t, nil
}
