package core

import (
	"errors"
	"fmt"

	"repro/internal/irb"
)

// BatchableInjector is the capability a fault injector needs to ride in a
// batch lane: beyond corrupting values it must expose how many faults it
// has applied (the batch's divergence detector) and be restorable to its
// freshly-constructed state (so a diverged lane can re-run scalar and
// reproduce the exact campaign a fresh run would).
type BatchableInjector interface {
	FaultInjector
	// InjectedCount reports the number of faults applied so far. It must
	// increase exactly when an injection method fires, whether or not the
	// fired strike changed an observable value.
	InjectedCount() uint64
	// Reset restores the injector to its freshly-constructed state:
	// reseeded PRNG, cleared strike bookkeeping, zero injected count.
	Reset()
}

// ErrBatchDrained is the error a batch leader aborts with when every lane
// has diverged and no fault-free lane needs the full run: finishing the
// leader would compute a result nobody consumes. Callers treat it as an
// early exit, not a failure.
var ErrBatchDrained = errors.New("core: every batch lane diverged")

// BatchSim steps K same-shape simulation cells in lockstep through one
// core. The cells must agree on everything but their fault injector —
// configuration, workload, options — so their fault-free trajectories are
// the *same* trajectory, and the expensive per-cell state (register file,
// scoreboard, IRB occupancy, uop arena, event heap, per-stream commit
// state) collapses into one shared copy stepped once. What remains
// per-lane is laid out struct-of-arrays below: the injector, its last
// observed fire count, the diverged flag and the strike point.
//
// BatchSim installs itself as the leader core's FaultInjector and fans
// every injection opportunity out to each active lane's injector, passing
// the leader's clean values through unchanged. Until a lane's injector
// first fires, the lane's hypothetical scalar run is bit-identical to the
// leader's — the injector returns every value untouched, so it steers
// nothing — and therefore the probe call sequence the lane's injector sees
// here is exactly the call sequence its own scalar run would produce. A
// lane whose injector never fires ends the run with scalar-identical
// injector state, and the leader's results and statistics are its results
// and statistics, bit for bit. A lane whose injector does fire (a changed
// return value or a bumped InjectedCount) has just diverged from the
// shared trajectory; it is evicted from the batch on the spot and re-run
// scalar by the caller, its injector Reset first. Eviction is how
// per-lane early-exit works: a diverging lane retires from the batch
// without stalling its siblings.
//
// The IRB-array site needs one extra guard: lane injectors must not
// corrupt the leader's real reuse buffer, so AfterIRBInsert probes run
// against a scratch IRB of the same geometry. Corruption calls on it are
// harmless no-ops (the probed PC was never inserted there), the injector's
// PRNG draws are identical either way, and the fire is detected through
// InjectedCount.
type BatchSim struct {
	c       *Core
	scratch *irb.IRB // AfterIRBInsert probe target; nil when the mode has no IRB

	// Per-lane state, struct-of-arrays. inj[i] == nil marks a fault-free
	// lane: it never diverges and is served the leader's result.
	inj      []BatchableInjector
	injected []uint64 // last observed InjectedCount per lane
	diverged []bool
	struck   []uint64 // leader seq at divergence (0: IRB array or wrong path)

	active    int // injector lanes not yet diverged
	faultFree int // lanes with no injector; they keep the leader alive
}

// NewBatchSim builds a batch over the given core, one lane per injector
// (nil entries are fault-free lanes), resets every injector and installs
// the batch as the core's fault injector. The injectors must be distinct
// objects — one injector in two lanes would be probed twice per
// opportunity and observe a call sequence no scalar run produces. Call
// before Core.Run; the core must not carry an injector of its own.
func NewBatchSim(c *Core, lanes []FaultInjector) (*BatchSim, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("core: batch needs at least one lane")
	}
	if c.inj != nil {
		return nil, fmt.Errorf("core: batch leader already has an injector")
	}
	b := &BatchSim{
		c:        c,
		inj:      make([]BatchableInjector, len(lanes)),
		injected: make([]uint64, len(lanes)),
		diverged: make([]bool, len(lanes)),
		struck:   make([]uint64, len(lanes)),
	}
	for i, inj := range lanes {
		if inj == nil {
			b.faultFree++
			continue
		}
		bi, ok := inj.(BatchableInjector)
		if !ok {
			return nil, fmt.Errorf("core: lane %d injector %T is not batchable (no InjectedCount/Reset)", i, inj)
		}
		bi.Reset()
		b.inj[i] = bi
		b.injected[i] = bi.InjectedCount()
		b.active++
	}
	if c.reuse != nil {
		scr, err := irb.New(c.cfg.IRB)
		if err != nil {
			return nil, err
		}
		b.scratch = scr
	}
	c.SetInjector(b)
	return b, nil
}

// Lanes returns the number of lanes in the batch.
func (b *BatchSim) Lanes() int { return len(b.inj) }

// Active returns the number of injector lanes that have not diverged.
func (b *BatchSim) Active() int { return b.active }

// Diverged reports whether lane i has left the batch, and if so the
// architected sequence number of the leader instruction whose injection
// opportunity fired (0 when the strike hit the IRB array or a wrong-path
// copy, which carry no architected sequence).
func (b *BatchSim) Diverged(i int) (seq uint64, diverged bool) {
	return b.struck[i], b.diverged[i]
}

// evict retires lane i from the batch at the opportunity that fired. When
// the last injector lane leaves and no fault-free lane needs the full run,
// the leader aborts with ErrBatchDrained — unless the run is already over
// (an oracle divergence or a completed program must keep its own outcome).
func (b *BatchSim) evict(i int, seq uint64) {
	b.diverged[i] = true
	b.struck[i] = seq
	b.active--
	if b.active == 0 && b.faultFree == 0 && !b.c.done {
		b.c.Abort(ErrBatchDrained)
	}
}

// FUResult implements FaultInjector for the batch leader: the leader's
// signature passes through clean while each active lane's injector is
// probed with it. A changed return value or a bumped fire count means the
// lane's scalar run would differ from the shared trajectory from this
// opportunity on, so the lane is evicted.
//
//lint:hotpath
func (b *BatchSim) FUResult(seq, pc uint64, dup bool, sig uint64) uint64 {
	if b.active > 0 {
		for i, inj := range b.inj {
			if inj == nil || b.diverged[i] {
				continue
			}
			if inj.FUResult(seq, pc, dup, sig) != sig || inj.InjectedCount() != b.injected[i] {
				b.evict(i, seq)
			}
		}
	}
	return sig
}

// Operand implements FaultInjector; see FUResult.
//
//lint:hotpath
func (b *BatchSim) Operand(seq, pc uint64, dup bool, which int, val uint64) uint64 {
	if b.active > 0 {
		for i, inj := range b.inj {
			if inj == nil || b.diverged[i] {
				continue
			}
			if inj.Operand(seq, pc, dup, which, val) != val || inj.InjectedCount() != b.injected[i] {
				b.evict(i, seq)
			}
		}
	}
	return val
}

// AfterIRBInsert implements FaultInjector. Lane injectors are probed
// against the scratch IRB — never the leader's live buffer — so a firing
// strike corrupts nothing shared; it is observed through the fire count
// alone and evicts the lane like any other divergence.
//
//lint:hotpath
func (b *BatchSim) AfterIRBInsert(pc uint64, _ *irb.IRB) {
	if b.active > 0 {
		for i, inj := range b.inj {
			if inj == nil || b.diverged[i] {
				continue
			}
			inj.AfterIRBInsert(pc, b.scratch)
			if inj.InjectedCount() != b.injected[i] {
				b.evict(i, 0)
			}
		}
	}
}
