package irb

import (
	"testing"
)

// The fuzz model: every inserted entry's result and version fields are a
// fixed function of (pc, operands), so any hit the buffer ever returns
// can be checked by recomputation, independent of where the entry was
// stored or how it travelled between the main array and the victim
// buffer.
func modelResult(pc, s1, s2 uint64) uint64 {
	return (s1*0x9e3779b97f4a7c15 ^ s2) + pc
}

func modelVer(s uint64) uint32 { return (uint32(s>>7) ^ uint32(s)) + 1 }

func modelEntry(pc, s1, s2 uint64) Entry {
	return Entry{
		Src1:   s1,
		Src2:   s2,
		Result: modelResult(pc, s1, s2),
		Taken:  s1&1 == 1,
		Ver1:   modelVer(s1),
		Ver2:   modelVer(s2),
	}
}

// FuzzIRBLookup drives a small reuse buffer through an arbitrary
// insert/lookup/invalidate sequence and checks the no-false-hit
// invariant: any PC hit must return an entry that (a) was genuinely
// accepted by an Insert for that same PC at some point, and (b) carries a
// result and version tags matching recomputation from its stored
// operands.
//
// Membership is checked against the full insert history, not just the
// latest insert: after an Invalidate scrubs the main-array copy, an older
// uncorrupted copy of the same PC can legitimately resurface from the
// victim buffer. That is architecturally safe — a stored result is a
// function of the stored operands it is returned with, and the reuse test
// compares those operands — and exactly the property clause (b) pins.
func FuzzIRBLookup(f *testing.F) {
	// Config probe + insert/lookup/invalidate over colliding PCs
	// (entries=4 direct-mapped puts pc 1, 5, 9, 13 in one set).
	f.Add([]byte{0, 0, 0, 0,
		0, 1, 17, 1, 1, 1, 0, 1, 0, 5, 23, 0, 1, 5, 9, 1,
		0, 9, 40, 1, 2, 1, 0, 0, 1, 1, 7, 1, 1, 9, 0, 1})
	f.Add([]byte{2, 1, 3, 1, 0, 13, 200, 0, 1, 13, 0, 0, 2, 13, 0, 1, 1, 13, 1, 1})
	f.Add([]byte("fuzzing the reuse buffer"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		cfg := Config{
			Entries:       4 << (data[0] % 3), // 4, 8 or 16 entries
			Assoc:         1 << (data[1] % 2), // direct-mapped or 2-way
			VictimEntries: int(data[2] % 5),
			ReadPorts:     1 + int(data[3]%2),
			WritePorts:    1,
			RWPorts:       int(data[3] % 3),
			LookupLat:     1,
		}
		b, err := New(cfg)
		if err != nil {
			t.Fatalf("derived config %+v rejected: %v", cfg, err)
		}

		// accepted[pc] is the set of entries Insert took for that PC.
		accepted := make(map[uint64]map[Entry]bool)
		cycle := uint64(0)
		for i := 4; i+3 < len(data); i += 4 {
			op, pcb, sb, adv := data[i], data[i+1], data[i+2], data[i+3]
			pc := uint64(pcb % 32) // small PC space to force conflicts
			s1 := uint64(sb)*0x100000001b3 + pc
			s2 := uint64(sb>>3) ^ 0xdeadbeef
			switch op % 4 {
			case 0, 3: // insert (biased: reuse needs residency)
				e := modelEntry(pc, s1, s2)
				if b.Insert(cycle, pc, e) {
					if accepted[pc] == nil {
						accepted[pc] = make(map[Entry]bool)
					}
					accepted[pc][e] = true
				}
			case 1: // lookup, then verify any hit
				e, hit := b.Lookup(cycle, pc)
				if !hit {
					break
				}
				if !accepted[pc][e] {
					t.Fatalf("false hit: pc=%d returned %+v, never accepted for this PC", pc, e)
				}
				if want := modelResult(pc, e.Src1, e.Src2); e.Result != want {
					t.Fatalf("pc=%d hit result %d, recomputation from stored operands gives %d",
						pc, e.Result, want)
				}
				if e.Ver1 != modelVer(e.Src1) || e.Ver2 != modelVer(e.Src2) {
					t.Fatalf("pc=%d hit version tags %d/%d do not match recomputation", pc, e.Ver1, e.Ver2)
				}
			case 2: // scrub, as the commit-time check would
				b.Invalidate(pc)
			}
			cycle += uint64(adv % 3) // 0 keeps the cycle: exercises port exhaustion
		}

		// The statistics must stay coherent with what we drove.
		st := b.Stats
		if st.PCHits > st.Lookups {
			t.Fatalf("stats incoherent: %d PC hits out of %d lookups", st.PCHits, st.Lookups)
		}
	})
}
